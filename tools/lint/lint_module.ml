(* Per-module analysis for clic-lint.

   One parse with [Parse.implementation], then a single [Ast_iterator]
   pass that simultaneously

   - builds the module's call graph: top-level value bindings are nodes,
     and a binding that mentions another top-level name (including from
     inside lambdas it passes to ordinary functions — callbacks run in
     the caller's context until proven otherwise) gets an edge to it.
     References that escape the current execution context — handler
     arguments to [Process.spawn]/[Process.fork] and to the raw
     [Sim.post*/schedule*] entry points — are NOT edges: the handler runs
     later, in its own context.  Handler arguments to the three
     kernel-context registration points ([Interrupt.raise_irq ~isr],
     [Bottom_half.schedule], [Ktimer.after]) instead become atomic ROOTS
     of their own;

   - records every blocking-primitive call site, every [Obj.magic]-family
     mention, every [Probe.emit] mention together with whether it sits
     under an inline [!Probe.on] / [Probe.enabled ()] guard, and every
     syntactic allocation inside a [@clic.hot] function;

   - tracks the active waiver attributes ([@clic.allow_block],
     [@clic.allow_magic], [@clic.alloc_ok], [@clic.probe_ok]) from
     enclosing expressions and bindings, and collects them all for the
     waiver report.  A waiver without a written reason is itself a
     finding under the rule it tries to silence.

   The rules, resolved after the pass:

   R1  no-sleep-in-atomic: no blocking primitive may be reachable (in the
       per-module call-graph approximation) from a function that is an
       ISR / bottom-half / timer handler or is annotated [@clic.atomic].
   R2  Obj.magic / Obj.repr / Obj.obj only under [@clic.allow_magic].
   R3  a [@clic.hot] function may not syntactically allocate (closures,
       records, tuples, variant/list/option payloads, arrays, lazy),
       except under a [!Probe.on] guard (the probes-off steady state
       never runs that branch) or a [@clic.alloc_ok] waiver.
   R4  every [Probe.emit] mention must be dominated by an inline
       [!Probe.on] / [Probe.enabled ()] check (the then-branch of an
       [if], or a [when] guard) or carry [@clic.probe_ok].

   Known blind spots of the approximation are documented in DESIGN.md
   §12: cross-module calls are only classified when they hit the
   primitive table, calls through record fields / function values are
   invisible, partial applications are not counted as allocations, and
   [if not !Probe.on then .. else emit] is not recognized as a guard. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Vocabulary *)

(* Blocking primitives (R1 leaves): anything that suspends the calling
   simulation process.  Matched on the trailing components of the
   (possibly library-qualified) dotted path. *)
let blocking_primitives =
  [
    "Semaphore.acquire";
    "Process.delay";
    "Process.sleep";
    (* historical alias from the issue text; keep matching it *)
    "Process.yield";
    "Process.await";
    "Mailbox.recv";
    "Ivar.read";
    "Link.wait_room";
    "Resource.acquire";
    "Resource.use";
    "Resource.use_f";
  ]

(* Handler arguments to these escape the current context entirely: the
   thunk runs later as a plain event/process, so its body is neither an
   edge nor a root. *)
let escape_points =
  [
    "Process.spawn";
    "Process.fork";
    "Sim.post";
    "Sim.post_at";
    "Sim.schedule";
    "Sim.schedule_at";
  ]

(* Handler arguments to these run in atomic kernel context: the handler
   (labelled [~isr:], else the last argument) becomes an R1 root. *)
let registration_points =
  [
    ("Interrupt.raise_irq", "ISR");
    ("Bottom_half.schedule", "bottom-half");
    ("Ktimer.after", "timer");
  ]

let magic_idents = [ "Obj.magic"; "Obj.repr"; "Obj.obj" ]

let waiver_attrs =
  [
    ("clic.allow_block", Lint_diag.R1);
    ("clic.allow_magic", Lint_diag.R2);
    ("clic.alloc_ok", Lint_diag.R3);
    ("clic.probe_ok", Lint_diag.R4);
  ]

(* ------------------------------------------------------------------ *)
(* Small helpers *)

let dotted lid = String.concat "." (Longident.flatten lid)

(* [path_matches "Engine.Semaphore.acquire" "Semaphore.acquire"] is true:
   library wrapping prefixes the path, the tail identifies the call. *)
let path_matches path target =
  path = target
  ||
  let suffix = "." ^ target in
  let lp = String.length path and ls = String.length suffix in
  lp > ls && String.sub path (lp - ls) ls = suffix

let in_table path table = List.find_opt (fun t -> path_matches path t) table

let attr_reason (a : attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let has_attr name attrs =
  List.exists (fun (a : attribute) -> a.attr_name.txt = name) attrs

(* ------------------------------------------------------------------ *)
(* Analysis state *)

type leaf_site = {
  ls_prim : string;  (* entry from [blocking_primitives] *)
  ls_pos : Lint_diag.pos;
  ls_waived : bool;
}

type fn = {
  f_name : string;
  mutable f_root : string option;  (* Some "ISR" / "bottom-half" / ... *)
  f_hot : bool;
  mutable f_calls : string list;  (* candidate local callees, unresolved *)
  mutable f_leaves : leaf_site list;
}

type t = {
  file : string;
  fns : (string, fn) Hashtbl.t;  (* named top-level bindings *)
  mutable anon_roots : fn list;  (* handler lambdas at registration sites *)
  mutable findings : Lint_diag.t list;  (* R2/R3/R4 + waiver problems *)
  mutable waivers : Lint_diag.waiver list;
}

exception Parse_failure of Lint_diag.t

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf path;
      try Parse.implementation lexbuf
      with exn ->
        let pos =
          match exn with
          | Syntaxerr.Error e ->
              Lint_diag.pos_of_location (Syntaxerr.location_of_error e)
          | _ -> { Lint_diag.p_file = path; p_line = 1; p_col = 0 }
        in
        raise
          (Parse_failure
             (Lint_diag.make Lint_diag.Parse pos
                (Printf.sprintf "cannot parse %s (%s)" path
                   (Printexc.to_string exn)))))

(* Does an expression mention the probe-enabled flag?  Covers [!Probe.on],
   [Probe.enabled ()], and compound conditions containing either. *)
let mentions_probe_flag expr =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } ->
              let p = dotted txt in
              if path_matches p "Probe.on" || path_matches p "Probe.enabled"
              then found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it expr;
  !found

(* The head identifier of an application chain: [f x y] and [f] both
   answer [f]. *)
let rec head_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some txt
  | Pexp_apply (hd, _) -> head_ident hd
  | _ -> None

let line_of (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

let analyze file =
  let structure = parse_file file in
  let m =
    {
      file;
      fns = Hashtbl.create 64;
      anon_roots = [];
      findings = [];
      waivers = [];
    }
  in
  let in_probe_ml = Filename.basename file = "probe.ml" in
  (* Walk context: the function whose body we are inside, whether we are
     under a probe guard, and the stack of active waiver kinds. *)
  let cur : fn option ref = ref None in
  let guard_depth = ref 0 in
  let active_waivers : string list ref = ref [] in
  (* root marks naming a function by identifier, resolved after the pass *)
  let pending_roots : (string * string) list ref = ref [] in
  let finding rule loc msg =
    m.findings <-
      Lint_diag.make rule (Lint_diag.pos_of_location loc) msg :: m.findings
  in
  let context_name () =
    match !cur with Some f -> f.f_name | None -> "<module toplevel>"
  in
  (* Record the waiver attributes carried by [attrs]; answers the kinds
     to keep active while walking the annotated subtree.  A reason-less
     waiver is reported but still treated as active so the silenced site
     is not double-reported. *)
  let note_waivers (attrs : attributes) =
    List.filter_map
      (fun (a : attribute) ->
        match List.assoc_opt a.attr_name.txt waiver_attrs with
        | None -> None
        | Some rule ->
            let reason = attr_reason a in
            m.waivers <-
              {
                Lint_diag.w_attr = a.attr_name.txt;
                w_rule = rule;
                w_pos = Lint_diag.pos_of_location a.attr_loc;
                w_reason = reason;
                w_context = context_name ();
              }
              :: m.waivers;
            if reason = None then
              finding rule a.attr_loc
                (Printf.sprintf
                   "waiver [@%s] carries no reason string; every waiver must \
                    say why (e.g. [@%s \"why this is safe\"])"
                   a.attr_name.txt a.attr_name.txt);
            Some a.attr_name.txt)
      attrs
  in
  let with_waivers pushed f =
    if pushed = [] then f ()
    else begin
      let saved = !active_waivers in
      active_waivers := pushed @ saved;
      Fun.protect ~finally:(fun () -> active_waivers := saved) f
    end
  in
  let waived kind = List.mem kind !active_waivers in
  let with_guard f =
    incr guard_depth;
    Fun.protect ~finally:(fun () -> decr guard_depth) f
  in
  (* -------------------- site noters -------------------- *)
  let note_ident loc lid =
    let p = dotted lid in
    (* call-graph edge candidates: bare local names only *)
    (match (lid, !cur) with
    | Longident.Lident n, Some f -> f.f_calls <- n :: f.f_calls
    | _ -> ());
    if List.exists (path_matches p) magic_idents then begin
      if not (waived "clic.allow_magic") then
        finding Lint_diag.R2 loc
          (Printf.sprintf
             "unsafe cast `%s` outside a [@clic.allow_magic \"reason\"] \
              waiver (in %s)"
             p (context_name ()))
    end;
    if path_matches p "Probe.emit" && not in_probe_ml then
      if !guard_depth = 0 && not (waived "clic.probe_ok") then
        finding Lint_diag.R4 loc
          (Printf.sprintf
             "`Probe.emit` not dominated by an inline `!Probe.on` / \
              `Probe.enabled ()` check (in %s); guard it or use a guarded \
              wrapper"
             (context_name ()))
  in
  let note_leaf loc prim =
    match !cur with
    | None -> ()
    | Some f ->
        f.f_leaves <-
          {
            ls_prim = prim;
            ls_pos = Lint_diag.pos_of_location loc;
            ls_waived = waived "clic.allow_block";
          }
          :: f.f_leaves
  in
  let note_alloc loc what =
    match !cur with
    | Some f when f.f_hot && !guard_depth = 0 && not (waived "clic.alloc_ok")
      ->
        finding Lint_diag.R3 loc
          (Printf.sprintf
             "[@clic.hot] function `%s` allocates (%s); hoist it, guard it \
              behind `!Probe.on`, or waive with [@clic.alloc_ok \"reason\"]"
             f.f_name what)
    | _ -> ()
  in
  (* -------------------- the walkers -------------------- *)
  let rec expr_iter it e =
    let pushed = note_waivers e.pexp_attributes in
    with_waivers pushed (fun () -> expr_body it e)
  and expr_body it e =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } -> note_ident loc txt
    | Pexp_ifthenelse (cond, then_, else_) ->
        it.Ast_iterator.expr it cond;
        if mentions_probe_flag cond then
          with_guard (fun () -> it.Ast_iterator.expr it then_)
        else it.Ast_iterator.expr it then_;
        Option.iter (it.Ast_iterator.expr it) else_
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        it.Ast_iterator.expr it scrut;
        List.iter (case_iter it) cases
    | Pexp_function cases ->
        note_alloc e.pexp_loc "a closure";
        List.iter (case_iter it) cases
    | Pexp_fun (_, default, _, body) ->
        note_alloc e.pexp_loc "a closure";
        Option.iter (it.Ast_iterator.expr it) default;
        it.Ast_iterator.expr it body
    | Pexp_apply (hd, args) -> apply_iter it e hd args
    | Pexp_record _ ->
        note_alloc e.pexp_loc "a record";
        Ast_iterator.default_iterator.expr it e
    | Pexp_tuple _ ->
        note_alloc e.pexp_loc "a tuple";
        Ast_iterator.default_iterator.expr it e
    | Pexp_array _ ->
        note_alloc e.pexp_loc "an array literal";
        Ast_iterator.default_iterator.expr it e
    | Pexp_construct ({ txt = Longident.Lident "::"; _ }, Some payload) ->
        (* one diagnostic per cons cell, not an extra one for its tuple *)
        note_alloc e.pexp_loc "a list cell";
        (match payload.pexp_desc with
        | Pexp_tuple elts -> List.iter (it.Ast_iterator.expr it) elts
        | _ -> it.Ast_iterator.expr it payload)
    | Pexp_construct (_, Some _) ->
        note_alloc e.pexp_loc "a constructor with payload";
        Ast_iterator.default_iterator.expr it e
    | Pexp_variant (_, Some _) ->
        note_alloc e.pexp_loc "a polymorphic variant with payload";
        Ast_iterator.default_iterator.expr it e
    | Pexp_lazy _ ->
        note_alloc e.pexp_loc "a lazy block";
        Ast_iterator.default_iterator.expr it e
    | _ -> Ast_iterator.default_iterator.expr it e
  and case_iter it (c : case) =
    Option.iter (it.Ast_iterator.expr it) c.pc_guard;
    let guarded =
      match c.pc_guard with Some g -> mentions_probe_flag g | None -> false
    in
    if guarded then with_guard (fun () -> it.Ast_iterator.expr it c.pc_rhs)
    else it.Ast_iterator.expr it c.pc_rhs
  and apply_iter it e hd args =
    match head_ident hd with
    | None ->
        it.Ast_iterator.expr it hd;
        List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args
    | Some lid -> (
        let p = dotted lid in
        match in_table p blocking_primitives with
        | Some prim ->
            note_leaf e.pexp_loc prim;
            it.Ast_iterator.expr it hd;
            List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args
        | None ->
            if in_table p escape_points <> None then begin
              (* The handler escapes this context: no edges out of its
                 body.  A closure literally built here still costs an
                 allocation in a hot function. *)
              it.Ast_iterator.expr it hd;
              List.iter
                (fun (_, a) ->
                  match a.pexp_desc with
                  | Pexp_fun _ | Pexp_function _ ->
                      note_alloc a.pexp_loc "a closure"
                  | _ -> ())
                args
            end
            else begin
              match
                List.find_opt
                  (fun (name, _) -> path_matches p name)
                  registration_points
              with
              | Some (_, kind) ->
                  it.Ast_iterator.expr it hd;
                  register_handler it kind e args
              | None ->
                  it.Ast_iterator.expr it hd;
                  List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args
            end)
  (* The handler argument of a registration point: the [~isr:] argument
     when labelled, else the last argument.  A lambda becomes an
     anonymous atomic root analyzed in place; a named local function gets
     marked as a root; anything else is walked normally. *)
  and register_handler it kind e args =
    let n_args = List.length args in
    let has_isr_label =
      List.exists (fun (label, _) -> label = Asttypes.Labelled "isr") args
    in
    let is_handler i label =
      if has_isr_label then label = Asttypes.Labelled "isr"
      else i = n_args - 1
    in
    List.iteri
      (fun i (label, a) ->
        if not (is_handler i label) then it.Ast_iterator.expr it a
        else
          match a.pexp_desc with
          | Pexp_fun _ | Pexp_function _ ->
              let root =
                {
                  f_name =
                    Printf.sprintf "<%s handler at line %d>" kind
                      (line_of e.pexp_loc);
                  f_root = Some kind;
                  f_hot = false;
                  f_calls = [];
                  f_leaves = [];
                }
              in
              m.anon_roots <- root :: m.anon_roots;
              let saved = !cur in
              cur := Some root;
              Fun.protect
                ~finally:(fun () -> cur := saved)
                (fun () ->
                  (* walk the lambda body only: the lambda node itself is
                     the handler, not an allocation charged to [root] *)
                  match a.pexp_desc with
                  | Pexp_fun (_, default, _, body) ->
                      Option.iter (it.Ast_iterator.expr it) default;
                      it.Ast_iterator.expr it body
                  | Pexp_function cases -> List.iter (case_iter it) cases
                  | _ -> ())
          | _ -> (
              match head_ident a with
              | Some (Longident.Lident n) ->
                  pending_roots := (n, kind) :: !pending_roots
              | _ -> it.Ast_iterator.expr it a))
      args
  in
  (* Top-level value bindings become call-graph nodes. *)
  let handle_binding it (vb : value_binding) =
    let name =
      match vb.pvb_pat.ppat_desc with
      | Ppat_var { txt; _ } -> Some txt
      | _ -> None
    in
    let pushed = note_waivers vb.pvb_attributes in
    let fn =
      {
        f_name =
          (match name with
          | Some n -> n
          | None -> Printf.sprintf "<binding at line %d>" (line_of vb.pvb_loc));
        f_root =
          (if has_attr "clic.atomic" vb.pvb_attributes then
             Some "[@clic.atomic]"
           else None);
        f_hot = has_attr "clic.hot" vb.pvb_attributes;
        f_calls = [];
        f_leaves = [];
      }
    in
    (match name with Some n -> Hashtbl.replace m.fns n fn | None -> ());
    let saved = !cur in
    cur := Some fn;
    Fun.protect
      ~finally:(fun () -> cur := saved)
      (fun () ->
        with_waivers pushed (fun () ->
            (* unwrap the leading parameter lambdas: they are the function
               itself, not closures it allocates *)
            let rec body e =
              match e.pexp_desc with
              | Pexp_fun (_, default, _, inner) ->
                  Option.iter (it.Ast_iterator.expr it) default;
                  body inner
              | Pexp_newtype (_, inner) -> body inner
              | _ -> it.Ast_iterator.expr it e
            in
            body vb.pvb_expr))
  in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr = expr_iter;
      structure_item =
        (fun it si ->
          match si.pstr_desc with
          | Pstr_value (_, vbs) -> List.iter (handle_binding it) vbs
          | _ -> Ast_iterator.default_iterator.structure_item it si);
    }
  in
  iterator.Ast_iterator.structure iterator structure;
  (* resolve handler roots named by identifier *)
  List.iter
    (fun (n, kind) ->
      match Hashtbl.find_opt m.fns n with
      | Some f -> if f.f_root = None then f.f_root <- Some kind
      | None -> ())
    !pending_roots;
  m

(* ------------------------------------------------------------------ *)
(* R1 resolution: transitive reachability of unwaived blocking leaves *)

type block_path = { bp_via : string list; bp_leaf : leaf_site }

let resolve_r1 (m : t) : Lint_diag.t list =
  (* Small per-module graphs: memoize positives only (a positive is valid
     regardless of the DFS stack it was found under; negatives found
     inside a cycle would be unsound to cache). *)
  let blocked_memo : (string, block_path) Hashtbl.t = Hashtbl.create 16 in
  let rec blocked_fn visiting (f : fn) : block_path option =
    match
      List.find_opt
        (fun (l : leaf_site) -> not l.ls_waived)
        (List.rev f.f_leaves)
    with
    | Some leaf -> Some { bp_via = [ f.f_name ]; bp_leaf = leaf }
    | None ->
        let callees =
          List.sort_uniq compare f.f_calls
          |> List.filter_map (fun n ->
                 if List.mem n visiting then None
                 else Option.map (fun g -> (n, g)) (Hashtbl.find_opt m.fns n))
        in
        List.fold_left
          (fun acc (n, g) ->
            match acc with
            | Some _ -> acc
            | None -> (
                let sub =
                  match Hashtbl.find_opt blocked_memo n with
                  | Some bp -> Some bp
                  | None ->
                      let r = blocked_fn (n :: visiting) g in
                      (match r with
                      | Some bp -> Hashtbl.replace blocked_memo n bp
                      | None -> ());
                      r
                in
                match sub with
                | Some bp -> Some { bp with bp_via = f.f_name :: bp.bp_via }
                | None -> None))
          None callees
  in
  let check_root (f : fn) acc =
    match f.f_root with
    | None -> acc
    | Some kind -> (
        match blocked_fn [ f.f_name ] f with
        | None -> acc
        | Some bp ->
            let via =
              match bp.bp_via with
              | [ _ ] -> ""
              | path -> Printf.sprintf " via %s" (String.concat " -> " path)
            in
            Lint_diag.make Lint_diag.R1 bp.bp_leaf.ls_pos
              (Printf.sprintf
                 "blocking `%s` is reachable from %s context `%s`%s; atomic \
                  contexts must not sleep (waive a deliberate site with \
                  [@clic.allow_block \"reason\"])"
                 bp.bp_leaf.ls_prim kind f.f_name via)
            :: acc)
  in
  let acc = Hashtbl.fold (fun _ f acc -> check_root f acc) m.fns [] in
  List.fold_left (fun acc f -> check_root f acc) acc m.anon_roots

let findings m = List.rev_append m.findings (resolve_r1 m)
let waivers m = List.rev m.waivers
