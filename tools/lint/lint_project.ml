(* Project-level driver for clic-lint: file discovery under a repo root,
   per-file analysis, R5 mli-coverage over [lib/], and aggregation of
   findings + waivers into sorted reports. *)

let is_ml f = Filename.check_suffix f ".ml"

(* Recursively list regular [.ml] files under [dir], skipping build and
   VCS directories.  Answers [] when [dir] does not exist so a root
   without [bench/] still lints. *)
let rec ml_files_under dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry ->
           if entry = "" || entry.[0] = '.' || entry = "_build" then []
           else
             let path = Filename.concat dir entry in
             if Sys.is_directory path then ml_files_under path
             else if is_ml entry then [ path ]
             else [])

(* The scanned subtrees for [--all]. *)
let default_subdirs = [ "lib"; "bin"; "bench" ]

let discover ~root =
  List.concat_map (fun d -> ml_files_under (Filename.concat root d))
    default_subdirs

(* R5: every module under [lib/] ships an interface. *)
let mli_coverage ~root =
  ml_files_under (Filename.concat root "lib")
  |> List.filter_map (fun ml ->
         let mli = ml ^ "i" in
         if Sys.file_exists mli then None
         else
           Some
             (Lint_diag.make Lint_diag.R5
                { Lint_diag.p_file = ml; p_line = 1; p_col = 0 }
                (Printf.sprintf
                   "module has no interface: expected %s (every module \
                    under lib/ must hide its internals behind an .mli)"
                   (Filename.basename mli))))

type report = {
  r_findings : Lint_diag.t list;  (* sorted by position *)
  r_waivers : Lint_diag.waiver list;
  r_files : int;
}

let empty_report = { r_findings = []; r_waivers = []; r_files = 0 }

(* Analyze [files]; a parse failure becomes a finding rather than an
   abort so one broken file cannot hide the rest. *)
let run_files files =
  let findings, waivers =
    List.fold_left
      (fun (fs, ws) file ->
        match Lint_module.analyze file with
        | m -> (Lint_module.findings m @ fs, Lint_module.waivers m @ ws)
        | exception Lint_module.Parse_failure d -> (d :: fs, ws))
      ([], []) files
  in
  {
    r_findings = List.stable_sort Lint_diag.compare_by_pos findings;
    r_waivers =
      List.stable_sort
        (fun (a : Lint_diag.waiver) (b : Lint_diag.waiver) ->
          match compare a.w_pos.p_file b.w_pos.p_file with
          | 0 -> compare a.w_pos.p_line b.w_pos.p_line
          | c -> c)
        waivers;
    r_files = List.length files;
  }

let run_all ~root =
  let r = run_files (discover ~root) in
  {
    r with
    r_findings =
      List.stable_sort Lint_diag.compare_by_pos
        (mli_coverage ~root @ r.r_findings);
  }

let filter_rules rules r =
  match rules with
  | None -> r
  | Some keep ->
      {
        r with
        r_findings =
          List.filter
            (fun (d : Lint_diag.t) ->
              d.d_rule = Lint_diag.Parse || List.mem d.d_rule keep)
            r.r_findings;
      }

let pp_findings out r =
  List.iter
    (fun d -> Printf.fprintf out "%s\n" (Lint_diag.to_string d))
    r.r_findings;
  Printf.fprintf out "%d file%s scanned, %d finding%s\n" r.r_files
    (if r.r_files = 1 then "" else "s")
    (List.length r.r_findings)
    (if List.length r.r_findings = 1 then "" else "s")

let pp_waiver_report out r =
  let n = List.length r.r_waivers in
  let missing =
    List.length
      (List.filter (fun (w : Lint_diag.waiver) -> w.w_reason = None) r.r_waivers)
  in
  Printf.fprintf out "# clic-lint waiver report: %d waiver%s, %d missing \
                      reason%s\n"
    n
    (if n = 1 then "" else "s")
    missing
    (if missing = 1 then "" else "s");
  List.iter
    (fun w -> Printf.fprintf out "%s\n" (Lint_diag.waiver_to_string w))
    r.r_waivers
