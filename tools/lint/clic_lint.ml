(* clic-lint CLI.

   Usage:
     clic-lint --all [--root DIR]        lint lib/ bin/ bench/ under DIR
     clic-lint FILE.ml ...               lint specific files (no R5 pass)
     --rule R1,R3                        keep only the named rules
     --waiver-report                     print every waiver annotation
   Exit status: 0 when no finding survives the filter, 1 otherwise,
   2 on usage error. *)

module Lint_diag = Lint_core.Lint_diag
module Lint_project = Lint_core.Lint_project

let usage () =
  prerr_endline
    "usage: clic-lint (--all [--root DIR] | FILE.ml ...) [--rule \
     R1,R2,...] [--waiver-report]";
  exit 2

let () =
  let all = ref false in
  let root = ref "." in
  let rules : Lint_diag.rule list option ref = ref None in
  let waiver_report = ref false in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--all" :: rest ->
        all := true;
        parse rest
    | "--root" :: dir :: rest ->
        root := dir;
        parse rest
    | "--rule" :: spec :: rest ->
        let keep =
          String.split_on_char ',' spec
          |> List.filter (fun s -> s <> "")
          |> List.map (fun s ->
                 match Lint_diag.rule_of_id (String.trim s) with
                 | Some r -> r
                 | None ->
                     Printf.eprintf "clic-lint: unknown rule %S\n" s;
                     exit 2)
        in
        rules :=
          Some (keep @ match !rules with Some r -> r | None -> []);
        parse rest
    | "--waiver-report" :: rest ->
        waiver_report := true;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        Printf.eprintf "clic-lint: unknown option %s\n" arg;
        usage ()
    | file :: rest ->
        files := file :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !all && !files <> [] then begin
    prerr_endline "clic-lint: --all and explicit files are exclusive";
    exit 2
  end;
  if (not !all) && !files = [] then usage ();
  let report =
    if !all then Lint_project.run_all ~root:!root
    else Lint_project.run_files (List.rev !files)
  in
  let report = Lint_project.filter_rules !rules report in
  if !waiver_report then Lint_project.pp_waiver_report stdout report;
  Lint_project.pp_findings stdout report;
  exit (if report.Lint_project.r_findings = [] then 0 else 1)
