(* Diagnostics for clic-lint: a finding names the rule it breaks, the
   source position, and a message precise enough to act on.  Findings are
   what the exit status is computed from; waivers are the annotations that
   silenced would-be findings and are surfaced by [--waiver-report]. *)

type rule =
  | R1  (* no-sleep-in-atomic *)
  | R2  (* unsafe-cast confinement *)
  | R3  (* hot-path allocation *)
  | R4  (* probe-guard discipline *)
  | R5  (* mli coverage *)
  | Parse  (* the file did not parse: nothing else can be checked *)

let rule_id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | Parse -> "parse"

let rule_title = function
  | R1 -> "no-sleep-in-atomic"
  | R2 -> "unsafe-cast confinement"
  | R3 -> "hot-path allocation"
  | R4 -> "probe-guard discipline"
  | R5 -> "mli coverage"
  | Parse -> "parse error"

let rule_of_id s =
  match String.uppercase_ascii s with
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | _ -> None

let all_rules = [ R1; R2; R3; R4; R5 ]

type pos = { p_file : string; p_line : int; p_col : int }

let pos_of_location (l : Location.t) =
  {
    p_file = l.loc_start.Lexing.pos_fname;
    p_line = l.loc_start.Lexing.pos_lnum;
    p_col = l.loc_start.Lexing.pos_cnum - l.loc_start.Lexing.pos_bol;
  }

type t = { d_rule : rule; d_pos : pos; d_msg : string }

let make rule pos msg = { d_rule = rule; d_pos = pos; d_msg = msg }

let compare_by_pos a b =
  match compare a.d_pos.p_file b.d_pos.p_file with
  | 0 -> (
      match compare a.d_pos.p_line b.d_pos.p_line with
      | 0 -> compare a.d_pos.p_col b.d_pos.p_col
      | c -> c)
  | c -> c

let to_string d =
  Printf.sprintf "%s:%d:%d: [%s] %s" d.d_pos.p_file d.d_pos.p_line
    d.d_pos.p_col (rule_id d.d_rule) d.d_msg

(* A waiver annotation seen anywhere in the scanned sources.  [w_rule] is
   the rule the attribute silences; [w_reason] is None when the attribute
   carries no written justification (itself a finding — every waiver must
   say why). *)
type waiver = {
  w_attr : string;  (* "clic.allow_block", ... *)
  w_rule : rule;
  w_pos : pos;
  w_reason : string option;
  w_context : string;  (* enclosing function, for the report *)
}

let waiver_to_string w =
  Printf.sprintf "%s:%d: [@%s] (%s, in %s) %s" w.w_pos.p_file w.w_pos.p_line
    w.w_attr (rule_id w.w_rule) w.w_context
    (match w.w_reason with
    | Some r -> Printf.sprintf "%S" r
    | None -> "<< MISSING REASON >>")
