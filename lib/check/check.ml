(* The checker orchestrator: run a scenario under the three analysis
   passes and report what they found.

   A scenario is run once as the *baseline* — FIFO same-instant ordering —
   and then [seeds] more times, each under a different seeded permutation
   of same-instant event ordering.  Every run carries the full pass set:
   the lifecycle sanitizer, every invariant monitor, and the logical trace
   hash, so protocol correctness is checked under each permutation, not
   just the FIFO schedule.  A seeded run whose logical trace hash differs
   from the baseline is a determinism violation; a run whose rendered
   *measurements* differ while the logical trace is identical is reported
   as a note — the contention model legitimately resolves same-instant
   CPU/wire ties in permutation order, which moves timing-level numbers
   the way two runs on real hardware would.

   All probe state is process-global, so runs are strictly serialized and
   the sink / tie-break default are restored even when a scenario run
   raises. *)

open Engine

(* This module shares the library's name, so it is the library's public
   face: re-export the passes for callers (tests, the CLI). *)
module Violation = Violation
module Lifecycle = Lifecycle
module Invariants = Invariants
module Determinism = Determinism
module Scenario = Scenario
module Soak = Soak
module Slo = Slo

type report = {
  scenario : string;
  violations : Violation.t list;
  notes : string list;
  baseline_hash : string;
  output : string;  (* rendered figure/stat text of the baseline run *)
  runs : int;  (* baseline + seeded re-runs completed *)
}

let ok r = r.violations = []

(* Renders the scenario into a buffer: the returned text doubles as the
   run's behavioural fingerprint for the determinism pass. *)
let render (sc : Scenario.t) =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  sc.run fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* One probed run; installs [sink], restores probe/tie-break state after.
   Returns the rendered output, or the crash violation. *)
let probed_run ?tie_break (sc : Scenario.t) sink =
  Probe.install sink;
  Sim.set_default_tie_break tie_break;
  Fun.protect
    ~finally:(fun () ->
      Probe.uninstall ();
      Sim.set_default_tie_break None)
    (fun () -> match render sc with s -> Ok s | exception e -> Error e)

type run_result = {
  r_violations : Violation.t list;  (* lifecycle + invariants + crash *)
  r_notes : string list;
  r_trace : Determinism.t;
  r_hash : string;
  r_output : string;
  r_crashed : bool;
}

(* Runs the scenario once with every pass attached. *)
let one_run ?tie_break (sc : Scenario.t) : run_result =
  let lifecycle = Lifecycle.create ~leak_check:(not sc.truncated) () in
  let monitors = Invariants.create_all () in
  let hash = Determinism.create () in
  let now = ref 0 in
  let found = ref [] in
  let sink ev =
    (match ev with
    | Probe.Clock { now = n } -> now := n
    | Probe.Sim_start -> now := 0
    | _ -> ());
    Lifecycle.on_event lifecycle ev;
    List.iter
      (fun (m : Invariants.monitor) ->
        match m.on_event ~now:!now ev with
        | Some detail ->
            found :=
              Violation.make
                ~pass:("invariant:" ^ m.name)
                ~rule:m.name ~time_ns:!now detail
              :: !found
        | None -> ())
      monitors;
    Determinism.on_event hash ev
  in
  let outcome = probed_run ?tie_break sc sink in
  let output, crash =
    match outcome with
    | Ok out -> (out, [])
    | Error e ->
        ( "",
          [
            Violation.make ~pass:"crash" ~rule:"uncaught-exception"
              ~time_ns:!now
              (Printexc.to_string e);
          ] )
  in
  {
    r_violations = Lifecycle.finish lifecycle @ List.rev !found @ crash;
    r_notes = Lifecycle.notes lifecycle;
    r_trace = hash;
    r_hash = Determinism.result hash;
    r_output = output;
    r_crashed = crash <> [];
  }

let seed_of_index i = 0x5EED0 + (i * 7919)

let retag_seed seed (v : Violation.t) =
  { v with Violation.detail = Printf.sprintf "under seed %d: %s" seed v.detail }

let run_scenario ?(seeds = 3) (sc : Scenario.t) : report =
  let baseline = one_run sc in
  (* Seeded re-runs only make sense against a baseline that finished. *)
  let violations, notes, runs =
    if baseline.r_crashed then (baseline.r_violations, baseline.r_notes, 1)
    else
      let rec go i vs ns runs =
        if i > seeds then (vs, ns, runs)
        else
          let seed = seed_of_index i in
          let r = one_run ~tie_break:seed sc in
          let vs = vs @ List.map (retag_seed seed) r.r_violations in
          (* For runs truncated by a wall-clock bound, per-stream progress
             at the cut legitimately depends on timing: compare the common
             prefix of each stream instead of the full trace. *)
          let diverged_stream =
            if sc.truncated then
              match Determinism.prefix_divergence baseline.r_trace r.r_trace with
              | Some key -> Some (Printf.sprintf "stream %S diverges" key)
              | None -> None
            else if r.r_hash <> baseline.r_hash then
              Some
                (Printf.sprintf "trace hash %s differs from baseline %s"
                   r.r_hash baseline.r_hash)
            else None
          in
          let vs, ns =
            if r.r_crashed then (vs, ns)
            else
              match diverged_stream with
              | Some what ->
                  ( vs
                    @ [
                        Violation.make ~pass:"determinism"
                          ~rule:"trace-divergence" ~time_ns:0
                          (Printf.sprintf
                             "seed %d: %s (rendered results %s)" seed what
                             (if r.r_output = baseline.r_output then
                                "identical"
                              else "also differ"));
                      ],
                    ns )
              | None ->
                  if r.r_output <> baseline.r_output then
                    ( vs,
                      ns
                      @ [
                          Printf.sprintf
                            "seed %d: %s logical trace, but measured \
                             numbers shift with same-instant contention \
                             ordering"
                            seed
                            (if sc.truncated then "prefix-consistent"
                             else "identical");
                        ] )
                  else (vs, ns)
          in
          go (i + 1) vs ns (runs + 1)
      in
      go 1 baseline.r_violations baseline.r_notes 1
  in
  {
    scenario = sc.name;
    violations = List.sort Violation.by_time violations;
    notes;
    baseline_hash = baseline.r_hash;
    output = baseline.r_output;
    runs;
  }

let run_all ?(seeds = 3) ?names () =
  let scenarios =
    match names with
    | None -> Scenario.all
    | Some names ->
        List.map
          (fun n ->
            match Scenario.find n with
            | Some sc -> sc
            | None ->
                invalid_arg
                  (Printf.sprintf "Check.run_all: unknown scenario %S (know: %s)"
                     n
                     (String.concat ", " Scenario.names)))
          names
  in
  List.map (run_scenario ~seeds) scenarios

let pp_report fmt r =
  Format.fprintf fmt "@[<v>%s: %s (%d runs, hash %s)@," r.scenario
    (if ok r then "clean" else Printf.sprintf "%d violation(s)"
                                 (List.length r.violations))
    r.runs
    (String.sub r.baseline_hash 0 (min 12 (String.length r.baseline_hash)));
  List.iter (fun v -> Format.fprintf fmt "  %a@," Violation.pp v) r.violations;
  List.iter (fun n -> Format.fprintf fmt "  note: %s@," n) r.notes;
  Format.fprintf fmt "@]"
