(** A single finding from any analysis pass.

    The record is concrete: callers pattern-match and build findings
    directly (custom monitors, tests).  [detail] is free-form; for
    lifecycle findings it carries the object's event backtrace. *)

type t = {
  pass : string;  (** "lifecycle", "invariant:<rule>", "determinism", ... *)
  rule : string;
  time_ns : int;  (** simulation instant of the finding *)
  detail : string;
}

val make : pass:string -> rule:string -> time_ns:int -> string -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val by_time : t -> t -> int
(** Orders by simulation time, then by (pass, rule, detail) so reports
    are deterministic. *)
