(** The determinism / race detector's logical trace hash.

    Feed every probe event of a run into [on_event]; [result] digests the
    protocol-visible outcome (per-stream delivery chains, application
    message streams, channel deaths) while staying invariant under
    everything a same-instant tie-break permutation may legitimately
    change (process-global uids, wall-clock timing, cross-stream
    interleaving).  The stream tables are internal: callers only compare
    results or prefixes. *)

type t

val create : unit -> t
val on_event : t -> Engine.Probe.event -> unit

val result : t -> string
(** Hex digest over every stream's chain head, in canonical key order. *)

val prefix_divergence : t -> t -> string option
(** [prefix_divergence a b] is [Some stream_key] when the two runs
    disagree somewhere in the common prefix of that stream's chain, and
    [None] when every shared stream agrees up to the shorter run's
    length.  Used for truncated scenarios, where how far each stream got
    legitimately varies with the schedule but the produced prefix must
    not. *)
