(** The object-lifecycle sanitizer.

    Reconstructs an ownership state machine for every kernel object the
    simulation reports to {!Engine.Probe} (SK_BUFFs, NIC ring buffers,
    byte-accounted staging pools) and flags use-after-free, double-free,
    and — when [leak_check] is on — objects or pool bytes still
    outstanding at a simulation boundary.  All state (object tables,
    histories, pool accounting) is internal. *)

type t

val create : leak_check:bool -> unit -> t
(** [leak_check:false] is for deliberately truncated runs, where buffers
    legitimately remain live at the cut. *)

val on_event : t -> Engine.Probe.event -> unit

val finish : t -> Violation.t list
(** Ends the pass: the final simulation's survivors are leaks too.
    Findings are sorted by time. *)

val notes : t -> string list
(** Non-fatal observations: peak live objects and per-pool high-water
    marks. *)
