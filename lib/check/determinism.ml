(* The determinism / race detector's trace hash.

   A scenario is re-run with seeded permutations of same-timestamp event
   ordering ({!Engine.Sim.set_default_tie_break}); a hidden ordering race
   is a run whose *logical* protocol behaviour changes.  The hash is
   built to be invariant under everything a tie-break permutation may
   legitimately change, and sensitive to everything it must not:

   - Only protocol-visible outcomes are hashed: the delivery sequence out
     of each channel, the message stream reaching each node's application
     layer, and channel deaths.  A duplicate, gap, reordering, or a
     different set of delivered messages changes the hash.

   - Each stream is hashed as its own chain, keyed by the endpoints
     (process-global uids and wall-clock timestamps are excluded: id
     allocation order and contention timing legitimately vary with the
     permutation).  Cross-stream interleaving and acknowledgement timing
     are not part of the hash — they are covered by the invariant
     monitors, which run under every seeded permutation as well. *)

open Engine

type t = {
  (* stream key -> cumulative chained digests, newest first.  The full
     chain (not just its head) is kept so truncated runs can be compared
     by prefix. *)
  streams : (string, string list) Hashtbl.t;
  chan_index : (int, string) Hashtbl.t;  (* channel uid -> stable stream key *)
  mutable sim_index : int;  (* scenarios run several simulations in order *)
}

let create () =
  { streams = Hashtbl.create 64; chan_index = Hashtbl.create 64; sim_index = 0 }

let fold t key item =
  let chain = Option.value (Hashtbl.find_opt t.streams key) ~default:[] in
  let prev = match chain with d :: _ -> d | [] -> "init" in
  Hashtbl.replace t.streams key
    (Digest.to_hex (Digest.string (prev ^ "|" ^ item)) :: chain)

(* Channels are identified by endpoints plus order of first activity on
   those endpoints, not by their process-global uid. *)
let chan_key t ~chan ~node ~peer =
  match Hashtbl.find_opt t.chan_index chan with
  | Some key -> key
  | None ->
      let base = Printf.sprintf "%d/chan %d<-%d" t.sim_index node peer in
      let occurrence =
        Hashtbl.fold
          (fun _ k n -> if String.starts_with ~prefix:base k then n + 1 else n)
          t.chan_index 0
      in
      let key = Printf.sprintf "%s#%d" base occurrence in
      Hashtbl.add t.chan_index chan key;
      key

let on_event t (ev : Probe.event) =
  match ev with
  | Probe.Sim_start -> t.sim_index <- t.sim_index + 1
  | Probe.Msg_deliver { node; src; port; msg_id; epoch } ->
      fold t
        (Printf.sprintf "%d/msg %d<-%d" t.sim_index node src)
        (Printf.sprintf "port=%d id=%d ep=%d" port msg_id epoch)
  | Probe.Chan_deliver { chan; node; peer; seq } ->
      fold t (chan_key t ~chan ~node ~peer) (Printf.sprintf "seq=%d" seq)
  | Probe.Chan_dead { chan; node; peer } ->
      fold t (chan_key t ~chan ~node ~peer) "dead"
  | _ -> ()

(* Folds the per-stream chain heads, in canonical key order, into one
   value. *)
let result t =
  Hashtbl.fold
    (fun key chain acc ->
      (key, (match chain with d :: _ -> d | [] -> "init")) :: acc)
    t.streams []
  |> List.sort compare
  |> List.map (fun (key, d) -> key ^ "=" ^ d)
  |> String.concat "\n"
  |> Digest.string
  |> Digest.to_hex

(* Whether two runs agree on every stream up to the shorter run's length.
   Used for scenarios truncated by a wall-clock bound ([Net.run_for]):
   the permutation legitimately moves how far each stream progressed by
   the cut, but the part both runs did produce must match exactly —
   a duplicate, gap or reordering anywhere in the common prefix still
   differs.  Returns the offending stream key on mismatch. *)
let prefix_divergence a b =
  let check key chain_a acc =
    match acc with
    | Some _ -> acc
    | None -> (
        let chain_b = Option.value (Hashtbl.find_opt b.streams key) ~default:[] in
        let la = List.length chain_a and lb = List.length chain_b in
        let n = min la lb in
        if n = 0 then None
        else
          (* chains are newest-first: the shorter chain's head must appear
             at the same depth in the longer chain *)
          let head_at chain len target = List.nth chain (len - target) in
          let da = head_at chain_a la n and db = head_at chain_b lb n in
          if da = db then None else Some key)
  in
  match Hashtbl.fold check a.streams None with
  | Some key -> Some key
  | None ->
      (* streams only [b] saw: nothing to compare (empty prefix) *)
      None
