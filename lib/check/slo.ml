(* SLO degradation contracts: judge an open-loop latency record against
   what production promises under gray failure.

   A contract names three promises.  While the fabric is healthy the
   p999 latency stays under an absolute bound.  While a fail-slow fault
   is active the tail may bleed — but only to a bounded multiple of the
   healthy bound, because "degraded" must not mean "unbounded".  And
   once the fault clears, the tail must return under the healthy bound
   within a recovery deadline.

   Samples are classified by their *arrival instant*, not their
   completion instant: a request that arrived while the fault was active
   belongs to the degraded phase even if it completed after the clear.
   Requests arriving inside the recovery window are not judged at all —
   they drain the backlog and belong to neither regime.

   [evaluate] is pure; [run_contract] builds the canonical 4-node
   cluster, runs the open-loop workload across a mid-run gray-failure
   window (link brownout + slow NICs + switch egress stalls), and judges
   the result — the `clic-sim slo` exit contract. *)

open Engine
open Cluster

type contract = {
  healthy_p999_us : float;
  bleed_ratio : float;
  recovery_deadline : Time.span;
}

let validate c =
  if c.healthy_p999_us <= 0. then
    invalid_arg "Slo.validate: healthy_p999_us <= 0";
  if c.bleed_ratio < 1. then invalid_arg "Slo.validate: bleed_ratio < 1";
  if c.recovery_deadline <= 0 then
    invalid_arg "Slo.validate: recovery_deadline <= 0"

let default =
  {
    healthy_p999_us = 1200.;
    bleed_ratio = 3.;
    recovery_deadline = Time.ms 1.;
  }

type verdict = {
  v_contract : contract;
  v_healthy : int;
  v_degraded : int;
  v_recovered : int;  (* sample counts per judged phase *)
  v_healthy_p999_us : float;
  v_degraded_p999_us : float;
  v_recovered_p999_us : float;
  v_violations : Violation.t list;
}

let ok v = v.v_violations = []

let evaluate c ~(slo : Workload.slo) ~fault_from ~fault_until =
  validate c;
  if fault_from < 0 || fault_until <= fault_from then
    invalid_arg "Slo.evaluate: empty or negative fault window";
  let recovered_at = fault_until + c.recovery_deadline in
  let phase_of at =
    if at < fault_from then `Healthy
    else if at < fault_until then `Degraded
    else if at < recovered_at then `Recovering
    else `Recovered
  in
  let healthy = ref [] and degraded = ref [] and recovered = ref [] in
  Array.iter
    (fun (at, lat_us) ->
      match phase_of at with
      | `Healthy -> healthy := lat_us :: !healthy
      | `Degraded -> degraded := lat_us :: !degraded
      | `Recovering -> ()
      | `Recovered -> recovered := lat_us :: !recovered)
    slo.Workload.slo_samples;
  let p999 l = Workload.quantile (Array.of_list l) 99.9 in
  let h999 = p999 !healthy
  and d999 = p999 !degraded
  and r999 = p999 !recovered in
  let vs = ref [] in
  let fail ~rule ~time_ns detail =
    vs := Violation.make ~pass:"slo" ~rule ~time_ns detail :: !vs
  in
  let require_phase name l time_ns =
    if l = [] then
      fail ~rule:"phase-empty" ~time_ns
        (Printf.sprintf "no request arrived during the %s phase: the \
                         contract cannot be certified" name)
  in
  require_phase "healthy" !healthy 0;
  require_phase "degraded" !degraded fault_from;
  require_phase "recovered" !recovered recovered_at;
  if !healthy <> [] && h999 > c.healthy_p999_us then
    fail ~rule:"healthy-p999" ~time_ns:0
      (Printf.sprintf "healthy p999 %.1f us exceeds the %.1f us bound" h999
         c.healthy_p999_us);
  if !degraded <> [] && d999 > c.bleed_ratio *. c.healthy_p999_us then
    fail ~rule:"bounded-bleed" ~time_ns:fault_from
      (Printf.sprintf
         "degraded p999 %.1f us exceeds the bleed bound %.1f us (%.0fx \
          the healthy bound)"
         d999
         (c.bleed_ratio *. c.healthy_p999_us)
         c.bleed_ratio);
  if !recovered <> [] && r999 > c.healthy_p999_us then
    fail ~rule:"recovery-deadline" ~time_ns:recovered_at
      (Printf.sprintf
         "p999 is still %.1f us (bound %.1f us) for requests arriving \
          after the %.0f us recovery deadline"
         r999 c.healthy_p999_us
         (Time.to_us c.recovery_deadline));
  {
    v_contract = c;
    v_healthy = List.length !healthy;
    v_degraded = List.length !degraded;
    v_recovered = List.length !recovered;
    v_healthy_p999_us = h999;
    v_degraded_p999_us = d999;
    v_recovered_p999_us = r999;
    v_violations = List.rev !vs;
  }

(* ------------------------------------------------------------------ *)
(* The canonical contract run: the fleet CI gate behind `clic-sim slo`. *)

let fault_from = Time.ms 2.
let fault_until = Time.ms 5.

let run_contract ?(quick = false) ?(contract = default) () =
  validate contract;
  let requests_per_node = if quick then 60 else 120 in
  let faults = ref [] in
  let config =
    {
      Node.default_config with
      link_fault =
        Some
          (fun () ->
            let f =
              Hw.Fault.brownout ~fraction:0.125 ~from_:fault_from
                ~until_:fault_until ()
            in
            faults := f :: !faults;
            f);
    }
  in
  let c = Net.create ~config ~n:4 () in
  Workload.inject_gray c ~nic_nodes:[ 1; 2 ] ~nic_factor:6.0
    ~stall_nodes:[ 3 ] ~from_:fault_from ~until_:fault_until ();
  let _, slo =
    Workload.open_loop c ~seed:90125
      ~arrival:(Workload.Poisson { mean_gap = Time.us 200. })
      ~requests_per_node ~req_size:512 ~resp_size:2048 ()
  in
  let v = evaluate contract ~slo ~fault_from ~fault_until in
  (* the contract is void unless every fail-slow mechanism engaged *)
  let engaged =
    [
      ( "link-brownout",
        List.fold_left (fun acc f -> acc + Hw.Fault.slowed f) 0 !faults > 0 );
      ( "nic-slow",
        List.exists
          (fun i ->
            List.exists
              (fun nic -> Hw.Nic.slow_extra_ns nic > 0)
              (Net.node c i).Node.nics)
          [ 1; 2 ] );
      ( "switch-stall",
        List.exists (fun sw -> Hw.Switch.egress_stall_ns sw > 0) c.Net.switches
      );
    ]
  in
  let missing =
    List.filter_map
      (fun (mech, fired) ->
        if fired then None
        else
          Some
            (Violation.make ~pass:"slo" ~rule:"mechanism-idle"
               ~time_ns:fault_from
               (Printf.sprintf "gray mechanism %s never engaged" mech)))
      engaged
  in
  ({ v with v_violations = v.v_violations @ missing }, slo)

let pp_verdict fmt v =
  let c = v.v_contract in
  Format.fprintf fmt
    "contract: healthy p999 <= %.0f us, degraded <= %.0fx, recover \
     within %.0f us@."
    c.healthy_p999_us c.bleed_ratio
    (Time.to_us c.recovery_deadline);
  let line name count p999 bound =
    Format.fprintf fmt "  %-10s %5d requests  p999 %8.1f us  (bound %8.1f)@."
      name count p999 bound
  in
  line "healthy" v.v_healthy v.v_healthy_p999_us c.healthy_p999_us;
  line "degraded" v.v_degraded v.v_degraded_p999_us
    (c.bleed_ratio *. c.healthy_p999_us);
  line "recovered" v.v_recovered v.v_recovered_p999_us c.healthy_p999_us;
  if ok v then Format.fprintf fmt "  verdict: contract holds@."
  else
    List.iter
      (fun viol -> Format.fprintf fmt "  %a@." Violation.pp viol)
      v.v_violations
