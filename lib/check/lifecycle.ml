(* The object-lifecycle sanitizer.

   Reconstructs an ownership state machine for every kernel object the
   simulation reports to {!Engine.Probe} — SK_BUFFs and NIC receive-ring
   buffers (allocated -> owned by driver / bottom half / channel / app ->
   freed) plus the byte-accounted staging pools — and flags:

   - use-after-free: an ownership transfer on a freed object,
   - double-free: a second free,
   - leaks: objects still live (or pool bytes still outstanding) when a
     simulation ends.

   Every finding carries the object's event backtrace (sim time + code
   point of each alloc / transfer / free it saw).  Identities are
   process-unique, so a [Sim_start] is a clean boundary: anything still
   live then leaked from the previous simulation of the scenario. *)

open Engine

let max_history = 8

type obj_state = {
  o_bytes : int;
  mutable o_live : bool;
  mutable o_owner : Probe.owner;
  mutable o_history : (int * string) list;  (* newest first *)
  mutable o_hist_len : int;
}

type pool_state = {
  mutable p_used : int;
  mutable p_high : int;
  p_capacity : int;
}

type t = {
  leak_check : bool;
  objs : (Probe.obj_kind * int, obj_state) Hashtbl.t;
  pools : (string, pool_state) Hashtbl.t;
  high_water : (string, int) Hashtbl.t;  (* survives Sim_start resets *)
  mutable now : int;
  mutable violations : Violation.t list;
  mutable live_peak : int;
}

let create ~leak_check () =
  {
    leak_check;
    objs = Hashtbl.create 512;
    pools = Hashtbl.create 8;
    high_water = Hashtbl.create 8;
    now = 0;
    violations = [];
    live_peak = 0;
  }

let obj_name kind id = Printf.sprintf "%s#%d" (Probe.kind_name kind) id

let backtrace st =
  st.o_history |> List.rev
  |> List.map (fun (t, what) -> Printf.sprintf "t=%dns %s" t what)
  |> String.concat "; "

let note st t what =
  st.o_history <- (t.now, what) :: st.o_history;
  st.o_hist_len <- st.o_hist_len + 1;
  if st.o_hist_len > max_history then begin
    (* keep the allocation record (oldest entry) and the newest ones *)
    match List.rev st.o_history with
    | oldest :: rest ->
        st.o_history <- List.rev (oldest :: List.tl rest);
        st.o_hist_len <- st.o_hist_len - 1
    | [] -> ()
  end

let violation t ~rule detail =
  t.violations <-
    Violation.make ~pass:"lifecycle" ~rule ~time_ns:t.now detail
    :: t.violations

let flush_boundary t =
  if t.leak_check then begin
    Hashtbl.iter
      (fun (kind, id) st ->
        if st.o_live then
          violation t ~rule:"leak"
            (Printf.sprintf "%s (%dB, owner %s) never freed; %s"
               (obj_name kind id) st.o_bytes
               (Probe.owner_name st.o_owner)
               (backtrace st)))
      t.objs;
    Hashtbl.iter
      (fun pool p ->
        if p.p_used > 0 then
          violation t ~rule:"pool-leak"
            (Printf.sprintf
               "pool %s ends with %dB outstanding (capacity %dB)" pool
               p.p_used p.p_capacity))
      t.pools
  end;
  Hashtbl.reset t.objs;
  Hashtbl.reset t.pools

let live_count t =
  Hashtbl.fold (fun _ st n -> if st.o_live then n + 1 else n) t.objs 0

let on_event t (ev : Probe.event) =
  match ev with
  | Probe.Clock { now } -> t.now <- now
  | Probe.Sim_start ->
      flush_boundary t;
      t.now <- 0
  | Probe.Obj_alloc { kind; id; bytes; owner; where } -> (
      match Hashtbl.find_opt t.objs (kind, id) with
      | Some st when st.o_live ->
          violation t ~rule:"double-alloc"
            (Printf.sprintf "%s allocated again at %s; %s"
               (obj_name kind id) where (backtrace st))
      | _ ->
          let st =
            {
              o_bytes = bytes;
              o_live = true;
              o_owner = owner;
              o_history = [];
              o_hist_len = 0;
            }
          in
          note st t
            (Printf.sprintf "alloc at %s (owner %s)" where
               (Probe.owner_name owner));
          Hashtbl.replace t.objs (kind, id) st;
          t.live_peak <- max t.live_peak (live_count t))
  | Probe.Obj_transfer { kind; id; owner; where } -> (
      match Hashtbl.find_opt t.objs (kind, id) with
      | Some st when st.o_live ->
          st.o_owner <- owner;
          note st t
            (Printf.sprintf "transfer to %s at %s" (Probe.owner_name owner)
               where)
      | Some st ->
          violation t ~rule:"use-after-free"
            (Printf.sprintf "%s transferred to %s at %s after free; %s"
               (obj_name kind id) (Probe.owner_name owner) where
               (backtrace st))
      | None ->
          violation t ~rule:"use-of-unknown"
            (Printf.sprintf "%s transferred to %s at %s but never allocated"
               (obj_name kind id) (Probe.owner_name owner) where))
  | Probe.Obj_free { kind; id; where } -> (
      match Hashtbl.find_opt t.objs (kind, id) with
      | Some st when st.o_live ->
          st.o_live <- false;
          note st t (Printf.sprintf "free at %s" where)
      | Some st ->
          violation t ~rule:"double-free"
            (Printf.sprintf "%s freed again at %s; %s" (obj_name kind id)
               where (backtrace st))
      | None ->
          violation t ~rule:"free-of-unknown"
            (Printf.sprintf "%s freed at %s but never allocated"
               (obj_name kind id) where))
  | Probe.Pool_alloc { pool; bytes = _; used; capacity } ->
      let p =
        match Hashtbl.find_opt t.pools pool with
        | Some p -> p
        | None ->
            let p = { p_used = 0; p_high = 0; p_capacity = capacity } in
            Hashtbl.add t.pools pool p;
            p
      in
      p.p_used <- used;
      if used > p.p_high then p.p_high <- used;
      let prev =
        Option.value (Hashtbl.find_opt t.high_water pool) ~default:0
      in
      if used > prev then Hashtbl.replace t.high_water pool used
  | Probe.Pool_free { pool; bytes = _; used } -> (
      match Hashtbl.find_opt t.pools pool with
      | Some p -> p.p_used <- used
      | None -> ())
  | _ -> ()

(* Ends the pass: the final simulation's survivors are leaks too. *)
let finish t =
  flush_boundary t;
  List.sort Violation.by_time t.violations

let notes t =
  let pools =
    Hashtbl.fold
      (fun pool high acc -> (pool, high) :: acc)
      t.high_water []
    |> List.sort compare
    |> List.map (fun (pool, high) ->
           Printf.sprintf "pool %s high-water %dB" pool high)
  in
  Printf.sprintf "peak live objects %d" t.live_peak :: pools
