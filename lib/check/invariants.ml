(* The protocol-invariant monitors.

   A monitor is a small state machine fed every probe event; it answers
   with a violation detail when the event breaks its rule.  Monitors are
   registered as constructors so each checker run gets fresh state, and
   each monitor resets itself on [Sim_start] (scenarios create several
   simulations in sequence; identities that are per-simulation restart).

   The default registry covers the protocol and engine properties the
   repository relies on:

   - the simulation clock never moves backwards,
   - cumulative acknowledgements (sent and received-side [snd_una]) are
     monotone per channel,
   - a channel never has more than [Params.tx_window] packets outstanding,
   - in-order exactly-once delivery out of each channel,
   - no duplicate message delivery to the application layer,
   - every armed RTO lies within [rto_min, rto_max],
   - an ivar is filled at most once,
   - semaphore permit counts follow the accounting identity
     permits = created + released - acquired, and never go negative,
   - a switch sets CE only when the egress queue really stood at or above
     the configured marking threshold,
   - a segment covered by a received SACK block is never retransmitted
     while the block still stands.

   [register] adds project-specific monitors; see DESIGN.md. *)

open Engine

type monitor = {
  name : string;
  on_event : now:int -> Probe.event -> string option;
}

type ctor = unit -> monitor

(* ---------------- default monitors ---------------- *)

let clock_monotone () =
  let last = ref min_int in
  {
    name = "clock-monotone";
    on_event =
      (fun ~now:_ ev ->
        match ev with
        | Probe.Sim_start ->
            last := min_int;
            None
        | Probe.Clock { now } ->
            if now < !last then
              Some
                (Printf.sprintf "clock moved backwards: %dns after %dns" now
                   !last)
            else begin
              last := now;
              None
            end
        | _ -> None);
  }

(* Channel uids are process-unique, so cross-simulation reuse cannot alias;
   the tables are still cleared on Sim_start to bound their size. *)
let monotone_per_chan name proj =
  let tbl : (int, int) Hashtbl.t = Hashtbl.create 64 in
  {
    name;
    on_event =
      (fun ~now:_ ev ->
        match ev with
        | Probe.Sim_start ->
            Hashtbl.reset tbl;
            None
        | _ -> (
            match proj ev with
            | None -> None
            | Some (chan, node, peer, v) -> (
                match Hashtbl.find_opt tbl chan with
                | Some last when v < last ->
                    Some
                      (Printf.sprintf
                         "chan#%d (%d->%d): value regressed to %d after %d"
                         chan node peer v last)
                | _ ->
                    Hashtbl.replace tbl chan v;
                    None)));
  }

let ack_tx_monotone () =
  monotone_per_chan "ack-monotone" (function
    | Probe.Ack_tx { chan; node; peer; cum_seq } ->
        Some (chan, node, peer, cum_seq)
    | _ -> None)

let snd_una_monotone () =
  monotone_per_chan "snd-una-monotone" (function
    | Probe.Snd_una { chan; node; peer; snd_una } ->
        Some (chan, node, peer, snd_una)
    | _ -> None)

let window_bound () =
  {
    name = "window-bound";
    on_event =
      (fun ~now:_ ev ->
        match ev with
        | Probe.Window { chan; node; peer; outstanding; limit } ->
            if outstanding < 0 || outstanding > limit then
              Some
                (Printf.sprintf
                   "chan#%d (%d->%d): %d packets outstanding, window %d"
                   chan node peer outstanding limit)
            else None
        | _ -> None);
  }

(* The channel contract is stronger than no-duplicates: delivery out of a
   channel is exactly the sequence 0, 1, 2, ... — so track the expected
   next sequence and flag any duplicate, gap or reordering. *)
let chan_deliver_in_order () =
  let tbl : (int, int) Hashtbl.t = Hashtbl.create 64 in
  {
    name = "chan-deliver-in-order";
    on_event =
      (fun ~now:_ ev ->
        match ev with
        | Probe.Sim_start ->
            Hashtbl.reset tbl;
            None
        | Probe.Chan_deliver { chan; node; peer; seq } ->
            let expected =
              Option.value (Hashtbl.find_opt tbl chan) ~default:0
            in
            if seq <> expected then
              Some
                (Printf.sprintf
                   "chan#%d (%d<-%d): delivered seq %d, expected %d" chan
                   node peer seq expected)
            else begin
              Hashtbl.replace tbl chan (expected + 1);
              None
            end
        | _ -> None);
  }

(* Local deliveries carry msg_id -1 and are exempt (they are not uniquely
   identified); everything else must reach a node's application layer at
   most once per (source, epoch, message) — a rebooted sender restarts its
   message ids, so the epoch is part of the identity. *)
let msg_deliver_once () =
  let seen : (int * int * int * int, unit) Hashtbl.t = Hashtbl.create 256 in
  {
    name = "msg-deliver-once";
    on_event =
      (fun ~now:_ ev ->
        match ev with
        | Probe.Sim_start ->
            Hashtbl.reset seen;
            None
        | Probe.Msg_deliver { node; src; port; msg_id; epoch } ->
            if msg_id < 0 then None
            else if Hashtbl.mem seen (node, src, epoch, msg_id) then
              Some
                (Printf.sprintf
                   "node %d: message %d from %d ep %d (port %d) delivered \
                    twice"
                   node msg_id src epoch port)
            else begin
              Hashtbl.add seen (node, src, epoch, msg_id) ();
              None
            end
        | _ -> None);
  }

let rto_bounds () =
  {
    name = "rto-bounds";
    on_event =
      (fun ~now:_ ev ->
        match ev with
        | Probe.Rto_armed { chan; node; peer; rto_ns; lo_ns; hi_ns } ->
            if rto_ns < lo_ns || rto_ns > hi_ns then
              Some
                (Printf.sprintf
                   "chan#%d (%d->%d): armed RTO %dns outside [%dns, %dns]"
                   chan node peer rto_ns lo_ns hi_ns)
            else None
        | _ -> None);
  }

let ivar_single_fill () =
  let filled : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  {
    name = "ivar-single-fill";
    on_event =
      (fun ~now:_ ev ->
        match ev with
        | Probe.Sim_start ->
            Hashtbl.reset filled;
            None
        | Probe.Ivar_fill { id } ->
            if Hashtbl.mem filled id then
              Some (Printf.sprintf "ivar#%d filled twice" id)
            else begin
              Hashtbl.add filled id ();
              None
            end
        | _ -> None);
  }

(* Checked as an accounting identity rather than a bound against the
   initial permit count: Channel.teardown intentionally over-releases its
   window to wake blocked senders, so permits may legitimately exceed the
   creation value — but they must always equal
   created + released - acquired, and never be negative. *)
let sem_balance () =
  let expected : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let check id n permits op =
    match Hashtbl.find_opt expected id with
    | None -> None  (* created before the probe was installed *)
    | Some e ->
        let e = if op = `Acquire then e - n else e + n in
        Hashtbl.replace expected id e;
        if permits <> e then
          Some
            (Printf.sprintf
               "sem#%d: reported %d permits, accounting expects %d" id
               permits e)
        else if permits < 0 then
          Some (Printf.sprintf "sem#%d: negative permits %d" id permits)
        else None
  in
  {
    name = "sem-balance";
    on_event =
      (fun ~now:_ ev ->
        match ev with
        | Probe.Sim_start ->
            Hashtbl.reset expected;
            None
        | Probe.Sem_create { id; permits } ->
            Hashtbl.replace expected id permits;
            None
        | Probe.Sem_acquire { id; n; permits } ->
            check id n permits `Acquire
        | Probe.Sem_release { id; n; permits } ->
            check id n permits `Release
        | _ -> None);
  }

(* A NAPI-style poll pass may process fewer descriptors than its budget
   (that is how the driver decides to re-enable interrupts) but never
   more: the budget is the livelock-mitigation contract. *)
let poll_budget () =
  {
    name = "poll-budget";
    on_event =
      (fun ~now:_ ev ->
        match ev with
        | Probe.Poll_pass { host; processed; budget } ->
            if processed < 0 || processed > budget then
              Some
                (Printf.sprintf
                   "%s: poll pass processed %d descriptors, budget %d" host
                   processed budget)
            else None
        | _ -> None);
  }

(* Once a message from a sender's epoch [e] has been delivered at a node,
   no message from an older epoch of the same sender may be delivered
   there: stale-epoch frames must be rejected at the CLIC module, so a
   delivery from a pre-crash epoch after the reboot was noticed is the
   recovery protocol failing. *)
let epoch_monotone_delivery () =
  let newest : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  {
    name = "epoch-monotone-delivery";
    on_event =
      (fun ~now:_ ev ->
        match ev with
        | Probe.Sim_start ->
            Hashtbl.reset newest;
            None
        | Probe.Msg_deliver { node; src; port = _; msg_id; epoch } ->
            if msg_id < 0 then None  (* local deliveries carry the node's
                                        own epoch trivially *)
            else begin
              match Hashtbl.find_opt newest (node, src) with
              | Some e when epoch < e ->
                  Some
                    (Printf.sprintf
                       "node %d: delivery from %d at stale epoch %d after \
                        epoch %d was seen"
                       node src epoch e)
              | _ ->
                  Hashtbl.replace newest (node, src) epoch;
                  None
            end
        | _ -> None);
  }

(* The kernel pool's reported [used] must track the sum of its own
   alloc/free events, stay within [0, capacity], and a free may never
   exceed what is allocated — across crashes too: Clic_module.shutdown
   returns staged backlog bytes, so a crash must not leave the identity
   broken (each boot's pool has a distinct name). *)
let pool_balance () =
  let pools : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  let check pool ~delta ~used ~capacity =
    let expected, cap =
      match Hashtbl.find_opt pools pool with
      | Some (e, c) -> (e + delta, max c capacity)
      | None -> (used, capacity)  (* first sighting: adopt *)
    in
    Hashtbl.replace pools pool (expected, cap);
    if used <> expected then
      Some
        (Printf.sprintf
           "pool %s: reported %dB used, alloc/free accounting expects %dB"
           pool used expected)
    else if used < 0 then
      Some (Printf.sprintf "pool %s: negative usage %dB" pool used)
    else if cap > 0 && used > cap then
      Some
        (Printf.sprintf "pool %s: %dB used exceeds capacity %dB" pool used
           cap)
    else None
  in
  {
    name = "pool-balance";
    on_event =
      (fun ~now:_ ev ->
        match ev with
        | Probe.Sim_start ->
            Hashtbl.reset pools;
            None
        | Probe.Pool_alloc { pool; bytes; used; capacity } ->
            check pool ~delta:bytes ~used ~capacity
        | Probe.Pool_free { pool; bytes; used } ->
            check pool ~delta:(-bytes) ~used ~capacity:0
        | _ -> None);
  }

(* A flow-controlled MAC must never put a frame on the wire between the
   PAUSE that gated it and the matching resume.  Tx_wire events are only
   emitted by pause-capable NICs, so legacy configurations are exempt by
   construction. *)
let no_tx_while_paused () =
  let paused : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  {
    name = "no-tx-while-paused";
    on_event =
      (fun ~now:_ ev ->
        match ev with
        | Probe.Sim_start ->
            Hashtbl.reset paused;
            None
        | Probe.Pause_state { host; paused = p } ->
            if p then Hashtbl.replace paused host ()
            else Hashtbl.remove paused host;
            None
        | Probe.Tx_wire { host } ->
            if Hashtbl.mem paused host then
              Some
                (Printf.sprintf "%s: frame transmitted while PAUSEd" host)
            else None
        | _ -> None);
  }

(* The switch's shared-buffer ledger: reported occupancy must track the
   sum of its own charge/release deltas (adopting the first sighting, as
   the probe sink may attach mid-run) and stay within [0, total]. *)
let switch_buffer_ledger () =
  let switches : (string, int) Hashtbl.t = Hashtbl.create 4 in
  {
    name = "switch-buffer-ledger";
    on_event =
      (fun ~now:_ ev ->
        match ev with
        | Probe.Sim_start ->
            Hashtbl.reset switches;
            None
        | Probe.Switch_buffer { switch; port = _; delta; occupied; total } ->
            let expected =
              match Hashtbl.find_opt switches switch with
              | Some e -> e + delta
              | None -> occupied  (* first sighting: adopt *)
            in
            Hashtbl.replace switches switch expected;
            if occupied <> expected then
              Some
                (Printf.sprintf
                   "switch %s: reported %dB occupied, charge/release \
                    accounting expects %dB"
                   switch occupied expected)
            else if occupied < 0 then
              Some
                (Printf.sprintf "switch %s: negative occupancy %dB" switch
                   occupied)
            else if occupied > total then
              Some
                (Printf.sprintf
                   "switch %s: %dB occupied exceeds the %dB shared buffer"
                   switch occupied total)
            else None
        | _ -> None);
  }

(* A switch provisioned for losslessness (PAUSE on, bounded uplinks,
   shared buffer covering every port's watermark plus in-flight spill)
   must never drop a frame; any Switch_drop flagged protected is the
   flow-control machinery failing its contract. *)
let zero_loss_when_protected () =
  {
    name = "zero-loss-when-protected";
    on_event =
      (fun ~now:_ ev ->
        match ev with
        | Probe.Switch_drop { switch; port; ingress; protected } ->
            if protected then
              Some
                (Printf.sprintf
                   "switch %s: %s drop on port %d despite lossless \
                    provisioning"
                   switch
                   (if ingress then "ingress" else "egress")
                   port)
            else None
        | _ -> None);
  }

(* ECN marking is tied to real congestion: a switch may set CE only when
   the egress queue at enqueue time stood at or above the configured
   threshold, and only if a threshold was configured at all. *)
let ecn_mark_above_threshold () =
  {
    name = "ecn-mark-above-threshold";
    on_event =
      (fun ~now:_ ev ->
        match ev with
        | Probe.Ecn_mark { switch; port; occupied; threshold } ->
            if threshold <= 0 then
              Some
                (Printf.sprintf
                   "switch %s: CE set on port %d with no threshold \
                    configured (%d)"
                   switch port threshold)
            else if occupied < threshold then
              Some
                (Printf.sprintf
                   "switch %s: CE set on port %d at %dB occupancy, below \
                    the %dB threshold"
                   switch port occupied threshold)
            else None
        | _ -> None);
  }

(* Selective retransmission must honour the peer's SACKs: once a sender
   has seen a SACK block cover a sequence number, retransmitting it while
   the block still stands (i.e. before the cumulative ack retires it) is
   wasted wire — exactly the waste the SACK scheme exists to avoid.  The
   simulator never reneges, so a standing block is authoritative. *)
let sack_no_spurious_retx () =
  let sacked : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  {
    name = "sack-no-spurious-retx";
    on_event =
      (fun ~now:_ ev ->
        match ev with
        | Probe.Sim_start ->
            Hashtbl.reset sacked;
            None
        | Probe.Sack_rx { chan; blocks; _ } ->
            let set =
              match Hashtbl.find_opt sacked chan with
              | Some s -> s
              | None ->
                  let s = Hashtbl.create 16 in
                  Hashtbl.add sacked chan s;
                  s
            in
            List.iter
              (fun (start, stop) ->
                for seq = start to stop - 1 do
                  Hashtbl.replace set seq ()
                done)
              blocks;
            None
        | Probe.Snd_una { chan; snd_una; _ } -> (
            match Hashtbl.find_opt sacked chan with
            | None -> None
            | Some set ->
                (* the cumulative ack retired everything below it *)
                Hashtbl.iter
                  (fun seq () -> if seq < snd_una then Hashtbl.remove set seq)
                  (Hashtbl.copy set);
                None)
        | Probe.Chan_retx { chan; node; peer; seq } -> (
            match Hashtbl.find_opt sacked chan with
            | Some set when Hashtbl.mem set seq ->
                Some
                  (Printf.sprintf
                     "chan#%d (%d->%d): retransmitted seq %d still covered \
                      by a standing SACK"
                     chan node peer seq)
            | _ -> None)
        | _ -> None);
  }

let defaults : ctor list =
  [
    clock_monotone;
    ack_tx_monotone;
    snd_una_monotone;
    window_bound;
    chan_deliver_in_order;
    msg_deliver_once;
    rto_bounds;
    ivar_single_fill;
    sem_balance;
    poll_budget;
    epoch_monotone_delivery;
    pool_balance;
    no_tx_while_paused;
    switch_buffer_ledger;
    zero_loss_when_protected;
    ecn_mark_above_threshold;
    sack_no_spurious_retx;
  ]

let registry : ctor list ref = ref defaults

let register ctor = registry := !registry @ [ ctor ]

let create_all () = List.map (fun ctor -> ctor ()) !registry
