(* A single finding from any analysis pass, with enough context to act on:
   which pass, which rule, the simulation instant, and a free-form detail
   line (for lifecycle findings, the object's event backtrace). *)

type t = {
  pass : string;  (* "lifecycle", "invariant:<rule>", "determinism", "crash" *)
  rule : string;
  time_ns : int;
  detail : string;
}

let make ~pass ~rule ~time_ns detail = { pass; rule; time_ns; detail }

let pp fmt v =
  Format.fprintf fmt "[%s] %s at t=%dns: %s" v.pass v.rule v.time_ns v.detail

let to_string v = Format.asprintf "%a" pp v

let by_time a b =
  match compare a.time_ns b.time_ns with
  | 0 -> compare (a.pass, a.rule, a.detail) (b.pass, b.rule, b.detail)
  | c -> c
