(** The checker orchestrator: run a scenario under the three analysis
    passes (lifecycle sanitizer, invariant monitors, determinism hash)
    and report what they found.

    A scenario runs once as the FIFO baseline and then [seeds] more
    times under seeded permutations of same-instant event ordering; a
    seeded run whose logical trace hash differs from the baseline is a
    determinism violation, while measurement-only drift with an
    identical logical trace is reported as a note.

    This module shares the library's name, so it is the library's
    public face: the passes are re-exported for callers. *)

module Violation = Violation
module Lifecycle = Lifecycle
module Invariants = Invariants
module Determinism = Determinism
module Scenario = Scenario
module Soak = Soak
module Slo = Slo

type report = {
  scenario : string;
  violations : Violation.t list;
  notes : string list;
  baseline_hash : string;
  output : string;  (** rendered figure/stat text of the baseline run *)
  runs : int;  (** baseline + seeded re-runs completed *)
}

val ok : report -> bool

val run_scenario : ?seeds:int -> Scenario.t -> report
(** Runs the scenario under every pass; [seeds] defaults to 3. *)

val run_all : ?seeds:int -> ?names:string list -> unit -> report list
(** All scenarios, or the named subset.
    @raise Invalid_argument on an unknown name. *)

val pp_report : Format.formatter -> report -> unit
