(** The protocol-invariant monitors.

    A monitor is a small state machine fed every probe event; it answers
    with a violation detail when the event breaks its rule.  Monitors
    are registered as constructors so each checker run gets fresh state;
    each monitor resets itself on [Sim_start]. *)

type monitor = {
  name : string;
  on_event : now:int -> Engine.Probe.event -> string option;
      (** [Some detail] when the event violates the rule. *)
}

type ctor = unit -> monitor

val registry : ctor list ref
(** The live registry, initialized with the default monitor set
    (clock monotonicity, ack/snd_una monotone, window bound, in-order
    exactly-once channel delivery, at-most-once app delivery, RTO
    bounds, ivar single-fill, semaphore accounting, poll budget, epoch
    monotone delivery, pool balance, no-tx-while-paused, switch-buffer
    ledger, zero-loss-when-protected).  Exposed so tests can save,
    replace and restore the whole set; prefer {!register} for adding. *)

val register : ctor -> unit
(** Appends a project-specific monitor; see DESIGN.md. *)

val create_all : unit -> monitor list
(** Fresh instances of every registered monitor. *)
