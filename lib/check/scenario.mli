(** The checkable scenarios: every paper experiment the repository
    renders, wrapped behind a uniform runner.

    The record is concrete so tests can build synthetic scenarios. *)

type t = {
  name : string;
  descr : string;
  truncated : bool;
      (** The run is deliberately cut mid-flight ([Net.run_for]): the
          leak check is waived and determinism is compared by common
          prefix instead of exact equality. *)
  run : Format.formatter -> unit;
}

val all : t list
val names : string list
val find : string -> t option
