(* The checkable scenarios: every paper experiment the repository renders,
   wrapped behind a uniform (formatter -> unit) runner.  Bandwidth sweeps
   use their quick size lists — the checker cares about behaviour, not
   curve resolution — and everything else runs exactly as the figure
   command does.

   [truncated] is set for ext4 only: that experiment deliberately cuts
   the run with [Net.run_for] while infinite TCP pump processes are still
   mid-flight.  At the cut, buffers legitimately remain live (so the leak
   check is off) and per-stream progress legitimately depends on timing
   (so the determinism pass compares traces by common prefix instead of
   exact equality). *)

type t = {
  name : string;
  descr : string;
  truncated : bool;
  run : Format.formatter -> unit;
}

let sc ?(truncated = false) name descr run = { name; descr; truncated; run }

let all : t list =
  [
    sc "fig4" "CLIC bandwidth: MTU x 0/1-copy (quick sizes)" (fun fmt ->
        ignore (Report.Figures.fig4 ~quick:true fmt));
    sc "fig5" "CLIC vs TCP/IP bandwidth (quick sizes)" (fun fmt ->
        ignore (Report.Figures.fig5 ~quick:true fmt));
    sc "fig6" "CLIC, MPI-CLIC, MPI, PVM bandwidth (quick sizes)" (fun fmt ->
        ignore (Report.Figures.fig6 ~quick:true fmt));
    sc "fig7" "1400B packet stage timing" (fun fmt ->
        ignore (Report.Figures.fig7 fmt));
    sc "tab1" "headline scalars (quick sizes)" (fun fmt ->
        ignore (Report.Figures.tab1 ~quick:true fmt));
    sc "fig1" "user-to-NIC data path ablation (quick sizes)" (fun fmt ->
        ignore (Report.Figures.fig1 ~quick:true fmt));
    sc "sec2" "interrupt coalescing under saturated streams" (fun fmt ->
        ignore (Report.Figures.sec2 fmt));
    sc "sec3" "CLIC vs GAMMA vs VIA design points" (fun fmt ->
        ignore (Report.Figures.sec3 fmt));
    sc "ext1" "NIC-side fragmentation" (fun fmt ->
        ignore (Report.Figures.ext1 fmt));
    sc "ext2" "channel bonding" (fun fmt ->
        ignore (Report.Figures.ext2 fmt));
    sc "ext3" "64KB broadcast to 8 nodes" (fun fmt ->
        ignore (Report.Figures.ext3 fmt));
    sc "ext4" ~truncated:true
      "latency under competing TCP bulk load (truncated run)" (fun fmt ->
        ignore (Report.Figures.ext4 fmt));
    sc "stress" "synthetic workloads, clean and 2% loss" (fun fmt ->
        ignore (Report.Figures.stress fmt));
    sc "chaos" "reliability under fault injection (quick)" (fun fmt ->
        ignore (Report.Figures.chaos ~quick:true fmt));
    sc "incast" "N->1 incast collapse, tail-drop vs 802.3x PAUSE (quick)"
      (fun fmt -> ignore (Report.Figures.incast ~quick:true fmt));
    sc "fabric"
      "cross-rack incast + spine failure on a leaf/spine fabric (quick)"
      (fun fmt -> ignore (Report.Figures.fabric ~quick:true fmt));
    sc "congestion"
      "congestion-regime matrix + same-seed GBN vs SACK bursty loss (quick)"
      (fun fmt -> ignore (Report.Figures.congestion_matrix ~quick:true fmt));
    sc "slo"
      "one-way open-loop SLO traffic under gray failure (quick; the \
       trace-pinned companion of `clic-sim slo`)"
      (fun fmt -> ignore (Report.Figures.slo_trace ~quick:true fmt));
  ]

let names = List.map (fun s -> s.name) all

let find name = List.find_opt (fun s -> s.name = name) all
