(* The chaos-soak harness: randomized fault schedules against the full
   node stack, with every sanitizer pass watching.

   A soak run is a grid of trials: for each seed, [trials] cluster
   simulations are built from a rotating set of templates, each of which
   combines a traffic pattern with one stress axis — link weather
   (loss, duplication, jitter, frame corruption), kernel-pool pressure
   against the watermarks, an interrupt storm that must flip the driver
   into polling mode, or a node crash with reboot and channel
   re-establishment.  Every trial runs under the lifecycle sanitizer and
   the full invariant-monitor set (the same passes as `clic-sim check`),
   so a schedule that provokes a protocol bug fails loudly rather than
   just producing odd numbers.

   Besides violations, the harness demands *evidence*: a soak that never
   drove the pool past its hard watermark, never entered polling mode, or
   never re-established a channel after a crash was not soaking anything,
   so missing evidence is a failure too (unless the template set was
   narrowed).  The evidence counters come from the stack's own statistics
   and are accumulated per boot — a crashed kernel's counters are
   banked just before the hardware is rebooted. *)

open Engine
open Hw
open Os_model
open Proto
open Cluster

type evidence = {
  mutable ev_delivered : int;  (* messages reaching an application layer *)
  mutable ev_pool_drops : int;  (* NIC ingress drops at the hard watermark *)
  mutable ev_bad_fcs : int;  (* corrupted frames dropped by the MAC *)
  mutable ev_poll_switches : int;  (* IRQ <-> polling mode transitions *)
  mutable ev_polled : int;  (* packets processed by budgeted poll passes *)
  mutable ev_crashes : int;
  mutable ev_reestablished : int;  (* channels re-created after teardown *)
  mutable ev_peer_reboots : int;  (* newer-epoch frames noticed by peers *)
  mutable ev_stale_drops : int;  (* older-epoch frames rejected *)
  mutable ev_retransmissions : int;
  mutable ev_acks_deferred : int;  (* ack batching stretched under pressure *)
  mutable ev_switch_drops : int;  (* frames lost inside a switch, both ends *)
  mutable ev_pause_frames : int;  (* 802.3x PAUSE frames generated *)
  mutable ev_tx_paused_ns : int;  (* time transmitters spent XOFFed *)
  mutable ev_trunk_frames : int;  (* frames carried switch-to-switch *)
  mutable ev_switch_failures : int;  (* switches failed mid-trial *)
  mutable ev_ecn_marks : int;  (* frames CE-marked above the ECN threshold *)
  mutable ev_sacked_segments : int;  (* segments covered by SACK blocks *)
  mutable ev_open_loop : int;  (* open-loop requests answered under grayness *)
  mutable ev_brownout_slowed : int;  (* frames delayed by link brownouts *)
  mutable ev_nic_slow_ns : int;  (* service time added by fail-slow NICs *)
  mutable ev_switch_stall_ns : int;  (* egress pump time lost to stalls *)
}

let fresh_evidence () =
  {
    ev_delivered = 0;
    ev_pool_drops = 0;
    ev_bad_fcs = 0;
    ev_poll_switches = 0;
    ev_polled = 0;
    ev_crashes = 0;
    ev_reestablished = 0;
    ev_peer_reboots = 0;
    ev_stale_drops = 0;
    ev_retransmissions = 0;
    ev_acks_deferred = 0;
    ev_switch_drops = 0;
    ev_pause_frames = 0;
    ev_tx_paused_ns = 0;
    ev_trunk_frames = 0;
    ev_switch_failures = 0;
    ev_ecn_marks = 0;
    ev_sacked_segments = 0;
    ev_open_loop = 0;
    ev_brownout_slowed = 0;
    ev_nic_slow_ns = 0;
    ev_switch_stall_ns = 0;
  }

(* Bank the counters of one node's *current boot*.  Called at the end of a
   trial for every node, and additionally just before [Node.reboot]
   replaces a crashed boot's objects. *)
let bank_boot ev (node : Node.t) =
  List.iter
    (fun nic ->
      ev.ev_pool_drops <- ev.ev_pool_drops + Nic.rx_dropped_mem nic;
      ev.ev_bad_fcs <- ev.ev_bad_fcs + Nic.bad_fcs nic;
      ev.ev_pause_frames <- ev.ev_pause_frames + Nic.pause_frames_tx nic;
      ev.ev_tx_paused_ns <- ev.ev_tx_paused_ns + Nic.tx_paused_ns nic)
    node.Node.nics;
  List.iter
    (fun eth ->
      let driver = (Proto.Ethernet.env eth).Hostenv.driver in
      ev.ev_poll_switches <- ev.ev_poll_switches + Driver.poll_mode_switches driver;
      ev.ev_polled <- ev.ev_polled + Driver.polled_packets driver)
    node.Node.eths;
  let m = Clic.Api.kernel node.Node.clic in
  ev.ev_delivered <- ev.ev_delivered + Clic.Clic_module.messages_delivered m;
  ev.ev_reestablished <- ev.ev_reestablished + Clic.Clic_module.reestablishments m;
  ev.ev_peer_reboots <- ev.ev_peer_reboots + Clic.Clic_module.peer_reboots m;
  ev.ev_stale_drops <- ev.ev_stale_drops + Clic.Clic_module.stale_epoch_drops m;
  ev.ev_retransmissions <- ev.ev_retransmissions + Clic.Clic_module.retransmissions m;
  ev.ev_acks_deferred <- ev.ev_acks_deferred + Clic.Clic_module.acks_deferred m;
  ev.ev_sacked_segments <-
    ev.ev_sacked_segments + Clic.Clic_module.sacked_segments m

let bank_final ev net =
  Array.iter
    (fun node ->
      bank_boot ev node;
      ev.ev_crashes <- ev.ev_crashes + Node.crashes node)
    net.Net.nodes;
  List.iter
    (fun sw ->
      ev.ev_switch_drops <-
        ev.ev_switch_drops + Switch.egress_drops sw + Switch.ingress_drops sw;
      ev.ev_pause_frames <- ev.ev_pause_frames + Switch.pause_frames_tx sw;
      ev.ev_ecn_marks <- ev.ev_ecn_marks + Switch.ecn_marked sw;
      List.iter
        (fun peer ->
          ev.ev_trunk_frames <-
            ev.ev_trunk_frames + Switch.trunk_tx_frames sw ~peer)
        (Switch.trunks sw))
    net.Net.switches

(* ------------------------------------------------------------------ *)
(* Traffic helpers.  All loops are bounded (message counts, not wall
   clock), so every trial runs its simulation to completion and the
   lifecycle leak check stays on.  Senders survive peer death: a send
   that raises [Channel.Dead] backs off and retries — the retry is a
   fresh message (new id), which is what a real application would do. *)

let sender net ~rng ~from ~to_ ~count ~min_size ~max_size ~gap_us ~port =
  let node = Net.node net from in
  Node.spawn node (fun () ->
      for _ = 1 to count do
        let size = min_size + Rng.int rng (max_size - min_size + 1) in
        let rec attempt tries =
          if tries > 0 then
            match Clic.Api.send node.Node.clic ~dst:to_ ~port size with
            | () -> ()
            | exception Clic.Channel.Dead _ ->
                (* peer unreachable: back off, then retry on what is by
                   then a re-established channel (or give up) *)
                Process.delay (Time.us (200. +. Rng.float rng 300.));
                attempt (tries - 1)
        in
        attempt 6;
        Process.delay (Time.us (Rng.float rng gap_us))
      done)

(* ------------------------------------------------------------------ *)
(* Trial templates *)

type template = {
  tp_name : string;
  tp_descr : string;
  tp_run : quick:bool -> seed:int -> evidence -> unit;
}

let scale ~quick n = if quick then max 1 (n / 4) else n

(* Fast-failure channel parameters: a dead peer is declared after a few
   hundred microseconds instead of seconds, so crash trials stay short. *)
let snappy_params =
  {
    Clic.Params.default with
    rto_min = Time.us 80.;
    rto_max = Time.us 600.;
    max_retries = 4;
  }

(* 1. Crash & recovery: ring traffic over three nodes; the middle node
   crashes mid-stream and reboots after a downtime, so peers must declare
   its channels dead, reject its pre-crash stragglers by epoch, and
   re-establish when traffic resumes. *)
let crash_reboot ~quick ~seed ev =
  let config = { Node.default_config with clic_params = snappy_params } in
  let net = Net.create ~config ~n:3 () in
  let rng = Rng.create ~seed in
  let count = scale ~quick 120 in
  for i = 0 to 2 do
    sender net ~rng:(Rng.split rng) ~from:i ~to_:((i + 1) mod 3) ~count
      ~min_size:256 ~max_size:4096 ~gap_us:40. ~port:80
  done;
  let victim = Net.node net 1 in
  Process.spawn net.Net.sim (fun () ->
      Process.delay (Time.us 900.);
      Node.crash victim;
      bank_boot ev victim;  (* the dead boot's objects are replaced below *)
      Process.delay (Time.us 700.);
      Node.reboot victim);
  Net.run net;
  bank_final ev net

(* 2. Pool crunch: a tiny kernel pool with a large transmit window, so
   ring-full staging races past the soft and hard watermarks — advertised
   windows shrink, ack batching stretches, and at the hard mark the NIC
   sheds ingress frames, which retransmission must then cover. *)
let pool_crunch ~quick ~seed ev =
  let clic_params =
    {
      snappy_params with
      tx_window = 32;
      kmem_soft_frac = 0.4;
      kmem_hard_frac = 0.6;
    }
  in
  let config =
    { Node.default_config with clic_params; kmem_capacity = 32 * 1024 }
  in
  let net = Net.create ~config ~n:3 () in
  let rng = Rng.create ~seed in
  let count = scale ~quick 80 in
  (* node 0 both blasts (staging pressure fills its pool) and is blasted
     (so its rx admission gate has frames to shed) *)
  sender net ~rng:(Rng.split rng) ~from:0 ~to_:1 ~count ~min_size:2048
    ~max_size:8192 ~gap_us:5. ~port:81;
  sender net ~rng:(Rng.split rng) ~from:1 ~to_:0 ~count ~min_size:2048
    ~max_size:8192 ~gap_us:5. ~port:81;
  sender net ~rng:(Rng.split rng) ~from:2 ~to_:0 ~count ~min_size:2048
    ~max_size:8192 ~gap_us:5. ~port:81;
  Net.run net;
  bank_final ev net

(* 3. Interrupt storm: per-packet interrupts (no coalescing) under
   back-to-back small messages; the NAPI-enabled driver must cross its
   hot-IRQ threshold, switch to budgeted polling, and fall back to
   interrupts when the ring drains. *)
let irq_storm ~quick ~seed ev =
  let driver_params =
    {
      Driver.default_params with
      Driver.napi = true;
      napi_enter_gap = Time.us 25.;
      napi_enter_after = 3;
      napi_budget = 8;
      napi_interval = Time.us 10.;
    }
  in
  let config =
    {
      Node.default_config with
      clic_params = snappy_params;
      driver_params;
      coalesce = Nic.no_coalesce;
    }
  in
  let net = Net.create ~config ~n:2 () in
  let rng = Rng.create ~seed in
  let count = scale ~quick 400 in
  sender net ~rng:(Rng.split rng) ~from:1 ~to_:0 ~count ~min_size:512
    ~max_size:1024 ~gap_us:2. ~port:82;
  Net.run net;
  bank_final ev net

(* 4. Faulty mesh: every link carries composed weather — independent
   loss, duplication, reordering jitter and frame corruption (FCS drops
   at the MAC) — under all-to-all traffic, plus one crash/reboot cycle,
   because faults compose. *)
let faults_mesh ~quick ~seed ev =
  let fault_rng = Rng.create ~seed:(seed lxor 0x5A5A) in
  let mk_fault () =
    let rng = Rng.split fault_rng in
    Fault.compose
      [
        Fault.drop ~rng:(Rng.split rng) ~prob:0.02;
        Fault.duplicate ~rng:(Rng.split rng) ~prob:0.01;
        Fault.jitter ~rng:(Rng.split rng) ~max_delay:(Time.us 30.);
        Fault.corrupt ~rng:(Rng.split rng) ~prob:0.03;
      ]
  in
  let config =
    {
      Node.default_config with
      clic_params = { snappy_params with max_retries = 8 };
      link_fault = Some mk_fault;
    }
  in
  let net = Net.create ~config ~n:3 () in
  let rng = Rng.create ~seed in
  let count = scale ~quick 100 in
  for i = 0 to 2 do
    for j = 0 to 2 do
      if i <> j then
        sender net ~rng:(Rng.split rng) ~from:i ~to_:j ~count ~min_size:128
          ~max_size:3072 ~gap_us:60. ~port:83
    done
  done;
  let victim = Net.node net 2 in
  Process.spawn net.Net.sim (fun () ->
      Process.delay (Time.us 1500.);
      Node.crash victim;
      bank_boot ev victim;
      Process.delay (Time.us 900.);
      Node.reboot victim);
  Net.run net;
  bank_final ev net

(* 5. Incast storm: an N->1 stampede through the shared-buffer switch,
   once with 802.3x PAUSE end to end (the fabric must hold senders off
   instead of losing frames) and once against the tail-drop baseline
   (whose bounded FIFOs must shed load that retransmission then covers).
   Both halves run under the full monitor set, so a PAUSE deadlock, a
   buffer-ledger leak or a drop on the protected fabric fails loudly. *)
let incast_storm ~quick ~seed ev =
  let one ~pause ~seed =
    let config = Report.Figures.incast_config ~pause in
    let net = Net.create ~config ~n:5 () in
    let rng = Rng.create ~seed in
    let count = scale ~quick 32 in
    for i = 1 to 4 do
      sender net ~rng:(Rng.split rng) ~from:i ~to_:0 ~count ~min_size:4096
        ~max_size:8192 ~gap_us:5. ~port:84
    done;
    Net.run net;
    bank_final ev net
  in
  one ~pause:true ~seed;
  one ~pause:false ~seed:(seed lxor 0x3C3C)

(* 6. Fabric cut: cross-rack traffic over a 2-spine leaf/spine fabric
   with ECMP; one spine dies mid-run (ports drain, routes recompile onto
   the survivor) and later returns, and a node also crashes and reboots
   under the fabric — the topology-aware rewire path.  Retransmission
   must cover the frames that died inside the spine, and the full monitor
   set watches the buffer ledgers through the drain. *)
let fabric_cut ~quick ~seed ev =
  let config =
    {
      Node.default_config with
      clic_params = { snappy_params with max_retries = 8 };
      switch_ingress_frames = Some 6;
      switch_buffer = Some Switch.default_buffer;
      nic_pause = Some Nic.pause_802_3x;
    }
  in
  let topo = Topology.leaf_spine ~racks:2 ~per_rack:2 ~spines:2 () in
  let net = Net.create_topo ~config ~topo () in
  let rng = Rng.create ~seed in
  let count = scale ~quick 60 in
  (* cross-rack pairs in both directions, so both spines carry flows *)
  List.iter
    (fun (from, to_) ->
      sender net ~rng:(Rng.split rng) ~from ~to_ ~count ~min_size:512
        ~max_size:6144 ~gap_us:30. ~port:85)
    [ (0, 2); (1, 3); (2, 1); (3, 0) ];
  Process.spawn net.Net.sim (fun () ->
      Process.delay (Time.us 700.);
      Net.fail_switch net "spine0.";
      ev.ev_switch_failures <- ev.ev_switch_failures + 1;
      Process.delay (Time.us 900.);
      Net.restore_switch net "spine0.");
  let victim = Net.node net 3 in
  Process.spawn net.Net.sim (fun () ->
      Process.delay (Time.us 1200.);
      Node.crash victim;
      bank_boot ev victim;
      Process.delay (Time.us 700.);
      Node.reboot victim);
  Net.run net;
  bank_final ev net

(* 7. ECN collapse: the incast stampede again, but on the ECN-provisioned
   fabric — uncapped egress, CE marking above the shared-buffer threshold,
   PAUSE generation off, DCTCP senders — under both retransmit schemes.
   The monitors watch that every CE mark was earned (occupancy really was
   above threshold) while the stampede completes without a single switch
   drop or PAUSE frame.  A third half runs SACK mode under Gilbert–Elliott
   burst loss on a point-to-point link, because the lossless ECN fabric
   never gives the SACK machinery a hole to advertise — that half is where
   the sacked-segment evidence (and the no-spurious-retransmit monitor's
   workout) comes from. *)
let ecn_collapse ~quick ~seed ev =
  let stampede ~scheme ~seed =
    let config = Report.Figures.congestion_config ~regime:`Ecn ~scheme in
    let net = Net.create ~config ~n:5 () in
    let rng = Rng.create ~seed in
    let count = scale ~quick 32 in
    for i = 1 to 4 do
      sender net ~rng:(Rng.split rng) ~from:i ~to_:0 ~count ~min_size:4096
        ~max_size:8192 ~gap_us:5. ~port:86
    done;
    Net.run net;
    bank_final ev net
  in
  stampede ~scheme:`Go_back_n ~seed;
  stampede ~scheme:`Sack ~seed:(seed lxor 0x6A6A);
  let fault_rng = Rng.create ~seed:(seed lxor 0x1B1B) in
  let mk_fault () =
    Fault.gilbert_elliott ~rng:(Rng.split fault_rng) ~p_good_to_bad:0.01
      ~p_bad_to_good:0.05 ~loss_bad:0.5 ()
  in
  let config =
    {
      Node.default_config with
      clic_params =
        { snappy_params with retx_scheme = `Sack; max_retries = 8 };
      link_fault = Some mk_fault;
    }
  in
  let net = Net.create ~config ~n:2 () in
  let rng = Rng.create ~seed in
  let count = scale ~quick 60 in
  sender net ~rng:(Rng.split rng) ~from:0 ~to_:1 ~count ~min_size:2048
    ~max_size:8192 ~gap_us:10. ~port:87;
  Net.run net;
  bank_final ev net

(* 8. Gray soak: open-loop request-response traffic across a fail-slow
   window — every link sags to a fifth of its rate, two NICs serve 5x
   slower, one switch port stalls its egress pump periodically.  Nothing
   drops and nothing announces itself, so the only acceptable outcomes
   are "every request answered" and "every mechanism demonstrably
   engaged"; a stranded request is a harness failure. *)
let gray_soak ~quick ~seed ev =
  let from_ = Time.us 400. and until_ = Time.ms 3. in
  let faults = ref [] in
  let config =
    {
      Node.default_config with
      link_fault =
        Some
          (fun () ->
            let f = Fault.brownout ~fraction:0.2 ~from_ ~until_ () in
            faults := f :: !faults;
            f);
    }
  in
  let net = Net.create ~config ~n:4 () in
  Workload.inject_gray net ~nic_nodes:[ 1; 2 ] ~nic_factor:5.0
    ~stall_nodes:[ 3 ] ~from_ ~until_ ();
  let rng = Rng.create ~seed in
  let _, slo =
    Workload.open_loop net
      ~seed:(Rng.int rng 1_000_000)
      ~arrival:(Workload.Poisson { mean_gap = Time.us 250. })
      ~requests_per_node:(scale ~quick 60) ~req_size:512 ~resp_size:2048
      ~port:88 ()
  in
  if slo.Workload.slo_stranded > 0 then
    failwith
      (Printf.sprintf "gray-soak: %d open-loop request(s) stranded"
         slo.Workload.slo_stranded);
  ev.ev_open_loop <- ev.ev_open_loop + slo.Workload.slo_completed;
  List.iter
    (fun f -> ev.ev_brownout_slowed <- ev.ev_brownout_slowed + Fault.slowed f)
    !faults;
  Array.iter
    (fun node ->
      List.iter
        (fun nic -> ev.ev_nic_slow_ns <- ev.ev_nic_slow_ns + Nic.slow_extra_ns nic)
        node.Node.nics)
    net.Net.nodes;
  List.iter
    (fun sw ->
      ev.ev_switch_stall_ns <- ev.ev_switch_stall_ns + Switch.egress_stall_ns sw)
    net.Net.switches;
  bank_final ev net

let templates =
  [
    {
      tp_name = "crash-reboot";
      tp_descr = "node crash mid-stream, reboot, channel re-establishment";
      tp_run = crash_reboot;
    };
    {
      tp_name = "pool-crunch";
      tp_descr = "kernel pool driven past both watermarks under load";
      tp_run = pool_crunch;
    };
    {
      tp_name = "irq-storm";
      tp_descr = "per-packet interrupt storm forcing NAPI polling mode";
      tp_run = irq_storm;
    };
    {
      tp_name = "faults-mesh";
      tp_descr = "composed link faults (loss/dup/jitter/corruption) + crash";
      tp_run = faults_mesh;
    };
    {
      tp_name = "incast-storm";
      tp_descr = "N->1 stampede, 802.3x PAUSE fabric vs tail-drop baseline";
      tp_run = incast_storm;
    };
    {
      tp_name = "fabric-cut";
      tp_descr = "spine failure + node crash on a 2-spine leaf/spine fabric";
      tp_run = fabric_cut;
    };
    {
      tp_name = "ecn-collapse";
      tp_descr = "incast on the ECN/DCTCP fabric + SACK under bursty loss";
      tp_run = ecn_collapse;
    };
    {
      tp_name = "gray-soak";
      tp_descr = "open-loop SLO traffic across a fail-slow (gray) window";
      tp_run = gray_soak;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Running trials under the sanitizer passes *)

type trial_result = {
  tr_template : string;
  tr_seed : int;
  tr_violations : Violation.t list;
  tr_crashed : bool;  (* the harness itself raised — always a failure *)
}

type report = {
  s_trials : trial_result list;
  s_evidence : evidence;
  s_notes : string list;
  s_full_set : bool;
}

let violations r = List.concat_map (fun t -> t.tr_violations) r.s_trials

(* Evidence demands, checked only when the full template set ran: each
   stress axis must actually have fired.  Returned as human-readable
   complaints; an empty list means the soak soaked. *)
let missing_evidence r =
  if not r.s_full_set then []
  else
  let ev = r.s_evidence in
  let need what ok = if ok then None else Some what in
  List.filter_map Fun.id
    [
      need "no message was delivered" (ev.ev_delivered > 0);
      need "pool hard watermark never dropped a frame" (ev.ev_pool_drops > 0);
      need "driver never switched into polling mode" (ev.ev_poll_switches > 0);
      need "no packets were processed by poll passes" (ev.ev_polled > 0);
      need "no node crashed" (ev.ev_crashes > 0);
      need "no channel was re-established" (ev.ev_reestablished > 0);
      need "no peer noticed a reboot (newer epoch)" (ev.ev_peer_reboots > 0);
      need "no corrupted frame reached a MAC" (ev.ev_bad_fcs > 0);
      need "nothing was ever retransmitted" (ev.ev_retransmissions > 0);
      need "no switch ever dropped a frame" (ev.ev_switch_drops > 0);
      need "no 802.3x PAUSE frame was generated" (ev.ev_pause_frames > 0);
      need "no transmitter was ever XOFFed" (ev.ev_tx_paused_ns > 0);
      need "no frame ever crossed a trunk" (ev.ev_trunk_frames > 0);
      need "no switch was ever failed mid-trial" (ev.ev_switch_failures > 0);
      need "no frame was ever CE-marked" (ev.ev_ecn_marks > 0);
      need "no segment was ever SACKed" (ev.ev_sacked_segments > 0);
      need "no open-loop request was ever answered" (ev.ev_open_loop > 0);
      need "no link brownout ever slowed a frame" (ev.ev_brownout_slowed > 0);
      need "no NIC ever served fail-slow" (ev.ev_nic_slow_ns > 0);
      need "no switch egress pump ever stalled" (ev.ev_switch_stall_ns > 0);
    ]

let ok ?(require_evidence = true) r =
  violations r = []
  && (not (List.exists (fun t -> t.tr_crashed) r.s_trials))
  && ((not require_evidence) || missing_evidence r = [])

(* One trial: a fresh probe sink wiring the lifecycle sanitizer and every
   invariant monitor (the determinism pass needs repeated runs and is the
   `check` command's job; the soak's axis is schedule breadth). *)
let run_trial (tp : template) ~quick ~seed ev =
  let lifecycle = Lifecycle.create ~leak_check:true () in
  let monitors = Invariants.create_all () in
  let now = ref 0 in
  let found = ref [] in
  let sink event =
    (match event with
    | Probe.Clock { now = n } -> now := n
    | Probe.Sim_start -> now := 0
    | _ -> ());
    Lifecycle.on_event lifecycle event;
    List.iter
      (fun (m : Invariants.monitor) ->
        match m.on_event ~now:!now event with
        | Some detail ->
            found :=
              Violation.make
                ~pass:("invariant:" ^ m.name)
                ~rule:m.name ~time_ns:!now detail
              :: !found
        | None -> ())
      monitors;
  in
  Probe.install sink;
  let outcome =
    Fun.protect
      ~finally:(fun () -> Probe.uninstall ())
      (fun () ->
        match tp.tp_run ~quick ~seed ev with
        | () -> None
        | exception e ->
            Some
              (Violation.make ~pass:"crash" ~rule:"uncaught-exception"
                 ~time_ns:!now (Printexc.to_string e)))
  in
  let crash = Option.to_list outcome in
  {
    tr_template = tp.tp_name;
    tr_seed = seed;
    tr_violations = Lifecycle.finish lifecycle @ List.rev !found @ crash;
    tr_crashed = crash <> [];
  }

let default_seeds = [ 101; 202; 303 ]

let run ?(seeds = default_seeds) ?(trials = List.length templates)
    ?(quick = false) ?only () =
  if trials <= 0 then invalid_arg "Soak.run: trials <= 0";
  let pool =
    match only with
    | None -> templates
    | Some names -> (
        match
          List.filter (fun tp -> List.mem tp.tp_name names) templates
        with
        | [] -> invalid_arg "Soak.run: no matching templates"
        | l -> l)
  in
  let ev = fresh_evidence () in
  let results = ref [] in
  List.iter
    (fun seed ->
      for k = 0 to trials - 1 do
        let tp = List.nth pool (k mod List.length pool) in
        (* distinct trial seeds per (seed, slot), reproducible across runs *)
        let trial_seed = seed + (k * 7717) in
        results := run_trial tp ~quick ~seed:trial_seed ev :: !results
      done)
    seeds;
  let full_set = List.length pool = List.length templates in
  {
    s_trials = List.rev !results;
    s_evidence = ev;
    s_notes =
      (if full_set then []
       else [ "template set narrowed: evidence demands not enforced" ]);
    s_full_set = full_set;
  }

let template_names = List.map (fun tp -> tp.tp_name) templates

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pp_summary fmt r =
  let ev = r.s_evidence in
  Format.fprintf fmt "%-14s %8s %6s@." "template" "seed" "result";
  List.iter
    (fun t ->
      Format.fprintf fmt "%-14s %8d %6s@." t.tr_template t.tr_seed
        (if t.tr_violations = [] then "clean"
         else Printf.sprintf "%d!" (List.length t.tr_violations)))
    r.s_trials;
  Format.fprintf fmt "@.evidence over %d trial(s):@." (List.length r.s_trials);
  let line label v = Format.fprintf fmt "  %-36s %d@." label v in
  line "messages delivered" ev.ev_delivered;
  line "hard-watermark ingress drops" ev.ev_pool_drops;
  line "bad-FCS frames dropped" ev.ev_bad_fcs;
  line "poll-mode switches" ev.ev_poll_switches;
  line "packets via poll passes" ev.ev_polled;
  line "node crashes" ev.ev_crashes;
  line "channels re-established" ev.ev_reestablished;
  line "peer reboots noticed (newer epoch)" ev.ev_peer_reboots;
  line "stale-epoch frames rejected" ev.ev_stale_drops;
  line "retransmissions" ev.ev_retransmissions;
  line "acks deferred under pressure" ev.ev_acks_deferred;
  line "switch drops (ingress + egress)" ev.ev_switch_drops;
  line "802.3x PAUSE frames generated" ev.ev_pause_frames;
  line "tx time XOFFed (ns)" ev.ev_tx_paused_ns;
  line "frames carried on trunks" ev.ev_trunk_frames;
  line "switches failed mid-trial" ev.ev_switch_failures;
  line "frames CE-marked (ECN)" ev.ev_ecn_marks;
  line "segments covered by SACK blocks" ev.ev_sacked_segments;
  line "open-loop requests answered (gray)" ev.ev_open_loop;
  line "frames slowed by link brownouts" ev.ev_brownout_slowed;
  line "NIC fail-slow service added (ns)" ev.ev_nic_slow_ns;
  line "egress pump time stalled (ns)" ev.ev_switch_stall_ns;
  List.iter (fun n -> Format.fprintf fmt "  note: %s@." n) r.s_notes
