(** SLO degradation contracts: judge an open-loop latency record
    ({!Cluster.Workload.slo}) against what production promises under
    gray failure.

    Samples are classified by arrival instant into healthy (before the
    fault window), degraded (inside it), a recovery grace window (not
    judged), and recovered (after the deadline).  Three promises are
    checked: the healthy p999 stays under an absolute bound, the
    degraded p999 bleeds no further than a bounded multiple of that
    bound, and the recovered tail is back under the healthy bound. *)

open Engine
open Cluster

type contract = {
  healthy_p999_us : float;  (** absolute healthy-phase p999 bound *)
  bleed_ratio : float;
      (** degraded p999 may reach at most this multiple of the healthy
          bound — bounded degradation, not unbounded *)
  recovery_deadline : Time.span;
      (** grace window after the fault clears; requests arriving later
          must meet the healthy bound again *)
}

val validate : contract -> unit
(** @raise Invalid_argument for a non-positive p999 bound, a bleed ratio
    below 1, or a non-positive recovery deadline. *)

val default : contract
(** The contract `clic-sim slo` enforces in CI. *)

type verdict = {
  v_contract : contract;
  v_healthy : int;
  v_degraded : int;
  v_recovered : int;  (** sample counts per judged phase *)
  v_healthy_p999_us : float;
  v_degraded_p999_us : float;
  v_recovered_p999_us : float;
  v_violations : Violation.t list;
      (** rules: [healthy-p999], [bounded-bleed], [recovery-deadline],
          [phase-empty], [mechanism-idle] *)
}

val ok : verdict -> bool

val evaluate :
  contract -> slo:Workload.slo -> fault_from:Time.t -> fault_until:Time.t ->
  verdict
(** Pure classification and judgement of one latency record.
    @raise Invalid_argument on a bad contract or an empty fault window. *)

val fault_from : Time.t
val fault_until : Time.t
(** The gray-failure window [run_contract] injects. *)

val run_contract :
  ?quick:bool -> ?contract:contract -> unit -> verdict * Workload.slo
(** Builds the canonical 4-node cluster, runs the Poisson open-loop
    workload across a mid-run gray-failure window (link brownout to a
    quarter rate, 4x-slow NICs on two nodes, periodic egress stalls on a
    third), and judges the record.  Also fails (rule [mechanism-idle])
    if any injected fail-slow mechanism never actually engaged. *)

val pp_verdict : Format.formatter -> verdict -> unit
