(** The chaos-soak harness: randomized fault schedules against the full
    node stack with every sanitizer pass watching.

    For each seed, a rotation of trial templates builds a fresh cluster
    and stresses one axis — composed link weather (loss, duplication,
    jitter, frame corruption), kernel-pool pressure against the
    watermarks, an interrupt storm that must flip the driver into NAPI
    polling, or a node crash with reboot and channel re-establishment.
    Each trial runs under the lifecycle sanitizer and the full invariant
    monitor set; on top of violations, the harness also fails when the
    *evidence counters* show a stress axis never actually fired (a soak
    that never dropped a frame at the hard watermark was not soaking). *)

type evidence = {
  mutable ev_delivered : int;
  mutable ev_pool_drops : int;
      (** NIC ingress drops at the pool's hard watermark *)
  mutable ev_bad_fcs : int;  (** corrupted frames dropped by the MAC *)
  mutable ev_poll_switches : int;  (** IRQ <-> polling transitions *)
  mutable ev_polled : int;  (** packets processed by budgeted poll passes *)
  mutable ev_crashes : int;
  mutable ev_reestablished : int;
  mutable ev_peer_reboots : int;  (** newer-epoch frames noticed by peers *)
  mutable ev_stale_drops : int;  (** older-epoch frames rejected *)
  mutable ev_retransmissions : int;
  mutable ev_acks_deferred : int;
  mutable ev_switch_drops : int;
      (** frames lost inside a switch, ingress + egress *)
  mutable ev_pause_frames : int;  (** 802.3x PAUSE frames generated *)
  mutable ev_tx_paused_ns : int;  (** time transmitters spent XOFFed *)
  mutable ev_trunk_frames : int;  (** frames carried switch-to-switch *)
  mutable ev_switch_failures : int;  (** switches failed mid-trial *)
  mutable ev_ecn_marks : int;
      (** frames CE-marked above the ECN threshold *)
  mutable ev_sacked_segments : int;
      (** segments a sender saw covered by received SACK blocks *)
  mutable ev_open_loop : int;
      (** open-loop requests answered across a gray (fail-slow) window *)
  mutable ev_brownout_slowed : int;
      (** frames delayed by link brownouts, never dropped *)
  mutable ev_nic_slow_ns : int;
      (** extra service time charged by fail-slow NICs *)
  mutable ev_switch_stall_ns : int;
      (** egress pump time lost to injected stalls *)
}

type trial_result = {
  tr_template : string;
  tr_seed : int;
  tr_violations : Violation.t list;
  tr_crashed : bool;
}

type report = {
  s_trials : trial_result list;
  s_evidence : evidence;
  s_notes : string list;
  s_full_set : bool;
      (** every registered template was in the rotation; when [false]
          (an [only] run) the evidence demands are waived *)
}

val template_names : string list
(** ["crash-reboot"; "pool-crunch"; "irq-storm"; "faults-mesh";
    "incast-storm"; "fabric-cut"; "ecn-collapse"; "gray-soak"]. *)

val default_seeds : int list
(** [[101; 202; 303]] — the seeds CI pins. *)

val run :
  ?seeds:int list ->
  ?trials:int ->
  ?quick:bool ->
  ?only:string list ->
  unit ->
  report
(** [run ()] executes [trials] (default: one per template) trials per
    seed, rotating through the template set ([only] narrows it — evidence
    demands are then waived).  [quick] divides traffic volumes by four.
    Trials always run their simulations to completion, so the lifecycle
    leak check stays on.
    @raise Invalid_argument on [trials <= 0] or an unknown [only] name. *)

val violations : report -> Violation.t list

val missing_evidence : report -> string list
(** Human-readable complaints for stress axes that never fired; empty
    when the soak exercised everything it promises. *)

val ok : ?require_evidence:bool -> report -> bool
(** No violations, no harness crashes and (unless [require_evidence] is
    false or the template set was narrowed) no missing evidence. *)

val pp_summary : Format.formatter -> report -> unit
(** The summary table: one line per trial, then the evidence counters. *)
