open Engine
open Os_model
open Hw
open Proto

let ethertype = 0x8875
let lightweight_syscall = Time.us 0.2
let header_bytes = 8

let driver_params =
  {
    Driver.default_params with
    Driver.tx_routine = Time.us 1.5;
    isr_entry = Time.us 1.0;
    isr_per_packet = Time.us 1.0;
    bh_per_packet = Time.us 0.5;
    bh_bytes_per_s = 2e9;
    rx_mode = Driver.Direct_from_isr;
  }

(* GAMMA's flow control, expressed through CLIC's channel machinery with a
   tight window, fast acknowledgements and GAMMA's 8-byte header. *)
let channel_params =
  {
    Clic.Params.default with
    header_bytes;
    ack_every = 4;
    ack_timeout = Time.us 50.;
    tx_window = 32;
  }

type message = { gm_src : int; gm_port : int; gm_bytes : int }

(* GAMMA frames carry the channel's sequenced packets directly; the
   distinct ethertype keeps the two protocols apart on shared wires. *)
type Eth_frame.payload += Gamma of Clic.Wire.packet

type reasm = { mutable seen : int }

type t = {
  env : Hostenv.t;
  eth : Ethernet.t;
  handlers : (int, message -> unit) Hashtbl.t;
  inboxes : (int, message Mailbox.t) Hashtbl.t;
  channels : (int, Clic.Channel.t) Hashtbl.t;
  reassembly : (int * int, reasm) Hashtbl.t;
  mutable next_msg : int;
  mutable delivered : int;
}

let cpu t = t.env.Hostenv.cpu
let sim t = t.env.Hostenv.sim
let node t = t.env.Hostenv.node

let payload_per_packet t =
  Nic.mtu (Driver.nic (Ethernet.env t.eth).Hostenv.driver) - header_bytes

(* Hand one wire packet to GAMMA's own driver: a bare zero-copy
   descriptor, blocking on ring space (GAMMA has no kernel staging). *)
let transmit t ~dst (pkt : Clic.Wire.packet) =
  let driver = (Ethernet.env t.eth).Hostenv.driver in
  let skb = Skbuff.of_user ~header_bytes pkt.Clic.Wire.data_bytes in
  let on_complete () = Skbuff.release skb ~where:"gamma:tx-complete" in
  let posted =
    Driver.transmit driver ~skb ~dst:(Mac.of_node dst)
      ~src:(Mac.of_node (node t)) ~ethertype ~payload:(Gamma pkt)
      ~internal_copy:false ~on_complete ()
  in
  if not posted then begin
    let frame =
      Eth_frame.make ~src:(Mac.of_node (node t)) ~dst:(Mac.of_node dst)
        ~ethertype
        ~payload_bytes:(Skbuff.total_bytes skb)
        (Gamma pkt)
    in
    Nic.post_tx_blocking (Driver.nic driver)
      { Nic.frame; needs_dma = true; internal_copy = false; on_complete }
  end

(* In-order delivery from the channel (interrupt context): each fragment
   is written straight into the destination process's memory, and the
   active handler fires when the message is complete. *)
let rec get_channel t peer =
  match Hashtbl.find_opt t.channels peer with
  | Some c -> c
  | None ->
      let chan =
        Clic.Channel.create (sim t) ~self:(node t) ~peer
          ~params:channel_params
          ~transmit:(fun pkt ~retransmission:_ -> transmit t ~dst:peer pkt)
          ~deliver:(fun pkt -> deliver t pkt)
          ~send_ack:(fun ~cum_seq ~sacks:_ ~ce_echo:_ ->
            Cpu.work (cpu t) (Time.us 0.5);
            transmit t ~dst:peer
              { Clic.Wire.src = node t; epoch = 0; chan_seq = None;
                data_bytes = 0; ce = false;
                kind =
                  Clic.Wire.Chan_ack
                    { cum_seq;
                      window = channel_params.Clic.Params.tx_window;
                      ce_echo = false; sacks = [] } })
          ()
      in
      Hashtbl.add t.channels peer chan;
      chan

and deliver t (pkt : Clic.Wire.packet) =
  match pkt.Clic.Wire.kind with
  | Clic.Wire.Data { port; frag; _ } ->
      if pkt.Clic.Wire.data_bytes > 0 then
        Cpu.copy ~priority:`High (cpu t) ~membus:t.env.Hostenv.membus
          pkt.Clic.Wire.data_bytes;
      let key = (pkt.Clic.Wire.src, frag.Clic.Wire.msg_id) in
      let slot =
        match Hashtbl.find_opt t.reassembly key with
        | Some s -> s
        | None ->
            let s = { seen = 0 } in
            Hashtbl.add t.reassembly key s;
            s
      in
      slot.seen <- slot.seen + 1;
      if slot.seen = frag.Clic.Wire.frag_count then begin
        Hashtbl.remove t.reassembly key;
        t.delivered <- t.delivered + 1;
        match Hashtbl.find_opt t.handlers port with
        | Some h ->
            h
              { gm_src = pkt.Clic.Wire.src; gm_port = port;
                gm_bytes = frag.Clic.Wire.msg_bytes }
        | None -> ()
      end
  | _ -> ()

let rx t (desc : Nic.rx_desc) =
  match desc.Nic.rx_frame.Eth_frame.payload with
  | Gamma pkt -> (
      Cpu.work ~priority:`High (cpu t) (Time.us 1.0);
      match pkt.Clic.Wire.kind with
      | Clic.Wire.Chan_ack { cum_seq; _ } ->
          Clic.Channel.rx_ack (get_channel t pkt.Clic.Wire.src) cum_seq
      | _ -> Clic.Channel.rx (get_channel t pkt.Clic.Wire.src) pkt)
  | _ -> ()

let create env eth =
  let t =
    {
      env;
      eth;
      handlers = Hashtbl.create 8;
      inboxes = Hashtbl.create 8;
      channels = Hashtbl.create 8;
      reassembly = Hashtbl.create 8;
      next_msg = 0;
      delivered = 0;
    }
  in
  Ethernet.register eth ~ethertype (rx t);
  t

let bind_port t ~port handler =
  if Hashtbl.mem t.handlers port then
    invalid_arg (Printf.sprintf "Gamma.bind_port: port %d taken" port);
  Hashtbl.add t.handlers port handler

let send t ~dst ~port n =
  if n < 0 then invalid_arg "Gamma.send: negative size";
  Cpu.work (cpu t) lightweight_syscall;
  let msg_id = t.next_msg in
  t.next_msg <- t.next_msg + 1;
  let chunk = payload_per_packet t in
  let count = max 1 ((n + chunk - 1) / chunk) in
  let chan = get_channel t dst in
  for index = 0 to count - 1 do
    let bytes = if index = count - 1 then n - (index * chunk) else chunk in
    Cpu.work (cpu t) (Time.us 0.5);
    let pkt =
      Clic.Channel.next_seq chan ~data_bytes:bytes
        (Clic.Wire.Data
           { port; sync = false;
             frag =
               { Clic.Wire.msg_id; frag_index = index; frag_count = count;
                 msg_bytes = n } })
    in
    transmit t ~dst pkt
  done

let recv t ~port =
  let box =
    match Hashtbl.find_opt t.inboxes port with
    | Some box -> box
    | None ->
        let box = Mailbox.create () in
        Hashtbl.add t.inboxes port box;
        bind_port t ~port (fun m -> Mailbox.send box m);
        box
  in
  Cpu.work (cpu t) lightweight_syscall;
  Mailbox.recv box

let messages_delivered t = t.delivered
