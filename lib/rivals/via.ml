open Engine
open Os_model
open Hw
open Proto

let ethertype = 0x8876
let descriptor_cost = Time.us 0.3
let doorbell_bytes = 8
let poll_cost = Time.us 0.4
let completion_write = Time.us 0.3
let header_bytes = 4

let driver_params =
  {
    Driver.default_params with
    Driver.tx_routine = Time.us 0.;
    isr_entry = Time.us 0.;
    isr_per_packet = Time.us 0.;
    bh_per_packet = Time.us 0.;
    bh_bytes_per_s = 1e12;
    rx_mode = Driver.Direct_from_isr;
  }

type completion = { vi_src : int; vi_bytes : int }

type Eth_frame.payload += Via of { v_src : int; v_bytes : int }

type t = {
  env : Hostenv.t;
  eth : Ethernet.t;
  completions : completion Queue.t;
  poll_interval : Time.span;
  mutable delivered : int;
  mutable polls : int;
}

let cpu t = t.env.Hostenv.cpu

(* The NIC writes the data and a completion entry straight into the VI's
   user-memory queues; no interrupt, no kernel processing.  (The tiny
   completion_write models the entry's memory write.) *)
let rx t (desc : Nic.rx_desc) =
  match desc.Nic.rx_frame.Eth_frame.payload with
  | Via { v_src; v_bytes } ->
      Cpu.work ~priority:`High (cpu t) completion_write;
      t.delivered <- t.delivered + 1;
      Queue.add { vi_src = v_src; vi_bytes = v_bytes } t.completions
  | _ -> ()

let create env eth ?(poll_interval = Time.us 0.1) () =
  let t =
    {
      env;
      eth;
      completions = Queue.create ();
      poll_interval;
      delivered = 0;
      polls = 0;
    }
  in
  Ethernet.register eth ~ethertype (rx t);
  t

(* Each descriptor carries at most one MTU of data; a library above VIA
   segments larger transfers (and would also have to add reliability). *)
let send t ~dst n =
  if n < 0 then invalid_arg "Via.send: negative size";
  let driver = (Ethernet.env t.eth).Hostenv.driver in
  let nic = Driver.nic driver in
  let chunk = Nic.mtu nic - header_bytes in
  let count = max 1 ((n + chunk - 1) / chunk) in
  for index = 0 to count - 1 do
    let bytes = if index = count - 1 then n - (index * chunk) else chunk in
    (* descriptor build in user space, then one PIO doorbell write *)
    Cpu.work (cpu t) descriptor_cost;
    Resource.use_f (Cpu.resource (cpu t)) (fun () ->
        Bus.transfer (Nic.pci nic) doorbell_bytes);
    let frame =
      Eth_frame.make ~src:(Mac.of_node t.env.Hostenv.node)
        ~dst:(Mac.of_node dst) ~ethertype
        ~payload_bytes:(header_bytes + bytes)
        (Via { v_src = t.env.Hostenv.node; v_bytes = bytes })
    in
    Nic.post_tx_blocking nic
      { Nic.frame; needs_dma = true; internal_copy = false;
        on_complete = (fun () -> ()) }
  done

let recv t =
  let rec poll () =
    t.polls <- t.polls + 1;
    Cpu.work (cpu t) poll_cost;
    match Queue.take_opt t.completions with
    | Some c -> c
    | None ->
        Process.delay t.poll_interval;
        poll ()
  in
  poll ()

let completions_delivered t = t.delivered
let polls t = t.polls
