(** Per-peer reliable delivery: the transport half of CLIC.

    Each pair of nodes shares a bidirectional channel carrying sequenced
    packets with cumulative acknowledgements, a bounded transmit window,
    go-back-N retransmission on timeout, and in-order delivery with an
    out-of-order hold queue (packets may reorder under channel bonding).

    Two congestion-regime extensions ride on the same machinery, both off
    by default.  With {!Params.retx_scheme}[ = `Sack] the receiver
    advertises up to {!Params.sack_blocks} SACK blocks from its
    out-of-order queue on every ack and the sender retransmits only the
    unSACKed holes on timeout.  With {!Params.dctcp} the receiver echoes
    switch-set CE marks back on acks and the sender runs DCTCP: an EWMA
    estimate [alpha] of the marked-ack fraction (gain {!Params.dctcp_g}),
    a multiplicative [1 - alpha/2] window cut once per marked window, and
    additive increase back toward {!Params.tx_window} on clean acks.

    The retransmission timeout adapts to the measured path: each
    unambiguous ack yields an RTT sample feeding Jacobson/Karels smoothing
    (SRTT, RTTVAR; RTO = SRTT + 4 RTTVAR clamped to
    [{!Params.rto_min}, {!Params.rto_max}]), retransmitted packets never
    yield samples (Karn's algorithm), consecutive timeouts without
    progress double the effective RTO up to the cap, and
    {!Params.dup_ack_threshold} duplicate cumulative acks trigger a fast
    retransmit of the first missing packet without waiting for the timer.

    The channel does not touch hardware itself: the owner (CLIC_MODULE)
    supplies [transmit] (hand a packet to a NIC), [deliver] (in-order
    upcall) and [send_ack] closures.  [transmit] for retransmissions is
    invoked from a fresh process; [deliver] runs in the receive (interrupt)
    context. *)

open Engine

type t

exception Dead of int
(** Raised by {!next_seq} (with the peer id) once the channel has been torn
    down: the peer exceeded {!Params.max_retries} consecutive timeouts and
    is considered unreachable.  Senders blocked on the transmit window at
    teardown time are woken and receive this exception too. *)

val create :
  Sim.t ->
  self:int ->
  peer:int ->
  ?epoch:int ->
  params:Params.t ->
  transmit:(Wire.packet -> retransmission:bool -> unit) ->
  deliver:(Wire.packet -> unit) ->
  send_ack:(cum_seq:int -> sacks:(int * int) list -> ce_echo:bool -> unit) ->
  ?defer_acks:(unit -> bool) ->
  ?on_death:(unit -> unit) ->
  unit ->
  t
(** [epoch] (default 0) is this node's boot epoch, stamped into every
    packet the channel sends so that a peer can reject pre-crash
    stragglers.  [defer_acks], when supplied and returning [true]
    (kernel pool above its soft watermark), doubles the ack batch size
    and timeout so fewer ack packets compete for kernel memory.
    [on_death] fires exactly once, from {!teardown}, however the channel
    dies — the owner uses it to fail work (e.g. confirmed sends) that can
    no longer complete. *)

val next_seq : t -> data_bytes:int -> Wire.kind -> Wire.packet
(** Blocks while the transmit window is full; assigns the next sequence
    number, records the packet for retransmission and arms the timer.
    Must run in a process.  @raise Invalid_argument on unreliable kinds.
    @raise Dead if the peer has been declared unreachable (including while
    blocked on the window). *)

val rx : t -> Wire.packet -> unit
(** Handles an incoming sequenced packet: delivers in order, holds
    out-of-order arrivals, acknowledges per the ack policy.  Duplicate
    packets are dropped (re-acknowledged).  Out-of-order arrivals trigger
    an immediate ack naming the hole, so the sender's duplicate-ack
    counter can fire a fast retransmit. *)

val rx_ack :
  t -> ?window:int -> ?sacks:(int * int) list -> ?ce_echo:bool -> int -> unit
(** Cumulative ack from the peer: frees window slots and retransmit state,
    feeds the RTT estimator, resets backoff; a duplicate ack advances the
    fast-retransmit counter instead.  [window], when present, is the
    peer's advertised window: the channel withholds
    [tx_window - window] currently-free permits (best-effort,
    non-blocking) so new transmissions respect the peer's backpressure,
    and releases them again when the advertisement grows.  [sacks]
    (honoured only when {!Params.retx_scheme}[ = `Sack]) marks the named
    outstanding segments as held by the peer, so the next timeout skips
    them; [ce_echo] feeds the DCTCP estimator when {!Params.dctcp} is
    on. *)

val teardown : t -> unit
(** Declares the channel dead immediately: cancels timers, discards
    retransmit state, and wakes blocked senders with {!Dead}.  Invoked
    internally when the retry cap is hit, and by the owner when the peer
    is known to have crashed (a packet with a newer epoch arrived) or
    the local node is shutting down. *)

val is_dead : t -> bool
(** True once the retry cap ({!Params.max_retries} consecutive timeouts
    without progress) has been hit, or after {!teardown}: the channel
    stops retransmitting, declares the peer unreachable, and releases
    blocked senders. *)

(** {1 Statistics} *)

val peer : t -> int
val epoch : t -> int
val outstanding : t -> int

val advertised_window : t -> int
(** The effective transmit window after honouring the peer's latest
    advertisement ([tx_window] minus withheld permits). *)

val acks_deferred : t -> int
(** Ack transmissions pushed past the normal batch boundary because the
    kernel pool was above its soft watermark. *)

val retransmissions : t -> int
val duplicates_dropped : t -> int
val delivered : t -> int

val sacked_segments : t -> int
(** Outstanding segments the peer's SACK blocks marked as held (counted
    once per segment). *)

val retx_bytes : t -> int
(** Wire bytes (CLIC header + payload) spent on retransmissions — the
    quantity the SACK-vs-go-back-N comparison measures. *)

val retx_bytes_saved : t -> int
(** Wire bytes timeouts did {e not} resend because the peer had SACKed
    the segment. *)

val ce_echoes : t -> int
(** Acks received carrying the CE-echo bit (sender side). *)

val ce_marks_rx : t -> int
(** CE-marked packets received (receiver side). *)

val dctcp_alpha : t -> float
(** The DCTCP EWMA estimate of the marked-ack fraction; 0 until marks
    arrive. *)

val cwnd : t -> int
(** The effective transmit limit: the peer's advertised window tightened
    by the DCTCP congestion window when {!Params.dctcp} is on. *)

val srtt : t -> Time.span option
(** Smoothed RTT; [None] until the first sample. *)

val rttvar : t -> Time.span
(** Smoothed RTT deviation. *)

val rto : t -> Time.span
(** The retransmission timeout that would be armed now, including any
    exponential backoff from consecutive timeouts. *)

val rtt_samples : t -> int
(** Unambiguous RTT measurements folded into the estimator. *)

val timeouts : t -> int
(** Retransmission-timer expiries that caused a go-back-N resend. *)

val fast_retransmits : t -> int
(** Holes resent on duplicate acks without waiting for the timer. *)

val rto_stats : t -> Stats.Summary.t
(** Distribution (in microseconds) of the effective RTO at each arming of
    the retransmission timer. *)
