open Engine
open Os_model

let log_src = Logs.Src.create "clic.channel" ~doc:"CLIC reliability channel"

module Log = (val Logs.src_log log_src : Logs.LOG)

exception Dead of int

type t = {
  sim : Sim.t;
  uid : int;  (* process-unique: Gamma and CLIC channels share node ids *)
  self : int;
  peer : int;
  epoch : int;  (* our boot epoch, stamped into every packet we send *)
  params : Params.t;
  transmit : Wire.packet -> retransmission:bool -> unit;
  deliver : Wire.packet -> unit;
  send_ack : cum_seq:int -> sacks:(int * int) list -> ce_echo:bool -> unit;
  defer_acks : (unit -> bool) option;
      (* receive-side backpressure: while true, ack staging is deferred
         (doubled batch size and timeout) to spare the kernel pool *)
  (* transmit side *)
  window : Semaphore.t;
  mutable withheld : int;
      (* permits held out of circulation because the peer advertised a
         window smaller than [params.tx_window] *)
  mutable snd_nxt : int;
  mutable snd_una : int;
  unacked : (int, Wire.packet) Hashtbl.t;
  sent_at : (int, Time.t) Hashtbl.t;
      (* first-transmission times; entries are removed on retransmission so
         only unambiguous packets yield RTT samples (Karn's algorithm) *)
  mutable rto_timer : Ktimer.t option;
  mutable retransmissions : int;
  mutable retries : int;  (* consecutive timeouts without progress *)
  mutable dead : bool;
  (* adaptive RTO state (Jacobson/Karels, in float nanoseconds) *)
  mutable srtt : float option;
  mutable rttvar : float;
  mutable rto : Time.span;  (* base RTO before backoff *)
  mutable backoff : int;  (* consecutive-timeout exponent *)
  mutable rtt_samples : int;
  mutable timeouts : int;
  (* fast retransmit *)
  mutable dup_acks : int;
  mutable last_fast_rtx : int;  (* hole already fast-retransmitted *)
  mutable fast_retransmits : int;
  rto_stats : Stats.Summary.t;  (* effective RTO (us) at each arming *)
  on_death : unit -> unit;  (* owner notification, fired once at teardown *)
  (* selective retransmit (retx_scheme = `Sack) *)
  sacked : (int, unit) Hashtbl.t;
      (* outstanding sequences the peer has SACKed: skipped on RTO until
         the cumulative ack passes them (no reneging in this model) *)
  mutable sacked_segments : int;
  mutable retx_bytes : int;  (* wire bytes spent on retransmissions *)
  mutable retx_bytes_saved : int;
      (* wire bytes an RTO did not resend because the peer held them *)
  (* DCTCP congestion control (params.dctcp) *)
  mutable advertised : int;  (* peer's latest advertised window *)
  mutable cwnd : float;  (* congestion window, packets *)
  mutable dctcp_alpha : float;  (* EWMA fraction of CE-marked acks *)
  mutable ce_echoes : int;  (* acks received with the CE-echo bit *)
  mutable acks_seen : int;  (* acks in the current observation window *)
  mutable ce_acked : int;  (* CE-echo acks in the current window *)
  mutable alpha_update_seq : int;  (* next alpha update once cum passes *)
  (* receive side *)
  mutable rcv_nxt : int;
  mutable ooo : (int * Wire.packet) list;
  mutable unacked_rx : int;  (* delivered packets not yet acknowledged *)
  mutable ack_timer : Ktimer.t option;
  mutable duplicates : int;
  mutable delivered : int;
  mutable acks_deferred : int;
  mutable ce_pending : bool;  (* CE seen since the last ack went out *)
  mutable ce_marks_rx : int;  (* CE-marked packets received *)
}

let next_uid = ref 0

let create sim ~self ~peer ?(epoch = 0) ~params ~transmit ~deliver ~send_ack
    ?defer_acks ?(on_death = fun () -> ()) () =
  let uid = !next_uid in
  incr next_uid;
  {
    sim;
    uid;
    self;
    peer;
    epoch;
    params;
    transmit;
    deliver;
    send_ack;
    defer_acks;
    window = Semaphore.create params.Params.tx_window;
    withheld = 0;
    snd_nxt = 0;
    snd_una = 0;
    unacked = Hashtbl.create 64;
    sent_at = Hashtbl.create 64;
    rto_timer = None;
    retransmissions = 0;
    retries = 0;
    dead = false;
    srtt = None;
    rttvar = 0.;
    rto = params.Params.retransmit_timeout;
    backoff = 0;
    rtt_samples = 0;
    timeouts = 0;
    dup_acks = 0;
    last_fast_rtx = -1;
    fast_retransmits = 0;
    rto_stats = Stats.Summary.create "rto_us";
    on_death;
    sacked = Hashtbl.create 16;
    sacked_segments = 0;
    retx_bytes = 0;
    retx_bytes_saved = 0;
    advertised = params.Params.tx_window;
    cwnd = float_of_int params.Params.tx_window;
    dctcp_alpha = 0.;
    ce_echoes = 0;
    acks_seen = 0;
    ce_acked = 0;
    alpha_update_seq = 0;
    rcv_nxt = 0;
    ooo = [];
    unacked_rx = 0;
    ack_timer = None;
    duplicates = 0;
    delivered = 0;
    acks_deferred = 0;
    ce_pending = false;
    ce_marks_rx = 0;
  }

let cancel_timer slot =
  match slot with Some timer -> Ktimer.cancel timer | None -> ()

(* Feed the invariant monitors (lib/check); all no-ops when no probe sink
   is installed. *)
let probe_window t =
  if !Probe.on then
    Probe.emit
      (Probe.Window
         {
           chan = t.uid;
           node = t.self;
           peer = t.peer;
           outstanding = t.snd_nxt - t.snd_una;
           limit = t.params.Params.tx_window;
         })

let probe_deliver t seq =
  if !Probe.on then
    Probe.emit
      (Probe.Chan_deliver { chan = t.uid; node = t.self; peer = t.peer; seq })

(* ---------------- adaptive RTO ---------------- *)

let rtt_alpha = 0.125
let rtt_beta = 0.25

let effective_rto t =
  let shift = min t.backoff 20 in
  min (t.rto * (1 lsl shift)) t.params.Params.rto_max

(* Jacobson/Karels: SRTT and RTTVAR from each unambiguous sample; the base
   RTO decays back toward the smoothed RTT as fresh samples arrive. *)
let note_rtt t sample =
  t.rtt_samples <- t.rtt_samples + 1;
  let s = float_of_int sample in
  (match t.srtt with
  | None ->
      t.srtt <- Some s;
      t.rttvar <- s /. 2.
  | Some srtt ->
      t.rttvar <- ((1. -. rtt_beta) *. t.rttvar) +. (rtt_beta *. Float.abs (srtt -. s));
      t.srtt <- Some (((1. -. rtt_alpha) *. srtt) +. (rtt_alpha *. s)));
  let srtt = match t.srtt with Some v -> v | None -> s in
  let raw = int_of_float (srtt +. (4. *. t.rttvar)) in
  t.rto <- max t.params.Params.rto_min (min raw t.params.Params.rto_max)

(* ---------------- transmit side ---------------- *)

let rec arm_rto t =
  cancel_timer t.rto_timer;
  let span = effective_rto t in
  if !Probe.on then
    Probe.emit
      (Probe.Rto_armed
         {
           chan = t.uid;
           node = t.self;
           peer = t.peer;
           rto_ns = span;
           lo_ns = t.params.Params.rto_min;
           hi_ns = t.params.Params.rto_max;
         });
  Stats.Summary.add t.rto_stats (Time.to_us span);
  t.rto_timer <-
    Some
      (Ktimer.after t.sim span (fun () ->
           t.rto_timer <- None;
           on_rto t))

(* A peer that never acknowledges is eventually declared dead.  Blocked
   senders must not wait on the window forever: each one is woken in its
   own event (so one sender's [Dead] raise cannot strand the others) and
   finds [t.dead] set when its acquire returns. *)
and teardown t =
  if not t.dead then begin
    if !Probe.on then
      Probe.emit
        (Probe.Chan_dead { chan = t.uid; node = t.self; peer = t.peer });
    t.dead <- true;
    cancel_timer t.rto_timer;
    t.rto_timer <- None;
    cancel_timer t.ack_timer;
    t.ack_timer <- None;
    Hashtbl.reset t.unacked;
    Hashtbl.reset t.sent_at;
    Hashtbl.reset t.sacked;
    (* Withheld permits go back into circulation so the accounting identity
       the sanitizer checks still balances. *)
    if t.withheld > 0 then begin
      Semaphore.release ~n:t.withheld t.window;
      t.withheld <- 0
    end;
    for _ = 1 to Semaphore.waiters t.window do
      Sim.post t.sim ~after:0 (fun () -> Semaphore.release t.window)
    done;
    Sim.post t.sim ~after:0 (fun () ->
        Semaphore.release ~n:t.params.Params.tx_window t.window);
    t.on_death ()
  end

(* Resend outstanding segments on timeout, in ascending sequence order so
   the receiver sees the oldest hole filled first, with the RTO doubled
   (capped) for each consecutive timeout without progress.  Go-back-N
   resends everything; SACK mode resends only the holes — segments the
   peer has advertised as held are skipped (and the bytes they would have
   cost are credited to [retx_bytes_saved]). *)
and on_rto t =
  if t.dead then ()
  else if t.snd_una < t.snd_nxt && t.retries >= t.params.Params.max_retries
  then begin
    Log.err (fun m ->
        m "peer %d unreachable: giving up after %d retries (%d unacked)"
          t.peer t.params.Params.max_retries (t.snd_nxt - t.snd_una));
    teardown t
  end
  else if t.snd_una < t.snd_nxt then begin
    let sack_mode = t.params.Params.retx_scheme = `Sack in
    t.retries <- t.retries + 1;
    t.timeouts <- t.timeouts + 1;
    t.backoff <- t.backoff + 1;
    Log.debug (fun m ->
        m "rto to peer %d: %s from seq %d (%d outstanding, retry %d, next \
           rto %a)"
          t.peer
          (if sack_mode then "sack holes" else "go-back-N")
          t.snd_una (t.snd_nxt - t.snd_una) t.retries Time.pp
          (effective_rto t));
    let seqs = ref [] in
    for seq = t.snd_una to t.snd_nxt - 1 do
      match Hashtbl.find_opt t.unacked seq with
      | Some pkt ->
          if sack_mode && Hashtbl.mem t.sacked seq then
            t.retx_bytes_saved <-
              t.retx_bytes_saved
              + Wire.wire_bytes ~header_bytes:t.params.Params.header_bytes pkt
          else begin
            Hashtbl.remove t.sent_at seq;
            t.retx_bytes <-
              t.retx_bytes
              + Wire.wire_bytes ~header_bytes:t.params.Params.header_bytes pkt;
            if !Probe.on then
              Probe.emit
                (Probe.Chan_retx
                   { chan = t.uid; node = t.self; peer = t.peer; seq });
            seqs := pkt :: !seqs
          end
      | None -> ()
    done;
    let seqs = List.rev !seqs in
    t.retransmissions <- t.retransmissions + List.length seqs;
    arm_rto t;
    Process.spawn t.sim (fun () ->
        List.iter (fun pkt -> t.transmit pkt ~retransmission:true) seqs)
  end

let next_seq t ~data_bytes kind =
  if not (Wire.is_reliable kind) then
    invalid_arg "Channel.next_seq: unreliable kind";
  if t.dead then raise (Dead t.peer);
  Semaphore.acquire t.window;
  if t.dead then raise (Dead t.peer);
  let seq = t.snd_nxt in
  t.snd_nxt <- t.snd_nxt + 1;
  let pkt =
    { Wire.src = t.self; epoch = t.epoch; chan_seq = Some seq; data_bytes;
      ce = false; kind }
  in
  Hashtbl.replace t.unacked seq pkt;
  Hashtbl.replace t.sent_at seq (Sim.now t.sim);
  probe_window t;
  if t.rto_timer = None then arm_rto t;
  pkt

(* The hole named by [params.dup_ack_threshold] duplicate cumulative acks
   is resent once per sequence number; the RTO (with its backoff cleared
   by any later progress) covers a lost fast retransmit. *)
let fast_retransmit t =
  match Hashtbl.find_opt t.unacked t.snd_una with
  | None -> ()
  | Some pkt ->
      t.last_fast_rtx <- t.snd_una;
      t.dup_acks <- 0;
      t.fast_retransmits <- t.fast_retransmits + 1;
      t.retransmissions <- t.retransmissions + 1;
      t.retx_bytes <-
        t.retx_bytes
        + Wire.wire_bytes ~header_bytes:t.params.Params.header_bytes pkt;
      if !Probe.on then
        Probe.emit
          (Probe.Chan_retx
             { chan = t.uid; node = t.self; peer = t.peer; seq = t.snd_una });
      Hashtbl.remove t.sent_at t.snd_una;
      Log.debug (fun m ->
          m "fast retransmit of seq %d to peer %d" t.snd_una t.peer);
      arm_rto t;
      Process.spawn t.sim (fun () -> t.transmit pkt ~retransmission:true)

(* The effective transmit limit is the tighter of the peer's advertised
   window and (under DCTCP) the congestion window, never below one
   packet.  The difference to [tx_window] is held out of the semaphore.
   Shrinking is best-effort and non-blocking: only currently-free permits
   can be withheld (slots covering packets already in flight are
   reclaimed as their acks free them, and a later ack reapplies the small
   limit). *)
let effective_limit t =
  let adv = max 1 (min t.advertised t.params.Params.tx_window) in
  let cw =
    if t.params.Params.dctcp then max 1 (int_of_float t.cwnd)
    else t.params.Params.tx_window
  in
  min adv cw

let apply_window_limit t =
  let target = t.params.Params.tx_window - effective_limit t in
  while t.withheld > target do
    Semaphore.release t.window;
    t.withheld <- t.withheld - 1
  done;
  let continue = ref true in
  while t.withheld < target && !continue do
    if Semaphore.try_acquire t.window then t.withheld <- t.withheld + 1
    else continue := false
  done

(* DCTCP (Alizadeh et al.): estimate the fraction of acks carrying a CE
   echo over roughly one window of acks, smooth it into [alpha] with gain
   [g], and on any marked window cut the congestion window by
   [alpha / 2] — a multiplicative decrease proportional to how congested
   the path actually is, instead of TCP's blanket halving.  Unmarked acks
   grow the window additively back toward [tx_window]. *)
let dctcp_on_ack t ~ce_echo ~progressed cum_seq =
  if t.params.Params.dctcp then begin
    t.acks_seen <- t.acks_seen + 1;
    if ce_echo then begin
      t.ce_acked <- t.ce_acked + 1;
      t.ce_echoes <- t.ce_echoes + 1
    end;
    if progressed && not ce_echo then
      t.cwnd <-
        min
          (float_of_int t.params.Params.tx_window)
          (t.cwnd +. (1. /. Float.max 1. t.cwnd));
    if cum_seq > t.alpha_update_seq then begin
      let g = t.params.Params.dctcp_g in
      let f = float_of_int t.ce_acked /. float_of_int t.acks_seen in
      t.dctcp_alpha <- ((1. -. g) *. t.dctcp_alpha) +. (g *. f);
      if t.ce_acked > 0 then
        t.cwnd <- Float.max 1. (t.cwnd *. (1. -. (t.dctcp_alpha /. 2.)));
      t.acks_seen <- 0;
      t.ce_acked <- 0;
      t.alpha_update_seq <- t.snd_nxt
    end;
    apply_window_limit t
  end

(* SACK blocks name segments the peer already holds: mark them so the
   next RTO resends only the holes.  The cumulative ack passing a
   sequence retires its mark; the receiver never reneges in this model
   (held packets stay held until delivered), so a mark is trustworthy
   until then. *)
let note_sacks t sacks =
  if sacks <> [] then begin
    if !Probe.on then
      Probe.emit
        (Probe.Sack_rx
           { chan = t.uid; node = t.self; peer = t.peer; blocks = sacks });
    List.iter
      (fun (start, stop) ->
        for seq = max start t.snd_una to stop - 1 do
          if Hashtbl.mem t.unacked seq && not (Hashtbl.mem t.sacked seq)
          then begin
            Hashtbl.replace t.sacked seq ();
            t.sacked_segments <- t.sacked_segments + 1
          end
        done)
      sacks
  end

let[@clic.atomic] rx_ack t ?window ?(sacks = []) ?(ce_echo = false) cum_seq =
  if !Probe.on then
    Probe.emit
      (Probe.Ack_rx { chan = t.uid; node = t.self; peer = t.peer; cum_seq });
  if t.dead then ()
  else begin
  let progressed = cum_seq > t.snd_una in
  if progressed then begin
    let now = Sim.now t.sim in
    let upper = min cum_seq t.snd_nxt in
    (* Sample the newest acked packet that was never retransmitted. *)
    let sample = ref None in
    for seq = t.snd_una to upper - 1 do
      (match Hashtbl.find_opt t.sent_at seq with
      | Some sent -> sample := Some (Time.diff now sent)
      | None -> ());
      Hashtbl.remove t.sent_at seq
    done;
    (match !sample with Some s -> note_rtt t s | None -> ());
    t.retries <- 0;
    t.backoff <- 0;
    t.dup_acks <- 0;
    let freed = upper - t.snd_una in
    for seq = t.snd_una to t.snd_una + freed - 1 do
      Hashtbl.remove t.unacked seq;
      Hashtbl.remove t.sacked seq
    done;
    t.snd_una <- t.snd_una + freed;
    Semaphore.release ~n:freed t.window;
    if !Probe.on then
      Probe.emit
        (Probe.Snd_una
           { chan = t.uid; node = t.self; peer = t.peer; snd_una = t.snd_una });
    probe_window t;
    if t.snd_una = t.snd_nxt then begin
      cancel_timer t.rto_timer;
      t.rto_timer <- None
    end
    else arm_rto t
  end
  else if cum_seq = t.snd_una && t.snd_una < t.snd_nxt then begin
    t.dup_acks <- t.dup_acks + 1;
    if
      t.dup_acks >= t.params.Params.dup_ack_threshold
      && t.last_fast_rtx <> t.snd_una
    then fast_retransmit t
  end;
  if t.params.Params.retx_scheme = `Sack then note_sacks t sacks;
  dctcp_on_ack t ~ce_echo ~progressed cum_seq;
  (match window with
  | Some w ->
      t.advertised <- w;
      apply_window_limit t
  | None -> ())
  end

(* ---------------- receive side ---------------- *)

(* Up to [params.sack_blocks] maximal contiguous runs from the (sorted)
   out-of-order queue, as absolute half-open ranges above [rcv_nxt]. *)
let sack_blocks_of t =
  if t.params.Params.retx_scheme <> `Sack then []
  else begin
    let blocks = ref [] and count = ref 0 in
    let flush lo hi =
      if !count < t.params.Params.sack_blocks then begin
        blocks := (lo, hi + 1) :: !blocks;
        incr count
      end
    in
    let run = ref None in
    List.iter
      (fun (s, _) ->
        match !run with
        | Some (lo, hi) when s = hi + 1 -> run := Some (lo, s)
        | Some (lo, hi) ->
            flush lo hi;
            run := Some (s, s)
        | None -> run := Some (s, s))
      t.ooo;
    (match !run with Some (lo, hi) -> flush lo hi | None -> ());
    List.rev !blocks
  end

let schedule_ack_now t =
  t.unacked_rx <- 0;
  cancel_timer t.ack_timer;
  t.ack_timer <- None;
  let cum = t.rcv_nxt in
  let sacks = sack_blocks_of t in
  let ce_echo = t.ce_pending in
  t.ce_pending <- false;
  if !Probe.on then begin
    Probe.emit
      (Probe.Ack_tx { chan = t.uid; node = t.self; peer = t.peer; cum_seq = cum });
    if sacks <> [] then
      Probe.emit
        (Probe.Sack_tx
           { chan = t.uid; node = t.self; peer = t.peer; blocks = sacks })
  end;
  Process.spawn t.sim (fun () -> t.send_ack ~cum_seq:cum ~sacks ~ce_echo)

let deferring t =
  match t.defer_acks with Some f -> f () | None -> false

let note_delivery t =
  t.unacked_rx <- t.unacked_rx + 1;
  (* Under pool pressure, ack staging is deferred: batches double and the
     latency bound doubles, halving the ack packets competing for kernel
     memory while the cumulative protocol keeps correctness. *)
  let defer = deferring t in
  let every =
    if defer then 2 * t.params.Params.ack_every else t.params.Params.ack_every
  in
  let timeout =
    if defer then 2 * t.params.Params.ack_timeout
    else t.params.Params.ack_timeout
  in
  if defer && t.unacked_rx >= t.params.Params.ack_every && t.unacked_rx < every
  then t.acks_deferred <- t.acks_deferred + 1;
  if t.unacked_rx >= every then schedule_ack_now t
  else if t.ack_timer = None then
    t.ack_timer <-
      Some
        (Ktimer.after t.sim timeout (fun () ->
             t.ack_timer <- None;
             if t.unacked_rx > 0 then schedule_ack_now t))

let rec drain_ooo t =
  match t.ooo with
  | (s, pkt) :: rest when s = t.rcv_nxt ->
      t.ooo <- rest;
      t.rcv_nxt <- t.rcv_nxt + 1;
      t.delivered <- t.delivered + 1;
      probe_deliver t s;
      t.deliver pkt;
      note_delivery t;
      drain_ooo t
  | (s, _) :: rest when s < t.rcv_nxt ->
      (* A held copy the cumulative sequence has since passed: it is a
         duplicate like any other and must be counted as one. *)
      t.ooo <- rest;
      t.duplicates <- t.duplicates + 1;
      drain_ooo t
  | _ -> ()

let[@clic.atomic] rx t pkt =
  if t.dead then ()
  else
    match pkt.Wire.chan_seq with
    | None -> invalid_arg "Channel.rx: unsequenced packet"
    | Some seq ->
        if pkt.Wire.ce then begin
          (* The congestion signal is per-arrival: any CE-marked packet
             since the last ack makes the next ack echo it, duplicates
             included (a retransmitted copy crossing a hot queue is
             evidence of congestion too). *)
          t.ce_marks_rx <- t.ce_marks_rx + 1;
          t.ce_pending <- true
        end;
        if seq = t.rcv_nxt then begin
          t.rcv_nxt <- t.rcv_nxt + 1;
          t.delivered <- t.delivered + 1;
          probe_deliver t seq;
          t.deliver pkt;
          note_delivery t;
          drain_ooo t
        end
        else if seq > t.rcv_nxt then begin
          if not (List.mem_assoc seq t.ooo) then begin
            let rec ins = function
              | [] -> [ (seq, pkt) ]
              | (s, _) :: _ as rest when seq < s -> (seq, pkt) :: rest
              | hd :: rest -> hd :: ins rest
            in
            t.ooo <- ins t.ooo
          end
          else t.duplicates <- t.duplicates + 1;
          (* Announce the hole so the sender can recover promptly: each of
             these immediate acks repeats the same cumulative sequence, and
             the sender's duplicate-ack counter turns them into a fast
             retransmit. *)
          schedule_ack_now t
        end
        else begin
          t.duplicates <- t.duplicates + 1;
          schedule_ack_now t
        end

let is_dead t = t.dead
let peer t = t.peer
let epoch t = t.epoch
let outstanding t = t.snd_nxt - t.snd_una
let advertised_window t = t.params.Params.tx_window - t.withheld
let sacked_segments t = t.sacked_segments
let retx_bytes t = t.retx_bytes
let retx_bytes_saved t = t.retx_bytes_saved
let ce_echoes t = t.ce_echoes
let ce_marks_rx t = t.ce_marks_rx
let dctcp_alpha t = t.dctcp_alpha
let cwnd t = effective_limit t
let acks_deferred t = t.acks_deferred
let retransmissions t = t.retransmissions
let duplicates_dropped t = t.duplicates
let delivered t = t.delivered
let srtt t = Option.map (fun s -> int_of_float s) t.srtt
let rttvar t = int_of_float t.rttvar
let rto t = effective_rto t
let rtt_samples t = t.rtt_samples
let timeouts t = t.timeouts
let fast_retransmits t = t.fast_retransmits
let rto_stats t = t.rto_stats
