open Engine

type data_path =
  | Pio_direct
  | Dma_nic_buffer
  | Staged_direct
  | Staged_nic_buffer

type t = {
  module_tx : Time.span;
  module_rx : Time.span;
  header_bytes : int;
  data_path : data_path;
  stage_on_busy : bool;
  ack_every : int;
  ack_timeout : Time.span;
  retransmit_timeout : Time.span;
  rto_min : Time.span;
  rto_max : Time.span;
  dup_ack_threshold : int;
  max_retries : int;
  tx_window : int;
  use_nic_fragmentation : bool;
  super_packet_bytes : int;
  staging_bytes_per_s : float;
  staging_overhead : Time.span;
}

let default =
  {
    module_tx = Time.us 0.7;
    module_rx = Time.us 2.0;
    header_bytes = 12;
    data_path = Dma_nic_buffer;
    stage_on_busy = true;
    ack_every = 2;
    ack_timeout = Time.us 100.;
    retransmit_timeout = Time.ms 20.;
    rto_min = Time.ms 2.;
    rto_max = Time.ms 500.;
    dup_ack_threshold = 3;
    max_retries = 30;
    tx_window = 48;
    use_nic_fragmentation = false;
    super_packet_bytes = 32768;
    staging_bytes_per_s = 80e6;
    staging_overhead = Time.us 2.;
  }

let one_copy = { default with data_path = Staged_nic_buffer }

let payload_per_packet t ~link_mtu =
  let max_packet =
    if t.use_nic_fragmentation then t.super_packet_bytes else link_mtu
  in
  max_packet - t.header_bytes
