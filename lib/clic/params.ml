open Engine

type data_path =
  | Pio_direct
  | Dma_nic_buffer
  | Staged_direct
  | Staged_nic_buffer

type t = {
  module_tx : Time.span;
  module_rx : Time.span;
  header_bytes : int;
  data_path : data_path;
  stage_on_busy : bool;
  ack_every : int;
  ack_timeout : Time.span;
  retransmit_timeout : Time.span;
  rto_min : Time.span;
  rto_max : Time.span;
  dup_ack_threshold : int;
  max_retries : int;
  tx_window : int;
  use_nic_fragmentation : bool;
  super_packet_bytes : int;
  staging_bytes_per_s : float;
  staging_overhead : Time.span;
  kmem_soft_frac : float;
  kmem_hard_frac : float;
  soft_window_frac : float;
  retx_scheme : [ `Go_back_n | `Sack ];
  sack_blocks : int;
  dctcp : bool;
  dctcp_g : float;
  ecn_threshold : int;
}

let default =
  {
    module_tx = Time.us 0.7;
    module_rx = Time.us 2.0;
    header_bytes = 12;
    data_path = Dma_nic_buffer;
    stage_on_busy = true;
    ack_every = 2;
    ack_timeout = Time.us 100.;
    retransmit_timeout = Time.ms 20.;
    rto_min = Time.ms 2.;
    rto_max = Time.ms 500.;
    dup_ack_threshold = 3;
    max_retries = 30;
    tx_window = 48;
    use_nic_fragmentation = false;
    super_packet_bytes = 32768;
    staging_bytes_per_s = 80e6;
    staging_overhead = Time.us 2.;
    kmem_soft_frac = 0.5;
    kmem_hard_frac = 0.875;
    soft_window_frac = 0.5;
    retx_scheme = `Go_back_n;
    sack_blocks = Wire.max_sack_blocks;
    dctcp = false;
    dctcp_g = 0.0625;
    ecn_threshold = 32 * 1024;
  }

let one_copy = { default with data_path = Staged_nic_buffer }

(* Incast tuning: a tighter transmit window slows the N→1 overload rate,
   and snappier timeouts recover quickly from the drops a congested switch
   still inflicts.  [rto_max] must leave the exponential backoff real room:
   with a low cap every loser's timer saturates at the same value and the
   N retry storms phase-lock, so one sender can meet a full egress queue on
   every single attempt until it declares the peer dead. *)
let congestion =
  {
    default with
    tx_window = 16;
    retransmit_timeout = Time.ms 2.;
    rto_min = Time.us 500.;
    rto_max = Time.ms 10.;
  }

let validate t =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if t.rto_min > t.rto_max then
    fail "Clic.Params: rto_min %d > rto_max %d" t.rto_min t.rto_max;
  if t.dup_ack_threshold <= 0 then
    fail "Clic.Params: dup_ack_threshold %d <= 0" t.dup_ack_threshold;
  if t.max_retries <= 0 then
    fail "Clic.Params: max_retries %d <= 0" t.max_retries;
  if t.tx_window <= 0 then fail "Clic.Params: tx_window %d <= 0" t.tx_window;
  if t.ack_every <= 0 then fail "Clic.Params: ack_every %d <= 0" t.ack_every;
  if
    not
      (t.kmem_soft_frac > 0.
      && t.kmem_soft_frac <= t.kmem_hard_frac
      && t.kmem_hard_frac <= 1.)
  then
    fail
      "Clic.Params: kmem watermarks out of order (want 0 < soft %g <= hard \
       %g <= 1)"
      t.kmem_soft_frac t.kmem_hard_frac;
  if not (t.soft_window_frac > 0. && t.soft_window_frac <= 1.) then
    fail "Clic.Params: soft_window_frac %g outside (0, 1]" t.soft_window_frac;
  if t.sack_blocks < 1 || t.sack_blocks > Wire.max_sack_blocks then
    fail "Clic.Params: sack_blocks %d outside [1, %d]" t.sack_blocks
      Wire.max_sack_blocks;
  if not (t.dctcp_g > 0. && t.dctcp_g <= 1.) then
    fail "Clic.Params: dctcp_g %g outside (0, 1]" t.dctcp_g;
  if t.ecn_threshold <= 0 then
    fail "Clic.Params: ecn_threshold %d <= 0" t.ecn_threshold;
  t

let payload_per_packet t ~link_mtu =
  let max_packet =
    if t.use_nic_fragmentation then t.super_packet_bytes else link_mtu
  in
  max_packet - t.header_bytes
