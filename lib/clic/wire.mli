(** The CLIC wire format.

    A CLIC packet rides directly on a level-1 Ethernet header; its own
    12-byte header identifies the packet kind (an MPI packet, an internal
    packet, a kernel-function packet, etc., in the paper's words), the
    destination port, and the fragment coordinates of the message it
    belongs to.  Reliable kinds additionally carry the per-peer channel
    sequence number. *)

type frag = {
  msg_id : int;
  frag_index : int;
  frag_count : int;
  msg_bytes : int;  (** total message size, bytes *)
}

type kind =
  | Data of { port : int; sync : bool; frag : frag }
      (** ordinary message fragment; [sync] requests an end-to-end
          message acknowledgement (send-with-confirmation) *)
  | Remote_write of { region : int; frag : frag }
      (** asynchronous remote write: delivered straight into the target
          process's memory, no receive call needed *)
  | Bcast of { port : int; frag : frag }
      (** broadcast/multicast fragment (unreliable, Ethernet data-link
          multicast) *)
  | Chan_ack of {
      cum_seq : int;
      window : int;
      ce_echo : bool;
      sacks : (int * int) list;
    }
      (** cumulative channel acknowledgement (unsequenced); [window] is
          the receiver's advertised transmit window — shrunk below
          {!Params.tx_window} while its kernel pool is under pressure.
          [ce_echo] reflects congestion-experienced marks back to the
          sender (DCTCP-style); [sacks] advertises up to
          {!max_sack_blocks} out-of-order runs the receiver already
          holds, as half-open absolute ranges [[start, stop)] strictly
          above [cum_seq], ascending and non-mergeable *)
  | Msg_ack of { msg_id : int }
      (** end-to-end confirmation for a [sync] message (sequenced) *)

type packet = {
  src : int;
  epoch : int;
      (** the sender's boot epoch, bumped on every reboot: receivers
          reject frames from an older epoch than the newest they have
          seen from [src], so packets buffered from before a crash
          cannot corrupt the re-established channel *)
  chan_seq : int option;  (** [None] for unsequenced kinds *)
  data_bytes : int;  (** payload carried by this packet *)
  ce : bool;
      (** congestion experienced: set by a switch whose egress occupancy
          crossed its ECN threshold while this packet sat in the queue *)
  kind : kind;
}

val ethertype : int
(** 0x8874, a made-up cluster-local type. *)

type Hw.Eth_frame.payload += Clic of packet

val is_reliable : kind -> bool
(** Whether the kind travels on the sequenced channel. *)

val wire_bytes : header_bytes:int -> packet -> int
(** CLIC header plus payload (the L2 payload size). *)

val pp : Format.formatter -> packet -> unit

(** {1 Header codec}

    The bit-level header layout (see the implementation for the field
    table): a fixed {!header_len}-byte big-endian header a real driver
    would prepend to each fragment payload.  [decode (encode p) = p] for
    every encodable packet; [decode] is total over arbitrary
    {!header_len}-byte strings — it either returns a packet or raises
    {!Decode_error}, never a packet that [encode] could not have
    produced. *)

val header_len : int
(** 40 bytes.  The pre-epoch header was 24; the boot epoch grew it to
    28; the ECN/SACK extension (CE and CE-echo flag bits, a SACK block
    count and three 4-byte SACK blocks) grew it to 40.  The length check
    makes both older formats fail to decode entirely rather than
    misparse. *)

val max_sack_blocks : int
(** 3 — the most SACK blocks a chan-ack can carry. *)

exception Decode_error of string

val encode : packet -> bytes
(** @raise Invalid_argument when a field exceeds its wire width
    (e.g. [src] beyond 16 bits, [frag_index >= frag_count], more than
    {!max_sack_blocks} SACK blocks, empty / overlapping / non-ascending
    SACK blocks, a block not strictly above [cum_seq]). *)

val decode : bytes -> packet
(** @raise Decode_error on a malformed header (wrong length — including
    the old 24- and 28-byte pre-ECN formats — unknown kind tag or flags,
    zero [frag_count], sync flag on a non-data kind, ce-echo flag or
    SACK blocks on a non-chan-ack kind, malformed SACK blocks, nonzero
    reserved or unused-block bytes). *)
