(** CLIC protocol parameters and calibrated costs.

    Every number the paper quotes about CLIC's own path lives here:

    - CLIC_MODULE send-side processing is 0.7 us and the (unmodified)
      driver routine about 4 us (Figure 7a's "0.7+4 us");
    - CLIC_MODULE receive-side processing is 2 us (Figure 7);
    - the 12-byte CLIC header rides on the 14-byte level-1 Ethernet header;
    - when the NIC cannot accept a packet, the module stages the data into
      system memory and lets the application continue (Section 3.1).

    The {!data_path} field selects among the four user-to-NIC transfer
    paths of the paper's Figure 1; Gigabit CLIC uses path 2 ({!Dma_nic_buffer},
    the "0-copy" configuration) and Fast-Ethernet CLIC used path 4
    ({!Staged_nic_buffer}, "1-copy"). *)

open Engine

type data_path =
  | Pio_direct  (** path 1: CPU-programmed I/O from user memory to the NIC *)
  | Dma_nic_buffer
      (** path 2: NIC bus-masters from user memory into its output buffer
          (0-copy; the Gigabit Ethernet CLIC default) *)
  | Staged_direct
      (** path 3: CPU copies user→kernel, DMA straight to the transmit
          interface *)
  | Staged_nic_buffer
      (** path 4: CPU copies user→kernel, DMA into the NIC output buffer
          (1-copy; the Fast Ethernet CLIC path) *)

type t = {
  module_tx : Time.span;  (** CLIC_MODULE send processing, per packet *)
  module_rx : Time.span;  (** CLIC_MODULE receive processing, per packet *)
  header_bytes : int;  (** the CLIC header: 12 bytes *)
  data_path : data_path;
  stage_on_busy : bool;
      (** copy to system memory when the ring is full instead of blocking *)
  ack_every : int;  (** cumulative channel ack frequency, packets *)
  ack_timeout : Time.span;  (** ack latency bound when traffic stops *)
  retransmit_timeout : Time.span;
      (** initial RTO, used until the first RTT sample arrives *)
  rto_min : Time.span;  (** adaptive RTO floor *)
  rto_max : Time.span;  (** RTO cap, also bounds exponential backoff *)
  dup_ack_threshold : int;
      (** duplicate cumulative acks that trigger a fast retransmit *)
  max_retries : int;
      (** consecutive timeouts without progress before the peer is
          declared dead and blocked senders are released with an error *)
  tx_window : int;  (** per-peer outstanding-packet bound *)
  use_nic_fragmentation : bool;
      (** hand the NIC super-packets and let its firmware fragment (the
          paper's future-work feature) *)
  super_packet_bytes : int;  (** max NIC-level packet when fragmenting *)
  staging_bytes_per_s : float;
      (** effective rate of the user→kernel staging copy (1-copy paths and
          ring-full staging); slower than a hot memcpy because it allocates
          and touches cold kernel buffers *)
  staging_overhead : Time.span;
      (** per-packet cost of allocating and setting up the kernel staging
          buffer *)
  kmem_soft_frac : float;
      (** kernel-pool soft watermark as a fraction of capacity: above it
          CLIC sheds load — advertised windows shrink and ack staging is
          deferred *)
  kmem_hard_frac : float;
      (** kernel-pool hard watermark fraction: at or above it the NIC
          drops ingress frames (counted) and CLIC stops staging
          ring-full transmissions; must satisfy
          [0 < soft <= hard <= 1] *)
  soft_window_frac : float;
      (** fraction of {!tx_window} advertised to peers while the pool is
          above its soft mark (at least 1 packet is always advertised) *)
  retx_scheme : [ `Go_back_n | `Sack ];
      (** loss recovery on timeout: [`Go_back_n] (the default) resends
          everything outstanding; [`Sack] resends only the holes the
          peer's SACK blocks have not covered, and makes receivers
          advertise SACK blocks from their out-of-order queues *)
  sack_blocks : int;
      (** most SACK blocks advertised per ack when [retx_scheme = `Sack];
          within [1, {!Wire.max_sack_blocks}] *)
  dctcp : bool;
      (** DCTCP-style congestion control: receivers echo CE marks on
          acks, senders keep an EWMA mark fraction and scale their
          effective window multiplicatively.  Needs an ECN-marking
          switch ({!Hw.Switch.buffer}[.ecn_threshold]) to do anything *)
  dctcp_g : float;
      (** EWMA gain for the DCTCP mark-fraction estimate, in (0, 1] *)
  ecn_threshold : int;
      (** the per-egress marking watermark (bytes) experiment configs
          provision ECN-capable switches with; must be positive *)
}

val default : t
(** The Gigabit Ethernet configuration of the paper's evaluation:
    path 2, staging enabled, 12-byte headers, NIC fragmentation off. *)

val one_copy : t
(** The "1-copy" configuration of Figure 4 (path 4). *)

val congestion : t
(** Incast tuning: a 16-packet transmit window and sub-millisecond
    retransmission timeouts, for many-to-one traffic through a congested
    switch. *)

val validate : t -> t
(** Checks the parameter set for internal consistency and returns it
    unchanged; {!Clic_module.create} calls this on construction.
    @raise Invalid_argument when [rto_min > rto_max], when
    [dup_ack_threshold], [max_retries], [tx_window], [ack_every] or
    [ecn_threshold] is non-positive, when the kernel-pool watermark
    fractions are out of order, when [soft_window_frac] or [dctcp_g] is
    outside [(0, 1]], or when [sack_blocks] is outside
    [[1, Wire.max_sack_blocks]]. *)

val payload_per_packet : t -> link_mtu:int -> int
(** Data bytes carried per CLIC packet: the NIC MTU (or super-packet size
    when NIC fragmentation is on) minus the CLIC header. *)
