type frag = {
  msg_id : int;
  frag_index : int;
  frag_count : int;
  msg_bytes : int;
}

type kind =
  | Data of { port : int; sync : bool; frag : frag }
  | Remote_write of { region : int; frag : frag }
  | Bcast of { port : int; frag : frag }
  | Chan_ack of { cum_seq : int; window : int }
  | Msg_ack of { msg_id : int }

type packet = {
  src : int;
  epoch : int;
  chan_seq : int option;
  data_bytes : int;
  kind : kind;
}

let ethertype = 0x8874

type Hw.Eth_frame.payload += Clic of packet

let is_reliable = function
  | Data _ | Remote_write _ | Msg_ack _ -> true
  | Bcast _ | Chan_ack _ -> false

let wire_bytes ~header_bytes pkt = header_bytes + pkt.data_bytes

(* ------------------------------------------------------------------ *)
(* Header codec.

   The simulation carries packets as values, but the header layout is
   part of the protocol being reproduced: the fixed header a real driver
   would prepend to each fragment payload.  All multi-byte fields are
   big-endian:

     off  size  field
      0     1   kind tag (0=data 1=rwrite 2=bcast 3=chan-ack 4=msg-ack)
      1     1   flags (bit0: sync, bit1: chan_seq present)
      2     2   src node
      4     4   chan_seq (0 when absent)
      8     2   data_bytes (payload carried by this packet)
     10     2   port (data/bcast) or region (rwrite); 0 for acks
     12     4   msg_id (frag kinds, msg-ack) or cum_seq (chan-ack)
     16     4   msg_bytes (total message size) or advertised window
                (chan-ack); 0 for msg-ack
     20     2   frag_index
     22     2   frag_count (0 for ack kinds)
     24     2   sender boot epoch
     26     2   reserved, must be zero

   The epoch field (and the 24 -> 28 byte growth that came with it) is
   the crash-recovery handshake: a rebooted node bumps its epoch, and
   receivers discard frames carrying an older epoch than the one they
   have seen, so packets buffered from before a crash cannot corrupt the
   re-established channel.  A 24-byte pre-epoch header no longer decodes
   at all (the length check fails first), which is the intended total
   failure — old and new format must never misparse as each other.

   [Params.header_bytes] stays the modelled per-packet cost; this codec
   is the bit-level contract the property-based tests pin down. *)

let header_len = 28

exception Decode_error of string

let check_range what v lo hi =
  if v < lo || v > hi then
    invalid_arg
      (Printf.sprintf "Wire.encode: %s = %d outside [%d, %d]" what v lo hi)

let put16 b off v =
  Bytes.set_uint8 b off ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 1) (v land 0xff)

let put32 b off v =
  put16 b off ((v lsr 16) land 0xffff);
  put16 b (off + 2) (v land 0xffff)

let get16 b off = (Bytes.get_uint8 b off lsl 8) lor Bytes.get_uint8 b (off + 1)
let get32 b off = (get16 b off lsl 16) lor get16 b (off + 2)

let kind_tag = function
  | Data _ -> 0
  | Remote_write _ -> 1
  | Bcast _ -> 2
  | Chan_ack _ -> 3
  | Msg_ack _ -> 4

let encode pkt =
  check_range "src" pkt.src 0 0xffff;
  check_range "epoch" pkt.epoch 0 0xffff;
  check_range "data_bytes" pkt.data_bytes 0 0xffff;
  (match pkt.chan_seq with
  | Some s -> check_range "chan_seq" s 0 0x7fffffff
  | None -> ());
  let b = Bytes.make header_len '\000' in
  Bytes.set_uint8 b 0 (kind_tag pkt.kind);
  let sync = match pkt.kind with Data { sync; _ } -> sync | _ -> false in
  let flags =
    (if sync then 1 else 0)
    lor (match pkt.chan_seq with Some _ -> 2 | None -> 0)
  in
  Bytes.set_uint8 b 1 flags;
  put16 b 2 pkt.src;
  put32 b 4 (match pkt.chan_seq with Some s -> s | None -> 0);
  put16 b 8 pkt.data_bytes;
  let put_frag frag =
    check_range "msg_id" frag.msg_id 0 0x7fffffff;
    check_range "msg_bytes" frag.msg_bytes 0 0x7fffffff;
    check_range "frag_index" frag.frag_index 0 0xffff;
    check_range "frag_count" frag.frag_count 1 0xffff;
    check_range "frag_index < frag_count" frag.frag_index 0
      (frag.frag_count - 1);
    put32 b 12 frag.msg_id;
    put32 b 16 frag.msg_bytes;
    put16 b 20 frag.frag_index;
    put16 b 22 frag.frag_count
  in
  (match pkt.kind with
  | Data { port; sync = _; frag } ->
      check_range "port" port 0 0xffff;
      put16 b 10 port;
      put_frag frag
  | Remote_write { region; frag } ->
      check_range "region" region 0 0xffff;
      put16 b 10 region;
      put_frag frag
  | Bcast { port; frag } ->
      check_range "port" port 0 0xffff;
      put16 b 10 port;
      put_frag frag
  | Chan_ack { cum_seq; window } ->
      check_range "cum_seq" cum_seq 0 0x7fffffff;
      check_range "window" window 0 0x7fffffff;
      put32 b 12 cum_seq;
      put32 b 16 window
  | Msg_ack { msg_id } ->
      check_range "msg_id" msg_id 0 0x7fffffff;
      put32 b 12 msg_id);
  put16 b 24 pkt.epoch;
  b

let decode b =
  if Bytes.length b <> header_len then
    raise
      (Decode_error
         (Printf.sprintf "header length %d, want %d" (Bytes.length b)
            header_len));
  let tag = Bytes.get_uint8 b 0 in
  let flags = Bytes.get_uint8 b 1 in
  if flags land lnot 0x3 <> 0 then
    raise (Decode_error (Printf.sprintf "unknown flags 0x%x" flags));
  let sync = flags land 1 <> 0 in
  let src = get16 b 2 in
  let chan_seq = if flags land 2 <> 0 then Some (get32 b 4) else None in
  let data_bytes = get16 b 8 in
  let frag () =
    let frag_count = get16 b 22 in
    if frag_count = 0 then raise (Decode_error "frag_count = 0");
    let frag_index = get16 b 20 in
    if frag_index >= frag_count then
      raise
        (Decode_error
           (Printf.sprintf "frag_index %d >= frag_count %d" frag_index
              frag_count));
    { msg_id = get32 b 12; msg_bytes = get32 b 16; frag_index; frag_count }
  in
  let kind =
    match tag with
    | 0 -> Data { port = get16 b 10; sync; frag = frag () }
    | 1 -> Remote_write { region = get16 b 10; frag = frag () }
    | 2 -> Bcast { port = get16 b 10; frag = frag () }
    | 3 -> Chan_ack { cum_seq = get32 b 12; window = get32 b 16 }
    | 4 -> Msg_ack { msg_id = get32 b 12 }
    | t -> raise (Decode_error (Printf.sprintf "unknown kind tag %d" t))
  in
  if sync && tag <> 0 then
    raise (Decode_error "sync flag on a non-data kind");
  let epoch = get16 b 24 in
  if get16 b 26 <> 0 then
    raise
      (Decode_error
         (Printf.sprintf "reserved bytes 26-27 not zero (0x%04x)" (get16 b 26)));
  { src; epoch; chan_seq; data_bytes; kind }

let pp fmt pkt =
  let kind_str =
    match pkt.kind with
    | Data { port; sync; frag } ->
        Printf.sprintf "data(port=%d sync=%b msg=%d %d/%d)" port sync
          frag.msg_id (frag.frag_index + 1) frag.frag_count
    | Remote_write { region; frag } ->
        Printf.sprintf "rwrite(region=%d msg=%d)" region frag.msg_id
    | Bcast { port; frag } ->
        Printf.sprintf "bcast(port=%d msg=%d)" port frag.msg_id
    | Chan_ack { cum_seq; window } ->
        Printf.sprintf "ack(%d win=%d)" cum_seq window
    | Msg_ack { msg_id } -> Printf.sprintf "msg-ack(%d)" msg_id
  in
  Format.fprintf fmt "clic[src=%d ep=%d seq=%s %dB %s]" pkt.src pkt.epoch
    (match pkt.chan_seq with None -> "-" | Some s -> string_of_int s)
    pkt.data_bytes kind_str
