type frag = {
  msg_id : int;
  frag_index : int;
  frag_count : int;
  msg_bytes : int;
}

type kind =
  | Data of { port : int; sync : bool; frag : frag }
  | Remote_write of { region : int; frag : frag }
  | Bcast of { port : int; frag : frag }
  | Chan_ack of {
      cum_seq : int;
      window : int;
      ce_echo : bool;
      sacks : (int * int) list;
    }
  | Msg_ack of { msg_id : int }

type packet = {
  src : int;
  epoch : int;
  chan_seq : int option;
  data_bytes : int;
  ce : bool;
  kind : kind;
}

let ethertype = 0x8874

type Hw.Eth_frame.payload += Clic of packet

let is_reliable = function
  | Data _ | Remote_write _ | Msg_ack _ -> true
  | Bcast _ | Chan_ack _ -> false

let wire_bytes ~header_bytes pkt = header_bytes + pkt.data_bytes

(* ------------------------------------------------------------------ *)
(* Header codec.

   The simulation carries packets as values, but the header layout is
   part of the protocol being reproduced: the fixed header a real driver
   would prepend to each fragment payload.  All multi-byte fields are
   big-endian:

     off  size  field
      0     1   kind tag (0=data 1=rwrite 2=bcast 3=chan-ack 4=msg-ack)
      1     1   flags (bit0: sync, bit1: chan_seq present, bit2: CE,
                bit3: CE-echo, chan-ack only)
      2     2   src node
      4     4   chan_seq (0 when absent)
      8     2   data_bytes (payload carried by this packet)
     10     2   port (data/bcast) or region (rwrite); 0 for acks
     12     4   msg_id (frag kinds, msg-ack) or cum_seq (chan-ack)
     16     4   msg_bytes (total message size) or advertised window
                (chan-ack); 0 for msg-ack
     20     2   frag_index
     22     2   frag_count (0 for ack kinds)
     24     2   sender boot epoch
     26     1   sack block count (0-3; nonzero only for chan-ack)
     27     1   reserved, must be zero
     28    12   3 SACK blocks of (2-byte start offset, 2-byte length);
                the start offset is relative to cum_seq and must be >= 1,
                the length must be >= 1, blocks must be ascending and
                non-mergeable, unused blocks must be zero

   The epoch field (and the 24 -> 28 byte growth that came with it) is
   the crash-recovery handshake; the ECN/SACK extension (28 -> 40) is
   this codec's second epoch-style bump: a CE bit set by congested
   switches, a CE-echo bit carried back on acks, and up to three SACK
   blocks advertising out-of-order runs the receiver already holds.  A
   28-byte pre-ECN header no longer decodes at all (the length check
   fails first), which is the intended total failure — old and new
   format must never misparse as each other.

   [Params.header_bytes] stays the modelled per-packet cost; this codec
   is the bit-level contract the property-based tests pin down. *)

let header_len = 40
let max_sack_blocks = 3

exception Decode_error of string

let check_range what v lo hi =
  if v < lo || v > hi then
    invalid_arg
      (Printf.sprintf "Wire.encode: %s = %d outside [%d, %d]" what v lo hi)

let put16 b off v =
  Bytes.set_uint8 b off ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 1) (v land 0xff)

let put32 b off v =
  put16 b off ((v lsr 16) land 0xffff);
  put16 b (off + 2) (v land 0xffff)

let get16 b off = (Bytes.get_uint8 b off lsl 8) lor Bytes.get_uint8 b (off + 1)
let get32 b off = (get16 b off lsl 16) lor get16 b (off + 2)

let kind_tag = function
  | Data _ -> 0
  | Remote_write _ -> 1
  | Bcast _ -> 2
  | Chan_ack _ -> 3
  | Msg_ack _ -> 4

let encode pkt =
  check_range "src" pkt.src 0 0xffff;
  check_range "epoch" pkt.epoch 0 0xffff;
  check_range "data_bytes" pkt.data_bytes 0 0xffff;
  (match pkt.chan_seq with
  | Some s -> check_range "chan_seq" s 0 0x7fffffff
  | None -> ());
  let b = Bytes.make header_len '\000' in
  Bytes.set_uint8 b 0 (kind_tag pkt.kind);
  let sync = match pkt.kind with Data { sync; _ } -> sync | _ -> false in
  let ce_echo =
    match pkt.kind with Chan_ack { ce_echo; _ } -> ce_echo | _ -> false
  in
  let flags =
    (if sync then 1 else 0)
    lor (match pkt.chan_seq with Some _ -> 2 | None -> 0)
    lor (if pkt.ce then 4 else 0)
    lor if ce_echo then 8 else 0
  in
  Bytes.set_uint8 b 1 flags;
  put16 b 2 pkt.src;
  put32 b 4 (match pkt.chan_seq with Some s -> s | None -> 0);
  put16 b 8 pkt.data_bytes;
  let put_frag frag =
    check_range "msg_id" frag.msg_id 0 0x7fffffff;
    check_range "msg_bytes" frag.msg_bytes 0 0x7fffffff;
    check_range "frag_index" frag.frag_index 0 0xffff;
    check_range "frag_count" frag.frag_count 1 0xffff;
    check_range "frag_index < frag_count" frag.frag_index 0
      (frag.frag_count - 1);
    put32 b 12 frag.msg_id;
    put32 b 16 frag.msg_bytes;
    put16 b 20 frag.frag_index;
    put16 b 22 frag.frag_count
  in
  (match pkt.kind with
  | Data { port; sync = _; frag } ->
      check_range "port" port 0 0xffff;
      put16 b 10 port;
      put_frag frag
  | Remote_write { region; frag } ->
      check_range "region" region 0 0xffff;
      put16 b 10 region;
      put_frag frag
  | Bcast { port; frag } ->
      check_range "port" port 0 0xffff;
      put16 b 10 port;
      put_frag frag
  | Chan_ack { cum_seq; window; ce_echo = _; sacks } ->
      check_range "cum_seq" cum_seq 0 0x7fffffff;
      check_range "window" window 0 0x7fffffff;
      put32 b 12 cum_seq;
      put32 b 16 window;
      check_range "sack block count" (List.length sacks) 0 max_sack_blocks;
      Bytes.set_uint8 b 26 (List.length sacks);
      let prev_end = ref cum_seq in
      List.iteri
        (fun i (start, stop) ->
          if start <= !prev_end then
            invalid_arg
              (Printf.sprintf
                 "Wire.encode: sack block %d start %d not past previous end %d"
                 i start !prev_end);
          if stop <= start then
            invalid_arg
              (Printf.sprintf "Wire.encode: sack block %d empty [%d, %d)" i
                 start stop);
          check_range "sack start offset" (start - cum_seq) 1 0xffff;
          check_range "sack length" (stop - start) 1 0xffff;
          put16 b (28 + (4 * i)) (start - cum_seq);
          put16 b (28 + (4 * i) + 2) (stop - start);
          prev_end := stop)
        sacks
  | Msg_ack { msg_id } ->
      check_range "msg_id" msg_id 0 0x7fffffff;
      put32 b 12 msg_id);
  put16 b 24 pkt.epoch;
  b

let decode b =
  if Bytes.length b <> header_len then
    raise
      (Decode_error
         (Printf.sprintf "header length %d, want %d" (Bytes.length b)
            header_len));
  let tag = Bytes.get_uint8 b 0 in
  let flags = Bytes.get_uint8 b 1 in
  if flags land lnot 0xf <> 0 then
    raise (Decode_error (Printf.sprintf "unknown flags 0x%x" flags));
  let sync = flags land 1 <> 0 in
  let ce = flags land 4 <> 0 in
  let ce_echo = flags land 8 <> 0 in
  let src = get16 b 2 in
  let chan_seq = if flags land 2 <> 0 then Some (get32 b 4) else None in
  let data_bytes = get16 b 8 in
  let frag () =
    let frag_count = get16 b 22 in
    if frag_count = 0 then raise (Decode_error "frag_count = 0");
    let frag_index = get16 b 20 in
    if frag_index >= frag_count then
      raise
        (Decode_error
           (Printf.sprintf "frag_index %d >= frag_count %d" frag_index
              frag_count));
    { msg_id = get32 b 12; msg_bytes = get32 b 16; frag_index; frag_count }
  in
  let sack_count = Bytes.get_uint8 b 26 in
  if sack_count > max_sack_blocks then
    raise
      (Decode_error (Printf.sprintf "sack block count %d > %d" sack_count
                       max_sack_blocks));
  if sack_count > 0 && tag <> 3 then
    raise (Decode_error "sack blocks on a non-chan-ack kind");
  let sacks cum_seq =
    let prev_end = ref cum_seq in
    List.init sack_count (fun i ->
        let rel = get16 b (28 + (4 * i)) in
        let len = get16 b (28 + (4 * i) + 2) in
        if rel = 0 then
          raise
            (Decode_error (Printf.sprintf "sack block %d start offset 0" i));
        if len = 0 then
          raise (Decode_error (Printf.sprintf "sack block %d length 0" i));
        let start = cum_seq + rel in
        if start <= !prev_end then
          raise
            (Decode_error
               (Printf.sprintf
                  "sack block %d start %d not past previous end %d" i start
                  !prev_end));
        prev_end := start + len;
        (start, start + len))
  in
  let kind =
    match tag with
    | 0 -> Data { port = get16 b 10; sync; frag = frag () }
    | 1 -> Remote_write { region = get16 b 10; frag = frag () }
    | 2 -> Bcast { port = get16 b 10; frag = frag () }
    | 3 ->
        let cum_seq = get32 b 12 in
        Chan_ack { cum_seq; window = get32 b 16; ce_echo; sacks = sacks cum_seq }
    | 4 -> Msg_ack { msg_id = get32 b 12 }
    | t -> raise (Decode_error (Printf.sprintf "unknown kind tag %d" t))
  in
  if sync && tag <> 0 then
    raise (Decode_error "sync flag on a non-data kind");
  if ce_echo && tag <> 3 then
    raise (Decode_error "ce-echo flag on a non-chan-ack kind");
  let epoch = get16 b 24 in
  if Bytes.get_uint8 b 27 <> 0 then
    raise
      (Decode_error
         (Printf.sprintf "reserved byte 27 not zero (0x%02x)"
            (Bytes.get_uint8 b 27)));
  for off = 28 + (4 * sack_count) to header_len - 1 do
    if Bytes.get_uint8 b off <> 0 then
      raise
        (Decode_error
           (Printf.sprintf "unused sack byte %d not zero (0x%02x)" off
              (Bytes.get_uint8 b off)))
  done;
  { src; epoch; chan_seq; data_bytes; ce; kind }

let pp fmt pkt =
  let kind_str =
    match pkt.kind with
    | Data { port; sync; frag } ->
        Printf.sprintf "data(port=%d sync=%b msg=%d %d/%d)" port sync
          frag.msg_id (frag.frag_index + 1) frag.frag_count
    | Remote_write { region; frag } ->
        Printf.sprintf "rwrite(region=%d msg=%d)" region frag.msg_id
    | Bcast { port; frag } ->
        Printf.sprintf "bcast(port=%d msg=%d)" port frag.msg_id
    | Chan_ack { cum_seq; window; ce_echo; sacks } ->
        Printf.sprintf "ack(%d win=%d%s%s)" cum_seq window
          (if ce_echo then " ce-echo" else "")
          (match sacks with
          | [] -> ""
          | _ ->
              " sack="
              ^ String.concat ","
                  (List.map
                     (fun (a, z) -> Printf.sprintf "%d-%d" a (z - 1))
                     sacks))
    | Msg_ack { msg_id } -> Printf.sprintf "msg-ack(%d)" msg_id
  in
  Format.fprintf fmt "clic[src=%d ep=%d seq=%s %dB%s %s]" pkt.src pkt.epoch
    (match pkt.chan_seq with None -> "-" | Some s -> string_of_int s)
    pkt.data_bytes
    (if pkt.ce then " CE" else "")
    kind_str
