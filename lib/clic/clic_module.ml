open Engine
open Os_model
open Hw
open Proto

type message = {
  msg_src : int;
  msg_epoch : int;  (* the sender's boot epoch when it sent the message *)
  msg_id : int;
  msg_port : int;
  msg_bytes : int;
  msg_sync : bool;
  msg_broadcast : bool;
  msg_arrived : Time.t;
  mutable msg_uncopied : int;
}

type port = {
  queue : message Queue.t;
  mutable waiter : Sched.slot option;
}

type reasm = { mutable seen : int; mutable copied_bytes : int }

type staged_tx = { st_pkt : Wire.packet; st_dst : Mac.t; st_eth : Ethernet.t }

(* A confirmed send waiting for its end-to-end acknowledgement.  [sw_fail]
   fires instead of [sw_done] when the channel to [sw_dst] dies before the
   confirmation arrives — the waiter must not block forever on a peer that
   crashed. *)
type sync_waiter = {
  sw_dst : int;
  sw_done : unit -> unit;
  sw_fail : exn -> unit;
}

type t = {
  env : Hostenv.t;
  p : Params.t;
  epoch : int;  (* this kernel's boot epoch, stamped into every packet *)
  trace : Trace.t option;
  eths : Ethernet.t array;
  mutable rr : int;
  channels : (int, Channel.t) Hashtbl.t;
  peer_epochs : (int, int) Hashtbl.t;
      (* newest epoch seen per peer; older frames are stale and dropped *)
  ports : (int, port) Hashtbl.t;
  mutable next_msg_id : int;
  reassembly : (int * int, reasm) Hashtbl.t;
  sync_done : (int, sync_waiter) Hashtbl.t;
  regions : (int, int ref * (bytes:int -> src:int -> unit)) Hashtbl.t;
  backlog : staged_tx Queue.t;
  mutable draining : bool;
  mutable shut_down : bool;
  (* statistics *)
  mutable messages_sent : int;
  mutable messages_delivered : int;
  mutable packets_sent : int;
  mutable packets_staged : int;
  mutable local_msgs : int;
  mutable stale_epoch_drops : int;
  mutable peer_reboots : int;
  mutable reestablishments : int;
}

let params t = t.p
let env_of t = t.env
let node t = t.env.Hostenv.node
let cpu t = t.env.Hostenv.cpu
let sim t = t.env.Hostenv.sim
let membus t = t.env.Hostenv.membus
let kmem t = t.env.Hostenv.kmem

(* Stage work is reported to the node's [Trace] (when attached) for the
   Figure 7 table and to [Probe] as a timeline span for the observability
   layer. *)
let traced t ~track label f =
  let f =
    match t.trace with
    | Some tr -> fun () -> Trace.run tr label f
    | None -> f
  in
  if !Probe.on then begin
    let start = Sim.now (sim t) in
    let v = f () in
    Probe.emit
      (Probe.Span
         { host = Cpu.name (cpu t); track; label; start;
           finish = Sim.now (sim t) });
    v
  end
  else f ()

let link_mtu t =
  Nic.mtu (Driver.nic (Ethernet.env t.eths.(0)).Hostenv.driver)

let max_payload t = Params.payload_per_packet t.p ~link_mtu:(link_mtu t)

let get_port t id =
  match Hashtbl.find_opt t.ports id with
  | Some p -> p
  | None ->
      let p = { queue = Queue.create (); waiter = None } in
      Hashtbl.add t.ports id p;
      p

let next_eth t =
  let eth = t.eths.(t.rr mod Array.length t.eths) in
  t.rr <- t.rr + 1;
  eth

(* ------------------------------------------------------------------ *)
(* Transmit machinery *)

(* The user→kernel staging copy: buffer setup plus a cache-cold copy. *)
let stage_copy t bytes =
  Cpu.work (cpu t) t.p.Params.staging_overhead;
  Cpu.copy ~bytes_per_s:t.p.Params.staging_bytes_per_s (cpu t)
    ~membus:(membus t) bytes

(* Build the SK_BUFF for the configured data path, charging the staging
   copy when the path requires one.  Returns (skb, needs_dma,
   nic_internal_copy). *)
let prepare_skb t ~staged bytes =
  let header_bytes = t.p.Params.header_bytes in
  if staged then (Skbuff.of_kernel ~header_bytes bytes, true, true)
  else
    match t.p.Params.data_path with
    | Params.Pio_direct -> (Skbuff.of_user ~header_bytes bytes, false, false)
    | Params.Dma_nic_buffer -> (Skbuff.of_user ~header_bytes bytes, true, true)
    | Params.Staged_direct ->
        stage_copy t bytes;
        (Skbuff.of_kernel ~header_bytes bytes, true, false)
    | Params.Staged_nic_buffer ->
        stage_copy t bytes;
        (Skbuff.of_kernel ~header_bytes bytes, true, true)

(* Hand one prepared packet to the NIC behind [eth].  Returns false when
   the transmit ring is full. *)
let try_post t ~eth ~dst ~skb ~needs_dma ~internal_copy ~on_complete pkt =
  (* Once posted, the buffer lives until transmit completion; when the post
     fails the caller still owns (and must release) it. *)
  let on_complete () =
    Skbuff.release skb ~where:"clic:tx-complete";
    on_complete ()
  in
  let env = Ethernet.env eth in
  let driver = env.Hostenv.driver in
  let posted =
    if needs_dma then
      Driver.transmit driver ~skb ~dst ~src:(Mac.of_node (node t))
        ~ethertype:Wire.ethertype ~payload:(Wire.Clic pkt) ~internal_copy
        ~on_complete ()
    else begin
      (* Programmed I/O (path 1): after the driver routine, the CPU itself
         pushes the bytes across the PCI bus — it is held for the whole
         transfer, the cost the DMA paths avoid. *)
      Cpu.work (cpu t) (Driver.params driver).Driver.tx_routine;
      let nic = Driver.nic driver in
      (Resource.use_f (Cpu.resource (cpu t)) (fun () ->
           Bus.transfer (Nic.pci nic) (Skbuff.total_bytes skb))
      [@clic.allow_block
        "programmed I/O by design: the CPU is deliberately held for the \
         whole PCI transfer (the cost the DMA paths avoid), a bounded \
         busy-grant like Cpu.work, not an unbounded sleep"]);
      let frame =
        Eth_frame.make ~src:(Mac.of_node (node t)) ~dst
          ~ethertype:Wire.ethertype
          ~payload_bytes:(Skbuff.total_bytes skb)
          (Wire.Clic pkt)
      in
      Nic.try_post_tx nic
        { Nic.frame; needs_dma = false; internal_copy = false; on_complete }
    end
  in
  if posted then t.packets_sent <- t.packets_sent + 1;
  posted

let rec drain_backlog t =
  if not t.draining then begin
    t.draining <- true;
    let rec go () =
      match Queue.peek_opt t.backlog with
      | None -> ()
      | Some job ->
          let skb, needs_dma, internal_copy =
            prepare_skb t ~staged:true job.st_pkt.Wire.data_bytes
          in
          if
            try_post t ~eth:job.st_eth ~dst:job.st_dst ~skb ~needs_dma
              ~internal_copy ~on_complete:(on_complete t) job.st_pkt
          then begin
            ignore (Queue.pop t.backlog);
            if job.st_pkt.Wire.data_bytes > 0 then
              Kmem.free (kmem t) job.st_pkt.Wire.data_bytes;
            go ()
          end
          else
            (* Ring still full: the job stays staged in the pool and a fresh
               SK_BUFF is built on the next completion. *)
            Skbuff.release skb ~where:"clic:backlog-wait"
    in
    go ();
    t.draining <- false
  end

and on_complete t () = Process.spawn (sim t) (fun () -> drain_backlog t)

(* Transmit one packet, blocking the caller only when both the ring and
   the staging pool are exhausted. *)
let transmit_packet t ~dst ~staged pkt =
  let eth = next_eth t in
  let skb, needs_dma, internal_copy =
    prepare_skb t ~staged pkt.Wire.data_bytes
  in
  let was_zero_copy = Skbuff.is_zero_copy skb in
  if
    not
      (try_post t ~eth ~dst ~skb ~needs_dma ~internal_copy
         ~on_complete:(on_complete t) pkt)
  then
    if
      t.p.Params.stage_on_busy
      && (pkt.Wire.data_bytes = 0
         || (Kmem.level (kmem t) <> `Hard
            && Kmem.try_alloc (kmem t) pkt.Wire.data_bytes))
    then begin
      (* Ring full: copy into system memory and return — the application
         continues while the packet waits for ring space (Section 3.1). *)
      if was_zero_copy then stage_copy t pkt.Wire.data_bytes;
      t.packets_staged <- t.packets_staged + 1;
      Skbuff.release skb ~where:"clic:stage-abandon";
      Queue.add { st_pkt = pkt; st_dst = dst; st_eth = eth } t.backlog
    end
    else begin
      (* No staging memory either: wait for a ring slot. *)
      let frame =
        Eth_frame.make ~src:(Mac.of_node (node t)) ~dst
          ~ethertype:Wire.ethertype
          ~payload_bytes:(Skbuff.total_bytes skb)
          (Wire.Clic pkt)
      in
      Nic.post_tx_blocking (Driver.nic (Ethernet.env eth).Hostenv.driver)
        {
          Nic.frame;
          needs_dma;
          internal_copy;
          on_complete =
            (fun () ->
              Skbuff.release skb ~where:"clic:tx-complete";
              on_complete t ());
        };
      t.packets_sent <- t.packets_sent + 1
    end

(* ------------------------------------------------------------------ *)
(* Channels *)

(* The transmit window this node advertises to its peers, shrunk while the
   kernel pool is under pressure (soft: a configurable fraction; hard: a
   single outstanding packet) so senders back off before the NIC has to
   drop their frames. *)
let advertised_window_of t =
  match Kmem.level (kmem t) with
  | `Normal -> t.p.Params.tx_window
  | `Soft ->
      max 1
        (int_of_float
           (t.p.Params.soft_window_frac *. float_of_int t.p.Params.tx_window))
  | `Hard -> 1

(* Wake every confirmed send still waiting on [peer]: its channel just
   died, so the confirmation can never arrive. *)
let reject_sync_waiters t peer =
  let doomed =
    Hashtbl.fold
      (fun id w acc -> if w.sw_dst = peer then (id, w) :: acc else acc)
      t.sync_done []
  in
  List.iter
    (fun (id, w) ->
      Hashtbl.remove t.sync_done id;
      w.sw_fail (Channel.Dead peer))
    doomed

let rec get_channel t peer =
  match Hashtbl.find_opt t.channels peer with
  | Some c when not (Channel.is_dead c) -> c
  | prior ->
      (match prior with
      | Some _ ->
          (* The previous channel was torn down (peer unreachable or
             rebooted); traffic to the peer re-establishes a fresh one. *)
          Hashtbl.remove t.channels peer;
          t.reestablishments <- t.reestablishments + 1
      | None -> ());
      let chan =
        Channel.create (sim t) ~self:(node t) ~peer ~epoch:t.epoch
          ~params:t.p
          ~transmit:(fun pkt ~retransmission ->
            transmit_packet t ~dst:(Mac.of_node peer)
              ~staged:retransmission pkt)
          ~deliver:(fun pkt -> handle_reliable t pkt)
          ~send_ack:(fun ~cum_seq ~sacks ~ce_echo ->
            Cpu.work (cpu t) t.p.Params.module_tx;
            transmit_packet t ~dst:(Mac.of_node peer) ~staged:true
              { Wire.src = node t; epoch = t.epoch; chan_seq = None;
                data_bytes = 0; ce = false;
                kind =
                  Wire.Chan_ack
                    { cum_seq; window = advertised_window_of t; ce_echo;
                      sacks } })
          ~defer_acks:(fun () -> Kmem.level (kmem t) <> `Normal)
          ~on_death:(fun () -> reject_sync_waiters t peer)
          ()
      in
      Hashtbl.add t.channels peer chan;
      chan

(* ------------------------------------------------------------------ *)
(* Receive-side delivery (interrupt context) *)

and[@clic.atomic] deliver_message t msg =
  t.messages_delivered <- t.messages_delivered + 1;
  if !Probe.on then
    Probe.emit
      (Probe.Msg_deliver
         {
           node = node t;
           src = msg.msg_src;
           port = msg.msg_port;
           msg_id = msg.msg_id;
           epoch = msg.msg_epoch;
         });
  let port = get_port t msg.msg_port in
  (match port.waiter with
  | Some slot ->
      (* A process is blocked in a receive on this port: CLIC_MODULE has
         been moving fragments to its user memory as they arrived; finish
         any remainder and wake it. *)
      port.waiter <- None;
      if msg.msg_uncopied > 0 then begin
        traced t ~track:Probe.Module "clic:copy-to-user" (fun () ->
            Cpu.copy ~priority:`High (cpu t) ~membus:(membus t)
              msg.msg_uncopied);
        msg.msg_uncopied <- 0
      end;
      Queue.add msg port.queue;
      Sched.wake slot
  | None -> Queue.add msg port.queue);
  if msg.msg_sync then begin
    (* Send the end-to-end confirmation back on the reliable channel. *)
    let chan = get_channel t msg.msg_src in
    Process.spawn (sim t) (fun () ->
        (* The confirmation is best-effort once the peer is unreachable:
           the sender's own channel will give up on its side too. *)
        match
          Channel.next_seq chan ~data_bytes:0
            (Wire.Msg_ack { msg_id = msg.msg_id })
        with
        | pkt ->
            Cpu.work (cpu t) t.p.Params.module_tx;
            transmit_packet t ~dst:(Mac.of_node msg.msg_src) ~staged:true pkt
        | exception Channel.Dead _ -> ())
  end

and[@clic.atomic] handle_fragment t ~src ~epoch ~sync ~broadcast ~port ~bytes
    (frag : Wire.frag) =
  let key = (src, frag.Wire.msg_id) in
  let slot =
    match Hashtbl.find_opt t.reassembly key with
    | Some s -> s
    | None ->
        let s = { seen = 0; copied_bytes = 0 } in
        Hashtbl.add t.reassembly key s;
        s
  in
  slot.seen <- slot.seen + 1;
  (* When a receive is already posted on the port, each arriving fragment
     goes straight to user memory (the paper's Figure 3, step 7); only a
     process that asks later pays the copy in its own receive call. *)
  if (get_port t port).waiter <> None && bytes > 0 then begin
    traced t ~track:Probe.Module "clic:copy-to-user" (fun () ->
        Cpu.copy ~priority:`High (cpu t) ~membus:(membus t) bytes);
    slot.copied_bytes <- slot.copied_bytes + bytes
  end;
  if slot.seen = frag.Wire.frag_count then begin
    Hashtbl.remove t.reassembly key;
    deliver_message t
      {
        msg_src = src;
        msg_epoch = epoch;
        msg_id = frag.Wire.msg_id;
        msg_port = port;
        msg_bytes = frag.Wire.msg_bytes;
        msg_sync = sync;
        msg_broadcast = broadcast;
        msg_arrived = Sim.now (sim t);
        msg_uncopied = frag.Wire.msg_bytes - slot.copied_bytes;
      }
  end

and[@clic.atomic] handle_reliable t (pkt : Wire.packet) =
  traced t ~track:Probe.Module "clic:module-rx" (fun () ->
      Cpu.work ~priority:`High (cpu t) t.p.Params.module_rx);
  match pkt.kind with
  | Wire.Data { port; sync; frag } ->
      handle_fragment t ~src:pkt.src ~epoch:pkt.epoch ~sync ~broadcast:false
        ~port ~bytes:pkt.data_bytes frag
  | Wire.Remote_write { region; frag } ->
      handle_rwrite_fragment t ~src:pkt.src ~region ~bytes:pkt.data_bytes frag
  | Wire.Msg_ack { msg_id } -> (
      match Hashtbl.find_opt t.sync_done msg_id with
      | Some w ->
          Hashtbl.remove t.sync_done msg_id;
          w.sw_done ()
      | None -> ())
  | Wire.Bcast _ | Wire.Chan_ack _ -> ()

and handle_rwrite_fragment t ~src ~region ~bytes frag =
  (* Remote write: data goes straight to the target user memory, fragment
     by fragment, with no receive call involved. *)
  traced t ~track:Probe.Module "clic:copy-to-user" (fun () ->
      Cpu.copy ~priority:`High (cpu t) ~membus:(membus t) bytes);
  (match Hashtbl.find_opt t.regions region with
  | Some (count, notify) ->
      count := !count + bytes;
      if frag.Wire.frag_index = frag.Wire.frag_count - 1 then
        notify ~bytes:frag.Wire.msg_bytes ~src
  | None -> ())

(* An arriving packet's epoch against the newest we have seen from its
   sender.  [`Stale] frames were transmitted (or buffered in flight)
   before the sender's last reboot and must not touch channel state;
   [`Newer] is the first frame of a rebooted peer: its pre-crash channel
   and half-reassembled messages are discarded before normal handling. *)
let classify_epoch t ~src epoch =
  match Hashtbl.find_opt t.peer_epochs src with
  | None ->
      Hashtbl.add t.peer_epochs src epoch;
      `Current
  | Some known ->
      if epoch < known then `Stale
      else if epoch > known then begin
        Hashtbl.replace t.peer_epochs src epoch;
        `Newer
      end
      else `Current

let forget_peer t src =
  (* The dead channel stays in the table: [get_channel] replaces it on the
     next outbound traffic and counts the re-establishment. *)
  (match Hashtbl.find_opt t.channels src with
  | Some c -> if not (Channel.is_dead c) then Channel.teardown c
  | None -> ());
  let stale_keys =
    Hashtbl.fold
      (fun ((s, _) as key) _ acc -> if s = src then key :: acc else acc)
      t.reassembly []
  in
  List.iter (Hashtbl.remove t.reassembly) stale_keys

(* Entry point from the driver upcall. *)
let[@clic.atomic] rx t (desc : Nic.rx_desc) =
  match desc.Nic.rx_frame.Eth_frame.payload with
  | Wire.Clic pkt when not t.shut_down -> (
      (* A switch marks congestion on the frame (its CE rewrite happens in
         flight, below the payload value); fold it into the packet header
         the channel sees. *)
      let pkt =
        if desc.Nic.rx_frame.Eth_frame.ce && not pkt.Wire.ce then
          { pkt with Wire.ce = true }
        else pkt
      in
      match classify_epoch t ~src:pkt.src pkt.Wire.epoch with
      | `Stale -> t.stale_epoch_drops <- t.stale_epoch_drops + 1
      | (`Current | `Newer) as cls -> (
          if cls = `Newer then begin
            t.peer_reboots <- t.peer_reboots + 1;
            forget_peer t pkt.src
          end;
          match pkt.kind with
          | Wire.Chan_ack { cum_seq; window; ce_echo; sacks } -> (
              Cpu.work ~priority:`High (cpu t) t.p.Params.module_rx;
              (* Acks only ever apply to a live channel; they must not
                 re-establish one on their own. *)
              match Hashtbl.find_opt t.channels pkt.src with
              | Some c when not (Channel.is_dead c) ->
                  Channel.rx_ack c ~window ~sacks ~ce_echo cum_seq
              | Some _ | None -> ())
          | Wire.Bcast { port; frag } ->
              traced t ~track:Probe.Module "clic:module-rx" (fun () ->
                  Cpu.work ~priority:`High (cpu t) t.p.Params.module_rx);
              handle_fragment t ~src:pkt.src ~epoch:pkt.Wire.epoch
                ~sync:false ~broadcast:true ~port ~bytes:pkt.data_bytes frag
          | Wire.Data _ | Wire.Remote_write _ | Wire.Msg_ack _ ->
              Channel.rx (get_channel t pkt.src) pkt))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Construction *)

let create env ?(params = Params.default) ?(epoch = 0) ?trace eths =
  if eths = [] then invalid_arg "Clic_module.create: no ethernet attachments";
  if epoch < 0 then invalid_arg "Clic_module.create: negative epoch";
  let params = Params.validate params in
  let t =
    {
      env;
      p = params;
      epoch;
      trace;
      eths = Array.of_list eths;
      rr = 0;
      channels = Hashtbl.create 8;
      peer_epochs = Hashtbl.create 8;
      ports = Hashtbl.create 8;
      next_msg_id = 0;
      reassembly = Hashtbl.create 16;
      sync_done = Hashtbl.create 8;
      regions = Hashtbl.create 4;
      backlog = Queue.create ();
      draining = false;
      shut_down = false;
      messages_sent = 0;
      messages_delivered = 0;
      packets_sent = 0;
      packets_staged = 0;
      local_msgs = 0;
      stale_epoch_drops = 0;
      peer_reboots = 0;
      reestablishments = 0;
    }
  in
  List.iter
    (fun eth -> Ethernet.register eth ~ethertype:Wire.ethertype (rx t))
    eths;
  t

(* Crash/orderly-stop path: tear every channel down (waking blocked senders
   with {!Channel.Dead}), return staged backlog bytes to the pool so its
   accounting balances, and drop all in-progress receive state.  The module
   stops accepting frames; a rebooted node builds a fresh module with a
   higher epoch. *)
let shutdown t =
  if not t.shut_down then begin
    t.shut_down <- true;
    Hashtbl.iter
      (fun _ c -> if not (Channel.is_dead c) then Channel.teardown c)
      t.channels;
    Hashtbl.reset t.channels;
    Queue.iter
      (fun job ->
        if job.st_pkt.Wire.data_bytes > 0 then
          Kmem.free (kmem t) job.st_pkt.Wire.data_bytes)
      t.backlog;
    Queue.clear t.backlog;
    Hashtbl.reset t.reassembly;
    Hashtbl.reset t.sync_done;
    Hashtbl.reset t.peer_epochs;
    Hashtbl.iter (fun _ p -> Queue.clear p.queue) t.ports
  end

(* ------------------------------------------------------------------ *)
(* Kernel-side send/receive operations *)

let fragments_of t bytes =
  let chunk = max_payload t in
  let count = max 1 ((bytes + chunk - 1) / chunk) in
  List.init count (fun index ->
      let len =
        if index = count - 1 then bytes - (index * chunk) else chunk
      in
      (index, count, len))

let local_delivery t ~port ~sync bytes ~sync_done =
  (* Same-node communication: through system memory, no NIC. *)
  t.local_msgs <- t.local_msgs + 1;
  Cpu.copy (cpu t) ~membus:(membus t) bytes;
  deliver_message t
    {
      msg_src = node t;
      msg_epoch = t.epoch;
      msg_id = -1;
      msg_port = port;
      msg_bytes = bytes;
      msg_sync = false;
      msg_broadcast = false;
      msg_arrived = Sim.now (sim t);
      msg_uncopied = bytes;
    };
  if sync then sync_done ()

let send_message t ~dst ~port ?(sync = false) ?(sync_failed = fun _ -> ())
    bytes ~sync_done =
  if bytes < 0 then invalid_arg "Clic_module.send_message: negative size";
  t.messages_sent <- t.messages_sent + 1;
  if dst = node t then local_delivery t ~port ~sync bytes ~sync_done
  else begin
    let msg_id = t.next_msg_id in
    t.next_msg_id <- t.next_msg_id + 1;
    if !Probe.on then
      Probe.emit
        (Probe.Msg_send
           { node = node t; dst; port; msg_id; bytes; epoch = t.epoch });
    if sync then
      Hashtbl.replace t.sync_done msg_id
        { sw_dst = dst; sw_done = sync_done; sw_fail = sync_failed };
    let chan = get_channel t dst in
    List.iter
      (fun (frag_index, frag_count, len) ->
        traced t ~track:Probe.Process "clic:module-tx" (fun () ->
            Cpu.work (cpu t) t.p.Params.module_tx);
        let frag =
          { Wire.msg_id; frag_index; frag_count; msg_bytes = bytes }
        in
        let pkt =
          Channel.next_seq chan ~data_bytes:len
            (Wire.Data { port; sync; frag })
        in
        transmit_packet t ~dst:(Mac.of_node dst) ~staged:false pkt)
      (fragments_of t bytes)
  end

let broadcast_message t ~port bytes =
  if bytes < 0 then invalid_arg "Clic_module.broadcast_message: negative size";
  t.messages_sent <- t.messages_sent + 1;
  let msg_id = t.next_msg_id in
  t.next_msg_id <- t.next_msg_id + 1;
  List.iter
    (fun (frag_index, frag_count, len) ->
      Cpu.work (cpu t) t.p.Params.module_tx;
      let frag = { Wire.msg_id; frag_index; frag_count; msg_bytes = bytes } in
      transmit_packet t ~dst:Mac.broadcast ~staged:false
        { Wire.src = node t; epoch = t.epoch; chan_seq = None;
          data_bytes = len; ce = false; kind = Wire.Bcast { port; frag } })
    (fragments_of t bytes)

let remote_write t ~dst ~region bytes =
  if bytes < 0 then invalid_arg "Clic_module.remote_write: negative size";
  t.messages_sent <- t.messages_sent + 1;
  if dst = node t then begin
    t.local_msgs <- t.local_msgs + 1;
    Cpu.copy (cpu t) ~membus:(membus t) bytes;
    match Hashtbl.find_opt t.regions region with
    | Some (count, notify) ->
        count := !count + bytes;
        notify ~bytes ~src:(node t)
    | None -> ()
  end
  else begin
    let msg_id = t.next_msg_id in
    t.next_msg_id <- t.next_msg_id + 1;
    let chan = get_channel t dst in
    List.iter
      (fun (frag_index, frag_count, len) ->
        Cpu.work (cpu t) t.p.Params.module_tx;
        let frag =
          { Wire.msg_id; frag_index; frag_count; msg_bytes = bytes }
        in
        let pkt =
          Channel.next_seq chan ~data_bytes:len
            (Wire.Remote_write { region; frag })
        in
        transmit_packet t ~dst:(Mac.of_node dst) ~staged:false pkt)
      (fragments_of t bytes)
  end

let recv_poll t ~port =
  let p = get_port t port in
  match Queue.take_opt p.queue with
  | None -> None
  | Some msg ->
      if msg.msg_uncopied > 0 then begin
        Cpu.copy (cpu t) ~membus:(membus t) msg.msg_uncopied;
        msg.msg_uncopied <- 0
      end;
      if !Probe.on then
        Probe.emit
          (Probe.Msg_recv
             {
               node = node t;
               src = msg.msg_src;
               port = msg.msg_port;
               msg_id = msg.msg_id;
               epoch = msg.msg_epoch;
             });
      Some msg

let recv_wait t ~port =
  let p = get_port t port in
  let rec loop () =
    match recv_poll t ~port with
    | Some msg -> msg
    | None ->
        if p.waiter <> None then
          invalid_arg "Clic_module.recv_wait: port already has a waiter";
        let slot = Sched.slot t.env.Hostenv.sched in
        p.waiter <- Some slot;
        Sched.wait slot;
        loop ()
  in
  loop ()

let register_region t ~region notify =
  if Hashtbl.mem t.regions region then
    invalid_arg "Clic_module.register_region: duplicate region";
  Hashtbl.add t.regions region (ref 0, notify)

let region_bytes t ~region =
  match Hashtbl.find_opt t.regions region with
  | Some (count, _) -> !count
  | None -> 0

let messages_sent t = t.messages_sent
let messages_delivered t = t.messages_delivered
let packets_sent t = t.packets_sent
let packets_staged t = t.packets_staged
let local_messages t = t.local_msgs
let epoch t = t.epoch
let stale_epoch_drops t = t.stale_epoch_drops
let peer_reboots t = t.peer_reboots
let reestablishments t = t.reestablishments
let advertised_window t = advertised_window_of t

let acks_deferred t =
  Hashtbl.fold (fun _ c acc -> acc + Channel.acks_deferred c) t.channels 0
let retransmissions t =
  Hashtbl.fold (fun _ c acc -> acc + Channel.retransmissions c) t.channels 0

let timeouts t =
  Hashtbl.fold (fun _ c acc -> acc + Channel.timeouts c) t.channels 0

let fast_retransmits t =
  Hashtbl.fold (fun _ c acc -> acc + Channel.fast_retransmits c) t.channels 0

let sacked_segments t =
  Hashtbl.fold (fun _ c acc -> acc + Channel.sacked_segments c) t.channels 0

let retx_bytes t =
  Hashtbl.fold (fun _ c acc -> acc + Channel.retx_bytes c) t.channels 0

let retx_bytes_saved t =
  Hashtbl.fold (fun _ c acc -> acc + Channel.retx_bytes_saved c) t.channels 0

let ce_echoes t =
  Hashtbl.fold (fun _ c acc -> acc + Channel.ce_echoes c) t.channels 0

let ce_marks_rx t =
  Hashtbl.fold (fun _ c acc -> acc + Channel.ce_marks_rx c) t.channels 0

let channel_to t ~peer = Hashtbl.find_opt t.channels peer
