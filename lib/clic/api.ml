open Engine
open Proto

type t = { m : Clic_module.t; syscall : Os_model.Syscall.t }

let create m =
  { m; syscall = (Clic_module.env_of m).Hostenv.syscall }

let kernel t = t.m
let node t = Clic_module.node t.m
let wrap t f = Os_model.Syscall.wrap t.syscall f

let send t ~dst ~port n =
  wrap t (fun () ->
      Clic_module.send_message t.m ~dst ~port n ~sync_done:(fun () -> ()))

let send_sync t ~dst ~port n =
  let iv = Ivar.create () in
  wrap t (fun () ->
      Clic_module.send_message t.m ~dst ~port ~sync:true n
        ~sync_failed:(fun e -> Ivar.fill iv (Error e))
        ~sync_done:(fun () -> Ivar.fill iv (Ok ())));
  match Ivar.read iv with Ok () -> () | Error e -> raise e

let recv t ~port = wrap t (fun () -> Clic_module.recv_wait t.m ~port)
let try_recv t ~port = wrap t (fun () -> Clic_module.recv_poll t.m ~port)

let remote_write t ~dst ~region n =
  wrap t (fun () -> Clic_module.remote_write t.m ~dst ~region n)

let broadcast t ~port n =
  wrap t (fun () -> Clic_module.broadcast_message t.m ~port n)

let register_region t ~region notify =
  Clic_module.register_region t.m ~region notify

let region_bytes t ~region = Clic_module.region_bytes t.m ~region
