(** CLIC_MODULE: the protocol engine inserted in the OS kernel.

    This is the paper's Figure 3 machinery.  On send, the module builds the
    CLIC header, fills an SK_BUFF and calls the unmodified driver; if the
    NIC cannot take the packet now, the data is staged into system memory
    and the application continues — the staged packet goes out when ring
    space frees.  On receive, the module runs in the driver's upcall
    context (bottom half, or directly from the ISR with the Figure 8b
    improvement), matches waiting receivers, moves data to user memory and
    wakes processes through the scheduler.

    Messages are fragmented over MTU-sized packets on a per-peer reliable
    {!Channel}; same-node destinations short-circuit through kernel memory;
    broadcast fragments ride unsequenced on the Ethernet broadcast address;
    several NICs may be bonded (round-robin striping).

    The user-facing system-call layer is {!Api}; this module is the kernel
    side. *)

open Engine
open Proto

type t

type message = {
  msg_src : int;
  msg_epoch : int;  (** the sender's boot epoch when it sent the message *)
  msg_id : int;  (** sender-local message id *)
  msg_port : int;
  msg_bytes : int;
  msg_sync : bool;
  msg_broadcast : bool;
  msg_arrived : Time.t;  (** completion (last fragment) time *)
  mutable msg_uncopied : int;  (** bytes not yet moved to user memory *)
}

val create :
  Hostenv.t ->
  ?params:Params.t ->
  ?epoch:int ->
  ?trace:Trace.t ->
  Ethernet.t list ->
  t
(** [create env eths] registers the CLIC ethertype on every given Ethernet
    attachment (more than one = channel bonding).  The list must not be
    empty.  [epoch] (default 0) is this kernel's boot epoch, stamped into
    every packet; a node that reboots after a crash builds a new module
    with a strictly higher epoch so peers can tell its fresh channel state
    from pre-crash stragglers.  [params] is validated
    ({!Params.validate}).
    @raise Invalid_argument on inconsistent parameters or a negative
    epoch. *)

val shutdown : t -> unit
(** Crash/orderly-stop path: tears every channel down (waking blocked
    senders with {!Channel.Dead}), returns staged backlog bytes to the
    kernel pool so its accounting balances, discards reassembly and
    undelivered port queues, and stops accepting frames.  Idempotent. *)

val params : t -> Params.t
val env_of : t -> Hostenv.t
val node : t -> int

(** {1 Kernel-side operations (called by {!Api} under a system call)} *)

val send_message :
  t ->
  dst:int ->
  port:int ->
  ?sync:bool ->
  ?sync_failed:(exn -> unit) ->
  int ->
  sync_done:(unit -> unit) ->
  unit
(** Fragment and transmit a message.  Blocking (window/staging).  For
    [sync] sends, [sync_done] fires when the end-to-end confirmation
    arrives; if the channel to [dst] dies first, [sync_failed] (default: a
    no-op) fires with {!Channel.Dead} instead, so callers never wait
    forever on a crashed peer. *)

val broadcast_message : t -> port:int -> int -> unit
val remote_write : t -> dst:int -> region:int -> int -> unit

val recv_wait : t -> port:int -> message
(** Blocks until a message is queued on the port, then charges the
    copy-to-user if the module did not already perform it. *)

val recv_poll : t -> port:int -> message option
(** The non-blocking receive: "if the message has not arrived yet,
    CLIC_MODULE does nothing and returns". *)

val register_region : t -> region:int -> (bytes:int -> src:int -> unit) -> unit
(** Remote-write notification callback (runs at interrupt priority). *)

val region_bytes : t -> region:int -> int

(** {1 Statistics} *)

val messages_sent : t -> int
val messages_delivered : t -> int
val packets_sent : t -> int
val packets_staged : t -> int
(** Packets that found the ring full and were staged in system memory. *)

val local_messages : t -> int
val retransmissions : t -> int

val timeouts : t -> int
(** Retransmission-timer expiries summed over all channels. *)

val fast_retransmits : t -> int
(** Duplicate-ack hole resends summed over all channels. *)

val sacked_segments : t -> int
(** Outstanding segments marked held by peers' SACK blocks, summed over
    all channels. *)

val retx_bytes : t -> int
(** Wire bytes spent on retransmissions, summed over all channels. *)

val retx_bytes_saved : t -> int
(** Wire bytes timeouts skipped thanks to SACK, summed over all
    channels. *)

val ce_echoes : t -> int
(** Acks received with the CE-echo bit, summed over all channels. *)

val ce_marks_rx : t -> int
(** CE-marked packets received, summed over all channels. *)

val channel_to : t -> peer:int -> Channel.t option

val epoch : t -> int
(** This kernel's boot epoch. *)

val stale_epoch_drops : t -> int
(** Frames discarded because they carried an older epoch than the newest
    seen from their sender (pre-crash stragglers). *)

val peer_reboots : t -> int
(** Times a frame with a strictly newer epoch arrived from a known peer:
    the peer crashed and rebooted, so its old channel and half-reassembled
    messages were discarded. *)

val reestablishments : t -> int
(** Channels re-created after a teardown (peer declared unreachable or
    rebooted) because traffic to/from the peer resumed. *)

val advertised_window : t -> int
(** The transmit window this node currently advertises to peers, shrunk
    below {!Params.tx_window} while the kernel pool is above its soft
    ({!Params.soft_window_frac} of the window) or hard (single packet)
    watermark. *)

val acks_deferred : t -> int
(** Ack transmissions pushed past the normal batch boundary under pool
    pressure, summed over all channels. *)
