open Engine
open Os_model
open Hw

type params = { tx_cost : Time.span; rx_cost : Time.span }

let default_params = { tx_cost = Time.us 1.5; rx_cost = Time.us 2.0 }

type reasm = {
  mutable seen : int;
  mutable bytes : int;
  mutable last : Packet.ip_packet option;
}

type t = {
  eth : Ethernet.t;
  params : params;
  mutable tcp_handler : (Packet.tcp_segment -> src:int -> unit) option;
  mutable udp_handler : (Packet.udp_datagram -> src:int -> unit) option;
  mutable next_ip_id : int;
  reassembly : (int * int, reasm) Hashtbl.t;
  mutable packets_sent : int;
  mutable packets_received : int;
}

let cpu t = (Ethernet.env t.eth).Hostenv.cpu
let mtu t = Nic.mtu (Driver.nic (Ethernet.env t.eth).Hostenv.driver)

let deliver t (pkt : Packet.ip_packet) =
  match pkt.ip_payload with
  | Packet.Tcp seg -> (
      match t.tcp_handler with
      | Some h -> h seg ~src:pkt.ip_src
      | None -> ())
  | Packet.Udp d -> (
      match t.udp_handler with
      | Some h -> h d ~src:pkt.ip_src
      | None -> ())

(* Receive runs in the driver upcall (interrupt) context. *)
let rx t (desc : Nic.rx_desc) =
  match desc.Nic.rx_frame.Eth_frame.payload with
  | Packet.Ip pkt -> (
      Cpu.work ~priority:`High (cpu t) t.params.rx_cost;
      t.packets_received <- t.packets_received + 1;
      match pkt.ip_frag with
      | None -> deliver t pkt
      | Some frag ->
          let key = (pkt.ip_src, frag.ip_id) in
          let slot =
            match Hashtbl.find_opt t.reassembly key with
            | Some s -> s
            | None ->
                let s = { seen = 0; bytes = 0; last = None } in
                Hashtbl.add t.reassembly key s;
                s
          in
          slot.seen <- slot.seen + 1;
          slot.bytes <- slot.bytes + pkt.ip_bytes;
          slot.last <- Some pkt;
          if slot.seen = frag.frag_count then begin
            Hashtbl.remove t.reassembly key;
            deliver t { pkt with ip_bytes = slot.bytes; ip_frag = None }
          end)
  | _ -> ()

let create eth ?(params = default_params) () =
  let t =
    {
      eth;
      params;
      tcp_handler = None;
      udp_handler = None;
      next_ip_id = 0;
      reassembly = Hashtbl.create 16;
      packets_sent = 0;
      packets_received = 0;
    }
  in
  Ethernet.register eth ~ethertype:Packet.ethertype_ip (rx t);
  t

let register_tcp t h =
  if t.tcp_handler <> None then invalid_arg "Ip.register_tcp: already set";
  t.tcp_handler <- Some h

let register_udp t h =
  if t.udp_handler <> None then invalid_arg "Ip.register_udp: already set";
  t.udp_handler <- Some h

(* A fragment carries [bytes] of the L4 unit (whose own header counts as
   part of the first fragment's data) plus a fresh IP header. *)
let fragment_skb skb bytes =
  let region =
    if Skbuff.is_zero_copy skb then Skbuff.User_memory
    else Skbuff.Kernel_memory
  in
  Skbuff.create ~header_bytes:Packet.ip_header_bytes
    [ { Skbuff.region; bytes } ]

let send t ~dst ~skb payload =
  let env = Ethernet.env t.eth in
  let src = env.Hostenv.node in
  let l4_bytes = Packet.ip_payload_wire_bytes payload in
  let max_payload = mtu t - Packet.ip_header_bytes in
  Cpu.work (cpu t) t.params.tx_cost;
  let emit ?frag bytes skb' =
    let pkt =
      { Packet.ip_src = src; ip_dst = dst; ip_payload = payload;
        ip_bytes = bytes; ip_frag = frag }
    in
    t.packets_sent <- t.packets_sent + 1;
    Ethernet.send t.eth ~dst:(Mac.of_node dst) ~ethertype:Packet.ethertype_ip
      ~skb:skb' ~payload:(Packet.Ip pkt) ()
  in
  (if l4_bytes <= max_payload then
     emit l4_bytes
       (Skbuff.create
          ~header_bytes:(Packet.ip_header_bytes + skb.Skbuff.header_bytes)
          skb.Skbuff.fragments)
   else begin
     let count = (l4_bytes + max_payload - 1) / max_payload in
     let ip_id = t.next_ip_id in
     t.next_ip_id <- t.next_ip_id + 1;
     for index = 0 to count - 1 do
       let bytes =
         if index = count - 1 then l4_bytes - (index * max_payload)
         else max_payload
       in
       emit ~frag:{ Packet.ip_id; frag_index = index; frag_count = count }
         bytes (fragment_skb skb bytes)
     done
   end);
  (* Encapsulation re-wraps the fragments under fresh IP-framed buffers;
     the caller's L4 buffer is dead from here on. *)
  Skbuff.release skb ~where:"ip:encap"

let packets_sent t = t.packets_sent
let packets_received t = t.packets_received
let reassembly_pending t = Hashtbl.length t.reassembly
let ethernet t = t.eth
