open Engine
open Os_model
open Hw

type job = {
  dst : Mac.t;
  ethertype : int;
  skb : Skbuff.t;
  payload : Eth_frame.payload;
  on_complete : unit -> unit;
}

type t = {
  env : Hostenv.t;
  slots : Semaphore.t;
  jobs : job Mailbox.t;
  handlers : (int, Nic.rx_desc -> unit) Hashtbl.t;
  mutable unhandled : int;
}

(* Transmit pump: one frame at a time from the device queue into the
   driver.  [transmit] returns false when the NIC ring is full; the pump
   then waits for ring space by re-posting through the blocking NIC entry
   point after charging the (single) driver-routine cost. *)
let pump t () =
  let driver = t.env.Hostenv.driver in
  let src = Hostenv.mac t.env in
  let rec loop () =
    let job = Mailbox.recv t.jobs in
    (* The pump owns the buffer until transmit completion: release it to
       the lifecycle sanitizer exactly when the NIC reports the frame has
       left, whichever posting path carried it. *)
    let on_complete () =
      Skbuff.release job.skb ~where:"eth:tx-complete";
      job.on_complete ()
    in
    let posted =
      Driver.transmit driver ~skb:job.skb ~dst:job.dst ~src
        ~ethertype:job.ethertype ~payload:job.payload ~on_complete ()
    in
    if not posted then begin
      let frame =
        Eth_frame.make ~src ~dst:job.dst ~ethertype:job.ethertype
          ~payload_bytes:(Skbuff.total_bytes job.skb)
          job.payload
      in
      Nic.post_tx_blocking (Driver.nic driver)
        { Nic.frame; needs_dma = true; internal_copy = true; on_complete }
    end;
    Semaphore.release t.slots;
    loop ()
  in
  loop ()

let create env ?(txqueuelen = 100) () =
  if txqueuelen <= 0 then invalid_arg "Ethernet.create: txqueuelen <= 0";
  let t =
    {
      env;
      slots = Semaphore.create txqueuelen;
      jobs = Mailbox.create ();
      handlers = Hashtbl.create 4;
      unhandled = 0;
    }
  in
  Driver.set_rx_upcall env.Hostenv.driver (fun desc ->
      let ethertype = desc.Nic.rx_frame.Eth_frame.ethertype in
      match Hashtbl.find_opt t.handlers ethertype with
      | Some handler -> handler desc
      | None -> t.unhandled <- t.unhandled + 1);
  Process.spawn env.Hostenv.sim (pump t);
  t

let register t ~ethertype handler =
  if Hashtbl.mem t.handlers ethertype then
    invalid_arg
      (Printf.sprintf "Ethernet.register: duplicate ethertype %#x" ethertype);
  Hashtbl.add t.handlers ethertype handler

let send t ~dst ~ethertype ~skb ~payload ?(on_complete = fun () -> ()) () =
  Semaphore.acquire t.slots;
  Mailbox.send t.jobs { dst; ethertype; skb; payload; on_complete }

let env t = t.env
let queued t = Mailbox.length t.jobs
let unhandled t = t.unhandled
