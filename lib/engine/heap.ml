(* Entries carry an explicit monotone insertion stamp so that FIFO
   tie-breaking among cmp-equal elements is guaranteed by the comparator
   itself, not by the accident of sift order. *)
type 'a entry = { item : 'a; stamp : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_stamp : int;
}

let create ~cmp = { cmp; data = [||]; size = 0; next_stamp = 0 }
let length h = h.size
let is_empty h = h.size = 0

let entry_cmp h a b =
  let c = h.cmp a.item b.item in
  if c <> 0 then c else compare a.stamp b.stamp

let grow h x =
  let cap = Array.length h.data in
  if h.size >= cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap x in
    Array.blit h.data 0 ndata 0 h.size;
    h.data <- ndata
  end

(* Standard sift-up: bubble the element at [i] towards the root while it is
   smaller than its parent. *)
let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_cmp h h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && entry_cmp h h.data.(l) h.data.(!smallest) < 0 then
    smallest := l;
  if r < h.size && entry_cmp h h.data.(r) h.data.(!smallest) < 0 then
    smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  let e = { item = x; stamp = h.next_stamp } in
  h.next_stamp <- h.next_stamp + 1;
  grow h e;
  h.data.(h.size) <- e;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0).item

let pop_entry h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    (* Avoid retaining a reference to the popped element. *)
    if h.size > 0 then h.data.(h.size) <- h.data.(0);
    Some top
  end

let pop h = match pop_entry h with None -> None | Some e -> Some e.item

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h =
  h.data <- [||];
  h.size <- 0;
  h.next_stamp <- 0

let to_sorted_list h =
  let copy =
    {
      cmp = h.cmp;
      data = Array.sub h.data 0 h.size;
      size = h.size;
      next_stamp = h.next_stamp;
    }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
