(* Entries carry an explicit monotone insertion stamp so that FIFO
   tie-breaking among cmp-equal elements is guaranteed by the comparator
   itself, not by the accident of sift order.

   Entries are mutable and pooled: [pop] clears the popped entry back to
   the heap's dummy and parks it in the vacated tail slot, and [push]
   reuses whatever record sits there.  In a steady push/pop regime the
   heap therefore allocates no entry records — and, as a corollary, a
   popped element is never retained by the heap's array (the old
   implementation leaked the final element after the pop that emptied the
   heap). *)
type 'a entry = { mutable item : 'a; mutable stamp : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  dummy : 'a entry; (* placeholder filling slots >= size; item is junk *)
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_stamp : int;
}

(* The caller supplies a throwaway [dummy] element to fill unused slots;
   it is never read or compared, only stored.  An honest value of ['a]
   keeps the heap free of unsafe casts (an [Obj.magic 0] stand-in used to
   live here and needed GC-representation caveats to justify). *)
let create ~dummy ~cmp =
  { cmp; dummy = { item = dummy; stamp = -1 }; data = [||]; size = 0;
    next_stamp = 0 }

let length h = h.size
let is_empty h = h.size = 0

let[@clic.hot] entry_cmp h a b =
  let c = h.cmp a.item b.item in
  if c <> 0 then c else compare a.stamp b.stamp

let grow h =
  let cap = Array.length h.data in
  if h.size >= cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap h.dummy in
    Array.blit h.data 0 ndata 0 h.size;
    h.data <- ndata
  end

(* Standard sift-up: bubble the element at [i] towards the root while it is
   smaller than its parent. *)
let[@clic.hot] rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_cmp h h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let[@clic.hot] rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && entry_cmp h h.data.(l) h.data.(!smallest) < 0 then
    smallest := l;
  if r < h.size && entry_cmp h h.data.(r) h.data.(!smallest) < 0 then
    smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let[@clic.hot] push h x =
  grow h;
  (* Reuse the parked record at the insertion slot when one is there
     (left behind by an earlier pop); the dummy itself is shared across
     slots and must not be mutated. *)
  let slot = h.data.(h.size) in
  let e =
    if slot != h.dummy then begin
      slot.item <- x;
      slot.stamp <- h.next_stamp;
      slot
    end
    else
      ({ item = x; stamp = h.next_stamp }
      [@clic.alloc_ok
        "first occupancy of a fresh slot only; steady push/pop reuses the \
         parked record"])
  in
  h.next_stamp <- h.next_stamp + 1;
  h.data.(h.size) <- e;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0).item

let pop_entry h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    let x = top.item in
    let stamp = top.stamp in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      (* Clear and park the popped record for reuse by the next push.
         Unconditional: the pop that empties the heap must also drop its
         reference to the element (the old guard here leaked it). *)
      top.item <- h.dummy.item;
      top.stamp <- -1;
      h.data.(h.size) <- top;
      sift_down h 0
    end
    else begin
      top.item <- h.dummy.item;
      top.stamp <- -1;
      h.data.(0) <- top
    end;
    Some (x, stamp)
  end

let pop h = match pop_entry h with None -> None | Some (x, _) -> Some x

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h =
  h.data <- [||];
  h.size <- 0;
  h.next_stamp <- 0

let to_sorted_list h =
  let copy =
    {
      cmp = h.cmp;
      dummy = h.dummy;
      data = Array.init h.size (fun i ->
          let e = h.data.(i) in
          { item = e.item; stamp = e.stamp });
      size = h.size;
      next_stamp = h.next_stamp;
    }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
