(** Process-global instrumentation hub for the analysis layer.

    Simulation components report lifecycle and protocol events here.  With
    no sink installed (the default) an emission costs one flag test; the
    checker in [lib/check] installs a sink for the duration of a scenario
    run.  Emission sites should guard event construction with {!enabled}
    so that the disabled path does not allocate:

    {[ if Probe.enabled () then Probe.emit (Probe.Clock { now }) ]} *)

type owner =
  | App  (** user memory / the application side *)
  | Channel  (** protocol- or kernel-owned staging *)
  | Driver
  | Bh  (** bottom-half context *)
  | Nic  (** NIC ring ownership *)

type obj_kind = Skb | Rx_buffer

type track =
  | Process  (** work charged in a process/syscall context *)
  | Isr  (** interrupt service routine *)
  | Bh_track  (** bottom-half (softirq) context *)
  | Module  (** CLIC_MODULE receive-side work (runs in ISR/BH context) *)
  | Dma  (** a DMA engine moving bytes over the I/O bus *)
  | Link  (** a wire occupied by a frame's serialization *)
  | Pause_t  (** an interval a transmit path spent gated by 802.3x PAUSE *)
  | Busy  (** raw resource occupancy (CPU / bus grants) *)

type event =
  | Sim_start  (** a fresh simulator was created: per-sim state resets *)
  | Clock of { now : int }  (** an event fired at [now] (ns) *)
  | Span of {
      host : string;  (** resource name: "cpu0", "nic0.1", a link name *)
      track : track;
      label : string;
      start : int;
      finish : int;
    }
      (** a completed activity interval (ns), reported at [finish].  The
          observability layer ([lib/obs]) renders these as timeline slices
          and derives utilization metrics from them. *)
  | Sched_run of { host : string }
      (** the scheduler woke a blocked process on this CPU *)
  | Sched_block of { host : string }
      (** a process blocked waiting on this CPU's scheduler *)
  | Irq of { host : string }  (** a NIC asserted its interrupt line *)
  | Queue_depth of { queue : string; depth : int }
      (** instantaneous occupancy of a named queue (NIC rx ring, switch
          egress buffer) after a push/pop *)
  | Msg_send of {
      node : int;
      dst : int;
      port : int;
      msg_id : int;
      bytes : int;
      epoch : int;
    }
      (** a message entered the send syscall; pairs with [Msg_deliver] for
          flow arrows and per-message latency attribution.  [epoch] is the
          sender's boot epoch: message ids restart from 0 after a reboot,
          so at-most-once delivery is keyed on (src, epoch, msg_id). *)
  | Obj_alloc of {
      kind : obj_kind;
      id : int;
      bytes : int;
      owner : owner;
      where : string;
    }
  | Obj_transfer of { kind : obj_kind; id : int; owner : owner; where : string }
  | Obj_free of { kind : obj_kind; id : int; where : string }
  | Pool_alloc of { pool : string; bytes : int; used : int; capacity : int }
  | Pool_free of { pool : string; bytes : int; used : int }
  | Ivar_fill of { id : int }
  | Sem_create of { id : int; permits : int }
  | Sem_acquire of { id : int; n : int; permits : int }
      (** [permits] is the count {e after} the acquire *)
  | Sem_release of { id : int; n : int; permits : int }
  | Ack_tx of { chan : int; node : int; peer : int; cum_seq : int }
  | Ack_rx of { chan : int; node : int; peer : int; cum_seq : int }
  | Snd_una of { chan : int; node : int; peer : int; snd_una : int }
  | Window of {
      chan : int;
      node : int;
      peer : int;
      outstanding : int;
      limit : int;
    }
  | Chan_deliver of { chan : int; node : int; peer : int; seq : int }
  | Chan_dead of { chan : int; node : int; peer : int }
  | Msg_deliver of {
      node : int;
      src : int;
      port : int;
      msg_id : int;
      epoch : int;
    }
  | Msg_recv of { node : int; src : int; port : int; msg_id : int; epoch : int }
      (** the receiving process took the message out of its port queue and
          the copy to user memory finished — the end of the message's
          latency window for the attribution pass (the syscall return is a
          fixed cost later) *)
  | Rto_armed of {
      chan : int;
      node : int;
      peer : int;
      rto_ns : int;
      lo_ns : int;
      hi_ns : int;
    }
  | Rx_poll_mode of { host : string; polling : bool }
      (** the driver switched rx servicing between per-packet interrupts
          ([polling = false]) and a NAPI-style budgeted polling loop
          ([polling = true]) *)
  | Poll_pass of { host : string; processed : int; budget : int }
      (** one polling pass completed; [processed <= budget] always *)
  | Pool_pressure of { pool : string; level : int }
      (** a kernel pool crossed a watermark: 0 = normal, 1 = above the
          soft mark, 2 = at/above the hard mark *)
  | Tx_wire of { host : string }
      (** a pause-aware NIC pushed a data frame onto its uplink; the
          no-transmit-while-paused monitor correlates these with
          [Pause_state] *)
  | Pause_state of { host : string; paused : bool }
      (** a transmit path entered/left the 802.3x paused state *)
  | Pause_frame of { host : string; sent : bool; quanta : int }
      (** a MAC-control PAUSE frame left ([sent]) or reached a station;
          [quanta] in 512-bit-time units, 0 = XON *)
  | Switch_buffer of {
      switch : string;
      port : int;  (** egress port (node id) the frame is queued for *)
      delta : int;  (** +bytes admitted / -bytes released *)
      occupied : int;  (** shared-pool bytes in use after the delta *)
      total : int;  (** pool capacity *)
    }
      (** the shared-buffer ledger moved; the ledger-balance monitor
          replays these *)
  | Switch_drop of {
      switch : string;
      port : int;
      ingress : bool;  (** true = uplink FIFO tail-drop, false = egress
                           buffer admission failure *)
      protected : bool;
          (** the switch was provisioned so that PAUSE should have made
              this drop impossible — any such drop is an invariant
              violation *)
    }
  | Ecn_mark of { switch : string; port : int; occupied : int; threshold : int }
      (** a switch set a frame's CE bit: the egress port's backlog
          ([occupied], including the frame itself) was at or above the
          configured [threshold] at enqueue — the CE-honesty monitor
          convicts marks where it was not *)
  | Sack_tx of { chan : int; node : int; peer : int; blocks : (int * int) list }
      (** a receiver advertised SACK blocks (absolute half-open
          [[start, stop)] ranges) on an outgoing ack *)
  | Sack_rx of { chan : int; node : int; peer : int; blocks : (int * int) list }
      (** a sender processed SACK blocks from an incoming ack *)
  | Chan_retx of { chan : int; node : int; peer : int; seq : int }
      (** a sender queued segment [seq] for retransmission (RTO or fast
          retransmit); the SACK monitor convicts retransmissions of
          still-SACKed segments *)
  | Gray_fault of { host : string; mode : string; active : bool }
      (** a fail-slow (gray) failure engaged ([active = true]) or cleared
          on [host]: [mode] is ["link-brownout"], ["nic-slow"] or
          ["switch-stall"].  SLO monitors use these edges to split latency
          samples into healthy / degraded / recovery phases, and the
          gray-soak demands evidence that each mode actually fired *)

val on : bool ref
(** True iff a sink is installed.  Hot emit sites read this directly —
    [if !Probe.on then Probe.emit ...] — so an uninstrumented run pays one
    load-and-test per site instead of an option dereference.  Treat as
    read-only: it is maintained by {!install}/{!uninstall}. *)

val enabled : unit -> bool
(** [!on], for call sites off the hot path. *)

val emit : event -> unit

val install : (event -> unit) -> unit
(** At most one sink; a second [install] replaces the first.  The sink runs
    synchronously inside the emitting component — it must not schedule
    simulation work. *)

val uninstall : unit -> unit

val owner_name : owner -> string
val kind_name : obj_kind -> string
val track_name : track -> string

val to_string : event -> string
(** Stable textual form, used for reports and determinism hashing. *)
