type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t bound =
  if bound <= 0. then invalid_arg "Rng.float: bound <= 0";
  let mantissa = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float mantissa /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean <= 0";
  let u = ref (float t 1.0) in
  if !u = 0. then u := 1e-300;
  -.mean *. log !u

let pareto t ~shape ~scale =
  if shape <= 0. then invalid_arg "Rng.pareto: shape <= 0";
  if scale <= 0. then invalid_arg "Rng.pareto: scale <= 0";
  let u = ref (float t 1.0) in
  if !u = 0. then u := 1e-300;
  scale *. (!u ** (-1. /. shape))

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))
