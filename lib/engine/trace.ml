type span = { label : string; start : Time.t; finish : Time.t }

type t = {
  sim : Sim.t;
  mutable enabled : bool;
  mutable rev_spans : span list;
}

let create sim = { sim; enabled = true; rev_spans = [] }
let enabled t = t.enabled
let set_enabled t e = t.enabled <- e

let record t label start finish =
  if t.enabled then t.rev_spans <- { label; start; finish } :: t.rev_spans

let run t label f =
  let start = Sim.now t.sim in
  let finish v =
    record t label start (Sim.now t.sim);
    v
  in
  match f () with v -> finish v | exception exn -> ignore (finish ()); raise exn

let mark t label =
  let now = Sim.now t.sim in
  record t label now now

let spans t =
  List.sort (fun a b -> compare (a.start, a.finish) (b.start, b.finish))
    (List.rev t.rev_spans)

let clear t = t.rev_spans <- []

let duration t label =
  let total =
    List.fold_left
      (fun acc s ->
        if String.equal s.label label then acc + Time.diff s.finish s.start
        else acc)
      0 (spans t)
  in
  let seen = List.exists (fun s -> String.equal s.label label) (spans t) in
  if seen then Some total else None

(* Merge-sweep over start-sorted intervals: extend the open interval while
   the next one overlaps (or abuts), otherwise close it out. *)
let merged_length intervals =
  let sorted = List.sort compare intervals in
  let total, open_iv =
    List.fold_left
      (fun (total, open_iv) (s, f) ->
        match open_iv with
        | None -> (total, Some (s, f))
        | Some (os, of_) ->
            if s <= of_ then (total, Some (os, max of_ f))
            else (total + Time.diff of_ os, Some (s, f)))
      (0, None) sorted
  in
  match open_iv with
  | None -> total
  | Some (os, of_) -> total + Time.diff of_ os

let disjoint_duration t label =
  let intervals =
    List.filter_map
      (fun s ->
        if String.equal s.label label then Some (s.start, s.finish) else None)
      (spans t)
  in
  match intervals with [] -> None | _ -> Some (merged_length intervals)

let pp fmt t =
  List.iter
    (fun s ->
      Format.fprintf fmt "%-28s %a .. %a (%a)@." s.label Time.pp_us s.start
        Time.pp_us s.finish Time.pp_us (Time.diff s.finish s.start))
    (spans t)
