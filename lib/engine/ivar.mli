(** Write-once synchronization variables ("incremental variables").

    An ivar starts empty; {!fill} sets its value exactly once and wakes every
    process blocked in {!read}.  Reads after the fill return immediately. *)

type 'a t

val create : unit -> 'a t

val id : 'a t -> int
(** Process-unique identity, reported in {!Probe.Ivar_fill} events. *)

val is_filled : 'a t -> bool

val fill : 'a t -> 'a -> unit
(** @raise Invalid_argument if already filled. *)

val peek : 'a t -> 'a option

val read : 'a t -> 'a
(** Blocks the calling process until the ivar is filled.  Must run inside a
    {!Process.spawn}ed process. *)

val on_fill : 'a t -> ('a -> unit) -> unit
(** Callback variant: runs [f] immediately if filled, else when filled. *)
