type event = {
  at : Time.t;
  seq : int; (* tiebreak: FIFO among same-instant events *)
  tie : int; (* seeded permutation key; 0 in FIFO mode *)
  thunk : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type t = {
  mutable clock : Time.t;
  heap : event Heap.t;
  tie_rng : Rng.t option;
  mutable next_seq : int;
  mutable executed : int;
  mutable live : int; (* scheduled and not cancelled/fired *)
}

(* The comparator orders by time, then the tie key, then scheduling order.
   In FIFO mode every tie key is 0, so same-instant events fire strictly in
   scheduling order; under a seeded tie-break the race detector permutes
   same-instant events while staying fully deterministic for a given seed
   (the stable heap breaks equal tie keys by insertion). *)
let compare_event a b =
  let c = compare a.at b.at in
  if c <> 0 then c
  else
    let c = compare a.tie b.tie in
    if c <> 0 then c else compare a.seq b.seq

(* The determinism checker sets a process-wide default so that scenarios
   which create simulators internally (figures, nested nets) inherit the
   permuted tie-breaking without plumbing a parameter everywhere. *)
let default_tie_break : int option ref = ref None
let set_default_tie_break seed = default_tie_break := seed

let create ?tie_break () =
  let seed =
    match tie_break with Some s -> Some s | None -> !default_tie_break
  in
  if Probe.enabled () then Probe.emit Probe.Sim_start;
  {
    clock = Time.zero;
    heap = Heap.create ~cmp:compare_event;
    tie_rng = Option.map (fun seed -> Rng.create ~seed) seed;
    next_seq = 0;
    executed = 0;
    live = 0;
  }

let now sim = sim.clock

let schedule_at sim ~at thunk =
  if at < sim.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: %d is in the past (now=%d)" at
         sim.clock);
  let tie =
    match sim.tie_rng with None -> 0 | Some rng -> Rng.int rng 0x3FFFFFFF
  in
  let ev = { at; seq = sim.next_seq; tie; thunk; cancelled = false } in
  sim.next_seq <- sim.next_seq + 1;
  sim.live <- sim.live + 1;
  Heap.push sim.heap ev;
  ev

let schedule sim ~after thunk =
  if after < 0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at sim ~at:(Time.add sim.clock after) thunk

let cancel ev =
  if not ev.cancelled then ev.cancelled <- true

let is_cancelled ev = ev.cancelled

let step sim =
  let rec next () =
    match Heap.pop sim.heap with
    | None -> false
    | Some ev when ev.cancelled ->
        sim.live <- sim.live - 1;
        next ()
    | Some ev ->
        sim.clock <- ev.at;
        sim.live <- sim.live - 1;
        sim.executed <- sim.executed + 1;
        if Probe.enabled () then Probe.emit (Probe.Clock { now = ev.at });
        ev.thunk ();
        true
  in
  next ()

let run sim = while step sim do () done

let run_until sim ~limit =
  let rec go () =
    match Heap.peek sim.heap with
    | Some ev when ev.cancelled ->
        ignore (Heap.pop sim.heap);
        sim.live <- sim.live - 1;
        go ()
    | Some ev when ev.at <= limit ->
        ignore (step sim);
        go ()
    | Some _ | None -> sim.clock <- Time.max sim.clock limit
  in
  go ()

let pending sim = sim.live
let events_executed sim = sim.executed
