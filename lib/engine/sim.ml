(* The event loop is the hottest code in the repository: every frame on
   every link, every process suspension and every timer goes through it.
   The representation is built so the steady state allocates nothing per
   event and keeps the OCaml write barrier off the hot path:

   - Events live in a slot arena of parallel arrays (thunk, seq, tie,
     state, generation), not in per-event records.  A free-slot stack
     recycles drained and cancelled slots, so a steady stream of
     {!post}s allocates nothing; the only pointer write per event is
     storing the thunk into its slot (a free slot keeps its fired
     closure until reuse overwrites it — the run entry points sweep the
     leftovers when they return, so nothing is retained past a drain).

   - The queue is a 4-ary min-heap over three unboxed [int array]s: the
     sort key ([at]), a first-level tie-break ([aux]: the unique seq in
     FIFO mode, the seeded tie key otherwise) and the slot index.  Sift
     loops compare and move plain ints in flat, cache-resident arrays —
     no pointer chasing and no [caml_modify] per level (moving boxed
     event records costs a write-barrier call per sift level; moving
     ints costs a store), and in FIFO mode they never touch the slot
     arrays at all because the aux seq decides every key tie.  The sift
     loops use unchecked array access — indices are bounded by [hsize],
     which never exceeds the shared capacity.

   - Handle-returning {!schedule} allocates a small handle per call.  The
     handle names its slot through a generation counter, so a handle
     retained long after its event fired (timer fields commonly do this)
     can never touch a recycled slot. *)

type t = {
  mutable clock : Time.t;
  (* Queue: 4-ary min-heap, positions 0..hsize-1 of three parallel int
     arrays.  All arrays below share one capacity and grow together. *)
  mutable keys : int array; (* heap-ordered firing times *)
  mutable haux : int array; (* first tie-break: seq (FIFO) or tie key *)
  mutable hidx : int array; (* heap position -> arena slot *)
  mutable hsize : int;
  (* Slot arena: one queued event per slot, parallel arrays. *)
  mutable s_thunk : (unit -> unit) array;
  mutable s_seq : int array; (* monotone; FIFO tie-break *)
  mutable s_tie : int array; (* seeded permutation key; unused in FIFO *)
  mutable s_state : int array; (* st_scheduled / st_cancelled *)
  mutable s_gen : int array; (* bumped on free; validates handles *)
  mutable free : int array; (* free-slot stack *)
  mutable free_n : int;
  mutable slots_used : int; (* slots ever handed out; rest are virgin *)
  fifo : bool; (* no tie-break rng: comparisons skip [s_tie] *)
  tie_rng : Rng.t option;
  mutable next_seq : int;
  mutable executed : int;
  mutable live : int; (* scheduled and not cancelled/fired *)
}

(* [hcancelled] mirrors the successful-cancel outcome so {!is_cancelled}
   stays true even after the cancelled slot drains and is recycled. *)
type handle = {
  owner : t;
  slot : int;
  gen : int;
  mutable hcancelled : bool;
}

let ignore_thunk () = ()
let st_scheduled = 0
let st_cancelled = 1

(* Last-resort ordering when key and aux both compare equal: impossible
   in FIFO mode (aux is the unique seq); in rng mode two events drew the
   same tie key and scheduling order decides. *)
let[@inline] [@clic.hot] seq_before sim sa sb =
  Array.unsafe_get sim.s_seq sa < Array.unsafe_get sim.s_seq sb

(* Hole-based sifts: carry the moving (key, aux, slot) triple in locals
   and write it once at its final position instead of swapping per
   level. *)
let[@clic.hot] sift_up sim i0 =
  let keys = sim.keys and haux = sim.haux and hidx = sim.hidx in
  let kev = Array.unsafe_get keys i0 in
  let aev = Array.unsafe_get haux i0 in
  let sev = Array.unsafe_get hidx i0 in
  let i = ref i0 and stop = ref false in
  while !i > 0 && not !stop do
    let p = (!i - 1) lsr 2 in
    let kp = Array.unsafe_get keys p in
    let ap = Array.unsafe_get haux p in
    if
      kev < kp
      || (kev = kp
          && (aev < ap
              || (aev = ap
                  && seq_before sim sev (Array.unsafe_get hidx p))))
    then begin
      Array.unsafe_set keys !i kp;
      Array.unsafe_set haux !i ap;
      Array.unsafe_set hidx !i (Array.unsafe_get hidx p);
      i := p
    end
    else stop := true
  done;
  Array.unsafe_set keys !i kev;
  Array.unsafe_set haux !i aev;
  Array.unsafe_set hidx !i sev

let[@clic.hot] sift_down sim i0 =
  let keys = sim.keys and haux = sim.haux and hidx = sim.hidx in
  let n = sim.hsize in
  let kev = Array.unsafe_get keys i0 in
  let aev = Array.unsafe_get haux i0 in
  let sev = Array.unsafe_get hidx i0 in
  let i = ref i0 and stop = ref false in
  while not !stop do
    let base = (!i lsl 2) + 1 in
    if base >= n then stop := true
    else begin
      (* Smallest of the four children: positions >= hsize hold sentinel
         keys (max_int), so the block of four is always readable and the
         scan unrolls with no bounds arithmetic.  A sentinel can only
         win against another sentinel, and the final comparison against
         the real moving key rejects it. *)
      let c = ref base
      and kc = ref (Array.unsafe_get keys base)
      and ac = ref (Array.unsafe_get haux base) in
      let j = base + 1 in
      let kj = Array.unsafe_get keys j in
      let aj = Array.unsafe_get haux j in
      if
        kj < !kc
        || (kj = !kc
            && (aj < !ac
                || (aj = !ac
                    && seq_before sim (Array.unsafe_get hidx j)
                         (Array.unsafe_get hidx !c))))
      then begin
        c := j;
        kc := kj;
        ac := aj
      end;
      let j = base + 2 in
      let kj = Array.unsafe_get keys j in
      let aj = Array.unsafe_get haux j in
      if
        kj < !kc
        || (kj = !kc
            && (aj < !ac
                || (aj = !ac
                    && seq_before sim (Array.unsafe_get hidx j)
                         (Array.unsafe_get hidx !c))))
      then begin
        c := j;
        kc := kj;
        ac := aj
      end;
      let j = base + 3 in
      let kj = Array.unsafe_get keys j in
      let aj = Array.unsafe_get haux j in
      if
        kj < !kc
        || (kj = !kc
            && (aj < !ac
                || (aj = !ac
                    && seq_before sim (Array.unsafe_get hidx j)
                         (Array.unsafe_get hidx !c))))
      then begin
        c := j;
        kc := kj;
        ac := aj
      end;
      if
        !kc < kev
        || (!kc = kev
            && (!ac < aev
                || (!ac = aev
                    && seq_before sim (Array.unsafe_get hidx !c) sev)))
      then begin
        Array.unsafe_set keys !i !kc;
        Array.unsafe_set haux !i !ac;
        Array.unsafe_set hidx !i (Array.unsafe_get hidx !c);
        i := !c
      end
      else stop := true
    end
  done;
  Array.unsafe_set keys !i kev;
  Array.unsafe_set haux !i aev;
  Array.unsafe_set hidx !i sev

let[@inline never] grow sim =
  let cap = Array.length sim.free in
  let ncap = if cap = 0 then 256 else cap * 2 in
  let g fill a =
    let n = Array.make ncap fill in
    Array.blit a 0 n 0 (Array.length a);
    n
  in
  (* The heap arrays carry 3 extra sentinel positions (keys = max_int)
     so the 4-ary child scan can always read a full block of four
     children without bounds arithmetic; [pop_root] restores the
     sentinel when the heap shrinks. *)
  let gh fill a =
    let n = Array.make (ncap + 3) fill in
    Array.blit a 0 n 0 (Array.length a);
    n
  in
  sim.keys <- gh max_int sim.keys;
  sim.haux <- gh 0 sim.haux;
  sim.hidx <- gh 0 sim.hidx;
  sim.s_thunk <- g ignore_thunk sim.s_thunk;
  sim.s_seq <- g 0 sim.s_seq;
  sim.s_tie <- g 0 sim.s_tie;
  sim.s_state <- g st_scheduled sim.s_state;
  sim.s_gen <- g 0 sim.s_gen;
  sim.free <- g 0 sim.free

let[@inline] [@clic.hot] alloc_slot sim =
  let n = sim.free_n in
  if n > 0 then begin
    sim.free_n <- n - 1;
    Array.unsafe_get sim.free (n - 1)
  end
  else begin
    if sim.slots_used >= Array.length sim.free then grow sim;
    let s = sim.slots_used in
    sim.slots_used <- s + 1;
    s
  end

(* Returns a drained or cancelled slot to the free stack.  The generation
   bump invalidates any handle still naming the slot.  The slot's thunk
   is deliberately NOT cleared here: the store would pay a write-barrier
   call per event (and skipping the barrier is unsound — OCaml 5's major
   GC darkens overwritten pointers to keep its snapshot invariant), and
   reuse overwrites it through the barrier in {!enqueue} anyway.  So a
   free slot retains its fired closure until reuse — bounded by the
   arena capacity — and {!clear_free_thunks} drops the stragglers in one
   cold sweep whenever a run entry point returns control. *)
let[@inline] [@clic.hot] free_slot sim s =
  Array.unsafe_set sim.s_gen s (Array.unsafe_get sim.s_gen s + 1);
  Array.unsafe_set sim.free sim.free_n s;
  sim.free_n <- sim.free_n + 1

let clear_free_thunks sim =
  for i = 0 to sim.free_n - 1 do
    let s = Array.unsafe_get sim.free i in
    if Array.unsafe_get sim.s_thunk s != ignore_thunk then
      Array.unsafe_set sim.s_thunk s ignore_thunk
  done

(* The determinism checker sets a process-wide default so that scenarios
   which create simulators internally (figures, nested nets) inherit the
   permuted tie-breaking without plumbing a parameter everywhere. *)
let default_tie_break : int option ref = ref None
let set_default_tie_break seed = default_tie_break := seed

let create ?tie_break () =
  let seed =
    match tie_break with Some s -> Some s | None -> !default_tie_break
  in
  if !Probe.on then Probe.emit Probe.Sim_start;
  let tie_rng = Option.map (fun seed -> Rng.create ~seed) seed in
  {
    clock = Time.zero;
    keys = [||];
    haux = [||];
    hidx = [||];
    hsize = 0;
    s_thunk = [||];
    s_seq = [||];
    s_tie = [||];
    s_state = [||];
    s_gen = [||];
    free = [||];
    free_n = 0;
    slots_used = 0;
    fifo = (match tie_rng with None -> true | Some _ -> false);
    tie_rng;
    next_seq = 0;
    executed = 0;
    live = 0;
  }

let now sim = sim.clock

let[@inline never] past_error at now =
  invalid_arg
    (Printf.sprintf "Sim.schedule_at: %d is in the past (now=%d)" at now)

(* Shared enqueue: claims a slot, fills it, pushes it on the heap.
   Returns the slot for {!schedule_at} to wrap in a handle. *)
let[@inline] [@clic.hot] enqueue sim ~at thunk =
  if at < sim.clock then past_error at sim.clock;
  if at = max_int then invalid_arg "Sim.schedule_at: at = max_int is reserved";
  let seq = sim.next_seq in
  let s = alloc_slot sim in
  Array.unsafe_set sim.s_thunk s thunk;
  Array.unsafe_set sim.s_seq s seq;
  Array.unsafe_set sim.s_state s st_scheduled;
  (* First-level tie-break carried beside the key: the unique seq in
     FIFO mode (sifts then never touch the slot arrays), the seeded tie
     key under the determinism checker's permuted ordering. *)
  let aux =
    match sim.tie_rng with
    | None -> seq
    | Some rng ->
        let tie = Rng.int rng 0x3FFFFFFF in
        Array.unsafe_set sim.s_tie s tie;
        tie
  in
  sim.next_seq <- seq + 1;
  sim.live <- sim.live + 1;
  let i = sim.hsize in
  sim.hsize <- i + 1;
  Array.unsafe_set sim.keys i at;
  Array.unsafe_set sim.haux i aux;
  Array.unsafe_set sim.hidx i s;
  sift_up sim i;
  s

let schedule_at sim ~at thunk =
  let s = enqueue sim ~at thunk in
  { owner = sim; slot = s; gen = Array.unsafe_get sim.s_gen s;
    hcancelled = false }

let schedule sim ~after thunk =
  if after < 0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at sim ~at:(Time.add sim.clock after) thunk

let[@clic.hot] post_at sim ~at thunk = ignore (enqueue sim ~at thunk : int)

let[@clic.hot] post sim ~after thunk =
  if after < 0 then invalid_arg "Sim.post: negative delay";
  post_at sim ~at:(Time.add sim.clock after) thunk

let cancel h =
  if not h.hcancelled then begin
    let sim = h.owner in
    if
      sim.s_gen.(h.slot) = h.gen && sim.s_state.(h.slot) = st_scheduled
    then begin
      sim.s_state.(h.slot) <- st_cancelled;
      (* Drop the closure now; the slot itself drains from the heap
         lazily. *)
      sim.s_thunk.(h.slot) <- ignore_thunk;
      sim.live <- sim.live - 1;
      h.hcancelled <- true
    end
  end

let is_cancelled h = h.hcancelled

(* Removes the root; positions past [hsize] hold only ints, so nothing
   needs clearing. *)
let[@inline] [@clic.hot] pop_root sim =
  let n = sim.hsize - 1 in
  sim.hsize <- n;
  if n > 0 then begin
    Array.unsafe_set sim.keys 0 (Array.unsafe_get sim.keys n);
    Array.unsafe_set sim.haux 0 (Array.unsafe_get sim.haux n);
    Array.unsafe_set sim.hidx 0 (Array.unsafe_get sim.hidx n);
    Array.unsafe_set sim.keys n max_int;
    sift_down sim 0
  end
  else Array.unsafe_set sim.keys 0 max_int

(* Process-wide count of events fired across every simulator, for the
   events/sec benchmarks: scenarios create simulators internally, so a
   per-simulator counter cannot be totalled from outside. *)
let total_executed = ref 0
let global_events_executed () = !total_executed

let[@clic.hot] rec step sim =
  if sim.hsize = 0 then false
  else begin
    let at = Array.unsafe_get sim.keys 0 in
    let s = Array.unsafe_get sim.hidx 0 in
    pop_root sim;
    if Array.unsafe_get sim.s_state s = st_cancelled then begin
      (* [cancel] already removed it from the live count. *)
      free_slot sim s;
      step sim
    end
    else begin
      sim.clock <- at;
      sim.live <- sim.live - 1;
      sim.executed <- sim.executed + 1;
      incr total_executed;
      let thunk = Array.unsafe_get sim.s_thunk s in
      (* Free before dispatch so the thunk's own posts reuse the slot. *)
      free_slot sim s;
      if !Probe.on then Probe.emit (Probe.Clock { now = at });
      thunk ();
      true
    end
  end

let run sim =
  while step sim do () done;
  clear_free_thunks sim

let run_n sim n =
  if n < 0 then invalid_arg "Sim.run_n: negative count";
  let i = ref 0 in
  while !i < n && step sim do
    incr i
  done;
  clear_free_thunks sim;
  !i

let run_until sim ~limit =
  let continue_ = ref true in
  while !continue_ do
    if sim.hsize = 0 then continue_ := false
    else begin
      let s = Array.unsafe_get sim.hidx 0 in
      if Array.unsafe_get sim.s_state s = st_cancelled then begin
        pop_root sim;
        free_slot sim s
      end
      else if Array.unsafe_get sim.keys 0 <= limit then ignore (step sim)
      else continue_ := false
    end
  done;
  if sim.clock < limit then sim.clock <- limit;
  clear_free_thunks sim

let pending sim = sim.live
let events_executed sim = sim.executed
