(** Counting semaphores for simulation processes.

    Used to model bounded capacities: NIC descriptor rings, socket buffers,
    in-flight message windows.  FIFO wakeup order. *)

type t

val create : int -> t
(** [create n] has [n] initial permits.  [n] must be non-negative. *)

val acquire : ?n:int -> t -> unit
(** Blocks the calling process until [n] (default 1) permits are available,
    then takes them.  Waiters are served strictly in FIFO order: a large
    request at the head blocks later small ones (no starvation). *)

val try_acquire : ?n:int -> t -> bool
val release : ?n:int -> t -> unit
val available : t -> int
val waiters : t -> int

val id : t -> int
(** Process-unique identity, reported in {!Probe} semaphore events. *)
