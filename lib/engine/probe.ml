(* A process-global instrumentation hub.

   Simulation components emit typed events here; nothing listens by
   default, so the cost of an uninstalled probe is one flag test.  The
   analysis layer (lib/check) installs a sink around a scenario run and
   reconstructs object lifecycles, protocol invariants and determinism
   hashes from the stream. *)

type owner = App | Channel | Driver | Bh | Nic

type obj_kind = Skb | Rx_buffer

type track = Process | Isr | Bh_track | Module | Dma | Link | Pause_t | Busy

type event =
  | Sim_start
  | Clock of { now : int }
  | Span of {
      host : string;
      track : track;
      label : string;
      start : int;
      finish : int;
    }
  | Sched_run of { host : string }
  | Sched_block of { host : string }
  | Irq of { host : string }
  | Queue_depth of { queue : string; depth : int }
  | Msg_send of {
      node : int;
      dst : int;
      port : int;
      msg_id : int;
      bytes : int;
      epoch : int;
    }
  | Obj_alloc of {
      kind : obj_kind;
      id : int;
      bytes : int;
      owner : owner;
      where : string;
    }
  | Obj_transfer of { kind : obj_kind; id : int; owner : owner; where : string }
  | Obj_free of { kind : obj_kind; id : int; where : string }
  | Pool_alloc of { pool : string; bytes : int; used : int; capacity : int }
  | Pool_free of { pool : string; bytes : int; used : int }
  | Ivar_fill of { id : int }
  | Sem_create of { id : int; permits : int }
  | Sem_acquire of { id : int; n : int; permits : int }
  | Sem_release of { id : int; n : int; permits : int }
  | Ack_tx of { chan : int; node : int; peer : int; cum_seq : int }
  | Ack_rx of { chan : int; node : int; peer : int; cum_seq : int }
  | Snd_una of { chan : int; node : int; peer : int; snd_una : int }
  | Window of {
      chan : int;
      node : int;
      peer : int;
      outstanding : int;
      limit : int;
    }
  | Chan_deliver of { chan : int; node : int; peer : int; seq : int }
  | Chan_dead of { chan : int; node : int; peer : int }
  | Msg_deliver of {
      node : int;
      src : int;
      port : int;
      msg_id : int;
      epoch : int;
    }
  | Msg_recv of { node : int; src : int; port : int; msg_id : int; epoch : int }
  | Rto_armed of {
      chan : int;
      node : int;
      peer : int;
      rto_ns : int;
      lo_ns : int;
      hi_ns : int;
    }
  | Rx_poll_mode of { host : string; polling : bool }
  | Poll_pass of { host : string; processed : int; budget : int }
  | Pool_pressure of { pool : string; level : int }
  | Tx_wire of { host : string }
  | Pause_state of { host : string; paused : bool }
  | Pause_frame of { host : string; sent : bool; quanta : int }
  | Switch_buffer of {
      switch : string;
      port : int;
      delta : int;
      occupied : int;
      total : int;
    }
  | Switch_drop of {
      switch : string;
      port : int;
      ingress : bool;
      protected : bool;
    }
  | Ecn_mark of { switch : string; port : int; occupied : int; threshold : int }
  | Sack_tx of { chan : int; node : int; peer : int; blocks : (int * int) list }
  | Sack_rx of { chan : int; node : int; peer : int; blocks : (int * int) list }
  | Chan_retx of { chan : int; node : int; peer : int; seq : int }
  | Gray_fault of { host : string; mode : string; active : bool }

let sink : (event -> unit) option ref = ref None

(* Mirror of [sink <> None], kept as a plain bool so every emit site in the
   hot path pays a single load-and-test — no option dereference, no
   polymorphic comparison — when nothing is listening (the common case). *)
let on = ref false

let enabled () = !on

let emit ev = match !sink with Some f -> f ev | None -> ()

let install f =
  sink := Some f;
  on := true

let uninstall () =
  sink := None;
  on := false

let owner_name = function
  | App -> "app"
  | Channel -> "channel"
  | Driver -> "driver"
  | Bh -> "bottom-half"
  | Nic -> "nic"

let kind_name = function Skb -> "skbuff" | Rx_buffer -> "rx-buffer"

let track_name = function
  | Process -> "process"
  | Isr -> "isr"
  | Bh_track -> "bottom-half"
  | Module -> "module"
  | Dma -> "dma"
  | Link -> "link"
  | Pause_t -> "pause"
  | Busy -> "busy"

let to_string = function
  | Sim_start -> "sim-start"
  | Clock { now } -> Printf.sprintf "clock %d" now
  | Span { host; track; label; start; finish } ->
      Printf.sprintf "span %s/%s %s %d..%d" host (track_name track) label
        start finish
  | Sched_run { host } -> Printf.sprintf "sched-run %s" host
  | Sched_block { host } -> Printf.sprintf "sched-block %s" host
  | Irq { host } -> Printf.sprintf "irq %s" host
  | Queue_depth { queue; depth } ->
      Printf.sprintf "queue-depth %s %d" queue depth
  | Msg_send { node; dst; port; msg_id; bytes; epoch } ->
      Printf.sprintf "msg-send node=%d dst=%d port=%d msg=%d %dB ep=%d" node
        dst port msg_id bytes epoch
  | Obj_alloc { kind; id; bytes; owner; where } ->
      Printf.sprintf "alloc %s#%d %dB owner=%s at %s" (kind_name kind) id
        bytes (owner_name owner) where
  | Obj_transfer { kind; id; owner; where } ->
      Printf.sprintf "transfer %s#%d -> %s at %s" (kind_name kind) id
        (owner_name owner) where
  | Obj_free { kind; id; where } ->
      Printf.sprintf "free %s#%d at %s" (kind_name kind) id where
  | Pool_alloc { pool; bytes; used; capacity } ->
      Printf.sprintf "pool-alloc %s %dB (used %d/%d)" pool bytes used capacity
  | Pool_free { pool; bytes; used } ->
      Printf.sprintf "pool-free %s %dB (used %d)" pool bytes used
  | Ivar_fill { id } -> Printf.sprintf "ivar-fill #%d" id
  | Sem_create { id; permits } ->
      Printf.sprintf "sem-create #%d permits=%d" id permits
  | Sem_acquire { id; n; permits } ->
      Printf.sprintf "sem-acquire #%d n=%d permits=%d" id n permits
  | Sem_release { id; n; permits } ->
      Printf.sprintf "sem-release #%d n=%d permits=%d" id n permits
  | Ack_tx { chan; node; peer; cum_seq } ->
      Printf.sprintf "ack-tx chan#%d %d->%d cum=%d" chan node peer cum_seq
  | Ack_rx { chan; node; peer; cum_seq } ->
      Printf.sprintf "ack-rx chan#%d %d<-%d cum=%d" chan node peer cum_seq
  | Snd_una { chan; node; peer; snd_una } ->
      Printf.sprintf "snd-una chan#%d %d->%d una=%d" chan node peer snd_una
  | Window { chan; node; peer; outstanding; limit } ->
      Printf.sprintf "window chan#%d %d->%d %d/%d" chan node peer outstanding
        limit
  | Chan_deliver { chan; node; peer; seq } ->
      Printf.sprintf "chan-deliver chan#%d %d<-%d seq=%d" chan node peer seq
  | Chan_dead { chan; node; peer } ->
      Printf.sprintf "chan-dead chan#%d %d->%d" chan node peer
  | Msg_deliver { node; src; port; msg_id; epoch } ->
      Printf.sprintf "msg-deliver node=%d src=%d port=%d msg=%d ep=%d" node
        src port msg_id epoch
  | Msg_recv { node; src; port; msg_id; epoch } ->
      Printf.sprintf "msg-recv node=%d src=%d port=%d msg=%d ep=%d" node src
        port msg_id epoch
  | Rto_armed { chan; node; peer; rto_ns; lo_ns; hi_ns } ->
      Printf.sprintf "rto-armed chan#%d %d->%d %dns in [%d,%d]" chan node
        peer rto_ns lo_ns hi_ns
  | Rx_poll_mode { host; polling } ->
      Printf.sprintf "rx-poll-mode %s %s" host
        (if polling then "polling" else "irq")
  | Poll_pass { host; processed; budget } ->
      Printf.sprintf "poll-pass %s %d/%d" host processed budget
  | Pool_pressure { pool; level } ->
      Printf.sprintf "pool-pressure %s level=%d" pool level
  | Tx_wire { host } -> Printf.sprintf "tx-wire %s" host
  | Pause_state { host; paused } ->
      Printf.sprintf "pause-state %s %s" host
        (if paused then "paused" else "running")
  | Pause_frame { host; sent; quanta } ->
      Printf.sprintf "pause-frame %s %s quanta=%d" host
        (if sent then "tx" else "rx")
        quanta
  | Switch_buffer { switch; port; delta; occupied; total } ->
      Printf.sprintf "switch-buffer %s port=%d %+dB (occupied %d/%d)" switch
        port delta occupied total
  | Switch_drop { switch; port; ingress; protected } ->
      Printf.sprintf "switch-drop %s port=%d %s%s" switch port
        (if ingress then "ingress" else "egress")
        (if protected then " (protected!)" else "")
  | Ecn_mark { switch; port; occupied; threshold } ->
      Printf.sprintf "ecn-mark %s port=%d occupied=%d threshold=%d" switch
        port occupied threshold
  | Sack_tx { chan; node; peer; blocks } ->
      Printf.sprintf "sack-tx chan#%d %d->%d %s" chan node peer
        (String.concat ","
           (List.map (fun (a, z) -> Printf.sprintf "%d-%d" a (z - 1)) blocks))
  | Sack_rx { chan; node; peer; blocks } ->
      Printf.sprintf "sack-rx chan#%d %d<-%d %s" chan node peer
        (String.concat ","
           (List.map (fun (a, z) -> Printf.sprintf "%d-%d" a (z - 1)) blocks))
  | Chan_retx { chan; node; peer; seq } ->
      Printf.sprintf "chan-retx chan#%d %d->%d seq=%d" chan node peer seq
  | Gray_fault { host; mode; active } ->
      Printf.sprintf "gray-fault %s %s %s" host mode
        (if active then "on" else "off")
