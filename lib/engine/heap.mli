(** A polymorphic, {e stable} binary min-heap.

    Used as the event queue of the simulator, but generic: ordering is given
    by a comparison function at creation time.  Every entry carries an
    explicit monotone insertion stamp and the internal comparator falls back
    to it, so elements that compare equal under [cmp] pop in insertion
    (FIFO) order by construction.  Amortised O(log n) insert and pop, O(1)
    peek.  Not thread-safe — the simulator is single-domain. *)

type 'a t

val create : dummy:'a -> cmp:('a -> 'a -> int) -> 'a t
(** [create ~dummy ~cmp] is an empty heap ordered by [cmp] (smallest
    first).  [dummy] is a throwaway element used to fill unoccupied
    slots of the backing array; it is never compared with [cmp] and
    never returned, but it may be retained by the heap indefinitely, so
    prefer a small constant value. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Drains a copy of the heap; the heap itself is left untouched. *)
