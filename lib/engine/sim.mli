(** The discrete-event simulator core.

    A simulator owns a virtual clock and a queue of timestamped events
    (thunks).  Events scheduled for the same instant fire in scheduling
    order (FIFO), which makes runs fully deterministic.

    Higher-level blocking-style code is built on top of this in
    {!Process}. *)

type t

type handle
(** A scheduled event that can still be cancelled. *)

val create : ?tie_break:int -> unit -> t
(** A fresh simulator with the clock at {!Time.zero}.

    [tie_break] seeds a deterministic permutation of same-instant event
    ordering: events scheduled for the same time fire in an order decided
    by a seeded draw instead of FIFO.  Any observable difference between
    runs with different seeds is a hidden ordering race — this hook exists
    for the determinism detector in [lib/check], not for normal use.
    Without it (and with no process default), same-instant events fire in
    scheduling order. *)

val set_default_tie_break : int option -> unit
(** Process-wide default for [tie_break], consulted by {!create} when no
    explicit seed is given.  Used by the checker so that scenarios creating
    simulators internally inherit the permutation; reset it to [None] when
    done. *)

val now : t -> Time.t

val schedule : t -> after:Time.span -> (unit -> unit) -> handle
(** [schedule sim ~after f] arranges for [f ()] to run [after] nanoseconds
    from now.  [after] must be non-negative.
    @raise Invalid_argument on a negative delay. *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> handle
(** Absolute-time variant; [at] must not be in the past. *)

val cancel : handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val is_cancelled : handle -> bool

val run : t -> unit
(** Runs events until the queue is empty.  Uncaught exceptions from event
    thunks propagate out of [run] (with the clock left at the failure
    instant). *)

val run_until : t -> limit:Time.t -> unit
(** Runs events with timestamp [<= limit]; the clock is advanced to [limit]
    if the queue drains or only later events remain. *)

val step : t -> bool
(** Runs a single event.  Returns [false] if the queue was empty. *)

val pending : t -> int
(** Number of scheduled (non-cancelled) events, for tests/diagnostics. *)

val events_executed : t -> int
(** Total count of events fired since creation. *)
