(** The discrete-event simulator core.

    A simulator owns a virtual clock and a queue of timestamped events
    (thunks).  Events scheduled for the same instant fire in scheduling
    order (FIFO), which makes runs fully deterministic.

    Two scheduling tiers exist.  {!post} is the fast path: it returns no
    handle, so the engine pools and reuses its event records — a steady
    stream of posts allocates nothing.  {!schedule} returns a {!handle}
    for later {!cancel}; because callers routinely retain handles past
    the event's firing, those records are freshly allocated and never
    recycled.  Prefer [post] anywhere the event is never cancelled.

    Higher-level blocking-style code is built on top of this in
    {!Process}. *)

type t

type handle
(** A scheduled event that can still be cancelled. *)

val create : ?tie_break:int -> unit -> t
(** A fresh simulator with the clock at {!Time.zero}.

    [tie_break] seeds a deterministic permutation of same-instant event
    ordering: events scheduled for the same time fire in an order decided
    by a seeded draw instead of FIFO.  Any observable difference between
    runs with different seeds is a hidden ordering race — this hook exists
    for the determinism detector in [lib/check], not for normal use.
    Without it (and with no process default), same-instant events fire in
    scheduling order. *)

val set_default_tie_break : int option -> unit
(** Process-wide default for [tie_break], consulted by {!create} when no
    explicit seed is given.  Used by the checker so that scenarios creating
    simulators internally inherit the permutation; reset it to [None] when
    done. *)

val now : t -> Time.t

val schedule : t -> after:Time.span -> (unit -> unit) -> handle
(** [schedule sim ~after f] arranges for [f ()] to run [after] nanoseconds
    from now.  [after] must be non-negative.
    @raise Invalid_argument on a negative delay. *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> handle
(** Absolute-time variant; [at] must not be in the past. *)

val post : t -> after:Time.span -> (unit -> unit) -> unit
(** Like {!schedule} but returns no handle, which lets the engine recycle
    the event record through an internal free list: a steady stream of
    posts reaches zero allocations per event.  Use for fire-and-forget
    events (frame arrivals, link updates, process wakeups); anything that
    might need {!cancel} must use {!schedule}. *)

val post_at : t -> at:Time.t -> (unit -> unit) -> unit
(** Absolute-time variant of {!post}; [at] must not be in the past. *)

val cancel : handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op.
    Takes effect immediately in {!pending}; the cancelled record drains
    from the queue lazily. *)

val is_cancelled : handle -> bool

val run : t -> unit
(** Runs events until the queue is empty.  Uncaught exceptions from event
    thunks propagate out of [run] (with the clock left at the failure
    instant). *)

val run_until : t -> limit:Time.t -> unit
(** Runs events with timestamp [<= limit]; the clock is advanced to [limit]
    if the queue drains or only later events remain. *)

val run_n : t -> int -> int
(** [run_n sim n] runs at most [n] events and returns how many actually
    fired (less than [n] only if the queue drained).  The batched-drain
    entry point: callers interleaving simulation with external work (the
    benchmark driver, future incremental UIs) drain bounded bursts
    without paying per-event loop-control overhead at the call site.
    @raise Invalid_argument on a negative count. *)

val step : t -> bool
(** Runs a single event.  Returns [false] if the queue was empty. *)

val pending : t -> int
(** Number of scheduled (non-cancelled) events, for tests/diagnostics.
    Cancelled events leave the count at {!cancel} time, not when their
    record drains from the queue. *)

val events_executed : t -> int
(** Total count of events fired since creation. *)

val global_events_executed : unit -> int
(** Process-wide total of events fired across {e all} simulators ever
    created.  Scenario benchmarks use the delta across a run to compute
    events/sec, since scenarios construct their simulators internally. *)
