(** A shared bandwidth-limited bus.

    Thin layer over {!Resource}: a transfer of [n] bytes occupies the bus for
    [setup + n / effective_bandwidth].  [efficiency] derates the peak
    bandwidth for protocol/arbitration overhead (e.g. PCI burst efficiency),
    and [setup] models the per-transaction cost (arbitration, address
    phase).  Concurrent transfers serialize, so contention between, say, DMA
    traffic and CPU copies on a memory bus emerges naturally. *)

type t

val create :
  Sim.t ->
  name:string ->
  bytes_per_s:float ->
  ?efficiency:float ->
  ?setup:Time.span ->
  unit ->
  t
(** @raise Invalid_argument if [bytes_per_s <= 0] or [efficiency] outside
    (0, 1]. *)

val name : t -> string
val sim : t -> Sim.t

val transfer_time : t -> int -> Time.span
(** Uncontended duration of an [n]-byte transfer. *)

val transfer : ?priority:Resource.priority -> t -> int -> unit
(** Blocks the calling process for queueing plus {!transfer_time}. *)

val bytes_moved : t -> int
val busy_time : t -> Time.span
val utilization : t -> since:Time.t -> float
val reset_stats : t -> unit
