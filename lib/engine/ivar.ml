type 'a state = Empty of ('a -> unit) list | Filled of 'a
type 'a t = { id : int; mutable state : 'a state }

let next_id = ref 0

let create () =
  let id = !next_id in
  incr next_id;
  { id; state = Empty [] }

let id t = t.id

let is_filled t =
  match t.state with Filled _ -> true | Empty _ -> false

let fill t v =
  (* Emitted before the single-fill check so the invariant monitor sees the
     offending second fill as well as the raise. *)
  if !Probe.on then Probe.emit (Probe.Ivar_fill { id = t.id });
  match t.state with
  | Filled _ -> invalid_arg "Ivar.fill: already filled"
  | Empty waiters ->
      t.state <- Filled v;
      (* Wake in registration order. *)
      List.iter (fun k -> k v) (List.rev waiters)

let peek t = match t.state with Filled v -> Some v | Empty _ -> None

let on_fill t f =
  match t.state with
  | Filled v -> f v
  | Empty waiters -> t.state <- Empty (f :: waiters)

let read t =
  match t.state with
  | Filled v -> v
  | Empty _ -> Process.await (fun resume -> on_fill t resume)
