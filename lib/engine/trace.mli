(** Pipeline stage tracing, used to regenerate the paper's Figure 7 (the
    per-stage timing of a packet flowing through the CLIC path).

    A trace collects named stage intervals.  Stages may overlap (the send
    DMA overlaps the wire flight, for instance); the reporting code decides
    how to present them.  Tracing is cheap and can be left attached. *)

type t

type span = { label : string; start : Time.t; finish : Time.t }

val create : Sim.t -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> string -> Time.t -> Time.t -> unit
(** Record a completed stage explicitly. *)

val run : t -> string -> (unit -> 'a) -> 'a
(** [run t label f] times [f] (which may suspend) as one stage. *)

val mark : t -> string -> unit
(** A zero-length event marker. *)

val spans : t -> span list
(** Recorded spans in start order. *)

val clear : t -> unit

val duration : t -> string -> Time.span option
(** Total time of all spans with the given label, summed {e with}
    multiplicity: two overlapping spans of the same label each contribute
    their full length, so the result can exceed wall-clock time.  This is
    the right reading for per-stage {e work} (Figure 7 sums stage costs),
    but not for occupancy.  Use {!disjoint_duration} for wall-clock
    coverage.  [None] when no span carries the label. *)

val disjoint_duration : t -> string -> Time.span option
(** Wall-clock time covered by spans with the given label: overlapping
    intervals are merged before measuring, so each instant counts once.
    [disjoint_duration t l <= duration t l] always.  The latency
    attribution pass in [lib/obs] uses this reading.  [None] when no span
    carries the label. *)

val merged_length : (Time.t * Time.t) list -> Time.span
(** Total length of the union of the given [(start, finish)] intervals
    (overlaps counted once).  Exposed for observability-layer passes that
    merge probe spans without building a trace. *)

val pp : Format.formatter -> t -> unit
