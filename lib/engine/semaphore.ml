type waiter = { need : int; resume : unit -> unit }
type t = { id : int; mutable permits : int; queue : waiter Queue.t }

let next_id = ref 0

let create n =
  if n < 0 then invalid_arg "Semaphore.create: negative permits";
  let id = !next_id in
  incr next_id;
  if !Probe.on then Probe.emit (Probe.Sem_create { id; permits = n });
  { id; permits = n; queue = Queue.create () }

let rec drain t =
  match Queue.peek_opt t.queue with
  | Some w when w.need <= t.permits ->
      ignore (Queue.pop t.queue);
      t.permits <- t.permits - w.need;
      if !Probe.on then
        Probe.emit
          (Probe.Sem_acquire { id = t.id; n = w.need; permits = t.permits });
      w.resume ();
      drain t
  | Some _ | None -> ()

let release ?(n = 1) t =
  if n < 0 then invalid_arg "Semaphore.release: negative count";
  t.permits <- t.permits + n;
  if !Probe.on then
    Probe.emit (Probe.Sem_release { id = t.id; n; permits = t.permits });
  drain t

let try_acquire ?(n = 1) t =
  if Queue.is_empty t.queue && t.permits >= n then begin
    t.permits <- t.permits - n;
    if !Probe.on then
      Probe.emit (Probe.Sem_acquire { id = t.id; n; permits = t.permits });
    true
  end
  else false

let acquire ?(n = 1) t =
  if not (try_acquire ~n t) then
    Process.await (fun resume -> Queue.add { need = n; resume } t.queue)

let available t = t.permits
let waiters t = Queue.length t.queue
let id t = t.id
