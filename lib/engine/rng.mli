(** Deterministic splittable pseudo-random numbers (SplitMix64).

    Workload generators get independent streams by {!split}ting, so adding a
    generator never perturbs the draws of existing ones — runs stay
    reproducible as experiments grow. *)

type t

val create : seed:int -> t

val split : t -> t
(** A statistically independent child stream. *)

val bits64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean (> 0). *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto(Type I) distributed: values are [>= scale] with tail
    [P(X > x) = (scale / x) ^ shape].  The mean [shape * scale /
    (shape - 1)] exists only for [shape > 1]; callers that need a finite
    mean (open-loop arrival schedules) must validate that themselves.
    [shape] and [scale] must be positive. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)
