type priority = [ `High | `Low ]

type t = {
  sim : Sim.t;
  name : string;
  mutable busy : bool;
  high : (unit -> unit) Queue.t;
  low : (unit -> unit) Queue.t;
  mutable busy_time : Time.span;
  mutable grants : int;
}

let create sim ~name =
  {
    sim;
    name;
    busy = false;
    high = Queue.create ();
    low = Queue.create ();
    busy_time = 0;
    grants = 0;
  }

let name t = t.name
let is_busy t = t.busy
let queue_length t = Queue.length t.high + Queue.length t.low

let release t =
  match Queue.take_opt t.high with
  | Some next -> next ()
  | None -> (
      match Queue.take_opt t.low with
      | Some next -> next ()
      | None -> t.busy <- false)

let acquire ?(priority = `Low) t =
  if t.busy then
    Process.await (fun resume ->
        let q = match priority with `High -> t.high | `Low -> t.low in
        Queue.add resume q)
  else t.busy <- true

(* Positive-duration grants double as occupancy spans for the
   observability layer; zero-length grants (scheduling points) would only
   add noise. *)
let probe_span t started =
  let finish = Sim.now t.sim in
  if finish > started && !Probe.on then
    Probe.emit
      (Probe.Span
         { host = t.name; track = Probe.Busy; label = "busy"; start = started;
           finish })

let use_f ?priority t f =
  acquire ?priority t;
  let started = Sim.now t.sim in
  t.grants <- t.grants + 1;
  match f () with
  | v ->
      t.busy_time <- t.busy_time + Time.diff (Sim.now t.sim) started;
      probe_span t started;
      release t;
      v
  | exception exn ->
      t.busy_time <- t.busy_time + Time.diff (Sim.now t.sim) started;
      probe_span t started;
      release t;
      raise exn

let use ?priority t span =
  if span < 0 then invalid_arg "Resource.use: negative span";
  use_f ?priority t (fun () -> Process.delay span)

let busy_time t = t.busy_time
let grants t = t.grants

let reset_stats t =
  t.busy_time <- 0;
  t.grants <- 0

let utilization t ~since =
  let window = Time.diff (Sim.now t.sim) since in
  if window <= 0 then 0.
  else float_of_int t.busy_time /. float_of_int window
