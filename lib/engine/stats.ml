module Counter = struct
  type t = { name : string; mutable value : int }

  let create name = { name; value = 0 }
  let incr ?(by = 1) t = t.value <- t.value + by
  let value t = t.value
  let name t = t.name
  let reset t = t.value <- 0
end

module Summary = struct
  type t = {
    name : string;
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create name =
    { name; n = 0; mean = 0.; m2 = 0.; min_v = infinity; max_v = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mean

  let stddev t =
    if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))

  let min t = if t.n = 0 then 0. else t.min_v
  let max t = if t.n = 0 then 0. else t.max_v

  let reset t =
    t.n <- 0;
    t.mean <- 0.;
    t.m2 <- 0.;
    t.min_v <- infinity;
    t.max_v <- neg_infinity

  let pp fmt t =
    Format.fprintf fmt "%s: n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.name
      t.n (mean t) (stddev t) (min t) (max t)
end

module Histogram = struct
  (* Bucket [i] holds values v with 2^(i-1) < v <= 2^i; bucket 0 holds 0. *)
  type t = { name : string; buckets : int array; mutable count : int }

  let nbuckets = 63

  let create name = { name; buckets = Array.make nbuckets 0; count = 0 }

  (* Smallest i >= 1 with 2^i >= v. *)
  let bucket_of v =
    if v <= 0 then 0
    else
      let rec go i acc = if acc >= v then i else go (i + 1) (acc * 2) in
      go 1 2

  let add t v =
    let i = Stdlib.min (bucket_of v) (nbuckets - 1) in
    t.buckets.(i) <- t.buckets.(i) + 1;
    t.count <- t.count + 1

  let count t = t.count

  let upper_bound i = if i = 0 then 0 else 1 lsl i

  let percentile t p =
    if t.count = 0 then 0
    else begin
      let target = Float.ceil (p /. 100. *. float_of_int t.count) in
      let target = Stdlib.max 1 (int_of_float target) in
      let rec go i acc =
        if i >= nbuckets then upper_bound (nbuckets - 1)
        else
          let acc = acc + t.buckets.(i) in
          if acc >= target then upper_bound i else go (i + 1) acc
      in
      go 0 0
    end

  let buckets t =
    let out = ref [] in
    for i = nbuckets - 1 downto 0 do
      if t.buckets.(i) > 0 then out := (upper_bound i, t.buckets.(i)) :: !out
    done;
    !out
end

module Series = struct
  type t = { name : string; mutable rev_points : (float * float) list }

  let create ~name = { name; rev_points = [] }
  let name t = t.name
  let add t ~x ~y = t.rev_points <- (x, y) :: t.rev_points
  let points t = List.rev t.rev_points

  (* X coordinates often arrive through arithmetic (byte counts scaled to
     KB, sweep steps accumulated in floats), so exact float equality would
     miss points that printed identically; compare within a relative
     tolerance instead. *)
  let y_at t ~x =
    let tol = 1e-9 *. (1. +. Float.abs x) in
    List.find_map
      (fun (px, py) -> if Float.abs (px -. x) <= tol then Some py else None)
      (points t)

  let max_y t = List.fold_left (fun acc (_, y) -> Float.max acc y) 0. (points t)

  let interpolate t ~x =
    let pts = List.sort (fun (a, _) (b, _) -> compare a b) (points t) in
    let rec go = function
      | (x0, y0) :: _ when x0 = x -> Some y0
      | (x0, y0) :: (x1, y1) :: _ when x0 <= x && x <= x1 ->
          if x1 = x0 then Some y0
          else Some (y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0)))
      | _ :: rest -> go rest
      | [] -> None
    in
    go pts
end
