open Effect
open Effect.Deep

type _ Effect.t +=
  | Delay : Time.span -> unit Effect.t
  | Await : (('a -> unit) -> unit) -> 'a Effect.t
  | Fork : (unit -> unit) -> unit Effect.t

let delay d = perform (Delay d)
let await register = perform (Await register)
let fork f = perform (Fork f)
let yield () = delay 0

(* Each [spawn]ed process runs its whole body under a single deep handler,
   so effects performed after any number of suspensions are still handled.
   Continuations are one-shot: every resume path goes through a
   [once]-guarded closure. *)
let spawn sim ?(delay = 0) f =
  let rec exec : (unit -> unit) -> unit =
   fun body ->
    match_with body ()
      {
        retc = (fun () -> ());
        exnc = (fun exn -> raise exn);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Delay d ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    Sim.post sim ~after:d (fun () -> continue k ()))
            | Await register ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let fired = ref false in
                    let resume v =
                      if !fired then
                        invalid_arg "Process.await: resume called twice";
                      fired := true;
                      continue k v
                    in
                    register resume)
            | Fork g ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    Sim.post sim ~after:0 (fun () -> exec g);
                    continue k ())
            | _ -> None);
      }
  in
  Sim.post sim ~after:delay (fun () -> exec f)
