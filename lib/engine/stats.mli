(** Measurement accumulators: counters, running summaries, log-scale
    histograms and (x, y) series for figure regeneration. *)

module Counter : sig
  type t

  val create : string -> t
  val incr : ?by:int -> t -> unit
  val value : t -> int
  val name : t -> string
  val reset : t -> unit
end

module Summary : sig
  (** Streaming mean / variance / extrema (Welford's algorithm). *)

  type t

  val create : string -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val reset : t -> unit
  val pp : Format.formatter -> t -> unit
end

module Histogram : sig
  (** Power-of-two bucketed histogram for latency-style distributions. *)

  type t

  val create : string -> t
  val add : t -> int -> unit
  val count : t -> int

  val percentile : t -> float -> int
  (** Upper bound of the bucket containing the given percentile (0..100).
      Returns 0 for an empty histogram. *)

  val buckets : t -> (int * int) list
  (** [(upper_bound, count)] for each non-empty bucket, ascending. *)
end

module Series : sig
  (** Ordered (x, y) points — one per figure curve. *)

  type t

  val create : name:string -> t
  val name : t -> string
  val add : t -> x:float -> y:float -> unit
  val points : t -> (float * float) list

  val y_at : t -> x:float -> float option
  (** Point lookup at [x], matching within a small relative tolerance (so
      x-values reconstructed through float arithmetic still hit). *)

  val max_y : t -> float
  (** 0 for an empty series. *)

  val interpolate : t -> x:float -> float option
  (** Linear interpolation between surrounding points (log-x friendly data
      should be interpolated by the caller in log space if needed). *)
end
