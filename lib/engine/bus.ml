type t = {
  sim : Sim.t;
  res : Resource.t;
  name : string;
  effective_bps : float;
  setup : Time.span;
  mutable bytes : int;
}

let create sim ~name ~bytes_per_s ?(efficiency = 1.0) ?(setup = 0) () =
  if bytes_per_s <= 0. then invalid_arg "Bus.create: bandwidth <= 0";
  if efficiency <= 0. || efficiency > 1. then
    invalid_arg "Bus.create: efficiency outside (0,1]";
  if setup < 0 then invalid_arg "Bus.create: negative setup";
  {
    sim;
    res = Resource.create sim ~name;
    name;
    effective_bps = bytes_per_s *. efficiency;
    setup;
    bytes = 0;
  }

let name t = t.name
let sim t = t.sim

let transfer_time t n =
  if n < 0 then invalid_arg "Bus.transfer_time: negative size";
  t.setup + Time.of_bytes_at_rate ~bytes_per_s:t.effective_bps n

let transfer ?priority t n =
  let span = transfer_time t n in
  t.bytes <- t.bytes + n;
  Resource.use ?priority t.res span

let bytes_moved t = t.bytes
let busy_time t = Resource.busy_time t.res
let utilization t ~since = Resource.utilization t.res ~since

let reset_stats t =
  t.bytes <- 0;
  Resource.reset_stats t.res
