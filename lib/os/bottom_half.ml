open Engine

type t = {
  sim : Sim.t;
  cpu : Cpu.t;
  dispatch_latency : Time.span;
  queue : (unit -> unit) Queue.t;
  mutable running : bool;
  mutable executed : int;
}

let create sim ~cpu ?(dispatch_latency = Time.us 1.0) () =
  { sim; cpu; dispatch_latency; queue = Queue.create (); running = false;
    executed = 0 }

let[@clic.atomic] rec pump t () =
  match Queue.take_opt t.queue with
  | None -> t.running <- false
  | Some thunk ->
      thunk ();
      t.executed <- t.executed + 1;
      pump t ()

let schedule t thunk =
  Queue.add thunk t.queue;
  if not t.running then begin
    t.running <- true;
    Process.spawn t.sim ~delay:t.dispatch_latency (fun () ->
        (* A token acquisition marks the moment the kernel gets around to
           running bottom halves; the thunks then charge their own work. *)
        Cpu.work ~priority:`High t.cpu 0;
        pump t ())
  end

let executed t = t.executed
let pending t = Queue.length t.queue
