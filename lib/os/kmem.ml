open Engine

type level = [ `Normal | `Soft | `Hard ]

type t = {
  name : string;
  capacity : int;
  soft_mark : int;
  hard_mark : int;
  mutable used : int;
  mutable high_water : int;
  mutable failed : int;
}

let create ?(name = "kmem") ~capacity ?soft_mark ?hard_mark () =
  if capacity <= 0 then
    invalid_arg (Printf.sprintf "Kmem.create(%s): capacity <= 0" name);
  let soft = Option.value soft_mark ~default:capacity in
  let hard = Option.value hard_mark ~default:capacity in
  if soft <= 0 || soft > hard || hard > capacity then
    invalid_arg
      (Printf.sprintf
         "Kmem.create(%s): watermarks out of order (want 0 < soft %d <= \
          hard %d <= capacity %d)"
         name soft hard capacity);
  {
    name;
    capacity;
    soft_mark = soft;
    hard_mark = hard;
    used = 0;
    high_water = 0;
    failed = 0;
  }

let level t : level =
  if t.used >= t.hard_mark then `Hard
  else if t.used >= t.soft_mark then `Soft
  else `Normal

let level_int = function `Normal -> 0 | `Soft -> 1 | `Hard -> 2

let probe_pressure t before =
  if !Probe.on then begin
    let after = level t in
    if after <> before then
      Probe.emit
        (Probe.Pool_pressure { pool = t.name; level = level_int after })
  end

let try_alloc t n =
  if n <= 0 then
    invalid_arg
      (Printf.sprintf
         "Kmem.try_alloc(%s): non-positive size %dB (%dB outstanding of %dB)"
         t.name n t.used t.capacity);
  if t.used + n <= t.capacity then begin
    let before = level t in
    t.used <- t.used + n;
    if t.used > t.high_water then t.high_water <- t.used;
    if !Probe.on then
      Probe.emit
        (Probe.Pool_alloc
           { pool = t.name; bytes = n; used = t.used; capacity = t.capacity });
    probe_pressure t before;
    true
  end
  else begin
    t.failed <- t.failed + 1;
    false
  end

let free t n =
  if n <= 0 then
    invalid_arg
      (Printf.sprintf
         "Kmem.free(%s): non-positive size %dB (%dB outstanding of %dB)"
         t.name n t.used t.capacity);
  if n > t.used then
    invalid_arg
      (Printf.sprintf
         "Kmem.free(%s): freeing %dB but only %dB outstanding (capacity %dB)"
         t.name n t.used t.capacity);
  let before = level t in
  t.used <- t.used - n;
  if !Probe.on then
    Probe.emit (Probe.Pool_free { pool = t.name; bytes = n; used = t.used });
  probe_pressure t before

let name t = t.name
let in_use t = t.used
let capacity t = t.capacity
let soft_mark t = t.soft_mark
let hard_mark t = t.hard_mark
let high_water t = t.high_water
let failed_allocs t = t.failed
