open Engine

type t = {
  name : string;
  capacity : int;
  mutable used : int;
  mutable high_water : int;
  mutable failed : int;
}

let create ?(name = "kmem") ~capacity () =
  if capacity <= 0 then
    invalid_arg (Printf.sprintf "Kmem.create(%s): capacity <= 0" name);
  { name; capacity; used = 0; high_water = 0; failed = 0 }

let try_alloc t n =
  if n <= 0 then
    invalid_arg
      (Printf.sprintf
         "Kmem.try_alloc(%s): non-positive size %dB (%dB outstanding of %dB)"
         t.name n t.used t.capacity);
  if t.used + n <= t.capacity then begin
    t.used <- t.used + n;
    if t.used > t.high_water then t.high_water <- t.used;
    if Probe.enabled () then
      Probe.emit
        (Probe.Pool_alloc
           { pool = t.name; bytes = n; used = t.used; capacity = t.capacity });
    true
  end
  else begin
    t.failed <- t.failed + 1;
    false
  end

let free t n =
  if n <= 0 then
    invalid_arg
      (Printf.sprintf
         "Kmem.free(%s): non-positive size %dB (%dB outstanding of %dB)"
         t.name n t.used t.capacity);
  if n > t.used then
    invalid_arg
      (Printf.sprintf
         "Kmem.free(%s): freeing %dB but only %dB outstanding (capacity %dB)"
         t.name n t.used t.capacity);
  t.used <- t.used - n;
  if Probe.enabled () then
    Probe.emit (Probe.Pool_free { pool = t.name; bytes = n; used = t.used })

let name t = t.name
let in_use t = t.used
let capacity t = t.capacity
let high_water t = t.high_water
let failed_allocs t = t.failed
