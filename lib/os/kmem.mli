(** A bounded kernel buffer pool.

    Models the system memory CLIC stages data in when the NIC cannot accept
    it immediately, and the kernel-side receive buffers packets wait in
    until a process asks for them.  Exhaustion makes callers fall back
    (blocking, or dropping for unreliable stacks) rather than allocating
    unboundedly. *)

type t

val create : ?name:string -> capacity:int -> unit -> t
(** [capacity] in bytes; must be positive.  [name] labels the pool in
    error messages and {!Probe} pool events. *)

val try_alloc : t -> int -> bool
(** Takes [n] bytes if available.
    @raise Invalid_argument on a non-positive size. *)

val free : t -> int -> unit
(** @raise Invalid_argument on a non-positive size or when freeing more
    than is outstanding; the message names the pool and both byte
    counts. *)

val name : t -> string
val in_use : t -> int
val capacity : t -> int
val high_water : t -> int
val failed_allocs : t -> int
