(** A bounded kernel buffer pool.

    Models the system memory CLIC stages data in when the NIC cannot accept
    it immediately, and the kernel-side receive buffers packets wait in
    until a process asks for them.  Exhaustion makes callers fall back
    (blocking, or dropping for unreliable stacks) rather than allocating
    unboundedly.

    The pool carries two watermarks for overload signalling: above the
    {e soft} mark consumers should start shedding load (CLIC shrinks the
    windows it advertises and defers ack staging); at or above the {e hard}
    mark ingress paths stop admitting new buffers entirely (the NIC drops
    the frame with a counted reason instead of letting the allocation
    fail deeper in the stack).  Crossing a watermark in either direction
    emits a {!Probe.Pool_pressure} event. *)

type level = [ `Normal | `Soft | `Hard ]

type t

val create :
  ?name:string -> capacity:int -> ?soft_mark:int -> ?hard_mark:int -> unit -> t
(** [capacity] in bytes; must be positive.  [name] labels the pool in
    error messages and {!Probe} pool events.  Watermarks default to
    [capacity] (pressure only when completely full) and must satisfy
    [0 < soft_mark <= hard_mark <= capacity].
    @raise Invalid_argument otherwise. *)

val try_alloc : t -> int -> bool
(** Takes [n] bytes if available.  Watermarks do not gate the allocation
    itself — an alloc at or past the hard mark still succeeds while
    capacity remains; they only change {!level}.
    @raise Invalid_argument on a non-positive size. *)

val free : t -> int -> unit
(** @raise Invalid_argument on a non-positive size or when freeing more
    than is outstanding; the message names the pool and both byte
    counts. *)

val level : t -> level
(** [`Hard] when [in_use >= hard_mark], [`Soft] when
    [in_use >= soft_mark], [`Normal] otherwise. *)

val name : t -> string
val in_use : t -> int
val capacity : t -> int
val soft_mark : t -> int
val hard_mark : t -> int
val high_water : t -> int
val failed_allocs : t -> int
