open Engine
open Hw

type rx_mode = Via_bottom_half | Direct_from_isr

type params = {
  tx_routine : Time.span;
  isr_entry : Time.span;
  isr_per_packet : Time.span;
  bh_per_packet : Time.span;
  bh_bytes_per_s : float;
  rx_mode : rx_mode;
}

let default_params =
  {
    tx_routine = Time.us 4.0;
    isr_entry = Time.us 1.5;
    isr_per_packet = Time.us 2.5;
    bh_per_packet = Time.us 4.0;
    bh_bytes_per_s = 180e6;
    rx_mode = Via_bottom_half;
  }

(* The driver's receive routine touches every byte it hands upward (the
   SK_BUFF build-and-move the paper's Figure 8a describes): 1400 bytes at
   the default rate plus the per-packet cost reproduce the 15 us
   bottom-half stage of Figure 7a. *)
let rx_packet_cost params (desc : Hw.Nic.rx_desc) =
  params.bh_per_packet
  + Time.of_bytes_at_rate ~bytes_per_s:params.bh_bytes_per_s
      desc.Hw.Nic.host_bytes

type t = {
  sim : Sim.t;
  cpu : Cpu.t;
  bh : Bottom_half.t;
  nic : Nic.t;
  params : params;
  trace : Trace.t option;
  mutable rx_upcall : (Nic.rx_desc -> unit) option;
  mutable rx_upcalls : int;
}

(* Stage work is reported twice over: to the node's [Trace] (when
   attached) for the Figure 7 table, and to [Probe] as a timeline span for
   the observability layer. *)
let traced t ~track label f =
  let f =
    match t.trace with
    | Some tr -> fun () -> Trace.run tr label f
    | None -> f
  in
  if Probe.enabled () then begin
    let start = Sim.now t.sim in
    let v = f () in
    Probe.emit
      (Probe.Span
         { host = Cpu.name t.cpu; track; label; start;
           finish = Sim.now t.sim });
    v
  end
  else f ()

let deliver_one t desc =
  t.rx_upcalls <- t.rx_upcalls + 1;
  (match t.rx_upcall with Some f -> f desc | None -> ());
  (* The upcall has consumed the ring buffer's contents; its slot was
     already recycled by [Nic.take_rx], so the buffer's life ends here. *)
  if Probe.enabled () then
    Probe.emit
      (Probe.Obj_free
         { kind = Probe.Rx_buffer; id = desc.Nic.rx_id; where = "driver:rx-upcall" })

let transfer_rx desc owner ~where =
  if Probe.enabled () then
    Probe.emit
      (Probe.Obj_transfer
         { kind = Probe.Rx_buffer; id = desc.Nic.rx_id; owner; where })

(* The interrupt service routine: drain the ring, do the per-packet driver
   work, hand the batch to the protocol (via bottom half or directly), then
   re-enable the NIC interrupt. *)
let isr t () =
  traced t ~track:Probe.Isr "driver:isr" (fun () ->
      Cpu.work ~priority:`High t.cpu t.params.isr_entry;
      let descs = Nic.take_rx t.nic in
      List.iter
        (fun desc ->
          Cpu.work ~priority:`High t.cpu t.params.isr_per_packet;
          transfer_rx desc Probe.Driver ~where:"driver:isr")
        descs;
      (match t.params.rx_mode with
      | Direct_from_isr ->
          List.iter
            (fun desc ->
              Cpu.work ~priority:`High t.cpu (rx_packet_cost t.params desc);
              deliver_one t desc)
            descs
      | Via_bottom_half ->
          if descs <> [] then
            Bottom_half.schedule t.bh (fun () ->
                traced t ~track:Probe.Bh_track "driver:bottom-half" (fun () ->
                    List.iter
                      (fun desc ->
                        transfer_rx desc Probe.Bh ~where:"driver:bottom-half";
                        Cpu.work ~priority:`High t.cpu
                          (rx_packet_cost t.params desc);
                        deliver_one t desc)
                      descs)));
      Nic.unmask_irq t.nic)

let create sim ~cpu ~intr ~bh ~nic ?(params = default_params) ?trace () =
  let t =
    { sim; cpu; bh; nic; params; trace; rx_upcall = None; rx_upcalls = 0 }
  in
  Nic.set_interrupt nic (fun () -> Interrupt.raise_irq intr ~isr:(isr t));
  t

let set_rx_upcall t f =
  if t.rx_upcall <> None then invalid_arg "Driver.set_rx_upcall: already set";
  t.rx_upcall <- Some f

let transmit t ~skb ~dst ~src ~ethertype ~payload ?(internal_copy = true)
    ~on_complete () =
  Skbuff.transfer skb Probe.Driver ~where:"driver:tx-routine";
  traced t ~track:Probe.Process "driver:tx-routine" (fun () ->
      Cpu.work t.cpu t.params.tx_routine);
  let frame =
    Eth_frame.make ~src ~dst ~ethertype
      ~payload_bytes:(Skbuff.total_bytes skb)
      payload
  in
  Nic.try_post_tx t.nic { Nic.frame; needs_dma = true; internal_copy; on_complete }

let nic t = t.nic
let params t = t.params
let rx_upcalls t = t.rx_upcalls
