open Engine
open Hw

type rx_mode = Via_bottom_half | Direct_from_isr

type params = {
  tx_routine : Time.span;
  isr_entry : Time.span;
  isr_per_packet : Time.span;
  bh_per_packet : Time.span;
  bh_bytes_per_s : float;
  rx_mode : rx_mode;
  napi : bool;
  napi_enter_gap : Time.span;
  napi_enter_after : int;
  napi_budget : int;
  napi_interval : Time.span;
}

let default_params =
  {
    tx_routine = Time.us 4.0;
    isr_entry = Time.us 1.5;
    isr_per_packet = Time.us 2.5;
    bh_per_packet = Time.us 4.0;
    bh_bytes_per_s = 180e6;
    rx_mode = Via_bottom_half;
    napi = false;
    napi_enter_gap = Time.us 20.;
    napi_enter_after = 4;
    napi_budget = 16;
    napi_interval = Time.us 15.;
  }

(* The driver's receive routine touches every byte it hands upward (the
   SK_BUFF build-and-move the paper's Figure 8a describes): 1400 bytes at
   the default rate plus the per-packet cost reproduce the 15 us
   bottom-half stage of Figure 7a. *)
let rx_packet_cost params (desc : Hw.Nic.rx_desc) =
  params.bh_per_packet
  + Time.of_bytes_at_rate ~bytes_per_s:params.bh_bytes_per_s
      desc.Hw.Nic.host_bytes

type t = {
  sim : Sim.t;
  cpu : Cpu.t;
  bh : Bottom_half.t;
  nic : Nic.t;
  params : params;
  trace : Trace.t option;
  mutable rx_upcall : (Nic.rx_desc -> unit) option;
  mutable rx_upcalls : int;
  (* receiver-livelock mitigation (NAPI-style polling) *)
  mutable polling : bool;
  mutable hot_irqs : int;  (* consecutive interrupts closer than the gap *)
  mutable last_irq : Time.t option;
  mutable poll_mode_switches : int;
  mutable poll_passes : int;
  mutable polled_packets : int;
  (* node crash support *)
  mutable dead : bool;
  mutable dead_discards : int;
}

(* Stage work is reported twice over: to the node's [Trace] (when
   attached) for the Figure 7 table, and to [Probe] as a timeline span for
   the observability layer. *)
let traced t ~track label f =
  let f =
    match t.trace with
    | Some tr -> fun () -> Trace.run tr label f
    | None -> f
  in
  if !Probe.on then begin
    let start = Sim.now t.sim in
    let v = f () in
    Probe.emit
      (Probe.Span
         { host = Cpu.name t.cpu; track; label; start;
           finish = Sim.now t.sim });
    v
  end
  else f ()

let deliver_one t desc =
  t.rx_upcalls <- t.rx_upcalls + 1;
  (match t.rx_upcall with Some f -> f desc | None -> ());
  (* The upcall has consumed the ring buffer's contents; its slot was
     already recycled by [Nic.take_rx], so the buffer's life ends here. *)
  if !Probe.on then
    Probe.emit
      (Probe.Obj_free
         { kind = Probe.Rx_buffer; id = desc.Nic.rx_id; where = "driver:rx-upcall" })

(* A crashed driver owns buffers already pulled from the ring (queued for
   the bottom half): they are discarded, each with a visible release so the
   lifecycle sanitizer balances. *)
let discard_one t desc =
  t.dead_discards <- t.dead_discards + 1;
  if !Probe.on then
    Probe.emit
      (Probe.Obj_free
         {
           kind = Probe.Rx_buffer;
           id = desc.Nic.rx_id;
           where = "driver:dead-discard";
         })

let transfer_rx desc owner ~where =
  if !Probe.on then
    Probe.emit
      (Probe.Obj_transfer
         { kind = Probe.Rx_buffer; id = desc.Nic.rx_id; owner; where })

let probe_poll_mode t polling =
  if !Probe.on then
    Probe.emit (Probe.Rx_poll_mode { host = Nic.name t.nic; polling })

let exit_polling t =
  t.polling <- false;
  t.hot_irqs <- 0;
  t.last_irq <- None;
  t.poll_mode_switches <- t.poll_mode_switches + 1;
  probe_poll_mode t false;
  Nic.unmask_irq t.nic

(* One budgeted pass of the polling loop.  Each packet is charged the same
   work it would have cost on the interrupt path (ring walk + receive
   routine), but without the per-interrupt entry cost — that is the whole
   saving.  A pass that comes back under budget means the ring drained:
   interrupts are re-enabled (the hysteresis against bouncing straight
   back is the consecutive-hot-interrupt count required to re-enter). *)
let rec poll_loop t () =
  if t.dead then ()
  else begin
    let descs = Nic.take_rx_budget t.nic t.params.napi_budget in
    let n = List.length descs in
    t.poll_passes <- t.poll_passes + 1;
    t.polled_packets <- t.polled_packets + n;
    if n > 0 then
      traced t ~track:Probe.Bh_track "driver:poll" (fun () ->
          List.iter
            (fun desc ->
              transfer_rx desc Probe.Bh ~where:"driver:poll";
              Cpu.work ~priority:`High t.cpu
                (t.params.isr_per_packet + rx_packet_cost t.params desc);
              deliver_one t desc)
            descs);
    if !Probe.on then
      Probe.emit
        (Probe.Poll_pass
           { host = Nic.name t.nic; processed = n;
             budget = t.params.napi_budget });
    if t.dead then ()
    else if n < t.params.napi_budget then exit_polling t
    else begin
      Process.delay t.params.napi_interval;
      poll_loop t ()
    end
  end

let enter_polling t =
  t.polling <- true;
  t.hot_irqs <- 0;
  t.poll_mode_switches <- t.poll_mode_switches + 1;
  probe_poll_mode t true;
  (* The NIC interrupt stays masked (asserting it masked it); the loop
     runs as a kernel thread until the ring drains. *)
  Process.spawn t.sim (poll_loop t)

(* Track the interrupt arrival rate: interrupts closer together than
   [napi_enter_gap], [napi_enter_after] times in a row, is the livelock
   signature that flips the driver into polling. *)
let note_irq_rate t =
  let now = Sim.now t.sim in
  (match t.last_irq with
  | Some prev when Time.diff now prev <= t.params.napi_enter_gap ->
      t.hot_irqs <- t.hot_irqs + 1
  | _ -> t.hot_irqs <- 1);
  t.last_irq <- Some now;
  t.params.napi && t.hot_irqs >= t.params.napi_enter_after

(* The interrupt service routine: drain the ring, do the per-packet driver
   work, hand the batch to the protocol (via bottom half or directly), then
   re-enable the NIC interrupt. *)
let[@clic.atomic] isr t () =
  if t.dead then ()
  else if note_irq_rate t && not t.polling then
    traced t ~track:Probe.Isr "driver:isr" (fun () ->
        Cpu.work ~priority:`High t.cpu t.params.isr_entry;
        enter_polling t)
  else
  traced t ~track:Probe.Isr "driver:isr" (fun () ->
      Cpu.work ~priority:`High t.cpu t.params.isr_entry;
      let descs = Nic.take_rx t.nic in
      List.iter
        (fun desc ->
          Cpu.work ~priority:`High t.cpu t.params.isr_per_packet;
          transfer_rx desc Probe.Driver ~where:"driver:isr")
        descs;
      (match t.params.rx_mode with
      | Direct_from_isr ->
          List.iter
            (fun desc ->
              Cpu.work ~priority:`High t.cpu (rx_packet_cost t.params desc);
              deliver_one t desc)
            descs
      | Via_bottom_half ->
          if descs <> [] then
            Bottom_half.schedule t.bh (fun () ->
                if t.dead then List.iter (discard_one t) descs
                else
                  traced t ~track:Probe.Bh_track "driver:bottom-half"
                    (fun () ->
                    List.iter
                      (fun desc ->
                        transfer_rx desc Probe.Bh ~where:"driver:bottom-half";
                        Cpu.work ~priority:`High t.cpu
                          (rx_packet_cost t.params desc);
                        deliver_one t desc)
                      descs)));
      Nic.unmask_irq t.nic)

let create sim ~cpu ~intr ~bh ~nic ?(params = default_params) ?trace () =
  if params.napi then begin
    if params.napi_budget <= 0 then
      invalid_arg "Driver.create: napi_budget <= 0";
    if params.napi_enter_after <= 0 then
      invalid_arg "Driver.create: napi_enter_after <= 0"
  end;
  let t =
    {
      sim;
      cpu;
      bh;
      nic;
      params;
      trace;
      rx_upcall = None;
      rx_upcalls = 0;
      polling = false;
      hot_irqs = 0;
      last_irq = None;
      poll_mode_switches = 0;
      poll_passes = 0;
      polled_packets = 0;
      dead = false;
      dead_discards = 0;
    }
  in
  Nic.set_interrupt nic (fun () -> Interrupt.raise_irq intr ~isr:(isr t));
  t

let kill t =
  if not t.dead then begin
    t.dead <- true;
    if t.polling then begin
      t.polling <- false;
      probe_poll_mode t false
    end
  end

let set_rx_upcall t f =
  if t.rx_upcall <> None then invalid_arg "Driver.set_rx_upcall: already set";
  t.rx_upcall <- Some f

let transmit t ~skb ~dst ~src ~ethertype ~payload ?(internal_copy = true)
    ~on_complete () =
  Skbuff.transfer skb Probe.Driver ~where:"driver:tx-routine";
  traced t ~track:Probe.Process "driver:tx-routine" (fun () ->
      Cpu.work t.cpu t.params.tx_routine);
  let frame =
    Eth_frame.make ~src ~dst ~ethertype
      ~payload_bytes:(Skbuff.total_bytes skb)
      payload
  in
  Nic.try_post_tx t.nic { Nic.frame; needs_dma = true; internal_copy; on_complete }

let nic t = t.nic
let params t = t.params
let rx_upcalls t = t.rx_upcalls
let is_polling t = t.polling
let poll_mode_switches t = t.poll_mode_switches
let poll_passes t = t.poll_passes
let polled_packets t = t.polled_packets
let dead_discards t = t.dead_discards

(* ethtool-style flow-control statistics, read straight from the NIC *)
let tx_paused_ns t = Hw.Nic.tx_paused_ns t.nic
let pause_frames_rx t = Hw.Nic.pause_frames_rx t.nic
let pause_frames_tx t = Hw.Nic.pause_frames_tx t.nic
