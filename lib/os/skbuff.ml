open Engine

type region = User_memory | Kernel_memory
type fragment = { region : region; bytes : int }
type t = { sk_id : int; header_bytes : int; fragments : fragment list }

let next_id = ref 0

let create ~header_bytes fragments =
  if header_bytes < 0 then invalid_arg "Skbuff.create: negative header";
  List.iter
    (fun f -> if f.bytes < 0 then invalid_arg "Skbuff.create: negative frag")
    fragments;
  let sk_id = !next_id in
  incr next_id;
  let t = { sk_id; header_bytes; fragments } in
  if !Probe.on then begin
    let owner =
      if List.exists (fun f -> f.region = User_memory) fragments then
        Probe.App
      else Probe.Channel
    in
    let bytes = List.fold_left (fun acc f -> acc + f.bytes) 0 fragments in
    Probe.emit
      (Probe.Obj_alloc
         { kind = Probe.Skb; id = sk_id; bytes; owner; where = "skbuff:create" })
  end;
  t

let of_user ~header_bytes n =
  create ~header_bytes [ { region = User_memory; bytes = n } ]

let of_kernel ~header_bytes n =
  create ~header_bytes [ { region = Kernel_memory; bytes = n } ]

let id t = t.sk_id

(* Ownership transitions and the final release only feed the lifecycle
   sanitizer; they are free when no probe sink is installed. *)
let transfer t owner ~where =
  if !Probe.on then
    Probe.emit (Probe.Obj_transfer { kind = Probe.Skb; id = t.sk_id; owner; where })

let release t ~where =
  if !Probe.on then
    Probe.emit (Probe.Obj_free { kind = Probe.Skb; id = t.sk_id; where })

let data_bytes t = List.fold_left (fun acc f -> acc + f.bytes) 0 t.fragments
let total_bytes t = t.header_bytes + data_bytes t

let user_bytes t =
  List.fold_left
    (fun acc f -> match f.region with User_memory -> acc + f.bytes
                                    | Kernel_memory -> acc)
    0 t.fragments

let is_zero_copy t =
  List.for_all (fun f -> f.region = User_memory || f.bytes = 0) t.fragments
