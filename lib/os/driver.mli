(** A generic Ethernet NIC driver, deliberately {e unmodified} by CLIC.

    The paper's core design constraint is that CLIC must not touch the
    vendor driver: the protocol lives above this interface.  The driver

    - on transmit: builds the NIC descriptor from an {!Skbuff} (scatter-
      gather, so fragments in user memory ride the 0-copy path), charges
      the driver routine's CPU time, and posts to the NIC ring;
    - on receive: fields the NIC interrupt, drains the ring in the ISR
      (the routine that "remains active until all the data stored in the
      NIC buffers have been moved to system memory"), and hands packets to
      the protocol's upcall — normally via a bottom half (paper Figure 8a),
      or directly from the ISR when the Figure 8b improvement is enabled.

    Per-packet CPU costs are parameters, calibrated in [Clic.Params]. *)

open Engine
open Hw

type rx_mode =
  | Via_bottom_half  (** stock path: ISR → bottom halves → protocol *)
  | Direct_from_isr  (** the paper's proposed improvement (Figure 8b) *)

type params = {
  tx_routine : Time.span;  (** driver send routine, per packet *)
  isr_entry : Time.span;  (** fixed cost per interrupt taken *)
  isr_per_packet : Time.span;  (** ring walk + sk_buff handling, per packet *)
  bh_per_packet : Time.span;  (** receive-routine base cost, per packet *)
  bh_bytes_per_s : float;
      (** per-byte receive handling rate (the SK_BUFF build-and-move of
          Figure 8a); charged in the bottom half, or in the ISR when
          [Direct_from_isr] *)
  rx_mode : rx_mode;
  napi : bool;
      (** receiver-livelock mitigation: when the interrupt rate crosses
          the threshold below, switch from per-packet interrupts to a
          budgeted polling loop until the ring drains *)
  napi_enter_gap : Time.span;
      (** an interrupt closer than this to its predecessor counts as
          "hot" *)
  napi_enter_after : int;
      (** consecutive hot interrupts before polling engages — the
          hysteresis that keeps an isolated burst on the interrupt path *)
  napi_budget : int;  (** max packets serviced per polling pass *)
  napi_interval : Time.span;  (** delay between successive polling passes *)
}

val default_params : params
(** Calibrated against the paper's Figure 7: 4 us tx routine, 2 us ISR
    entry, 2.5 us ISR per packet, and a bottom half of 4 us + bytes at
    180 MB/s per packet (≈15 us for a 1400-byte packet, as in Figure 7a);
    [Via_bottom_half].  NAPI polling is off by default (the stock 2.4-era
    driver the paper works against); when enabled the defaults are a
    20 us gap, 4 hot interrupts, budget 16, 15 us between passes. *)

type t

val create :
  Sim.t ->
  cpu:Cpu.t ->
  intr:Interrupt.t ->
  bh:Bottom_half.t ->
  nic:Nic.t ->
  ?params:params ->
  ?trace:Trace.t ->
  unit ->
  t
(** Hooks the NIC's interrupt line; at most one driver per NIC.  When a
    trace is supplied, the ISR, bottom-half and transmit-routine stages are
    recorded (used to regenerate the paper's Figure 7). *)

val set_rx_upcall : t -> (Nic.rx_desc -> unit) -> unit
(** The protocol entry point (CLIC_MODULE, or netif_rx for TCP/IP).  Runs
    in interrupt context: it must charge CPU work at [`High] priority and
    must not block on task-level events. *)

val transmit :
  t ->
  skb:Skbuff.t ->
  dst:Mac.t ->
  src:Mac.t ->
  ethertype:int ->
  payload:Eth_frame.payload ->
  ?internal_copy:bool ->
  on_complete:(unit -> unit) ->
  unit ->
  bool
(** Charges the driver routine on the CPU, then posts the frame.  Returns
    [false] (after the CPU charge) when the transmit ring is full — the
    "data cannot be sent at the present moment" answer CLIC_MODULE acts on.
    Zero-copy is used when the skbuff's fragments allow it. *)

val kill : t -> unit
(** Node-crash support: the driver stops servicing interrupts and polling,
    and ring buffers already queued for a bottom half are discarded (each
    reported freed) instead of delivered.  There is no revival — a
    rebooted node creates a fresh driver. *)

val nic : t -> Nic.t
val params : t -> params
val rx_upcalls : t -> int

val is_polling : t -> bool
(** True while the NAPI-style polling loop owns rx servicing. *)

val poll_mode_switches : t -> int
(** Transitions between interrupt and polling mode (both directions). *)

val poll_passes : t -> int
val polled_packets : t -> int

val dead_discards : t -> int

(** {1 Flow-control statistics} — ethtool-style pass-throughs to the NIC *)

val tx_paused_ns : t -> int
val pause_frames_rx : t -> int
val pause_frames_tx : t -> int
(** Ring buffers discarded because the driver was killed with work still
    queued. *)
