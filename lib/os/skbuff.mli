(** The kernel socket-buffer structure ([SK_BUFF]).

    CLIC's 0-copy send hinges on the sk_buff fragment list: the driver can
    hand the NIC a scatter-gather descriptor whose fragments point straight
    into user memory, so the NIC bus-masters the data out without the CPU
    ever copying it.  We model the structure's shape (header area plus a
    fragment list tagged with the memory region each piece lives in) and
    its accounting; the actual data movement costs live in the CPU, bus and
    NIC models. *)

type region = User_memory | Kernel_memory

type fragment = { region : region; bytes : int }

type t = {
  sk_id : int;  (** process-unique identity, for the lifecycle sanitizer *)
  header_bytes : int;  (** protocol headers prepended by the stack *)
  fragments : fragment list;  (** data fragments, in order *)
}

val create : header_bytes:int -> fragment list -> t
(** Allocates a fresh identity and reports it to {!Engine.Probe} (owner
    [App] when any fragment lives in user memory, [Channel] otherwise).
    @raise Invalid_argument on negative sizes. *)

val id : t -> int

val transfer : t -> Engine.Probe.owner -> where:string -> unit
(** Reports an ownership handoff to the lifecycle sanitizer.  [where] names
    the code point (e.g. ["driver:tx-routine"]).  A no-op without an
    installed probe sink. *)

val release : t -> where:string -> unit
(** Reports the end of the buffer's life (transmit completion, or an
    abandoned post).  Releasing twice is exactly the double-free the
    sanitizer exists to catch. *)

val of_user : header_bytes:int -> int -> t
(** One fragment living in user memory (the 0-copy send shape). *)

val of_kernel : header_bytes:int -> int -> t
(** One fragment staged in kernel memory (the 1-copy send shape). *)

val data_bytes : t -> int
val total_bytes : t -> int
(** Headers plus data: what the NIC must fetch. *)

val user_bytes : t -> int
(** Bytes that still live in user memory (pinned during DMA). *)

val is_zero_copy : t -> bool
(** True when no fragment was staged into kernel memory. *)
