open Engine

type t = { sim : Sim.t; cpu : Cpu.t; cost : Time.span; mutable switches : int }

type state = Fresh | Waiting of (unit -> unit) | Woken | Done
type slot = { sched : t; mutable state : state }

let create sim ~cpu ?(switch_cost = Time.us 1.) () =
  { sim; cpu; cost = switch_cost; switches = 0 }

let slot sched = { sched; state = Fresh }

let probe_sched sched mk =
  if !Probe.on then mk (Cpu.name sched.cpu) |> Probe.emit

let wait s =
  match s.state with
  | Fresh ->
      probe_sched s.sched (fun host -> Probe.Sched_block { host });
      Process.await (fun resume ->
          match s.state with
          | Fresh -> s.state <- Waiting resume
          | Woken ->
              s.state <- Done;
              resume ()
          | Waiting _ | Done -> invalid_arg "Sched.wait: slot reused")
  | Woken -> s.state <- Done
  | Waiting _ | Done -> invalid_arg "Sched.wait: slot reused"

let wake s =
  match s.state with
  | Woken | Done -> ()
  | Fresh ->
      s.sched.switches <- s.sched.switches + 1;
      probe_sched s.sched (fun host -> Probe.Sched_run { host });
      Cpu.work ~priority:`High s.sched.cpu s.sched.cost;
      (* The waiter may have arrived while the wakeup cost was paid. *)
      (match s.state with
      | Fresh -> s.state <- Woken
      | Waiting resume ->
          s.state <- Done;
          resume ()
      | Woken | Done -> ())
  | Waiting resume ->
      s.sched.switches <- s.sched.switches + 1;
      s.state <- Done;
      probe_sched s.sched (fun host -> Probe.Sched_run { host });
      Cpu.work ~priority:`High s.sched.cpu s.sched.cost;
      resume ()

let switches t = t.switches
let switch_cost t = t.cost
