open Engine

type kind =
  | None_
  | Drop of { rng : Rng.t; prob : float }
  | Drop_nth of { every : int; mutable seen : int }
  | Gilbert of {
      rng : Rng.t;
      p_good_to_bad : float;
      p_bad_to_good : float;
      loss_good : float;
      loss_bad : float;
      mutable bad : bool;
    }
  | Duplicate of { rng : Rng.t; prob : float }
  | Jitter of { rng : Rng.t; max_delay : Time.span }
  | Flap of { up : Time.span; down : Time.span; phase : Time.span }
  | Corrupt of { rng : Rng.t; prob : float }
  | Brownout of {
      fraction : float;
      from_ : Time.t;
      until_ : Time.t;
      label : string;
      mutable busy_until : Time.t;
      mutable was_active : bool;
    }
  | Compose of t list

and t = {
  kind : kind;
  mutable drops : int;
  mutable duplicates : int;
  mutable corruptions : int;
  mutable slowed : int;
  mutable slow_ns : int;
}

type copy = { delay : Time.span; corrupt : bool }

let make kind =
  { kind; drops = 0; duplicates = 0; corruptions = 0; slowed = 0; slow_ns = 0 }
let none = make None_

let check_prob name prob =
  if prob < 0. || prob > 1. then
    invalid_arg (Printf.sprintf "Fault.%s: prob outside [0,1]" name)

let drop ~rng ~prob =
  check_prob "drop" prob;
  make (Drop { rng; prob })

let drop_nth ~every =
  if every <= 0 then invalid_arg "Fault.drop_nth: every <= 0";
  make (Drop_nth { every; seen = 0 })

let gilbert_elliott ~rng ~p_good_to_bad ~p_bad_to_good ?(loss_good = 0.)
    ~loss_bad () =
  check_prob "gilbert_elliott" p_good_to_bad;
  check_prob "gilbert_elliott" p_bad_to_good;
  check_prob "gilbert_elliott" loss_good;
  check_prob "gilbert_elliott" loss_bad;
  make
    (Gilbert { rng; p_good_to_bad; p_bad_to_good; loss_good; loss_bad;
               bad = false })

let duplicate ~rng ~prob =
  check_prob "duplicate" prob;
  make (Duplicate { rng; prob })

let jitter ~rng ~max_delay =
  if max_delay <= 0 then invalid_arg "Fault.jitter: max_delay <= 0";
  make (Jitter { rng; max_delay })

let flap ~up ~down ?(phase = 0) () =
  if up <= 0 || down <= 0 then invalid_arg "Fault.flap: period <= 0";
  make (Flap { up; down; phase })

let corrupt ~rng ~prob =
  check_prob "corrupt" prob;
  make (Corrupt { rng; prob })

let brownout ~fraction ~from_ ~until_ ?(label = "link") () =
  if fraction <= 0. || fraction > 1. then
    invalid_arg "Fault.brownout: fraction outside (0,1]";
  if from_ < 0 || until_ <= from_ then
    invalid_arg "Fault.brownout: empty or negative window";
  make
    (Brownout
       { fraction; from_; until_; label; busy_until = 0; was_active = false })

let compose stages = make (Compose stages)

let clean = { delay = 0; corrupt = false }

(* One copy of a frame passing one stage: the fates (relative to an
   undisturbed delivery) of the copies that survive; [] means dropped. *)
let rec stage_copy t ~now ~ser =
  let dropped () =
    t.drops <- t.drops + 1;
    []
  in
  match t.kind with
  | None_ -> [ clean ]
  | Drop { rng; prob } ->
      if Rng.float rng 1.0 < prob then dropped () else [ clean ]
  | Drop_nth d ->
      d.seen <- d.seen + 1;
      if d.seen mod d.every = 0 then dropped () else [ clean ]
  | Gilbert g ->
      (* Two-state Markov channel: advance the state once per frame, then
         lose with the state's loss rate (loss_bad ~ 1 gives solid bursts). *)
      let flip =
        Rng.float g.rng 1.0
        < if g.bad then g.p_bad_to_good else g.p_good_to_bad
      in
      if flip then g.bad <- not g.bad;
      let loss = if g.bad then g.loss_bad else g.loss_good in
      if Rng.float g.rng 1.0 < loss then dropped () else [ clean ]
  | Duplicate { rng; prob } ->
      if Rng.float rng 1.0 < prob then begin
        t.duplicates <- t.duplicates + 1;
        [ clean; clean ]
      end
      else [ clean ]
  | Jitter { rng; max_delay } -> [ { clean with delay = Rng.int rng max_delay } ]
  | Flap f ->
      let pos = (now + f.phase) mod (f.up + f.down) in
      if pos < f.up then [ clean ] else dropped ()
  | Corrupt { rng; prob } ->
      if Rng.float rng 1.0 < prob then begin
        t.corruptions <- t.corruptions + 1;
        [ { clean with corrupt = true } ]
      end
      else [ clean ]
  | Brownout b ->
      let active = now >= b.from_ && now < b.until_ in
      if active <> b.was_active then begin
        b.was_active <- active;
        if !Probe.on then
          Probe.emit (Probe.Gray_fault
                        { host = b.label; mode = "link-brownout"; active })
      end;
      if not active then [ clean ]
      else begin
        (* The sagging link serves frames at [fraction] of its rate: each
           frame owes (1/fraction - 1) extra wire time, and frames queue
           behind one another in a virtual slow queue ([busy_until]) so
           FIFO order — and therefore the channel's sequencing — is
           preserved while the backlog compounds, exactly like a slower
           transmitter. *)
        let extra =
          int_of_float (float_of_int ser *. (1. /. b.fraction -. 1.))
        in
        let start = if b.busy_until > now then b.busy_until else now in
        let free = start + extra in
        b.busy_until <- free;
        let delay = free - now in
        if delay > 0 then begin
          t.slowed <- t.slowed + 1;
          t.slow_ns <- t.slow_ns + delay
        end;
        [ { clean with delay } ]
      end
  | Compose stages ->
      List.fold_left
        (fun copies stage ->
          List.concat_map
            (fun copy ->
              List.map
                (fun c ->
                  {
                    delay = copy.delay + c.delay;
                    corrupt = copy.corrupt || c.corrupt;
                  })
                (stage_copy stage ~now ~ser))
            copies)
        [ clean ] stages

let frame t ~now ?(ser = 0) () = stage_copy t ~now ~ser

let rec drops t =
  match t.kind with
  | Compose stages -> List.fold_left (fun acc s -> acc + drops s) 0 stages
  | _ -> t.drops

let rec duplicates t =
  match t.kind with
  | Compose stages -> List.fold_left (fun acc s -> acc + duplicates s) 0 stages
  | _ -> t.duplicates

let rec corruptions t =
  match t.kind with
  | Compose stages -> List.fold_left (fun acc s -> acc + corruptions s) 0 stages
  | _ -> t.corruptions

let rec slowed t =
  match t.kind with
  | Compose stages -> List.fold_left (fun acc s -> acc + slowed s) 0 stages
  | _ -> t.slowed

let rec slow_ns t =
  match t.kind with
  | Compose stages -> List.fold_left (fun acc s -> acc + slow_ns s) 0 stages
  | _ -> t.slow_ns
