(** A shared-buffer store-and-forward Ethernet switch with 802.3x PAUSE.

    Each port is a full-duplex pair of {!Link}s (node→switch, switch→node).
    Unicast frames are forwarded to the port owning the destination MAC
    (static table: one node per port, as in a dedicated cluster); broadcast
    and multicast frames are flooded to every port except the ingress one —
    the data-link multicast capability CLIC's broadcast primitives exploit.
    Forwarding adds a fixed per-frame latency modelling lookup plus internal
    transfer; output contention arises from the egress queues draining at
    the line rate.

    Buffering: each egress port owns a FIFO drawing on a shared byte pool
    ({!buffer}) — a per-port reserve is always available, the remainder is
    shared, and frames that fit neither are tail-dropped against the egress
    port.  Every buffered frame is also charged to its {e ingress} port;
    when that occupancy crosses the high watermark the switch XOFFs the
    offending station with a real PAUSE frame ({!Mac_control}), and XONs it
    at the low watermark.  Stations can likewise PAUSE the switch: MAC
    control frames arriving on an uplink gate that port's egress pump.

    Uplinks may be bounded ([ingress_frames]): a station blind-dumping into
    a full uplink FIFO loses frames to {!ingress_drops}, the failure mode
    PAUSE-honouring NICs avoid by blocking on {!Link.wait_room}. *)

type buffer = {
  total_bytes : int;  (** whole shared packet buffer *)
  port_reserve_bytes : int;  (** per-egress-port guaranteed slice *)
  ingress_high_bytes : int;  (** per-ingress-port XOFF watermark *)
  ingress_low_bytes : int;  (** per-ingress-port XON watermark *)
  pause : bool;  (** generate 802.3x PAUSE; [false] = tail-drop only *)
  pause_quanta : int;  (** quanta per XOFF, 1..0xffff *)
  max_frame_bytes : int;  (** provisioning unit for {!protected_provisioning} *)
}

val default_buffer : buffer
(** 256 KiB total, 8 KiB reserve, 16/8 KiB watermarks, PAUSE on with
    maximum quanta, 1518-byte frames. *)

type t

val create :
  Engine.Sim.t ->
  name:string ->
  bits_per_s:float ->
  ?forward_latency:Engine.Time.span ->
  ?propagation:Engine.Time.span ->
  ?fault:(unit -> Fault.t) ->
  ?egress_frames:int ->
  ?ingress_frames:int ->
  ?buffer:buffer ->
  unit ->
  t
(** [fault] is called once per created link to give each direction its own
    fault process.  [egress_frames] caps each output FIFO in frames:
    excess frames are tail-dropped into {!egress_drops}.  [ingress_frames]
    bounds each uplink's transmit queue, making blind-dumping stations
    lose frames to {!ingress_drops}.  [buffer] enables the shared-buffer
    ledger and PAUSE generation.
    @raise Invalid_argument on nonsensical buffer parameters. *)

val add_port : t -> node:int -> unit
(** Declares a port for [node].
    @raise Invalid_argument on duplicates, or when the per-port reserves
    of the new port count would exhaust the shared buffer. *)

val uplink : t -> node:int -> Link.t
(** The node→switch link: the node's NIC transmits into this. *)

val connect_node : t -> node:int -> (Eth_frame.t -> unit) -> unit
(** Installs the node's NIC receive function on the switch→node link. *)

val rewire_node : t -> node:int -> (Eth_frame.t -> unit) -> unit
(** Replaces the receive function on an existing port: a rebooted node
    reattaching its freshly created NIC. *)

val ports : t -> int list
val frames_forwarded : t -> int

val frames_flooded : t -> int
(** Copies emitted for group-addressed frames. *)

val frames_unroutable : t -> int

val egress_drops : t -> int
(** Frames tail-dropped at full egress FIFOs or an exhausted shared
    buffer. *)

val ingress_drops : t -> int
(** Frames lost at full bounded uplink FIFOs (stations transmitting
    without backpressure). *)

val pause_frames_tx : t -> int
(** PAUSE frames the switch generated (XOFF and XON). *)

val pause_frames_rx : t -> int
(** PAUSE frames received from stations. *)

val buffer_occupied : t -> int
(** Bytes currently held in the shared buffer (0 when unbuffered). *)

val peak_buffer_occupied : t -> int

val egress_paused_ns : t -> int
(** Total time egress ports spent gated by station-originated PAUSE. *)

val protected_provisioning : t -> bool
(** Whether the configuration guarantees zero switch loss for
    PAUSE-honouring stations: PAUSE on, bounded uplinks, and a shared
    buffer large enough for every port's high watermark plus its
    worst-case in-flight spill. *)
