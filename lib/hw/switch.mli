(** A shared-buffer store-and-forward Ethernet switch with 802.3x PAUSE
    and multi-hop fabric support.

    Each port is a full-duplex pair of {!Link}s.  Station ports
    (node→switch, switch→node) attach NICs; trunk ports ({!add_trunk})
    attach peer switches, so fabrics — linear chains, leaf/spine, fat
    trees — compose from the same switch.  Unicast frames are forwarded to
    the local port owning the destination MAC, else along a static ECMP
    route set ({!set_route}, hashed per flow), else to a learned FDB entry
    (when [learning] is on), else flooded (learning) or counted
    unroutable.  Broadcast and multicast frames are flooded to every port
    except the ingress one — the data-link multicast capability CLIC's
    broadcast primitives exploit.  Every switch traversal increments the
    frame's hop count; frames at the [ttl] bound are dropped, the backstop
    against forwarding loops.  Forwarding adds a fixed per-frame latency
    modelling lookup plus internal transfer; output contention arises from
    the egress queues draining at the line rate.

    Buffering: each egress port owns a FIFO drawing on a shared byte pool
    ({!buffer}) — a per-port reserve is always available, the remainder is
    shared, and frames that fit neither are tail-dropped against the egress
    port.  Every buffered frame is also charged to its {e ingress} port;
    when that occupancy crosses the high watermark the switch XOFFs the
    offending peer with a real PAUSE frame ({!Mac_control}), and XONs it
    at the low watermark.  Peers can likewise PAUSE the switch: MAC
    control frames arriving on an uplink gate that port's egress pump.
    Trunk ports participate fully, so an XOFF on a congested downstream
    switch gates the upstream pump and congestion trees form hop by hop
    across the fabric.

    Uplinks may be bounded ([ingress_frames]): a station blind-dumping into
    a full uplink FIFO loses frames to {!ingress_drops}, the failure mode
    PAUSE-honouring NICs avoid by blocking on {!Link.wait_room}. *)

type buffer = {
  total_bytes : int;  (** whole shared packet buffer *)
  port_reserve_bytes : int;  (** per-egress-port guaranteed slice *)
  ingress_high_bytes : int;  (** per-ingress-port XOFF watermark *)
  ingress_low_bytes : int;  (** per-ingress-port XON watermark *)
  pause : bool;  (** generate 802.3x PAUSE; [false] = tail-drop only *)
  pause_quanta : int;  (** quanta per XOFF, 1..0xffff *)
  max_frame_bytes : int;  (** provisioning unit for {!protected_provisioning} *)
  ecn_threshold : int;
      (** per-egress-port marking watermark, bytes; frames enqueued while
          the egress backlog (including themselves) is at or above it get
          their CE bit set.  [0] disables marking. *)
}

val default_buffer : buffer
(** 256 KiB total, 8 KiB reserve, 16/8 KiB watermarks, PAUSE on with
    maximum quanta, 1518-byte frames, ECN marking off. *)

type t

val create :
  Engine.Sim.t ->
  name:string ->
  bits_per_s:float ->
  ?forward_latency:Engine.Time.span ->
  ?propagation:Engine.Time.span ->
  ?fault:(unit -> Fault.t) ->
  ?egress_frames:int ->
  ?ingress_frames:int ->
  ?buffer:buffer ->
  ?learning:bool ->
  ?ttl:int ->
  unit ->
  t
(** [fault] is called once per created link to give each direction its own
    fault process.  [egress_frames] caps each output FIFO in frames:
    excess frames are tail-dropped into {!egress_drops}.  [ingress_frames]
    bounds each uplink's transmit queue, making blind-dumping stations
    lose frames to {!ingress_drops}.  [buffer] enables the shared-buffer
    ledger and PAUSE generation.  [learning] (default [false]) enables the
    MAC-learning FDB and unknown-unicast flooding; [ttl] (default 16)
    bounds switch traversals per frame.
    @raise Invalid_argument on nonsensical buffer parameters or [ttl < 1]. *)

val name : t -> string

val add_port : t -> node:int -> unit
(** Declares a station port for [node].
    @raise Invalid_argument on duplicates, a negative node, or when the
    per-port reserves of the new port count would exhaust the shared
    buffer. *)

val add_trunk : ?bits_per_s:float -> t -> t -> unit
(** [add_trunk a b] joins two switches with a full-duplex trunk (one
    {!Link} per direction, at [bits_per_s], defaulting to [a]'s port
    rate).  Each side gets a trunk port carrying data, PAUSE and the
    buffer ledger exactly like a station port.
    @raise Invalid_argument on a self-trunk, switches from different
    simulations, an existing trunk between the pair, or exhausted port
    reserves. *)

val set_route : t -> dst:int -> via:string list -> unit
(** Installs a static route: unicast frames for node [dst] (when [dst] is
    not a local station) leave via one of the named peer trunks, chosen by
    a deterministic per-flow hash — equal-cost multipath when several
    peers are given.  An empty [via] removes the route.
    @raise Invalid_argument when a named peer has no trunk here. *)

val clear_routes : t -> unit

val flush_fdb : t -> unit
(** Forgets every learned MAC (an operator clearing the FDB); subsequent
    unknown destinations flood and relearn. *)

val fdb_lookup : t -> node:int -> string option
(** The port label ("n<id>" or a peer switch name) the FDB currently maps
    [node] to, if learned. *)

val set_down : t -> bool -> unit
(** Powers the switch down ([true]) or back up ([false]).  Down: ingress
    frames are refused into {!down_drops}, buffered frames drain with
    their ledger charges released, and PAUSE state clears — upstream
    gates expire on their own quanta timers, since a dead switch sends no
    XON.  Frames already mid-serialization finish.  Idempotent. *)

val is_down : t -> bool

val uplink : t -> node:int -> Link.t
(** The node→switch link: the node's NIC transmits into this. *)

val connect_node : t -> node:int -> (Eth_frame.t -> unit) -> unit
(** Installs the node's NIC receive function on the switch→node link. *)

val rewire_node : t -> node:int -> (Eth_frame.t -> unit) -> unit
(** Replaces the receive function on an existing port: a rebooted node
    reattaching its freshly created NIC.  Also withdraws the node's own
    FDB entry (its old NIC is gone); remote switches keep theirs until
    traffic relearns them. *)

val ports : t -> int list
(** Station node ids, in port order (trunks excluded). *)

val trunks : t -> string list
(** Peer switch names reachable over local trunks, in port order. *)

val trunk_tx_frames : t -> peer:string -> int
(** Data frames transmitted on the trunk toward [peer] — the per-uplink
    load counter ECMP-spread tests read.
    @raise Invalid_argument when no such trunk exists. *)

val frames_forwarded : t -> int

val frames_flooded : t -> int
(** Copies emitted for group-addressed or unknown-unicast frames. *)

val frames_unroutable : t -> int

val frames_ttl_dropped : t -> int
(** Frames dropped at the hop-count bound — nonzero means a forwarding
    loop (or a fabric deeper than [ttl]). *)

val unknown_floods : t -> int
(** Unicast frames flooded because the FDB had no entry (learning mode). *)

val down_drops : t -> int
(** Frames refused while the switch was powered down. *)

val egress_drops : t -> int
(** Frames tail-dropped at full egress FIFOs or an exhausted shared
    buffer. *)

val ingress_drops : t -> int
(** Frames lost at full bounded uplink FIFOs (stations transmitting
    without backpressure). *)

val pause_frames_tx : t -> int
(** PAUSE frames the switch generated (XOFF and XON). *)

val pause_frames_rx : t -> int
(** PAUSE frames received from stations or peer switches. *)

val ecn_marked : t -> int
(** Frames whose CE bit this switch set (0 unless the buffer config has a
    positive [ecn_threshold]). *)

val buffer_occupied : t -> int
(** Bytes currently held in the shared buffer (0 when unbuffered). *)

val peak_buffer_occupied : t -> int

val egress_paused_ns : t -> int
(** Total time egress ports spent gated by peer-originated PAUSE. *)

val protected_provisioning : t -> bool
(** Whether the configuration guarantees zero switch loss for
    PAUSE-honouring stations: PAUSE on, bounded uplinks, no trunks (the
    per-switch proof does not compose across hops), and a shared buffer
    large enough for every port's high watermark plus its worst-case
    in-flight spill. *)

(** {1 Gray failure: intermittent egress stall} *)

val inject_stall : t -> node:int -> span:Engine.Time.span -> unit
(** Freezes the egress pump of the port facing [node] for [span] from now:
    the port stops serving its FIFO (frames already handed to the wire
    finish), with no MAC-control announcement to the peer — a gray stall,
    not a PAUSE.  Overlapping injections extend the stall.  Engagement and
    clearing are emitted as [Probe.Gray_fault { mode = "switch-stall" }]
    edges.
    @raise Invalid_argument if [span <= 0] or no port faces [node]. *)

val egress_stalls : t -> int
(** Stall injections accepted so far. *)

val egress_stall_ns : t -> int
(** Total egress time frozen by injected stalls. *)

val has_node : t -> int -> bool
(** Whether a station port for [node] exists on this switch. *)
