(** A store-and-forward Ethernet switch.

    Each port is a full-duplex pair of {!Link}s (node→switch, switch→node).
    Unicast frames are forwarded to the port owning the destination MAC
    (static table: one node per port, as in a dedicated cluster); broadcast
    and multicast frames are flooded to every port except the ingress one —
    the data-link multicast capability CLIC's broadcast primitives exploit.

    Forwarding adds a fixed per-frame latency modelling lookup plus
    store-and-forward buffering; output contention arises naturally from the
    egress links' serialization. *)

type t

val create :
  Engine.Sim.t ->
  name:string ->
  bits_per_s:float ->
  ?forward_latency:Engine.Time.span ->
  ?propagation:Engine.Time.span ->
  ?fault:(unit -> Fault.t) ->
  ?egress_frames:int ->
  unit ->
  t
(** [fault] is called once per created link to give each direction its own
    fault process.  [egress_frames] bounds each output port's buffer:
    frames past it are tail-dropped (counted in {!egress_drops}), the real
    congestion behaviour incast traffic triggers. *)

val add_port : t -> node:int -> unit
(** Declares a port for [node].  @raise Invalid_argument on duplicates. *)

val uplink : t -> node:int -> Link.t
(** The node→switch link: the node's NIC transmits into this. *)

val connect_node : t -> node:int -> (Eth_frame.t -> unit) -> unit
(** Installs the node's NIC receive function on the switch→node link. *)

val rewire_node : t -> node:int -> (Eth_frame.t -> unit) -> unit
(** Replaces the receive function on an existing port: a rebooted node
    reattaching its freshly created NIC. *)

val ports : t -> int list
val frames_forwarded : t -> int
val frames_flooded : t -> int
(** Copies emitted for group-addressed frames. *)

val frames_unroutable : t -> int

val egress_drops : t -> int
(** Frames tail-dropped at full output buffers. *)
