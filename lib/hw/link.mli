(** A unidirectional Ethernet link.

    Frames handed to {!send} are serialized one at a time at the link rate
    (counting preamble, padding, CRC and inter-frame gap), travel for the
    propagation delay, and are delivered to the receiver callback installed
    with {!connect}.  Frames queue FIFO while the transmitter is busy, like
    a NIC transmit FIFO feeding the PHY.

    Full-duplex operation is modelled with two independent links. *)

type t

val create :
  Engine.Sim.t ->
  name:string ->
  bits_per_s:float ->
  ?propagation:Engine.Time.span ->
  ?fault:Fault.t ->
  ?queue_limit:int ->
  unit ->
  t
(** [queue_limit] bounds the transmit queue in frames (a switch's finite
    egress buffer): frames arriving at a full queue are dropped and
    counted.  Unbounded by default.  [fault] disturbs frames after the
    propagation delay: drops, bursty loss, duplication, delay jitter and
    link flaps per {!Fault}. *)

val connect : t -> (Eth_frame.t -> unit) -> unit
(** Installs the receiver.  Frames delivered before a receiver is connected
    are counted as drops.
    @raise Invalid_argument when a receiver is already installed. *)

val reconnect : t -> (Eth_frame.t -> unit) -> unit
(** Replaces the receiver: a rebooted node reattaching its new NIC to the
    existing switch port.  Frames already in flight are delivered to the
    new receiver. *)

val set_tx_complete : t -> (Eth_frame.t -> unit) -> unit
(** Installs a callback fired when a frame finishes serializing onto the
    wire (before the next queued frame starts).  A shared-buffer switch
    releases the frame's buffer bytes here. *)

val set_on_drop : t -> (Eth_frame.t -> unit) -> unit
(** Installs a callback fired for each frame dropped at a full transmit
    queue, letting the owner attribute the loss (e.g. a switch counting
    ingress drops per port). *)

val send : t -> Eth_frame.t -> unit
(** Non-blocking enqueue for transmission. *)

val has_room : t -> bool
(** Whether {!send} would enqueue rather than drop right now. *)

val wait_room : t -> unit
(** Blocks the calling process until the transmit queue has room (a NIC
    respecting backpressure instead of blind-dumping into a full uplink).
    Returns immediately when the queue is unbounded or has space.  Must be
    called from process context. *)

val serialization_time : t -> Eth_frame.t -> Engine.Time.span
(** Uncontended wire occupancy of one frame. *)

val name : t -> string
val bits_per_s : t -> float
val frames_sent : t -> int
val frames_dropped : t -> int
val bytes_sent : t -> int
(** Wire bytes, including framing overhead. *)

val queue_depth : t -> int
(** Frames waiting behind the one being serialized. *)
