open Engine

type t = {
  sim : Sim.t;
  name : string;
  bits_per_s : float;
  propagation : Time.span;
  fault : Fault.t;
  queue_limit : int option;
  queue : Eth_frame.t Queue.t;
  mutable transmitting : bool;
  mutable receiver : (Eth_frame.t -> unit) option;
  mutable on_tx_complete : (Eth_frame.t -> unit) option;
  mutable on_drop : (Eth_frame.t -> unit) option;
  room_waiters : unit Ivar.t Queue.t;
  mutable frames_sent : int;
  mutable frames_dropped : int;
  mutable bytes_sent : int;
}

let create sim ~name ~bits_per_s ?(propagation = Time.ns 500)
    ?(fault = Fault.none) ?queue_limit () =
  if bits_per_s <= 0. then invalid_arg "Link.create: rate <= 0";
  (match queue_limit with
  | Some n when n <= 0 -> invalid_arg "Link.create: queue_limit <= 0"
  | _ -> ());
  {
    sim;
    name;
    bits_per_s;
    propagation;
    fault;
    queue_limit;
    queue = Queue.create ();
    transmitting = false;
    receiver = None;
    on_tx_complete = None;
    on_drop = None;
    room_waiters = Queue.create ();
    frames_sent = 0;
    frames_dropped = 0;
    bytes_sent = 0;
  }

let connect t receiver =
  if t.receiver <> None then invalid_arg "Link.connect: receiver already set";
  t.receiver <- Some receiver

let reconnect t receiver = t.receiver <- Some receiver
let set_tx_complete t f = t.on_tx_complete <- Some f
let set_on_drop t f = t.on_drop <- Some f

let serialization_time t frame =
  Time.of_bits_at_rate ~bits_per_s:t.bits_per_s
    (Eth_frame.on_wire_bytes frame * 8)

let deliver t frame =
  (* Fault-injected drops and duplications are counted inside [t.fault];
     each surviving copy arrives after its own extra delay (jitter), so
     copies of different frames may reorder. *)
  match
    Fault.frame t.fault ~now:(Sim.now t.sim) ~ser:(serialization_time t frame)
      ()
  with
  | [] -> ()
  | copies -> (
      match t.receiver with
      | Some rx ->
          List.iter
            (fun { Fault.delay; corrupt } ->
              let frame =
                if corrupt then { frame with Eth_frame.corrupted = true }
                else frame
              in
              if delay = 0 then rx frame
              else Sim.post t.sim ~after:delay (fun () -> rx frame))
            copies
      | None -> t.frames_dropped <- t.frames_dropped + 1)

(* The transmitter drains the queue one frame at a time; each frame occupies
   the wire for its serialization time, then propagates independently (so
   back-to-back frames pipeline across the propagation delay). *)
let probe_depth t =
  if !Probe.on then
    Probe.emit
      (Probe.Queue_depth { queue = t.name; depth = Queue.length t.queue })

let has_room t =
  match t.queue_limit with
  | Some limit -> Queue.length t.queue < limit
  | None -> true

(* Wake every waiter; each re-checks [has_room] and re-queues if another
   woken process grabbed the slot first. *)
let notify_room t =
  while not (Queue.is_empty t.room_waiters) do
    Ivar.fill (Queue.take t.room_waiters) ()
  done

let wait_room t =
  while not (has_room t) do
    let iv = Ivar.create () in
    Queue.add iv t.room_waiters;
    Ivar.read iv
  done

let rec pump t =
  match Queue.take_opt t.queue with
  | None -> t.transmitting <- false
  | Some frame ->
      let ser = serialization_time t frame in
      t.frames_sent <- t.frames_sent + 1;
      t.bytes_sent <- t.bytes_sent + Eth_frame.on_wire_bytes frame;
      probe_depth t;
      notify_room t;
      (* The wire-occupancy span is known up front: serialization is not
         preemptible, so it can be reported at schedule time. *)
      if ser > 0 && !Probe.on then begin
        let start = Sim.now t.sim in
        Probe.emit
          (Probe.Span
             { host = t.name; track = Probe.Link; label = "frame";
               start; finish = start + ser })
      end;
      Sim.post t.sim ~after:ser (fun () ->
          Sim.post t.sim ~after:t.propagation (fun () -> deliver t frame);
          (* Serialization done: the sender's buffer for this frame is
             free (a switch releases its shared-pool bytes here). *)
          (match t.on_tx_complete with Some f -> f frame | None -> ());
          pump t)

let send t frame =
  let full =
    match t.queue_limit with
    | Some limit -> Queue.length t.queue >= limit
    | None -> false
  in
  if full then begin
    t.frames_dropped <- t.frames_dropped + 1;
    match t.on_drop with Some f -> f frame | None -> ()
  end
  else begin
    Queue.add frame t.queue;
    probe_depth t;
    if not t.transmitting then begin
      t.transmitting <- true;
      pump t
    end
  end

let name t = t.name
let bits_per_s t = t.bits_per_s
let frames_sent t = t.frames_sent
let frames_dropped t = t.frames_dropped + Fault.drops t.fault
let bytes_sent t = t.bytes_sent
let queue_depth t = Queue.length t.queue
