(** Fault injection for links: a composable frame-weather model.

    The physical network in the paper's testbed is effectively lossless
    (switched full-duplex Ethernet), so experiments run with {!none}.  The
    reliability layers of CLIC and TCP are exercised by injecting faults
    here: independent or bursty (Gilbert-Elliott) loss, duplication,
    delay jitter (which reorders frames), and timed link up/down flaps.
    Stages combine with {!compose}.

    A fault is consulted once per frame ({!frame}) and answers with the
    surviving copies of that frame and their extra delays. *)

open Engine

type t

type copy = { delay : Time.span; corrupt : bool }
(** The fate of one surviving copy of a frame: its extra delay relative to
    an undisturbed delivery, and whether its bits were flipped in flight
    (the receiving MAC's FCS check will then drop it with a counted
    [bad_fcs] reason). *)

val none : t
(** Never disturbs a frame. *)

val drop : rng:Rng.t -> prob:float -> t
(** Drops each frame independently with probability [prob] in [\[0, 1\]].
    @raise Invalid_argument if [prob] is outside [\[0, 1\]]. *)

val drop_nth : every:int -> t
(** Deterministically drops every [every]-th frame (1-based), for
    reproducible unit tests.  [every] must be positive. *)

val gilbert_elliott :
  rng:Rng.t ->
  p_good_to_bad:float ->
  p_bad_to_good:float ->
  ?loss_good:float ->
  loss_bad:float ->
  unit ->
  t
(** Bursty loss from the two-state Gilbert-Elliott Markov channel.  The
    state advances once per frame ([p_good_to_bad] / [p_bad_to_good]
    transition probabilities); frames are lost with [loss_good] (default 0)
    in the good state and [loss_bad] in the bad state.  Mean burst length
    is [1 / p_bad_to_good] frames; stationary loss rate is
    [loss_bad * p_good_to_bad / (p_good_to_bad + p_bad_to_good)] for
    [loss_good = 0]. *)

val duplicate : rng:Rng.t -> prob:float -> t
(** Delivers each frame twice with probability [prob] (a retransmitting
    link layer or a flooding switch loop). *)

val jitter : rng:Rng.t -> max_delay:Time.span -> t
(** Adds a uniform extra delay in [\[0, max_delay)) to each frame.  Frames
    whose delays cross reorder, so this is also the reordering fault. *)

val flap : up:Time.span -> down:Time.span -> ?phase:Time.span -> unit -> t
(** Timed link flapping: the link repeats [up] of clean delivery followed
    by [down] of total loss, offset by [phase] (default 0) into the
    cycle. *)

val brownout :
  fraction:float ->
  from_:Engine.Time.t ->
  until_:Engine.Time.t ->
  ?label:string ->
  unit ->
  t
(** Fail-slow link: between [from_] (inclusive) and [until_] (exclusive)
    the link's effective rate sags to [fraction] of nominal — it keeps
    delivering, just slower.  Each frame in the window owes
    [(1/fraction - 1)] extra wire time and frames queue behind one another
    in a virtual slow queue, so the backlog compounds like a genuinely
    slower transmitter and FIFO order is preserved (no reordering, unlike
    {!jitter}).  Engagement and clearing are emitted as
    [Probe.Gray_fault { mode = "link-brownout" }] edges under [label]
    (default ["link"]), and slowed frames are counted ({!slowed},
    {!slow_ns}) so soak evidence can demand the sag actually bit.
    @raise Invalid_argument unless [fraction] is in (0,1] and
    [0 <= from_ < until_]. *)

val corrupt : rng:Rng.t -> prob:float -> t
(** Flips bits in each frame independently with probability [prob]: the
    copy still occupies the wire and the receiver's ring, but the MAC's
    FCS check discards it on arrival.  Unlike {!drop} the damage is only
    detected at the receiving NIC, which counts it as [bad_fcs]. *)

val compose : t list -> t
(** Applies the stages in order; a frame survives a composed fault if it
    survives every stage, delays add, corruption flags accumulate, and
    duplicated copies fan out through later stages independently. *)

val frame : t -> now:Time.t -> ?ser:Time.span -> unit -> copy list
(** The fate of one frame at simulation time [now]: one element per
    delivered copy, carrying that copy's extra delay and corruption flag
    ([[{ delay = 0; corrupt = false }]] is an undisturbed delivery; [[]]
    means the frame was dropped).  [ser] (default 0) is the frame's
    uncontended serialization time on the link, which rate-sensitive
    stages ({!brownout}) scale their extra service from.  Stateful: call
    exactly once per frame. *)

val drops : t -> int
(** Frames dropped so far (summed over composed stages). *)

val duplicates : t -> int
(** Extra copies injected so far (summed over composed stages). *)

val corruptions : t -> int
(** Frames whose bits were flipped so far (summed over composed stages). *)

val slowed : t -> int
(** Frames delayed by a {!brownout} so far (summed over composed
    stages). *)

val slow_ns : t -> int
(** Total extra nanoseconds {!brownout} stages have injected (summed over
    composed stages). *)
