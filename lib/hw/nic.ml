open Engine

let log_src = Logs.Src.create "hw.nic" ~doc:"NIC model"

module Log = (val Logs.src_log log_src : Logs.LOG)

type coalesce = {
  max_frames : int;
  quiet : Time.span;
  absolute : Time.span;
}

let no_coalesce = { max_frames = 1; quiet = 0; absolute = 0 }
let default_coalesce = { max_frames = 8; quiet = Time.us 2.; absolute = Time.us 50. }

type pause = {
  honor : bool;
  gen_high : int;
  gen_low : int;
  gen_quanta : int;
}

let pause_802_3x =
  { honor = true; gen_high = 0; gen_low = 0; gen_quanta = Mac_control.max_quanta }

type tx_desc = {
  frame : Eth_frame.t;
  needs_dma : bool;
  internal_copy : bool;
  on_complete : unit -> unit;
}

type rx_desc = {
  rx_id : int;  (* process-unique, for the lifecycle sanitizer *)
  rx_frame : Eth_frame.t;
  host_bytes : int;
  arrived : Time.t;
}

let next_rx_id = ref 0

type reasm = {
  mutable seen : int;
  mutable template : Eth_frame.t option;
  mutable ce_any : bool;
      (* a CE mark on any fragment survives reassembly: the congestion
         signal must not be lost because only part of the packet sat in
         the hot queue *)
}

type t = {
  sim : Sim.t;
  name : string;
  mtu : int;
  pci : Bus.t;
  membus : Bus.t;
  coalesce : coalesce;
  internal_bytes_per_s : float;
  firmware_per_frame : Time.span;
  fragmentation : bool;
  (* transmit side *)
  tx_slots : Semaphore.t;
  tx_queue : tx_desc Mailbox.t;
  phy_queue : tx_desc Mailbox.t;
  phy_slots : Semaphore.t;
  mutable next_packet_id : int;
  mutable uplink : Link.t option;
  (* receive side *)
  rx_slots : Semaphore.t;
  rx_wire : Eth_frame.t Mailbox.t;
  pending : rx_desc Queue.t;
  reassembly : (string * int, reasm) Hashtbl.t;
  mutable irq_handler : (unit -> unit) option;
  mutable masked : bool;
  mutable quiet_timer : Sim.handle option;
  mutable quiet_deadline : Time.t;
  mutable abs_timer : Sim.handle option;
  mutable rx_admission : (bytes:int -> bool) option;
  mutable down : bool;
  (* 802.3x flow control *)
  pause : pause option;
  mutable tx_paused : bool;
  mutable pause_started : Time.t;
  mutable pause_resume : Sim.handle option;
  mutable pause_wake : unit Ivar.t;
  mutable gen_xoff_sent : bool;
  (* gray failure: fail-slow service inflation *)
  mutable slow_factor : float;
  mutable slow_extra_ns : int;
  (* statistics *)
  mutable interrupts_raised : int;
  mutable tx_packets : int;
  mutable rx_packets : int;
  mutable rx_dropped : int;
  mutable rx_dropped_mem : int;
  mutable bad_fcs : int;
  mutable tx_paused_acc : int;
  mutable pause_frames_rx : int;
  mutable pause_frames_tx : int;
}

let cancel_timer = function Some h -> Sim.cancel h | None -> ()

let[@clic.hot] probe_ring_depth t =
  if !Probe.on then
    Probe.emit
      (Probe.Queue_depth
         { queue = t.name ^ ":rx-ring"; depth = Queue.length t.pending })

let internal_move_time t bytes =
  Time.of_bytes_at_rate ~bytes_per_s:t.internal_bytes_per_s bytes

(* Fail-slow inflation of a firmware/DMA service span.  At the default
   factor of 1.0 this is exactly [base], so healthy runs are untouched. *)
let service_span t base =
  if t.slow_factor = 1.0 then base
  else begin
    let inflated = int_of_float (float_of_int base *. t.slow_factor) in
    t.slow_extra_ns <- t.slow_extra_ns + (inflated - base);
    inflated
  end

(* --------------------------------------------------------------- *)
(* Interrupt coalescing *)

let[@clic.hot] [@clic.atomic] assert_irq t =
  if t.down then ()
  else begin
  cancel_timer t.quiet_timer;
  cancel_timer t.abs_timer;
  t.quiet_timer <- None;
  t.abs_timer <- None;
  t.masked <- true;
  t.interrupts_raised <- t.interrupts_raised + 1;
  if !Probe.on then Probe.emit (Probe.Irq { host = t.name });
  match t.irq_handler with
  | Some handler -> handler ()
  | None -> ()
  end

let[@clic.hot] timer_fired t =
  if (not t.masked) && not (Queue.is_empty t.pending) then assert_irq t

(* The quiet timer is lazy: each frame only stores the new deadline
   ([now + quiet] — monotone, since the clock never goes backwards) and a
   single in-flight event re-arms itself until it fires at the stored
   deadline.  A burst of N frames costs N field writes plus O(1) heap
   operations instead of N cancel+schedule pairs, and the IRQ still
   asserts at exactly the instant the eager implementation chose: the
   in-flight event can only be scheduled at or before the deadline. *)
let rec quiet_fired t () =
  t.quiet_timer <- None;
  if not t.down then begin
    let now = Sim.now t.sim in
    if now >= t.quiet_deadline then timer_fired t
    else
      t.quiet_timer <-
        Some
          (Sim.schedule t.sim ~after:(t.quiet_deadline - now) (quiet_fired t))
  end

let[@clic.hot] evaluate_coalescing t =
  if not t.masked then begin
    if Queue.length t.pending >= t.coalesce.max_frames then assert_irq t
    else begin
      t.quiet_deadline <- Sim.now t.sim + t.coalesce.quiet;
      if t.quiet_timer = None then
        t.quiet_timer <-
          (Some (Sim.schedule t.sim ~after:t.coalesce.quiet (quiet_fired t))
          [@clic.alloc_ok
            "lazy timer arm: once per quiet period, not per frame: a \
             burst re-uses the in-flight event and only writes the \
             deadline field"]);
      if t.abs_timer = None then
        t.abs_timer <-
          (Some (Sim.schedule t.sim ~after:t.coalesce.absolute (fun () ->
                     timer_fired t))
          [@clic.alloc_ok
            "absolute-deadline backstop: armed once per coalescing window, \
             amortized across max_frames frames"])
    end
  end

(* --------------------------------------------------------------- *)
(* 802.3x PAUSE: honouring received MAC-control frames *)

let link_rate t =
  match t.uplink with Some link -> Link.bits_per_s link | None -> 1e9

let pause_resume t =
  if t.tx_paused then begin
    t.tx_paused <- false;
    cancel_timer t.pause_resume;
    t.pause_resume <- None;
    let now = Sim.now t.sim in
    t.tx_paused_acc <- t.tx_paused_acc + (now - t.pause_started);
    if !Probe.on then begin
      Probe.emit (Probe.Pause_state { host = t.name; paused = false });
      Probe.emit
        (Probe.Span
           {
             host = t.name;
             track = Probe.Pause_t;
             label = "paused";
             start = t.pause_started;
             finish = now;
           })
    end;
    (* Swap before filling: a waiter that immediately re-pauses must get a
       fresh ivar to block on. *)
    let wake = t.pause_wake in
    t.pause_wake <- Ivar.create ();
    Ivar.fill wake ()
  end

let pause_enter t ~quanta =
  cancel_timer t.pause_resume;
  t.pause_resume <- None;
  if quanta = 0 then pause_resume t
  else begin
    if not t.tx_paused then begin
      t.tx_paused <- true;
      t.pause_started <- Sim.now t.sim;
      if !Probe.on then
        Probe.emit (Probe.Pause_state { host = t.name; paused = true })
    end;
    let span = Mac_control.span_of_quanta ~bits_per_s:(link_rate t) quanta in
    t.pause_resume <-
      Some (Sim.schedule t.sim ~after:span (fun () -> pause_resume t))
  end

let on_pause_frame t ~quanta =
  t.pause_frames_rx <- t.pause_frames_rx + 1;
  if !Probe.on then
    Probe.emit (Probe.Pause_frame { host = t.name; sent = false; quanta });
  match t.pause with
  | Some p when p.honor -> pause_enter t ~quanta
  | _ -> ()

(* Receive-side PAUSE generation (optional, [gen_high] > 0): XOFF the link
   partner when the rx ring backs up, XON once the host drains it.  The
   frame originates in the MAC, bypassing the transmit pipeline. *)
let send_pause_frame t ~quanta =
  match t.uplink with
  | Some link when not t.down ->
      t.pause_frames_tx <- t.pause_frames_tx + 1;
      if !Probe.on then
        Probe.emit (Probe.Pause_frame { host = t.name; sent = true; quanta });
      Link.send link (Mac_control.pause ~src:Mac.flow_control ~quanta)
  | _ -> ()

let[@clic.hot] gen_pause_check_high t =
  match t.pause with
  | Some p
    when p.gen_high > 0 && (not t.gen_xoff_sent)
         && Queue.length t.pending >= p.gen_high ->
      t.gen_xoff_sent <- true;
      send_pause_frame t ~quanta:p.gen_quanta
  | _ -> ()

let[@clic.hot] gen_pause_check_low t =
  match t.pause with
  | Some p when t.gen_xoff_sent && Queue.length t.pending <= p.gen_low ->
      t.gen_xoff_sent <- false;
      send_pause_frame t ~quanta:0
  | _ -> ()

(* --------------------------------------------------------------- *)
(* Transmit pipeline *)

let wire_frames t (frame : Eth_frame.t) =
  if frame.payload_bytes <= t.mtu then [ frame ]
  else begin
    let total = frame.payload_bytes in
    let count = (total + t.mtu - 1) / t.mtu in
    let packet_id = t.next_packet_id in
    t.next_packet_id <- t.next_packet_id + 1;
    List.init count (fun index ->
        let bytes =
          if index = count - 1 then total - (index * t.mtu) else t.mtu
        in
        Eth_frame.make ~src:frame.src ~dst:frame.dst
          ~ethertype:frame.ethertype ~payload_bytes:bytes
          ~frag:{ packet_id; index; count; packet_bytes = total }
          frame.payload)
  end

(* The transmit path is a two-stage pipeline, as in real NICs: the DMA
   engine fetches descriptor n+1 while the MAC/firmware stage is still
   pushing descriptor n onto the wire.  A small FIFO (in packets) couples
   the stages. *)
let tx_dma_pump t () =
  let rec loop () =
    let desc = Mailbox.recv t.tx_queue in
    let frame = desc.frame in
    let host_bytes = Eth_frame.header_bytes + frame.payload_bytes in
    if desc.needs_dma then Dma.transfer ~pci:t.pci ~membus:t.membus host_bytes;
    Semaphore.acquire t.phy_slots;
    Mailbox.send t.phy_queue desc;
    loop ()
  in
  loop ()

let tx_phy_pump t () =
  let rec loop () =
    let desc = Mailbox.recv t.phy_queue in
    let frame = desc.frame in
    let host_bytes = Eth_frame.header_bytes + frame.payload_bytes in
    if desc.internal_copy then
      Process.delay (service_span t (internal_move_time t host_bytes));
    let frames = wire_frames t frame in
    List.iter
      (fun f ->
        Process.delay (service_span t t.firmware_per_frame);
        (* A powered-off NIC cannot reach the wire, but completion still
           runs so the posted buffer is released through the normal path. *)
        match t.uplink with
        | Some link when not t.down -> (
            match t.pause with
            | None -> Link.send link f
            | Some _ ->
                (* Flow-controlled MAC: hold the frame while PAUSEd, and
                   respect uplink backpressure instead of blind-dumping
                   into a full switch FIFO.  Both conditions re-check
                   after every wake — a resume can race a new XOFF. *)
                while t.tx_paused || not (Link.has_room link) do
                  if t.tx_paused then Ivar.read t.pause_wake
                  else Link.wait_room link
                done;
                if not t.down then begin
                  if !Probe.on then
                    Probe.emit (Probe.Tx_wire { host = t.name });
                  Link.send link f
                end)
        | Some _ | None -> ())
      frames;
    t.tx_packets <- t.tx_packets + 1;
    Semaphore.release t.phy_slots;
    Semaphore.release t.tx_slots;
    desc.on_complete ();
    loop ()
  in
  loop ()

(* --------------------------------------------------------------- *)
(* Receive pipeline *)

let mac_key m = Mac.to_string m

let reassemble t (frame : Eth_frame.t) =
  match frame.frag with
  | None -> Some frame
  | Some frag ->
      let key = (mac_key frame.src, frag.packet_id) in
      let slot =
        match Hashtbl.find_opt t.reassembly key with
        | Some r -> r
        | None ->
            let r = { seen = 0; template = None; ce_any = false } in
            Hashtbl.add t.reassembly key r;
            r
      in
      slot.seen <- slot.seen + 1;
      slot.template <- Some frame;
      slot.ce_any <- slot.ce_any || frame.ce;
      if slot.seen = frag.count then begin
        Hashtbl.remove t.reassembly key;
        Some
          (Eth_frame.make ~src:frame.src ~dst:frame.dst
             ~ethertype:frame.ethertype ~payload_bytes:frag.packet_bytes
             ~ce:slot.ce_any frame.payload)
      end
      else None

let[@clic.hot] admit_host_bytes t bytes =
  match t.rx_admission with None -> true | Some admit -> admit ~bytes

let rx_pump t () =
  let rec loop () =
    let frame = Mailbox.recv t.rx_wire in
    Process.delay (service_span t t.firmware_per_frame);
    (if t.down then ()
     else if frame.Eth_frame.corrupted then
       (* The MAC recomputes the FCS over the damaged bits and discards
          the frame before it ever reaches the ring. *)
       t.bad_fcs <- t.bad_fcs + 1
     else
    match Mac_control.quanta_of frame with
    | Some quanta -> on_pause_frame t ~quanta
    | None ->
    match reassemble t frame with
    | None -> ()
    | Some packet ->
        if not (admit_host_bytes t (Eth_frame.buffer_bytes packet)) then
          (* Host kernel pool at its hard watermark: shed the frame here,
             with its own counted reason, rather than letting the
             allocation fail deeper in the stack.  Reliable senders
             retransmit. *)
          t.rx_dropped_mem <- t.rx_dropped_mem + 1
        else if Semaphore.try_acquire t.rx_slots then begin
          let host_bytes = Eth_frame.buffer_bytes packet in
          Dma.transfer ~pci:t.pci ~membus:t.membus host_bytes;
          if t.down then
            (* Power failed while the DMA was in flight: the ring this
               descriptor was headed for has already been drained, so
               landing it now would strand it there forever.  The slot we
               took must go back — power_off only released the slots that
               were in the ring at the instant it ran. *)
            Semaphore.release t.rx_slots
          else begin
          let rx_id = !next_rx_id in
          incr next_rx_id;
          if !Probe.on then
            Probe.emit
              (Probe.Obj_alloc
                 {
                   kind = Probe.Rx_buffer;
                   id = rx_id;
                   bytes = host_bytes;
                   owner = Probe.Nic;
                   where = "nic:rx-ring";
                 });
          Queue.add
            { rx_id; rx_frame = packet; host_bytes; arrived = Sim.now t.sim }
            t.pending;
          probe_ring_depth t;
          t.rx_packets <- t.rx_packets + 1;
          gen_pause_check_high t;
          evaluate_coalescing t
          end
        end
        else begin
          Log.warn (fun m ->
              m "%s: receive ring full, dropping %a" t.name Eth_frame.pp
                packet);
          t.rx_dropped <- t.rx_dropped + 1
        end);
    loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Power control (node crash / reboot) *)

let power_off t =
  if not t.down then begin
    t.down <- true;
    t.masked <- true;
    cancel_timer t.quiet_timer;
    cancel_timer t.abs_timer;
    t.quiet_timer <- None;
    t.abs_timer <- None;
    (* A powered-off MAC forgets its flow-control state. *)
    pause_resume t;
    t.gen_xoff_sent <- false;
    (* Ring contents vanish with the power: report each buffer freed so
       the lifecycle sanitizer sees the crash as a release, not a leak. *)
    Queue.iter
      (fun d ->
        if !Probe.on then
          Probe.emit
            (Probe.Obj_free
               { kind = Probe.Rx_buffer; id = d.rx_id; where = "nic:power-off" }))
      t.pending;
    let n = Queue.length t.pending in
    Queue.clear t.pending;
    if n > 0 then begin
      probe_ring_depth t;
      Semaphore.release ~n t.rx_slots
    end;
    Hashtbl.reset t.reassembly
  end

let power_on t =
  t.down <- false;
  t.masked <- false

(* --------------------------------------------------------------- *)

let create sim ~name ~mtu ~pci ~membus ?(tx_ring = 64) ?(rx_ring = 128)
    ?(coalesce = default_coalesce) ?(internal_bytes_per_s = 400e6)
    ?(firmware_per_frame = Time.ns 800) ?(fragmentation = false) ?pause () =
  if mtu <= 0 then invalid_arg "Nic.create: mtu <= 0";
  if coalesce.max_frames <= 0 then invalid_arg "Nic.create: max_frames <= 0";
  (match pause with
  | Some p ->
      if p.gen_high < 0 || p.gen_low < 0 || p.gen_low > p.gen_high then
        invalid_arg "Nic.create: pause generation watermarks out of order";
      if p.gen_quanta <= 0 || p.gen_quanta > Mac_control.max_quanta then
        invalid_arg "Nic.create: pause gen_quanta out of range"
  | None -> ());
  let t =
    {
      sim;
      name;
      mtu;
      pci;
      membus;
      coalesce;
      internal_bytes_per_s;
      firmware_per_frame;
      fragmentation;
      tx_slots = Semaphore.create tx_ring;
      tx_queue = Mailbox.create ();
      phy_queue = Mailbox.create ();
      phy_slots = Semaphore.create 2;
      next_packet_id = 0;
      uplink = None;
      rx_slots = Semaphore.create rx_ring;
      rx_wire = Mailbox.create ();
      pending = Queue.create ();
      reassembly = Hashtbl.create 16;
      irq_handler = None;
      masked = false;
      quiet_timer = None;
      quiet_deadline = 0;
      abs_timer = None;
      rx_admission = None;
      down = false;
      pause;
      tx_paused = false;
      pause_started = 0;
      pause_resume = None;
      pause_wake = Ivar.create ();
      gen_xoff_sent = false;
      slow_factor = 1.0;
      slow_extra_ns = 0;
      interrupts_raised = 0;
      tx_packets = 0;
      rx_packets = 0;
      rx_dropped = 0;
      rx_dropped_mem = 0;
      bad_fcs = 0;
      tx_paused_acc = 0;
      pause_frames_rx = 0;
      pause_frames_tx = 0;
    }
  in
  Process.spawn sim (tx_dma_pump t);
  Process.spawn sim (tx_phy_pump t);
  Process.spawn sim (rx_pump t);
  t

let attach_uplink t link =
  if t.uplink <> None then invalid_arg "Nic.attach_uplink: already attached";
  t.uplink <- Some link

let rx_from_wire t frame = if not t.down then Mailbox.send t.rx_wire frame

let set_rx_admission t admit =
  if t.rx_admission <> None then
    invalid_arg "Nic.set_rx_admission: already set";
  t.rx_admission <- Some admit

let set_interrupt t handler =
  if t.irq_handler <> None then invalid_arg "Nic.set_interrupt: already set";
  t.irq_handler <- Some handler

let check_tx_size t (desc : tx_desc) =
  if desc.frame.payload_bytes > t.mtu && not t.fragmentation then
    invalid_arg
      (Printf.sprintf
         "Nic.post_tx (%s): payload %dB exceeds MTU %d and fragmentation is \
          off"
         t.name desc.frame.payload_bytes t.mtu)

let try_post_tx t desc =
  check_tx_size t desc;
  if Semaphore.try_acquire t.tx_slots then begin
    Mailbox.send t.tx_queue desc;
    true
  end
  else false

let post_tx_blocking t desc =
  check_tx_size t desc;
  Semaphore.acquire t.tx_slots;
  Mailbox.send t.tx_queue desc

let take_rx t =
  let out = ref [] in
  Queue.iter (fun d -> out := d :: !out) t.pending;
  let n = Queue.length t.pending in
  Queue.clear t.pending;
  if n > 0 then probe_ring_depth t;
  Semaphore.release ~n t.rx_slots;
  gen_pause_check_low t;
  List.rev !out

let take_rx_budget t budget =
  if budget <= 0 then invalid_arg "Nic.take_rx_budget: budget <= 0";
  let out = ref [] in
  let n = ref 0 in
  while !n < budget && not (Queue.is_empty t.pending) do
    out := Queue.pop t.pending :: !out;
    incr n
  done;
  if !n > 0 then begin
    probe_ring_depth t;
    Semaphore.release ~n:!n t.rx_slots
  end;
  gen_pause_check_low t;
  List.rev !out

let unmask_irq t =
  if not t.down then begin
    t.masked <- false;
    if not (Queue.is_empty t.pending) then evaluate_coalescing t
  end

let name t = t.name
let mtu t = t.mtu
let pci t = t.pci
let fragmentation_enabled t = t.fragmentation
let is_down t = t.down
let interrupts_raised t = t.interrupts_raised
let tx_packets t = t.tx_packets
let rx_packets t = t.rx_packets
let rx_dropped t = t.rx_dropped
let rx_dropped_mem t = t.rx_dropped_mem
let bad_fcs t = t.bad_fcs
let tx_ring_free t = Semaphore.available t.tx_slots
let rx_pending t = Queue.length t.pending
let is_tx_paused t = t.tx_paused

let tx_paused_ns t =
  t.tx_paused_acc
  + if t.tx_paused then Sim.now t.sim - t.pause_started else 0

let pause_frames_rx t = t.pause_frames_rx
let pause_frames_tx t = t.pause_frames_tx

let set_slow_factor t factor =
  if factor < 1.0 then invalid_arg "Nic.set_slow_factor: factor < 1";
  if factor <> t.slow_factor then begin
    t.slow_factor <- factor;
    if !Probe.on then
      Probe.emit
        (Probe.Gray_fault
           { host = t.name; mode = "nic-slow"; active = factor > 1.0 })
  end

let slow_factor t = t.slow_factor
let slow_extra_ns t = t.slow_extra_ns
