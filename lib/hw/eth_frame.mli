(** Ethernet frames.

    The payload is an extensible variant: each protocol stack (IP, CLIC)
    adds its own constructor and registers a handler for its ethertype, so
    the hardware layer stays independent of the protocols riding on it.

    Sizes follow IEEE 802.3: a level-1 ("pure Ethernet", as the paper calls
    it) header of 14 bytes, a 4-byte CRC, 8 bytes of preamble+SFD and a
    12-byte inter-frame gap on the wire.  Payloads are padded to the 46-byte
    minimum.  Jumbo frames simply raise the MTU to 9000. *)

type frag = {
  packet_id : int;  (** id shared by all fragments of one NIC-level packet *)
  index : int;  (** 0-based fragment index *)
  count : int;  (** total number of fragments *)
  packet_bytes : int;  (** size of the reassembled packet payload *)
}
(** NIC-side fragmentation metadata (the paper's future-work feature, after
    Gilfeather & Underwood): used only when the NIC fragments packets larger
    than the link MTU. *)

type payload = ..
type payload += Raw of int  (** opaque test payload carrying just a size *)

type t = {
  src : Mac.t;
  dst : Mac.t;
  ethertype : int;
  payload_bytes : int;  (** L2 payload size, before 46-byte padding *)
  payload : payload;
  frag : frag option;
  corrupted : bool;
      (** bits flipped in flight (fault injection): the receiving MAC's
          FCS check fails and the frame is dropped with a [bad_fcs]
          count instead of being delivered *)
  hops : int;
      (** switch traversals so far — incremented by each switch that
          forwards the frame, and dropped once it reaches the switch TTL.
          Bookkeeping only: contributes nothing to the wire size. *)
  ce : bool;
      (** congestion experienced — set by a switch whose ECN threshold
          was crossed while enqueuing this frame.  Models the switch
          rewriting the CE bit of the carried protocol header in flight,
          so like [hops] it contributes nothing to the wire size. *)
}

val header_bytes : int
(** 14 *)

val crc_bytes : int
(** 4 *)

val preamble_bytes : int
(** 8 *)

val ifg_bytes : int
(** 12 *)

val min_payload : int
(** 46 *)

val standard_mtu : int
(** 1500 *)

val jumbo_mtu : int
(** 9000 *)

val ethertype_mac_control : int
(** 0x8808 — MAC control frames (802.3x PAUSE); see {!Mac_control}. *)

val make :
  src:Mac.t ->
  dst:Mac.t ->
  ethertype:int ->
  payload_bytes:int ->
  ?frag:frag ->
  ?corrupted:bool ->
  ?ce:bool ->
  payload ->
  t
(** [corrupted] and [ce] default to [false].
    @raise Invalid_argument on a negative payload size. *)

val on_wire_bytes : t -> int
(** Bytes occupying the wire: preamble + header + padded payload + CRC +
    inter-frame gap. *)

val buffer_bytes : t -> int
(** Bytes stored in NIC buffers / moved by DMA: header + padded payload +
    CRC (no preamble or gap). *)

val pp : Format.formatter -> t -> unit
