(** Ethernet MAC addresses, as the switch and NICs see them.

    Unicast addresses map 1:1 to cluster node ids; the broadcast address and
    a family of multicast group addresses model the Ethernet data-link
    multicast/broadcast capability CLIC builds on. *)

type t = Node of int | Broadcast | Multicast of int

val of_node : int -> t
(** @raise Invalid_argument on a negative node id. *)

val broadcast : t
val multicast : int -> t

val flow_control : t
(** The reserved 01-80-C2-00-00-01 group address MAC-control (802.3x
    PAUSE) frames are sent to.  Link-constrained: never forwarded by
    switches. *)

val is_group : t -> bool
(** True for broadcast and multicast addresses. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
