(** IEEE 802.3x MAC control — PAUSE flow-control frames.

    A PAUSE frame is sent to the reserved {!Mac.flow_control} group
    address with ethertype {!Eth_frame.ethertype_mac_control}; its payload
    is the 16-bit opcode 0x0001 followed by a 16-bit pause time measured
    in quanta of 512 bit times (512 ns at 1 Gb/s).  Quanta 0 is XON: it
    cancels a pending pause immediately.  MAC control frames are
    link-constrained — consumed by the receiving station, never forwarded
    by switches. *)

open Engine

type Eth_frame.payload += Pause of { quanta : int }

val opcode_pause : int
(** 0x0001 *)

val quantum_bits : int
(** 512 — bit times per pause quantum. *)

val max_quanta : int
(** 0xffff (≈ 33.55 ms at 1 Gb/s). *)

val payload_bytes : int
(** 4 — opcode + pause time; padding to the 46-byte minimum is the
    frame layer's business. *)

val encode : quanta:int -> bytes
(** Big-endian opcode ‖ quanta.
    @raise Invalid_argument if [quanta] is outside [0, 0xffff]. *)

val decode : bytes -> (int, string) result
(** Parse a MAC-control payload back to its quanta. *)

val pause : src:Mac.t -> quanta:int -> Eth_frame.t
(** Build a PAUSE frame; the typed payload carries the quanta as decoded
    from the wire encoding.
    @raise Invalid_argument if [quanta] is outside [0, 0xffff]. *)

val xon : src:Mac.t -> Eth_frame.t
(** [pause ~quanta:0] — resume transmission immediately. *)

val is_mac_control : Eth_frame.t -> bool

val quanta_of : Eth_frame.t -> int option
(** [Some q] for a PAUSE frame, [None] for anything else. *)

val span_of_quanta : bits_per_s:float -> int -> Time.span
(** Wall-clock duration of [quanta] pause quanta at the given link rate. *)
