type frag = {
  packet_id : int;
  index : int;
  count : int;
  packet_bytes : int;
}

type payload = ..
type payload += Raw of int

type t = {
  src : Mac.t;
  dst : Mac.t;
  ethertype : int;
  payload_bytes : int;
  payload : payload;
  frag : frag option;
  corrupted : bool;
  hops : int;  (* switch traversals so far; not on the wire *)
  ce : bool;  (* congestion experienced, set by ECN-marking switches *)
}

let header_bytes = 14
let crc_bytes = 4
let preamble_bytes = 8
let ifg_bytes = 12
let min_payload = 46
let standard_mtu = 1500
let jumbo_mtu = 9000
let ethertype_mac_control = 0x8808

let make ~src ~dst ~ethertype ~payload_bytes ?frag ?(corrupted = false)
    ?(ce = false) payload =
  if payload_bytes < 0 then invalid_arg "Eth_frame.make: negative payload";
  { src; dst; ethertype; payload_bytes; payload; frag; corrupted; hops = 0; ce }

let padded_payload t = max t.payload_bytes min_payload

let on_wire_bytes t =
  preamble_bytes + header_bytes + padded_payload t + crc_bytes + ifg_bytes

let buffer_bytes t = header_bytes + padded_payload t + crc_bytes

let pp fmt t =
  Format.fprintf fmt "frame[%a->%a type=%#x %dB%s]" Mac.pp t.src Mac.pp t.dst
    t.ethertype t.payload_bytes
    (match t.frag with
    | None -> ""
    | Some f -> Printf.sprintf " frag %d/%d of pkt %d" (f.index + 1) f.count
                  f.packet_id)
