open Engine

(* Shared-buffer provisioning.  Every buffered frame is charged twice: to
   the egress queue it waits in (per-port reserve first, then the shared
   pool) and to the ingress port it arrived on (driving 802.3x PAUSE
   generation against that port's station). *)
type buffer = {
  total_bytes : int;
  port_reserve_bytes : int;
  ingress_high_bytes : int;
  ingress_low_bytes : int;
  pause : bool;
  pause_quanta : int;
  max_frame_bytes : int;
  ecn_threshold : int;
}

let default_buffer =
  {
    total_bytes = 256 * 1024;
    port_reserve_bytes = 8 * 1024;
    ingress_high_bytes = 16 * 1024;
    ingress_low_bytes = 8 * 1024;
    pause = true;
    pause_quanta = Mac_control.max_quanta;
    max_frame_bytes = 1518;
    ecn_threshold = 0;
  }

let validate_buffer b =
  if b.total_bytes <= 0 then invalid_arg "Switch: buffer total_bytes <= 0";
  if b.port_reserve_bytes < 0 then
    invalid_arg "Switch: buffer port_reserve_bytes < 0";
  if b.ingress_high_bytes <= 0 then
    invalid_arg "Switch: buffer ingress_high_bytes <= 0";
  if b.ingress_low_bytes < 0 || b.ingress_low_bytes > b.ingress_high_bytes
  then invalid_arg "Switch: buffer ingress_low_bytes out of range";
  if b.pause_quanta <= 0 || b.pause_quanta > Mac_control.max_quanta then
    invalid_arg "Switch: buffer pause_quanta out of range";
  if b.max_frame_bytes <= 0 then
    invalid_arg "Switch: buffer max_frame_bytes <= 0";
  if b.ecn_threshold < 0 then invalid_arg "Switch: buffer ecn_threshold < 0"

(* Ports come in two kinds sharing one record: station ports ([node] >= 0,
   the node id) and trunk ports toward a peer switch ([node] < 0, a
   per-switch unique pid; [label] names the peer).  Both directions of a
   trunk are real {!Link}s, so serialization, propagation, faults, PAUSE
   and the buffer ledger all behave identically on trunks and stations. *)
type port = {
  node : int;  (* pid: station = node id; trunk = -(trunk ordinal) *)
  label : string;  (* "n<id>" for stations, the peer switch name for trunks *)
  uplink : Link.t;
  downlink : Link.t;
  fifo : (Eth_frame.t * int) Queue.t;  (* frame, ingress pid *)
  on_wire : (int * int) Queue.t;  (* charged bytes, ingress pid *)
  mutable wire_count : int;  (* frames handed to the downlink, ser pending *)
  mutable tx_frames : int;  (* data frames transmitted on the downlink *)
  mutable egress_bytes : int;  (* buffered bytes queued toward this port *)
  mutable ingress_bytes : int;  (* buffered bytes received from this port *)
  mutable paused_rx : bool;  (* we have XOFFed this port's peer *)
  mutable xoff_at : Time.t;
  mutable tx_paused_until : Time.t;  (* peer has PAUSEd this egress *)
  mutable stalled_until : Time.t;  (* gray failure: egress pump stalled *)
  mutable resume : Sim.handle option;
  mutable gate_start : Time.t;
  mutable egress_paused_ns : int;
  mutable ingress_drops : int;
  mutable egress_drops : int;
}

type t = {
  sim : Sim.t;
  name : string;
  bits_per_s : float;
  forward_latency : Time.span;
  propagation : Time.span;
  fault : unit -> Fault.t;
  egress_frames : int option;
  ingress_frames : int option;
  buffer : buffer option;
  learning : bool;
  ttl : int;
  fdb : (int, port) Hashtbl.t;  (* learned node -> port *)
  routes : (int, port array) Hashtbl.t;  (* static node -> ECMP trunk set *)
  mutable trunk_count : int;
  mutable down : bool;
  mutable port_list : port list;
  mutable shared_used : int;
  mutable occupied : int;
  mutable peak_occupied : int;
  mutable frames_forwarded : int;
  mutable frames_flooded : int;
  mutable frames_unroutable : int;
  mutable frames_ttl_dropped : int;
  mutable unknown_floods : int;
  mutable down_drops : int;
  mutable pause_frames_tx : int;
  mutable pause_frames_rx : int;
  mutable ecn_marked : int;
  mutable egress_stalls : int;
  mutable egress_stall_ns : int;
}

let create sim ~name ~bits_per_s ?(forward_latency = Time.us 2.)
    ?(propagation = Time.ns 500) ?(fault = fun () -> Fault.none)
    ?egress_frames ?ingress_frames ?buffer ?(learning = false) ?(ttl = 16) ()
    =
  (match ingress_frames with
  | Some n when n <= 0 -> invalid_arg "Switch.create: ingress_frames <= 0"
  | _ -> ());
  if ttl < 1 then invalid_arg "Switch.create: ttl < 1";
  Option.iter validate_buffer buffer;
  {
    sim;
    name;
    bits_per_s;
    forward_latency;
    propagation;
    fault;
    egress_frames;
    ingress_frames;
    buffer;
    learning;
    ttl;
    fdb = Hashtbl.create 16;
    routes = Hashtbl.create 16;
    trunk_count = 0;
    down = false;
    port_list = [];
    shared_used = 0;
    occupied = 0;
    peak_occupied = 0;
    frames_forwarded = 0;
    frames_flooded = 0;
    frames_unroutable = 0;
    frames_ttl_dropped = 0;
    unknown_floods = 0;
    down_drops = 0;
    pause_frames_tx = 0;
    pause_frames_rx = 0;
    ecn_marked = 0;
    egress_stalls = 0;
    egress_stall_ns = 0;
  }

let name t = t.name
let find_port t pid = List.find_opt (fun p -> p.node = pid) t.port_list
let n_ports t = List.length t.port_list

let shared_capacity t b =
  b.total_bytes - (n_ports t * b.port_reserve_bytes)

(* With PAUSE on, bounded uplink queues and enough shared buffer to absorb
   every port's worst case — its ingress high watermark plus the frames
   already committed to the wire and uplink FIFO when the XOFF lands — the
   switch guarantees zero loss.  Drops under this provisioning are flagged
   so the zero-loss invariant monitor can convict them.  The proof is
   per-switch and does not compose across trunks (an XOFFed trunk shifts
   the backlog upstream rather than bounding it), so any trunked switch is
   never claimed protected. *)
let protected_provisioning t =
  match (t.buffer, t.ingress_frames) with
  | Some b, Some limit when b.pause && t.trunk_count = 0 ->
      let n = n_ports t in
      n * (b.ingress_high_bytes + ((limit + 3) * b.max_frame_bytes))
      + b.max_frame_bytes
      <= shared_capacity t b
  | _ -> false

let probe_buffer t port delta =
  match t.buffer with
  | Some b when !Probe.on ->
      Probe.emit
        (Probe.Switch_buffer
           {
             switch = t.name;
             port;
             delta;
             occupied = t.occupied;
             total = b.total_bytes;
           })
  | _ -> ()

let probe_drop t port ~ingress =
  if !Probe.on then
    Probe.emit
      (Probe.Switch_drop
         { switch = t.name; port; ingress; protected = protected_provisioning t })

let probe_fifo t p =
  match t.buffer with
  | Some _ when !Probe.on ->
      Probe.emit
        (Probe.Queue_depth
           {
             queue = Printf.sprintf "%s->%s:fifo" t.name p.label;
             depth = Queue.length p.fifo;
           })
  | _ -> ()

let probe_pause_frame t p ~sent ~quanta =
  if !Probe.on then
    Probe.emit
      (Probe.Pause_frame
         {
           host =
             Printf.sprintf "%s%s%s" t.name (if sent then "->" else "<-")
               p.label;
           sent;
           quanta;
         })

(* MAC-control transmission bypasses the egress FIFO and the buffer ledger
   (control frames live in reserved control buffers); it still occupies the
   wire, so it shares [wire_count] with data frames. *)
let send_pause t p ~quanta =
  let frame = Mac_control.pause ~src:Mac.flow_control ~quanta in
  t.pause_frames_tx <- t.pause_frames_tx + 1;
  probe_pause_frame t p ~sent:true ~quanta;
  p.wire_count <- p.wire_count + 1;
  Link.send p.downlink frame

(* Ingress-side PAUSE generation: XOFF once the port's buffered bytes cross
   the high watermark, refreshed while frames keep landing from a paused
   port (the first XOFF races frames already in flight), XON at the low
   watermark.  On a trunk port the XOFF lands on the upstream switch's
   egress pump, so congestion propagates hop by hop toward the sources. *)
let maybe_xoff t b q =
  if b.pause then
    if not q.paused_rx then begin
      if q.ingress_bytes >= b.ingress_high_bytes then begin
        q.paused_rx <- true;
        q.xoff_at <- Sim.now t.sim;
        send_pause t q ~quanta:b.pause_quanta
      end
    end
    else begin
      let span =
        Mac_control.span_of_quanta ~bits_per_s:t.bits_per_s b.pause_quanta
      in
      if Sim.now t.sim - q.xoff_at >= span / 2 then begin
        q.xoff_at <- Sim.now t.sim;
        send_pause t q ~quanta:b.pause_quanta
      end
    end

let maybe_xon t b q =
  if b.pause && q.paused_rx && q.ingress_bytes <= b.ingress_low_bytes then begin
    q.paused_rx <- false;
    send_pause t q ~quanta:0
  end

let egress_gated t p = Sim.now t.sim < p.tx_paused_until
let egress_stalled t p = Sim.now t.sim < p.stalled_until

let rec pump_port t p =
  if
    (not t.down) && p.wire_count = 0
    && (not (egress_gated t p))
    && not (egress_stalled t p)
  then
    match Queue.take_opt p.fifo with
    | None -> ()
    | Some (frame, ingress_pid) ->
        probe_fifo t p;
        let charged =
          match t.buffer with
          | Some _ -> Eth_frame.buffer_bytes frame
          | None -> 0
        in
        Queue.add (charged, ingress_pid) p.on_wire;
        p.wire_count <- p.wire_count + 1;
        p.tx_frames <- p.tx_frames + 1;
        Link.send p.downlink frame

(* Downlink serialization finished: free the frame's buffer bytes (both
   ledgers), possibly XON its ingress port, and feed the next frame. *)
and on_tx_complete t p frame =
  p.wire_count <- p.wire_count - 1;
  if not (Mac_control.is_mac_control frame) then begin
    match Queue.take_opt p.on_wire with
    | Some (charged, ingress_pid) when charged > 0 -> (
        match t.buffer with
        | Some b ->
            let r = b.port_reserve_bytes in
            let extra_shared =
              max 0 (p.egress_bytes - r)
              - max 0 (p.egress_bytes - charged - r)
            in
            p.egress_bytes <- p.egress_bytes - charged;
            t.shared_used <- t.shared_used - extra_shared;
            t.occupied <- t.occupied - charged;
            probe_buffer t p.node (-charged);
            (match find_port t ingress_pid with
            | Some q ->
                q.ingress_bytes <- q.ingress_bytes - charged;
                if not t.down then maybe_xon t b q
            | None -> ())
        | None -> ())
    | _ -> ()
  end;
  pump_port t p

(* Admission control for one frame headed to egress port [p] from ingress
   pid [ingress].  Returns [true] when the frame was accepted (and, in
   buffered mode, charged to both ledgers). *)
let admit t ~ingress p frame =
  let tail_full =
    match t.egress_frames with
    | Some cap -> Queue.length p.fifo >= cap
    | None -> false
  in
  if tail_full then begin
    p.egress_drops <- p.egress_drops + 1;
    probe_drop t p.node ~ingress:false;
    false
  end
  else
    match t.buffer with
    | None -> true
    | Some b ->
        let charged = Eth_frame.buffer_bytes frame in
        let r = b.port_reserve_bytes in
        let extra_shared =
          max 0 (p.egress_bytes + charged - r) - max 0 (p.egress_bytes - r)
        in
        if t.shared_used + extra_shared > shared_capacity t b then begin
          p.egress_drops <- p.egress_drops + 1;
          probe_drop t p.node ~ingress:false;
          false
        end
        else begin
          p.egress_bytes <- p.egress_bytes + charged;
          t.shared_used <- t.shared_used + extra_shared;
          t.occupied <- t.occupied + charged;
          if t.occupied > t.peak_occupied then t.peak_occupied <- t.occupied;
          probe_buffer t p.node charged;
          (match find_port t ingress with
          | Some q ->
              q.ingress_bytes <- q.ingress_bytes + charged;
              maybe_xoff t b q
          | None -> ());
          true
        end

let enqueue t p ~ingress frame =
  Queue.add (frame, ingress) p.fifo;
  probe_fifo t p;
  pump_port t p

(* ECN marking, checked after admission so the egress ledger already
   includes the frame being enqueued: once the per-egress backlog reaches
   the configured threshold, the switch sets the frame's CE bit (modelling
   an in-flight rewrite of the carried protocol header).  Marking instead
   of dropping or PAUSEing is the whole point — the congestion signal
   reaches the sender while the frame still reaches the receiver. *)
let maybe_mark_ce t p frame =
  match t.buffer with
  | Some b
    when b.ecn_threshold > 0
         && p.egress_bytes >= b.ecn_threshold
         && not frame.Eth_frame.ce ->
      t.ecn_marked <- t.ecn_marked + 1;
      if !Probe.on then
        Probe.emit
          (Probe.Ecn_mark
             {
               switch = t.name;
               port = p.node;
               occupied = p.egress_bytes;
               threshold = b.ecn_threshold;
             });
      { frame with Eth_frame.ce = true }
  | _ -> frame

(* Deterministic flow hash for ECMP: frames of one (src, dst) flow always
   pick the same member of an equal-cost trunk set, so per-flow ordering
   survives multipath. *)
let flow_hash ~src ~dst n =
  let h = (src * 0x9e3779b1) lxor (dst * 0x85ebca6b) in
  let h = h lxor (h lsr 13) in
  let h = h * 0xc2b2ae35 in
  let h = h lxor (h lsr 16) in
  (h land max_int) mod n

let flood t ~ingress frame =
  List.iter
    (fun port ->
      if port.node <> ingress then begin
        t.frames_flooded <- t.frames_flooded + 1;
        if admit t ~ingress port frame then
          enqueue t port ~ingress (maybe_mark_ce t port frame)
      end)
    t.port_list

(* Forwarding decision, in priority order: local station port, static
   ECMP route, learned FDB entry, unknown-unicast flood (learning
   switches only), unroutable.  The hop count bounds any loop — static
   shortest-path routes are loop-free by construction, but flooding on a
   cyclic fabric is not, so the TTL is the backstop. *)
let forward t ~ingress frame =
  if t.down then t.down_drops <- t.down_drops + 1
  else if frame.Eth_frame.hops >= t.ttl then
    t.frames_ttl_dropped <- t.frames_ttl_dropped + 1
  else begin
    (if t.learning then
       match frame.Eth_frame.src with
       | Mac.Node src -> (
           match find_port t ingress with
           | Some q -> Hashtbl.replace t.fdb src q
           | None -> ())
       | Mac.Broadcast | Mac.Multicast _ -> ());
    let frame = { frame with Eth_frame.hops = frame.Eth_frame.hops + 1 } in
    match frame.Eth_frame.dst with
    | Mac.Node node -> (
        let unicast port =
          t.frames_forwarded <- t.frames_forwarded + 1;
          if admit t ~ingress port frame then
            enqueue t port ~ingress (maybe_mark_ce t port frame)
        in
        match find_port t node with
        | Some port -> unicast port
        | None -> (
            match Hashtbl.find_opt t.routes node with
            | Some arr ->
                let src =
                  match frame.Eth_frame.src with
                  | Mac.Node s -> s
                  | Mac.Broadcast | Mac.Multicast _ -> 0
                in
                unicast arr.(flow_hash ~src ~dst:node (Array.length arr))
            | None -> (
                match
                  if t.learning then Hashtbl.find_opt t.fdb node else None
                with
                | Some port -> unicast port
                | None ->
                    if t.learning then begin
                      t.unknown_floods <- t.unknown_floods + 1;
                      flood t ~ingress frame
                    end
                    else t.frames_unroutable <- t.frames_unroutable + 1)))
    | Mac.Broadcast | Mac.Multicast _ -> flood t ~ingress frame
  end

(* A peer PAUSEd us: gate that port's egress pump for the quanta (the
   frame already on the wire finishes), resuming early on XON. *)
let on_pause_rx t p ~quanta =
  t.pause_frames_rx <- t.pause_frames_rx + 1;
  probe_pause_frame t p ~sent:false ~quanta;
  Option.iter Sim.cancel p.resume;
  p.resume <- None;
  let now = Sim.now t.sim in
  if quanta = 0 then begin
    if egress_gated t p then
      p.egress_paused_ns <- p.egress_paused_ns + (now - p.gate_start);
    p.tx_paused_until <- now;
    pump_port t p
  end
  else begin
    if not (egress_gated t p) then p.gate_start <- now;
    let span = Mac_control.span_of_quanta ~bits_per_s:t.bits_per_s quanta in
    p.tx_paused_until <- now + span;
    p.resume <-
      Some
        (Sim.schedule t.sim ~after:span (fun () ->
             p.resume <- None;
             p.egress_paused_ns <-
               p.egress_paused_ns + (Sim.now t.sim - p.gate_start);
             pump_port t p))
  end

let on_ingress t p frame =
  if t.down then t.down_drops <- t.down_drops + 1
  else
    match Mac_control.quanta_of frame with
    | Some quanta -> on_pause_rx t p ~quanta
    | None ->
        (* Store-and-forward: the frame is fully received (the uplink's
           serialization already accounts for that) and admitted to the
           buffer now; lookup plus internal transfer take the forwarding
           latency before it joins the egress queue. *)
        Sim.post t.sim ~after:t.forward_latency (fun () ->
            forward t ~ingress:p.node frame)

let check_reserves t what =
  match t.buffer with
  | Some b when (n_ports t + 1) * b.port_reserve_bytes >= b.total_bytes ->
      invalid_arg (what ^ ": port reserves exceed the shared buffer")
  | _ -> ()

let blank_port ~node ~label ~uplink ~downlink =
  {
    node;
    label;
    uplink;
    downlink;
    fifo = Queue.create ();
    on_wire = Queue.create ();
    wire_count = 0;
    tx_frames = 0;
    egress_bytes = 0;
    ingress_bytes = 0;
    paused_rx = false;
    xoff_at = 0;
    tx_paused_until = 0;
    stalled_until = 0;
    resume = None;
    gate_start = 0;
    egress_paused_ns = 0;
    ingress_drops = 0;
    egress_drops = 0;
  }

let add_port t ~node =
  if node < 0 then invalid_arg "Switch.add_port: negative node";
  if find_port t node <> None then
    invalid_arg (Printf.sprintf "Switch.add_port: duplicate node %d" node);
  check_reserves t "Switch.add_port";
  let uplink =
    Link.create t.sim
      ~name:(Printf.sprintf "%s<-n%d" t.name node)
      ~bits_per_s:t.bits_per_s ~propagation:t.propagation ~fault:(t.fault ())
      ?queue_limit:t.ingress_frames ()
  in
  let downlink =
    Link.create t.sim
      ~name:(Printf.sprintf "%s->n%d" t.name node)
      ~bits_per_s:t.bits_per_s ~propagation:t.propagation ~fault:(t.fault ())
      ()
  in
  let port =
    blank_port ~node ~label:(Printf.sprintf "n%d" node) ~uplink ~downlink
  in
  Link.connect uplink (fun frame -> on_ingress t port frame);
  Link.set_on_drop uplink (fun _frame ->
      port.ingress_drops <- port.ingress_drops + 1;
      probe_drop t node ~ingress:true);
  Link.set_tx_complete downlink (fun frame -> on_tx_complete t port frame);
  t.port_list <- t.port_list @ [ port ]

let find_trunk t peer =
  List.find_opt (fun p -> p.node < 0 && p.label = peer) t.port_list

(* A trunk is one full-duplex switch-to-switch pair: each side owns a port
   whose downlink is its transmit direction and whose uplink is the peer's
   downlink.  PAUSE frames sent on a trunk downlink land in the peer's
   MAC-control path and gate the peer's egress toward us, which is exactly
   how congestion trees form across a fabric. *)
let add_trunk ?bits_per_s a b =
  if a.sim != b.sim then invalid_arg "Switch.add_trunk: different sims";
  if a == b then invalid_arg "Switch.add_trunk: self-trunk";
  List.iter
    (fun (t, peer) ->
      if find_trunk t peer.name <> None then
        invalid_arg
          (Printf.sprintf "Switch.add_trunk: duplicate trunk %s=>%s" t.name
             peer.name);
      check_reserves t "Switch.add_trunk")
    [ (a, b); (b, a) ];
  let rate = Option.value bits_per_s ~default:a.bits_per_s in
  let mk_link t peer =
    Link.create t.sim
      ~name:(Printf.sprintf "%s=>%s" t.name peer.name)
      ~bits_per_s:rate ~propagation:t.propagation ~fault:(t.fault ()) ()
  in
  let la = mk_link a b and lb = mk_link b a in
  let mk_port t peer ~uplink ~downlink =
    t.trunk_count <- t.trunk_count + 1;
    let port =
      blank_port ~node:(-t.trunk_count) ~label:peer.name ~uplink ~downlink
    in
    t.port_list <- t.port_list @ [ port ];
    port
  in
  let pa = mk_port a b ~uplink:lb ~downlink:la in
  let pb = mk_port b a ~uplink:la ~downlink:lb in
  Link.connect la (fun frame -> on_ingress b pb frame);
  Link.connect lb (fun frame -> on_ingress a pa frame);
  Link.set_tx_complete la (fun frame -> on_tx_complete a pa frame);
  Link.set_tx_complete lb (fun frame -> on_tx_complete b pb frame)

let get_port t node =
  match find_port t node with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Switch: unknown node %d" node)

let get_trunk t ~what peer =
  match find_trunk t peer with
  | Some p -> p
  | None ->
      invalid_arg (Printf.sprintf "%s: %s has no trunk to %s" what t.name peer)

let set_route t ~dst ~via =
  match via with
  | [] -> Hashtbl.remove t.routes dst
  | _ ->
      Hashtbl.replace t.routes dst
        (Array.of_list (List.map (get_trunk t ~what:"Switch.set_route") via))

let clear_routes t = Hashtbl.reset t.routes
let flush_fdb t = Hashtbl.reset t.fdb

let fdb_lookup t ~node =
  Option.map (fun p -> p.label) (Hashtbl.find_opt t.fdb node)

(* Release one drained frame's ledger charges without the XON side effect
   (a powered-off switch must not transmit). *)
let release t p charged ingress_pid =
  match t.buffer with
  | Some b ->
      let r = b.port_reserve_bytes in
      let extra_shared =
        max 0 (p.egress_bytes - r) - max 0 (p.egress_bytes - charged - r)
      in
      p.egress_bytes <- p.egress_bytes - charged;
      t.shared_used <- t.shared_used - extra_shared;
      t.occupied <- t.occupied - charged;
      probe_buffer t p.node (-charged);
      (match find_port t ingress_pid with
      | Some q -> q.ingress_bytes <- q.ingress_bytes - charged
      | None -> ())
  | None -> ()

(* Power the switch down or back up.  Down: ingress is refused, egress
   FIFOs drain into thin air with their ledger charges released, PAUSE
   gates and pending XOFF state are cleared (upstream gates expire on
   their own quanta timers — a dead switch sends no XON).  Frames already
   mid-serialization finish on the wire.  Up: every pump restarts. *)
let set_down t flag =
  if t.down <> flag then begin
    t.down <- flag;
    if flag then
      List.iter
        (fun p ->
          Option.iter Sim.cancel p.resume;
          p.resume <- None;
          let now = Sim.now t.sim in
          if egress_gated t p then begin
            p.egress_paused_ns <- p.egress_paused_ns + (now - p.gate_start);
            p.tx_paused_until <- now
          end;
          p.paused_rx <- false;
          Queue.iter
            (fun (frame, ingress_pid) ->
              match t.buffer with
              | Some _ ->
                  release t p (Eth_frame.buffer_bytes frame) ingress_pid
              | None -> ())
            p.fifo;
          Queue.clear p.fifo;
          probe_fifo t p)
        t.port_list
    else List.iter (fun p -> pump_port t p) t.port_list
  end

let is_down t = t.down
let uplink t ~node = (get_port t node).uplink
let connect_node t ~node rx = Link.connect (get_port t node).downlink rx

let rewire_node t ~node rx =
  (* The rebooted node's NIC is new hardware: any learned entry for it is
     stale the instant the old NIC dies, so withdraw it and let the fabric
     relearn (remote switches keep their entries — they can't see a
     reboot, a documented blind spot of flooding-based learning). *)
  Hashtbl.remove t.fdb node;
  Link.reconnect (get_port t node).downlink rx

let ports t =
  List.filter_map (fun p -> if p.node >= 0 then Some p.node else None)
    t.port_list

let trunks t =
  List.filter_map (fun p -> if p.node < 0 then Some p.label else None)
    t.port_list

let trunk_tx_frames t ~peer =
  (get_trunk t ~what:"Switch.trunk_tx_frames" peer).tx_frames

let frames_forwarded t = t.frames_forwarded
let frames_flooded t = t.frames_flooded
let frames_unroutable t = t.frames_unroutable
let frames_ttl_dropped t = t.frames_ttl_dropped
let unknown_floods t = t.unknown_floods
let down_drops t = t.down_drops

let egress_drops t =
  List.fold_left (fun acc p -> acc + p.egress_drops) 0 t.port_list

let ingress_drops t =
  List.fold_left (fun acc p -> acc + p.ingress_drops) 0 t.port_list

let pause_frames_tx t = t.pause_frames_tx
let pause_frames_rx t = t.pause_frames_rx
let ecn_marked t = t.ecn_marked
let buffer_occupied t = t.occupied
let peak_buffer_occupied t = t.peak_occupied

let egress_paused_ns t =
  List.fold_left (fun acc p -> acc + p.egress_paused_ns) 0 t.port_list

(* Gray failure: an egress pump that intermittently stops serving its FIFO
   (a wedged scheduler pass, a firmware hiccup) while the rest of the
   switch keeps forwarding.  Unlike PAUSE gating this is invisible to the
   peer — no MAC control frame announces it — which is what makes it
   gray.  Frames already handed to the downlink finish serializing. *)
let inject_stall t ~node ~span =
  if span <= 0 then invalid_arg "Switch.inject_stall: span <= 0";
  let p = get_port t node in
  let now = Sim.now t.sim in
  let until_ = now + span in
  if until_ > p.stalled_until then begin
    let prev = if p.stalled_until > now then p.stalled_until else now in
    if not (egress_stalled t p) && !Probe.on then
      Probe.emit
        (Probe.Gray_fault
           { host = t.name ^ "/" ^ p.label; mode = "switch-stall";
             active = true });
    t.egress_stalls <- t.egress_stalls + 1;
    t.egress_stall_ns <- t.egress_stall_ns + (until_ - prev);
    p.stalled_until <- until_;
    ignore
      (Sim.schedule t.sim ~after:span (fun () ->
           if not (egress_stalled t p) then begin
             if !Probe.on then
               Probe.emit
                 (Probe.Gray_fault
                    { host = t.name ^ "/" ^ p.label; mode = "switch-stall";
                      active = false });
             pump_port t p
           end))
  end

let egress_stalls t = t.egress_stalls
let egress_stall_ns t = t.egress_stall_ns
let has_node t node =
  match find_port t node with Some p -> p.node >= 0 | None -> false
