open Engine

(* Shared-buffer provisioning.  Every buffered frame is charged twice: to
   the egress queue it waits in (per-port reserve first, then the shared
   pool) and to the ingress port it arrived on (driving 802.3x PAUSE
   generation against that port's station). *)
type buffer = {
  total_bytes : int;
  port_reserve_bytes : int;
  ingress_high_bytes : int;
  ingress_low_bytes : int;
  pause : bool;
  pause_quanta : int;
  max_frame_bytes : int;
}

let default_buffer =
  {
    total_bytes = 256 * 1024;
    port_reserve_bytes = 8 * 1024;
    ingress_high_bytes = 16 * 1024;
    ingress_low_bytes = 8 * 1024;
    pause = true;
    pause_quanta = Mac_control.max_quanta;
    max_frame_bytes = 1518;
  }

let validate_buffer b =
  if b.total_bytes <= 0 then invalid_arg "Switch: buffer total_bytes <= 0";
  if b.port_reserve_bytes < 0 then
    invalid_arg "Switch: buffer port_reserve_bytes < 0";
  if b.ingress_high_bytes <= 0 then
    invalid_arg "Switch: buffer ingress_high_bytes <= 0";
  if b.ingress_low_bytes < 0 || b.ingress_low_bytes > b.ingress_high_bytes
  then invalid_arg "Switch: buffer ingress_low_bytes out of range";
  if b.pause_quanta <= 0 || b.pause_quanta > Mac_control.max_quanta then
    invalid_arg "Switch: buffer pause_quanta out of range";
  if b.max_frame_bytes <= 0 then
    invalid_arg "Switch: buffer max_frame_bytes <= 0"

type port = {
  node : int;
  uplink : Link.t;
  downlink : Link.t;
  fifo : (Eth_frame.t * int) Queue.t;  (* frame, ingress node *)
  on_wire : (int * int) Queue.t;  (* charged bytes, ingress node *)
  mutable wire_count : int;  (* frames handed to the downlink, ser pending *)
  mutable egress_bytes : int;  (* buffered bytes queued toward this port *)
  mutable ingress_bytes : int;  (* buffered bytes received from this port *)
  mutable paused_rx : bool;  (* we have XOFFed this port's station *)
  mutable xoff_at : Time.t;
  mutable tx_paused_until : Time.t;  (* station has PAUSEd this egress *)
  mutable resume : Sim.handle option;
  mutable gate_start : Time.t;
  mutable egress_paused_ns : int;
  mutable ingress_drops : int;
  mutable egress_drops : int;
}

type t = {
  sim : Sim.t;
  name : string;
  bits_per_s : float;
  forward_latency : Time.span;
  propagation : Time.span;
  fault : unit -> Fault.t;
  egress_frames : int option;
  ingress_frames : int option;
  buffer : buffer option;
  mutable port_list : port list;
  mutable shared_used : int;
  mutable occupied : int;
  mutable peak_occupied : int;
  mutable frames_forwarded : int;
  mutable frames_flooded : int;
  mutable frames_unroutable : int;
  mutable pause_frames_tx : int;
  mutable pause_frames_rx : int;
}

let create sim ~name ~bits_per_s ?(forward_latency = Time.us 2.)
    ?(propagation = Time.ns 500) ?(fault = fun () -> Fault.none)
    ?egress_frames ?ingress_frames ?buffer () =
  (match ingress_frames with
  | Some n when n <= 0 -> invalid_arg "Switch.create: ingress_frames <= 0"
  | _ -> ());
  Option.iter validate_buffer buffer;
  {
    sim;
    name;
    bits_per_s;
    forward_latency;
    propagation;
    fault;
    egress_frames;
    ingress_frames;
    buffer;
    port_list = [];
    shared_used = 0;
    occupied = 0;
    peak_occupied = 0;
    frames_forwarded = 0;
    frames_flooded = 0;
    frames_unroutable = 0;
    pause_frames_tx = 0;
    pause_frames_rx = 0;
  }

let find_port t node = List.find_opt (fun p -> p.node = node) t.port_list
let n_ports t = List.length t.port_list

let shared_capacity t b =
  b.total_bytes - (n_ports t * b.port_reserve_bytes)

(* With PAUSE on, bounded uplink queues and enough shared buffer to absorb
   every port's worst case — its ingress high watermark plus the frames
   already committed to the wire and uplink FIFO when the XOFF lands — the
   switch guarantees zero loss.  Drops under this provisioning are flagged
   so the zero-loss invariant monitor can convict them. *)
let protected_provisioning t =
  match (t.buffer, t.ingress_frames) with
  | Some b, Some limit when b.pause ->
      let n = n_ports t in
      n * (b.ingress_high_bytes + ((limit + 3) * b.max_frame_bytes))
      + b.max_frame_bytes
      <= shared_capacity t b
  | _ -> false

let probe_buffer t port delta =
  match t.buffer with
  | Some b when !Probe.on ->
      Probe.emit
        (Probe.Switch_buffer
           {
             switch = t.name;
             port;
             delta;
             occupied = t.occupied;
             total = b.total_bytes;
           })
  | _ -> ()

let probe_drop t port ~ingress =
  if !Probe.on then
    Probe.emit
      (Probe.Switch_drop
         { switch = t.name; port; ingress; protected = protected_provisioning t })

let probe_fifo t p =
  match t.buffer with
  | Some _ when !Probe.on ->
      Probe.emit
        (Probe.Queue_depth
           {
             queue = Printf.sprintf "%s->n%d:fifo" t.name p.node;
             depth = Queue.length p.fifo;
           })
  | _ -> ()

let probe_pause_frame t p ~sent ~quanta =
  if !Probe.on then
    Probe.emit
      (Probe.Pause_frame
         {
           host =
             Printf.sprintf "%s%sn%d" t.name (if sent then "->" else "<-")
               p.node;
           sent;
           quanta;
         })

(* MAC-control transmission bypasses the egress FIFO and the buffer ledger
   (control frames live in reserved control buffers); it still occupies the
   wire, so it shares [wire_count] with data frames. *)
let send_pause t p ~quanta =
  let frame = Mac_control.pause ~src:Mac.flow_control ~quanta in
  t.pause_frames_tx <- t.pause_frames_tx + 1;
  probe_pause_frame t p ~sent:true ~quanta;
  p.wire_count <- p.wire_count + 1;
  Link.send p.downlink frame

(* Ingress-side PAUSE generation: XOFF once the port's buffered bytes cross
   the high watermark, refreshed while frames keep landing from a paused
   port (the first XOFF races frames already in flight), XON at the low
   watermark. *)
let maybe_xoff t b q =
  if b.pause then
    if not q.paused_rx then begin
      if q.ingress_bytes >= b.ingress_high_bytes then begin
        q.paused_rx <- true;
        q.xoff_at <- Sim.now t.sim;
        send_pause t q ~quanta:b.pause_quanta
      end
    end
    else begin
      let span =
        Mac_control.span_of_quanta ~bits_per_s:t.bits_per_s b.pause_quanta
      in
      if Sim.now t.sim - q.xoff_at >= span / 2 then begin
        q.xoff_at <- Sim.now t.sim;
        send_pause t q ~quanta:b.pause_quanta
      end
    end

let maybe_xon t b q =
  if b.pause && q.paused_rx && q.ingress_bytes <= b.ingress_low_bytes then begin
    q.paused_rx <- false;
    send_pause t q ~quanta:0
  end

let egress_gated t p = Sim.now t.sim < p.tx_paused_until

let rec pump_port t p =
  if p.wire_count = 0 && not (egress_gated t p) then
    match Queue.take_opt p.fifo with
    | None -> ()
    | Some (frame, ingress_node) ->
        probe_fifo t p;
        let charged =
          match t.buffer with
          | Some _ -> Eth_frame.buffer_bytes frame
          | None -> 0
        in
        Queue.add (charged, ingress_node) p.on_wire;
        p.wire_count <- p.wire_count + 1;
        Link.send p.downlink frame

(* Downlink serialization finished: free the frame's buffer bytes (both
   ledgers), possibly XON its ingress port, and feed the next frame. *)
and on_tx_complete t p frame =
  p.wire_count <- p.wire_count - 1;
  if not (Mac_control.is_mac_control frame) then begin
    match Queue.take_opt p.on_wire with
    | Some (charged, ingress_node) when charged > 0 -> (
        match t.buffer with
        | Some b ->
            let r = b.port_reserve_bytes in
            let extra_shared =
              max 0 (p.egress_bytes - r)
              - max 0 (p.egress_bytes - charged - r)
            in
            p.egress_bytes <- p.egress_bytes - charged;
            t.shared_used <- t.shared_used - extra_shared;
            t.occupied <- t.occupied - charged;
            probe_buffer t p.node (-charged);
            (match find_port t ingress_node with
            | Some q ->
                q.ingress_bytes <- q.ingress_bytes - charged;
                maybe_xon t b q
            | None -> ())
        | None -> ())
    | _ -> ()
  end;
  pump_port t p

(* Admission control for one frame headed to egress port [p] from ingress
   node [ingress].  Returns [true] when the frame was accepted (and, in
   buffered mode, charged to both ledgers). *)
let admit t ~ingress p frame =
  let tail_full =
    match t.egress_frames with
    | Some cap -> Queue.length p.fifo >= cap
    | None -> false
  in
  if tail_full then begin
    p.egress_drops <- p.egress_drops + 1;
    probe_drop t p.node ~ingress:false;
    false
  end
  else
    match t.buffer with
    | None -> true
    | Some b ->
        let charged = Eth_frame.buffer_bytes frame in
        let r = b.port_reserve_bytes in
        let extra_shared =
          max 0 (p.egress_bytes + charged - r) - max 0 (p.egress_bytes - r)
        in
        if t.shared_used + extra_shared > shared_capacity t b then begin
          p.egress_drops <- p.egress_drops + 1;
          probe_drop t p.node ~ingress:false;
          false
        end
        else begin
          p.egress_bytes <- p.egress_bytes + charged;
          t.shared_used <- t.shared_used + extra_shared;
          t.occupied <- t.occupied + charged;
          if t.occupied > t.peak_occupied then t.peak_occupied <- t.occupied;
          probe_buffer t p.node charged;
          (match find_port t ingress with
          | Some q ->
              q.ingress_bytes <- q.ingress_bytes + charged;
              maybe_xoff t b q
          | None -> ());
          true
        end

let enqueue t p ~ingress frame =
  Queue.add (frame, ingress) p.fifo;
  probe_fifo t p;
  pump_port t p

let forward t ~ingress frame =
  match frame.Eth_frame.dst with
  | Mac.Node node -> (
      match find_port t node with
      | Some port ->
          t.frames_forwarded <- t.frames_forwarded + 1;
          if admit t ~ingress port frame then enqueue t port ~ingress frame
      | None -> t.frames_unroutable <- t.frames_unroutable + 1)
  | Mac.Broadcast | Mac.Multicast _ ->
      List.iter
        (fun port ->
          if port.node <> ingress then begin
            t.frames_flooded <- t.frames_flooded + 1;
            if admit t ~ingress port frame then enqueue t port ~ingress frame
          end)
        t.port_list

(* A station PAUSEd us: gate that port's egress pump for the quanta (the
   frame already on the wire finishes), resuming early on XON. *)
let on_pause_rx t p ~quanta =
  t.pause_frames_rx <- t.pause_frames_rx + 1;
  probe_pause_frame t p ~sent:false ~quanta;
  Option.iter Sim.cancel p.resume;
  p.resume <- None;
  let now = Sim.now t.sim in
  if quanta = 0 then begin
    if egress_gated t p then
      p.egress_paused_ns <- p.egress_paused_ns + (now - p.gate_start);
    p.tx_paused_until <- now;
    pump_port t p
  end
  else begin
    if not (egress_gated t p) then p.gate_start <- now;
    let span = Mac_control.span_of_quanta ~bits_per_s:t.bits_per_s quanta in
    p.tx_paused_until <- now + span;
    p.resume <-
      Some
        (Sim.schedule t.sim ~after:span (fun () ->
             p.resume <- None;
             p.egress_paused_ns <-
               p.egress_paused_ns + (Sim.now t.sim - p.gate_start);
             pump_port t p))
  end

let on_ingress t p frame =
  match Mac_control.quanta_of frame with
  | Some quanta -> on_pause_rx t p ~quanta
  | None ->
      (* Store-and-forward: the frame is fully received (the uplink's
         serialization already accounts for that) and admitted to the
         buffer now; lookup plus internal transfer take the forwarding
         latency before it joins the egress queue. *)
      Sim.post t.sim ~after:t.forward_latency (fun () ->
          forward t ~ingress:p.node frame)

let add_port t ~node =
  if find_port t node <> None then
    invalid_arg (Printf.sprintf "Switch.add_port: duplicate node %d" node);
  (match t.buffer with
  | Some b when (n_ports t + 1) * b.port_reserve_bytes >= b.total_bytes ->
      invalid_arg "Switch.add_port: port reserves exceed the shared buffer"
  | _ -> ());
  let uplink =
    Link.create t.sim
      ~name:(Printf.sprintf "%s<-n%d" t.name node)
      ~bits_per_s:t.bits_per_s ~propagation:t.propagation ~fault:(t.fault ())
      ?queue_limit:t.ingress_frames ()
  in
  let downlink =
    Link.create t.sim
      ~name:(Printf.sprintf "%s->n%d" t.name node)
      ~bits_per_s:t.bits_per_s ~propagation:t.propagation ~fault:(t.fault ())
      ()
  in
  let port =
    {
      node;
      uplink;
      downlink;
      fifo = Queue.create ();
      on_wire = Queue.create ();
      wire_count = 0;
      egress_bytes = 0;
      ingress_bytes = 0;
      paused_rx = false;
      xoff_at = 0;
      tx_paused_until = 0;
      resume = None;
      gate_start = 0;
      egress_paused_ns = 0;
      ingress_drops = 0;
      egress_drops = 0;
    }
  in
  Link.connect uplink (fun frame -> on_ingress t port frame);
  Link.set_on_drop uplink (fun _frame ->
      port.ingress_drops <- port.ingress_drops + 1;
      probe_drop t node ~ingress:true);
  Link.set_tx_complete downlink (fun frame -> on_tx_complete t port frame);
  t.port_list <- t.port_list @ [ port ]

let get_port t node =
  match find_port t node with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Switch: unknown node %d" node)

let uplink t ~node = (get_port t node).uplink
let connect_node t ~node rx = Link.connect (get_port t node).downlink rx
let rewire_node t ~node rx = Link.reconnect (get_port t node).downlink rx
let ports t = List.map (fun p -> p.node) t.port_list
let frames_forwarded t = t.frames_forwarded
let frames_flooded t = t.frames_flooded
let frames_unroutable t = t.frames_unroutable

let egress_drops t =
  List.fold_left (fun acc p -> acc + p.egress_drops) 0 t.port_list

let ingress_drops t =
  List.fold_left (fun acc p -> acc + p.ingress_drops) 0 t.port_list

let pause_frames_tx t = t.pause_frames_tx
let pause_frames_rx t = t.pause_frames_rx
let buffer_occupied t = t.occupied
let peak_buffer_occupied t = t.peak_occupied

let egress_paused_ns t =
  List.fold_left (fun acc p -> acc + p.egress_paused_ns) 0 t.port_list
