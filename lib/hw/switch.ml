open Engine

type port = { node : int; uplink : Link.t; downlink : Link.t }

type t = {
  sim : Sim.t;
  name : string;
  bits_per_s : float;
  forward_latency : Time.span;
  propagation : Time.span;
  fault : unit -> Fault.t;
  egress_frames : int option;
  mutable port_list : port list;
  mutable frames_forwarded : int;
  mutable frames_flooded : int;
  mutable frames_unroutable : int;
}

let create sim ~name ~bits_per_s ?(forward_latency = Time.us 2.)
    ?(propagation = Time.ns 500) ?(fault = fun () -> Fault.none)
    ?egress_frames () =
  {
    sim;
    name;
    bits_per_s;
    forward_latency;
    propagation;
    fault;
    egress_frames;
    port_list = [];
    frames_forwarded = 0;
    frames_flooded = 0;
    frames_unroutable = 0;
  }

let find_port t node = List.find_opt (fun p -> p.node = node) t.port_list

let forward t ~ingress frame =
  match frame.Eth_frame.dst with
  | Mac.Node node -> (
      match find_port t node with
      | Some port ->
          t.frames_forwarded <- t.frames_forwarded + 1;
          Link.send port.downlink frame
      | None -> t.frames_unroutable <- t.frames_unroutable + 1)
  | Mac.Broadcast | Mac.Multicast _ ->
      List.iter
        (fun port ->
          if port.node <> ingress then begin
            t.frames_flooded <- t.frames_flooded + 1;
            Link.send port.downlink frame
          end)
        t.port_list

let on_ingress t ~node frame =
  (* Store-and-forward: the frame is fully received (the uplink's
     serialization already accounts for that), then looked up and queued on
     the egress link after the forwarding latency. *)
  ignore
    (Sim.schedule t.sim ~after:t.forward_latency (fun () ->
         forward t ~ingress:node frame))

let add_port t ~node =
  if find_port t node <> None then
    invalid_arg (Printf.sprintf "Switch.add_port: duplicate node %d" node);
  let uplink =
    Link.create t.sim
      ~name:(Printf.sprintf "%s<-n%d" t.name node)
      ~bits_per_s:t.bits_per_s ~propagation:t.propagation ~fault:(t.fault ())
      ()
  in
  let downlink =
    Link.create t.sim
      ~name:(Printf.sprintf "%s->n%d" t.name node)
      ~bits_per_s:t.bits_per_s ~propagation:t.propagation ~fault:(t.fault ())
      ?queue_limit:t.egress_frames ()
  in
  Link.connect uplink (fun frame -> on_ingress t ~node frame);
  t.port_list <- t.port_list @ [ { node; uplink; downlink } ]

let get_port t node =
  match find_port t node with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Switch: unknown node %d" node)

let uplink t ~node = (get_port t node).uplink
let connect_node t ~node rx = Link.connect (get_port t node).downlink rx
let rewire_node t ~node rx = Link.reconnect (get_port t node).downlink rx
let ports t = List.map (fun p -> p.node) t.port_list
let frames_forwarded t = t.frames_forwarded
let frames_flooded t = t.frames_flooded
let frames_unroutable t = t.frames_unroutable

let egress_drops t =
  List.fold_left
    (fun acc p -> acc + Link.frames_dropped p.downlink)
    0 t.port_list
