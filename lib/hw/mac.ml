type t = Node of int | Broadcast | Multicast of int

let of_node id =
  if id < 0 then invalid_arg "Mac.of_node: negative node id";
  Node id

let broadcast = Broadcast
let multicast g = Multicast g

(* IEEE 802.3x pause frames go to the reserved 01-80-C2-00-00-01 group
   address; model it as a distinguished multicast group.  Switches never
   flood it: MAC control frames are consumed by the receiving station. *)
let flow_control = Multicast 0x01
let is_group = function Broadcast | Multicast _ -> true | Node _ -> false
let equal a b = a = b
let compare = Stdlib.compare

let pp fmt = function
  | Node id -> Format.fprintf fmt "mac:%02x" id
  | Broadcast -> Format.fprintf fmt "mac:ff"
  | Multicast g -> Format.fprintf fmt "mac:mc%02x" g

let to_string t = Format.asprintf "%a" pp t
