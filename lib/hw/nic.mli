(** A Gigabit Ethernet network interface card.

    Models the features the paper's Section 2 identifies as essential to
    exploit gigabit technology:

    - bus-master {b DMA} between host memory and the NIC's local buffers
      (enabling CLIC's 0-copy path),
    - configurable {b MTU} up to jumbo frames,
    - {b interrupt coalescing} (count threshold + quiet timer + absolute
      holdoff),
    - optional {b NIC-side fragmentation}: packets larger than the link MTU
      are split by NIC firmware on transmit and reassembled in NIC memory on
      receive, delivering one host packet (and one interrupt opportunity)
      per {e packet} rather than per {e frame} — the paper's future-work
      feature after Gilfeather & Underwood.

    The transmit and receive data paths are explicit pipelines:

    {v
    tx: host ring -> DMA (PCI+mem) -> [internal copy] -> firmware -> wire
    rx: wire -> firmware -> [reassembly] -> DMA (PCI+mem) -> host ring -> IRQ
    v}

    Each stage occupies the corresponding resource, so the bottleneck moves
    with configuration exactly as the paper discusses. *)

open Engine

type coalesce = {
  max_frames : int;  (** assert after this many pending packets *)
  quiet : Time.span;  (** assert when this long passes with no new packet *)
  absolute : Time.span;  (** assert at most this long after the first one *)
}

val no_coalesce : coalesce
(** Interrupt per packet (count threshold 1). *)

val default_coalesce : coalesce
(** A mild setting comparable to the testbed NICs' defaults: 8 frames,
    2 us quiet, 50 us absolute. *)

type pause = {
  honor : bool;
      (** gate the transmit path on received 802.3x PAUSE frames *)
  gen_high : int;
      (** XOFF the link partner when this many packets back up in the rx
          ring; 0 disables generation *)
  gen_low : int;  (** XON once the ring drains to this depth *)
  gen_quanta : int;  (** quanta per generated XOFF, 1..0xffff *)
}
(** 802.3x flow-control configuration.  A flow-controlled NIC also blocks
    on uplink backpressure ({!Link.wait_room}) instead of blind-dumping
    frames into a full switch FIFO. *)

val pause_802_3x : pause
(** Honour received PAUSE; generation off. *)

type tx_desc = {
  frame : Eth_frame.t;  (** payload larger than the MTU requires
                            fragmentation to be enabled *)
  needs_dma : bool;  (** false when the driver already moved the bytes (PIO
                         paths) *)
  internal_copy : bool;  (** stage through the NIC output buffer (paper's
                             Figure 1, paths 2 and 4) *)
  on_complete : unit -> unit;  (** runs when the frame has left the NIC *)
}

type rx_desc = {
  rx_id : int;  (** process-unique identity, for the lifecycle sanitizer *)
  rx_frame : Eth_frame.t;  (** reassembled: fragment metadata cleared *)
  host_bytes : int;  (** bytes DMA'd into the host ring buffer *)
  arrived : Time.t;  (** wire arrival time of the (last) frame *)
}

type t

val create :
  Sim.t ->
  name:string ->
  mtu:int ->
  pci:Bus.t ->
  membus:Bus.t ->
  ?tx_ring:int ->
  ?rx_ring:int ->
  ?coalesce:coalesce ->
  ?internal_bytes_per_s:float ->
  ?firmware_per_frame:Time.span ->
  ?fragmentation:bool ->
  ?pause:pause ->
  unit ->
  t
(** [pause] enables 802.3x flow control (absent by default: a legacy MAC
    that ignores MAC-control frames' pause semantics and never blocks on
    the wire).
    @raise Invalid_argument on out-of-range pause parameters. *)

(** {1 Wiring} *)

val attach_uplink : t -> Link.t -> unit
(** The link this NIC transmits into. *)

val rx_from_wire : t -> Eth_frame.t -> unit
(** Entry point for frames delivered by the attached downlink; pass this to
    {!Link.connect} / {!Switch.connect_node}.  Frames arriving with
    [corrupted = true] fail the MAC's FCS check and are counted in
    {!bad_fcs}; frames arriving while the NIC is {!power_off} are lost
    silently. *)

val set_rx_admission : t -> (bytes:int -> bool) -> unit
(** Installs the host-memory admission gate consulted before a received
    packet is DMA'd into the host ring (the OS layer wires this to its
    kernel pool's watermark level).  Returning [false] drops the packet
    with the {!rx_dropped_mem} reason.
    @raise Invalid_argument when already set. *)

val set_interrupt : t -> (unit -> unit) -> unit
(** Installs the interrupt line.  The NIC asserts at most one interrupt
    until {!unmask_irq} is called. *)

(** {1 Host-side (driver) interface} *)

val try_post_tx : t -> tx_desc -> bool
(** Queues a descriptor if a transmit ring slot is free; [false] when the
    ring is full (the driver then tells CLIC_MODULE the data cannot be sent
    now). *)

val post_tx_blocking : t -> tx_desc -> unit
(** Blocks the calling process until a slot frees. *)

val take_rx : t -> rx_desc list
(** Drains all pending received packets (oldest first) and frees their ring
    slots; called from the ISR. *)

val take_rx_budget : t -> int -> rx_desc list
(** Takes at most [budget] pending packets (oldest first), freeing their
    ring slots: one pass of the driver's NAPI-style polling loop.  An
    empty result means the ring has drained.
    @raise Invalid_argument on a non-positive budget. *)

val unmask_irq : t -> unit
(** Re-enables interrupt assertion; re-evaluates coalescing immediately if
    packets arrived while masked.  No-op while powered off. *)

val power_off : t -> unit
(** Models the node losing power: pending ring buffers are discarded (each
    reported freed to the lifecycle sanitizer), coalescing timers are
    cancelled, and until {!power_on} the NIC neither receives from the
    wire, transmits onto it, nor asserts interrupts.  In-flight transmit
    descriptors still run their completion callbacks so posted buffers
    are released. *)

val power_on : t -> unit
(** Clears the {!power_off} state (used only if a NIC object is revived
    rather than replaced; a rebooted node normally builds a fresh NIC). *)

(** {1 Configuration and statistics} *)

val name : t -> string
val mtu : t -> int

val pci : t -> Bus.t
(** The I/O bus this NIC sits on (for programmed-I/O transfers). *)

val fragmentation_enabled : t -> bool
val is_down : t -> bool
val interrupts_raised : t -> int
val tx_packets : t -> int
val rx_packets : t -> int
(** Packets delivered to the host (post-reassembly). *)

val rx_dropped : t -> int
(** Packets lost to a full receive ring. *)

val rx_dropped_mem : t -> int
(** Packets shed because the host kernel pool was at its hard watermark
    (the {!set_rx_admission} gate refused them). *)

val bad_fcs : t -> int
(** Frames discarded by the MAC's frame-check-sequence over corrupted
    bits. *)

val tx_ring_free : t -> int
val rx_pending : t -> int

val is_tx_paused : t -> bool
(** Whether the transmit path is currently gated by a received PAUSE. *)

val tx_paused_ns : t -> int
(** Cumulative time the transmit path has spent PAUSEd, including any
    pause still in progress. *)

val pause_frames_rx : t -> int
val pause_frames_tx : t -> int

(** {1 Gray failure: fail-slow service inflation} *)

val set_slow_factor : t -> float -> unit
(** Inflates every firmware/DMA-adjacent per-frame service span (ISR-side
    receive service, transmit firmware passes and internal copies) by the
    given factor — a NIC that has gone {e fail-slow} without dying.  A
    factor of 1.0 restores healthy service.  Transitions are emitted as
    [Probe.Gray_fault { mode = "nic-slow" }] edges.
    @raise Invalid_argument if [factor < 1]. *)

val slow_factor : t -> float

val slow_extra_ns : t -> int
(** Total extra service nanoseconds the inflation has injected — the
    soak's evidence that the fail-slow NIC actually served traffic while
    degraded. *)
