open Engine

let transfer ~pci ~membus bytes =
  if bytes < 0 then invalid_arg "Dma.transfer: negative size"
  else if bytes = 0 then ()
  else begin
    let start = Sim.now (Bus.sim pci) in
    let mem_done = Ivar.create () in
    Process.fork (fun () ->
        Bus.transfer membus bytes;
        Ivar.fill mem_done ());
    Bus.transfer pci bytes;
    Ivar.read mem_done;
    let finish = Sim.now (Bus.sim pci) in
    if finish > start && !Probe.on then
      Probe.emit
        (Probe.Span
           { host = Bus.name pci; track = Probe.Dma; label = "dma";
             start; finish })
  end
