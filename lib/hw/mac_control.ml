(* IEEE 802.3x MAC control: PAUSE frames.

   A PAUSE frame is an ethertype-0x8808 frame to the reserved
   01-80-C2-00-00-01 group address whose payload is the 16-bit opcode
   0x0001 followed by a 16-bit pause time in "quanta", each quantum being
   512 bit times at the link rate (512 ns on Gigabit Ethernet).  A quanta
   of 0 is the conventional XON: it cancels an earlier pause immediately.

   The payload bytes are modelled for real — big-endian encode/decode over
   a [bytes] value — so the codec can be property-tested; the decoded
   quanta also rides the frame as a typed payload so simulation components
   need not re-parse. *)

open Engine

type Eth_frame.payload += Pause of { quanta : int }

let opcode_pause = 0x0001
let quantum_bits = 512
let max_quanta = 0xffff

(* Opcode + pause-time; the real frame pads the rest of the 46-byte
   minimum payload with zeros, which frame padding already accounts for. *)
let payload_bytes = 4

let encode ~quanta =
  if quanta < 0 || quanta > max_quanta then
    invalid_arg (Printf.sprintf "Mac_control.encode: quanta %d" quanta);
  let b = Bytes.create payload_bytes in
  Bytes.set_uint8 b 0 (opcode_pause lsr 8);
  Bytes.set_uint8 b 1 (opcode_pause land 0xff);
  Bytes.set_uint8 b 2 (quanta lsr 8);
  Bytes.set_uint8 b 3 (quanta land 0xff);
  b

let decode b =
  if Bytes.length b < payload_bytes then
    Error (Printf.sprintf "short MAC control payload (%dB)" (Bytes.length b))
  else
    let opcode = (Bytes.get_uint8 b 0 lsl 8) lor Bytes.get_uint8 b 1 in
    if opcode <> opcode_pause then
      Error (Printf.sprintf "unknown MAC control opcode %#x" opcode)
    else Ok ((Bytes.get_uint8 b 2 lsl 8) lor Bytes.get_uint8 b 3)

let pause ~src ~quanta =
  (* Round-trip through the wire encoding: the typed payload carries what
     a receiver would decode, not what the sender intended. *)
  let quanta =
    match decode (encode ~quanta) with Ok q -> q | Error e -> invalid_arg e
  in
  Eth_frame.make ~src ~dst:Mac.flow_control
    ~ethertype:Eth_frame.ethertype_mac_control ~payload_bytes
    (Pause { quanta })

let xon ~src = pause ~src ~quanta:0

let is_mac_control (f : Eth_frame.t) =
  f.ethertype = Eth_frame.ethertype_mac_control

let quanta_of (f : Eth_frame.t) =
  if not (is_mac_control f) then None
  else match f.payload with Pause { quanta } -> Some quanta | _ -> None

let span_of_quanta ~bits_per_s quanta =
  Time.of_bits_at_rate ~bits_per_s (quanta * quantum_bits)
