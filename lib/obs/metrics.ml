(* Time-series metrics derived from a recorded probe stream.

   Thirteen instrument families:

   - [cpu-utilization]   gauge, per CPU: busy fraction per time bucket,
                         from [Busy] spans on "cpuN" hosts
   - [bus-utilization]   gauge, per memory/PCI bus, same derivation
   - [irq-rate]          rate,  per NIC: interrupts per second per bucket
   - [queue-depth]       gauge, per named queue (NIC rx ring, switch
                         egress, link queues), event-timed samples
   - [channel-window]    gauge, per channel direction: packets in flight
   - [pool-bytes]        gauge, per kernel memory pool: bytes in use
   - [msg-count]         counter, per node: cumulative messages sent and
                         delivered
   - [switch-buffer]     gauge, per switch: shared-buffer bytes occupied
   - [switch-drop]       counter, per switch port and direction: frames
                         tail-dropped at the switch
   - [pause]             mixed, per host: [.state] gauge (1 while the
                         transmit path is PAUSEd) and [.tx]/[.rx] PAUSE
                         frame counters
   - [ecn-mark]          counter, per switch port: frames CE-marked on
                         enqueue above the ECN threshold
   - [sack]              counter, per channel direction: acks carrying
                         SACK blocks, [.tx] as advertised by receivers
                         and [.rx] as honoured by senders
   - [latency-quantile]  gauge, per receiving node: running p50/p99/p999
                         of message delivery latency (send syscall to
                         application delivery), matched by
                         (src, dst, msg id, epoch), one sample per
                         delivery

   Series are sampled either at event time (gauges driven by a probe
   event) or over fixed buckets (utilization and rates, where an
   instantaneous reading is meaningless).  Exports are deterministic:
   series sorted by name, fixed float formatting. *)

open Engine

type kind = Gauge | Rate | Counter

let kind_name = function
  | Gauge -> "gauge"
  | Rate -> "rate"
  | Counter -> "counter"

type series = {
  s_name : string;
  s_kind : kind;
  s_unit : string;
  s_points : (int * float) list;  (* (t_ns, value), time-ascending *)
}

type t = { bucket_ns : int; series : series list }

(* ------------------------------------------------------------------ *)
(* Derivations *)

let bucket_count = 200

let tbl_update tbl key f =
  let cur = Hashtbl.find_opt tbl key in
  Hashtbl.replace tbl key (f cur)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Busy intervals per host -> busy fraction per bucket.  A [Resource] is
   exclusive, so its spans never overlap; clip each to the bucket. *)
let utilization_series ~bucket_ns ~horizon intervals =
  let nbuckets = max 1 ((horizon + bucket_ns - 1) / bucket_ns) in
  let busy = Array.make nbuckets 0 in
  List.iter
    (fun (start, finish) ->
      let b0 = start / bucket_ns
      and b1 = min (nbuckets - 1) ((finish - 1) / bucket_ns) in
      for b = b0 to b1 do
        let lo = max start (b * bucket_ns)
        and hi = min finish ((b + 1) * bucket_ns) in
        if hi > lo then busy.(b) <- busy.(b) + (hi - lo)
      done)
    intervals;
  List.init nbuckets (fun b ->
      ((b + 1) * bucket_ns, float_of_int busy.(b) /. float_of_int bucket_ns))

let rate_series ~bucket_ns ~horizon stamps =
  let nbuckets = max 1 ((horizon + bucket_ns - 1) / bucket_ns) in
  let hits = Array.make nbuckets 0 in
  List.iter
    (fun at ->
      let b = min (nbuckets - 1) (at / bucket_ns) in
      hits.(b) <- hits.(b) + 1)
    stamps;
  let per_s = 1e9 /. float_of_int bucket_ns in
  List.init nbuckets (fun b ->
      ((b + 1) * bucket_ns, float_of_int hits.(b) *. per_s))

let build ?bucket_ns recorder =
  let horizon = max 1 (Recorder.horizon recorder) in
  let bucket_ns =
    match bucket_ns with
    | Some b ->
        if b <= 0 then invalid_arg "Metrics.build: bucket_ns <= 0" else b
    | None -> max 1 (horizon / bucket_count)
  in
  let busy = Hashtbl.create 16 (* host -> intervals, reverse order *) in
  let msg_pending = Hashtbl.create 256 (* (src,dst,id,epoch) -> send ns *) in
  let msg_lats = Hashtbl.create 8 (* dst node -> latency list, us *) in
  let irqs = Hashtbl.create 16 (* host -> stamps, reverse order *) in
  let gauges = Hashtbl.create 64 (* (family, name) -> points, reverse *) in
  let counts = Hashtbl.create 16 (* (family, name) -> running count *) in
  let push_gauge family name at v =
    tbl_update gauges (family, name) (function
      | Some pts -> (at, v) :: pts
      | None -> [ (at, v) ])
  in
  let bump family name at =
    let next =
      match Hashtbl.find_opt counts (family, name) with
      | Some n -> n + 1
      | None -> 1
    in
    Hashtbl.replace counts (family, name) next;
    push_gauge family name at (float_of_int next)
  in
  List.iter
    (fun { Recorder.at; ev } ->
      match ev with
      | Probe.Span { host; track = Probe.Busy; start; finish; _ } ->
          tbl_update busy host (function
            | Some ivs -> (start, finish) :: ivs
            | None -> [ (start, finish) ])
      | Probe.Irq { host } ->
          tbl_update irqs host (function
            | Some ts -> at :: ts
            | None -> [ at ])
      | Probe.Queue_depth { queue; depth } ->
          push_gauge "queue-depth" queue at (float_of_int depth)
      | Probe.Window { chan; node; peer; outstanding; _ } ->
          push_gauge "channel-window"
            (Printf.sprintf "chan%d:%d->%d" chan node peer)
            at
            (float_of_int outstanding)
      | Probe.Pool_alloc { pool; used; _ } | Probe.Pool_free { pool; used; _ }
        ->
          push_gauge "pool-bytes" pool at (float_of_int used)
      | Probe.Msg_send { node; dst; msg_id; epoch; _ } ->
          Hashtbl.replace msg_pending (node, dst, msg_id, epoch) at;
          bump "msg-count" (Printf.sprintf "node%d.sent" node) at
      | Probe.Msg_deliver { node; src; msg_id; epoch; _ } -> (
          bump "msg-count" (Printf.sprintf "node%d.delivered" node) at;
          match Hashtbl.find_opt msg_pending (src, node, msg_id, epoch) with
          | None -> ()
          | Some t0 ->
              Hashtbl.remove msg_pending (src, node, msg_id, epoch);
              let lats =
                float_of_int (at - t0) /. 1e3
                :: Option.value (Hashtbl.find_opt msg_lats node) ~default:[]
              in
              Hashtbl.replace msg_lats node lats;
              let sorted = List.sort compare lats in
              let arr = Array.of_list sorted in
              let n = Array.length arr in
              let q p =
                arr.(min (n - 1) (int_of_float (p /. 100. *. float_of_int n)))
              in
              List.iter
                (fun (tag, p) ->
                  push_gauge "latency-quantile"
                    (Printf.sprintf "node%d.%s" node tag)
                    at (q p))
                [ ("p50", 50.); ("p99", 99.); ("p999", 99.9) ])
      | Probe.Switch_buffer { switch; occupied; _ } ->
          push_gauge "switch-buffer" switch at (float_of_int occupied)
      | Probe.Switch_drop { switch; port; ingress; _ } ->
          bump "switch-drop"
            (Printf.sprintf "%s.port%d.%s" switch port
               (if ingress then "ingress" else "egress"))
            at
      | Probe.Pause_state { host; paused } ->
          push_gauge "pause" (host ^ ".state") at (if paused then 1. else 0.)
      | Probe.Pause_frame { host; sent; _ } ->
          bump "pause" (host ^ if sent then ".tx" else ".rx") at
      | Probe.Ecn_mark { switch; port; _ } ->
          bump "ecn-mark" (Printf.sprintf "%s.port%d" switch port) at
      | Probe.Sack_tx { chan; node; peer; _ } ->
          bump "sack" (Printf.sprintf "chan%d:%d->%d.tx" chan node peer) at
      | Probe.Sack_rx { chan; node; peer; _ } ->
          bump "sack" (Printf.sprintf "chan%d:%d->%d.rx" chan node peer) at
      | _ -> ())
    (Recorder.events recorder);
  let util_family host =
    match Host.node_of host with
    | Some _ when String.length host >= 3 && String.sub host 0 3 = "cpu" ->
        "cpu-utilization"
    | _ -> "bus-utilization"
  in
  let series =
    List.concat
      [
        List.map
          (fun (host, ivs) ->
            {
              s_name = Printf.sprintf "%s/%s" (util_family host) host;
              s_kind = Gauge;
              s_unit = "fraction";
              s_points =
                utilization_series ~bucket_ns ~horizon (List.rev ivs);
            })
          (sorted_bindings busy);
        List.map
          (fun (host, stamps) ->
            {
              s_name = Printf.sprintf "irq-rate/%s" host;
              s_kind = Rate;
              s_unit = "irq/s";
              s_points = rate_series ~bucket_ns ~horizon (List.rev stamps);
            })
          (sorted_bindings irqs);
        List.map
          (fun ((family, name), pts) ->
            {
              s_name = Printf.sprintf "%s/%s" family name;
              s_kind =
                (match family with
                | "msg-count" | "switch-drop" | "ecn-mark" | "sack" -> Counter
                | "pause" ->
                    if Filename.check_suffix name ".state" then Gauge
                    else Counter
                | _ -> Gauge);
              s_unit =
                (match family with
                | "queue-depth" -> "frames"
                | "channel-window" -> "packets"
                | "pool-bytes" | "switch-buffer" -> "bytes"
                | "switch-drop" | "ecn-mark" -> "frames"
                | "sack" -> "acks"
                | "pause" ->
                    if Filename.check_suffix name ".state" then "state"
                    else "frames"
                | "latency-quantile" -> "us"
                | _ -> "messages");
              s_points = List.rev pts;
            })
          (sorted_bindings gauges);
      ]
  in
  let series =
    List.sort (fun a b -> compare a.s_name b.s_name) series
  in
  { bucket_ns; series }

(* ------------------------------------------------------------------ *)
(* Exports *)

let families t =
  List.map
    (fun s ->
      match String.index_opt s.s_name '/' with
      | Some i -> String.sub s.s_name 0 i
      | None -> s.s_name)
    t.series
  |> List.sort_uniq compare

let to_csv t =
  let buf = Buffer.create (1 lsl 14) in
  Buffer.add_string buf "series,kind,unit,t_ns,value\n";
  List.iter
    (fun s ->
      List.iter
        (fun (at, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%s,%d,%.6f\n" s.s_name
               (kind_name s.s_kind) s.s_unit at v))
        s.s_points)
    t.series;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create (1 lsl 14) in
  Buffer.add_string buf
    (Printf.sprintf "{\"bucket_ns\":%d,\"series\":[\n" t.bucket_ns);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"kind\":\"%s\",\"unit\":\"%s\",\"points\":["
           s.s_name (kind_name s.s_kind) s.s_unit);
      List.iteri
        (fun j (at, v) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "[%d,%.6f]" at v))
        s.s_points;
      Buffer.add_string buf "]}")
    t.series;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let pp_summary fmt t =
  Format.fprintf fmt "%d series over %d families (bucket %dns):@."
    (List.length t.series)
    (List.length (families t))
    t.bucket_ns;
  List.iter
    (fun s ->
      let n = List.length s.s_points in
      let last = match List.rev s.s_points with (_, v) :: _ -> v | [] -> 0. in
      let peak =
        List.fold_left (fun acc (_, v) -> Float.max acc v) 0. s.s_points
      in
      Format.fprintf fmt "  %-40s %-7s %4d pts  last %10.3f  peak %10.3f@."
        s.s_name (kind_name s.s_kind) n last peak)
    t.series
