(** Chrome trace-event / Perfetto exporter.

    Renders a recorded probe stream as trace-event JSON (open in
    ui.perfetto.dev or chrome://tracing): one process per node plus a
    fabric process for switch-internal resources, one thread per
    (host, track) pair, complete slices for spans, instants for
    interrupts and scheduler events, counter tracks for queue depths /
    channel windows / pool bytes, and flow arrows from each message's
    send syscall to its delivery on the receiver.

    The output is deterministic: byte-identical across runs of the same
    scenario. *)

val export : Recorder.t -> string
(** The complete JSON document. *)
