(* Host-name → node attribution.

   Every simulated resource carries a conventional name ([Node.create],
   [Net.create], [Switch]): "cpu3", "mem3", "pci3" / "pci3.1", "kmem3",
   "nic3.0", and per-port switch links "switch0<-n3" (uplink from node 3)
   and "switch0->n3" (downlink to node 3).  The exporters group timeline
   tracks and metric series by the node a resource belongs to; switch
   fabric itself has no node. *)

let is_digit c = c >= '0' && c <= '9'

let int_at s i =
  let n = String.length s in
  if i >= n || not (is_digit s.[i]) then None
  else begin
    let j = ref i in
    while !j < n && is_digit s.[!j] do incr j done;
    Some (int_of_string (String.sub s i (!j - i)))
  end

let after_prefix s p =
  if String.length s >= String.length p && String.sub s 0 (String.length p) = p
  then Some (String.length p)
  else None

(* The node a host belongs to, if any.  Switch-port links attribute to the
   node on their far end; plain "switchN" resources (and anything
   unrecognized) return [None] and render under the fabric group. *)
let node_of name =
  let from_port () =
    (* "...<-nK" or "...->nK" *)
    let n = String.length name in
    let rec find i =
      if i + 3 > n then None
      else if
        (String.sub name i 2 = "<-" || String.sub name i 2 = "->")
        && i + 2 < n
        && name.[i + 2] = 'n'
      then int_at name (i + 3)
      else find (i + 1)
    in
    find 0
  in
  let prefixed p = Option.bind (after_prefix name p) (int_at name) in
  match prefixed "cpu" with
  | Some n -> Some n
  | None -> (
      match prefixed "mem" with
      | Some n -> Some n
      | None -> (
          match prefixed "pci" with
          | Some n -> Some n
          | None -> (
              match prefixed "kmem" with
              | Some n -> Some n
              | None -> (
                  match prefixed "nic" with
                  | Some n -> Some n
                  | None -> from_port ()))))
