(* Captures the full probe stream of one scenario run.

   The recorder is a plain [Probe] sink: every event is stamped with the
   simulation time current at emission (tracked from the engine's [Clock]
   events) and appended to a growable buffer.  The exporters in this
   library ([Timeline], [Metrics], [Attribution]) are pure functions over
   the recorded stream, so one run can feed all of them. *)

open Engine

type stamped = { at : int; ev : Probe.event }

type t = {
  mutable now : int;
  mutable base : int;  (* epoch offset of the current simulator *)
  mutable rev : stamped list;
  mutable count : int;
  mutable horizon : int;  (* largest time seen, including span finishes *)
  chans : (int, int) Hashtbl.t;  (* channel uid -> dense recording-local id *)
}

let create () =
  {
    now = 0;
    base = 0;
    rev = [];
    count = 0;
    horizon = 0;
    chans = Hashtbl.create 16;
  }

(* Channel uids are process-global ([Clic.Channel] numbers every channel
   ever created, across simulators and rival stacks), so the raw uid of
   a given scenario depends on what ran before it in the same process.
   Re-number by first appearance to keep exports byte-identical. *)
let dense_chan t uid =
  match Hashtbl.find_opt t.chans uid with
  | Some d -> d
  | None ->
      let d = Hashtbl.length t.chans in
      Hashtbl.add t.chans uid d;
      d

(* Gap between consecutive simulators of one scenario on the stitched
   time axis (bandwidth sweeps create a fresh [Sim] per point; without
   re-basing their busy intervals would overlay and utilization would
   read > 1). *)
let epoch_gap = 1_000

let on_event t ev =
  (match ev with
  | Probe.Clock { now } -> t.now <- t.base + now
  | Probe.Sim_start ->
      t.base <- (if t.count = 0 then 0 else t.horizon + epoch_gap);
      t.now <- t.base
  | _ -> ());
  (* Spans carry absolute times of their own simulator: re-base them onto
     the stitched axis along with the stamp. *)
  let ev =
    match ev with
    | Probe.Span { host; track; label; start; finish } ->
        Probe.Span
          {
            host;
            track;
            label;
            start = t.base + start;
            finish = t.base + finish;
          }
    | Probe.Ack_tx e -> Probe.Ack_tx { e with chan = dense_chan t e.chan }
    | Probe.Ack_rx e -> Probe.Ack_rx { e with chan = dense_chan t e.chan }
    | Probe.Snd_una e -> Probe.Snd_una { e with chan = dense_chan t e.chan }
    | Probe.Window e -> Probe.Window { e with chan = dense_chan t e.chan }
    | Probe.Chan_deliver e ->
        Probe.Chan_deliver { e with chan = dense_chan t e.chan }
    | Probe.Chan_dead e -> Probe.Chan_dead { e with chan = dense_chan t e.chan }
    | Probe.Rto_armed e -> Probe.Rto_armed { e with chan = dense_chan t e.chan }
    | ev -> ev
  in
  (match ev with
  | Probe.Span { finish; _ } -> t.horizon <- max t.horizon finish
  | _ -> t.horizon <- max t.horizon t.now);
  t.rev <- { at = t.now; ev } :: t.rev;
  t.count <- t.count + 1

let events t = List.rev t.rev
let count t = t.count
let horizon t = t.horizon

(* Run a scenario with the recorder installed; returns the recording and
   the scenario's rendered text.  Probe state is process-global, so the
   previous sink (if any) is simply replaced and removed afterwards —
   exactly the discipline [Check] uses. *)
let record (sc : Check.Scenario.t) =
  let t = create () in
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  Probe.install (on_event t);
  Fun.protect
    ~finally:(fun () -> Probe.uninstall ())
    (fun () ->
      sc.Check.Scenario.run fmt;
      Format.pp_print_flush fmt ());
  (t, Buffer.contents buf)
