(** Captures a scenario's full probe stream for the exporters.

    A recorder is a plain {!Engine.Probe} sink: every event is stamped
    with the simulation time current at emission and buffered.  The
    timeline, metrics and attribution passes are pure functions over the
    recording, so one run feeds all three. *)

type stamped = { at : int; ev : Engine.Probe.event }

type t

val create : unit -> t

val on_event : t -> Engine.Probe.event -> unit
(** The sink; install with [Probe.install (on_event t)] when driving a
    run by hand. *)

val events : t -> stamped list
(** Recorded events, in emission order. *)

val count : t -> int

val horizon : t -> int
(** Largest simulation time seen (ns), including span finish times. *)

val record : Check.Scenario.t -> t * string
(** Run one scenario with a fresh recorder installed; returns the
    recording and the scenario's rendered report text.  Replaces any
    installed probe sink for the duration (probe state is
    process-global), restoring the unprobed state afterwards. *)
