(* Chrome trace-event / Perfetto exporter.

   Renders a recorded probe stream as a JSON object in the trace-event
   format (load in ui.perfetto.dev or chrome://tracing):

   - one process ("pid") per node, plus a shared fabric process for
     switch-internal resources;
   - one thread ("tid") per (host, track) pair — a CPU contributes
     separate process / ISR / bottom-half / CLIC-module / busy tracks, a
     NIC its DMA track, each switch port its wire track;
   - complete ("X") slices for [Probe.Span] activity;
   - instant ("i") events for interrupts and scheduler wake/block;
   - counter ("C") tracks for queue depths, channel windows, pool bytes;
   - flow arrows ("s"/"f") from each message's send syscall to its
     delivery upcall on the receiving node.

   Output is deterministic: events are emitted in recorded order,
   metadata in sorted order, timestamps formatted with fixed precision
   (trace-event "ts" is in microseconds; we keep nanosecond resolution as
   fractional digits). *)

open Engine

let fabric_pid = 1000

let pid_of_host host =
  match Host.node_of host with Some n -> n | None -> fabric_pid

let process_label pid =
  if pid = fabric_pid then "fabric" else Printf.sprintf "node%d" pid

(* Track sort order inside a node: flow of a packet top to bottom. *)
let track_rank = function
  | Probe.Process -> 0
  | Probe.Module -> 1
  | Probe.Isr -> 2
  | Probe.Bh_track -> 3
  | Probe.Dma -> 4
  | Probe.Link -> 5
  | Probe.Pause_t -> 6
  | Probe.Busy -> 7

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let ts_us ns = Printf.sprintf "%.3f" (float_of_int ns /. 1000.)

module Key = struct
  type t = { pid : int; host : string; track : Probe.track }

  let compare a b =
    compare
      (a.pid, track_rank a.track, a.host)
      (b.pid, track_rank b.track, b.host)
end

module KeyMap = Map.Make (Key)

(* Thread ids: assigned per (host, track) in display order, so the
   Perfetto track list reads sender-to-receiver. *)
let assign_tids events =
  let keys = ref KeyMap.empty in
  let remember pid host track =
    let k = { Key.pid; host; track } in
    if not (KeyMap.mem k !keys) then keys := KeyMap.add k () !keys
  in
  List.iter
    (fun { Recorder.ev; _ } ->
      match ev with
      | Probe.Span { host; track; _ } -> remember (pid_of_host host) host track
      | Probe.Sched_run { host } | Probe.Sched_block { host } ->
          remember (pid_of_host host) host Probe.Process
      | Probe.Irq { host } -> remember (pid_of_host host) host Probe.Isr
      | Probe.Msg_send { node; _ } ->
          remember node (Printf.sprintf "cpu%d" node) Probe.Process
      | Probe.Msg_deliver { node; _ } ->
          remember node (Printf.sprintf "cpu%d" node) Probe.Module
      | _ -> ())
    events;
  let next = ref 0 in
  KeyMap.mapi
    (fun _ () ->
      incr next;
      !next)
    !keys

let tid_exn tids pid host track =
  KeyMap.find { Key.pid; host; track } tids

(* A message's flow id must be unique across the run; sender msg_ids are
   per-node counters, so fold the node in. *)
let flow_id ~src ~msg_id = (src * 1_000_000) + msg_id

let emit_event buf fields =
  Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%s" k v))
    fields;
  Buffer.add_string buf "},\n"

let str s = Printf.sprintf "\"%s\"" (json_escape s)

let export recorder =
  let events = Recorder.events recorder in
  let tids = assign_tids events in
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  (* Metadata: process and thread names, in sorted (deterministic) order. *)
  let pids =
    KeyMap.fold (fun k _ acc -> k.Key.pid :: acc) tids []
    |> List.sort_uniq compare
  in
  List.iter
    (fun pid ->
      emit_event buf
        [
          ("name", str "process_name");
          ("ph", str "M");
          ("pid", string_of_int pid);
          ("args", Printf.sprintf "{\"name\":%s}" (str (process_label pid)));
        ];
      emit_event buf
        [
          ("name", str "process_sort_index");
          ("ph", str "M");
          ("pid", string_of_int pid);
          ("args", Printf.sprintf "{\"sort_index\":%d}" pid);
        ])
    pids;
  KeyMap.iter
    (fun k tid ->
      let label =
        Printf.sprintf "%s %s" k.Key.host (Probe.track_name k.Key.track)
      in
      emit_event buf
        [
          ("name", str "thread_name");
          ("ph", str "M");
          ("pid", string_of_int k.Key.pid);
          ("tid", string_of_int tid);
          ("args", Printf.sprintf "{\"name\":%s}" (str label));
        ];
      emit_event buf
        [
          ("name", str "thread_sort_index");
          ("ph", str "M");
          ("pid", string_of_int k.Key.pid);
          ("tid", string_of_int tid);
          ("args", Printf.sprintf "{\"sort_index\":%d}" tid);
        ])
    tids;
  let slice ~name ~cat ~pid ~tid ~start ~finish =
    emit_event buf
      [
        ("name", str name);
        ("cat", str cat);
        ("ph", str "X");
        ("pid", string_of_int pid);
        ("tid", string_of_int tid);
        ("ts", ts_us start);
        ("dur", ts_us (finish - start));
      ]
  in
  let instant ~name ~cat ~pid ~tid ~at =
    emit_event buf
      [
        ("name", str name);
        ("cat", str cat);
        ("ph", str "i");
        ("s", str "t");
        ("pid", string_of_int pid);
        ("tid", string_of_int tid);
        ("ts", ts_us at);
      ]
  in
  let counter ~name ~pid ~at ~key ~value =
    emit_event buf
      [
        ("name", str name);
        ("ph", str "C");
        ("pid", string_of_int pid);
        ("ts", ts_us at);
        ("args", Printf.sprintf "{\"%s\":%s}" key value);
      ]
  in
  let flow ~ph ~pid ~tid ~at ~id extra =
    emit_event buf
      ([
         ("name", str "msg");
         ("cat", str "flow");
         ("ph", str ph);
         ("id", string_of_int id);
         ("pid", string_of_int pid);
         ("tid", string_of_int tid);
         ("ts", ts_us at);
       ]
      @ extra)
  in
  List.iter
    (fun { Recorder.at; ev } ->
      match ev with
      | Probe.Span { host; track; label; start; finish } ->
          let pid = pid_of_host host in
          slice ~name:label
            ~cat:(Probe.track_name track)
            ~pid
            ~tid:(tid_exn tids pid host track)
            ~start ~finish
      | Probe.Irq { host } ->
          let pid = pid_of_host host in
          instant ~name:"irq" ~cat:"irq" ~pid
            ~tid:(tid_exn tids pid host Probe.Isr)
            ~at
      | Probe.Sched_run { host } ->
          let pid = pid_of_host host in
          instant ~name:"sched-run" ~cat:"sched" ~pid
            ~tid:(tid_exn tids pid host Probe.Process)
            ~at
      | Probe.Sched_block { host } ->
          let pid = pid_of_host host in
          instant ~name:"sched-block" ~cat:"sched" ~pid
            ~tid:(tid_exn tids pid host Probe.Process)
            ~at
      | Probe.Queue_depth { queue; depth } ->
          counter ~name:queue ~pid:(pid_of_host queue) ~at ~key:"depth"
            ~value:(string_of_int depth)
      | Probe.Window { chan; node; peer; outstanding; _ } ->
          counter
            ~name:(Printf.sprintf "chan%d:%d->%d window" chan node peer)
            ~pid:node ~at ~key:"outstanding"
            ~value:(string_of_int outstanding)
      | Probe.Pool_alloc { pool; used; _ } | Probe.Pool_free { pool; used; _ }
        ->
          counter ~name:pool ~pid:(pid_of_host pool) ~at ~key:"bytes"
            ~value:(string_of_int used)
      | Probe.Msg_send { node; msg_id; _ } ->
          let host = Printf.sprintf "cpu%d" node in
          flow ~ph:"s" ~pid:node
            ~tid:(tid_exn tids node host Probe.Process)
            ~at
            ~id:(flow_id ~src:node ~msg_id)
            []
      | Probe.Msg_deliver { node; src; msg_id; _ } ->
          let host = Printf.sprintf "cpu%d" node in
          flow ~ph:"f" ~pid:node
            ~tid:(tid_exn tids node host Probe.Module)
            ~at
            ~id:(flow_id ~src ~msg_id)
            [ ("bp", str "e") ]
      | _ -> ())
    events;
  (* Closing metadata sentinel avoids trailing-comma bookkeeping. *)
  Buffer.add_string buf
    "{\"name\":\"clic-sim\",\"ph\":\"M\",\"pid\":0,\"args\":{}}\n]}\n";
  Buffer.contents buf
