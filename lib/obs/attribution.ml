(* Per-message latency attribution.

   Reconstructs, for every CLIC message in a recorded run, the Figure 7
   stage breakdown: CLIC_MODULE send work, driver transmit routine,
   transit (buses + wire + switch + interrupt dispatch), ISR, bottom-half
   driver work, and CLIC_MODULE receive work including the copy to user
   memory.

   The pass pairs three probe events per message — [Msg_send] (syscall
   entry), [Msg_deliver] (last fragment reassembled) and [Msg_recv] (copy
   to the receiver's user memory complete) — and attributes the labelled
   [Span]s on the sender's and receiver's CPUs to messages:

   - sender-side spans ("clic:module-tx", "driver:tx-routine") belong to
     the latest message the sender had entered at the span's start;
   - receiver-side spans ("driver:isr", "driver:bottom-half",
     "clic:module-rx", "clic:copy-to-user") belong to the oldest message
     still in flight to that node — fragments are delivered in order, so
     interrupt-side work services the oldest undelivered message.

   Stage durations merge each label's intervals disjointly
   ([Trace.merged_length]), so a stage never exceeds wall-clock time; the
   driver's bottom-half time subtracts the CLIC module work nested inside
   it, mirroring the Figure 7 computation in [Report.Figures].  With
   pipelined traffic the windows of consecutive messages overlap and
   shared batch work (one ISR draining several messages' fragments) is
   charged to the oldest message — totals stay exact per message, stage
   splits are an attribution, not a measurement. *)

open Engine

type stages = {
  module_tx_us : float;
  driver_tx_us : float;
  transit_us : float;
  isr_us : float;
  bottom_half_us : float;
  module_rx_us : float;
  total_us : float;
}

type message = {
  src : int;
  dst : int;
  port : int;
  msg_id : int;
  bytes : int;
  t_send : int;
  t_deliver : int option;
  t_recv : int option;
  stages : stages;
}

type msg_acc = {
  m_src : int;
  m_dst : int;
  m_port : int;
  m_id : int;
  m_bytes : int;
  m_send : int;
  mutable m_deliver : int option;
  mutable m_recv : int option;
  (* label -> intervals, per side *)
  spans : (string, (int * int) list ref) Hashtbl.t;
}

let sender_labels = [ "clic:module-tx"; "driver:tx-routine" ]

let receiver_labels =
  [ "driver:isr"; "driver:bottom-half"; "clic:module-rx"; "clic:copy-to-user" ]

let us ns = float_of_int ns /. 1000.

(* Accumulate per-key message lists; finalized to send-ordered arrays. *)
let tbl_append tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := v :: !r
  | None -> Hashtbl.add tbl key (ref [ v ])

let add_span acc label iv =
  match Hashtbl.find_opt acc.spans label with
  | Some r -> r := iv :: !r
  | None -> Hashtbl.add acc.spans label (ref [ iv ])

let merged acc label =
  match Hashtbl.find_opt acc.spans label with
  | Some r -> us (Trace.merged_length !r)
  | None -> 0.

let finish_message acc =
  let module_tx = merged acc "clic:module-tx" in
  let driver_tx = merged acc "driver:tx-routine" in
  let isr_total = merged acc "driver:isr" in
  let bh_total = merged acc "driver:bottom-half" in
  let module_rx =
    merged acc "clic:module-rx" +. merged acc "clic:copy-to-user"
  in
  (* The module upcall nests inside whichever driver stage invoked it:
     the bottom half normally, the ISR when the driver runs in
     direct-from-ISR mode (no bottom-half spans at all). *)
  let isr, bottom_half =
    if bh_total > 0. then (isr_total, Float.max 0. (bh_total -. module_rx))
    else (Float.max 0. (isr_total -. module_rx), 0.)
  in
  let t_end =
    match (acc.m_recv, acc.m_deliver) with
    | Some r, _ -> Some r
    | None, Some d -> Some d
    | None, None -> None
  in
  let total =
    match t_end with Some e -> us (e - acc.m_send) | None -> 0.
  in
  let transit =
    Float.max 0.
      (total -. module_tx -. driver_tx -. isr -. bottom_half -. module_rx)
  in
  {
    src = acc.m_src;
    dst = acc.m_dst;
    port = acc.m_port;
    msg_id = acc.m_id;
    bytes = acc.m_bytes;
    t_send = acc.m_send;
    t_deliver = acc.m_deliver;
    t_recv = acc.m_recv;
    stages =
      {
        module_tx_us = module_tx;
        driver_tx_us = driver_tx;
        transit_us = transit;
        isr_us = isr;
        bottom_half_us = bottom_half;
        module_rx_us = module_rx;
        total_us = total;
      };
  }

let messages recorder =
  let by_key = Hashtbl.create 64 in
  let order = ref [] in
  (* First pass: the message population and its lifecycle stamps. *)
  List.iter
    (fun { Recorder.at; ev } ->
      match ev with
      | Probe.Msg_send { node; dst; port; msg_id; bytes; epoch = _ } ->
          let acc =
            {
              m_src = node;
              m_dst = dst;
              m_port = port;
              m_id = msg_id;
              m_bytes = bytes;
              m_send = at;
              m_deliver = None;
              m_recv = None;
              spans = Hashtbl.create 8;
            }
          in
          (* A later send reusing the key (fresh [Sim] in the same run)
             supersedes the old message. *)
          Hashtbl.replace by_key (node, msg_id) acc;
          order := acc :: !order
      | Probe.Msg_deliver { src; msg_id; _ } -> (
          match Hashtbl.find_opt by_key (src, msg_id) with
          | Some acc when acc.m_deliver = None -> acc.m_deliver <- Some at
          | _ -> ())
      | Probe.Msg_recv { src; msg_id; _ } -> (
          match Hashtbl.find_opt by_key (src, msg_id) with
          | Some acc when acc.m_recv = None -> acc.m_recv <- Some at
          | _ -> ())
      | _ -> ())
    (Recorder.events recorder);
  let order = List.rev !order in
  (* Second pass: attribute labelled spans.  Sender side: the latest
     message entered on that node at the span's start.  Receiver side:
     the oldest message still undelivered to that node (fragments are
     delivered in order).  Spans are processed in start order so both
     picks reduce to per-node cursors over the send-ordered message
     list — O(spans + messages) after the sort. *)
  let spans =
    List.filter_map
      (fun { Recorder.ev; _ } ->
        match ev with
        | Probe.Span { host; label; start; finish; _ }
          when List.mem label sender_labels || List.mem label receiver_labels
          -> (
            match Host.node_of host with
            | Some node -> Some (start, finish, node, label)
            | None -> None)
        | _ -> None)
      (Recorder.events recorder)
    |> List.sort compare
  in
  let by_src = Hashtbl.create 8 and by_dst = Hashtbl.create 8 in
  List.iter
    (fun acc ->
      tbl_append by_src acc.m_src acc;
      tbl_append by_dst acc.m_dst acc)
    order;
  (* rev-accumulated lists -> send-ordered arrays *)
  let freeze tbl =
    let out = Hashtbl.create (Hashtbl.length tbl) in
    Hashtbl.iter
      (fun k r -> Hashtbl.replace out k (Array.of_list (List.rev !r)))
      tbl;
    out
  in
  let by_src = freeze by_src and by_dst = freeze by_dst in
  let cursor tbl = (tbl, Hashtbl.create 8) in
  let src_cur = cursor by_src and dst_cur = cursor by_dst in
  let msgs_of (tbl, _) n =
    match Hashtbl.find_opt tbl n with Some a -> a | None -> [||]
  in
  let cur_of (_, c) n = match Hashtbl.find_opt c n with Some i -> i | None -> 0 in
  let set_cur (_, c) n i = Hashtbl.replace c n i in
  let sender_pick node start =
    let msgs = msgs_of src_cur node in
    let i = ref (cur_of src_cur node) in
    (* advance to the last message entered at or before [start] *)
    while
      !i + 1 < Array.length msgs && msgs.(!i + 1).m_send <= start
    do
      incr i
    done;
    set_cur src_cur node !i;
    if Array.length msgs > 0 && msgs.(!i).m_send <= start then Some msgs.(!i)
    else None
  in
  let receiver_pick node start =
    let msgs = msgs_of dst_cur node in
    let i = ref (cur_of dst_cur node) in
    (* skip messages fully received before [start]: span starts are
       non-decreasing, so they can never match again *)
    while
      !i < Array.length msgs
      && (match msgs.(!i).m_recv with Some r -> r < start | None -> false)
    do
      incr i
    done;
    set_cur dst_cur node !i;
    if !i < Array.length msgs && msgs.(!i).m_send <= start then Some msgs.(!i)
    else None
  in
  List.iter
    (fun (start, finish, node, label) ->
      let target =
        if List.mem label sender_labels then sender_pick node start
        else receiver_pick node start
      in
      match target with
      | Some acc -> add_span acc label (start, finish)
      | None -> ())
    spans;
  List.map finish_message order

(* ------------------------------------------------------------------ *)
(* Aggregation *)

type percentiles = { p50_us : float; p90_us : float; p99_us : float }

(* Histogram buckets are powers of two in ns: coarse, but monotone and
   cheap — the right tool for tail summaries over many messages. *)
let latency_percentiles msgs =
  let h = Stats.Histogram.create "msg-total-ns" in
  List.iter
    (fun m -> Stats.Histogram.add h (int_of_float (m.stages.total_us *. 1000.)))
    msgs;
  {
    p50_us = us (Stats.Histogram.percentile h 50.);
    p90_us = us (Stats.Histogram.percentile h 90.);
    p99_us = us (Stats.Histogram.percentile h 99.);
  }

let stage_means msgs =
  let n = max 1 (List.length msgs) in
  let f sel =
    List.fold_left (fun acc m -> acc +. sel m.stages) 0. msgs /. float_of_int n
  in
  {
    module_tx_us = f (fun s -> s.module_tx_us);
    driver_tx_us = f (fun s -> s.driver_tx_us);
    transit_us = f (fun s -> s.transit_us);
    isr_us = f (fun s -> s.isr_us);
    bottom_half_us = f (fun s -> s.bottom_half_us);
    module_rx_us = f (fun s -> s.module_rx_us);
    total_us = f (fun s -> s.total_us);
  }

let pp_table fmt msgs =
  Format.fprintf fmt
    "%-4s %-4s %-5s %-8s | %10s %10s %10s %10s %10s %10s | %10s@." "src"
    "dst" "msg" "bytes" "module-tx" "driver-tx" "transit" "isr"
    "bottom-hlf" "module-rx" "total-us";
  List.iter
    (fun m ->
      Format.fprintf fmt
        "%-4d %-4d %-5d %-8d | %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f | \
         %10.2f@."
        m.src m.dst m.msg_id m.bytes m.stages.module_tx_us
        m.stages.driver_tx_us m.stages.transit_us m.stages.isr_us
        m.stages.bottom_half_us m.stages.module_rx_us m.stages.total_us)
    msgs;
  if msgs <> [] then begin
    let mean = stage_means msgs in
    let p = latency_percentiles msgs in
    Format.fprintf fmt
      "%-24s | %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f | %10.2f@." "mean"
      mean.module_tx_us mean.driver_tx_us mean.transit_us mean.isr_us
      mean.bottom_half_us mean.module_rx_us mean.total_us;
    Format.fprintf fmt
      "total latency percentiles (bucketed): p50 %.1fus p90 %.1fus p99 %.1fus@."
      p.p50_us p.p90_us p.p99_us
  end
