(** Host-name → node attribution for exporters.

    Simulated resources follow the naming conventions of [Node.create] /
    [Switch]: "cpu3", "mem3", "pci3" (or "pci3.1"), "kmem3", "nic3.0",
    and switch-port links "switch0<-n3" / "switch0->n3". *)

val node_of : string -> int option
(** The node a host name belongs to; [None] for switch-internal
    resources and unrecognized names (rendered under the fabric group).
    Switch-port links attribute to the node on their far end. *)
