(** Per-message latency attribution: the Figure 7 stage breakdown for
    every CLIC message in a recorded run.

    Pairs each message's [Msg_send] / [Msg_deliver] / [Msg_recv] probe
    events and attributes the labelled CPU spans of the sender and
    receiver to it: sender-side work goes to the latest message entered
    at the span's start, receiver-side work to the oldest message still
    in flight to that node (fragments are delivered in order).  Stage
    durations merge intervals disjointly ({!Engine.Trace.merged_length});
    the bottom-half stage subtracts the CLIC module work nested inside
    it, mirroring [Report.Figures]'s Figure 7 computation.

    With pipelined traffic, batch work shared between messages (one ISR
    draining several messages' fragments) is charged to the oldest; the
    per-message [total_us] is exact, the stage split is an attribution. *)

type stages = {
  module_tx_us : float;  (** CLIC_MODULE send-side work *)
  driver_tx_us : float;  (** driver transmit routine *)
  transit_us : float;  (** buses + wire + switch + interrupt dispatch *)
  isr_us : float;  (** interrupt service routine (driver part) *)
  bottom_half_us : float;  (** bottom half, driver part *)
  module_rx_us : float;  (** CLIC_MODULE receive work + copy to user *)
  total_us : float;  (** send syscall entry to copy-out complete *)
}

type message = {
  src : int;
  dst : int;
  port : int;
  msg_id : int;
  bytes : int;
  t_send : int;  (** ns *)
  t_deliver : int option;  (** last fragment reassembled *)
  t_recv : int option;  (** copy to receiver's user memory complete *)
  stages : stages;
}

val messages : Recorder.t -> message list
(** All messages that entered a send syscall, in send order.  Local
    (same-node) messages never emit [Msg_send] and are not included. *)

type percentiles = { p50_us : float; p90_us : float; p99_us : float }

val latency_percentiles : message list -> percentiles
(** Bucketed (power-of-two) percentiles of total latency, via
    {!Engine.Stats.Histogram}. *)

val stage_means : message list -> stages

val pp_table : Format.formatter -> message list -> unit
(** Per-message stage table plus mean row and latency percentiles. *)
