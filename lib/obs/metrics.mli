(** Time-series metrics derived from a recorded probe stream.

    Thirteen instrument families: [cpu-utilization] and
    [bus-utilization] (bucketed busy fractions from resource-occupancy
    spans), [irq-rate] (interrupts per second per NIC), [queue-depth]
    (NIC rx rings, switch egress buffers, link queues), [channel-window]
    (packets in flight per channel direction), [pool-bytes] (kernel
    staging memory in use), [msg-count] (cumulative messages sent /
    delivered per node), [switch-buffer] (shared-buffer bytes occupied
    per switch), [switch-drop] (frames dropped per switch port and
    direction), [pause] (802.3x flow control: a [.state] gauge that is
    1 while a host's transmit path is PAUSEd, plus [.tx]/[.rx] frame
    counters), [ecn-mark] (frames CE-marked per switch port), [sack]
    (acks carrying SACK blocks per channel direction) and
    [latency-quantile] (running p50/p99/p999 of message delivery
    latency per receiving node, one sample per delivery).

    Exports are deterministic: series sorted by name, fixed float
    formatting. *)

type kind = Gauge | Rate | Counter

type series = {
  s_name : string;  (** "family/instrument", e.g. "cpu-utilization/cpu0" *)
  s_kind : kind;
  s_unit : string;
  s_points : (int * float) list;  (** (t_ns, value), time-ascending *)
}

type t = { bucket_ns : int; series : series list }

val build : ?bucket_ns:int -> Recorder.t -> t
(** Derive all series.  [bucket_ns] sets the window for utilization and
    rate series; the default divides the run into ~200 buckets.
    @raise Invalid_argument if [bucket_ns <= 0]. *)

val families : t -> string list
(** Distinct instrument families present, sorted. *)

val to_csv : t -> string
(** "series,kind,unit,t_ns,value" rows. *)

val to_json : t -> string

val pp_summary : Format.formatter -> t -> unit
(** One line per series: point count, last value, peak. *)

val kind_name : kind -> string
