open Engine
open Hw

type t = {
  sim : Sim.t;
  switches : Switch.t list;
  nodes : Node.t array;
  config : Node.config;
  topo : Topology.t;
  fabric : (string * Switch.t) list list;  (* per NIC rank, prefix-keyed *)
  mutable failed : string list;  (* downed switch prefixes *)
}

(* Apply the topology's static routing table to every rank's switches,
   excluding currently-failed ones.  [via] prefixes become physical trunk
   labels by appending the rank suffix, mirroring the switch names. *)
let compile_routes ~topo ~failed fabric =
  List.iteri
    (fun rank instances ->
      List.iter (fun (_, sw) -> Switch.clear_routes sw) instances;
      List.iter
        (fun (at, dst, via) ->
          let sw = List.assoc at instances in
          let via = List.map (fun p -> p ^ string_of_int rank) via in
          Switch.set_route sw ~dst ~via)
        (Topology.routes ~excluding:failed topo))
    fabric

let create_topo ?(config = Node.default_config) ~topo () =
  let n = Topology.n topo in
  let sim = Sim.create () in
  let fabric =
    List.init config.Node.nics (fun rank ->
        let instances =
          List.map
            (fun prefix ->
              let sw =
                Switch.create sim
                  ~name:(prefix ^ string_of_int rank)
                  ~bits_per_s:config.Node.link_bits_per_s
                  ?fault:config.Node.link_fault
                  ?egress_frames:config.Node.switch_egress_frames
                  ?ingress_frames:config.Node.switch_ingress_frames
                  ?buffer:config.Node.switch_buffer
                  ~learning:(Topology.learning topo) ~ttl:(Topology.ttl topo)
                  ()
              in
              (prefix, sw))
            (Topology.switches topo)
        in
        for id = 0 to n - 1 do
          Switch.add_port (List.assoc (Topology.attach topo id) instances)
            ~node:id
        done;
        List.iter
          (fun (a, b) ->
            Switch.add_trunk (List.assoc a instances) (List.assoc b instances))
          (Topology.trunks topo);
        instances)
  in
  if not (Topology.learning topo) then compile_routes ~topo ~failed:[] fabric;
  let nodes =
    Array.init n (fun id ->
        (* Each node is handed its own attach switch per NIC rank, so the
           crash/reboot rewire path lands on the right ToR in any fabric. *)
        let switches =
          List.map
            (fun instances -> List.assoc (Topology.attach topo id) instances)
            fabric
        in
        Node.create sim ~id ~switches config)
  in
  let switches = List.concat_map (List.map snd) fabric in
  { sim; switches; nodes; config; topo; fabric; failed = [] }

let create ?config ~n () =
  if n <= 0 then invalid_arg "Cluster.create: n <= 0";
  create_topo ?config ~topo:(Topology.star ~n) ()
let topology t = t.topo

let switch t ?(rank = 0) prefix =
  match List.nth_opt t.fabric rank with
  | None -> invalid_arg (Printf.sprintf "Net.switch: no NIC rank %d" rank)
  | Some instances -> (
      match List.assoc_opt prefix instances with
      | Some sw -> sw
      | None -> invalid_arg (Printf.sprintf "Net.switch: unknown %s" prefix))

let set_failed t prefix flag =
  (match List.assoc_opt prefix (List.hd t.fabric) with
  | Some _ -> ()
  | None -> invalid_arg (Printf.sprintf "Net: unknown switch %s" prefix));
  let now_failed =
    if flag then if List.mem prefix t.failed then t.failed else t.failed @ [ prefix ]
    else List.filter (fun p -> p <> prefix) t.failed
  in
  t.failed <- now_failed;
  List.iter
    (fun instances -> Switch.set_down (List.assoc prefix instances) flag)
    t.fabric;
  if not (Topology.learning t.topo) then
    compile_routes ~topo:t.topo ~failed:t.failed t.fabric

let fail_switch t prefix = set_failed t prefix true
let restore_switch t prefix = set_failed t prefix false
let failed_switches t = t.failed
let node t i = t.nodes.(i)
let size t = Array.length t.nodes
let run t = Sim.run t.sim
let run_for t span = Sim.run_until t.sim ~limit:(Time.add (Sim.now t.sim) span)
let run_n t n = Sim.run_n t.sim n
