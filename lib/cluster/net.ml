open Engine
open Hw

type t = {
  sim : Sim.t;
  switches : Switch.t list;
  nodes : Node.t array;
  config : Node.config;
}

let create ?(config = Node.default_config) ~n () =
  if n <= 0 then invalid_arg "Cluster.create: n <= 0";
  let sim = Sim.create () in
  let switches =
    List.init config.Node.nics (fun k ->
        let sw =
          Switch.create sim
            ~name:(Printf.sprintf "switch%d" k)
            ~bits_per_s:config.Node.link_bits_per_s
            ?fault:config.Node.link_fault
            ?egress_frames:config.Node.switch_egress_frames
            ?ingress_frames:config.Node.switch_ingress_frames
            ?buffer:config.Node.switch_buffer ()
        in
        for id = 0 to n - 1 do
          Switch.add_port sw ~node:id
        done;
        sw)
  in
  let nodes =
    Array.init n (fun id -> Node.create sim ~id ~switches config)
  in
  { sim; switches; nodes; config }

let node t i = t.nodes.(i)
let size t = Array.length t.nodes
let run t = Sim.run t.sim
let run_for t span = Sim.run_until t.sim ~limit:(Time.add (Sim.now t.sim) span)
let run_n t n = Sim.run_n t.sim n
