(* A declarative fabric description: logical switches (name prefixes),
   trunks between them, and a host-to-switch attachment map.  Pure data —
   Net.create_topo instantiates it once per NIC rank, naming each switch
   [prefix ^ string_of_int rank] (the star's single "switch" prefix thus
   yields "switch0", byte-identical to the historical wiring). *)

type t = {
  n : int;
  switches : string list;
  trunks : (string * string) list;
  hosts : string array;  (* node id -> switch prefix *)
  learning : bool;
  ttl : int;
}

let n t = t.n
let switches t = t.switches
let trunks t = t.trunks

let attach t id =
  if id < 0 || id >= t.n then invalid_arg "Topology.attach: bad node id";
  t.hosts.(id)

let learning t = t.learning
let ttl t = t.ttl

(* Trunk declaration order is preserved here, which keeps BFS visit order
   — and with it every ECMP next-hop list — deterministic. *)
let neighbours t name =
  List.filter_map
    (fun (a, b) ->
      if a = name then Some b else if b = name then Some a else None)
    t.trunks

(* BFS hop counts from [root] over the trunk graph, ignoring [excluding]
   (failed switches). *)
let distances ?(excluding = []) t root =
  let dist = Hashtbl.create 16 in
  if not (List.mem root excluding) then begin
    Hashtbl.replace dist root 0;
    let q = Queue.create () in
    Queue.add root q;
    while not (Queue.is_empty q) do
      let x = Queue.take q in
      let d = Hashtbl.find dist x in
      List.iter
        (fun y ->
          if (not (List.mem y excluding)) && not (Hashtbl.mem dist y) then begin
            Hashtbl.replace dist y (d + 1);
            Queue.add y q
          end)
        (neighbours t x)
    done
  end;
  dist

let diameter t =
  List.fold_left
    (fun acc s ->
      let dist = distances t s in
      Hashtbl.fold (fun _ d acc -> max acc d) dist acc)
    0 t.switches

let validate t =
  if t.n <= 0 then invalid_arg "Topology: n <= 0";
  if t.switches = [] then invalid_arg "Topology: no switches";
  if t.ttl < 1 then invalid_arg "Topology: ttl < 1";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s then
        invalid_arg (Printf.sprintf "Topology: duplicate switch %s" s);
      Hashtbl.add seen s ())
    t.switches;
  Array.iteri
    (fun id s ->
      if not (Hashtbl.mem seen s) then
        invalid_arg
          (Printf.sprintf "Topology: host %d attached to unknown switch %s" id
             s))
    t.hosts;
  let pairs = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      if a = b then invalid_arg (Printf.sprintf "Topology: self-trunk %s" a);
      List.iter
        (fun s ->
          if not (Hashtbl.mem seen s) then
            invalid_arg (Printf.sprintf "Topology: trunk to unknown switch %s" s))
        [ a; b ];
      let key = if a < b then (a, b) else (b, a) in
      if Hashtbl.mem pairs key then
        invalid_arg (Printf.sprintf "Topology: duplicate trunk %s=%s" a b);
      Hashtbl.add pairs key ())
    t.trunks;
  let reach = distances t (List.hd t.switches) in
  List.iter
    (fun s ->
      if not (Hashtbl.mem reach s) then
        invalid_arg (Printf.sprintf "Topology: switch %s is disconnected" s))
    t.switches;
  (* A frame crossing the longest shortest path traverses diameter + 1
     switches; a tighter TTL would cut legitimate routes. *)
  if t.ttl < diameter t + 1 then
    invalid_arg "Topology: ttl below the fabric diameter"

let make ?(learning = false) ?(ttl = 16) ~switches ~trunks ~hosts () =
  let t =
    { n = Array.length hosts; switches; trunks; hosts; learning; ttl }
  in
  validate t;
  t

(* All-pairs static routing: one BFS per host-bearing switch.  For each
   other switch X the ECMP next-hop set is every neighbour strictly closer
   to the destination's switch — loop-free by construction, since the
   distance decreases at every hop. *)
let routes ?(excluding = []) t =
  let alive = List.filter (fun s -> not (List.mem s excluding)) t.switches in
  let ids = List.init t.n Fun.id in
  List.concat_map
    (fun s ->
      let hosts_here = List.filter (fun id -> t.hosts.(id) = s) ids in
      if hosts_here = [] then []
      else
        let dist = distances ~excluding t s in
        List.concat_map
          (fun x ->
            if x = s then []
            else
              match Hashtbl.find_opt dist x with
              | None -> []  (* destination unreachable from x *)
              | Some dx ->
                  let via =
                    List.filter
                      (fun y ->
                        match Hashtbl.find_opt dist y with
                        | Some dy -> dy = dx - 1
                        | None -> false)
                      (neighbours t x)
                  in
                  List.map (fun d -> (x, d, via)) hosts_here)
          alive)
    alive

let star ~n =
  make ~switches:[ "switch" ] ~trunks:[]
    ~hosts:(Array.make n "switch")
    ()

let linear ?learning ?ttl ~racks ~per_rack () =
  if racks <= 0 then invalid_arg "Topology.linear: racks <= 0";
  if per_rack <= 0 then invalid_arg "Topology.linear: per_rack <= 0";
  let name r = Printf.sprintf "s%d." r in
  let switches = List.init racks name in
  let trunks = List.init (racks - 1) (fun r -> (name r, name (r + 1))) in
  let hosts =
    Array.init (racks * per_rack) (fun id -> name (id / per_rack))
  in
  let ttl = match ttl with Some v -> v | None -> max 16 (racks + 1) in
  make ?learning ~ttl ~switches ~trunks ~hosts ()

let leaf_spine ?learning ?ttl ~racks ~per_rack ~spines () =
  if racks <= 0 then invalid_arg "Topology.leaf_spine: racks <= 0";
  if per_rack <= 0 then invalid_arg "Topology.leaf_spine: per_rack <= 0";
  if spines <= 0 then invalid_arg "Topology.leaf_spine: spines <= 0";
  let tor r = Printf.sprintf "tor%d." r in
  let spine s = Printf.sprintf "spine%d." s in
  let switches = List.init racks tor @ List.init spines spine in
  let trunks =
    List.concat
      (List.init racks (fun r ->
           List.init spines (fun s -> (tor r, spine s))))
  in
  let hosts =
    Array.init (racks * per_rack) (fun id -> tor (id / per_rack))
  in
  make ?learning ?ttl ~switches ~trunks ~hosts ()

(* The canonical k-ary fat tree (Al-Fahad et al. shape): k pods of k/2
   edge and k/2 aggregation switches, (k/2)^2 cores, k/2 hosts per edge —
   k^3/4 hosts with full bisection bandwidth and k/2-way ECMP at every
   level. *)
let fat_tree ?learning ?ttl ~k () =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Topology.fat_tree: k must be even and >= 2";
  let h = k / 2 in
  let edge p e = Printf.sprintf "e%d_%d." p e in
  let agg p a = Printf.sprintf "a%d_%d." p a in
  let core c = Printf.sprintf "c%d." c in
  let pods =
    List.concat
      (List.init k (fun p ->
           List.init h (edge p) @ List.init h (agg p)))
  in
  let switches = pods @ List.init (h * h) core in
  let trunks =
    List.concat
      (List.init k (fun p ->
           List.concat
             (List.init h (fun e -> List.init h (fun a -> (edge p e, agg p a))))
           @ List.concat
               (List.init h (fun a ->
                    List.init h (fun j -> (agg p a, core ((a * h) + j)))))))
  in
  let hosts_per_pod = h * h in
  let hosts =
    Array.init (k * hosts_per_pod) (fun id ->
        let p = id / hosts_per_pod in
        let e = id mod hosts_per_pod / h in
        edge p e)
  in
  make ?learning ?ttl ~switches ~trunks ~hosts ()
