open Engine
open Hw
open Os_model
open Proto

type config = {
  mtu : int;
  nics : int;
  link_bits_per_s : float;
  coalesce : Nic.coalesce;
  nic_fragmentation : bool;
  nic_internal_bytes_per_s : float;
  nic_firmware_per_frame : Time.span;
  pci_efficiency : float;
  pci_width_bytes : int;
  cpu_copy_bytes_per_s : float;
  membus_bytes_per_s : float;
  kmem_capacity : int;
  irq_dispatch : Time.span;
  clic_params : Clic.Params.t;
  driver_params : Driver.params;
  tcp_params : Tcp.params;
  trace : bool;
  link_fault : (unit -> Fault.t) option;
      (* per-link fault injection (tests of the reliability layers) *)
  pci_per_nic : bool;
      (* a separate PCI segment per NIC (server chipsets); with the default
         shared bus, channel bonding is capped by the bus itself *)
  switch_egress_frames : int option;
      (* finite switch output buffers; None = unbounded *)
  switch_ingress_frames : int option;
      (* finite switch uplink FIFOs; blind-dumping NICs lose frames *)
  switch_buffer : Switch.buffer option;
      (* shared-buffer ledger + 802.3x PAUSE generation at the switch *)
  nic_pause : Nic.pause option;
      (* 802.3x flow control at the NICs; None = legacy ignore-PAUSE MAC *)
}

let default_config =
  {
    mtu = Eth_frame.standard_mtu;
    nics = 1;
    link_bits_per_s = 1e9;
    coalesce = Nic.default_coalesce;
    nic_fragmentation = false;
    nic_internal_bytes_per_s = 400e6;
    nic_firmware_per_frame = Time.ns 800;
    pci_efficiency = 0.57;
    pci_width_bytes = 4;
    cpu_copy_bytes_per_s = 300e6;
    membus_bytes_per_s = 800e6;
    kmem_capacity = 4 * 1024 * 1024;
    irq_dispatch = Time.us 5.;
    clic_params = Clic.Params.default;
    driver_params = Driver.default_params;
    tcp_params = Tcp.default_params;
    trace = false;
    link_fault = None;
    pci_per_nic = false;
    switch_egress_frames = None;
    switch_ingress_frames = None;
    switch_buffer = None;
    nic_pause = None;
  }

let gigabit_jumbo config = { config with mtu = Eth_frame.jumbo_mtu }

type t = {
  id : int;
  config : config;
  switches : Switch.t list;
  cpu_ : Cpu.t;
  membus : Bus.t;
  pci_for : int -> Bus.t;
  mutable env : Hostenv.t;
  mutable nics : Nic.t list;
  mutable eths : Ethernet.t list;
  mutable intr : Interrupt.t;
  mutable ip : Ip.t;
  mutable tcp : Tcp.t;
  mutable udp : Udp.t;
  mutable clic : Clic.Api.t;
  trace : Trace.t option;
  mutable epoch : int;
  mutable up : bool;
  mutable crashes : int;
}

(* One OS boot: everything from the scheduler down to the protocol stacks
   is kernel state and is built afresh; the CPU, buses and switch ports
   are hardware and survive across boots.  [epoch = 0] is the initial
   boot (switch ports are created); later epochs re-point the existing
   downlinks at the fresh NICs and suffix the kernel pool's name so the
   per-boot accounting streams stay distinct. *)
let boot sim ~id ~switches ~epoch ~cpu ~membus ~pci_for ~trace
    (config : config) =
  let sched = Sched.create sim ~cpu () in
  let syscall = Syscall.create cpu in
  let soft_mark =
    int_of_float
      (config.clic_params.Clic.Params.kmem_soft_frac
      *. float_of_int config.kmem_capacity)
  in
  let hard_mark =
    int_of_float
      (config.clic_params.Clic.Params.kmem_hard_frac
      *. float_of_int config.kmem_capacity)
  in
  let kmem =
    Kmem.create
      ~name:
        (if epoch = 0 then Printf.sprintf "kmem%d" id
         else Printf.sprintf "kmem%d.e%d" id epoch)
      ~capacity:config.kmem_capacity ~soft_mark ~hard_mark ()
  in
  let intr = Interrupt.create sim ~cpu ~dispatch_latency:config.irq_dispatch () in
  let bh = Bottom_half.create sim ~cpu () in
  let make_nic k =
    let nic =
      Nic.create sim
        ~name:(Printf.sprintf "nic%d.%d" id k)
        ~mtu:config.mtu ~pci:(pci_for k) ~membus ~coalesce:config.coalesce
        ~internal_bytes_per_s:config.nic_internal_bytes_per_s
        ~firmware_per_frame:config.nic_firmware_per_frame
        ~fragmentation:config.nic_fragmentation ?pause:config.nic_pause ()
    in
    let switch = List.nth switches k in
    Nic.attach_uplink nic (Switch.uplink switch ~node:id);
    if epoch = 0 then
      Switch.connect_node switch ~node:id (Nic.rx_from_wire nic)
    else Switch.rewire_node switch ~node:id (Nic.rx_from_wire nic);
    (* Kernel-pool backpressure, last line: past the hard watermark the
       NIC drops ingress frames (counted) instead of exhausting the pool —
       the channels' retransmission covers the loss. *)
    Nic.set_rx_admission nic (fun ~bytes:_ -> Kmem.level kmem <> `Hard);
    let driver =
      Driver.create sim ~cpu ~intr ~bh ~nic ~params:config.driver_params
        ?trace ()
    in
    let env =
      Hostenv.make ~sim ~node:id ~cpu ~membus ~sched ~syscall ~driver ~kmem
    in
    let eth = Ethernet.create env () in
    (nic, env, eth)
  in
  let parts = List.init config.nics make_nic in
  let nics = List.map (fun (n, _, _) -> n) parts in
  let envs = List.map (fun (_, e, _) -> e) parts in
  let eths = List.map (fun (_, _, e) -> e) parts in
  let env = List.hd envs in
  (* The TCP/IP suite rides the first NIC; CLIC bonds across all of them. *)
  let ip = Ip.create (List.hd eths) () in
  let tcp = Tcp.create ip ~params:config.tcp_params () in
  let udp = Udp.create ip () in
  let clic_module =
    Clic.Clic_module.create env ~params:config.clic_params ~epoch ?trace eths
  in
  let clic = Clic.Api.create clic_module in
  (env, nics, eths, intr, ip, tcp, udp, clic)

let create sim ~id ~switches (config : config) =
  if config.nics <= 0 then invalid_arg "Node.create: nics <= 0";
  if List.length switches < config.nics then
    invalid_arg "Node.create: not enough switches for the NICs";
  let cpu =
    Cpu.create sim
      ~name:(Printf.sprintf "cpu%d" id)
      ~copy_bytes_per_s:config.cpu_copy_bytes_per_s ()
  in
  let membus =
    Membus.create sim
      ~name:(Printf.sprintf "mem%d" id)
      ~bytes_per_s:config.membus_bytes_per_s ()
  in
  let shared_pci =
    Pci.create sim
      ~name:(Printf.sprintf "pci%d" id)
      ~efficiency:config.pci_efficiency
      ~width_bytes:config.pci_width_bytes ()
  in
  let per_nic_pci = Hashtbl.create 4 in
  let pci_for k =
    if config.pci_per_nic && k > 0 then (
      match Hashtbl.find_opt per_nic_pci k with
      | Some pci -> pci
      | None ->
          let pci =
            Pci.create sim
              ~name:(Printf.sprintf "pci%d.%d" id k)
              ~efficiency:config.pci_efficiency
              ~width_bytes:config.pci_width_bytes ()
          in
          Hashtbl.add per_nic_pci k pci;
          pci)
    else shared_pci
  in
  let trace = if config.trace then Some (Trace.create sim) else None in
  let env, nics, eths, intr, ip, tcp, udp, clic =
    boot sim ~id ~switches ~epoch:0 ~cpu ~membus ~pci_for ~trace config
  in
  {
    id;
    config;
    switches;
    cpu_ = cpu;
    membus;
    pci_for;
    env;
    nics;
    eths;
    intr;
    ip;
    tcp;
    udp;
    clic;
    trace;
    epoch = 0;
    up = true;
    crashes = 0;
  }

let cpu t = t.env.Hostenv.cpu
let spawn t f = Process.spawn t.env.Hostenv.sim f
let is_up t = t.up
let epoch t = t.epoch
let crashes t = t.crashes

(* A crash is instantaneous: the kernel's protocol state is discarded
   (channels torn down, staged backlog returned to the pool so its
   accounting balances) and the NICs power off — frames in flight toward
   the node are lost silently, exactly like pulling the plug.  Peers only
   notice through their own retry caps. *)
let crash t =
  if not t.up then invalid_arg "Node.crash: already down";
  t.up <- false;
  t.crashes <- t.crashes + 1;
  Clic.Clic_module.shutdown (Clic.Api.kernel t.clic);
  List.iter Nic.power_off t.nics;
  List.iter
    (fun eth -> Driver.kill (Ethernet.env eth).Hostenv.driver)
    t.eths

(* Reboot builds an entirely fresh kernel on the surviving hardware, one
   epoch up: peers recognise the higher epoch in arriving frames, discard
   their pre-crash channel state, and re-establish. *)
let reboot t =
  if t.up then invalid_arg "Node.reboot: still up";
  let sim = t.env.Hostenv.sim in
  t.epoch <- t.epoch + 1;
  let env, nics, eths, intr, ip, tcp, udp, clic =
    boot sim ~id:t.id ~switches:t.switches ~epoch:t.epoch ~cpu:t.cpu_
      ~membus:t.membus ~pci_for:t.pci_for ~trace:t.trace t.config
  in
  t.env <- env;
  t.nics <- nics;
  t.eths <- eths;
  t.intr <- intr;
  t.ip <- ip;
  t.tcp <- tcp;
  t.udp <- udp;
  t.clic <- clic;
  t.up <- true
