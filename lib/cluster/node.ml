open Engine
open Hw
open Os_model
open Proto

type config = {
  mtu : int;
  nics : int;
  link_bits_per_s : float;
  coalesce : Nic.coalesce;
  nic_fragmentation : bool;
  nic_internal_bytes_per_s : float;
  nic_firmware_per_frame : Time.span;
  pci_efficiency : float;
  pci_width_bytes : int;
  cpu_copy_bytes_per_s : float;
  membus_bytes_per_s : float;
  kmem_capacity : int;
  irq_dispatch : Time.span;
  clic_params : Clic.Params.t;
  driver_params : Driver.params;
  tcp_params : Tcp.params;
  trace : bool;
  link_fault : (unit -> Fault.t) option;
      (* per-link fault injection (tests of the reliability layers) *)
  pci_per_nic : bool;
      (* a separate PCI segment per NIC (server chipsets); with the default
         shared bus, channel bonding is capped by the bus itself *)
  switch_egress_frames : int option;
      (* finite switch output buffers; None = unbounded *)
}

let default_config =
  {
    mtu = Eth_frame.standard_mtu;
    nics = 1;
    link_bits_per_s = 1e9;
    coalesce = Nic.default_coalesce;
    nic_fragmentation = false;
    nic_internal_bytes_per_s = 400e6;
    nic_firmware_per_frame = Time.ns 800;
    pci_efficiency = 0.57;
    pci_width_bytes = 4;
    cpu_copy_bytes_per_s = 300e6;
    membus_bytes_per_s = 800e6;
    kmem_capacity = 4 * 1024 * 1024;
    irq_dispatch = Time.us 5.;
    clic_params = Clic.Params.default;
    driver_params = Driver.default_params;
    tcp_params = Tcp.default_params;
    trace = false;
    link_fault = None;
    pci_per_nic = false;
    switch_egress_frames = None;
  }

let gigabit_jumbo config = { config with mtu = Eth_frame.jumbo_mtu }

type t = {
  id : int;
  config : config;
  env : Hostenv.t;
  nics : Nic.t list;
  eths : Ethernet.t list;
  intr : Interrupt.t;
  ip : Ip.t;
  tcp : Tcp.t;
  udp : Udp.t;
  clic : Clic.Api.t;
  trace : Trace.t option;
}

let create sim ~id ~switches (config : config) =
  if config.nics <= 0 then invalid_arg "Node.create: nics <= 0";
  if List.length switches < config.nics then
    invalid_arg "Node.create: not enough switches for the NICs";
  let cpu =
    Cpu.create sim
      ~name:(Printf.sprintf "cpu%d" id)
      ~copy_bytes_per_s:config.cpu_copy_bytes_per_s ()
  in
  let membus =
    Membus.create sim
      ~name:(Printf.sprintf "mem%d" id)
      ~bytes_per_s:config.membus_bytes_per_s ()
  in
  let shared_pci =
    Pci.create sim
      ~name:(Printf.sprintf "pci%d" id)
      ~efficiency:config.pci_efficiency
      ~width_bytes:config.pci_width_bytes ()
  in
  let pci_for k =
    if config.pci_per_nic && k > 0 then
      Pci.create sim
        ~name:(Printf.sprintf "pci%d.%d" id k)
        ~efficiency:config.pci_efficiency
        ~width_bytes:config.pci_width_bytes ()
    else shared_pci
  in
  let sched = Sched.create sim ~cpu () in
  let syscall = Syscall.create cpu in
  let kmem =
    Kmem.create
      ~name:(Printf.sprintf "kmem%d" id)
      ~capacity:config.kmem_capacity ()
  in
  let intr = Interrupt.create sim ~cpu ~dispatch_latency:config.irq_dispatch () in
  let bh = Bottom_half.create sim ~cpu () in
  let trace = if config.trace then Some (Trace.create sim) else None in
  let make_nic k =
    let nic =
      Nic.create sim
        ~name:(Printf.sprintf "nic%d.%d" id k)
        ~mtu:config.mtu ~pci:(pci_for k) ~membus ~coalesce:config.coalesce
        ~internal_bytes_per_s:config.nic_internal_bytes_per_s
        ~firmware_per_frame:config.nic_firmware_per_frame
        ~fragmentation:config.nic_fragmentation ()
    in
    let switch = List.nth switches k in
    Nic.attach_uplink nic (Switch.uplink switch ~node:id);
    Switch.connect_node switch ~node:id (Nic.rx_from_wire nic);
    let driver =
      Driver.create sim ~cpu ~intr ~bh ~nic ~params:config.driver_params
        ?trace ()
    in
    let env =
      Hostenv.make ~sim ~node:id ~cpu ~membus ~sched ~syscall ~driver ~kmem
    in
    let eth = Ethernet.create env () in
    (nic, env, eth)
  in
  let parts = List.init config.nics make_nic in
  let nics = List.map (fun (n, _, _) -> n) parts in
  let envs = List.map (fun (_, e, _) -> e) parts in
  let eths = List.map (fun (_, _, e) -> e) parts in
  let env = List.hd envs in
  (* The TCP/IP suite rides the first NIC; CLIC bonds across all of them. *)
  let ip = Ip.create (List.hd eths) () in
  let tcp = Tcp.create ip ~params:config.tcp_params () in
  let udp = Udp.create ip () in
  let clic_module =
    Clic.Clic_module.create env ~params:config.clic_params ?trace eths
  in
  let clic = Clic.Api.create clic_module in
  { id; config; env; nics; eths; intr; ip; tcp; udp; clic; trace }

let cpu t = t.env.Hostenv.cpu
let spawn t f = Process.spawn t.env.Hostenv.sim f
