(** A complete cluster node: hardware, OS and both protocol stacks.

    One node owns a CPU, a memory bus, a PCI bus, one or more NICs (channel
    bonding uses one switch per NIC rank), and runs the TCP/IP suite and
    CLIC side by side on the same hardware — which is how the paper's
    comparisons are made fair. *)

open Engine
open Hw
open Os_model
open Proto

type config = {
  mtu : int;
  nics : int;  (** NICs per node (channel bonding when > 1) *)
  link_bits_per_s : float;
  coalesce : Nic.coalesce;
  nic_fragmentation : bool;
  nic_internal_bytes_per_s : float;
  nic_firmware_per_frame : Time.span;
  pci_efficiency : float;
  pci_width_bytes : int;  (** 4 = the testbed's 32-bit PCI; 8 = 64-bit *)
  cpu_copy_bytes_per_s : float;
  membus_bytes_per_s : float;
  kmem_capacity : int;
  irq_dispatch : Time.span;
  clic_params : Clic.Params.t;
  driver_params : Driver.params;
  tcp_params : Tcp.params;
  trace : bool;  (** attach a pipeline trace (Figure 7) *)
  link_fault : (unit -> Fault.t) option;
      (** per-link fault injection, for exercising the reliability layers *)
  pci_per_nic : bool;
      (** give each NIC its own PCI segment (server chipsets); on the
          default shared 33 MHz bus, bonded NICs are capped by the bus *)
  switch_egress_frames : int option;
      (** finite switch output buffers (tail drop); [None] = unbounded *)
  switch_ingress_frames : int option;
      (** finite switch uplink FIFOs: NICs transmitting without
          backpressure lose frames to {!Hw.Switch.ingress_drops} *)
  switch_buffer : Hw.Switch.buffer option;
      (** shared-buffer ledger and 802.3x PAUSE generation at the switch *)
  nic_pause : Hw.Nic.pause option;
      (** 802.3x flow control at the NICs; [None] = a legacy MAC that
          ignores PAUSE frames and blind-dumps into full uplinks *)
}

val default_config : config
(** The paper's testbed: Gigabit Ethernet, 33 MHz/32-bit PCI, one NIC,
    MTU 1500, coalesced interrupts, CLIC path 2 (0-copy). *)

val gigabit_jumbo : config -> config
(** Same but MTU 9000. *)

type t = {
  id : int;
  config : config;
  switches : Switch.t list;
  cpu_ : Cpu.t;  (** hardware: survives crashes (use {!cpu}) *)
  membus : Bus.t;
  pci_for : int -> Bus.t;
  mutable env : Hostenv.t;  (** primary host environment (first NIC's driver) *)
  mutable nics : Nic.t list;
  mutable eths : Ethernet.t list;
  mutable intr : Interrupt.t;
  mutable ip : Ip.t;
  mutable tcp : Tcp.t;
  mutable udp : Udp.t;
  mutable clic : Clic.Api.t;
  trace : Trace.t option;
  mutable epoch : int;  (** boot count; bumped by {!reboot} *)
  mutable up : bool;
  mutable crashes : int;
}

val create : Sim.t -> id:int -> switches:Switch.t list -> config -> t
(** Wires NIC [k] to [List.nth switches k]; the switches list must be at
    least [config.nics] long and ports for [id] must already exist. *)

val cpu : t -> Cpu.t
val spawn : t -> (unit -> unit) -> unit
(** Start an application process on this node. *)

(** {1 Crash and recovery} *)

val crash : t -> unit
(** Pull the plug: the CLIC module shuts down (channels torn down, staged
    backlog returned to the kernel pool so its accounting balances), the
    NICs power off (in-flight frames toward the node are lost silently)
    and the drivers stop.  Peers notice only through their own
    {!Clic.Params.max_retries} caps.  Application processes of the dead
    node that were blocked inside the kernel are woken with
    {!Clic.Channel.Dead}.
    @raise Invalid_argument if the node is already down. *)

val reboot : t -> unit
(** Build a fresh kernel on the surviving hardware with the boot epoch
    bumped by one: switch downlinks are re-pointed at the new NICs, and
    peers recognise the higher epoch in arriving frames, discard their
    pre-crash channel state for this node and re-establish.  All mutable
    fields of [t] are replaced.
    @raise Invalid_argument if the node is up (call {!crash} first). *)

val is_up : t -> bool
val epoch : t -> int
val crashes : t -> int
