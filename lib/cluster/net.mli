(** A switched cluster of nodes.

    [create ~n ()] builds [n] identical nodes around one Gigabit Ethernet
    switch per NIC rank (channel bonding uses parallel switched networks,
    the "several network cards ... when a switch is used" arrangement of
    the paper's Section 5). *)

open Engine
open Hw

type t = {
  sim : Sim.t;
  switches : Switch.t list;
  nodes : Node.t array;
  config : Node.config;
}

val create : ?config:Node.config -> n:int -> unit -> t
val node : t -> int -> Node.t
val size : t -> int

val run : t -> unit
(** Runs the simulation to quiescence. *)

val run_for : t -> Time.span -> unit

val run_n : t -> int -> int
(** Drains at most [n] events in one batch and returns how many fired;
    see {!Engine.Sim.run_n}.  Lets a driver interleave cluster simulation
    with external work (progress reporting, bounded-step debugging)
    without per-event call overhead. *)
