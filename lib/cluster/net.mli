(** A switched cluster of nodes over an arbitrary fabric.

    [create ~n ()] builds [n] identical nodes around one Gigabit Ethernet
    switch per NIC rank (channel bonding uses parallel switched networks,
    the "several network cards ... when a switch is used" arrangement of
    the paper's Section 5) — it is exactly [create_topo] over
    {!Topology.star}.

    [create_topo ~topo ()] instantiates any {!Topology}: one physical
    switch per (logical switch × NIC rank), trunks between them, each node
    attached to its own ToR per rank (so crash/reboot rewiring follows the
    fabric), and — unless the topology is a learning one — the compiled
    all-pairs ECMP routes installed on every switch. *)

open Engine
open Hw

type t = {
  sim : Sim.t;
  switches : Switch.t list;
      (** every physical switch, rank-major in topology declaration order
          (the legacy star exposes exactly one per NIC rank, as before) *)
  nodes : Node.t array;
  config : Node.config;
  topo : Topology.t;
  fabric : (string * Switch.t) list list;
      (** per NIC rank: topology prefix → physical switch *)
  mutable failed : string list;  (** currently-failed switch prefixes *)
}

val create : ?config:Node.config -> n:int -> unit -> t
val create_topo : ?config:Node.config -> topo:Topology.t -> unit -> t
val topology : t -> Topology.t

val switch : t -> ?rank:int -> string -> Switch.t
(** The physical switch for a topology prefix at a NIC rank (default 0).
    @raise Invalid_argument on unknown prefixes or ranks. *)

val fail_switch : t -> string -> unit
(** Powers the named switch down at every rank ({!Switch.set_down}) and —
    on static-routed fabrics — recompiles routes around the failure:
    surviving equal-cost paths absorb the traffic, destinations with no
    remaining path become unroutable.  Idempotent. *)

val restore_switch : t -> string -> unit
(** Powers the switch back up and recompiles routes to use it again. *)

val failed_switches : t -> string list

val node : t -> int -> Node.t
val size : t -> int

val run : t -> unit
(** Runs the simulation to quiescence. *)

val run_for : t -> Time.span -> unit

val run_n : t -> int -> int
(** Drains at most [n] events in one batch and returns how many fired;
    see {!Engine.Sim.run_n}.  Lets a driver interleave cluster simulation
    with external work (progress reporting, bounded-step debugging)
    without per-event call overhead. *)
