open Engine
open Hw

type stats = {
  sent : int;
  delivered : int;
  bytes : int;
  stranded : int;
  elapsed : Time.span;
}

type tally = {
  mutable t_sent : int;
  mutable t_delivered : int;
  mutable t_bytes : int;
  mutable t_first : Time.t option;
  mutable t_last : Time.t;
}

let fresh_tally () =
  { t_sent = 0; t_delivered = 0; t_bytes = 0; t_first = None; t_last = 0 }

let note_send tally now =
  tally.t_sent <- tally.t_sent + 1;
  if tally.t_first = None then tally.t_first <- Some now

let note_delivery tally now bytes =
  tally.t_delivered <- tally.t_delivered + 1;
  tally.t_bytes <- tally.t_bytes + bytes;
  tally.t_last <- now

let stats_of tally =
  {
    sent = tally.t_sent;
    delivered = tally.t_delivered;
    bytes = tally.t_bytes;
    stranded = (if tally.t_sent > tally.t_delivered then
                  tally.t_sent - tally.t_delivered
                else 0);
    elapsed =
      (match tally.t_first with
      | Some first -> Time.diff tally.t_last first
      | None -> 0);
  }

(* A receiver loop per node: counts everything that arrives on the port.
   Loops left parked in a final blocking receive when traffic ends are by
   design — the simulation drains around them; [stats.stranded] counts the
   messages those parked receivers were still owed. *)
let spawn_receivers c ~port tally =
  for i = 0 to Net.size c - 1 do
    let node = Net.node c i in
    Node.spawn node (fun () ->
        let rec loop () =
          let msg = Clic.Api.recv node.Node.clic ~port in
          note_delivery tally (Sim.now c.Net.sim)
            msg.Clic.Clic_module.msg_bytes;
          loop ()
        in
        loop ())
  done

let uniform_random c ~seed ~messages_per_node ?(min_size = 1)
    ?(max_size = 16384) ?(port = 70) () =
  if min_size < 0 || max_size < min_size then
    invalid_arg "Workload.uniform_random: bad size range";
  let n = Net.size c in
  if n < 2 then invalid_arg "Workload.uniform_random: need >= 2 nodes";
  let tally = fresh_tally () in
  spawn_receivers c ~port tally;
  let root_rng = Rng.create ~seed in
  for i = 0 to n - 1 do
    let rng = Rng.split root_rng in
    let node = Net.node c i in
    Node.spawn node (fun () ->
        for _ = 1 to messages_per_node do
          let dst =
            let d = Rng.int rng (n - 1) in
            if d >= i then d + 1 else d
          in
          let size = min_size + Rng.int rng (max_size - min_size + 1) in
          note_send tally (Sim.now c.Net.sim);
          Clic.Api.send node.Node.clic ~dst ~port size
        done)
  done;
  Net.run c;
  stats_of tally

let hotspot c ~seed ~target ?senders ~messages_per_node ?(size = 4096)
    ?(port = 71) () =
  let n = Net.size c in
  if target < 0 || target >= n then invalid_arg "Workload.hotspot: bad target";
  let is_sender =
    match senders with
    | None -> fun i -> i <> target
    | Some ids ->
        List.iter
          (fun i ->
            if i < 0 || i >= n || i = target then
              invalid_arg "Workload.hotspot: bad sender id")
          ids;
        fun i -> List.mem i ids
  in
  let tally = fresh_tally () in
  spawn_receivers c ~port tally;
  let root_rng = Rng.create ~seed in
  for i = 0 to n - 1 do
    if is_sender i then begin
      let rng = Rng.split root_rng in
      let node = Net.node c i in
      Node.spawn node (fun () ->
          (* desynchronize the stampede a little, like real senders *)
          Process.delay (Rng.int rng 50);
          for _ = 1 to messages_per_node do
            note_send tally (Sim.now c.Net.sim);
            Clic.Api.send node.Node.clic ~dst:target ~port size
          done)
    end
  done;
  Net.run c;
  stats_of tally

let ring c ~rounds ?(size = 8192) ?(port = 72) () =
  let n = Net.size c in
  if n < 2 then invalid_arg "Workload.ring: need >= 2 nodes";
  let tally = fresh_tally () in
  for i = 0 to n - 1 do
    let node = Net.node c i in
    let next = (i + 1) mod n in
    Node.spawn node (fun () ->
        for _ = 1 to rounds do
          note_send tally (Sim.now c.Net.sim);
          Clic.Api.send node.Node.clic ~dst:next ~port size;
          let msg = Clic.Api.recv node.Node.clic ~port in
          note_delivery tally (Sim.now c.Net.sim)
            msg.Clic.Clic_module.msg_bytes
        done)
  done;
  Net.run c;
  stats_of tally

(* --------------------------------------------------------------- *)
(* Open-loop request-response workloads with tail-latency accounting *)

type arrival =
  | Poisson of { mean_gap : Time.span }
  | Pareto of { shape : float; min_gap : Time.span }

let validate_arrival = function
  | Poisson { mean_gap } ->
      if mean_gap <= 0 then invalid_arg "Workload: Poisson mean_gap <= 0"
  | Pareto { shape; min_gap } ->
      if shape <= 1.0 then
        invalid_arg "Workload: Pareto shape <= 1 (mean inter-arrival \
                     time would not exist)";
      if min_gap <= 0 then invalid_arg "Workload: Pareto min_gap <= 0"

let mean_gap_of = function
  | Poisson { mean_gap } -> float_of_int mean_gap
  | Pareto { shape; min_gap } ->
      shape *. float_of_int min_gap /. (shape -. 1.)

let draw_gap rng = function
  | Poisson { mean_gap } ->
      let g =
        int_of_float (Rng.exponential rng ~mean:(float_of_int mean_gap))
      in
      if g < 1 then 1 else g
  | Pareto { shape; min_gap } ->
      let g =
        int_of_float (Rng.pareto rng ~shape ~scale:(float_of_int min_gap))
      in
      if g < 1 then 1 else g

type slo = {
  slo_requests : int;
  slo_completed : int;
  slo_timeouts : int;
  slo_stranded : int;
  slo_p50_us : float;
  slo_p99_us : float;
  slo_p999_us : float;
  slo_mean_us : float;
  slo_max_us : float;
  slo_goodput_mbps : float;
  slo_elapsed : Time.span;
  slo_samples : (Time.t * float) array;
}

let quantile samples p =
  if p < 0. || p > 100. then
    invalid_arg "Workload.quantile: percentile outside [0,100]";
  let n = Array.length samples in
  if n = 0 then 0.
  else begin
    let a = Array.copy samples in
    Array.sort Float.compare a;
    a.(Stdlib.min (n - 1) (int_of_float (p /. 100. *. float_of_int n)))
  end

(* Mutable scoreboard shared by the dispatcher, pair senders and response
   listeners of one open-loop run. *)
type scoreboard = {
  mutable sb_requests : int;
  mutable sb_completed : int;
  mutable sb_timeouts : int;
  mutable sb_samples : (Time.t * float) list;  (* completion order *)
}

let slo_of sb tally ~resp_size =
  let samples = Array.of_list (List.rev sb.sb_samples) in
  let lats = Array.map snd samples in
  let n = Array.length lats in
  let mean =
    if n = 0 then 0. else Array.fold_left ( +. ) 0. lats /. float_of_int n
  in
  let max_ = Array.fold_left Float.max 0. lats in
  let elapsed =
    match tally.t_first with
    | Some first -> Time.diff tally.t_last first
    | None -> 0
  in
  let goodput =
    if elapsed > 0 then
      float_of_int (sb.sb_completed * resp_size * 8)
      /. Time.to_s elapsed /. 1e6
    else 0.
  in
  {
    slo_requests = sb.sb_requests;
    slo_completed = sb.sb_completed;
    slo_timeouts = sb.sb_timeouts;
    slo_stranded = sb.sb_requests - sb.sb_completed;
    slo_p50_us = quantile lats 50.;
    slo_p99_us = quantile lats 99.;
    slo_p999_us = quantile lats 99.9;
    slo_mean_us = mean;
    slo_max_us = max_;
    slo_goodput_mbps = goodput;
    slo_elapsed = elapsed;
    slo_samples = samples;
  }

(* One echo server process per node: serves requests FIFO, answering each
   to its sender on [port + 1].  Single-threaded on purpose — a busy
   server queues, which is exactly where open-loop tails come from. *)
let spawn_servers c ~port ~resp_size =
  for i = 0 to Net.size c - 1 do
    let node = Net.node c i in
    Node.spawn node (fun () ->
        let rec loop () =
          let msg = Clic.Api.recv node.Node.clic ~port in
          Clic.Api.send node.Node.clic ~dst:msg.Clic.Clic_module.msg_src
            ~port:(port + 1) resp_size;
          loop ()
        in
        loop ())
  done

(* Spawns the full request-response fabric (request pumps, per-node send
   workers, response listeners, dispatchers) without running the
   simulation, so mixes can lay several workloads over the same cluster.
   Returns the finisher that builds the stats once the net has drained.

   Latency is charged from the scheduled arrival instant, not from when
   the request actually reached the wire: open-loop clients do not get to
   stop the clock while their own stack backlogs.  Responses are matched
   to requests through a per-(client, server) FIFO — requests of one pair
   travel one CLIC channel in order and the node answers them in arrival
   order, so the oldest pending arrival is always the one a response
   resolves.

   Every CLIC send a node performs — its own requests and the responses
   it owes — issues from one worker process draining one inbox.  A node's
   send order is then a causal chain (inbox order), never a scheduling
   accident between racing sender processes, which keeps the logical
   trace invariant under the checker's seeded same-instant permutations
   (message ids are allocated per node, in send order). *)
let spawn_open_loop c ~seed ~arrival ~requests_per_node ~req_size ~resp_size
    ~deadline ~port =
  validate_arrival arrival;
  if requests_per_node <= 0 then
    invalid_arg "Workload.open_loop: requests_per_node <= 0";
  if req_size <= 0 || resp_size <= 0 then
    invalid_arg "Workload.open_loop: message size <= 0";
  if deadline < 0 then invalid_arg "Workload.open_loop: deadline < 0";
  let n = Net.size c in
  if n < 2 then invalid_arg "Workload.open_loop: need >= 2 nodes";
  let tally = fresh_tally () in
  let sb =
    { sb_requests = 0; sb_completed = 0; sb_timeouts = 0; sb_samples = [] }
  in
  let pending = Array.init n (fun _ -> Array.init n (fun _ -> Queue.create ()))
  in
  let inbox = Array.init n (fun _ -> Mailbox.create ()) in
  (* Request pump + send worker: the pump lifts arrived requests out of
     the CLIC port queue into the inbox; the worker performs every send
     the node owes, one at a time. *)
  for i = 0 to n - 1 do
    let node = Net.node c i in
    Node.spawn node (fun () ->
        let rec pump () =
          let msg = Clic.Api.recv node.Node.clic ~port in
          Mailbox.send inbox.(i) (`Respond msg.Clic.Clic_module.msg_src);
          pump ()
        in
        pump ());
    Node.spawn node (fun () ->
        let rec work () =
          (match Mailbox.recv inbox.(i) with
          | `Fire dst -> Clic.Api.send node.Node.clic ~dst ~port req_size
          | `Respond src ->
              Clic.Api.send node.Node.clic ~dst:src ~port:(port + 1)
                resp_size);
          work ()
        in
        work ())
  done;
  (* Response listeners *)
  for i = 0 to n - 1 do
    let node = Net.node c i in
    Node.spawn node (fun () ->
        let rec loop () =
          let msg = Clic.Api.recv node.Node.clic ~port:(port + 1) in
          let now = Sim.now c.Net.sim in
          (match Queue.take_opt pending.(i).(msg.Clic.Clic_module.msg_src)
           with
          | Some t0 ->
              let lat = Time.diff now t0 in
              sb.sb_completed <- sb.sb_completed + 1;
              if deadline > 0 && lat > deadline then
                sb.sb_timeouts <- sb.sb_timeouts + 1;
              sb.sb_samples <-
                (t0, Time.to_us lat) :: sb.sb_samples;
              note_delivery tally now msg.Clic.Clic_module.msg_bytes
          | None -> ());
          loop ()
        in
        loop ())
  done;
  (* Open-loop dispatchers: arrivals fire on the drawn schedule whether or
     not earlier requests have completed — the worker may get to a request
     late, but its clock started at the scheduled arrival. *)
  let root_rng = Rng.create ~seed in
  for i = 0 to n - 1 do
    let rng = Rng.split root_rng in
    let node = Net.node c i in
    Node.spawn node (fun () ->
        for _ = 1 to requests_per_node do
          Process.delay (draw_gap rng arrival);
          let dst =
            let d = Rng.int rng (n - 1) in
            if d >= i then d + 1 else d
          in
          let now = Sim.now c.Net.sim in
          sb.sb_requests <- sb.sb_requests + 1;
          note_send tally now;
          Queue.add now pending.(i).(dst);
          Mailbox.send inbox.(i) (`Fire dst)
        done)
  done;
  fun () -> (stats_of tally, slo_of sb tally ~resp_size)

let open_loop c ~seed ~arrival ?(requests_per_node = 100) ?(req_size = 512)
    ?(resp_size = 4096) ?(deadline = 0) ?(port = 73) () =
  let finish =
    spawn_open_loop c ~seed ~arrival ~requests_per_node ~req_size ~resp_size
      ~deadline ~port
  in
  Net.run c;
  finish ()

(* One-way open-loop variant: same seeded arrival schedule, no response
   leg.  Latency is delivery instant minus scheduled arrival, so client
   backlog and everything the gray fabric does to the request still
   lands in the tail.  Because the only send producer per node is its
   own dispatcher, each node's send order equals its arrival schedule no
   matter how same-instant contention resolves — the logical trace is
   invariant under the checker's seeded tie-break permutations, which
   makes this the variant the pinned `slo` scenario runs.  (The echo
   variant's response ordering is inherently timing-coupled: a response
   send order races a scheduled request whenever CPU contention shifts a
   delivery, so its trace cannot be pinned.) *)
let open_loop_oneway c ~seed ~arrival ?(requests_per_node = 100)
    ?(req_size = 512) ?(deadline = 0) ?(port = 73) () =
  validate_arrival arrival;
  if requests_per_node <= 0 then
    invalid_arg "Workload.open_loop_oneway: requests_per_node <= 0";
  if req_size <= 0 then
    invalid_arg "Workload.open_loop_oneway: message size <= 0";
  if deadline < 0 then invalid_arg "Workload.open_loop_oneway: deadline < 0";
  let n = Net.size c in
  if n < 2 then invalid_arg "Workload.open_loop_oneway: need >= 2 nodes";
  let tally = fresh_tally () in
  let sb =
    { sb_requests = 0; sb_completed = 0; sb_timeouts = 0; sb_samples = [] }
  in
  let pending = Array.init n (fun _ -> Array.init n (fun _ -> Queue.create ()))
  in
  let inbox = Array.init n (fun _ -> Mailbox.create ()) in
  for i = 0 to n - 1 do
    let node = Net.node c i in
    (* Receiver: pure accounting, never sends.  Requests of one pair ride
       one CLIC channel in order, so the oldest scheduled arrival is
       always the one a delivery resolves. *)
    Node.spawn node (fun () ->
        let rec loop () =
          let msg = Clic.Api.recv node.Node.clic ~port in
          let now = Sim.now c.Net.sim in
          (match Queue.take_opt pending.(msg.Clic.Clic_module.msg_src).(i)
           with
          | Some t0 ->
              let lat = Time.diff now t0 in
              sb.sb_completed <- sb.sb_completed + 1;
              if deadline > 0 && lat > deadline then
                sb.sb_timeouts <- sb.sb_timeouts + 1;
              sb.sb_samples <- (t0, Time.to_us lat) :: sb.sb_samples;
              note_delivery tally now msg.Clic.Clic_module.msg_bytes
          | None -> ());
          loop ()
        in
        loop ());
    (* Send worker: drains the dispatcher's schedule, its only producer. *)
    Node.spawn node (fun () ->
        let rec work () =
          let dst = Mailbox.recv inbox.(i) in
          Clic.Api.send node.Node.clic ~dst ~port req_size;
          work ()
        in
        work ())
  done;
  let root_rng = Rng.create ~seed in
  for i = 0 to n - 1 do
    let rng = Rng.split root_rng in
    let node = Net.node c i in
    Node.spawn node (fun () ->
        for _ = 1 to requests_per_node do
          Process.delay (draw_gap rng arrival);
          let dst =
            let d = Rng.int rng (n - 1) in
            if d >= i then d + 1 else d
          in
          let now = Sim.now c.Net.sim in
          sb.sb_requests <- sb.sb_requests + 1;
          note_send tally now;
          Queue.add now pending.(i).(dst);
          Mailbox.send inbox.(i) dst
        done)
  done;
  Net.run c;
  (stats_of tally, slo_of sb tally ~resp_size:req_size)

(* --------------------------------------------------------------- *)
(* Partition-aggregate fan-out (websearch-style root -> leaves -> root) *)

type fanout_stats = {
  fo_queries : int;
  fo_completed : int;
  fo_stragglers : int;
  fo_leaf_p99_us : float;
}

type query = {
  q_t0 : Time.t;
  mutable q_left : int;
  mutable q_first : Time.t option;  (* first leaf response *)
}

let partition_aggregate c ~seed ?(queries = 50) ?fanout
    ?(arrival = Poisson { mean_gap = Time.us 30. }) ?(req_size = 256)
    ?(resp_size = 2048) ?(straggler_slack = Time.us 200.) ?(deadline = 0)
    ?(port = 75) () =
  validate_arrival arrival;
  if queries <= 0 then
    invalid_arg "Workload.partition_aggregate: queries <= 0";
  if req_size <= 0 || resp_size <= 0 then
    invalid_arg "Workload.partition_aggregate: message size <= 0";
  if straggler_slack <= 0 then
    invalid_arg "Workload.partition_aggregate: straggler_slack <= 0";
  if deadline < 0 then
    invalid_arg "Workload.partition_aggregate: deadline < 0";
  let n = Net.size c in
  if n < 2 then invalid_arg "Workload.partition_aggregate: need >= 2 nodes";
  let fanout = match fanout with None -> n - 1 | Some f -> f in
  if fanout < 1 || fanout > n - 1 then
    invalid_arg "Workload.partition_aggregate: fanout outside [1, n-1]";
  let tally = fresh_tally () in
  let sb =
    { sb_requests = 0; sb_completed = 0; sb_timeouts = 0; sb_samples = [] }
  in
  let stragglers = ref 0 in
  let leaf_lats = ref [] in
  spawn_servers c ~port ~resp_size;
  let root = Net.node c 0 in
  let pending = Array.init n (fun _ -> Queue.create ()) in
  let mail = Array.init n (fun _ -> Mailbox.create ()) in
  for j = 1 to n - 1 do
    Node.spawn root (fun () ->
        let rec loop () =
          let (_ : Time.t) = Mailbox.recv mail.(j) in
          Clic.Api.send root.Node.clic ~dst:j ~port req_size;
          loop ()
        in
        loop ())
  done;
  (* Root aggregation listener: a query completes when its slowest leaf
     answers; the straggler gap is slowest minus fastest. *)
  Node.spawn root (fun () ->
      let rec loop () =
        let msg = Clic.Api.recv root.Node.clic ~port:(port + 1) in
        let now = Sim.now c.Net.sim in
        (match Queue.take_opt pending.(msg.Clic.Clic_module.msg_src) with
        | Some q ->
            note_delivery tally now msg.Clic.Clic_module.msg_bytes;
            leaf_lats := Time.to_us (Time.diff now q.q_t0) :: !leaf_lats;
            if q.q_first = None then q.q_first <- Some now;
            q.q_left <- q.q_left - 1;
            if q.q_left = 0 then begin
              let lat = Time.diff now q.q_t0 in
              sb.sb_completed <- sb.sb_completed + 1;
              if deadline > 0 && lat > deadline then
                sb.sb_timeouts <- sb.sb_timeouts + 1;
              sb.sb_samples <- (q.q_t0, Time.to_us lat) :: sb.sb_samples;
              match q.q_first with
              | Some first when Time.diff now first > straggler_slack ->
                  incr stragglers
              | _ -> ()
            end
        | None -> ());
        loop ()
      in
      loop ());
  (* Query dispatcher at the root (the only open-loop arrival stream). *)
  let root_rng = Rng.create ~seed in
  let rng = Rng.split root_rng in
  Node.spawn root (fun () ->
      let leaves = Array.init (n - 1) (fun k -> k + 1) in
      for _ = 1 to queries do
        Process.delay (draw_gap rng arrival);
        (* Partial Fisher-Yates: the first [fanout] slots become the
           query's leaf set. *)
        for k = 0 to fanout - 1 do
          let swap = k + Rng.int rng (n - 1 - k) in
          let tmp = leaves.(k) in
          leaves.(k) <- leaves.(swap);
          leaves.(swap) <- tmp
        done;
        let now = Sim.now c.Net.sim in
        sb.sb_requests <- sb.sb_requests + 1;
        let q = { q_t0 = now; q_left = fanout; q_first = None } in
        for k = 0 to fanout - 1 do
          note_send tally now;
          Queue.add q pending.(leaves.(k));
          Mailbox.send mail.(leaves.(k)) now
        done
      done);
  Net.run c;
  let leaf_arr = Array.of_list !leaf_lats in
  ( stats_of tally,
    slo_of sb tally ~resp_size,
    {
      fo_queries = queries;
      fo_completed = sb.sb_completed;
      fo_stragglers = !stragglers;
      fo_leaf_p99_us = quantile leaf_arr 99.;
    } )

(* --------------------------------------------------------------- *)
(* Elephants vs mice *)

type mix = { mix_elephants : stats; mix_mice : stats; mix_slo : slo }

let elephants_mice c ~seed ?elephant_pairs ?(elephant_messages = 20)
    ?(elephant_size = 131072) ?(arrival = Poisson { mean_gap = Time.us 25. })
    ?(requests_per_node = 80) ?(req_size = 256) ?(resp_size = 1024)
    ?(deadline = 0) ?(port = 77) () =
  let n = Net.size c in
  if n < 2 then invalid_arg "Workload.elephants_mice: need >= 2 nodes";
  let elephant_pairs =
    match elephant_pairs with None -> max 1 (n / 4) | Some p -> p
  in
  if elephant_pairs < 1 || elephant_pairs > n then
    invalid_arg "Workload.elephants_mice: elephant_pairs outside [1, n]";
  if elephant_messages <= 0 || elephant_size <= 0 then
    invalid_arg "Workload.elephants_mice: bad elephant shape";
  let mice_finish =
    spawn_open_loop c ~seed ~arrival ~requests_per_node ~req_size ~resp_size
      ~deadline ~port
  in
  (* Bulk transfers crossing the fabric while the mice scurry: sender k
     streams to the node halfway around, so elephants share links with
     everyone's mice. *)
  let elephant_port = port + 2 in
  let e_tally = fresh_tally () in
  spawn_receivers c ~port:elephant_port e_tally;
  for k = 0 to elephant_pairs - 1 do
    let node = Net.node c k in
    let dst = (k + (n / 2)) mod n in
    let dst = if dst = k then (k + 1) mod n else dst in
    Node.spawn node (fun () ->
        for _ = 1 to elephant_messages do
          note_send e_tally (Sim.now c.Net.sim);
          Clic.Api.send node.Node.clic ~dst ~port:elephant_port elephant_size
        done)
  done;
  Net.run c;
  let mice_stats, mice_slo = mice_finish () in
  {
    mix_elephants = stats_of e_tally;
    mix_mice = mice_stats;
    mix_slo = mice_slo;
  }

(* --------------------------------------------------------------- *)
(* Gray-failure injection window *)

let inject_gray c ?(nic_nodes = []) ?(nic_factor = 2.5) ?(stall_nodes = [])
    ?(stall_every = Time.us 100.) ?(stall_span = Time.us 40.) ~from_ ~until_
    () =
  if nic_factor < 1.0 then invalid_arg "Workload.inject_gray: nic_factor < 1";
  if from_ < 0 || until_ <= from_ then
    invalid_arg "Workload.inject_gray: empty or negative window";
  if stall_every <= 0 || stall_span <= 0 then
    invalid_arg "Workload.inject_gray: stall period <= 0";
  let n = Net.size c in
  List.iter
    (fun i ->
      if i < 0 || i >= n then
        invalid_arg (Printf.sprintf "Workload.inject_gray: unknown node %d" i))
    (nic_nodes @ stall_nodes);
  let sim = c.Net.sim in
  List.iter
    (fun i ->
      Sim.post sim ~after:from_ (fun () ->
          let node = Net.node c i in
          List.iter (fun nic -> Nic.set_slow_factor nic nic_factor)
            node.Node.nics);
      Sim.post sim ~after:until_ (fun () ->
          let node = Net.node c i in
          List.iter (fun nic -> Nic.set_slow_factor nic 1.0) node.Node.nics))
    nic_nodes;
  List.iter
    (fun i ->
      let rec tick at =
        if at < until_ then begin
          Sim.post sim ~after:at (fun () ->
              List.iter
                (fun sw ->
                  if Switch.has_node sw i then
                    Switch.inject_stall sw ~node:i ~span:stall_span)
                c.Net.switches);
          tick (at + stall_every)
        end
      in
      tick from_)
    stall_nodes
