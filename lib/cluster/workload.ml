open Engine

type stats = {
  sent : int;
  delivered : int;
  bytes : int;
  elapsed : Time.span;
}

type tally = {
  mutable t_sent : int;
  mutable t_delivered : int;
  mutable t_bytes : int;
  mutable t_first : Time.t option;
  mutable t_last : Time.t;
}

let fresh_tally () =
  { t_sent = 0; t_delivered = 0; t_bytes = 0; t_first = None; t_last = 0 }

let note_send tally now =
  tally.t_sent <- tally.t_sent + 1;
  if tally.t_first = None then tally.t_first <- Some now

let note_delivery tally now bytes =
  tally.t_delivered <- tally.t_delivered + 1;
  tally.t_bytes <- tally.t_bytes + bytes;
  tally.t_last <- now

let stats_of tally =
  {
    sent = tally.t_sent;
    delivered = tally.t_delivered;
    bytes = tally.t_bytes;
    elapsed =
      (match tally.t_first with
      | Some first -> Time.diff tally.t_last first
      | None -> 0);
  }

(* A receiver loop per node: counts everything that arrives on the port.
   Loops left blocked when traffic ends are fine — the simulation drains
   around them. *)
let spawn_receivers c ~port tally =
  for i = 0 to Net.size c - 1 do
    let node = Net.node c i in
    Node.spawn node (fun () ->
        let rec loop () =
          let msg = Clic.Api.recv node.Node.clic ~port in
          note_delivery tally (Sim.now c.Net.sim)
            msg.Clic.Clic_module.msg_bytes;
          loop ()
        in
        loop ())
  done

let uniform_random c ~seed ~messages_per_node ?(min_size = 1)
    ?(max_size = 16384) ?(port = 70) () =
  if min_size < 0 || max_size < min_size then
    invalid_arg "Workload.uniform_random: bad size range";
  let n = Net.size c in
  if n < 2 then invalid_arg "Workload.uniform_random: need >= 2 nodes";
  let tally = fresh_tally () in
  spawn_receivers c ~port tally;
  let root_rng = Rng.create ~seed in
  for i = 0 to n - 1 do
    let rng = Rng.split root_rng in
    let node = Net.node c i in
    Node.spawn node (fun () ->
        for _ = 1 to messages_per_node do
          let dst =
            let d = Rng.int rng (n - 1) in
            if d >= i then d + 1 else d
          in
          let size = min_size + Rng.int rng (max_size - min_size + 1) in
          note_send tally (Sim.now c.Net.sim);
          Clic.Api.send node.Node.clic ~dst ~port size
        done)
  done;
  Net.run c;
  stats_of tally

let hotspot c ~seed ~target ?senders ~messages_per_node ?(size = 4096)
    ?(port = 71) () =
  let n = Net.size c in
  if target < 0 || target >= n then invalid_arg "Workload.hotspot: bad target";
  let is_sender =
    match senders with
    | None -> fun i -> i <> target
    | Some ids ->
        List.iter
          (fun i ->
            if i < 0 || i >= n || i = target then
              invalid_arg "Workload.hotspot: bad sender id")
          ids;
        fun i -> List.mem i ids
  in
  let tally = fresh_tally () in
  spawn_receivers c ~port tally;
  let root_rng = Rng.create ~seed in
  for i = 0 to n - 1 do
    if is_sender i then begin
      let rng = Rng.split root_rng in
      let node = Net.node c i in
      Node.spawn node (fun () ->
          (* desynchronize the stampede a little, like real senders *)
          Process.delay (Rng.int rng 50);
          for _ = 1 to messages_per_node do
            note_send tally (Sim.now c.Net.sim);
            Clic.Api.send node.Node.clic ~dst:target ~port size
          done)
    end
  done;
  Net.run c;
  stats_of tally

let ring c ~rounds ?(size = 8192) ?(port = 72) () =
  let n = Net.size c in
  if n < 2 then invalid_arg "Workload.ring: need >= 2 nodes";
  let tally = fresh_tally () in
  for i = 0 to n - 1 do
    let node = Net.node c i in
    let next = (i + 1) mod n in
    Node.spawn node (fun () ->
        for _ = 1 to rounds do
          note_send tally (Sim.now c.Net.sim);
          Clic.Api.send node.Node.clic ~dst:next ~port size;
          let msg = Clic.Api.recv node.Node.clic ~port in
          note_delivery tally (Sim.now c.Net.sim)
            msg.Clic.Clic_module.msg_bytes
        done)
  done;
  Net.run c;
  stats_of tally
