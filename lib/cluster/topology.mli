(** Declarative fabric topologies.

    A topology is pure data: logical switch name prefixes, trunks between
    them, and a host→switch attachment map.  {!Net.create_topo}
    instantiates one copy per NIC rank, naming each physical switch
    [prefix ^ string_of_int rank] — the {!star}'s single ["switch"] prefix
    therefore yields the historical ["switch0"], keeping the legacy
    single-switch wiring byte-identical.

    Unless [learning] is set, {!Net.create_topo} compiles {!routes} —
    all-pairs BFS shortest paths with equal-cost next-hop sets — into
    static ECMP switch routes, which are loop-free by construction (the
    distance to the destination strictly decreases at every hop). *)

type t

val make :
  ?learning:bool ->
  ?ttl:int ->
  switches:string list ->
  trunks:(string * string) list ->
  hosts:string array ->
  unit ->
  t
(** [hosts.(id)] names the switch node [id] attaches to; every trunk is an
    unordered switch pair.  [learning] (default [false]) selects
    MAC-learning flood-and-learn forwarding instead of compiled static
    routes; [ttl] (default 16) bounds switch traversals per frame.
    @raise Invalid_argument on duplicate switches or trunks, self-trunks,
    references to unknown switches, a disconnected trunk graph, or a TTL
    smaller than the fabric diameter allows. *)

val star : n:int -> t
(** [n] hosts on one switch — the legacy cluster, and the compatibility
    baseline. *)

val linear :
  ?learning:bool -> ?ttl:int -> racks:int -> per_rack:int -> unit -> t
(** A chain of [racks] switches, [per_rack] hosts each; the default TTL
    stretches to cover the chain. *)

val leaf_spine :
  ?learning:bool ->
  ?ttl:int ->
  racks:int ->
  per_rack:int ->
  spines:int ->
  unit ->
  t
(** Every ToR trunked to every spine: [spines]-way ECMP between racks,
    oversubscribed whenever [per_rack] exceeds [spines]. *)

val fat_tree : ?learning:bool -> ?ttl:int -> k:int -> unit -> t
(** The canonical [k]-ary fat tree: [k] pods of [k/2] edge and [k/2]
    aggregation switches, [(k/2)²] cores, [k³/4] hosts, [k/2]-way ECMP at
    each level.
    @raise Invalid_argument unless [k] is even and at least 2. *)

val n : t -> int
(** Host count; node ids run [0 .. n-1]. *)

val switches : t -> string list
(** Switch prefixes in declaration order (the instantiation order). *)

val trunks : t -> (string * string) list

val attach : t -> int -> string
(** The switch prefix host [id] attaches to. *)

val learning : t -> bool
val ttl : t -> int

val diameter : t -> int
(** Longest shortest trunk path between any two switches. *)

val routes : ?excluding:string list -> t -> (string * int * string list) list
(** All-pairs static routing table: [(at, dst, via)] means switch [at]
    reaches host [dst] through any trunk in [via] (equal-cost set, in
    trunk declaration order).  [excluding] drops failed switches from the
    graph — routes through them vanish and destinations behind them
    disappear; recompiling with a new exclusion set is how the fabric
    reroutes around a dead spine. *)
