(** Synthetic traffic generators over CLIC, for stress tests and
    multiprogramming experiments.

    Each pattern spawns sender and receiver processes on every node, runs
    the cluster to quiescence, and returns delivery statistics.  Receivers
    count messages on a shared tally; processes still blocked in a receive
    when traffic ends simply never resume (the simulation drains).  All
    randomness comes from a seeded, splittable generator, so runs are
    reproducible. *)

open Engine

type stats = {
  sent : int;
  delivered : int;  (** messages received by application processes *)
  bytes : int;  (** application bytes delivered *)
  elapsed : Time.span;  (** first send to last delivery *)
}

val uniform_random :
  Net.t ->
  seed:int ->
  messages_per_node:int ->
  ?min_size:int ->
  ?max_size:int ->
  ?port:int ->
  unit ->
  stats
(** Every node sends [messages_per_node] messages of uniform random size
    to uniformly random other nodes. *)

val hotspot :
  Net.t ->
  seed:int ->
  target:int ->
  ?senders:int list ->
  messages_per_node:int ->
  ?size:int ->
  ?port:int ->
  unit ->
  stats
(** All nodes hammer [target] — the incast pattern that exercises receive
    rings, staging and the reliability window.  [senders] restricts the
    stampede to the listed nodes (e.g. only the remote racks of a fabric);
    default: everyone but the target.
    @raise Invalid_argument when a sender id is out of range or is the
    target itself. *)

val ring :
  Net.t -> rounds:int -> ?size:int -> ?port:int -> unit -> stats
(** Each node sends to its clockwise neighbour, [rounds] times, waiting
    for its own neighbour's message between rounds (bounded skew). *)
