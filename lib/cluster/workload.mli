(** Synthetic traffic generators over CLIC, for stress tests, SLO studies
    and multiprogramming experiments.

    Two families share this module.  The {e closed-loop} patterns
    ({!uniform_random}, {!hotspot}, {!ring}) inject a fixed message count
    and run the cluster to quiescence.  The {e open-loop} patterns
    ({!open_loop}, {!partition_aggregate}, {!elephants_mice}) model
    production traffic: request arrivals fire on a seeded random schedule
    whether or not earlier requests have completed, so a slow server or a
    sagging link builds a backlog instead of silently slowing the offered
    load — which is where p99/p999 tails actually come from.

    {b Drain semantics.}  Server and receiver processes are infinite
    loops; when traffic ends each is parked in one final blocking receive
    and the simulation drains around it — that idle park is by design and
    is not an error.  What is {e not} fine is traffic ending while
    receivers are still owed messages: every generator counts that as
    [stranded] ({!stats.stranded} for message counts,
    {!slo.slo_stranded} for open-loop requests that never saw their
    response).  Clean closed-loop runs must report zero.

    All randomness comes from a seeded, splittable generator, so runs are
    reproducible. *)

open Engine

type stats = {
  sent : int;
  delivered : int;  (** messages received by application processes *)
  bytes : int;  (** application bytes delivered *)
  stranded : int;
      (** messages sent but never delivered when the run drained:
          receivers were left blocked waiting for them.  Zero on a clean
          closed-loop run. *)
  elapsed : Time.span;  (** first send to last delivery *)
}

val uniform_random :
  Net.t ->
  seed:int ->
  messages_per_node:int ->
  ?min_size:int ->
  ?max_size:int ->
  ?port:int ->
  unit ->
  stats
(** Every node sends [messages_per_node] messages of uniform random size
    to uniformly random other nodes. *)

val hotspot :
  Net.t ->
  seed:int ->
  target:int ->
  ?senders:int list ->
  messages_per_node:int ->
  ?size:int ->
  ?port:int ->
  unit ->
  stats
(** All nodes hammer [target] — the incast pattern that exercises receive
    rings, staging and the reliability window.  [senders] restricts the
    stampede to the listed nodes (e.g. only the remote racks of a fabric);
    default: everyone but the target.
    @raise Invalid_argument when a sender id is out of range or is the
    target itself. *)

val ring :
  Net.t -> rounds:int -> ?size:int -> ?port:int -> unit -> stats
(** Each node sends to its clockwise neighbour, [rounds] times, waiting
    for its own neighbour's message between rounds (bounded skew). *)

(** {1 Open-loop request-response workloads} *)

(** Inter-arrival schedule for open-loop request streams. *)
type arrival =
  | Poisson of { mean_gap : Time.span }
      (** Memoryless arrivals: exponential gaps with the given mean. *)
  | Pareto of { shape : float; min_gap : Time.span }
      (** Heavy-tailed arrivals: gaps are Pareto with minimum [min_gap]
          and tail index [shape].  [shape] must exceed 1 so the mean gap
          [shape * min_gap / (shape - 1)] exists; smaller shapes are
          burstier. *)

val validate_arrival : arrival -> unit
(** @raise Invalid_argument for a non-positive gap or a Pareto shape
    [<= 1] (construction-time validation; every generator calls it). *)

val mean_gap_of : arrival -> float
(** Analytic mean inter-arrival gap in nanoseconds. *)

type slo = {
  slo_requests : int;  (** arrivals fired *)
  slo_completed : int;  (** responses received *)
  slo_timeouts : int;
      (** completed requests whose latency exceeded the deadline *)
  slo_stranded : int;  (** requests never answered when the run drained *)
  slo_p50_us : float;
  slo_p99_us : float;
  slo_p999_us : float;  (** latency percentiles over completed requests *)
  slo_mean_us : float;
  slo_max_us : float;
  slo_goodput_mbps : float;  (** response payload bits delivered per second *)
  slo_elapsed : Time.span;
  slo_samples : (Time.t * float) array;
      (** per-request (arrival instant, latency in µs), in completion
          order — the raw material for SLO contracts that need to split
          samples into healthy / degraded / recovery phases *)
}

val quantile : float array -> float -> float
(** [quantile samples p] is the nearest-rank [p]-th percentile of
    [samples] (not modified; sorted internally): index
    [min (n-1) (floor (p/100 * n))] of the sorted array.  0 on an empty
    array.
    @raise Invalid_argument if [p] is outside [\[0, 100\]]. *)

val open_loop :
  Net.t ->
  seed:int ->
  arrival:arrival ->
  ?requests_per_node:int ->
  ?req_size:int ->
  ?resp_size:int ->
  ?deadline:Time.span ->
  ?port:int ->
  unit ->
  stats * slo
(** Every node runs an open-loop client firing [requests_per_node]
    requests at random other nodes on the [arrival] schedule, plus a
    single-threaded echo server answering [resp_size] bytes on
    [port + 1].  Latency is charged from the scheduled arrival instant —
    client-side backlog counts against the tail, as it does in
    production.  [deadline] (default 0 = none) counts completions slower
    than it as [slo_timeouts].
    @raise Invalid_argument for non-positive sizes or counts, a negative
    deadline, a bad [arrival], or fewer than 2 nodes. *)

val open_loop_oneway :
  Net.t ->
  seed:int ->
  arrival:arrival ->
  ?requests_per_node:int ->
  ?req_size:int ->
  ?deadline:Time.span ->
  ?port:int ->
  unit ->
  stats * slo
(** One-way variant of {!open_loop}: the same seeded arrival schedule,
    but no response leg — latency is the delivery instant minus the
    scheduled arrival, so client backlog and everything the fabric does
    to the request still land in the tail.  Each node's send order
    equals its arrival schedule (the dispatcher is the only send
    producer), which keeps the logical trace invariant under seeded
    same-instant permutations; the pinned [slo] scenario runs this
    variant.  Goodput counts request payload.
    @raise Invalid_argument as {!open_loop}. *)

type fanout_stats = {
  fo_queries : int;
  fo_completed : int;
  fo_stragglers : int;
      (** completed queries whose slowest leaf answered more than the
          straggler slack after the fastest *)
  fo_leaf_p99_us : float;  (** p99 over individual leaf responses *)
}

val partition_aggregate :
  Net.t ->
  seed:int ->
  ?queries:int ->
  ?fanout:int ->
  ?arrival:arrival ->
  ?req_size:int ->
  ?resp_size:int ->
  ?straggler_slack:Time.span ->
  ?deadline:Time.span ->
  ?port:int ->
  unit ->
  stats * slo * fanout_stats
(** Websearch-style partition-aggregate: node 0 fans each query out to a
    random [fanout]-subset of the other nodes (default: all of them) and
    the query completes when the slowest leaf has answered, so the query
    tail is the straggler tail.  [slo] percentiles are over query
    completion times; [fanout_stats] accounts for stragglers.
    @raise Invalid_argument for a fanout outside [\[1, n-1\]] or the usual
    size/count/arrival violations. *)

type mix = {
  mix_elephants : stats;  (** bulk transfer delivery *)
  mix_mice : stats;  (** open-loop request-response delivery *)
  mix_slo : slo;  (** the mice's latency SLO record *)
}

val elephants_mice :
  Net.t ->
  seed:int ->
  ?elephant_pairs:int ->
  ?elephant_messages:int ->
  ?elephant_size:int ->
  ?arrival:arrival ->
  ?requests_per_node:int ->
  ?req_size:int ->
  ?resp_size:int ->
  ?deadline:Time.span ->
  ?port:int ->
  unit ->
  mix
(** Bandwidth-heavy elephants (node [k] streams [elephant_messages]
    messages of [elephant_size] bytes to the node halfway around the
    cluster, for [elephant_pairs] senders, default [n/4]) sharing the
    fabric with latency-sensitive open-loop mice on every node.  The
    interesting output is [mix_slo]: what the elephants did to the mice's
    tail. *)

(** {1 Gray-failure injection} *)

val inject_gray :
  Net.t ->
  ?nic_nodes:int list ->
  ?nic_factor:float ->
  ?stall_nodes:int list ->
  ?stall_every:Time.span ->
  ?stall_span:Time.span ->
  from_:Time.t ->
  until_:Time.t ->
  unit ->
  unit
(** Schedules a fail-slow window over the cluster: from [from_] to
    [until_], the NICs of [nic_nodes] serve frames [nic_factor] times
    slower ({!Hw.Nic.set_slow_factor}), and every switch port facing a
    node in [stall_nodes] freezes its egress pump for [stall_span] every
    [stall_every] ({!Hw.Switch.inject_stall}).  Call before running the
    net; link brownouts compose via the node config's [link_fault]
    ({!Hw.Fault.brownout}).  Nothing dies, nothing announces itself —
    that is the point.
    @raise Invalid_argument for an empty window, a factor below 1,
    non-positive stall periods, or an unknown node id. *)
