open Engine
open Cluster

let default_sizes =
  [ 64; 256; 1024; 4096; 16384; 65536; 262144; 1048576; 4194304 ]

let quick_sizes = [ 1024; 65536; 1048576 ]

let reps_for size = if size >= 262144 then 3 else if size >= 16384 then 5 else 8

(* One bandwidth curve: a fresh two-node cluster per point (no state leaks
   between sizes), NetPIPE-style ping-pong measurement. *)
let bandwidth_series ~name ~config ~pair_of ~sizes =
  let s = Stats.Series.create ~name in
  List.iter
    (fun size ->
      let c = Net.create ~config ~n:2 () in
      let pair = pair_of c in
      let r = Measure.pingpong c pair ~size ~reps:(reps_for size) ~warmup:1 () in
      Stats.Series.add s ~x:(float_of_int size)
        ~y:r.Measure.pp_bandwidth_mbps)
    sizes;
  s

let config_mtu mtu = { Node.default_config with mtu }

let config_mtu_clic mtu clic_params =
  { Node.default_config with mtu; clic_params }

let clic_pair_of c = Measure.clic_pair c ~a:0 ~b:1 ()
let tcp_pair_of c = Measure.tcp_pair c ~a:0 ~b:1 ()

(* ------------------------------------------------------------------ *)
(* Figure 4: CLIC, {MTU 1500, 9000} x {0-copy, 1-copy} *)

let fig4 ?(quick = false) fmt =
  let sizes = if quick then quick_sizes else default_sizes in
  let curve name mtu params =
    bandwidth_series ~name
      ~config:(config_mtu_clic mtu params)
      ~pair_of:clic_pair_of ~sizes
  in
  let series =
    [
      curve "0-copy MTU 9000" 9000 Clic.Params.default;
      curve "1-copy MTU 9000" 9000 Clic.Params.one_copy;
      curve "0-copy MTU 1500" 1500 Clic.Params.default;
      curve "1-copy MTU 1500" 1500 Clic.Params.one_copy;
    ]
  in
  Render.series_table fmt
    ~title:"Figure 4: CLIC bandwidth (Mbit/s) for different MTUs, 0/1-copy"
    ~x_label:"size(B)" ~series;
  series

(* ------------------------------------------------------------------ *)
(* Figure 5: CLIC vs TCP/IP at MTU 9000 and 1500 *)

let fig5 ?(quick = false) fmt =
  let sizes = if quick then quick_sizes else default_sizes in
  let series =
    [
      bandwidth_series ~name:"CLIC 9000" ~config:(config_mtu 9000)
        ~pair_of:clic_pair_of ~sizes;
      bandwidth_series ~name:"CLIC 1500" ~config:(config_mtu 1500)
        ~pair_of:clic_pair_of ~sizes;
      bandwidth_series ~name:"TCP 9000" ~config:(config_mtu 9000)
        ~pair_of:tcp_pair_of ~sizes;
      bandwidth_series ~name:"TCP 1500" ~config:(config_mtu 1500)
        ~pair_of:tcp_pair_of ~sizes;
    ]
  in
  Render.series_table fmt
    ~title:"Figure 5: CLIC vs TCP/IP bandwidth (Mbit/s), 0-copy"
    ~x_label:"size(B)" ~series;
  series

(* ------------------------------------------------------------------ *)
(* Figure 6: CLIC, MPI-CLIC, MPI(TCP), PVM(TCP) *)

let fig6 ?(quick = false) fmt =
  let sizes = if quick then quick_sizes else default_sizes in
  let config = config_mtu 9000 in
  let series =
    [
      bandwidth_series ~name:"CLIC" ~config ~pair_of:clic_pair_of ~sizes;
      bandwidth_series ~name:"MPI-CLIC" ~config
        ~pair_of:(fun c -> Pairs.mpi_clic c ~a:0 ~b:1)
        ~sizes;
      bandwidth_series ~name:"MPI (TCP)" ~config
        ~pair_of:(fun c -> Pairs.mpi_tcp c ~a:0 ~b:1)
        ~sizes;
      bandwidth_series ~name:"PVM (TCP)" ~config
        ~pair_of:(fun c -> Pairs.pvm c ~a:0 ~b:1)
        ~sizes;
    ]
  in
  Render.series_table fmt
    ~title:
      "Figure 6: bandwidths (Mbit/s) of CLIC, MPI-CLIC, MPI and PVM on \
       TCP/IP"
    ~x_label:"size(B)" ~series;
  series

(* ------------------------------------------------------------------ *)
(* Figure 7: stage timing of a 1400-byte packet *)

type stage = { stage : string; a_us : float; b_us : float }

type fig7_result = {
  stages : stage list;
  latency_a_us : float;
  latency_b_us : float;
}

type fig7_probe = {
  p_module_tx : float;
  p_driver_tx : float;
  p_transit : float;  (* DMA + wire + switch + rx DMA + irq dispatch *)
  p_isr : float;
  p_bottom_half : float;  (* driver part only *)
  p_module_rx : float;  (* module work + copy to user *)
  p_total : float;
}

let sum_spans spans label =
  List.fold_left
    (fun acc s ->
      if String.equal s.Trace.label label then
        acc +. Time.to_us (Time.diff s.Trace.finish s.Trace.start)
      else acc)
    0. spans

let fig7_once ~driver_params ~irq_dispatch =
  let config =
    { Node.default_config with trace = true; irq_dispatch;
      driver_params;
      coalesce = Hw.Nic.no_coalesce }
  in
  let c = Net.create ~config ~n:2 () in
  let pair = Measure.clic_pair c ~a:0 ~b:1 () in
  (* One-way transfer of a single packet: the traces then hold exactly the
     stages of Figure 7 (a ping-pong would mix in the reply's spans and
     the channel acknowledgements of both directions). *)
  let r = Measure.stream c pair ~a:0 ~b:1 ~size:1400 ~messages:1 in
  let span_list node =
    match (Net.node c node).Node.trace with
    | Some tr -> Trace.spans tr
    | None -> []
  in
  let a_spans = span_list 0 and b_spans = span_list 1 in
  let module_tx = sum_spans a_spans "clic:module-tx" in
  let driver_tx = sum_spans a_spans "driver:tx-routine" in
  let isr_total = sum_spans b_spans "driver:isr" in
  let bh_total = sum_spans b_spans "driver:bottom-half" in
  let module_rx =
    sum_spans b_spans "clic:module-rx" +. sum_spans b_spans "clic:copy-to-user"
  in
  (* The module upcall nests inside the driver stage that invoked it (the
     bottom half normally, the ISR in Direct_from_isr mode); separate the
     driver's own time from the module's. *)
  let isr, bh_driver =
    match driver_params.Os_model.Driver.rx_mode with
    | Os_model.Driver.Via_bottom_half ->
        (isr_total, Float.max 0. (bh_total -. module_rx))
    | Os_model.Driver.Direct_from_isr ->
        (Float.max 0. (isr_total -. module_rx), 0.)
  in
  let total = Time.to_us r.Measure.elapsed in
  let transit =
    Float.max 0.
      (total -. module_tx -. driver_tx -. isr -. bh_driver -. module_rx)
  in
  (* keep only the data path: acknowledgement traffic after delivery is
     the channel's business, not Figure 7's *)
  let labelled prefix spans =
    List.filter_map
      (fun s ->
        if Time.to_us s.Trace.start <= total then
          Some { s with Trace.label = prefix ^ s.Trace.label }
        else None)
      spans
  in
  ( {
      p_module_tx = module_tx;
      p_driver_tx = driver_tx;
      p_transit = transit;
      p_isr = isr;
      p_bottom_half = bh_driver;
      p_module_rx = module_rx;
      p_total = total;
    },
    labelled "sender   " a_spans @ labelled "receiver " b_spans )

let fig7 fmt =
  (* (a) the stock path: ISR -> bottom halves -> CLIC_MODULE. *)
  let a, a_spans =
    fig7_once ~driver_params:Os_model.Driver.default_params
      ~irq_dispatch:(Time.us 5.)
  in
  (* (b) the proposed improvement (Figure 8b): the driver calls CLIC_MODULE
     directly from a trimmed ISR; the SK_BUFF staging copy disappears, so
     the interrupt-side latency drops from ~20 us to ~5 us. *)
  let b, _ =
    fig7_once
      ~driver_params:
        {
          Os_model.Driver.default_params with
          Os_model.Driver.tx_routine = Time.us 4.0;
          isr_entry = Time.us 1.0;
          isr_per_packet = Time.us 1.0;
          bh_per_packet = Time.us 0.5;
          bh_bytes_per_s = 2e9;
          rx_mode = Os_model.Driver.Direct_from_isr;
        }
      ~irq_dispatch:(Time.us 2.5)
  in
  let stages =
    [
      { stage = "CLIC_MODULE (send)"; a_us = a.p_module_tx; b_us = b.p_module_tx };
      { stage = "driver (send)"; a_us = a.p_driver_tx; b_us = b.p_driver_tx };
      { stage = "memory+PCI buses, flight"; a_us = a.p_transit; b_us = b.p_transit };
      { stage = "driver: int"; a_us = a.p_isr; b_us = b.p_isr };
      { stage = "driver: bottom half"; a_us = a.p_bottom_half; b_us = b.p_bottom_half };
      { stage = "CLIC_MODULE (recv+copy)"; a_us = a.p_module_rx; b_us = b.p_module_rx };
    ]
  in
  Render.section fmt
    "Figure 7: timing of a 1400-byte packet through the CLIC pipeline";
  Render.table fmt
    ~header:[ "stage"; "(a) stock us"; "(b) direct-ISR us" ]
    ~rows:
      (List.map
         (fun s ->
           [ s.stage; Printf.sprintf "%.1f" s.a_us;
             Printf.sprintf "%.1f" s.b_us ])
         stages
      @ [
          [ "one-way total"; Printf.sprintf "%.1f" a.p_total;
            Printf.sprintf "%.1f" b.p_total ];
        ])
    ();
  Format.fprintf fmt
    "paper: sender 0.7+4 us; bottom half 15 us; CLIC_MODULE 2 us; interrupt \
     path ~20 us in (a) vs ~5 us in (b)@.@.pipeline of run (a), host-side \
     stages:@.";
  Render.timeline fmt ~width:60 a_spans;
  { stages; latency_a_us = a.p_total; latency_b_us = b.p_total }

(* ------------------------------------------------------------------ *)
(* Table 1: headline scalars *)

type scalar = { name : string; paper : float; measured : float }

let latency_us ~config =
  let c = Net.create ~config ~n:2 () in
  let pair = Measure.clic_pair c ~a:0 ~b:1 () in
  let r = Measure.pingpong c pair ~size:0 () in
  Time.to_us r.Measure.one_way

let bandwidth_at ~config ~pair_of size =
  let c = Net.create ~config ~n:2 () in
  let r =
    Measure.pingpong c (pair_of c) ~size ~reps:(reps_for size) ~warmup:1 ()
  in
  r.Measure.pp_bandwidth_mbps

(* First size (interpolated between measured points) reaching half the
   large-message bandwidth. *)
let half_bandwidth_size ~config ~pair_of ~sizes =
  let top = bandwidth_at ~config ~pair_of (List.nth sizes (List.length sizes - 1)) in
  let target = top /. 2. in
  let points =
    List.map
      (fun size -> (float_of_int size, bandwidth_at ~config ~pair_of size))
      sizes
  in
  let rec scan = function
    | (x0, y0) :: ((x1, y1) :: _ as rest) ->
        if y0 < target && y1 >= target then
          (* interpolate in log-size space *)
          let lx0 = log x0 and lx1 = log x1 in
          let frac = (target -. y0) /. (y1 -. y0) in
          exp (lx0 +. (frac *. (lx1 -. lx0)))
        else scan rest
    | [ (x, _) ] -> x
    | [] -> 0.
  in
  scan points

let tab1 ?(quick = false) fmt =
  let half_sizes =
    if quick then [ 1024; 4096; 16384; 65536; 262144 ]
    else [ 256; 1024; 2048; 4096; 8192; 16384; 32768; 65536; 131072; 262144 ]
  in
  let big = if quick then 1048576 else 4194304 in
  let c9000 = config_mtu 9000 and c1500 = config_mtu 1500 in
  let lat = latency_us ~config:c1500 in
  let clic9000 = bandwidth_at ~config:c9000 ~pair_of:clic_pair_of big in
  let clic1500 = bandwidth_at ~config:c1500 ~pair_of:clic_pair_of big in
  let tcp9000 = bandwidth_at ~config:c9000 ~pair_of:tcp_pair_of big in
  let mpi_clic =
    bandwidth_at ~config:c9000 ~pair_of:(fun c -> Pairs.mpi_clic c ~a:0 ~b:1)
      big
  in
  let mpi_tcp =
    bandwidth_at ~config:c9000 ~pair_of:(fun c -> Pairs.mpi_tcp c ~a:0 ~b:1)
      big
  in
  let half_clic =
    half_bandwidth_size ~config:c1500 ~pair_of:clic_pair_of
      ~sizes:(half_sizes @ [ big ])
  in
  let half_tcp =
    half_bandwidth_size ~config:c1500 ~pair_of:tcp_pair_of
      ~sizes:(half_sizes @ [ big ])
  in
  let scalars =
    [
      { name = "0-byte latency (us)"; paper = Paper.zero_byte_latency_us;
        measured = lat };
      { name = "CLIC asymptote, MTU 9000 (Mbit/s)";
        paper = Paper.clic_asymptote_mtu9000_mbps; measured = clic9000 };
      { name = "CLIC asymptote, MTU 1500 (Mbit/s)";
        paper = Paper.clic_asymptote_mtu1500_mbps; measured = clic1500 };
      { name = "CLIC / TCP best-case ratio";
        paper = Paper.clic_over_tcp_best_case; measured = clic9000 /. tcp9000 };
      { name = "MPI-CLIC / MPI-TCP ratio (long messages)";
        paper = Paper.mpi_clic_over_mpi_tcp_worst_case;
        measured = mpi_clic /. mpi_tcp };
      { name = "half-bandwidth message size, CLIC (B)";
        paper = float_of_int Paper.half_bandwidth_size_clic;
        measured = half_clic };
      { name = "half-bandwidth message size, TCP (B)";
        paper = float_of_int Paper.half_bandwidth_size_tcp;
        measured = half_tcp };
    ]
  in
  Render.section fmt "Table 1: headline results, paper vs reproduction";
  Render.table fmt
    ~header:[ "quantity"; "paper"; "measured" ]
    ~rows:
      (List.map
         (fun s ->
           [ s.name; Printf.sprintf "%.1f" s.paper;
             Printf.sprintf "%.1f" s.measured ])
         scalars)
    ();
  scalars

(* ------------------------------------------------------------------ *)
(* Figure 1 ablation: the four user-to-NIC data paths *)

let fig1 ?(quick = false) fmt =
  let big = if quick then 262144 else 1048576 in
  let paths =
    [
      ("path 1: PIO user->NIC", Clic.Params.Pio_direct);
      ("path 2: DMA user->NIC buffer (0-copy)", Clic.Params.Dma_nic_buffer);
      ("path 3: staged copy + direct DMA", Clic.Params.Staged_direct);
      ("path 4: staged copy + NIC buffer (1-copy)",
       Clic.Params.Staged_nic_buffer);
    ]
  in
  let rows =
    List.map
      (fun (name, data_path) ->
        let params = { Clic.Params.default with data_path } in
        let config = config_mtu_clic 1500 params in
        let lat = latency_us ~config in
        let bw = bandwidth_at ~config ~pair_of:clic_pair_of big in
        (name, lat, bw))
      paths
  in
  Render.section fmt
    "Figure 1 ablation: user-to-NIC data paths (MTU 1500)";
  Render.table fmt
    ~header:[ "data path"; "0B latency (us)"; "1MB bandwidth (Mbit/s)" ]
    ~rows:
      (List.map
         (fun (n, l, b) ->
           [ n; Printf.sprintf "%.1f" l; Printf.sprintf "%.1f" b ])
         rows)
    ();
  rows

(* ------------------------------------------------------------------ *)
(* Section 2 analysis: interrupt rate and CPU load vs coalescing *)

let stream_stats ~config ~size ~messages =
  let c = Net.create ~config ~n:2 () in
  let pair = Measure.clic_pair c ~a:0 ~b:1 () in
  Measure.stream c pair ~a:0 ~b:1 ~size ~messages

let sec2 fmt =
  let settings =
    [
      ("no coalescing", Hw.Nic.no_coalesce);
      ("default (8 frames / 2us / 50us)", Hw.Nic.default_coalesce);
      ( "aggressive (32 frames / 30us / 200us)",
        { Hw.Nic.max_frames = 32; quiet = Time.us 30.; absolute = Time.us 200. }
      );
    ]
  in
  let rows =
    List.concat_map
      (fun mtu ->
        List.map
          (fun (name, coalesce) ->
            let config = { Node.default_config with mtu; coalesce } in
            let messages = 1000 in
            let r = stream_stats ~config ~size:(mtu - 12) ~messages in
            let per_packet =
              float_of_int r.Measure.receiver_interrupts
              /. float_of_int messages
            in
            ( Printf.sprintf "MTU %d, %s" mtu name,
              r.Measure.st_bandwidth_mbps,
              per_packet,
              r.Measure.receiver_cpu ))
          settings)
      [ 1500; 9000 ]
  in
  Render.section fmt
    "Section 2: interrupt coalescing under a saturated stream";
  Render.table fmt
    ~header:[ "configuration"; "Mbit/s"; "irqs/packet"; "rx CPU" ]
    ~rows:
      (List.map
         (fun (n, bw, ipp, cpu) ->
           [ n; Printf.sprintf "%.1f" bw; Printf.sprintf "%.2f" ipp;
             Printf.sprintf "%.2f" cpu ])
         rows)
    ();
  rows

(* ------------------------------------------------------------------ *)
(* Extension 1: NIC-side fragmentation (the paper's future work) *)

let ext1 fmt =
  let variants =
    [
      ("off: CLIC fragments to MTU", false, Clic.Params.default);
      ( "on: NIC fragments 32KB super-packets",
        true,
        { Clic.Params.default with use_nic_fragmentation = true } );
    ]
  in
  let rows =
    List.map
      (fun (name, nic_frag, clic_params) ->
        let config =
          { Node.default_config with mtu = 1500;
            nic_fragmentation = nic_frag; clic_params }
        in
        let messages = 300 in
        let r = stream_stats ~config ~size:32768 ~messages in
        ( name,
          r.Measure.st_bandwidth_mbps,
          float_of_int r.Measure.receiver_interrupts
          /. float_of_int messages ))
      variants
  in
  Render.section fmt
    "Extension: NIC-side fragmentation (32KB messages, link MTU 1500)";
  Render.table fmt
    ~header:[ "configuration"; "Mbit/s"; "irqs/message" ]
    ~rows:
      (List.map
         (fun (n, bw, ipm) ->
           [ n; Printf.sprintf "%.1f" bw; Printf.sprintf "%.2f" ipm ])
         rows)
    ();
  rows

(* ------------------------------------------------------------------ *)
(* Extension 2: channel bonding *)

let ext2 fmt =
  let case name nics pci_per_nic =
    let config = { Node.default_config with mtu = 9000; nics; pci_per_nic } in
    let r = stream_stats ~config ~size:8988 ~messages:600 in
    (name, r.Measure.st_bandwidth_mbps)
  in
  let rows =
    [
      case "1 NIC" 1 false;
      case "2 NICs, shared PCI bus" 2 false;
      case "2 NICs, one PCI segment each" 2 true;
    ]
  in
  Render.section fmt "Extension: channel bonding (MTU 9000 stream)";
  Render.table fmt
    ~header:[ "configuration"; "Mbit/s" ]
    ~rows:(List.map (fun (n, bw) -> [ n; Printf.sprintf "%.1f" bw ]) rows)
    ();
  Format.fprintf fmt
    "bonding only pays once each NIC has its own I/O bus: on the shared \
     33 MHz PCI bus the bus itself is the bottleneck (Section 1's point).@.";
  rows

(* ------------------------------------------------------------------ *)
(* Extension 3: broadcast *)

let ext3 ?(nodes = 8) fmt =
  let size = 65536 in
  let clic_time =
    let c = Net.create ~config:(config_mtu 9000) ~n:nodes () in
    let sim = c.Net.sim in
    let port = 40 in
    let finished = Ivar.create () in
    let peers = List.init (nodes - 1) (fun i -> i + 1) in
    List.iter
      (fun peer ->
        Node.spawn (Net.node c peer) (fun () ->
            Mpi_layer.Collectives.clic_bcast_peer (Net.node c peer).Node.clic
              ~root:0 ~port))
      peers;
    Node.spawn (Net.node c 0) (fun () ->
        Mpi_layer.Collectives.clic_bcast_root (Net.node c 0).Node.clic ~peers
          ~port size;
        Ivar.fill finished (Sim.now sim));
    Net.run c;
    match Ivar.peek finished with
    | Some t -> Time.to_us t
    | None -> nan
  in
  let mpi_time =
    let c = Net.create ~config:(config_mtu 9000) ~n:nodes () in
    let sim = c.Net.sim in
    let reg = Mpi_layer.Mpi_tcp.registry () in
    let finished = Ivar.create () in
    let remaining = ref nodes in
    for rank = 0 to nodes - 1 do
      let node = Net.node c rank in
      let mpi =
        Mpi_layer.Mpi.create node.Node.env ~rank
          (Mpi_layer.Mpi_tcp.transport reg node.Node.tcp ~rank)
          ()
      in
      Node.spawn node (fun () ->
          Mpi_layer.Collectives.mpi_bcast mpi ~rank ~root:0 ~size:nodes size;
          decr remaining;
          if !remaining = 0 then Ivar.fill finished (Sim.now sim))
    done;
    Net.run c;
    match Ivar.peek finished with
    | Some t -> Time.to_us t
    | None -> nan
  in
  let rows =
    [
      ("CLIC Ethernet broadcast + confirms", clic_time);
      ("MPI-TCP binomial tree", mpi_time);
    ]
  in
  Render.section fmt
    (Printf.sprintf "Extension: 64KB broadcast to %d nodes" (nodes - 1));
  Render.table fmt
    ~header:[ "method"; "completion (us)" ]
    ~rows:(List.map (fun (n, t) -> [ n; Printf.sprintf "%.1f" t ]) rows)
    ();
  rows


(* ------------------------------------------------------------------ *)
(* Section 3.2 comparison: CLIC vs GAMMA vs VIA design points *)

type rival_row = {
  r_name : string;
  r_latency_us : float;
  r_bw_mbps : float;
  r_idle_cpu : float;  (* receiver CPU fraction while waiting, idle link *)
}

let gamma_config =
  { Node.default_config with
    mtu = 9000;
    driver_params = Rivals.Gamma.driver_params;
    (* the GA620 of the paper's GAMMA numbers is a 64-bit PCI card whose
       onboard MIPS firmware adds noticeable per-frame latency *)
    pci_width_bytes = 8;
    pci_efficiency = 0.40;
    nic_firmware_per_frame = Time.us 6.;
    irq_dispatch = Time.us 2.5;
    coalesce = Hw.Nic.no_coalesce }

let via_config =
  { Node.default_config with
    mtu = 9000;
    driver_params = Rivals.Via.driver_params;
    (* no interrupt: the tiny dispatch models DMA-completion visibility *)
    irq_dispatch = Time.us 0.5;
    coalesce = Hw.Nic.no_coalesce }

let gamma_pair c ~a ~b =
  let mk i =
    let node = Net.node c i in
    Rivals.Gamma.create node.Node.env (List.hd node.Node.eths)
  in
  let ga = mk a and gb = mk b in
  {
    Measure.label = "gamma";
    a_setup = (fun () -> ());
    b_setup = (fun () -> ());
    a_send = (fun n -> Rivals.Gamma.send ga ~dst:b ~port:1 n);
    a_recv = (fun _ -> ignore (Rivals.Gamma.recv ga ~port:1));
    b_send = (fun n -> Rivals.Gamma.send gb ~dst:a ~port:1 n);
    b_recv = (fun _ -> ignore (Rivals.Gamma.recv gb ~port:1));
  }

let via_pair c ~a ~b =
  let mk i =
    let node = Net.node c i in
    Rivals.Via.create node.Node.env (List.hd node.Node.eths) ()
  in
  let va = mk a and vb = mk b in
  (* VIA completes one entry per MTU descriptor: consume until the whole
     message has landed. *)
  let recv_bytes v n =
    let got = ref 0 in
    while !got < n || (n = 0 && !got = 0) do
      let c = Rivals.Via.recv v in
      got := !got + max 1 c.Rivals.Via.vi_bytes
    done
  in
  {
    Measure.label = "via";
    a_setup = (fun () -> ());
    b_setup = (fun () -> ());
    a_send = (fun n -> Rivals.Via.send va ~dst:b n);
    a_recv = (fun n -> recv_bytes va n);
    b_send = (fun n -> Rivals.Via.send vb ~dst:a n);
    b_recv = (fun n -> recv_bytes vb n);
  }

(* Receiver CPU while waiting on a quiet link: a message arrives after
   1 ms; how busy was the receiving CPU in the meantime? *)
let idle_wait_cpu ~config ~pair_of =
  let c = Net.create ~config ~n:2 () in
  let pair = pair_of c ~a:0 ~b:1 in
  let nb = Net.node c 1 in
  let util = ref 0. in
  Process.spawn c.Net.sim (fun () ->
      pair.Measure.b_setup ();
      Os_model.Cpu.reset_stats (Node.cpu nb);
      pair.Measure.b_recv 64;
      util := Os_model.Cpu.utilization (Node.cpu nb) ~since:0);
  Process.spawn c.Net.sim (fun () ->
      pair.Measure.a_setup ();
      Process.delay (Time.ms 1.);
      pair.Measure.a_send 64);
  Net.run c;
  !util

let sec3 fmt =
  let row name config pair_of =
    let lat =
      let c = Net.create ~config ~n:2 () in
      let pair = pair_of c ~a:0 ~b:1 in
      Time.to_us
        (Measure.pingpong c pair ~size:0 ~reps:10 ~warmup:2 ())
          .Measure.one_way
    in
    let bw =
      let c = Net.create ~config ~n:2 () in
      let pair = pair_of c ~a:0 ~b:1 in
      (Measure.pingpong c pair ~size:1_048_576 ~reps:3 ~warmup:1 ())
        .Measure.pp_bandwidth_mbps
    in
    let idle = idle_wait_cpu ~config ~pair_of in
    { r_name = name; r_latency_us = lat; r_bw_mbps = bw; r_idle_cpu = idle }
  in
  let rows =
    [
      row "CLIC (OS path, unmodified driver)" (config_mtu 9000)
        (fun c ~a ~b -> Measure.clic_pair c ~a ~b ());
      row "GAMMA-like (own driver, active ports)" gamma_config gamma_pair;
      row "VIA-like (user level, polling)" via_config via_pair;
    ]
  in
  Render.section fmt
    "Section 3.2 comparison: CLIC vs GAMMA vs VIA design points (MTU 9000)";
  Render.table fmt
    ~header:
      [ "system"; "0B latency (us)"; "1MB bandwidth (Mbit/s)";
        "receiver CPU while waiting" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.r_name;
             Printf.sprintf "%.1f" r.r_latency_us;
             Printf.sprintf "%.1f" r.r_bw_mbps;
             Printf.sprintf "%.0f%%" (100. *. r.r_idle_cpu) ])
         rows)
    ();
  Format.fprintf fmt
    "paper reference: GAMMA 32 us / ~800 Mbit/s on the GA620; VIA avoids \
     the OS but pays with polling and gives up reliable delivery.@.";
  rows

(* ------------------------------------------------------------------ *)
(* Extension 4: multiprogramming — CLIC latency while the node also runs
   a bulk TCP transfer (the paper keeps the scheduler in the path exactly
   so concurrent communicating processes are served promptly). *)

let percentile_of samples p =
  let arr = Array.of_list (List.sort compare samples) in
  let n = Array.length arr in
  if n = 0 then 0
  else arr.(min (n - 1) (int_of_float (p /. 100. *. float_of_int n)))

let ext4 fmt =
  let run ~loaded =
    let c = Net.create ~n:2 () in
    if loaded then begin
      (* competing bulk TCP transfer between the same two nodes *)
      let na = Net.node c 0 and nb = Net.node c 1 in
      Proto.Tcp.listen nb.Node.tcp ~port:9100;
      Node.spawn nb (fun () ->
          let conn = Proto.Tcp.accept nb.Node.tcp ~port:9100 in
          let rec drain () =
            Proto.Tcp.recv conn 65536;
            drain ()
          in
          drain ());
      Node.spawn na (fun () ->
          let conn = Proto.Tcp.connect na.Node.tcp ~dst:1 ~port:9100 in
          let rec pump () =
            Proto.Tcp.send conn 65536;
            pump ()
          in
          pump ())
    end;
    let pair = Measure.clic_pair c ~a:0 ~b:1 () in
    (* bound the run: the TCP pumps never terminate on their own *)
    let samples = ref [] in
    let sim = c.Net.sim in
    Process.spawn sim (fun () ->
        for _ = 1 to 204 do
          let t0 = Sim.now sim in
          pair.Measure.a_send 64;
          pair.Measure.a_recv 64;
          samples := Time.diff (Sim.now sim) t0 / 2 :: !samples
        done);
    Process.spawn sim (fun () ->
        for _ = 1 to 204 do
          pair.Measure.b_recv 64;
          pair.Measure.b_send 64
        done);
    Net.run_for c (Time.ms 200.);
    (* drop warmup *)
    match List.rev !samples with
    | _ :: _ :: _ :: _ :: rest when rest <> [] -> rest
    | l -> l
  in
  let idle = run ~loaded:false and loaded = run ~loaded:true in
  let row name samples =
    [ name;
      Printf.sprintf "%.1f" (Time.to_us (percentile_of samples 50.));
      Printf.sprintf "%.1f" (Time.to_us (percentile_of samples 95.));
      Printf.sprintf "%.1f" (Time.to_us (percentile_of samples 99.)) ]
  in
  Render.section fmt
    "Extension: CLIC latency under competing TCP bulk load (64B ping-pong)";
  Render.table fmt
    ~header:[ "condition"; "p50 (us)"; "p95 (us)"; "p99 (us)" ]
    ~rows:[ row "idle node" idle; row "node also running TCP bulk" loaded ]
    ();
  Format.fprintf fmt
    "the latency-sensitive process is still served while bulk TCP \
     saturates the same CPUs; its latency grows by the kernel-preemption \
     quanta it now queues behind, but stays bounded (no starvation).@.";
  [ ("idle", idle); ("loaded", loaded) ]

(* ------------------------------------------------------------------ *)
(* Stress: the workload generators under clean and faulty networks — not a
   paper figure, but the robustness evidence an adopter would ask for. *)

let stress fmt =
  let run name ~fault mk =
    let config =
      match fault with
      | None -> Node.default_config
      | Some prob ->
          { Node.default_config with
            link_fault =
              Some
                (fun () ->
                  Hw.Fault.drop ~rng:(Rng.create ~seed:20030422) ~prob) }
    in
    let c = Net.create ~config ~n:6 () in
    let s = mk c in
    let retx =
      let total = ref 0 in
      for i = 0 to Net.size c - 1 do
        total :=
          !total
          + Clic.Clic_module.retransmissions
              (Clic.Api.kernel (Net.node c i).Node.clic)
      done;
      !total
    in
    ( name, s.Workload.sent, s.Workload.delivered,
      float_of_int s.Workload.bytes /. 1e6, retx )
  in
  let rows =
    [
      run "uniform random, clean" ~fault:None (fun c ->
          Workload.uniform_random c ~seed:1 ~messages_per_node:60 ());
      run "uniform random, 2% frame loss" ~fault:(Some 0.02) (fun c ->
          Workload.uniform_random c ~seed:1 ~messages_per_node:60 ());
      run "incast on node 0, clean" ~fault:None (fun c ->
          Workload.hotspot c ~seed:2 ~target:0 ~messages_per_node:60 ());
      run "incast on node 0, 2% frame loss" ~fault:(Some 0.02) (fun c ->
          Workload.hotspot c ~seed:2 ~target:0 ~messages_per_node:60 ());
    ]
  in
  Render.section fmt "Stress: synthetic workloads, 6 nodes, CLIC transport";
  Render.table fmt
    ~header:[ "workload"; "sent"; "delivered"; "MB"; "retransmissions" ]
    ~rows:
      (List.map
         (fun (n, s, d, mb, r) ->
           [ n; string_of_int s; string_of_int d; Printf.sprintf "%.1f" mb;
             string_of_int r ])
         rows)
    ();
  Format.fprintf fmt
    "every message is delivered exactly once in both conditions; loss only \
     shows up as retransmission work.@.";
  rows

(* ------------------------------------------------------------------ *)
(* Chaos: the reliability layer under a loss-rate x burstiness sweep plus
   duplication, jitter and link flaps — the adaptive-RTO evidence.  Not a
   paper figure: the paper only asserts CLIC "guarantees reliability". *)

type chaos_row = {
  c_name : string;
  c_latency_us : float;  (* 1KB ping-pong one-way under the fault *)
  c_goodput_mbps : float;
  c_elapsed_ms : float;
  c_retx : int;
  c_timeouts : int;
  c_fast_rtx : int;
  c_rto_mean_us : float;
  c_rto_max_us : float;
}

(* Each link gets its own independent fault instance: a fresh split of a
   profile-level root stream, so runs are reproducible and adding a link
   never perturbs the draws of another. *)
let chaos_profiles () =
  let seeded seed k =
    let root = Rng.create ~seed in
    Some (fun () -> k (Rng.split root))
  in
  [
    ("clean", None);
    ( "0.1% uniform",
      seeded 101 (fun rng -> Hw.Fault.drop ~rng ~prob:0.001) );
    ("1% uniform", seeded 102 (fun rng -> Hw.Fault.drop ~rng ~prob:0.01));
    ("3% uniform", seeded 103 (fun rng -> Hw.Fault.drop ~rng ~prob:0.03));
    ( "1% bursty (GE, ~20-frame bursts)",
      seeded 104 (fun rng ->
          Hw.Fault.gilbert_elliott ~rng ~p_good_to_bad:0.001
            ~p_bad_to_good:0.05 ~loss_bad:0.5 ()) );
    ( "3% bursty (GE, ~20-frame bursts)",
      seeded 105 (fun rng ->
          Hw.Fault.gilbert_elliott ~rng ~p_good_to_bad:0.003
            ~p_bad_to_good:0.05 ~loss_bad:0.5 ()) );
    ( "1% loss + 1% dup + 50us jitter",
      seeded 106 (fun rng ->
          Hw.Fault.compose
            [
              Hw.Fault.drop ~rng:(Rng.split rng) ~prob:0.01;
              Hw.Fault.duplicate ~rng:(Rng.split rng) ~prob:0.01;
              Hw.Fault.jitter ~rng:(Rng.split rng) ~max_delay:(Time.us 50.);
            ]) );
    ( "link flap: 4ms up / 250us down",
      Some
        (fun () ->
          Hw.Fault.flap ~up:(Time.ms 4.) ~down:(Time.us 250.)
            ~phase:(Time.ms 1.) ()) );
  ]

let chaos ?(quick = false) fmt =
  let messages = if quick then 120 else 400 in
  let size = 16384 in
  let reps = if quick then 16 else 48 in
  let row (name, link_fault) =
    let config = { Node.default_config with mtu = 9000; link_fault } in
    let latency_us =
      let c = Net.create ~config ~n:2 () in
      let pair = Measure.clic_pair c ~a:0 ~b:1 () in
      let r = Measure.pingpong c pair ~size:1024 ~reps ~warmup:1 () in
      Time.to_us r.Measure.one_way
    in
    let c = Net.create ~config ~n:2 () in
    let pair = Measure.clic_pair c ~a:0 ~b:1 () in
    let r = Measure.stream c pair ~a:0 ~b:1 ~size ~messages in
    let sum f =
      f (Clic.Api.kernel (Net.node c 0).Node.clic)
      + f (Clic.Api.kernel (Net.node c 1).Node.clic)
    in
    let rto_mean, rto_max =
      match
        Clic.Clic_module.channel_to
          (Clic.Api.kernel (Net.node c 0).Node.clic)
          ~peer:1
      with
      | Some chan ->
          let s = Clic.Channel.rto_stats chan in
          if Stats.Summary.count s = 0 then (0., 0.)
          else (Stats.Summary.mean s, Stats.Summary.max s)
      | None -> (0., 0.)
    in
    {
      c_name = name;
      c_latency_us = latency_us;
      c_goodput_mbps = r.Measure.st_bandwidth_mbps;
      c_elapsed_ms = Time.to_us r.Measure.elapsed /. 1000.;
      c_retx = sum Clic.Clic_module.retransmissions;
      c_timeouts = sum Clic.Clic_module.timeouts;
      c_fast_rtx = sum Clic.Clic_module.fast_retransmits;
      c_rto_mean_us = rto_mean;
      c_rto_max_us = rto_max;
    }
  in
  let rows = List.map row (chaos_profiles ()) in
  Render.section fmt
    (Printf.sprintf
       "Chaos: %d x %dKB stream + 1KB ping-pong under fault injection (MTU \
        9000)"
       messages (size / 1024));
  Render.table fmt
    ~header:
      [ "fault profile"; "pp us"; "Mbit/s"; "ms"; "retx"; "rto"; "frtx";
        "rto avg us"; "rto max us" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.c_name;
             Printf.sprintf "%.1f" r.c_latency_us;
             Printf.sprintf "%.1f" r.c_goodput_mbps;
             Printf.sprintf "%.1f" r.c_elapsed_ms;
             string_of_int r.c_retx;
             string_of_int r.c_timeouts;
             string_of_int r.c_fast_rtx;
             Printf.sprintf "%.0f" r.c_rto_mean_us;
             Printf.sprintf "%.0f" r.c_rto_max_us;
           ])
         rows)
    ();
  (match rows with
  | clean :: _ ->
      Format.fprintf fmt
        "every run completes (no deadlock); recovery cost vs clean: worst \
         +%.1f ms stream time, +%.1f us ping-pong one-way.  'rto' counts \
         timer expiries, 'frtx' duplicate-ack fast retransmits; the RTO \
         columns show the armed timeout adapting from the initial %.0f us.@."
        (List.fold_left
           (fun acc r -> Float.max acc (r.c_elapsed_ms -. clean.c_elapsed_ms))
           0. rows)
        (List.fold_left
           (fun acc r -> Float.max acc (r.c_latency_us -. clean.c_latency_us))
           0. rows)
        (Time.to_us Clic.Params.default.Clic.Params.retransmit_timeout)
  | [] -> ());
  rows

(* ------------------------------------------------------------------ *)
(* Incast: N senders collapse onto one receiver through the switch, with
   tail-drop output queues vs a shared-buffer switch generating 802.3x
   PAUSE.  Not a paper figure — the congestion-robustness evidence for
   CLIC's switched-fabric deployment story. *)

type incast_row = {
  in_name : string;
  in_sent : int;
  in_delivered : int;
  in_elapsed_ms : float;
  in_retx : int;
  in_ingress_drops : int;
  in_egress_drops : int;
  in_pause_tx : int;  (* PAUSE frames the switch generated *)
  in_tx_paused_us : float;  (* total sender-NIC time spent XOFFed *)
  in_peak_buffer : int;  (* peak shared-buffer occupancy, bytes *)
}

(* Both conditions share the fabric geometry (bounded 6-frame uplinks, the
   default 256 KiB shared buffer) and differ only in flow control: the
   tail-drop switch caps each output FIFO at 12 frames and its stations
   blind-dump; the PAUSE switch admits on buffer bytes alone, XOFFs hot
   ingress ports, and its NICs honour PAUSE and uplink backpressure —
   provisioned for zero loss ({!Hw.Switch.protected_provisioning}). *)
(* Server-class hosts on a Gigabit fabric: a 64-bit PCI bus DMAs frames
   at ~240 MB/s, twice wire speed, so a blind-dumping NIC really can
   overrun the bounded switch ingress FIFO during a window burst.  The
   tail-drop baseline keeps the classic cheap per-port 12-frame egress
   FIFOs; the 802.3x build drops the frame caps and lets the shared
   buffer plus PAUSE absorb the same bursts losslessly. *)
let incast_config ~pause =
  {
    Node.default_config with
    clic_params = Clic.Params.congestion;
    pci_width_bytes = 8;
    pci_efficiency = 0.9;
    switch_ingress_frames = Some 6;
    switch_egress_frames = (if pause then None else Some 12);
    switch_buffer = Some { Hw.Switch.default_buffer with pause };
    nic_pause = (if pause then Some Hw.Nic.pause_802_3x else None);
  }

let incast_counters c =
  let sw = List.hd c.Net.switches in
  let retx = ref 0 and paused_ns = ref 0 in
  for i = 0 to Net.size c - 1 do
    let node = Net.node c i in
    retx :=
      !retx + Clic.Clic_module.retransmissions (Clic.Api.kernel node.Node.clic);
    List.iter
      (fun nic -> paused_ns := !paused_ns + Hw.Nic.tx_paused_ns nic)
      node.Node.nics
  done;
  (sw, !retx, !paused_ns)

let incast ?(quick = false) ?(senders = 4) ?(size = 8192) ?messages fmt =
  let messages =
    match messages with Some m -> m | None -> if quick then 12 else 40
  in
  let n = senders + 1 in
  let run name ~pause =
    let c = Net.create ~config:(incast_config ~pause) ~n () in
    let s =
      Workload.hotspot c ~seed:7 ~target:0 ~messages_per_node:messages ~size ()
    in
    let sw, retx, paused_ns = incast_counters c in
    {
      in_name = name;
      in_sent = s.Workload.sent;
      in_delivered = s.Workload.delivered;
      in_elapsed_ms = Time.to_ms s.Workload.elapsed;
      in_retx = retx;
      in_ingress_drops = Hw.Switch.ingress_drops sw;
      in_egress_drops = Hw.Switch.egress_drops sw;
      in_pause_tx = Hw.Switch.pause_frames_tx sw;
      in_tx_paused_us = float_of_int paused_ns /. 1e3;
      in_peak_buffer = Hw.Switch.peak_buffer_occupied sw;
    }
  in
  let rows =
    [ run "tail-drop" ~pause:false; run "802.3x PAUSE" ~pause:true ]
  in
  Render.section fmt
    (Printf.sprintf
       "Incast: %d senders x %d x %dKB onto node 0, tail-drop vs 802.3x \
        PAUSE"
       senders messages (size / 1024));
  Render.table fmt
    ~header:
      [ "switch"; "sent"; "delivered"; "ms"; "retx"; "ingress drops";
        "egress drops"; "pause tx"; "paused us"; "peak buf B" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.in_name;
             string_of_int r.in_sent;
             string_of_int r.in_delivered;
             Printf.sprintf "%.1f" r.in_elapsed_ms;
             string_of_int r.in_retx;
             string_of_int r.in_ingress_drops;
             string_of_int r.in_egress_drops;
             string_of_int r.in_pause_tx;
             Printf.sprintf "%.0f" r.in_tx_paused_us;
             string_of_int r.in_peak_buffer;
           ])
         rows)
    ();
  (* MPI gather is the same collapse dressed as a collective: every rank
     sends its contribution to the root at once. *)
  let gather_bytes = if quick then 16384 else 65536 in
  let gather name ~pause =
    let c = Net.create ~config:(incast_config ~pause) ~n () in
    let sim = c.Net.sim in
    let reg = Mpi_layer.Mpi_clic.registry () in
    let finished = Ivar.create () in
    let remaining = ref n in
    for rank = 0 to n - 1 do
      let node = Net.node c rank in
      let mpi =
        Mpi_layer.Mpi.create node.Node.env ~rank
          (Mpi_layer.Mpi_clic.transport reg node.Node.clic ~rank)
          ()
      in
      Node.spawn node (fun () ->
          Mpi_layer.Collectives.gather mpi ~rank ~root:0 ~size:n gather_bytes;
          decr remaining;
          if !remaining = 0 then Ivar.fill finished (Sim.now sim))
    done;
    Net.run c;
    let sw, retx, paused_ns = incast_counters c in
    ( name,
      (match Ivar.peek finished with Some t -> Time.to_us t | None -> nan),
      retx,
      Hw.Switch.ingress_drops sw + Hw.Switch.egress_drops sw,
      Hw.Switch.pause_frames_tx sw,
      float_of_int paused_ns /. 1e3 )
  in
  let gather_rows =
    [ gather "tail-drop" ~pause:false; gather "802.3x PAUSE" ~pause:true ]
  in
  Render.section fmt
    (Printf.sprintf "MPI gather under congestion: %d ranks x %dKB to root 0"
       n (gather_bytes / 1024));
  Render.table fmt
    ~header:
      [ "switch"; "completion us"; "retx"; "switch drops"; "pause tx";
        "paused us" ]
    ~rows:
      (List.map
         (fun (name, us, retx, drops, ptx, pus) ->
           [
             name;
             Printf.sprintf "%.1f" us;
             string_of_int retx;
             string_of_int drops;
             string_of_int ptx;
             Printf.sprintf "%.0f" pus;
           ])
         gather_rows)
    ();
  (match rows with
  | [ tail; pause ] ->
      Format.fprintf fmt
        "tail-drop loses %d frames at the switch (%d ingress + %d egress) \
         and recovers them with %d retransmissions; PAUSE loses %d, holding \
         senders off for %.0f us instead (%d PAUSE frames, peak buffer %dB \
         of %dB).@."
        (tail.in_ingress_drops + tail.in_egress_drops)
        tail.in_ingress_drops tail.in_egress_drops tail.in_retx
        (pause.in_ingress_drops + pause.in_egress_drops)
        pause.in_tx_paused_us pause.in_pause_tx pause.in_peak_buffer
        Hw.Switch.default_buffer.Hw.Switch.total_bytes
  | _ -> ());
  (rows, gather_rows)

(* ------------------------------------------------------------------ *)

type fabric_row = {
  fb_name : string;
  fb_sent : int;
  fb_delivered : int;
  fb_elapsed_ms : float;
  fb_retx : int;
  fb_drops : int;
  fb_spine_pause : int;
  fb_tor_pause : int;
  fb_paused_us : float;
  fb_peak_buf : int;
}

type reroute_row = {
  rr_sent : int;
  rr_delivered : int;
  rr_retx : int;
  rr_spine0_tx : int;
  rr_spine1_tx : int;
  rr_down_drops : int;
}

let cluster_retx_paused c =
  let retx = ref 0 and paused_ns = ref 0 in
  for i = 0 to Net.size c - 1 do
    let node = Net.node c i in
    retx :=
      !retx + Clic.Clic_module.retransmissions (Clic.Api.kernel node.Node.clic);
    List.iter
      (fun nic -> paused_ns := !paused_ns + Hw.Nic.tx_paused_ns nic)
      node.Node.nics
  done;
  (!retx, !paused_ns)

(* Cross-rack incast through an oversubscribed spine, tail-drop vs 802.3x
   PAUSE, plus spine-failure rerouting — the congestion and resilience
   behaviours a single star cannot express.

   Panel 1 runs on a 3-rack leaf/spine with ONE spine: six senders in the
   two remote racks stampede node 0, so each remote ToR funnels 3 Gb/s of
   offered load into its 1 Gb/s uplink and the spine funnels both trunks
   into tor0's.  Under tail-drop the trunk egress FIFOs overflow — the
   oversubscribed-uplink collapse.  Under 802.3x the spine's trunk-ingress
   watermarks XOFF the ToRs, the gated ToRs fill and XOFF the sender NICs,
   and the congestion tree visibly spreads hop by hop: spine PAUSE
   frames, ToR PAUSE frames, sender NICs off the wire — with zero loss.

   Panel 2 runs a 2-spine fabric with ECMP across both, kills spine0
   mid-workload ({!Cluster.Net.fail_switch}: ports drain, routes
   recompile around the corpse) and requires every message to arrive
   anyway over the surviving spine. *)
let fabric ?(quick = false) fmt =
  let messages = if quick then 8 else 24 in
  let size = if quick then 4096 else 8192 in
  let per_rack = 3 in
  let topo = Topology.leaf_spine ~racks:3 ~per_rack ~spines:1 () in
  let senders = List.init (2 * per_rack) (fun i -> per_rack + i) in
  let run name ~pause =
    let c = Net.create_topo ~config:(incast_config ~pause) ~topo () in
    let s =
      Workload.hotspot c ~seed:11 ~target:0 ~senders
        ~messages_per_node:messages ~size ()
    in
    let retx, paused_ns = cluster_retx_paused c in
    let drops =
      List.fold_left
        (fun acc sw -> acc + Hw.Switch.ingress_drops sw + Hw.Switch.egress_drops sw)
        0 c.Net.switches
    in
    let spine = Net.switch c "spine0." in
    let tor_pause =
      List.fold_left
        (fun acc r -> acc + Hw.Switch.pause_frames_tx (Net.switch c r))
        0 [ "tor0."; "tor1."; "tor2." ]
    in
    let peak =
      List.fold_left
        (fun acc sw -> max acc (Hw.Switch.peak_buffer_occupied sw))
        0 c.Net.switches
    in
    {
      fb_name = name;
      fb_sent = s.Workload.sent;
      fb_delivered = s.Workload.delivered;
      fb_elapsed_ms = Time.to_ms s.Workload.elapsed;
      fb_retx = retx;
      fb_drops = drops;
      fb_spine_pause = Hw.Switch.pause_frames_tx spine;
      fb_tor_pause = tor_pause;
      fb_paused_us = float_of_int paused_ns /. 1e3;
      fb_peak_buf = peak;
    }
  in
  let rows =
    [ run "tail-drop" ~pause:false; run "802.3x PAUSE" ~pause:true ]
  in
  Render.section fmt
    (Printf.sprintf
       "Cross-rack incast: %d remote senders x %d x %dKB onto node 0 \
        through one oversubscribed spine"
       (2 * per_rack) messages (size / 1024));
  Render.table fmt
    ~header:
      [ "fabric"; "sent"; "delivered"; "ms"; "retx"; "switch drops";
        "spine pause"; "tor pause"; "paused us"; "peak buf B" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.fb_name;
             string_of_int r.fb_sent;
             string_of_int r.fb_delivered;
             Printf.sprintf "%.1f" r.fb_elapsed_ms;
             string_of_int r.fb_retx;
             string_of_int r.fb_drops;
             string_of_int r.fb_spine_pause;
             string_of_int r.fb_tor_pause;
             Printf.sprintf "%.0f" r.fb_paused_us;
             string_of_int r.fb_peak_buf;
           ])
         rows)
    ();
  (match rows with
  | [ tail; pause ] ->
      Format.fprintf fmt
        "tail-drop loses %d frames at the oversubscribed trunks and repairs \
         them with %d retransmissions; 802.3x loses %d — the spine XOFFs \
         the ToRs (%d PAUSE frames) and the ToRs XOFF the senders (%d), a \
         congestion tree holding the stampede at the sources for %.0f us.@."
        tail.fb_drops tail.fb_retx pause.fb_drops pause.fb_spine_pause
        pause.fb_tor_pause pause.fb_paused_us
  | _ -> ());
  (* Spine failure under load: 2-way ECMP, then one spine dies mid-run. *)
  let topo2 = Topology.leaf_spine ~racks:2 ~per_rack:2 ~spines:2 () in
  let c = Net.create_topo ~config:(incast_config ~pause:true) ~topo:topo2 () in
  Sim.schedule c.Net.sim ~after:(Time.us 800.) (fun () ->
      Net.fail_switch c "spine0.")
  |> ignore;
  let s =
    Workload.uniform_random c ~seed:5
      ~messages_per_node:(if quick then 12 else 40)
      ~min_size:2048 ~max_size:8192 ()
  in
  let retx, _ = cluster_retx_paused c in
  let tor0 = Net.switch c "tor0." in
  let reroute =
    {
      rr_sent = s.Workload.sent;
      rr_delivered = s.Workload.delivered;
      rr_retx = retx;
      rr_spine0_tx = Hw.Switch.trunk_tx_frames tor0 ~peer:"spine0.0";
      rr_spine1_tx = Hw.Switch.trunk_tx_frames tor0 ~peer:"spine1.0";
      rr_down_drops = Hw.Switch.down_drops (Net.switch c "spine0.");
    }
  in
  Render.section fmt "Spine failure: ECMP over 2 spines, spine0 dies at 800us";
  Render.table fmt
    ~header:
      [ "sent"; "delivered"; "retx"; "tor0->spine0"; "tor0->spine1";
        "dead-spine drops" ]
    ~rows:
      [
        [
          string_of_int reroute.rr_sent;
          string_of_int reroute.rr_delivered;
          string_of_int reroute.rr_retx;
          string_of_int reroute.rr_spine0_tx;
          string_of_int reroute.rr_spine1_tx;
          string_of_int reroute.rr_down_drops;
        ];
      ]
    ();
  Format.fprintf fmt
    "spine0 dies at 800us; routes recompile onto spine1 and all %d \
     messages still arrive (%d retransmissions cover the frames that died \
     with the spine).@."
    reroute.rr_sent reroute.rr_retx;
  (rows, reroute)

(* ------------------------------------------------------------------ *)
(* Congestion-regime matrix: {tail-drop, 802.3x PAUSE, ECN/DCTCP} x
   {incast star, cross-rack fabric} x {go-back-N, SACK}, plus a same-seed
   bursty-loss panel comparing the retransmit schemes byte for byte.  Not
   a paper figure — the evidence that CLIC's reliability layer composes
   with the three congestion-control answers a switched fabric offers. *)

type congestion_cell = {
  cg_regime : string;
  cg_topo : string;
  cg_scheme : string;
  cg_sent : int;
  cg_delivered : int;
  cg_elapsed_ms : float;
  cg_retx : int;
  cg_retx_bytes : int;
  cg_switch_drops : int;
  cg_pause_tx : int;
  cg_ecn_marks : int;
  cg_ce_echoes : int;
  cg_sacked : int;
}

type bursty_row = {
  bu_scheme : string;
  bu_delivered : int;
  bu_elapsed_ms : float;
  bu_retx : int;
  bu_retx_bytes : int;
  bu_retx_bytes_saved : int;
  bu_sacked : int;
  bu_timeouts : int;
}

(* The three regimes share the incast fabric geometry (bounded 6-frame
   uplinks, server-class PCI) and differ only in how the fabric answers
   congestion: tail-drop sheds load from capped egress FIFOs; PAUSE XOFFs
   hot ingress ports losslessly; ECN keeps the shared buffer uncapped,
   marks CE once an egress queue crosses the threshold, and relies on
   DCTCP senders to back off.  The ECN fabric's NICs are flow-control
   capable so they respect uplink backpressure instead of blind-dumping
   (no PAUSE frame is ever generated: the switch has PAUSE off). *)
let congestion_config ~regime ~scheme =
  let clic_params =
    {
      Clic.Params.congestion with
      retx_scheme = scheme;
      dctcp = (match regime with `Ecn -> true | `Tail_drop | `Pause -> false);
    }
  in
  let base =
    {
      Node.default_config with
      clic_params;
      pci_width_bytes = 8;
      pci_efficiency = 0.9;
      switch_ingress_frames = Some 6;
    }
  in
  match regime with
  | `Tail_drop ->
      {
        base with
        switch_egress_frames = Some 12;
        switch_buffer = Some { Hw.Switch.default_buffer with pause = false };
      }
  | `Pause ->
      {
        base with
        switch_buffer = Some { Hw.Switch.default_buffer with pause = true };
        nic_pause = Some Hw.Nic.pause_802_3x;
      }
  | `Ecn ->
      {
        base with
        switch_buffer =
          Some
            {
              Hw.Switch.default_buffer with
              pause = false;
              ecn_threshold = clic_params.Clic.Params.ecn_threshold;
            };
        nic_pause = Some Hw.Nic.pause_802_3x;
      }

let regime_name = function
  | `Tail_drop -> "tail-drop"
  | `Pause -> "pause"
  | `Ecn -> "ecn"

let scheme_name = function `Go_back_n -> "gbn" | `Sack -> "sack"

let cluster_clic_sum c f =
  let total = ref 0 in
  for i = 0 to Net.size c - 1 do
    total := !total + f (Clic.Api.kernel (Net.node c i).Node.clic)
  done;
  !total

let switch_sum c f =
  List.fold_left (fun acc sw -> acc + f sw) 0 c.Net.switches

let congestion_cell ~quick ~regime ~topo ~scheme =
  let config = congestion_config ~regime ~scheme in
  let messages = if quick then 8 else 20 in
  let size = 8192 in
  let c, s =
    match topo with
    | `Incast ->
        let c = Net.create ~config ~n:5 () in
        (c, Workload.hotspot c ~seed:13 ~target:0 ~messages_per_node:messages
              ~size ())
    | `Cross_rack ->
        let t = Topology.leaf_spine ~racks:3 ~per_rack:3 ~spines:1 () in
        let c = Net.create_topo ~config ~topo:t () in
        (* only the remote racks stampede, so every flow funnels 6 Gb/s of
           offered load through the two 1 Gb/s trunks into rack 0 *)
        (c, Workload.hotspot c ~seed:13 ~target:0
              ~senders:[ 3; 4; 5; 6; 7; 8 ] ~messages_per_node:messages ~size
              ())
  in
  {
    cg_regime = regime_name regime;
    cg_topo = (match topo with `Incast -> "incast" | `Cross_rack -> "cross-rack");
    cg_scheme = scheme_name scheme;
    cg_sent = s.Workload.sent;
    cg_delivered = s.Workload.delivered;
    cg_elapsed_ms = Time.to_ms s.Workload.elapsed;
    cg_retx = cluster_clic_sum c Clic.Clic_module.retransmissions;
    cg_retx_bytes = cluster_clic_sum c Clic.Clic_module.retx_bytes;
    cg_switch_drops =
      switch_sum c (fun sw ->
          Hw.Switch.ingress_drops sw + Hw.Switch.egress_drops sw);
    cg_pause_tx = switch_sum c Hw.Switch.pause_frames_tx;
    cg_ecn_marks = switch_sum c Hw.Switch.ecn_marked;
    cg_ce_echoes = cluster_clic_sum c Clic.Clic_module.ce_echoes;
    cg_sacked = cluster_clic_sum c Clic.Clic_module.sacked_segments;
  }

(* Same-seed bursty loss (Gilbert–Elliott, ~20-frame bursts at 50% loss):
   the only difference between the two runs is the retransmit scheme, so
   the retx-bytes column is the scheme's wire bill for identical weather. *)
let bursty_run ~quick ~scheme =
  let clic_params = { Clic.Params.congestion with retx_scheme = scheme } in
  let root = Rng.create ~seed:909 in
  let link_fault =
    Some
      (fun () ->
        Hw.Fault.gilbert_elliott ~rng:(Rng.split root) ~p_good_to_bad:0.01
          ~p_bad_to_good:0.05 ~loss_bad:0.5 ())
  in
  let config = { Node.default_config with clic_params; link_fault } in
  let c = Net.create ~config ~n:2 () in
  let messages = if quick then 40 else 150 in
  let size = 8192 in
  let pair = Measure.clic_pair c ~a:0 ~b:1 () in
  let r = Measure.stream c pair ~a:0 ~b:1 ~size ~messages in
  let k = Clic.Api.kernel (Net.node c 0).Node.clic in
  {
    bu_scheme = scheme_name scheme;
    bu_delivered = messages;
    bu_elapsed_ms = Time.to_us r.Measure.elapsed /. 1000.;
    bu_retx = Clic.Clic_module.retransmissions k;
    bu_retx_bytes = Clic.Clic_module.retx_bytes k;
    bu_retx_bytes_saved = Clic.Clic_module.retx_bytes_saved k;
    bu_sacked = Clic.Clic_module.sacked_segments k;
    bu_timeouts = Clic.Clic_module.timeouts k;
  }

let congestion_matrix ?(quick = false) fmt =
  let cells =
    List.concat_map
      (fun regime ->
        List.concat_map
          (fun topo ->
            List.map
              (fun scheme -> congestion_cell ~quick ~regime ~topo ~scheme)
              [ `Go_back_n; `Sack ])
          [ `Incast; `Cross_rack ])
      [ `Tail_drop; `Pause; `Ecn ]
  in
  Render.section fmt
    "Congestion matrix: {tail-drop, 802.3x PAUSE, ECN/DCTCP} x {incast, \
     cross-rack} x {go-back-N, SACK}";
  Render.table fmt
    ~header:
      [ "regime"; "topology"; "retx"; "sent"; "delivered"; "ms"; "resends";
        "retx B"; "sw drops"; "pause tx"; "CE marks"; "CE echoes"; "sacked" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.cg_regime;
             r.cg_topo;
             r.cg_scheme;
             string_of_int r.cg_sent;
             string_of_int r.cg_delivered;
             Printf.sprintf "%.1f" r.cg_elapsed_ms;
             string_of_int r.cg_retx;
             string_of_int r.cg_retx_bytes;
             string_of_int r.cg_switch_drops;
             string_of_int r.cg_pause_tx;
             string_of_int r.cg_ecn_marks;
             string_of_int r.cg_ce_echoes;
             string_of_int r.cg_sacked;
           ])
         cells)
    ();
  Format.fprintf fmt
    "the ECN rows keep the switch lossless without a single PAUSE frame: \
     CE marks above the %dKB egress threshold feed DCTCP back-off at the \
     senders.@."
    (Clic.Params.congestion.Clic.Params.ecn_threshold / 1024);
  let bursty =
    [ bursty_run ~quick ~scheme:`Go_back_n; bursty_run ~quick ~scheme:`Sack ]
  in
  Render.section fmt
    "Bursty loss, same seed: go-back-N vs SACK retransmit bytes";
  Render.table fmt
    ~header:
      [ "scheme"; "delivered"; "ms"; "resends"; "retx bytes"; "bytes saved";
        "sacked"; "timeouts" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.bu_scheme;
             string_of_int r.bu_delivered;
             Printf.sprintf "%.1f" r.bu_elapsed_ms;
             string_of_int r.bu_retx;
             string_of_int r.bu_retx_bytes;
             string_of_int r.bu_retx_bytes_saved;
             string_of_int r.bu_sacked;
             string_of_int r.bu_timeouts;
           ])
         bursty)
    ();
  (match bursty with
  | [ gbn; sack ] ->
      Format.fprintf fmt
        "under identical burst weather SACK resends %d bytes against \
         go-back-N's %d: the peer's SACK blocks let %d segments sit out \
         the timeouts (%d bytes never resent).@."
        sack.bu_retx_bytes gbn.bu_retx_bytes sack.bu_sacked
        sack.bu_retx_bytes_saved
  | _ -> ());
  (cells, bursty)

(* ------------------------------------------------------------------ *)
(* SLO panel: CLIC vs TCP serving an identical open-loop request-response
   workload while the fabric quietly degrades.  Three conditions share
   one seed and one arrival schedule: a healthy fabric; a fail-slow
   fabric (every link sags to an eighth of its rate for a mid-run window
   while two NICs serve 6x slower and one switch port stalls its egress
   pump);
   and the same fail-slow window with random frame loss on top.  Nothing
   announces itself — the gray window is visible only in the tail. *)

type slo_row = {
  sl_system : string;  (* "clic" | "tcp" *)
  sl_condition : string;  (* "healthy" | "fail-slow" | "fail-slow+loss" *)
  sl_requests : int;
  sl_completed : int;
  sl_stranded : int;
  sl_timeouts : int;
  sl_p50_us : float;
  sl_p99_us : float;
  sl_p999_us : float;
  sl_goodput_mbps : float;
}

let slo_fault_from = Time.us 250.

let slo_fault_until ~quick = if quick then Time.ms 3. else Time.ms 8.

let slo_config ~quick ~condition =
  let brownout () =
    Hw.Fault.brownout ~fraction:0.125 ~from_:slo_fault_from
      ~until_:(slo_fault_until ~quick) ()
  in
  match condition with
  | `Healthy -> Node.default_config
  | `Fail_slow ->
      { Node.default_config with link_fault = Some (fun () -> brownout ()) }
  | `Fail_slow_loss ->
      let rng = Rng.create ~seed:61409 in
      {
        Node.default_config with
        link_fault =
          Some
            (fun () ->
              Hw.Fault.compose
                [
                  brownout ();
                  Hw.Fault.drop ~rng:(Rng.split rng) ~prob:0.005;
                ]);
      }

let slo_inject ~quick ~condition c =
  match condition with
  | `Healthy -> ()
  | `Fail_slow | `Fail_slow_loss ->
      Workload.inject_gray c ~nic_nodes:[ 1; 2 ] ~nic_factor:6.0
        ~stall_nodes:[ 3 ] ~from_:slo_fault_from
        ~until_:(slo_fault_until ~quick) ()

(* The TCP rival under the same open-loop schedule: one persistent
   connection per (client, server) pair, requests serialized FIFO per
   connection so exact-size framing matches each response to its
   request.  Latency is charged from the scheduled arrival instant, as
   in [Workload.open_loop] — connection backlog counts. *)
let tcp_open_loop c ~seed ~mean_gap ~requests_per_node ~req_size ~resp_size
    ~deadline ~port =
  let n = Net.size c in
  let sim = c.Net.sim in
  let completed = ref 0 and timeouts = ref 0 and fired = ref 0 in
  let samples = ref [] in
  let t_first = ref max_int and t_last = ref 0 in
  for j = 0 to n - 1 do
    let node = Net.node c j in
    Proto.Tcp.listen node.Node.tcp ~port;
    Node.spawn node (fun () ->
        for _ = 1 to n - 1 do
          let conn = Proto.Tcp.accept node.Node.tcp ~port in
          Node.spawn node (fun () ->
              let rec echo () =
                Proto.Tcp.recv conn req_size;
                Proto.Tcp.send conn resp_size;
                echo ()
              in
              echo ())
        done)
  done;
  let mail = Array.init n (fun _ -> Array.init n (fun _ -> Mailbox.create ()))
  in
  for i = 0 to n - 1 do
    let node = Net.node c i in
    for j = 0 to n - 1 do
      if i <> j then
        Node.spawn node (fun () ->
            let conn = Proto.Tcp.connect node.Node.tcp ~dst:j ~port in
            let rec serve () =
              let t0 = Mailbox.recv mail.(i).(j) in
              Proto.Tcp.send conn req_size;
              Proto.Tcp.recv conn resp_size;
              let now = Sim.now sim in
              incr completed;
              samples := Time.to_us (Time.diff now t0) :: !samples;
              if deadline > 0 && Time.diff now t0 > deadline then
                incr timeouts;
              if now > !t_last then t_last := now;
              serve ()
            in
            serve ())
    done
  done;
  let root_rng = Rng.create ~seed in
  for i = 0 to n - 1 do
    let rng = Rng.split root_rng in
    let node = Net.node c i in
    Node.spawn node (fun () ->
        for _ = 1 to requests_per_node do
          let gap = max 1 (int_of_float (Rng.exponential rng ~mean:mean_gap))
          in
          Process.delay gap;
          let d = Rng.int rng (n - 1) in
          let dst = if d >= i then d + 1 else d in
          let now = Sim.now sim in
          incr fired;
          if now < !t_first then t_first := now;
          Mailbox.send mail.(i).(dst) now
        done)
  done;
  Net.run c;
  let arr = Array.of_list !samples in
  let elapsed = if !t_last > !t_first then Time.diff !t_last !t_first else 1 in
  let goodput =
    float_of_int (!completed * resp_size * 8) /. Time.to_s elapsed /. 1e6
  in
  (!fired, !completed, !timeouts, arr, goodput)

let slo ?(quick = false) fmt =
  let requests_per_node = if quick then 40 else 120 in
  let mean_gap = Time.us 200. in
  let req_size = 512 and resp_size = 2048 in
  let deadline = Time.ms 1. in
  let port = 9300 in
  let seed = 30901 in
  let conditions =
    [ ("healthy", `Healthy); ("fail-slow", `Fail_slow);
      ("fail-slow+loss", `Fail_slow_loss) ]
  in
  let clic_row (name, condition) =
    let c = Net.create ~config:(slo_config ~quick ~condition) ~n:4 () in
    slo_inject ~quick ~condition c;
    let s, r =
      Workload.open_loop c ~seed
        ~arrival:(Workload.Poisson { mean_gap })
        ~requests_per_node ~req_size ~resp_size ~deadline ~port ()
    in
    ignore (s : Workload.stats);
    {
      sl_system = "clic";
      sl_condition = name;
      sl_requests = r.Workload.slo_requests;
      sl_completed = r.Workload.slo_completed;
      sl_stranded = r.Workload.slo_stranded;
      sl_timeouts = r.Workload.slo_timeouts;
      sl_p50_us = r.Workload.slo_p50_us;
      sl_p99_us = r.Workload.slo_p99_us;
      sl_p999_us = r.Workload.slo_p999_us;
      sl_goodput_mbps = r.Workload.slo_goodput_mbps;
    }
  in
  let tcp_row (name, condition) =
    let c = Net.create ~config:(slo_config ~quick ~condition) ~n:4 () in
    slo_inject ~quick ~condition c;
    let fired, completed, timeouts, arr, goodput =
      tcp_open_loop c ~seed ~mean_gap:(float_of_int mean_gap)
        ~requests_per_node ~req_size ~resp_size ~deadline ~port
    in
    {
      sl_system = "tcp";
      sl_condition = name;
      sl_requests = fired;
      sl_completed = completed;
      sl_stranded = fired - completed;
      sl_timeouts = timeouts;
      sl_p50_us = Workload.quantile arr 50.;
      sl_p99_us = Workload.quantile arr 99.;
      sl_p999_us = Workload.quantile arr 99.9;
      sl_goodput_mbps = goodput;
    }
  in
  let rows =
    List.map clic_row conditions @ List.map tcp_row conditions
  in
  Render.section fmt
    "Production SLOs: open-loop request-response under gray failure \
     (4 nodes, Poisson arrivals)";
  Render.table fmt
    ~header:
      [ "system"; "condition"; "done"; "timeouts"; "p50 (us)"; "p99 (us)";
        "p999 (us)"; "goodput (Mbit/s)" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.sl_system;
             r.sl_condition;
             Printf.sprintf "%d/%d" r.sl_completed r.sl_requests;
             string_of_int r.sl_timeouts;
             Printf.sprintf "%.1f" r.sl_p50_us;
             Printf.sprintf "%.1f" r.sl_p99_us;
             Printf.sprintf "%.1f" r.sl_p999_us;
             Printf.sprintf "%.1f" r.sl_goodput_mbps ])
         rows)
    ();
  Format.fprintf fmt
    "same seed, same arrival schedule: the gray window (links at an \
     eighth of their rate, two 6x-slow NICs, one stalling egress pump) \
     never drops the offered load by itself, so the damage shows up \
     purely in the latency tail — compare each system's p999 against \
     its healthy row.@.";
  rows

(* The trace-pinned companion to [slo]: one-way open-loop CLIC traffic
   under the same three conditions.  No response leg means each node's
   send order is its arrival schedule, so the logical trace survives the
   checker's seeded same-instant permutations — this is what scenario
   "slo" hashes.  (The echo panel's response ordering is timing-coupled
   and cannot be pinned; it stays behind `clic-sim slo`.) *)
let slo_trace ?(quick = false) fmt =
  let requests_per_node = if quick then 40 else 120 in
  let conditions =
    [ ("healthy", `Healthy); ("fail-slow", `Fail_slow);
      ("fail-slow+loss", `Fail_slow_loss) ]
  in
  let row (name, condition) =
    let c = Net.create ~config:(slo_config ~quick ~condition) ~n:4 () in
    slo_inject ~quick ~condition c;
    let s, r =
      Workload.open_loop_oneway c ~seed:30901
        ~arrival:(Workload.Poisson { mean_gap = Time.us 200. })
        ~requests_per_node ~req_size:512 ~deadline:(Time.ms 1.) ~port:9300
        ()
    in
    ignore (s : Workload.stats);
    (name, r)
  in
  let rows = List.map row conditions in
  Render.section fmt
    "SLO trace panel: one-way open-loop CLIC requests under gray failure";
  Render.table fmt
    ~header:[ "condition"; "done"; "timeouts"; "p50 (us)"; "p999 (us)" ]
    ~rows:
      (List.map
         (fun (name, r) ->
           [ name;
             Printf.sprintf "%d/%d" r.Workload.slo_completed
               r.Workload.slo_requests;
             string_of_int r.Workload.slo_timeouts;
             Printf.sprintf "%.1f" r.Workload.slo_p50_us;
             Printf.sprintf "%.1f" r.Workload.slo_p999_us ])
         rows)
    ();
  rows

(* ------------------------------------------------------------------ *)

let all_ids =
  [ "fig4"; "fig5"; "fig6"; "fig7"; "tab1"; "fig1"; "sec2"; "sec3"; "ext1";
    "ext2"; "ext3"; "ext4"; "stress"; "chaos"; "incast"; "fabric";
    "congestion"; "slo"; "slo-trace" ]

let run id fmt =
  match id with
  | "fig4" -> ignore (fig4 fmt)
  | "fig5" -> ignore (fig5 fmt)
  | "fig6" -> ignore (fig6 fmt)
  | "fig7" -> ignore (fig7 fmt)
  | "tab1" -> ignore (tab1 fmt)
  | "fig1" -> ignore (fig1 fmt)
  | "sec2" -> ignore (sec2 fmt)
  | "sec3" -> ignore (sec3 fmt)
  | "ext1" -> ignore (ext1 fmt)
  | "ext2" -> ignore (ext2 fmt)
  | "ext3" -> ignore (ext3 fmt)
  | "ext4" -> ignore (ext4 fmt)
  | "stress" -> ignore (stress fmt)
  | "chaos" -> ignore (chaos fmt)
  | "incast" -> ignore (incast fmt)
  | "fabric" -> ignore (fabric fmt)
  | "congestion" -> ignore (congestion_matrix fmt)
  | "slo" -> ignore (slo fmt)
  | "slo-trace" -> ignore (slo_trace fmt)
  | other -> invalid_arg (Printf.sprintf "Figures.run: unknown id %S" other)
