(** One driver per paper artefact: each builds fresh clusters, runs the
    benchmark procedure, prints the series/table the paper reports, and
    returns the data for programmatic checks.

    [quick] mode uses fewer sizes and repetitions (used by tests); default
    mode regenerates the full figures. *)

open Engine

val default_sizes : int list
val quick_sizes : int list

val fig4 : ?quick:bool -> Format.formatter -> Stats.Series.t list
(** CLIC bandwidth for MTU {1500, 9000} × {0-copy, 1-copy}. *)

val fig5 : ?quick:bool -> Format.formatter -> Stats.Series.t list
(** CLIC vs TCP/IP at both MTUs (0-copy for CLIC). *)

val fig6 : ?quick:bool -> Format.formatter -> Stats.Series.t list
(** CLIC, MPI-CLIC, MPI(TCP) and PVM(TCP) bandwidths (MTU 9000). *)

type stage = { stage : string; a_us : float; b_us : float }

type fig7_result = {
  stages : stage list;
  latency_a_us : float;  (** end-to-end one-way, stock path *)
  latency_b_us : float;  (** with the Figure 8b direct-ISR improvement *)
}

val fig7 : Format.formatter -> fig7_result
(** Per-stage timing of a 1400-byte packet, stock vs direct-from-ISR. *)

type scalar = { name : string; paper : float; measured : float }

val tab1 : ?quick:bool -> Format.formatter -> scalar list
(** The headline numbers: latency, asymptotes, ratios, half-bandwidth
    points — paper vs measured. *)

val fig1 : ?quick:bool -> Format.formatter -> (string * float * float) list
(** Data-path ablation (paths 1-4): (path, 0-byte latency us, 1 MB
    bandwidth Mbit/s) at MTU 1500. *)

val sec2 : Format.formatter -> (string * float * float * float) list
(** Interrupt-coalescing sweep: (setting, bandwidth Mbit/s, interrupts per
    packet, receiver CPU fraction) for saturated streams at both MTUs. *)

type rival_row = {
  r_name : string;
  r_latency_us : float;
  r_bw_mbps : float;
  r_idle_cpu : float;
      (** receiver CPU fraction while waiting on a quiet link *)
}

val sec3 : Format.formatter -> rival_row list
(** The Section 3.2 design-space comparison: CLIC vs a GAMMA-like
    replaced-driver active-port system vs a VIA-like user-level polling
    interface, on identical simulated hardware (except GAMMA's 64-bit
    PCI card, per the paper's GA620 numbers). *)

val ext1 : Format.formatter -> (string * float * float) list
(** NIC-side fragmentation ablation at MTU 1500: (config, bandwidth,
    receiver interrupts per 32 KB message). *)

val ext2 : Format.formatter -> (string * float) list
(** Channel bonding: stream bandwidth with 1 vs 2 NICs. *)

val ext3 : ?nodes:int -> Format.formatter -> (string * float) list
(** Broadcast of 64 KB to [nodes-1] peers: completion time (us) for CLIC
    hardware broadcast vs MPI-TCP binomial tree. *)

val ext4 : Format.formatter -> (string * Engine.Time.span list) list
(** Multiprogramming: 64-byte CLIC ping-pong latency samples on an idle
    node vs a node concurrently moving bulk TCP data ("idle"/"loaded"). *)

val stress : Format.formatter -> (string * int * int * float * int) list
(** Synthetic workloads (uniform random, incast) on clean and 2%-lossy
    networks: (name, sent, delivered, MB, retransmissions).  Exactly-once
    delivery must hold in every row. *)

type chaos_row = {
  c_name : string;
  c_latency_us : float;  (** 1 KB ping-pong one-way under the fault *)
  c_goodput_mbps : float;  (** stream goodput *)
  c_elapsed_ms : float;  (** stream completion time *)
  c_retx : int;  (** total retransmissions, both nodes *)
  c_timeouts : int;  (** retransmission-timer expiries *)
  c_fast_rtx : int;  (** duplicate-ack fast retransmits *)
  c_rto_mean_us : float;  (** mean armed RTO on the stream sender *)
  c_rto_max_us : float;  (** largest armed RTO (shows backoff) *)
}

val chaos : ?quick:bool -> Format.formatter -> chaos_row list
(** Reliability sweep: uniform loss rates, Gilbert–Elliott bursty loss,
    duplication + delay jitter, and periodic link flaps, each driving a
    ping-pong and a saturation stream.  Every profile must complete — the
    sweep exists to show the adaptive RTO, fast retransmit and teardown
    logic keep the transport live under abuse. *)

type incast_row = {
  in_name : string;
  in_sent : int;
  in_delivered : int;
  in_elapsed_ms : float;
  in_retx : int;  (** total retransmissions, all nodes *)
  in_ingress_drops : int;  (** frames lost at full switch uplink FIFOs *)
  in_egress_drops : int;  (** frames tail-dropped at switch egress *)
  in_pause_tx : int;  (** PAUSE frames the switch generated *)
  in_tx_paused_us : float;  (** total sender-NIC time spent XOFFed *)
  in_peak_buffer : int;  (** peak shared-buffer occupancy, bytes *)
}

val incast_config : pause:bool -> Cluster.Node.config
(** The incast fabric: bounded 6-frame uplinks, the default 256 KiB shared
    buffer, congestion-tuned CLIC.  [pause = false] is the tail-drop
    baseline (12-frame egress FIFOs, blind-dumping NICs); [pause = true]
    enables 802.3x end to end, provisioned for zero switch loss. *)

val incast :
  ?quick:bool ->
  ?senders:int ->
  ?size:int ->
  ?messages:int ->
  Format.formatter ->
  incast_row list * (string * float * int * int * int * float) list
(** N→1 incast collapse, tail-drop vs 802.3x PAUSE, plus an MPI gather
    under the same congestion: (switch, completion us, retx, switch drops,
    pause tx, paused us) per condition.  Every message must be delivered
    in every condition; with PAUSE the switch must lose nothing at all. *)

type fabric_row = {
  fb_name : string;
  fb_sent : int;
  fb_delivered : int;
  fb_elapsed_ms : float;
  fb_retx : int;
  fb_drops : int;  (** switch drops fabric-wide (ingress + egress) *)
  fb_spine_pause : int;  (** PAUSE frames the spine generated (XOFFs ToRs) *)
  fb_tor_pause : int;  (** PAUSE frames the ToRs generated (XOFF senders) *)
  fb_paused_us : float;  (** total sender-NIC time spent XOFFed *)
  fb_peak_buf : int;  (** largest peak shared-buffer occupancy, any switch *)
}

type reroute_row = {
  rr_sent : int;
  rr_delivered : int;
  rr_retx : int;
  rr_spine0_tx : int;  (** tor0 trunk frames toward the spine that dies *)
  rr_spine1_tx : int;  (** toward the survivor *)
  rr_down_drops : int;  (** frames the dead spine refused *)
}

val fabric :
  ?quick:bool -> Format.formatter -> fabric_row list * reroute_row
(** Cross-rack congestion panel: six remote senders incast node 0 through
    a one-spine leaf/spine (3 Gb/s per remote ToR into 1 Gb/s uplinks),
    tail-drop vs 802.3x PAUSE — the collapse a star cannot express — then
    a 2-spine ECMP fabric loses a spine mid-workload and must deliver
    everything over the survivor.  Under PAUSE the congestion tree must
    form hop by hop (spine XOFFs ToRs, ToRs XOFF senders) with zero
    switch loss. *)

type congestion_cell = {
  cg_regime : string;  (** "tail-drop" | "pause" | "ecn" *)
  cg_topo : string;  (** "incast" | "cross-rack" *)
  cg_scheme : string;  (** "gbn" | "sack" *)
  cg_sent : int;
  cg_delivered : int;
  cg_elapsed_ms : float;
  cg_retx : int;  (** retransmissions, all nodes *)
  cg_retx_bytes : int;  (** payload bytes retransmitted, all nodes *)
  cg_switch_drops : int;  (** ingress + egress drops, all switches *)
  cg_pause_tx : int;  (** PAUSE frames generated, all switches *)
  cg_ecn_marks : int;  (** frames CE-marked, all switches *)
  cg_ce_echoes : int;  (** CE echoes received by senders *)
  cg_sacked : int;  (** segments covered by received SACK blocks *)
}

type bursty_row = {
  bu_scheme : string;
  bu_delivered : int;
  bu_elapsed_ms : float;
  bu_retx : int;
  bu_retx_bytes : int;
  bu_retx_bytes_saved : int;  (** bytes RTO skipped thanks to SACKs *)
  bu_sacked : int;
  bu_timeouts : int;
}

val congestion_config :
  regime:[ `Tail_drop | `Pause | `Ecn ] ->
  scheme:[ `Go_back_n | `Sack ] ->
  Cluster.Node.config
(** The congestion-matrix fabric: the incast geometry (bounded 6-frame
    uplinks, server-class PCI, congestion-tuned CLIC) under one of three
    congestion answers.  [`Tail_drop] keeps capped 12-frame egress FIFOs;
    [`Pause] runs 802.3x end to end; [`Ecn] uncaps the egress, marks CE
    above the shared-buffer threshold with PAUSE generation off, and turns
    the CLIC senders into DCTCP (the NICs stay flow-control capable so
    they respect uplink backpressure instead of blind-dumping). *)

val congestion_matrix :
  ?quick:bool -> Format.formatter -> congestion_cell list * bursty_row list
(** The robustness matrix: {tail-drop, PAUSE, ECN/DCTCP} × {incast star,
    cross-rack leaf/spine} × {go-back-N, SACK} incast runs, then a
    same-seed Gilbert–Elliott bursty-loss stream comparing the two
    retransmit schemes byte for byte.  Contract: every cell delivers all
    messages; ECN cells lose nothing at the switch and never emit a PAUSE
    frame while marking CE; under identical bursty weather the SACK run
    retransmits strictly fewer bytes than go-back-N. *)

type slo_row = {
  sl_system : string;  (** "clic" | "tcp" *)
  sl_condition : string;  (** "healthy" | "fail-slow" | "fail-slow+loss" *)
  sl_requests : int;
  sl_completed : int;
  sl_stranded : int;  (** requests never answered when the run drained *)
  sl_timeouts : int;  (** completions slower than the 1 ms deadline *)
  sl_p50_us : float;
  sl_p99_us : float;
  sl_p999_us : float;
  sl_goodput_mbps : float;
}


val slo : ?quick:bool -> Format.formatter -> slo_row list
(** CLIC vs TCP serving the same seeded open-loop request-response
    workload (4 nodes, Poisson arrivals) under three conditions:
    healthy; fail-slow (links sag to an eighth of their rate for a
    mid-run window, two NICs serve 6x slower, one switch port stalls
    its egress pump); and fail-slow plus 0.5% random frame loss.  The gray window
    drops nothing by itself, so the damage is visible only in the
    latency tail — six rows of p50/p99/p999 and goodput. *)

val slo_trace :
  ?quick:bool -> Format.formatter -> (string * Cluster.Workload.slo) list
(** Trace-pinned companion to {!slo}: one-way open-loop CLIC traffic
    (no response leg) under the same three conditions.  Each node's send
    order is its arrival schedule, so the logical trace is invariant
    under seeded same-instant permutations — this is what the checker's
    "slo" scenario hashes. *)

val all_ids : string list
val run : string -> Format.formatter -> unit
(** Run one experiment by id ("fig4" ... "slo-trace").
    @raise Invalid_argument on unknown ids. *)
