(* clic-sim: command-line driver for the CLIC reproduction.

   Subcommands:
     latency    ping-pong latency of any stack
     bandwidth  NetPIPE-style bandwidth of any stack at one message size
     stream     one-way saturation stream with CPU/interrupt statistics
     chaos      reliability soak under fault injection (sweep or custom)
     incast     N->1 collapse through the switch, tail-drop vs 802.3x PAUSE
     fabric     cross-rack incast + spine failure on a leaf/spine fabric
     slo        open-loop SLOs under gray failure + degradation contract
     figure     regenerate a paper figure/table by id
     check      run the analysis passes over the paper experiments
     timeline   export a scenario's Perfetto/Chrome trace timeline
     metrics    export a scenario's time-series metrics (CSV/JSON)
     list       list experiment ids *)

open Cmdliner
open Cluster

let stacks = [ "clic"; "tcp"; "mpi-clic"; "mpi-tcp"; "pvm" ]

let stack_arg =
  let doc =
    Printf.sprintf "Communication stack: %s." (String.concat ", " stacks)
  in
  Arg.(value & opt (enum (List.map (fun s -> (s, s)) stacks)) "clic"
       & info [ "s"; "stack" ] ~docv:"STACK" ~doc)

let mtu_arg =
  Arg.(value & opt int 1500
       & info [ "m"; "mtu" ] ~docv:"BYTES" ~doc:"Link MTU (1500 or 9000).")

let size_arg =
  Arg.(value & opt int 1024
       & info [ "n"; "size" ] ~docv:"BYTES" ~doc:"Message size in bytes.")

let reps_arg =
  Arg.(value & opt int 10
       & info [ "r"; "reps" ] ~docv:"N" ~doc:"Timed repetitions.")

let zero_copy_arg =
  Arg.(value & opt bool true
       & info [ "zero-copy" ] ~docv:"BOOL"
           ~doc:"Use CLIC's 0-copy send path (path 2); false selects path 4.")

let verbose_arg =
  Arg.(value & flag
       & info [ "verbose" ] ~doc:"Enable protocol debug logging.")

let config_of ~mtu ~zero_copy =
  let clic_params =
    if zero_copy then Clic.Params.default else Clic.Params.one_copy
  in
  { Node.default_config with mtu; clic_params }

let run_latency verbose stack mtu zero_copy reps =
  ignore (verbose : bool);
  let c = Net.create ~config:(config_of ~mtu ~zero_copy) ~n:2 () in
  let pair = Report.Pairs.of_name stack c ~a:0 ~b:1 in
  let r = Measure.pingpong c pair ~size:0 ~reps () in
  Printf.printf "%s 0-byte one-way latency at MTU %d: %.2f us\n" stack mtu
    (Engine.Time.to_us r.Measure.one_way)

let run_bandwidth verbose stack mtu zero_copy size reps =
  ignore (verbose : bool);
  let c = Net.create ~config:(config_of ~mtu ~zero_copy) ~n:2 () in
  let pair = Report.Pairs.of_name stack c ~a:0 ~b:1 in
  let r = Measure.pingpong c pair ~size ~reps ~warmup:1 () in
  Printf.printf "%s %dB at MTU %d: %.1f Mbit/s (one-way %.1f us)\n" stack size
    mtu r.Measure.pp_bandwidth_mbps
    (Engine.Time.to_us r.Measure.one_way)

let run_stream verbose stack mtu zero_copy size reps =
  ignore (verbose : bool);
  let c = Net.create ~config:(config_of ~mtu ~zero_copy) ~n:2 () in
  let pair = Report.Pairs.of_name stack c ~a:0 ~b:1 in
  let messages = max reps 100 in
  let r = Measure.stream c pair ~a:0 ~b:1 ~size ~messages in
  Printf.printf
    "%s stream of %d x %dB at MTU %d: %.1f Mbit/s, sender CPU %.0f%%, \
     receiver CPU %.0f%%, %d interrupts\n"
    stack messages size mtu r.Measure.st_bandwidth_mbps
    (100. *. r.Measure.sender_cpu)
    (100. *. r.Measure.receiver_cpu)
    r.Measure.receiver_interrupts

(* One custom fault profile from the command line: uniform or bursty loss,
   duplication and delay jitter composed onto every link. *)
let run_chaos verbose quick loss burst dup jitter_us mtu size messages =
  ignore (verbose : bool);
  if loss < 0. || loss > 1. || dup < 0. || dup > 1. then begin
    prerr_endline "clic-sim: --loss and --dup must lie in [0,1]";
    exit 2
  end;
  let open Engine in
  if loss <= 0. && dup <= 0. && jitter_us <= 0. then
    ignore (Report.Figures.chaos ~quick Format.std_formatter)
  else begin
    let root = Rng.create ~seed:20030422 in
    let mk_fault () =
      let rng = Rng.split root in
      let stages =
        List.concat
          [
            (if loss > 0. then
               if burst > 1 then begin
                 (* Gilbert–Elliott with mean burst length [burst] frames
                    and average loss [loss]: bad state drops half its
                    frames, dwell times set the stationary bad fraction. *)
                 let loss_bad = 0.5 in
                 let frac_bad = min 0.9 (loss /. loss_bad) in
                 let p_bad_to_good = 1. /. float_of_int burst in
                 let p_good_to_bad =
                   frac_bad *. p_bad_to_good /. (1. -. frac_bad)
                 in
                 [
                   Hw.Fault.gilbert_elliott ~rng:(Rng.split rng)
                     ~p_good_to_bad ~p_bad_to_good ~loss_bad ();
                 ]
               end
               else [ Hw.Fault.drop ~rng:(Rng.split rng) ~prob:loss ]
             else []);
            (if dup > 0. then
               [ Hw.Fault.duplicate ~rng:(Rng.split rng) ~prob:dup ]
             else []);
            (if jitter_us > 0. then
               [
                 Hw.Fault.jitter ~rng:(Rng.split rng)
                   ~max_delay:(Time.us jitter_us);
               ]
             else []);
          ]
      in
      match stages with [ f ] -> f | fs -> Hw.Fault.compose fs
    in
    let config =
      { Node.default_config with mtu; link_fault = Some mk_fault }
    in
    let c = Net.create ~config ~n:2 () in
    let pair = Measure.clic_pair c ~a:0 ~b:1 () in
    let r = Measure.stream c pair ~a:0 ~b:1 ~size ~messages in
    let sum f =
      f (Clic.Api.kernel (Net.node c 0).Node.clic)
      + f (Clic.Api.kernel (Net.node c 1).Node.clic)
    in
    Printf.printf
      "chaos stream of %d x %dB at MTU %d (loss %.2f%%, burst %d, dup \
       %.2f%%, jitter %.0fus):\n\
      \  %.1f Mbit/s goodput in %.1f ms\n\
      \  %d retransmissions (%d timer, %d fast), %d duplicates dropped\n"
      messages size mtu (100. *. loss) burst (100. *. dup) jitter_us
      r.Measure.st_bandwidth_mbps
      (Time.to_us r.Measure.elapsed /. 1000.)
      (sum Clic.Clic_module.retransmissions)
      (sum Clic.Clic_module.timeouts)
      (sum Clic.Clic_module.fast_retransmits)
      (sum (fun km ->
           match Clic.Clic_module.channel_to km ~peer:0 with
           | Some ch -> Clic.Channel.duplicates_dropped ch
           | None -> (
               match Clic.Clic_module.channel_to km ~peer:1 with
               | Some ch -> Clic.Channel.duplicates_dropped ch
               | None -> 0)));
    (match
       Clic.Clic_module.channel_to (Clic.Api.kernel (Net.node c 0).Node.clic)
         ~peer:1
     with
    | Some ch ->
        let s = Clic.Channel.rto_stats ch in
        if Stats.Summary.count s > 0 then
          Printf.printf
            "  sender RTO: %.0f us mean, %.0f us max over %d armings%s\n"
            (Stats.Summary.mean s) (Stats.Summary.max s)
            (Stats.Summary.count s)
            (match Clic.Channel.srtt ch with
            | Some srtt ->
                Printf.sprintf " (srtt %.0f us)" (Time.to_us srtt)
            | None -> "")
    | None -> ())
  end

let run_figure verbose id quick =
  ignore (verbose : bool);
  if quick && List.mem id [ "fig4"; "fig5"; "fig6"; "tab1"; "fig1" ] then begin
    let fmt = Format.std_formatter in
    match id with
    | "fig4" -> ignore (Report.Figures.fig4 ~quick fmt)
    | "fig5" -> ignore (Report.Figures.fig5 ~quick fmt)
    | "fig6" -> ignore (Report.Figures.fig6 ~quick fmt)
    | "tab1" -> ignore (Report.Figures.tab1 ~quick fmt)
    | "fig1" -> ignore (Report.Figures.fig1 ~quick fmt)
    | _ -> ()
  end
  else Report.Figures.run id Format.std_formatter

let latency_cmd =
  Cmd.v (Cmd.info "latency" ~doc:"Ping-pong 0-byte latency")
    Term.(const run_latency $ verbose_arg $ stack_arg $ mtu_arg $ zero_copy_arg $ reps_arg)

let bandwidth_cmd =
  Cmd.v (Cmd.info "bandwidth" ~doc:"NetPIPE-style bandwidth at one size")
    Term.(
      const run_bandwidth $ verbose_arg $ stack_arg $ mtu_arg $ zero_copy_arg
      $ size_arg $ reps_arg)

let stream_cmd =
  Cmd.v (Cmd.info "stream" ~doc:"Saturation stream with CPU statistics")
    Term.(
      const run_stream $ verbose_arg $ stack_arg $ mtu_arg $ zero_copy_arg
      $ size_arg $ reps_arg)

let chaos_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sweep sizes.")
  in
  let loss =
    Arg.(value & opt float 0.
         & info [ "loss" ] ~docv:"PROB"
             ~doc:"Frame loss probability (e.g. 0.01 for 1%).")
  in
  let burst =
    Arg.(value & opt int 1
         & info [ "burst" ] ~docv:"FRAMES"
             ~doc:
               "Mean loss-burst length in frames; > 1 selects a \
                Gilbert-Elliott bursty profile at the same average loss.")
  in
  let dup =
    Arg.(value & opt float 0.
         & info [ "dup" ] ~docv:"PROB" ~doc:"Frame duplication probability.")
  in
  let jitter =
    Arg.(value & opt float 0.
         & info [ "jitter-us" ] ~docv:"US"
             ~doc:"Max extra per-frame delay (reorders frames).")
  in
  let messages =
    Arg.(value & opt int 400
         & info [ "messages" ] ~docv:"N" ~doc:"Stream length in messages.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Reliability soak under fault injection: with no fault flags, \
          sweep loss rate x burstiness (plus duplication, jitter and link \
          flaps); with flags, run one custom profile.")
    Term.(
      const run_chaos $ verbose_arg $ quick $ loss $ burst $ dup $ jitter
      $ mtu_arg $ size_arg $ messages)

(* N->1 incast through the shared-buffer switch, tail-drop vs 802.3x
   PAUSE, plus an MPI gather under the same congestion.  Exits non-zero
   if any message is lost or if the PAUSE fabric drops a single frame, so
   CI can gate on the collapse-survival contract. *)
let run_incast verbose quick senders size messages =
  ignore (verbose : bool);
  if senders < 1 then begin
    prerr_endline "clic-sim: --senders must be >= 1";
    exit 2
  end;
  let rows, gather =
    Report.Figures.incast ~quick ~senders ~size ?messages
      Format.std_formatter
  in
  let bad = ref [] in
  List.iter
    (fun r ->
      let open Report.Figures in
      if r.in_delivered <> r.in_sent then
        bad :=
          Printf.sprintf "%s: %d of %d messages lost" r.in_name
            (r.in_sent - r.in_delivered) r.in_sent
          :: !bad;
      if
        String.length r.in_name >= 6
        && String.sub r.in_name 0 6 = "802.3x"
        && r.in_ingress_drops + r.in_egress_drops > 0
      then
        bad :=
          Printf.sprintf "%s: PAUSE fabric dropped %d frame(s)" r.in_name
            (r.in_ingress_drops + r.in_egress_drops)
          :: !bad)
    rows;
  List.iter
    (fun (name, _us, _retx, drops, _ptx, _pus) ->
      if String.length name >= 6 && String.sub name 0 6 = "802.3x" && drops > 0
      then
        bad :=
          Printf.sprintf "gather %s: PAUSE fabric dropped %d frame(s)" name
            drops
          :: !bad)
    gather;
  if !bad <> [] then begin
    List.iter (fun m -> Printf.eprintf "clic-sim incast: %s\n" m) !bad;
    exit 1
  end

let incast_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced message counts.")
  in
  let senders =
    Arg.(value & opt int 4
         & info [ "senders" ] ~docv:"N"
             ~doc:"Concurrent senders stampeding node 0.")
  in
  let size =
    Arg.(value & opt int 8192
         & info [ "n"; "size" ] ~docv:"BYTES" ~doc:"Message size in bytes.")
  in
  let messages =
    Arg.(value & opt (some int) None
         & info [ "messages" ] ~docv:"N"
             ~doc:"Messages per sender; default 40 (12 with --quick).")
  in
  Cmd.v
    (Cmd.info "incast"
       ~doc:
         "N->1 incast collapse through the shared-buffer switch: tail-drop \
          baseline vs 802.3x PAUSE flow control, plus an MPI gather under \
          the same congestion.  Fails if any message is lost or if the \
          PAUSE-protected fabric drops a frame.")
    Term.(
      const run_incast $ verbose_arg $ quick $ senders $ size $ messages)

(* The congestion-regime robustness matrix: {tail-drop, PAUSE, ECN/DCTCP}
   x {incast, cross-rack} x {go-back-N, SACK}, plus the same-seed bursty
   loss comparison of the two retransmit schemes.  The exit-status
   contract is the point: every cell delivers everything; the ECN cells
   stay switch-lossless with zero PAUSE frames while actually marking CE;
   and under identical burst weather SACK must retransmit strictly fewer
   bytes than go-back-N, with the savings accounted for. *)
let run_congestion verbose quick =
  ignore (verbose : bool);
  let cells, bursty =
    Report.Figures.congestion_matrix ~quick Format.std_formatter
  in
  let bad = ref [] in
  let complain fmt = Printf.ksprintf (fun m -> bad := m :: !bad) fmt in
  List.iter
    (fun c ->
      let open Report.Figures in
      let cell =
        Printf.sprintf "%s/%s/%s" c.cg_regime c.cg_topo c.cg_scheme
      in
      if c.cg_delivered <> c.cg_sent then
        complain "%s: %d of %d messages lost" cell
          (c.cg_sent - c.cg_delivered) c.cg_sent;
      if c.cg_regime = "ecn" then begin
        if c.cg_switch_drops > 0 then
          complain "%s: ECN fabric dropped %d frame(s)" cell
            c.cg_switch_drops;
        if c.cg_pause_tx > 0 then
          complain "%s: ECN fabric emitted %d PAUSE frame(s)" cell
            c.cg_pause_tx;
        if c.cg_ecn_marks = 0 then
          complain "%s: ECN fabric never CE-marked a frame" cell;
        if c.cg_ce_echoes = 0 then
          complain "%s: DCTCP senders never saw a CE echo" cell
      end;
      if c.cg_regime = "pause" && c.cg_switch_drops > 0 then
        complain "%s: PAUSE fabric dropped %d frame(s)" cell
          c.cg_switch_drops)
    cells;
  (match
     ( List.find_opt (fun r -> r.Report.Figures.bu_scheme = "gbn") bursty,
       List.find_opt (fun r -> r.Report.Figures.bu_scheme = "sack") bursty )
   with
  | Some gbn, Some sack ->
      let open Report.Figures in
      if sack.bu_retx_bytes >= gbn.bu_retx_bytes then
        complain
          "bursty: SACK retransmitted %d bytes, not fewer than go-back-N's \
           %d"
          sack.bu_retx_bytes gbn.bu_retx_bytes;
      if sack.bu_sacked = 0 then
        complain "bursty: SACK run never recorded a SACKed segment";
      if sack.bu_retx_bytes_saved = 0 then
        complain "bursty: SACK run saved no retransmit bytes"
  | _ -> complain "bursty: missing a retransmit-scheme row");
  if !bad <> [] then begin
    List.iter (fun m -> Printf.eprintf "clic-sim congestion: %s\n" m) !bad;
    exit 1
  end

let congestion_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced message counts.")
  in
  Cmd.v
    (Cmd.info "congestion"
       ~doc:
         "Congestion-regime robustness matrix: tail-drop vs 802.3x PAUSE \
          vs ECN/DCTCP, on an incast star and a cross-rack leaf/spine, \
          under go-back-N and SACK retransmission, plus a same-seed bursty \
          loss run comparing the schemes' retransmit bills.  Fails unless \
          every cell delivers everything, the ECN fabric is lossless and \
          PAUSE-free while marking CE, and SACK beats go-back-N's \
          retransmit bytes under identical loss weather.")
    Term.(const run_congestion $ verbose_arg $ quick)

(* Cross-rack congestion on a leaf/spine fabric: the oversubscribed-uplink
   collapse must be visible under tail-drop, invisible under 802.3x PAUSE
   (with the congestion tree provably formed hop by hop), and a fabric
   losing a spine mid-workload must still deliver everything.  Non-zero
   exit on any breach, so CI can gate on the contract. *)
let run_fabric verbose quick =
  ignore (verbose : bool);
  let rows, reroute = Report.Figures.fabric ~quick Format.std_formatter in
  let bad = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> bad := m :: !bad) fmt in
  List.iter
    (fun r ->
      let open Report.Figures in
      let is_pause =
        String.length r.fb_name >= 6 && String.sub r.fb_name 0 6 = "802.3x"
      in
      if r.fb_delivered <> r.fb_sent then
        fail "%s: %d of %d messages lost" r.fb_name
          (r.fb_sent - r.fb_delivered) r.fb_sent;
      if is_pause then begin
        if r.fb_drops > 0 then
          fail "%s: PAUSE fabric dropped %d frame(s)" r.fb_name r.fb_drops;
        if r.fb_spine_pause = 0 then
          fail "%s: spine generated no XOFF (no congestion tree)" r.fb_name;
        if r.fb_tor_pause = 0 then
          fail "%s: ToRs generated no XOFF (tree did not reach the sources)"
            r.fb_name;
        if r.fb_paused_us <= 0. then
          fail "%s: sender NICs never paused" r.fb_name
      end
      else if r.fb_drops = 0 then
        fail "%s: no switch drops — the oversubscribed uplink did not collapse"
          r.fb_name)
    rows;
  let open Report.Figures in
  if reroute.rr_delivered <> reroute.rr_sent then
    fail "reroute: %d of %d messages lost after spine failure"
      (reroute.rr_sent - reroute.rr_delivered)
      reroute.rr_sent;
  if reroute.rr_spine1_tx = 0 then
    fail "reroute: surviving spine carried no traffic";
  if !bad <> [] then begin
    List.iter (fun m -> Printf.eprintf "clic-sim fabric: %s\n" m) !bad;
    exit 1
  end

let fabric_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced message counts.")
  in
  Cmd.v
    (Cmd.info "fabric"
       ~doc:
         "Cross-rack incast through an oversubscribed leaf/spine fabric \
          (tail-drop collapse vs 802.3x congestion-tree spreading) plus \
          spine-failure rerouting under ECMP.  Fails unless the collapse, \
          the hop-by-hop PAUSE tree, losslessness under PAUSE and \
          delivery across the failure all hold.")
    Term.(const run_fabric $ verbose_arg $ quick)

(* The SLO gate: the CLIC-vs-TCP panel under gray failure, then the
   degradation contract on the canonical open-loop run.  The exit-status
   contract is the point: healthy CLIC meets its p999 bound, the
   fail-slow window bleeds the tail no further than the bounded ratio,
   the tail recovers within the deadline once the fault clears, and the
   verdict is void unless every injected fail-slow mechanism actually
   engaged. *)
let run_slo verbose quick =
  ignore (verbose : bool);
  let rows = Report.Figures.slo ~quick Format.std_formatter in
  let bad = ref [] in
  let complain fmt = Printf.ksprintf (fun m -> bad := m :: !bad) fmt in
  List.iter
    (fun r ->
      let open Report.Figures in
      if r.sl_system = "clic" then begin
        if r.sl_completed <> r.sl_requests then
          complain "clic/%s: %d of %d requests unanswered" r.sl_condition
            (r.sl_requests - r.sl_completed)
            r.sl_requests;
        if r.sl_stranded > 0 then
          complain "clic/%s: %d request(s) stranded at drain" r.sl_condition
            r.sl_stranded
      end)
    rows;
  (match
     ( List.find_opt
         (fun r ->
           r.Report.Figures.sl_system = "clic"
           && r.Report.Figures.sl_condition = "healthy")
         rows,
       List.find_opt
         (fun r ->
           r.Report.Figures.sl_system = "clic"
           && r.Report.Figures.sl_condition = "fail-slow")
         rows )
   with
  | Some h, Some d ->
      if d.Report.Figures.sl_p999_us <= h.Report.Figures.sl_p999_us then
        complain
          "panel: the fail-slow window left no mark on the p999 tail \
           (%.1f us degraded vs %.1f us healthy)"
          d.Report.Figures.sl_p999_us h.Report.Figures.sl_p999_us
  | _ -> complain "panel: missing a clic row");
  let verdict, _slo = Check.Slo.run_contract ~quick () in
  Format.printf "@.%a" Check.Slo.pp_verdict verdict;
  if not (Check.Slo.ok verdict) then
    List.iter
      (fun v -> complain "contract: %s" (Check.Violation.to_string v))
      verdict.Check.Slo.v_violations;
  if !bad <> [] then begin
    List.iter (fun m -> Printf.eprintf "clic-sim slo: %s\n" m) !bad;
    exit 1
  end

let slo_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced request counts.")
  in
  Cmd.v
    (Cmd.info "slo"
       ~doc:
         "Production SLOs under gray failure: CLIC vs TCP serving an \
          identical open-loop request-response workload while links \
          sag, NICs slow down and a switch port stalls — none of which \
          announces itself.  Then the degradation contract: healthy \
          p999 under its bound, bounded tail bleed while the fault is \
          active, recovery within the deadline after it clears, and \
          proof that every fail-slow mechanism actually engaged.")
    Term.(const run_slo $ verbose_arg $ quick)

(* Run the sanitizer, invariant monitors and determinism detector over the
   selected scenarios; non-zero exit on any finding so CI can gate on it. *)
let run_check verbose scenarios seeds list hashes =
  if list then List.iter print_endline Check.Scenario.names
  else if hashes then begin
    (* One baseline run per scenario, full logical trace hash: the output
       format is exactly what test/golden/scenario_hashes.txt pins, so an
       intentional behaviour change regenerates the file with
       `clic-sim check --hashes > test/golden/scenario_hashes.txt`. *)
    let names = if scenarios = [] then None else Some scenarios in
    let reports =
      try Check.run_all ~seeds:0 ?names ()
      with Invalid_argument msg ->
        prerr_endline ("clic-sim: " ^ msg);
        exit 2
    in
    List.iter
      (fun r -> Printf.printf "%s %s\n" r.Check.scenario r.Check.baseline_hash)
      reports
  end
  else begin
    let names = if scenarios = [] then None else Some scenarios in
    let reports =
      try Check.run_all ~seeds ?names ()
      with Invalid_argument msg ->
        prerr_endline ("clic-sim: " ^ msg);
        exit 2
    in
    let bad = ref 0 in
    List.iter
      (fun r ->
        Format.printf "%a@." Check.pp_report r;
        if verbose then Format.printf "%s@." r.Check.output;
        if not (Check.ok r) then incr bad)
      reports;
    let total = List.length reports in
    if !bad = 0 then
      Format.printf "check: %d scenario(s) clean (%d tie-break seed(s))@."
        total seeds
    else begin
      Format.printf "check: %d of %d scenario(s) with violations@." !bad
        total;
      exit 1
    end
  end

let check_cmd =
  let scenarios =
    Arg.(value & opt_all string []
         & info [ "scenario" ] ~docv:"NAME"
             ~doc:
               "Scenario to check (repeatable); default is every paper \
                experiment.  See $(b,--list).")
  in
  let seeds =
    Arg.(value & opt int 3
         & info [ "seeds" ] ~docv:"N"
             ~doc:
               "Number of seeded same-timestamp orderings to compare \
                against the FIFO baseline.")
  in
  let list =
    Arg.(value & flag & info [ "list" ] ~doc:"List checkable scenarios.")
  in
  let hashes =
    Arg.(value & flag
         & info [ "hashes" ]
             ~doc:
               "Print each scenario's baseline logical trace hash (one \
                `name hash' line per scenario) instead of checking; the \
                format of test/golden/scenario_hashes.txt.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the analysis passes (object-lifecycle sanitizer, protocol \
          invariant monitors, determinism detector) over paper experiments")
    Term.(const run_check $ verbose_arg $ scenarios $ seeds $ list $ hashes)

(* The chaos soak: randomized fault schedules (link weather, pool
   pressure, interrupt storms, crash/reboot) under the sanitizer passes,
   with evidence counters proving each stress axis actually fired. *)
let run_soak _verbose seeds trials quick only list =
  if list then
    List.iter print_endline Check.Soak.template_names
  else begin
    let seeds = if seeds = [] then Check.Soak.default_seeds else seeds in
    let only = if only = [] then None else Some only in
    let report =
      try Check.Soak.run ~seeds ?trials ~quick ?only ()
      with Invalid_argument msg ->
        prerr_endline ("clic-sim: " ^ msg);
        exit 2
    in
    Format.printf "%a@." Check.Soak.pp_summary report;
    let violations = Check.Soak.violations report in
    List.iter
      (fun v -> Format.printf "  %a@." Check.Violation.pp v)
      violations;
    let missing =
      if only = None then Check.Soak.missing_evidence report else []
    in
    List.iter
      (fun m -> Format.printf "  missing evidence: %s@." m)
      missing;
    if Check.Soak.ok ~require_evidence:(only = None) report then
      Format.printf "soak: %d trial(s) clean over %d seed(s)@."
        (List.length report.Check.Soak.s_trials)
        (List.length seeds)
    else begin
      Format.printf "soak: FAILED (%d violation(s), %d evidence gap(s))@."
        (List.length violations) (List.length missing);
      exit 1
    end
  end

let soak_cmd =
  let seeds =
    Arg.(value & opt_all int []
         & info [ "seed" ] ~docv:"N"
             ~doc:
               "Soak seed (repeatable); default is the pinned CI set \
                101, 202, 303.")
  in
  let trials =
    Arg.(value & opt (some int) None
         & info [ "trials" ] ~docv:"N"
             ~doc:
               "Trials per seed, rotating through the templates; default \
                one per template.")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ] ~doc:"Quarter-size traffic volumes.")
  in
  let only =
    Arg.(value & opt_all string []
         & info [ "only" ] ~docv:"NAME"
             ~doc:
               "Restrict to one template (repeatable); evidence demands \
                are then waived.  See $(b,--list).")
  in
  let list =
    Arg.(value & flag & info [ "list" ] ~doc:"List soak templates.")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Chaos-soak the stack: randomized fault schedules (link faults, \
          pool pressure, interrupt storms, node crash/reboot) under the \
          sanitizer and invariant monitors, with evidence counters")
    Term.(
      const run_soak $ verbose_arg $ seeds $ trials $ quick $ only $ list)

(* ------------------------------------------------------------------ *)
(* Observability: timeline and metrics exports over the probe stream *)

let find_scenario name =
  match Check.Scenario.find name with
  | Some sc -> sc
  | None ->
      Printf.eprintf "clic-sim: unknown scenario %S (know: %s)\n" name
        (String.concat ", " Check.Scenario.names);
      exit 2

let write_output ~out content =
  match out with
  | "-" -> print_string content
  | path ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      Printf.printf "wrote %s (%d bytes)\n" path (String.length content)

let scenario_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO"
       ~doc:"Scenario id (see `clic-sim check --list').")

let out_arg default =
  Arg.(value & opt string default
       & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output file; `-' writes to stdout.")

let run_timeline verbose name out =
  ignore (verbose : bool);
  let sc = find_scenario name in
  let recorder, _rendered = Obs.Recorder.record sc in
  write_output ~out (Obs.Timeline.export recorder);
  if out <> "-" then
    Printf.printf
      "%d probe events; open in ui.perfetto.dev or chrome://tracing\n"
      (Obs.Recorder.count recorder)

let run_metrics verbose name out format bucket_us attribution =
  ignore (verbose : bool);
  let sc = find_scenario name in
  let recorder, _rendered = Obs.Recorder.record sc in
  let bucket_ns =
    if bucket_us <= 0. then None
    else Some (int_of_float (bucket_us *. 1000.))
  in
  let m = Obs.Metrics.build ?bucket_ns recorder in
  (match format with
  | "csv" -> write_output ~out (Obs.Metrics.to_csv m)
  | "json" -> write_output ~out (Obs.Metrics.to_json m)
  | "summary" | _ ->
      if out = "-" then Obs.Metrics.pp_summary Format.std_formatter m
      else begin
        let buf = Buffer.create 4096 in
        let fmt = Format.formatter_of_buffer buf in
        Obs.Metrics.pp_summary fmt m;
        Format.pp_print_flush fmt ();
        write_output ~out (Buffer.contents buf)
      end);
  if attribution then begin
    let msgs = Obs.Attribution.messages recorder in
    Format.printf "@.per-message latency attribution (%d messages):@."
      (List.length msgs);
    Obs.Attribution.pp_table Format.std_formatter msgs
  end

let timeline_cmd =
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Run a scenario under the probe and export a Chrome \
          trace-event/Perfetto timeline: per-node process, ISR, \
          bottom-half, CLIC-module, DMA and wire tracks, with flow arrows \
          from each send syscall to its delivery.")
    Term.(
      const run_timeline $ verbose_arg $ scenario_pos
      $ out_arg "timeline.json")

let metrics_cmd =
  let format =
    Arg.(value & opt (enum [ ("csv", "csv"); ("json", "json");
                             ("summary", "summary") ]) "summary"
         & info [ "f"; "format" ] ~docv:"FMT"
             ~doc:"Export format: csv, json or summary.")
  in
  let bucket =
    Arg.(value & opt float 0.
         & info [ "bucket-us" ] ~docv:"US"
             ~doc:
               "Bucket width for utilization/rate series; default divides \
                the run into ~200 buckets.")
  in
  let attribution =
    Arg.(value & flag
         & info [ "attribution" ]
             ~doc:
               "Also print the per-message latency attribution table (the \
                Figure 7 stage breakdown for every message).")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a scenario under the probe and export time-series metrics: \
          CPU/bus utilization, interrupt rates, ring and egress queue \
          depths, channel windows, kernel pool bytes, message counters.")
    Term.(
      const run_metrics $ verbose_arg $ scenario_pos $ out_arg "-" $ format
      $ bucket $ attribution)

let figure_cmd =
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID"
         ~doc:"Experiment id (see `clic-sim list').")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sweep sizes.")
  in
  Cmd.v (Cmd.info "figure" ~doc:"Regenerate a paper figure or table")
    Term.(const run_figure $ verbose_arg $ id $ quick)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List experiment ids")
    Term.(
      const (fun () ->
          List.iter print_endline Report.Figures.all_ids)
      $ const ())

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let () =
  (if Array.exists (String.equal "--verbose") Sys.argv then setup_logs true
   else setup_logs false);
  let info =
    Cmd.info "clic-sim" ~version:"1.0.0"
      ~doc:"Simulated reproduction of the CLIC lightweight protocol paper"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ latency_cmd; bandwidth_cmd; stream_cmd; chaos_cmd; incast_cmd;
            congestion_cmd; fabric_cmd; slo_cmd; figure_cmd; check_cmd;
            soak_cmd; timeline_cmd; metrics_cmd; list_cmd ]))
