(* clic-lint fixture: a module exercising every rule's happy path —
   guarded probe emission inside a hot function, a reasoned unsafe-cast
   waiver, and an ISR handler that never blocks.  Must produce zero
   findings.  This file is parsed, never compiled. *)

let[@clic.hot] bump counter = incr counter

(* The record allocation is exempt: it sits behind the probe guard, so
   the probes-off steady state never runs it. *)
let[@clic.hot] observe name depth =
  if !Probe.on then Probe.emit (Probe.Queue_depth { queue = name; depth })

let reinterpret (x : int) =
  (Obj.magic x
  [@clic.allow_magic "fixture: demonstrates a reasoned waiver"])

let handler () = ()

let fire intr = Interrupt.raise_irq intr ~isr:handler
