(* clic-lint fixture: a waiver with no written reason is itself a
   finding under the rule it tries to silence (R2 here).  This file is
   parsed, never compiled. *)

let sneak x = (Obj.magic x [@clic.allow_magic])
