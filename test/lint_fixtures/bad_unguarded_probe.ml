(* clic-lint fixture: R4 probe-guard discipline.

   A [Probe.emit] with no dominating [!Probe.on] / [Probe.enabled ()]
   check.  This file is parsed, never compiled. *)

let note host = Probe.emit (Probe.Irq { host })
