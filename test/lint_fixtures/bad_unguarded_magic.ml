(* clic-lint fixture: R2 unsafe-cast confinement.

   A bare [Obj.magic] with no [@clic.allow_magic "reason"] waiver.
   This file is parsed, never compiled. *)

let sneak (x : int) : string = Obj.magic x
