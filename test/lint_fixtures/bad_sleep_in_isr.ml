(* clic-lint fixture: R1 no-sleep-in-atomic.

   The ISR handler reaches [Semaphore.acquire] two calls deep; the
   linter must propagate the interrupt context through the module call
   graph and flag the blocking leaf.  This file is parsed, never
   compiled. *)

let wait_for_buffer sem = Semaphore.acquire sem

let handler sem () = wait_for_buffer sem

let fire intr sem = Interrupt.raise_irq intr ~isr:(handler sem)
