(* clic-lint fixture: R3 hot-path allocation.

   A [@clic.hot] function that conses a fresh tuple onto a list on every
   call.  This file is parsed, never compiled. *)

let[@clic.hot] enqueue q x = q := (x, 0) :: !q
