(* Tests for the reporting layer: rendering, pair registry, and the quick
   figure drivers' structural invariants. *)

open Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let render_to_string f =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  f fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let test_table_alignment () =
  let out =
    render_to_string (fun fmt ->
        Report.Render.table fmt ~header:[ "name"; "value" ]
          ~rows:[ [ "alpha"; "1" ]; [ "b"; "22222" ] ]
          ())
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: rule :: _ ->
      check_bool "rule under header" true
        (String.length rule >= String.length "name  value");
      check_bool "header first" true
        (String.length header > 0 && String.sub header 0 4 = "name")
  | _ -> Alcotest.fail "too few lines");
  (* all data rows start at aligned columns *)
  check_bool "alpha row present" true
    (List.exists (fun l -> String.length l >= 5 && String.sub l 0 5 = "alpha")
       lines)

let test_series_table_merges_x_values () =
  let s1 = Stats.Series.create ~name:"a" in
  let s2 = Stats.Series.create ~name:"b" in
  Stats.Series.add s1 ~x:1. ~y:10.;
  Stats.Series.add s2 ~x:2. ~y:20.;
  let out =
    render_to_string (fun fmt ->
        Report.Render.series_table fmt ~title:"t" ~x_label:"x"
          ~series:[ s1; s2 ])
  in
  (* both x values appear; missing cells are "-" *)
  check_bool "x=1 row" true
    (List.exists
       (fun l -> String.length l > 0 && l.[0] = '1')
       (String.split_on_char '\n' out));
  check_bool "dash for missing" true
    (String.length out > 0
    && String.index_opt out '-' <> None)

let test_bar_proportions () =
  check_str "full" "####" (Report.Render.bar 10. ~max:10. ~width:4);
  check_str "half" "##" (Report.Render.bar 5. ~max:10. ~width:4);
  check_str "zero" "" (Report.Render.bar 0. ~max:10. ~width:4);
  check_str "degenerate max" "" (Report.Render.bar 5. ~max:0. ~width:4)

let test_timeline_shape () =
  let sim = Sim.create () in
  let spans =
    [
      { Trace.label = "first"; start = 0; finish = Time.us 10. };
      { Trace.label = "second"; start = Time.us 10.; finish = Time.us 20. };
    ]
  in
  ignore sim;
  let out =
    render_to_string (fun fmt -> Report.Render.timeline fmt ~width:20 spans)
  in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
  in
  check_int "two bars + axis" 3 (List.length lines);
  check_bool "bars drawn" true (String.contains out '#')

let test_pairs_registry () =
  List.iter
    (fun name ->
      let c = Cluster.Net.create ~n:2 () in
      let pair = Report.Pairs.of_name name c ~a:0 ~b:1 in
      check_bool name true (String.length pair.Cluster.Measure.label > 0))
    [ "clic"; "tcp"; "mpi-clic"; "mpi-tcp"; "pvm" ];
  Alcotest.check_raises "unknown stack"
    (Invalid_argument "Pairs.of_name: unknown \"bogus\"") (fun () ->
      let c = Cluster.Net.create ~n:2 () in
      ignore (Report.Pairs.of_name "bogus" c ~a:0 ~b:1))

let test_paper_reference_values () =
  check_bool "latency" true (Report.Paper.zero_byte_latency_us = 36.);
  check_bool "asymptote order" true
    (Report.Paper.clic_asymptote_mtu9000_mbps
   > Report.Paper.clic_asymptote_mtu1500_mbps);
  check_bool "half-bandwidth order" true
    (Report.Paper.half_bandwidth_size_tcp
   > Report.Paper.half_bandwidth_size_clic)

let test_figures_run_rejects_unknown () =
  let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Figures.run: unknown id \"nope\"") (fun () ->
      Report.Figures.run "nope" null_fmt)

let test_fig5_quick_invariants () =
  let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  match Report.Figures.fig5 ~quick:true null_fmt with
  | [ clic9000; clic1500; tcp9000; tcp1500 ] ->
      let top s = Stats.Series.max_y s in
      check_bool "clic 9000 highest" true
        (top clic9000 > top tcp9000 && top clic9000 > top tcp1500);
      check_bool "clic beats tcp at same mtu" true
        (top clic1500 > top tcp1500);
      (* every curve is monotone-ish: max at the largest size *)
      List.iter
        (fun s ->
          match List.rev (Stats.Series.points s) with
          | (_, last) :: _ ->
              check_bool "asymptote at large sizes" true
                (last >= 0.8 *. top s)
          | [] -> Alcotest.fail "empty series")
        [ clic9000; clic1500; tcp9000; tcp1500 ]
  | _ -> Alcotest.fail "unexpected fig5 shape"

(* The PR-5 acceptance contract: under the same N->1 stampede, the
   tail-drop fabric must visibly collapse (frames lost at BOTH the bounded
   uplinks and the egress FIFOs, recovered by retransmission), while the
   802.3x fabric — provisioned per [Switch.protected_provisioning] — must
   not lose a single frame at the switch.  Both must still deliver
   everything: CLIC's reliability is the safety net, PAUSE is the
   performance story. *)
let test_incast_acceptance () =
  let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  let rows, gather = Report.Figures.incast ~quick:true null_fmt in
  let find prefix =
    match
      List.find_opt
        (fun r ->
          String.length r.Report.Figures.in_name >= String.length prefix
          && String.sub r.Report.Figures.in_name 0 (String.length prefix)
             = prefix)
        rows
    with
    | Some r -> r
    | None -> Alcotest.failf "no %S row in incast output" prefix
  in
  let base = find "tail-drop" and fc = find "802.3x" in
  let open Report.Figures in
  (* reliability: nothing is allowed to go missing end to end *)
  check_int "baseline delivers everything" base.in_sent base.in_delivered;
  check_int "pause delivers everything" fc.in_sent fc.in_delivered;
  check_bool "workload is non-trivial" true (base.in_sent >= 40);
  (* the collapse: the baseline loses frames on both sides of the switch *)
  check_bool "baseline drops at bounded uplinks" true
    (base.in_ingress_drops > 0);
  check_bool "baseline drops at egress FIFOs" true (base.in_egress_drops > 0);
  check_bool "baseline pays in retransmissions" true (base.in_retx > 0);
  (* the protection: zero switch loss, and the signalling really fired *)
  check_int "pause fabric loses nothing at ingress" 0 fc.in_ingress_drops;
  check_int "pause fabric loses nothing at egress" 0 fc.in_egress_drops;
  check_bool "switch generated PAUSE frames" true (fc.in_pause_tx > 0);
  check_bool "senders actually spent time XOFFed" true
    (fc.in_tx_paused_us > 0.);
  check_bool "shared buffer was exercised" true (fc.in_peak_buffer > 0);
  (* The gather sees the same contrast on the loss side.  (The quick
     gather is light enough that the PAUSE arm may finish without any
     XOFF, so only the zero-loss half of the contract is asserted.) *)
  (match gather with
  | [ (_, _, _, base_drops, _, _); (_, _, _, fc_drops, _, _) ] ->
      check_bool "gather: tail-drop loses frames" true (base_drops > 0);
      check_int "gather: pause fabric loses nothing" 0 fc_drops
  | l -> Alcotest.failf "unexpected gather shape (%d rows)" (List.length l))

(* The PR-8 acceptance contract: the same cross-rack stampede through an
   oversubscribed spine must collapse under tail-drop yet stay lossless
   under 802.3x, with the congestion tree visibly forming hop by hop
   (spine XOFFs ToRs, ToRs XOFF senders); and when a spine dies under
   ECMP load, the survivor must carry everything to completion. *)
let test_fabric_acceptance () =
  let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  let rows, reroute = Report.Figures.fabric ~quick:true null_fmt in
  let find prefix =
    match
      List.find_opt
        (fun r ->
          String.length r.Report.Figures.fb_name >= String.length prefix
          && String.sub r.Report.Figures.fb_name 0 (String.length prefix)
             = prefix)
        rows
    with
    | Some r -> r
    | None -> Alcotest.failf "no %S row in fabric output" prefix
  in
  let base = find "tail-drop" and fc = find "802.3x" in
  let open Report.Figures in
  check_int "baseline delivers everything" base.fb_sent base.fb_delivered;
  check_int "pause delivers everything" fc.fb_sent fc.fb_delivered;
  check_bool "workload is non-trivial" true (base.fb_sent >= 40);
  (* the collapse through the oversubscribed uplink *)
  check_bool "tail-drop loses frames in the fabric" true (base.fb_drops > 0);
  check_bool "tail-drop pays in retransmissions" true (base.fb_retx > 0);
  (* the congestion tree: both hops of PAUSE fired, and losslessly *)
  check_int "pause fabric loses nothing" 0 fc.fb_drops;
  check_bool "spine XOFFed the ToRs" true (fc.fb_spine_pause > 0);
  check_bool "ToRs XOFFed the senders" true (fc.fb_tor_pause > 0);
  check_bool "senders sat XOFFed" true (fc.fb_paused_us > 0.);
  check_bool "shared buffers were exercised" true (fc.fb_peak_buf > 0);
  (* spine failure under ECMP: the survivor carries the rest *)
  check_int "reroute delivers everything" reroute.rr_sent
    reroute.rr_delivered;
  check_bool "traffic had used the doomed spine" true
    (reroute.rr_spine0_tx > 0);
  check_bool "the survivor carried the load" true (reroute.rr_spine1_tx > 0);
  check_bool "survivor outcarried the corpse" true
    (reroute.rr_spine1_tx > reroute.rr_spine0_tx)

(* The PR-9 acceptance contract: the congestion matrix must show every
   regime delivering everything; the ECN/DCTCP cells must stay lossless at
   the switch without a single PAUSE frame while really marking CE and
   really echoing it; and under the same-seed bursty loss run, SACK must
   retransmit strictly fewer bytes than go-back-N, with the savings
   accounted segment by segment. *)
let test_congestion_acceptance () =
  let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  let cells, bursty = Report.Figures.congestion_matrix ~quick:true null_fmt in
  let open Report.Figures in
  check_int "full matrix" 12 (List.length cells);
  List.iter
    (fun c ->
      let cell =
        Printf.sprintf "%s/%s/%s" c.cg_regime c.cg_topo c.cg_scheme
      in
      check_int (cell ^ " delivers everything") c.cg_sent c.cg_delivered;
      match c.cg_regime with
      | "ecn" ->
          check_int (cell ^ " loses nothing at the switch") 0
            c.cg_switch_drops;
          check_int (cell ^ " emits no PAUSE frames") 0 c.cg_pause_tx;
          check_bool (cell ^ " really marks CE") true (c.cg_ecn_marks > 0);
          check_bool (cell ^ " echoes reach the senders") true
            (c.cg_ce_echoes > 0)
      | "pause" ->
          check_int (cell ^ " loses nothing at the switch") 0
            c.cg_switch_drops;
          check_int (cell ^ " never marks CE") 0 c.cg_ecn_marks
      | _ ->
          (* the tail-drop baseline is where the contrast comes from *)
          check_int (cell ^ " never marks CE") 0 c.cg_ecn_marks)
    cells;
  (* the baseline must actually collapse somewhere, or the matrix shows
     three regimes surviving a non-event *)
  check_bool "tail-drop loses frames somewhere" true
    (List.exists
       (fun c -> c.cg_regime = "tail-drop" && c.cg_switch_drops > 0)
       cells);
  match
    ( List.find_opt (fun r -> r.bu_scheme = "gbn") bursty,
      List.find_opt (fun r -> r.bu_scheme = "sack") bursty )
  with
  | Some gbn, Some sack ->
      check_bool "bursty weather forced timeouts" true (gbn.bu_timeouts > 0);
      check_bool "sack retransmits fewer bytes than go-back-N" true
        (sack.bu_retx_bytes < gbn.bu_retx_bytes);
      check_bool "sack really sacked segments" true (sack.bu_sacked > 0);
      check_bool "savings accounted" true (sack.bu_retx_bytes_saved > 0);
      check_int "go-back-N never sacks" 0 gbn.bu_sacked
  | _ -> Alcotest.fail "bursty panel missing a scheme row"

let suite =
  [
    ("table alignment", `Quick, test_table_alignment);
    ("series table", `Quick, test_series_table_merges_x_values);
    ("bar proportions", `Quick, test_bar_proportions);
    ("timeline shape", `Quick, test_timeline_shape);
    ("pairs registry", `Quick, test_pairs_registry);
    ("paper reference", `Quick, test_paper_reference_values);
    ("unknown figure id", `Quick, test_figures_run_rejects_unknown);
    ("fig5 invariants", `Slow, test_fig5_quick_invariants);
    ("incast acceptance", `Slow, test_incast_acceptance);
    ("fabric acceptance", `Slow, test_fabric_acceptance);
    ("congestion acceptance", `Slow, test_congestion_acceptance);
  ]
