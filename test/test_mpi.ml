(* Tests for the messaging layers: MPI matching and protocols over both
   transports, PVM daemon routing, and the broadcast collectives. *)

open Engine
open Cluster
open Mpi_layer

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let clic_world c ranks =
  let reg = Mpi_clic.registry () in
  List.map
    (fun rank ->
      let node = Net.node c rank in
      Mpi.create node.Node.env ~rank
        (Mpi_clic.transport reg node.Node.clic ~rank)
        ())
    ranks

let tcp_world c ranks =
  let reg = Mpi_tcp.registry () in
  List.map
    (fun rank ->
      let node = Net.node c rank in
      Mpi.create node.Node.env ~rank
        (Mpi_tcp.transport reg node.Node.tcp ~rank)
        ())
    ranks

let both_transports = [ ("clic", clic_world); ("tcp", tcp_world) ]

let roundtrip_test world_of () =
  let c = Net.create ~n:2 () in
  match world_of c [ 0; 1 ] with
  | [ m0; m1 ] ->
      let got = ref None in
      Node.spawn (Net.node c 1) (fun () ->
          let e = Mpi.recv m1 () in
          got := Some (e.Mpi.e_src, e.Mpi.e_tag, e.Mpi.e_bytes));
      Node.spawn (Net.node c 0) (fun () -> Mpi.send m0 ~dst:1 ~tag:42 5000);
      Net.run c;
      Alcotest.(check (option (triple int int int)))
        "envelope" (Some (0, 42, 5000)) !got
  | _ -> assert false

let rendezvous_test world_of () =
  let c = Net.create ~n:2 () in
  match world_of c [ 0; 1 ] with
  | [ m0; m1 ] ->
      let got = ref 0 in
      Node.spawn (Net.node c 1) (fun () ->
          got := (Mpi.recv m1 ()).Mpi.e_bytes);
      Node.spawn (Net.node c 0) (fun () ->
          (* over the 16 KiB eager threshold: RTS/CTS protocol *)
          Mpi.send m0 ~dst:1 ~tag:1 250_000);
      Net.run c;
      check_int "rendezvous payload" 250_000 !got
  | _ -> assert false

let test_mpi_tag_matching () =
  let c = Net.create ~n:2 () in
  match clic_world c [ 0; 1 ] with
  | [ m0; m1 ] ->
      let order = ref [] in
      Node.spawn (Net.node c 1) (fun () ->
          (* Receive tag 2 first even though tag 1 arrived first. *)
          let a = Mpi.recv m1 ~tag:2 () in
          let b = Mpi.recv m1 ~tag:1 () in
          order := [ a.Mpi.e_tag; b.Mpi.e_tag ]);
      Node.spawn (Net.node c 0) (fun () ->
          Mpi.send m0 ~dst:1 ~tag:1 100;
          Mpi.send m0 ~dst:1 ~tag:2 200);
      Net.run c;
      Alcotest.(check (list int)) "selective receive" [ 2; 1 ] !order
  | _ -> assert false

let test_mpi_fifo_per_matching () =
  let c = Net.create ~n:2 () in
  match clic_world c [ 0; 1 ] with
  | [ m0; m1 ] ->
      let sizes = ref [] in
      Node.spawn (Net.node c 1) (fun () ->
          for _ = 1 to 3 do
            sizes := (Mpi.recv m1 ~tag:7 ()).Mpi.e_bytes :: !sizes
          done);
      Node.spawn (Net.node c 0) (fun () ->
          List.iter (fun n -> Mpi.send m0 ~dst:1 ~tag:7 n) [ 10; 20; 30 ]);
      Net.run c;
      Alcotest.(check (list int)) "fifo among same tag" [ 10; 20; 30 ]
        (List.rev !sizes)
  | _ -> assert false

let test_mpi_wildcard_and_iprobe () =
  let c = Net.create ~n:3 () in
  match clic_world c [ 0; 1; 2 ] with
  | [ m0; m1; m2 ] ->
      let seen = ref [] and probe_before = ref true and probe_after = ref false in
      Node.spawn (Net.node c 2) (fun () ->
          probe_before := Mpi.iprobe m2 ();
          let a = Mpi.recv m2 ~src:1 () in
          let b = Mpi.recv m2 () in
          probe_after := Mpi.iprobe m2 ();
          seen := [ a.Mpi.e_src; b.Mpi.e_src ]);
      Node.spawn (Net.node c 0) (fun () -> Mpi.send m0 ~dst:2 ~tag:1 50);
      Node.spawn (Net.node c 1) (fun () ->
          Process.delay (Time.us 300.);
          Mpi.send m1 ~dst:2 ~tag:1 60);
      Net.run c;
      check_bool "no message at start" false !probe_before;
      Alcotest.(check (list int)) "selective then wildcard" [ 1; 0 ] !seen;
      check_bool "drained" false !probe_after
  | _ -> assert false

let test_mpi_unexpected_messages_buffered () =
  let c = Net.create ~n:2 () in
  match clic_world c [ 0; 1 ] with
  | [ m0; m1 ] ->
      let got = ref 0 in
      Node.spawn (Net.node c 0) (fun () -> Mpi.send m0 ~dst:1 ~tag:9 4000);
      Node.spawn (Net.node c 1) (fun () ->
          (* receive long after arrival *)
          Process.delay (Time.ms 5.);
          check_int "queued as unexpected" 1 (Mpi.unexpected_queued m1);
          got := (Mpi.recv m1 ()).Mpi.e_bytes);
      Net.run c;
      check_int "delivered from unexpected queue" 4000 !got
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* PVM *)

let pvm_pair () =
  let c = Net.create ~n:2 () in
  let mk i =
    let node = Net.node c i in
    Pvm.create node.Node.env node.Node.udp ()
  in
  (c, mk 0, mk 1)

let test_pvm_roundtrip () =
  let c, p0, p1 = pvm_pair () in
  let got = ref None in
  Node.spawn (Net.node c 1) (fun () ->
      got := Some (Pvm.recv p1 ()));
  Node.spawn (Net.node c 0) (fun () -> Pvm.send p0 ~dst:1 ~tag:3 9000);
  Net.run c;
  Alcotest.(check (option (triple int int int)))
    "routed through daemons" (Some (0, 3, 9000)) !got;
  check_bool "daemons did work" true (Pvm.messages_routed p1 >= 1)

let test_pvm_tag_matching () =
  let c, p0, p1 = pvm_pair () in
  let order = ref [] in
  Node.spawn (Net.node c 1) (fun () ->
      let _, t1, _ = Pvm.recv p1 ~tag:2 () in
      let _, t2, _ = Pvm.recv p1 ~tag:1 () in
      order := [ t1; t2 ]);
  Node.spawn (Net.node c 0) (fun () ->
      Pvm.send p0 ~dst:1 ~tag:1 100;
      Pvm.send p0 ~dst:1 ~tag:2 100);
  Net.run c;
  Alcotest.(check (list int)) "tag matching" [ 2; 1 ] !order

let test_pvm_fragments_large_messages () =
  let c, p0, p1 = pvm_pair () in
  let got = ref 0 in
  Node.spawn (Net.node c 1) (fun () ->
      let _, _, n = Pvm.recv p1 () in
      got := n);
  Node.spawn (Net.node c 0) (fun () -> Pvm.send p0 ~dst:1 ~tag:1 50_000);
  Net.run c;
  check_int "reassembled" 50_000 !got;
  (* 50000 / 4080 = 13 fragments, each a UDP datagram *)
  check_bool "daemon fragments" true
    (Proto.Udp.datagrams_sent (Net.node c 0).Node.udp >= 13)

(* ------------------------------------------------------------------ *)
(* Collectives *)

let test_mpi_binomial_bcast () =
  let n = 7 in
  let c = Net.create ~n () in
  let world = tcp_world c (List.init n (fun i -> i)) in
  let received = Array.make n false in
  received.(2) <- false;
  List.iteri
    (fun rank mpi ->
      Node.spawn (Net.node c rank) (fun () ->
          Collectives.mpi_bcast mpi ~rank ~root:2 ~size:n 10_000;
          received.(rank) <- true))
    world;
  Net.run c;
  Alcotest.(check (array bool)) "all ranks finished"
    (Array.make n true) received

let test_clic_bcast_with_confirms () =
  let n = 5 in
  let c = Net.create ~n () in
  let port = 33 in
  let done_at = ref 0 in
  let peers = List.init (n - 1) (fun i -> i + 1) in
  List.iter
    (fun peer ->
      Node.spawn (Net.node c peer) (fun () ->
          Collectives.clic_bcast_peer (Net.node c peer).Node.clic ~root:0
            ~port))
    peers;
  Node.spawn (Net.node c 0) (fun () ->
      Collectives.clic_bcast_root (Net.node c 0).Node.clic ~peers ~port
        20_000;
      done_at := Sim.now c.Net.sim);
  Net.run c;
  check_bool "root saw all confirmations" true (!done_at > 0)

let test_mpi_isend_irecv () =
  let c = Net.create ~n:2 () in
  match clic_world c [ 0; 1 ] with
  | [ m0; m1 ] ->
      let got = ref [] in
      Node.spawn (Net.node c 1) (fun () ->
          (* post both receives before anything arrives *)
          let r1 = Mpi.irecv m1 ~tag:1 () in
          let r2 = Mpi.irecv m1 ~tag:2 () in
          (match Mpi.wait r2 with
          | Some e -> got := e.Mpi.e_tag :: !got
          | None -> ());
          match Mpi.wait r1 with
          | Some e -> got := e.Mpi.e_tag :: !got
          | None -> ());
      Node.spawn (Net.node c 0) (fun () ->
          let s1 = Mpi.isend m0 ~dst:1 ~tag:1 3000 in
          let s2 = Mpi.isend m0 ~dst:1 ~tag:2 3000 in
          check_bool "waits return None for sends" true
            (Mpi.wait s1 = None && Mpi.wait s2 = None));
      Net.run c;
      Alcotest.(check (list int)) "both matched out of order" [ 1; 2 ] !got
  | _ -> assert false

let test_mpi_request_test () =
  let c = Net.create ~n:2 () in
  match clic_world c [ 0; 1 ] with
  | [ m0; m1 ] ->
      let was_pending = ref false and later_done = ref false in
      Node.spawn (Net.node c 1) (fun () ->
          let r = Mpi.irecv m1 () in
          was_pending := not (Mpi.test r);
          Process.delay (Time.ms 2.);
          later_done := Mpi.test r);
      Node.spawn (Net.node c 0) (fun () ->
          Process.delay (Time.us 100.);
          Mpi.send m0 ~dst:1 ~tag:0 100);
      Net.run c;
      check_bool "pending before arrival" true !was_pending;
      check_bool "complete after arrival" true !later_done
  | _ -> assert false

let run_on_all c world f =
  List.iteri (fun rank mpi -> Node.spawn (Net.node c rank) (fun () -> f rank mpi)) world

let test_collective_barrier () =
  let n = 5 in
  let c = Net.create ~n () in
  let world = clic_world c (List.init n (fun i -> i)) in
  let before = Array.make n 0 and after = Array.make n 0 in
  run_on_all c world (fun rank mpi ->
      (* stagger arrivals; nobody may leave before the last arrives *)
      Process.delay (Time.us (float_of_int (rank * 200)));
      before.(rank) <- Sim.now c.Net.sim;
      Collectives.barrier mpi ~rank ~size:n;
      after.(rank) <- Sim.now c.Net.sim);
  Net.run c;
  let last_arrival = Array.fold_left max 0 before in
  Array.iter
    (fun t -> check_bool "left after last arrival" true (t >= last_arrival))
    after

let test_collective_gather () =
  let n = 4 in
  let c = Net.create ~n () in
  let world = tcp_world c (List.init n (fun i -> i)) in
  let done_ = ref 0 in
  run_on_all c world (fun rank mpi ->
      Collectives.gather mpi ~rank ~root:2 ~size:n 5000;
      incr done_);
  Net.run c;
  check_int "all ranks completed" n !done_

let test_collective_allreduce () =
  let n = 4 in
  let c = Net.create ~n () in
  let world = clic_world c (List.init n (fun i -> i)) in
  let done_ = ref 0 in
  run_on_all c world (fun rank mpi ->
      Collectives.allreduce mpi ~rank ~size:n 65536;
      incr done_);
  Net.run c;
  check_int "all ranks completed" n !done_;
  (* ring allreduce: each rank sends 2(n-1) chunks *)
  List.iter
    (fun mpi -> check_int "2(n-1) sends per rank" (2 * (n - 1)) (Mpi.sends mpi))
    world

(* ------------------------------------------------------------------ *)
(* Collective message-count formulas, checked at several world sizes.
   Payloads stay under the eager threshold so [Mpi.sends] counts exactly
   one wire transaction per send call. *)

let world_ranks n = List.init n (fun i -> i)
let total_sends world = List.fold_left (fun acc m -> acc + Mpi.sends m) 0 world

let ceil_log2 n =
  let r = ref 0 and k = ref 1 in
  while !k < n do
    incr r;
    k := !k * 2
  done;
  !r

let test_bcast_message_count () =
  List.iter
    (fun n ->
      let c = Net.create ~n () in
      let world = clic_world c (world_ranks n) in
      run_on_all c world (fun rank mpi ->
          Collectives.mpi_bcast mpi ~rank ~root:1 ~size:n 4096);
      Net.run c;
      check_int
        (Printf.sprintf "binomial tree, n=%d: size-1 messages total" n)
        (n - 1) (total_sends world))
    [ 2; 3; 5; 8 ]

let test_barrier_message_count () =
  List.iter
    (fun n ->
      let c = Net.create ~n () in
      let world = clic_world c (world_ranks n) in
      run_on_all c world (fun rank mpi -> Collectives.barrier mpi ~rank ~size:n);
      Net.run c;
      let rounds = ceil_log2 n in
      List.iter
        (fun mpi ->
          check_int
            (Printf.sprintf "dissemination, n=%d: ceil(log2 n) sends/rank" n)
            rounds (Mpi.sends mpi);
          check_int
            (Printf.sprintf "dissemination, n=%d: ceil(log2 n) recvs/rank" n)
            rounds (Mpi.receives mpi))
        world)
    [ 2; 3; 4; 5; 8 ]

let test_gather_message_count () =
  List.iter
    (fun n ->
      let c = Net.create ~n () in
      let world = tcp_world c (world_ranks n) in
      run_on_all c world (fun rank mpi ->
          Collectives.gather mpi ~rank ~root:0 ~size:n 5000);
      Net.run c;
      List.iteri
        (fun rank mpi ->
          check_int
            (Printf.sprintf "linear gather, n=%d: sends of rank %d" n rank)
            (if rank = 0 then 0 else 1)
            (Mpi.sends mpi))
        world;
      check_int
        (Printf.sprintf "linear gather, n=%d: root receives size-1" n)
        (n - 1)
        (Mpi.receives (List.hd world)))
    [ 2; 4; 6 ]

let test_allreduce_message_count () =
  List.iter
    (fun n ->
      let c = Net.create ~n () in
      let world = clic_world c (world_ranks n) in
      run_on_all c world (fun rank mpi ->
          Collectives.allreduce mpi ~rank ~size:n 8192);
      Net.run c;
      List.iter
        (fun mpi ->
          check_int
            (Printf.sprintf "ring, n=%d: 2(n-1) sends/rank" n)
            (2 * (n - 1))
            (Mpi.sends mpi);
          check_int
            (Printf.sprintf "ring, n=%d: 2(n-1) recvs/rank" n)
            (2 * (n - 1))
            (Mpi.receives mpi))
        world)
    [ 2; 3; 5 ]

(* Collectives under injected loss: the reliable channel underneath must
   absorb the drops.  The fault thunks are stashed so the test can prove
   frames really were discarded. *)

let lossy_config mk =
  let faults = ref [] in
  let config =
    {
      Node.default_config with
      link_fault =
        Some
          (fun () ->
            let f = mk () in
            faults := f :: !faults;
            f);
    }
  in
  (config, faults)

let injected faults =
  List.fold_left (fun acc f -> acc + Hw.Fault.drops f) 0 !faults

let test_mpi_bcast_under_loss () =
  let n = 5 in
  let config, faults =
    lossy_config (fun () -> Hw.Fault.drop ~rng:(Rng.create ~seed:11) ~prob:0.05)
  in
  let c = Net.create ~config ~n () in
  let world = clic_world c (world_ranks n) in
  let done_ = ref 0 in
  run_on_all c world (fun rank mpi ->
      Collectives.mpi_bcast mpi ~rank ~root:0 ~size:n 40_000;
      incr done_);
  Net.run c;
  check_int "all ranks complete under loss" n !done_;
  check_bool "loss was actually injected" true (injected faults > 0)

let test_clic_bcast_under_loss () =
  (* The broadcast data frame itself is unreliable Ethernet multicast and
     is always the first frame on each link here; drop-every-2nd loses
     only confirmations and acknowledgements, which the sequenced channel
     retransmits. *)
  let n = 5 in
  let config, faults = lossy_config (fun () -> Hw.Fault.drop_nth ~every:2) in
  let c = Net.create ~config ~n () in
  let port = 34 in
  let done_at = ref 0 in
  let peers = List.init (n - 1) (fun i -> i + 1) in
  List.iter
    (fun peer ->
      Node.spawn (Net.node c peer) (fun () ->
          Collectives.clic_bcast_peer (Net.node c peer).Node.clic ~root:0 ~port))
    peers;
  Node.spawn (Net.node c 0) (fun () ->
      Collectives.clic_bcast_root (Net.node c 0).Node.clic ~peers ~port 1_000;
      done_at := Sim.now c.Net.sim);
  Net.run c;
  check_bool "root saw all confirmations despite loss" true (!done_at > 0);
  check_bool "loss was actually injected" true (injected faults > 0)

let suite =
  List.concat_map
    (fun (name, world_of) ->
      [
        (name ^ " roundtrip", `Quick, roundtrip_test world_of);
        (name ^ " rendezvous", `Quick, rendezvous_test world_of);
      ])
    both_transports
  @ [
      ("tag matching", `Quick, test_mpi_tag_matching);
      ("fifo per tag", `Quick, test_mpi_fifo_per_matching);
      ("wildcard + iprobe", `Quick, test_mpi_wildcard_and_iprobe);
      ("unexpected queue", `Quick, test_mpi_unexpected_messages_buffered);
      ("pvm roundtrip", `Quick, test_pvm_roundtrip);
      ("pvm tags", `Quick, test_pvm_tag_matching);
      ("pvm fragmentation", `Quick, test_pvm_fragments_large_messages);
      ("mpi binomial bcast", `Quick, test_mpi_binomial_bcast);
      ("clic bcast confirms", `Quick, test_clic_bcast_with_confirms);
      ("isend/irecv", `Quick, test_mpi_isend_irecv);
      ("request test", `Quick, test_mpi_request_test);
      ("barrier", `Quick, test_collective_barrier);
      ("gather", `Quick, test_collective_gather);
      ("allreduce", `Quick, test_collective_allreduce);
      ("bcast message count", `Quick, test_bcast_message_count);
      ("barrier message count", `Quick, test_barrier_message_count);
      ("gather message count", `Quick, test_gather_message_count);
      ("allreduce message count", `Quick, test_allreduce_message_count);
      ("mpi bcast under loss", `Quick, test_mpi_bcast_under_loss);
      ("clic bcast under loss", `Quick, test_clic_bcast_under_loss);
    ]
