(* Observability-layer tests.

   Property-based coverage of the Wire header codec and the Stats
   histogram (seeded [Engine.Rng] generators, no external dependency),
   the two Trace duration readings, and the lib/obs exporters: Chrome
   trace-event JSON validity and byte-determinism, the metrics registry,
   and the Figure-7 latency-attribution pass.  Golden-number regression
   bands for the Table 1 scalars live here too. *)

open Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let null_fmt =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

(* ------------------------------------------------------------------ *)
(* A minimal strict JSON syntax checker (recursive descent).  The
   toolchain has no JSON library; for validating exporter output a
   yes/no answer is all the tests need. *)

module Json_check = struct
  exception Bad of string

  let validate (s : string) =
    let n = String.length s in
    let pos = ref 0 in
    let bad msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      match peek () with
      | Some g when g = c -> advance ()
      | _ -> bad (Printf.sprintf "expected '%c'" c)
    in
    let literal w =
      let l = String.length w in
      if !pos + l <= n && String.sub s !pos l = w then pos := !pos + l
      else bad (Printf.sprintf "expected %S" w)
    in
    let string_ () =
      expect '"';
      let closed = ref false in
      while not !closed do
        match peek () with
        | None -> bad "unterminated string"
        | Some '"' ->
            advance ();
            closed := true
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
                advance ()
            | Some 'u' ->
                advance ();
                for _ = 1 to 4 do
                  match peek () with
                  | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                  | _ -> bad "bad \\u escape"
                done
            | _ -> bad "bad escape")
        | Some c when Char.code c < 0x20 -> bad "control char in string"
        | Some _ -> advance ()
      done
    in
    let digits () =
      let saw = ref false in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        saw := true;
        advance ()
      done;
      if not !saw then bad "expected digit"
    in
    let number () =
      (match peek () with Some '-' -> advance () | _ -> ());
      digits ();
      (match peek () with
      | Some '.' ->
          advance ();
          digits ()
      | _ -> ());
      match peek () with
      | Some ('e' | 'E') ->
          advance ();
          (match peek () with Some ('+' | '-') -> advance () | _ -> ());
          digits ()
      | _ -> ()
    in
    let rec value () =
      skip_ws ();
      (match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then advance ()
          else begin
            let more = ref true in
            while !more do
              skip_ws ();
              string_ ();
              skip_ws ();
              expect ':';
              value ();
              skip_ws ();
              match peek () with
              | Some ',' -> advance ()
              | Some '}' ->
                  advance ();
                  more := false
              | _ -> bad "expected ',' or '}'"
            done
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then advance ()
          else begin
            let more = ref true in
            while !more do
              value ();
              skip_ws ();
              match peek () with
              | Some ',' -> advance ()
              | Some ']' ->
                  advance ();
                  more := false
              | _ -> bad "expected ',' or ']'"
            done
          end
      | Some '"' -> string_ ()
      | Some ('-' | '0' .. '9') -> number ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | _ -> bad "expected a value");
    in
    value ();
    skip_ws ();
    if !pos <> n then bad "trailing garbage"

  let ok s = try validate s; true with Bad _ -> false
end

let test_json_checker_itself () =
  check_bool "accepts object" true
    (Json_check.ok {|{"a": [1, -2.5e3, "x\n", true, null], "b": {}}|});
  check_bool "rejects trailing comma" false (Json_check.ok {|[1,2,]|});
  check_bool "rejects bare word" false (Json_check.ok "nope");
  check_bool "rejects unterminated" false (Json_check.ok {|{"a": 1|});
  check_bool "rejects garbage tail" false (Json_check.ok "{} {}")

(* ------------------------------------------------------------------ *)
(* Wire codec: property-based roundtrip plus malformed-header cases. *)

let gen_frag rng =
  let frag_count = 1 + Rng.int rng 0xffff in
  {
    Clic.Wire.msg_id = Rng.int rng 0x40000000;
    frag_index = Rng.int rng frag_count;
    frag_count;
    msg_bytes = Rng.int rng 0x40000000;
  }

(* Random but wire-legal SACK blocks: ascending, non-mergeable, start
   offsets and lengths in [1, 0xffff] relative to [cum_seq]. *)
let gen_sacks rng cum_seq =
  let count = Rng.int rng (Clic.Wire.max_sack_blocks + 1) in
  let blocks = ref [] and prev_end = ref cum_seq in
  for _ = 1 to count do
    let start = !prev_end + 1 + Rng.int rng 1_000 in
    let stop = start + 1 + Rng.int rng 1_000 in
    blocks := (start, stop) :: !blocks;
    prev_end := stop
  done;
  List.rev !blocks

let gen_packet rng =
  let kind =
    match Rng.int rng 5 with
    | 0 ->
        Clic.Wire.Data
          { port = Rng.int rng 0x10000; sync = Rng.bool rng; frag = gen_frag rng }
    | 1 -> Clic.Wire.Remote_write { region = Rng.int rng 0x10000; frag = gen_frag rng }
    | 2 -> Clic.Wire.Bcast { port = Rng.int rng 0x10000; frag = gen_frag rng }
    | 3 ->
        let cum_seq = Rng.int rng 0x40000000 in
        Clic.Wire.Chan_ack
          { cum_seq; window = Rng.int rng 0x40000000;
            ce_echo = Rng.bool rng; sacks = gen_sacks rng cum_seq }
    | _ -> Clic.Wire.Msg_ack { msg_id = Rng.int rng 0x40000000 }
  in
  {
    Clic.Wire.src = Rng.int rng 0x10000;
    epoch = Rng.int rng 0x10000;
    chan_seq = (if Rng.bool rng then Some (Rng.int rng 0x40000000) else None);
    data_bytes = Rng.int rng 0x10000;
    ce = Rng.bool rng;
    kind;
  }

let test_wire_roundtrip_property () =
  let rng = Rng.create ~seed:0xC11C in
  for i = 1 to 1_000 do
    let p = gen_packet rng in
    let q = Clic.Wire.(decode (encode p)) in
    if q <> p then
      Alcotest.failf "roundtrip mismatch at case %d: %a -> %a" i Clic.Wire.pp p
        Clic.Wire.pp q
  done

let test_wire_header_len () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 50 do
    check_int "encoded length" Clic.Wire.header_len
      (Bytes.length (Clic.Wire.encode (gen_packet rng)))
  done

let sample_data =
  {
    Clic.Wire.src = 3;
    epoch = 1;
    chan_seq = Some 41;
    data_bytes = 1400;
    ce = false;
    kind =
      Clic.Wire.Data
        {
          port = 9;
          sync = false;
          frag = { msg_id = 7; frag_index = 0; frag_count = 2; msg_bytes = 2800 };
        };
  }

let decode_fails b =
  match Clic.Wire.decode b with
  | _ -> false
  | exception Clic.Wire.Decode_error _ -> true

let test_wire_decode_rejects_malformed () =
  let enc = Clic.Wire.encode sample_data in
  check_bool "short header" true (decode_fails (Bytes.sub enc 0 12));
  check_bool "long header" true
    (decode_fails (Bytes.cat enc (Bytes.make 1 '\000')));
  let bad_tag = Bytes.copy enc in
  Bytes.set_uint8 bad_tag 0 5;
  check_bool "unknown tag" true (decode_fails bad_tag);
  let bad_flags = Bytes.copy enc in
  Bytes.set_uint8 bad_flags 1 0x80;
  check_bool "unknown flags" true (decode_fails bad_flags);
  let zero_count = Bytes.copy enc in
  Bytes.set_uint8 zero_count 22 0;
  Bytes.set_uint8 zero_count 23 0;
  check_bool "frag_count = 0" true (decode_fails zero_count);
  let bad_index = Bytes.copy enc in
  (* frag_index := frag_count (= 2) *)
  Bytes.set_uint8 bad_index 20 0;
  Bytes.set_uint8 bad_index 21 2;
  check_bool "frag_index >= frag_count" true (decode_fails bad_index);
  let sync_ack =
    Clic.Wire.encode { sample_data with kind = Clic.Wire.Msg_ack { msg_id = 7 } }
  in
  Bytes.set_uint8 sync_ack 1 (Bytes.get_uint8 sync_ack 1 lor 1);
  check_bool "sync on non-data" true (decode_fails sync_ack);
  (* CE-echo is an ack-only flag *)
  let ce_echo_data = Bytes.copy enc in
  Bytes.set_uint8 ce_echo_data 1 (Bytes.get_uint8 ce_echo_data 1 lor 8);
  check_bool "ce-echo on non-ack" true (decode_fails ce_echo_data)

let sample_ack =
  {
    sample_data with
    Clic.Wire.chan_seq = None;
    data_bytes = 0;
    kind =
      Clic.Wire.Chan_ack
        { cum_seq = 100; window = 8; ce_echo = true;
          sacks = [ (103, 105); (110, 111) ] };
  }

let test_wire_decode_rejects_malformed_sacks () =
  let enc = Clic.Wire.encode sample_ack in
  check_bool "well-formed ack decodes" true
    (Clic.Wire.decode enc = sample_ack);
  let too_many = Bytes.copy enc in
  Bytes.set_uint8 too_many 26 (Clic.Wire.max_sack_blocks + 1);
  check_bool "sack count > 3" true (decode_fails too_many);
  let on_data = Clic.Wire.encode sample_data in
  Bytes.set_uint8 on_data 26 1;
  check_bool "sack count on a data packet" true (decode_fails on_data);
  let zero_start = Bytes.copy enc in
  (* first block's start offset := 0: a block cannot begin at cum_seq *)
  Bytes.set_uint8 zero_start 28 0;
  Bytes.set_uint8 zero_start 29 0;
  check_bool "zero start offset" true (decode_fails zero_start);
  let zero_len = Bytes.copy enc in
  Bytes.set_uint8 zero_len 30 0;
  Bytes.set_uint8 zero_len 31 0;
  check_bool "zero block length" true (decode_fails zero_len);
  let out_of_order = Bytes.copy enc in
  (* second block's start offset := 1, inside the first block *)
  Bytes.set_uint8 out_of_order 32 0;
  Bytes.set_uint8 out_of_order 33 1;
  check_bool "blocks out of order" true (decode_fails out_of_order);
  let dirty_tail = Bytes.copy enc in
  (* a byte past the two declared blocks must stay zero *)
  Bytes.set_uint8 dirty_tail 38 0x5a;
  check_bool "unused sack bytes nonzero" true (decode_fails dirty_tail);
  (match
     Clic.Wire.encode
       { sample_ack with
         kind =
           Clic.Wire.Chan_ack
             { cum_seq = 100; window = 8; ce_echo = false;
               sacks = [ (103, 105); (105, 107) ] } }
   with
  | _ -> Alcotest.fail "mergeable sack blocks accepted"
  | exception Invalid_argument _ -> ());
  match
    Clic.Wire.encode
      { sample_ack with
        kind =
          Clic.Wire.Chan_ack
            { cum_seq = 100; window = 8; ce_echo = false;
              sacks = [ (100, 105) ] } }
  with
  | _ -> Alcotest.fail "sack block starting at cum_seq accepted"
  | exception Invalid_argument _ -> ()

let test_wire_epoch_field_and_old_format () =
  (* epoch at offsets 24-25, sack count at 26, reserved zero at 27,
     sack blocks at 28-39 *)
  check_int "header grew to 40 bytes for ECN/SACK" 40 Clic.Wire.header_len;
  List.iter
    (fun epoch ->
      let p = { sample_data with Clic.Wire.epoch } in
      let q = Clic.Wire.(decode (encode p)) in
      if q <> p then Alcotest.failf "epoch %d did not roundtrip" epoch)
    [ 0; 1; 0xfffe; 0xffff ];
  (match Clic.Wire.encode { sample_data with Clic.Wire.epoch = 0x10000 } with
  | _ -> Alcotest.fail "epoch beyond 16 bits accepted"
  | exception Invalid_argument _ -> ());
  (match Clic.Wire.encode { sample_data with Clic.Wire.epoch = -1 } with
  | _ -> Alcotest.fail "negative epoch accepted"
  | exception Invalid_argument _ -> ());
  let enc = Clic.Wire.encode sample_data in
  (* older fixed-size layouts — exactly what an old peer would emit —
     must fail to decode entirely, never misparse into a packet *)
  check_bool "pre-epoch 24-byte format rejected outright" true
    (decode_fails (Bytes.sub enc 0 24));
  check_bool "pre-ECN 28-byte format rejected outright" true
    (decode_fails (Bytes.sub enc 0 28));
  (* a nonzero reserved byte is from the future: reject, don't guess *)
  let future = Bytes.copy enc in
  Bytes.set_uint8 future 27 0x80;
  check_bool "reserved byte 27 rejected" true (decode_fails future);
  (* the CE bit roundtrips on every kind that can carry it *)
  let marked = { sample_data with Clic.Wire.ce = true } in
  check_bool "CE bit roundtrips" true
    (Clic.Wire.(decode (encode marked)) = marked)

let test_wire_encode_rejects_out_of_range () =
  let encode_fails p =
    match Clic.Wire.encode p with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "src too wide" true
    (encode_fails { sample_data with src = 0x10000 });
  check_bool "negative data_bytes" true
    (encode_fails { sample_data with data_bytes = -1 });
  check_bool "frag_index = frag_count" true
    (encode_fails
       {
         sample_data with
         kind =
           Clic.Wire.Data
             {
               port = 9;
               sync = false;
               frag =
                 { msg_id = 7; frag_index = 2; frag_count = 2; msg_bytes = 2800 };
             };
       })

(* ------------------------------------------------------------------ *)
(* Stats.Histogram invariants. *)

let test_histogram_properties () =
  let rng = Rng.create ~seed:99 in
  let h = Stats.Histogram.create "lat" in
  let maxv = ref 0 in
  for _ = 1 to 500 do
    let v = Rng.int rng 1_000_000 in
    maxv := max !maxv v;
    Stats.Histogram.add h v
  done;
  check_int "count" 500 (Stats.Histogram.count h);
  let bucket_sum =
    List.fold_left (fun acc (_, c) -> acc + c) 0 (Stats.Histogram.buckets h)
  in
  check_int "bucket counts sum to count" 500 bucket_sum;
  let ps = [ 0.; 10.; 25.; 50.; 75.; 90.; 99.; 100. ] in
  let _ =
    List.fold_left
      (fun prev p ->
        let v = Stats.Histogram.percentile h p in
        check_bool
          (Printf.sprintf "percentile monotone at p=%g" p)
          true (v >= prev);
        v)
      0 ps
  in
  check_bool "p100 covers the maximum" true
    (Stats.Histogram.percentile h 100. >= !maxv);
  let bounds_sorted =
    let bs = List.map fst (Stats.Histogram.buckets h) in
    bs = List.sort_uniq compare bs
  in
  check_bool "bucket bounds ascending" true bounds_sorted;
  check_int "empty histogram percentile" 0
    (Stats.Histogram.percentile (Stats.Histogram.create "empty") 50.)

(* ------------------------------------------------------------------ *)
(* Trace: the two duration readings. *)

let test_trace_duration_semantics () =
  let sim = Sim.create () in
  let tr = Trace.create sim in
  (* two overlapping spans and one disjoint one: [0,10] [5,15] [20,30] *)
  Trace.record tr "stage" 0 10;
  Trace.record tr "stage" 5 15;
  Trace.record tr "stage" 20 30;
  Trace.record tr "other" 2 4;
  (match Trace.duration tr "stage" with
  | Some d -> check_int "duration sums with multiplicity" 30 d
  | None -> Alcotest.fail "duration: label missing");
  (match Trace.disjoint_duration tr "stage" with
  | Some d -> check_int "disjoint merges the overlap" 25 d
  | None -> Alcotest.fail "disjoint_duration: label missing");
  check_bool "missing label" true (Trace.duration tr "nope" = None);
  check_bool "missing label (disjoint)" true
    (Trace.disjoint_duration tr "nope" = None)

let test_merged_length () =
  check_int "empty" 0 (Trace.merged_length []);
  check_int "abutting intervals merge" 10
    (Trace.merged_length [ (0, 5); (5, 10) ]);
  check_int "containment" 10 (Trace.merged_length [ (0, 10); (2, 8) ]);
  check_int "unsorted input" 12
    (Trace.merged_length [ (20, 25); (0, 5); (3, 7) ]);
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 100 do
    let ivs =
      List.init
        (1 + Rng.int rng 10)
        (fun _ ->
          let a = Rng.int rng 1000 in
          (a, a + Rng.int rng 100))
    in
    let merged = Trace.merged_length ivs in
    let summed = List.fold_left (fun acc (a, b) -> acc + (b - a)) 0 ivs in
    check_bool "merged <= summed" true (merged <= summed);
    let lo = List.fold_left (fun m (a, _) -> min m a) max_int ivs in
    let hi = List.fold_left (fun m (_, b) -> max m b) 0 ivs in
    check_bool "merged <= hull" true (merged <= hi - lo)
  done

(* ------------------------------------------------------------------ *)
(* Recorded-scenario exporters. *)

let record name =
  match Check.Scenario.find name with
  | Some sc -> fst (Obs.Recorder.record sc)
  | None -> Alcotest.failf "scenario %S not registered" name

(* The cheap end of the registry; the CI workflow sweeps all fourteen. *)
let quick_scenarios = [ "fig7"; "ext2"; "ext3"; "ext4"; "chaos" ]

let test_timeline_json_valid () =
  List.iter
    (fun name ->
      let rec_ = record name in
      check_bool (name ^ " recorded events") true (Obs.Recorder.count rec_ > 0);
      let json = Obs.Timeline.export rec_ in
      match Json_check.validate json with
      | () -> ()
      | exception Json_check.Bad msg ->
          Alcotest.failf "%s timeline JSON invalid: %s" name msg)
    quick_scenarios

let test_timeline_deterministic () =
  let a = Obs.Timeline.export (record "fig7") in
  let b = Obs.Timeline.export (record "fig7") in
  check_bool "byte-identical across runs" true (String.equal a b);
  check_bool "non-trivial output" true (String.length a > 1000)

let test_metrics_families_and_determinism () =
  let rec_ = record "fig7" in
  let m = Obs.Metrics.build rec_ in
  let fams = Obs.Metrics.families m in
  check_bool
    (Printf.sprintf "at least 6 instrument families (got %d: %s)"
       (List.length fams) (String.concat ", " fams))
    true
    (List.length fams >= 6);
  List.iter
    (fun f ->
      check_bool ("family present: " ^ f) true (List.mem f fams))
    [ "cpu-utilization"; "irq-rate"; "queue-depth"; "msg-count" ];
  List.iter
    (fun s ->
      let ts = List.map fst s.Obs.Metrics.s_points in
      check_bool (s.Obs.Metrics.s_name ^ " time-ascending") true
        (ts = List.sort compare ts);
      if
        String.length s.Obs.Metrics.s_name >= 4
        && String.sub s.Obs.Metrics.s_name 0 4 = "cpu-"
      then
        List.iter
          (fun (_, v) ->
            check_bool "utilization within [0,1]" true (v >= 0. && v <= 1.000001))
          s.Obs.Metrics.s_points)
    m.Obs.Metrics.series;
  let csv1 = Obs.Metrics.to_csv m in
  let csv2 = Obs.Metrics.to_csv (Obs.Metrics.build (record "fig7")) in
  check_bool "CSV deterministic" true (String.equal csv1 csv2);
  let json = Obs.Metrics.to_json m in
  check_bool "metrics JSON valid" true (Json_check.ok json)

(* The congestion families: recording the incast scenario must populate
   [switch-buffer], [switch-drop] and [pause] with the right kinds and
   units, and the export must stay byte-deterministic.  This is the golden
   export for the 802.3x instrumentation — if a probe stops firing or a
   family is renamed, this fails. *)
let test_metrics_congestion_families () =
  let m = Obs.Metrics.build (record "incast") in
  let series = m.Obs.Metrics.series in
  let with_prefix p =
    List.filter
      (fun s ->
        String.length s.Obs.Metrics.s_name >= String.length p
        && String.sub s.Obs.Metrics.s_name 0 (String.length p) = p)
      series
  in
  let occupancy = with_prefix "switch-buffer/" in
  check_bool "switch-buffer series present" true (occupancy <> []);
  List.iter
    (fun s ->
      check_bool (s.Obs.Metrics.s_name ^ " is a gauge") true
        (s.Obs.Metrics.s_kind = Obs.Metrics.Gauge);
      Alcotest.(check string) "unit" "bytes" s.Obs.Metrics.s_unit;
      List.iter
        (fun (_, v) -> check_bool "occupancy >= 0" true (v >= 0.))
        s.Obs.Metrics.s_points)
    occupancy;
  (* the shared pool visibly filled at some point *)
  check_bool "occupancy rose above zero" true
    (List.exists
       (fun s -> List.exists (fun (_, v) -> v > 0.) s.Obs.Metrics.s_points)
       occupancy);
  let drops = with_prefix "switch-drop/" in
  check_bool "switch-drop series present" true (drops <> []);
  List.iter
    (fun s ->
      check_bool (s.Obs.Metrics.s_name ^ " is a counter") true
        (s.Obs.Metrics.s_kind = Obs.Metrics.Counter);
      Alcotest.(check string) "unit" "frames" s.Obs.Metrics.s_unit)
    drops;
  (* the tail-drop arm loses frames on both sides of the switch *)
  let has_dir d =
    List.exists (fun s -> Filename.check_suffix s.Obs.Metrics.s_name d) drops
  in
  check_bool "ingress drop series" true (has_dir ".ingress");
  check_bool "egress drop series" true (has_dir ".egress");
  let pause = with_prefix "pause/" in
  check_bool "pause series present" true (pause <> []);
  List.iter
    (fun s ->
      let is_state = Filename.check_suffix s.Obs.Metrics.s_name ".state" in
      check_bool (s.Obs.Metrics.s_name ^ " kind") true
        (s.Obs.Metrics.s_kind
        = if is_state then Obs.Metrics.Gauge else Obs.Metrics.Counter);
      Alcotest.(check string)
        "unit"
        (if is_state then "state" else "frames")
        s.Obs.Metrics.s_unit;
      if is_state then
        List.iter
          (fun (_, v) -> check_bool "state is 0/1" true (v = 0. || v = 1.))
          s.Obs.Metrics.s_points)
    pause;
  (* XOFF and XON both happened: some NIC went paused and came back *)
  check_bool "a transmit path was XOFFed" true
    (List.exists
       (fun s ->
         Filename.check_suffix s.Obs.Metrics.s_name ".state"
         && List.exists (fun (_, v) -> v = 1.) s.Obs.Metrics.s_points
         && List.exists (fun (_, v) -> v = 0.) s.Obs.Metrics.s_points)
       pause);
  check_bool "PAUSE frames were counted on both ends" true
    (List.exists
       (fun s -> Filename.check_suffix s.Obs.Metrics.s_name ".tx")
       pause
    && List.exists
         (fun s -> Filename.check_suffix s.Obs.Metrics.s_name ".rx")
         pause);
  let csv1 = Obs.Metrics.to_csv m in
  let csv2 = Obs.Metrics.to_csv (Obs.Metrics.build (record "incast")) in
  check_bool "congestion CSV deterministic" true (String.equal csv1 csv2);
  check_bool "congestion metrics JSON valid" true
    (Json_check.ok (Obs.Metrics.to_json m))

let test_attribution_matches_fig7 () =
  let expected = Report.Figures.fig7 null_fmt in
  let rec_ = record "fig7" in
  let msgs =
    List.filter (fun m -> m.Obs.Attribution.bytes = 1400)
      (Obs.Attribution.messages rec_)
  in
  check_int "one 1400B message per fig7 run" 2 (List.length msgs);
  let close what want got =
    if Float.abs (want -. got) > 1.0 then
      Alcotest.failf "%s: attribution %.2fus vs figure %.2fus" what got want
  in
  (match msgs with
  | [ a; b ] ->
      close "run (a) total" expected.Report.Figures.latency_a_us
        a.Obs.Attribution.stages.Obs.Attribution.total_us;
      close "run (b) total" expected.Report.Figures.latency_b_us
        b.Obs.Attribution.stages.Obs.Attribution.total_us;
      (* run (b) is the direct-from-ISR variant: no bottom half at all *)
      check_bool "run (b) has no bottom-half stage" true
        (b.Obs.Attribution.stages.Obs.Attribution.bottom_half_us = 0.);
      let sum s =
        Obs.Attribution.(
          s.module_tx_us +. s.driver_tx_us +. s.transit_us +. s.isr_us
          +. s.bottom_half_us +. s.module_rx_us)
      in
      List.iter
        (fun m ->
          let s = m.Obs.Attribution.stages in
          if
            Float.abs (sum s -. s.Obs.Attribution.total_us) > 0.01
          then
            Alcotest.failf "stages do not sum to total: %.2f vs %.2f" (sum s)
              s.Obs.Attribution.total_us)
        msgs
  | _ -> assert false);
  let p = Obs.Attribution.latency_percentiles msgs in
  check_bool "p50 <= p90 <= p99" true
    (p.Obs.Attribution.p50_us <= p.Obs.Attribution.p90_us
    && p.Obs.Attribution.p90_us <= p.Obs.Attribution.p99_us)

let test_host_attribution () =
  let cases =
    [
      ("cpu3", Some 3);
      ("mem0", Some 0);
      ("pci1", Some 1);
      ("pci1.2", Some 1);
      ("kmem7", Some 7);
      ("nic2.0", Some 2);
      ("switch0<-n4", Some 4);
      ("switch0->n5", Some 5);
      ("switch0", None);
      ("bogus", None);
      ("cpu", None);
    ]
  in
  List.iter
    (fun (name, want) ->
      Alcotest.(check (option int)) name want (Obs.Host.node_of name))
    cases

(* ------------------------------------------------------------------ *)
(* Golden numbers: Table 1 scalars in quick mode.  Bands are centred on
   values measured at the time this test was written; a drift outside
   the band means the simulated protocol behaviour changed, which must
   be a deliberate, explained change. *)

let test_tab1_golden_numbers () =
  let scalars = Report.Figures.tab1 ~quick:true null_fmt in
  let get name =
    match
      List.find_opt (fun s -> s.Report.Figures.name = name) scalars
    with
    | Some s -> s.Report.Figures.measured
    | None -> Alcotest.failf "tab1 scalar %S missing" name
  in
  let in_band name lo hi =
    let v = get name in
    if v < lo || v > hi then
      Alcotest.failf "%s = %.2f outside golden band [%.2f, %.2f]" name v lo hi
  in
  in_band "0-byte latency (us)" 37.1 39.1;
  in_band "CLIC asymptote, MTU 9000 (Mbit/s)" 543.5 600.7;
  in_band "CLIC asymptote, MTU 1500 (Mbit/s)" 440.8 487.2;
  in_band "CLIC / TCP best-case ratio" 2.0 2.8;
  in_band "MPI-CLIC / MPI-TCP ratio (long messages)" 2.0 2.8;
  in_band "half-bandwidth message size, CLIC (B)" 5347.6 6536.0;
  in_band "half-bandwidth message size, TCP (B)" 7534.5 9208.9

let suite =
  [
    ("json checker sanity", `Quick, test_json_checker_itself);
    ("wire roundtrip (1000 random packets)", `Quick, test_wire_roundtrip_property);
    ("wire header length", `Quick, test_wire_header_len);
    ("wire rejects malformed headers", `Quick, test_wire_decode_rejects_malformed);
    ("wire rejects malformed sacks", `Quick, test_wire_decode_rejects_malformed_sacks);
    ("wire epoch & old-format rejection", `Quick, test_wire_epoch_field_and_old_format);
    ("wire rejects out-of-range fields", `Quick, test_wire_encode_rejects_out_of_range);
    ("histogram invariants", `Quick, test_histogram_properties);
    ("trace duration vs disjoint", `Quick, test_trace_duration_semantics);
    ("merged_length", `Quick, test_merged_length);
    ("timeline JSON validity", `Quick, test_timeline_json_valid);
    ("timeline determinism", `Quick, test_timeline_deterministic);
    ("metrics families + determinism", `Quick, test_metrics_families_and_determinism);
    ("metrics congestion families", `Slow, test_metrics_congestion_families);
    ("attribution reproduces fig7", `Quick, test_attribution_matches_fig7);
    ("host name attribution", `Quick, test_host_attribution);
    ("tab1 golden numbers", `Slow, test_tab1_golden_numbers);
  ]
