(* Tests for the CLIC protocol: the reliability channel, CLIC_MODULE's
   send/receive paths, data-path configurations, staging, remote writes,
   broadcast, same-node messages and channel bonding. *)

open Engine
open Cluster
open Clic

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let two_nodes ?config () =
  let c = Net.create ?config ~n:2 () in
  (c, Net.node c 0, Net.node c 1)

let config_with ?(mtu = 1500) ?clic ?fault ?(nics = 1) () =
  let base = { Node.default_config with mtu; nics } in
  let base =
    match clic with None -> base | Some p -> { base with clic_params = p }
  in
  match fault with
  | None -> base
  | Some f -> { base with link_fault = Some f }

(* ------------------------------------------------------------------ *)
(* Channel (unit level) *)

let channel_rig ?(params = Params.default) () =
  let sim = Sim.create () in
  let sent = ref [] and delivered = ref [] and acks = ref [] in
  let chan =
    Channel.create sim ~self:0 ~peer:1 ~params
      ~transmit:(fun pkt ~retransmission ->
        sent := (pkt, retransmission) :: !sent)
      ~deliver:(fun pkt -> delivered := pkt :: !delivered)
      ~send_ack:(fun ~cum_seq ~sacks:_ ~ce_echo:_ -> acks := cum_seq :: !acks)
      ()
  in
  (sim, chan, sent, delivered, acks)

let mk_data ?(bytes = 100) seq =
  { Wire.src = 1; epoch = 0; chan_seq = Some seq; data_bytes = bytes;
    ce = false;
    kind =
      Wire.Data
        { port = 1; sync = false;
          frag = { Wire.msg_id = seq; frag_index = 0; frag_count = 1;
                   msg_bytes = bytes } } }

let test_channel_in_order_delivery () =
  let sim, chan, _, delivered, _ = channel_rig () in
  Process.spawn sim (fun () ->
      Channel.rx chan (mk_data 0);
      Channel.rx chan (mk_data 1);
      Channel.rx chan (mk_data 2));
  Sim.run sim;
  check_int "three delivered" 3 (List.length !delivered);
  check_int "channel count" 3 (Channel.delivered chan)

let test_channel_reorders_ooo () =
  let sim, chan, _, delivered, _ = channel_rig () in
  Process.spawn sim (fun () ->
      Channel.rx chan (mk_data 2);
      Channel.rx chan (mk_data 0);
      check_int "only seq 0 so far" 1 (List.length !delivered);
      Channel.rx chan (mk_data 1));
  Sim.run sim;
  let seqs =
    List.rev_map (fun p -> Option.get p.Wire.chan_seq) !delivered
  in
  Alcotest.(check (list int)) "ordered" [ 0; 1; 2 ] seqs

let test_channel_drops_duplicates () =
  let sim, chan, _, delivered, _ = channel_rig () in
  Process.spawn sim (fun () ->
      Channel.rx chan (mk_data 0);
      Channel.rx chan (mk_data 0);
      Channel.rx chan (mk_data 1);
      Channel.rx chan (mk_data 1));
  Sim.run sim;
  check_int "no duplicate delivery" 2 (List.length !delivered);
  check_int "duplicates counted" 2 (Channel.duplicates_dropped chan)

let test_channel_retransmits_on_timeout () =
  let sim, chan, sent, _, _ = channel_rig () in
  Process.spawn sim (fun () ->
      let pkt =
        Channel.next_seq chan ~data_bytes:10
          (Wire.Data
             { port = 1; sync = false;
               frag = { Wire.msg_id = 0; frag_index = 0; frag_count = 1;
                        msg_bytes = 10 } })
      in
      ignore pkt);
  Sim.run sim;
  (* No ack ever arrives: the timer must have fired at least once. *)
  check_bool "retransmissions" true (Channel.retransmissions chan > 0);
  check_bool "retransmission flagged" true
    (List.exists (fun (_, retx) -> retx) !sent)

let test_channel_ack_frees_window () =
  let params = { Params.default with tx_window = 2 } in
  let sim, chan, _, _, _ = channel_rig ~params () in
  let progressed = ref 0 in
  Process.spawn sim (fun () ->
      for i = 0 to 3 do
        ignore
          (Channel.next_seq chan ~data_bytes:1
             (Wire.Msg_ack { msg_id = i }));
        incr progressed
      done);
  Process.spawn sim ~delay:(Time.us 10.) (fun () ->
      check_int "window blocked at 2" 2 !progressed;
      Channel.rx_ack chan 2);
  Sim.run sim;
  check_int "all sent after ack" 4 !progressed;
  check_int "outstanding" 2 (Channel.outstanding chan)

let test_channel_rejects_unreliable_kind () =
  let _, chan, _, _, _ = channel_rig () in
  Alcotest.check_raises "unreliable"
    (Invalid_argument "Channel.next_seq: unreliable kind") (fun () ->
      ignore
        (Channel.next_seq chan ~data_bytes:0
           (Wire.Chan_ack
              { cum_seq = 0; window = 8; ce_echo = false; sacks = [] })))

let test_channel_rtt_adaptation () =
  let params = { Params.default with rto_min = Time.us 200. } in
  let sim, chan, _, _, _ = channel_rig ~params () in
  Process.spawn sim (fun () ->
      for i = 0 to 9 do
        ignore
          (Channel.next_seq chan ~data_bytes:10 (Wire.Msg_ack { msg_id = i }));
        (* the ack comes back exactly 50 us after the send *)
        Process.delay (Time.us 50.);
        Channel.rx_ack chan (i + 1)
      done);
  Sim.run sim;
  check_int "every ack sampled" 10 (Channel.rtt_samples chan);
  (match Channel.srtt chan with
  | Some srtt -> check_int "srtt converged to the path RTT" (Time.us 50.) srtt
  | None -> Alcotest.fail "no srtt after samples");
  (* RTO decayed from the 20 ms initial value down to the floor: with zero
     variance, srtt + 4*rttvar sinks below rto_min *)
  check_int "rto pinned at the floor" (Time.us 200.) (Channel.rto chan);
  check_bool "rto adapted below the initial timeout" true
    (Channel.rto chan < Params.default.Params.retransmit_timeout)

let test_channel_rto_backoff_growth () =
  let params =
    { Params.default with retransmit_timeout = Time.ms 1.;
      rto_min = Time.us 500.; rto_max = Time.ms 8.; max_retries = 5 }
  in
  let sim = Sim.create () in
  let retx_at = ref [] in
  let chan =
    Channel.create sim ~self:0 ~peer:1 ~params
      ~transmit:(fun _ ~retransmission ->
        if retransmission then retx_at := Sim.now sim :: !retx_at)
      ~deliver:(fun _ -> ())
      ~send_ack:(fun ~cum_seq ~sacks:_ ~ce_echo:_ -> ignore cum_seq)
      ()
  in
  Process.spawn sim (fun () ->
      ignore
        (Channel.next_seq chan ~data_bytes:10 (Wire.Msg_ack { msg_id = 0 })));
  Sim.run sim;
  (* no ack ever arrives: resends at +1, +3, +7, +15, +23 ms (doubling
     gaps capped at rto_max), then the retry cap declares the peer dead *)
  check_bool "declared dead" true (Channel.is_dead chan);
  check_int "one resend per timeout" 5 (Channel.timeouts chan);
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b - a) :: gaps rest
    | _ -> []
  in
  Alcotest.(check (list int))
    "gaps double then cap"
    [ Time.ms 2.; Time.ms 4.; Time.ms 8.; Time.ms 8. ]
    (gaps (List.rev !retx_at));
  check_int "largest armed rto hit the cap" (Time.ms 8.)
    (Time.us (Stats.Summary.max (Channel.rto_stats chan)))

let test_channel_fast_retransmit_on_dup_acks () =
  let sim, chan, sent, _, _ = channel_rig () in
  Process.spawn sim (fun () ->
      for i = 0 to 3 do
        ignore
          (Channel.next_seq chan ~data_bytes:10 (Wire.Msg_ack { msg_id = i }))
      done;
      Channel.rx_ack chan 1;
      (* duplicate cumulative acks naming seq 1 as the hole *)
      Channel.rx_ack chan 1;
      Channel.rx_ack chan 1;
      check_int "below the threshold" 0 (Channel.fast_retransmits chan);
      Channel.rx_ack chan 1;
      check_int "third duplicate fires" 1 (Channel.fast_retransmits chan);
      (* more duplicates must not resend the same hole again *)
      Channel.rx_ack chan 1;
      Channel.rx_ack chan 1;
      Channel.rx_ack chan 1;
      check_int "once per hole" 1 (Channel.fast_retransmits chan);
      (* let the channel finish cleanly *)
      Channel.rx_ack chan 4);
  Sim.run sim;
  let hole_resends =
    List.filter (fun (p, retx) -> retx && p.Wire.chan_seq = Some 1) !sent
  in
  check_int "exactly the hole was resent" 1 (List.length hole_resends);
  check_bool "no timer expiry involved" true (Channel.timeouts chan = 0)

let test_channel_dead_releases_blocked_senders () =
  let params =
    { Params.default with tx_window = 2; retransmit_timeout = Time.ms 1.;
      rto_max = Time.ms 2.; max_retries = 2 }
  in
  let sim, chan, _, _, _ = channel_rig ~params () in
  let sent_ok = ref 0 and got_dead = ref 0 in
  for _ = 1 to 2 do
    Process.spawn sim (fun () ->
        try
          for i = 0 to 2 do
            ignore
              (Channel.next_seq chan ~data_bytes:10
                 (Wire.Msg_ack { msg_id = i }));
            incr sent_ok
          done
        with Channel.Dead peer ->
          check_int "exception names the peer" 1 peer;
          incr got_dead)
  done;
  (* Sim.run must terminate: both blocked senders are woken at teardown
     instead of waiting on the window forever. *)
  Sim.run sim;
  check_bool "declared dead" true (Channel.is_dead chan);
  check_int "window slots granted before death" 2 !sent_ok;
  check_int "both blocked senders released" 2 !got_dead;
  (* later sends fail immediately rather than blocking *)
  Process.spawn sim (fun () ->
      match Channel.next_seq chan ~data_bytes:1 (Wire.Msg_ack { msg_id = 9 })
      with
      | _ -> Alcotest.fail "send on a dead channel succeeded"
      | exception Channel.Dead _ -> incr got_dead);
  Sim.run sim;
  check_int "immediate error after death" 3 !got_dead

let test_channel_ooo_duplicate_counted () =
  let sim, chan, _, delivered, acks = channel_rig () in
  Process.spawn sim (fun () ->
      Channel.rx chan (mk_data 2);
      Channel.rx chan (mk_data 2);
      (* a duplicate of a packet still parked in the hold queue *)
      Channel.rx chan (mk_data 0);
      Channel.rx chan (mk_data 1));
  Sim.run sim;
  check_int "each delivered once" 3 (List.length !delivered);
  check_int "held duplicate counted" 1 (Channel.duplicates_dropped chan);
  (* the out-of-order arrival provoked an immediate ack naming the hole *)
  check_bool "hole announced" true (List.mem 0 !acks)

let test_channel_rto_resends_ascending () =
  (* Regression for the retransmit ordering contract: a timeout under
     go-back-N must resend the outstanding window oldest-first, so the
     receiver's cumulative sequence can advance on every arrival instead
     of parking everything in the hold queue. *)
  let params =
    { Params.default with retransmit_timeout = Time.ms 1.;
      rto_min = Time.us 500.; rto_max = Time.ms 2.; max_retries = 2 }
  in
  let sim, chan, sent, _, _ = channel_rig ~params () in
  Process.spawn sim (fun () ->
      for i = 0 to 3 do
        ignore
          (Channel.next_seq chan ~data_bytes:10 (Wire.Msg_ack { msg_id = i }))
      done);
  Sim.run sim;
  check_bool "declared dead after the retry cap" true (Channel.is_dead chan);
  let retx_seqs =
    List.rev !sent
    |> List.filter_map (fun (p, retx) -> if retx then p.Wire.chan_seq else None)
  in
  Alcotest.(check (list int))
    "each timeout resent the window in ascending order"
    [ 0; 1; 2; 3; 0; 1; 2; 3 ] retx_seqs

let test_channel_sack_rto_skips_held_segments () =
  (* SACK mode: the peer advertises [2, 4) as held, so the timeout resends
     only the holes 0 and 1 (ascending), credits the skipped segments to
     [retx_bytes_saved], and never re-sends a still-SACKed segment. *)
  let params =
    { Params.default with retx_scheme = `Sack;
      retransmit_timeout = Time.ms 1.; rto_min = Time.us 500.;
      rto_max = Time.ms 4.; max_retries = 4 }
  in
  let sim, chan, sent, _, _ = channel_rig ~params () in
  Process.spawn sim (fun () ->
      for i = 0 to 3 do
        ignore
          (Channel.next_seq chan ~data_bytes:10 (Wire.Msg_ack { msg_id = i }))
      done;
      Channel.rx_ack chan ~sacks:[ (2, 4) ] 0;
      check_int "both held segments marked" 2 (Channel.sacked_segments chan);
      (* one RTO fires at +1ms; the ack then retires everything *)
      Process.delay (Time.ms 1.5);
      Channel.rx_ack chan 4);
  Sim.run sim;
  check_bool "completed without teardown" true (not (Channel.is_dead chan));
  check_int "one timeout" 1 (Channel.timeouts chan);
  let retx_seqs =
    List.rev !sent
    |> List.filter_map (fun (p, retx) -> if retx then p.Wire.chan_seq else None)
  in
  Alcotest.(check (list int)) "only the holes, oldest first" [ 0; 1 ]
    retx_seqs;
  check_bool "skipped bytes credited" true (Channel.retx_bytes_saved chan > 0);
  check_bool "resent bytes billed" true (Channel.retx_bytes chan > 0)

let test_channel_receiver_echoes_ce () =
  (* The receiver notes a CE-marked arrival and raises the echo bit on the
     next ack it emits — and only that one (DCTCP needs the echo stream to
     mirror the mark stream, not to latch). *)
  let sim = Sim.create () in
  let echoes = ref [] in
  let chan =
    Channel.create sim ~self:0 ~peer:1 ~params:Params.default
      ~transmit:(fun _ ~retransmission:_ -> ())
      ~deliver:(fun _ -> ())
      ~send_ack:(fun ~cum_seq ~sacks:_ ~ce_echo ->
        echoes := (cum_seq, ce_echo) :: !echoes)
      ()
  in
  Process.spawn sim (fun () ->
      Channel.rx chan { (mk_data 0) with Wire.ce = true };
      Channel.rx chan (mk_data 1);
      (* ack_every = 2: the echo-carrying ack covers both *)
      Channel.rx chan (mk_data 2);
      Channel.rx chan (mk_data 3));
  Sim.run sim;
  check_int "one CE mark seen" 1 (Channel.ce_marks_rx chan);
  Alcotest.(check (list (pair int bool)))
    "echo raised once, then clear"
    [ (2, true); (4, false) ]
    (List.rev !echoes)

let test_channel_dctcp_alpha_and_window_cut () =
  let params = { Params.default with dctcp = true; tx_window = 8 } in
  let sim, chan, _, _, _ = channel_rig ~params () in
  let alpha_after_mark = ref 0. in
  Process.spawn sim (fun () ->
      for i = 0 to 3 do
        ignore
          (Channel.next_seq chan ~data_bytes:10 (Wire.Msg_ack { msg_id = i }))
      done;
      check_int "cwnd starts at the transmit window" 8 (Channel.cwnd chan);
      (* a marked window: alpha rises from 0, cwnd is cut *)
      Channel.rx_ack chan ~ce_echo:true 4;
      alpha_after_mark := Channel.dctcp_alpha chan;
      check_bool "alpha learned the mark" true (!alpha_after_mark > 0.);
      check_bool "window cut below tx_window" true (Channel.cwnd chan < 8);
      check_int "echo counted" 1 (Channel.ce_echoes chan);
      (* a clean window: alpha decays, additive increase resumes *)
      for i = 4 to 5 do
        ignore
          (Channel.next_seq chan ~data_bytes:10 (Wire.Msg_ack { msg_id = i }))
      done;
      Channel.rx_ack chan 6);
  Sim.run sim;
  check_bool "alpha decays on an unmarked window" true
    (Channel.dctcp_alpha chan < !alpha_after_mark)

(* ------------------------------------------------------------------ *)
(* CLIC end to end *)

let test_clic_roundtrip_message () =
  let c, na, nb = two_nodes () in
  let got = ref None in
  Node.spawn nb (fun () ->
      let msg = Api.recv nb.Node.clic ~port:5 in
      got := Some (msg.Clic_module.msg_src, msg.Clic_module.msg_bytes));
  Node.spawn na (fun () -> Api.send na.Node.clic ~dst:1 ~port:5 1234);
  Net.run c;
  Alcotest.(check (option (pair int int))) "message" (Some (0, 1234)) !got

let test_clic_multi_fragment_message () =
  let c, na, nb = two_nodes () in
  let got = ref 0 in
  Node.spawn nb (fun () ->
      let msg = Api.recv nb.Node.clic ~port:5 in
      got := msg.Clic_module.msg_bytes);
  Node.spawn na (fun () -> Api.send na.Node.clic ~dst:1 ~port:5 100_000);
  Net.run c;
  check_int "reassembled size" 100_000 !got;
  (* 100000 / (1500-12) = 68 packets *)
  check_bool "fragmented into packets" true
    (Clic_module.packets_sent (Api.kernel na.Node.clic) >= 68)

let test_clic_try_recv_nonblocking () =
  let c, na, nb = two_nodes () in
  let before = ref (Some 0) and after = ref None in
  Node.spawn nb (fun () ->
      before := Option.map (fun _ -> 1) (Api.try_recv nb.Node.clic ~port:5);
      Process.delay (Time.ms 1.);
      after :=
        Option.map
          (fun m -> m.Clic_module.msg_bytes)
          (Api.try_recv nb.Node.clic ~port:5));
  Node.spawn na (fun () -> Api.send na.Node.clic ~dst:1 ~port:5 64);
  Net.run c;
  Alcotest.(check (option int)) "nothing at t=0" None !before;
  Alcotest.(check (option int)) "message after delay" (Some 64) !after

let test_clic_ports_are_independent () =
  let c, na, nb = two_nodes () in
  let on_5 = ref 0 and on_6 = ref 0 in
  Node.spawn nb (fun () ->
      on_5 := (Api.recv nb.Node.clic ~port:5).Clic_module.msg_bytes);
  Node.spawn nb (fun () ->
      on_6 := (Api.recv nb.Node.clic ~port:6).Clic_module.msg_bytes);
  Node.spawn na (fun () ->
      Api.send na.Node.clic ~dst:1 ~port:6 600;
      Api.send na.Node.clic ~dst:1 ~port:5 500);
  Net.run c;
  check_int "port 5" 500 !on_5;
  check_int "port 6" 600 !on_6

let test_clic_sync_send_waits_for_delivery () =
  let c, na, nb = two_nodes () in
  let sender_done_at = ref 0 and receiver_got_at = ref 0 in
  Node.spawn nb (fun () ->
      ignore (Api.recv nb.Node.clic ~port:5);
      receiver_got_at := Sim.now c.Net.sim);
  Node.spawn na (fun () ->
      Api.send_sync na.Node.clic ~dst:1 ~port:5 10_000;
      sender_done_at := Sim.now c.Net.sim);
  Net.run c;
  check_bool "receiver got it" true (!receiver_got_at > 0);
  check_bool "confirmation after delivery" true
    (!sender_done_at > !receiver_got_at)

let test_clic_async_send_returns_early () =
  let c, na, nb = two_nodes () in
  let sender_done_at = ref 0 and receiver_got_at = ref 0 in
  Node.spawn nb (fun () ->
      ignore (Api.recv nb.Node.clic ~port:5);
      receiver_got_at := Sim.now c.Net.sim);
  Node.spawn na (fun () ->
      Api.send na.Node.clic ~dst:1 ~port:5 100_000;
      sender_done_at := Sim.now c.Net.sim);
  Net.run c;
  check_bool "async send returns before delivery" true
    (!sender_done_at < !receiver_got_at)

let test_clic_remote_write () =
  let c, na, nb = two_nodes () in
  let notified = ref None in
  Api.register_region nb.Node.clic ~region:3 (fun ~bytes ~src ->
      notified := Some (src, bytes));
  Node.spawn na (fun () ->
      Api.remote_write na.Node.clic ~dst:1 ~region:3 50_000);
  Net.run c;
  Alcotest.(check (option (pair int int))) "notified" (Some (0, 50_000))
    !notified;
  check_int "bytes landed" 50_000 (Api.region_bytes nb.Node.clic ~region:3)

let test_clic_local_message () =
  let c, na, _ = two_nodes () in
  let got = ref 0 in
  Node.spawn na (fun () ->
      Api.send na.Node.clic ~dst:0 ~port:5 777;
      got := (Api.recv na.Node.clic ~port:5).Clic_module.msg_bytes);
  Net.run c;
  check_int "same-node delivery" 777 !got;
  check_int "local counter" 1
    (Clic_module.local_messages (Api.kernel na.Node.clic));
  (* local messages must not touch the NIC *)
  check_int "no wire packets" 0 (Hw.Nic.tx_packets (List.hd na.Node.nics))

let test_clic_broadcast () =
  let n = 4 in
  let c = Net.create ~n () in
  let got = Array.make n 0 in
  for i = 1 to n - 1 do
    let node = Net.node c i in
    Node.spawn node (fun () ->
        got.(i) <- (Api.recv node.Node.clic ~port:9).Clic_module.msg_bytes)
  done;
  Node.spawn (Net.node c 0) (fun () ->
      Api.broadcast (Net.node c 0).Node.clic ~port:9 2000);
  Net.run c;
  Alcotest.(check (array int)) "all peers" [| 0; 2000; 2000; 2000 |] got

let test_clic_reliability_under_loss () =
  let fault () = Hw.Fault.drop ~rng:(Rng.create ~seed:11) ~prob:0.03 in
  let c, na, nb = two_nodes ~config:(config_with ~fault ()) () in
  let sizes = [ 5_000; 40_000; 120_000 ] in
  let got = ref [] in
  Node.spawn nb (fun () ->
      List.iter
        (fun _ ->
          let m = Api.recv nb.Node.clic ~port:5 in
          got := m.Clic_module.msg_bytes :: !got)
        sizes);
  Node.spawn na (fun () ->
      List.iter (fun s -> Api.send na.Node.clic ~dst:1 ~port:5 s) sizes);
  Net.run c;
  Alcotest.(check (list int)) "in-order exactly-once delivery" sizes
    (List.rev !got);
  check_bool "loss actually recovered" true
    (Clic_module.retransmissions (Api.kernel na.Node.clic) > 0)

(* Deterministic loss on every link: each of the four link directions
   (both uplinks, both downlinks) gets its own [drop_nth] instance, so
   both data frames and the acknowledgements coming back are hit.  The
   period is 5 on 4 links: were it 4, the per-link phases could cover
   every residue and kill each retransmit-ack cycle at the tail of the
   stream — with one spare residue at least every 5th cycle completes. *)
let test_clic_drop_nth_data_and_ack_paths () =
  let fault () = Hw.Fault.drop_nth ~every:5 in
  let c, na, nb = two_nodes ~config:(config_with ~fault ()) () in
  let sizes = List.init 12 (fun i -> 2_000 + (i * 1_000)) in
  let got = ref [] in
  Node.spawn nb (fun () ->
      List.iter
        (fun _ ->
          let m = Api.recv nb.Node.clic ~port:7 in
          got := m.Clic_module.msg_bytes :: !got)
        sizes);
  Node.spawn na (fun () ->
      List.iter (fun s -> Api.send na.Node.clic ~dst:1 ~port:7 s) sizes);
  Net.run c;
  Alcotest.(check (list int)) "in-order exactly-once delivery" sizes
    (List.rev !got);
  let ka = Api.kernel na.Node.clic in
  check_bool "losses recovered" true (Clic_module.retransmissions ka > 0);
  (* ~90 data packets at 20% frame loss: go-back-N resends a window per
     loss event at worst, but recovery must stay far from pathological *)
  check_bool "retransmissions bounded" true
    (Clic_module.retransmissions ka < 600);
  check_bool "recovery used the adaptive machinery" true
    (Clic_module.timeouts ka + Clic_module.fast_retransmits ka > 0)

let test_clic_staging_when_ring_full () =
  (* A tiny transmit ring with a large window forces the "data cannot be
     sent now" path: CLIC stages into system memory and returns. *)
  let clic = { Params.default with tx_window = 128 } in
  let c = Net.create ~config:(config_with ~clic ()) ~n:2 () in
  let na = Net.node c 0 and nb = Net.node c 1 in
  (* shrink the ring below the burst size by replacing the NIC? simpler:
     burst enough packets to outrun a 64-slot ring *)
  let got = ref 0 in
  Node.spawn nb (fun () ->
      for _ = 1 to 120 do
        ignore (Api.recv nb.Node.clic ~port:5)
      done;
      got := 120);
  Node.spawn na (fun () ->
      for _ = 1 to 120 do
        Api.send na.Node.clic ~dst:1 ~port:5 1400
      done);
  Net.run c;
  check_int "all delivered" 120 !got;
  check_bool "some packets were staged" true
    (Clic_module.packets_staged (Api.kernel na.Node.clic) > 0)

let test_clic_channel_bonding_two_nics () =
  (* Bonding pays off when each NIC has its own I/O bus; on the default
     shared 33 MHz PCI the bus itself caps the pair (see integration). *)
  let dual base = { base with Node.pci_per_nic = true } in
  let c1 = Net.create ~config:(config_with ~mtu:9000 ()) ~n:2 () in
  let c2 =
    Net.create ~config:(dual (config_with ~mtu:9000 ~nics:2 ())) ~n:2 ()
  in
  let bw cluster =
    let pair = Measure.clic_pair cluster ~a:0 ~b:1 () in
    (Measure.stream cluster pair ~a:0 ~b:1 ~size:8988 ~messages:200)
      .Measure.st_bandwidth_mbps
  in
  let single = bw c1 and bonded = bw c2 in
  check_bool "bonding improves bandwidth" true (bonded > single *. 1.3)

let test_clic_nic_fragmentation_mode () =
  let clic = { Params.default with use_nic_fragmentation = true } in
  let config =
    { (config_with ~clic ()) with nic_fragmentation = true }
  in
  let c, na, nb = two_nodes ~config () in
  let got = ref 0 in
  Node.spawn nb (fun () ->
      got := (Api.recv nb.Node.clic ~port:5).Clic_module.msg_bytes);
  Node.spawn na (fun () -> Api.send na.Node.clic ~dst:1 ~port:5 100_000);
  Net.run c;
  check_int "delivered through super-packets" 100_000 !got;
  (* 100000 / (32768-12) -> 4 CLIC packets instead of 68 *)
  check_bool "far fewer host packets" true
    (Clic_module.packets_sent (Api.kernel na.Node.clic) < 10)

let test_clic_queued_messages_drain_in_order () =
  let c, na, nb = two_nodes () in
  let got = ref [] in
  Node.spawn na (fun () ->
      List.iter
        (fun n -> Api.send na.Node.clic ~dst:1 ~port:5 n)
        [ 100; 200; 300 ]);
  Node.spawn nb (fun () ->
      (* let all three queue up before any receive *)
      Process.delay (Time.ms 2.);
      for _ = 1 to 3 do
        got := (Api.recv nb.Node.clic ~port:5).Clic_module.msg_bytes :: !got
      done);
  Net.run c;
  Alcotest.(check (list int)) "queued order" [ 100; 200; 300 ]
    (List.rev !got)

let test_clic_remote_write_unregistered_region () =
  let c, na, nb = two_nodes () in
  Node.spawn na (fun () ->
      Api.remote_write na.Node.clic ~dst:1 ~region:99 5000);
  Net.run c;
  (* data for an unknown region is dropped harmlessly *)
  check_int "nothing recorded" 0 (Api.region_bytes nb.Node.clic ~region:99)

let test_clic_multi_fragment_broadcast () =
  let n = 3 in
  let c = Net.create ~n () in
  let got = Array.make n 0 in
  for i = 1 to n - 1 do
    let node = Net.node c i in
    Node.spawn node (fun () ->
        got.(i) <- (Api.recv node.Node.clic ~port:9).Clic_module.msg_bytes)
  done;
  Node.spawn (Net.node c 0) (fun () ->
      (* 10 KB broadcast = 7 fragments flooded by the switch *)
      Api.broadcast (Net.node c 0).Node.clic ~port:9 10_000);
  Net.run c;
  Alcotest.(check (array int)) "reassembled everywhere" [| 0; 10_000; 10_000 |]
    got

let test_clic_local_sync_send () =
  let c, na, _ = two_nodes () in
  let done_ = ref false in
  Node.spawn na (fun () ->
      Api.send_sync na.Node.clic ~dst:0 ~port:5 500;
      ignore (Api.recv na.Node.clic ~port:5);
      done_ := true);
  Net.run c;
  check_bool "local confirmed send completes" true !done_

let test_clic_two_processes_same_node () =
  (* The module is re-entrant: two processes on one node talk to two
     peers concurrently (the multiprogramming claim of Section 5). *)
  let c = Net.create ~n:3 () in
  let n0 = Net.node c 0 in
  let done1 = ref false and done2 = ref false in
  Node.spawn (Net.node c 1) (fun () ->
      ignore (Api.recv (Net.node c 1).Node.clic ~port:5);
      Api.send (Net.node c 1).Node.clic ~dst:0 ~port:11 1);
  Node.spawn (Net.node c 2) (fun () ->
      ignore (Api.recv (Net.node c 2).Node.clic ~port:5);
      Api.send (Net.node c 2).Node.clic ~dst:0 ~port:12 1);
  Node.spawn n0 (fun () ->
      Api.send n0.Node.clic ~dst:1 ~port:5 50_000;
      ignore (Api.recv n0.Node.clic ~port:11);
      done1 := true);
  Node.spawn n0 (fun () ->
      Api.send n0.Node.clic ~dst:2 ~port:5 50_000;
      ignore (Api.recv n0.Node.clic ~port:12);
      done2 := true);
  Net.run c;
  check_bool "process 1" true !done1;
  check_bool "process 2" true !done2

let test_clic_second_waiter_rejected () =
  let c, _, nb = two_nodes () in
  let raised = ref false in
  Node.spawn nb (fun () -> ignore (Api.recv nb.Node.clic ~port:5));
  Node.spawn nb (fun () ->
      Process.delay 10;
      match Api.recv nb.Node.clic ~port:5 with
      | _ -> ()
      | exception Invalid_argument _ -> raised := true);
  Net.run c;
  check_bool "double-waiter detected" true !raised

(* ------------------------------------------------------------------ *)
(* Parameter validation (construction-time rejection) *)

let test_params_validate_rejections () =
  let p = Params.default in
  check_bool "default set is valid and returned unchanged" true
    (Params.validate p == p);
  let rejected what bad =
    match Params.validate bad with
    | _ -> Alcotest.failf "%s: accepted" what
    | exception Invalid_argument _ -> ()
  in
  rejected "rto_min > rto_max"
    { p with rto_min = Time.ms 10.; rto_max = Time.ms 1. };
  rejected "dup_ack_threshold = 0" { p with dup_ack_threshold = 0 };
  rejected "max_retries = 0" { p with max_retries = 0 };
  rejected "tx_window = 0" { p with tx_window = 0 };
  rejected "negative tx_window" { p with tx_window = -4 };
  rejected "ack_every = 0" { p with ack_every = 0 };
  rejected "soft watermark above hard"
    { p with kmem_soft_frac = 0.9; kmem_hard_frac = 0.6 };
  rejected "soft watermark non-positive" { p with kmem_soft_frac = 0. };
  rejected "hard watermark above 1" { p with kmem_hard_frac = 1.5 };
  rejected "soft_window_frac = 0" { p with soft_window_frac = 0. };
  rejected "soft_window_frac > 1" { p with soft_window_frac = 1.01 };
  rejected "ecn_threshold = 0" { p with ecn_threshold = 0 };
  rejected "negative ecn_threshold" { p with ecn_threshold = -4096 };
  rejected "dctcp_g = 0" { p with dctcp_g = 0. };
  rejected "dctcp_g > 1" { p with dctcp_g = 1.5 };
  rejected "sack_blocks = 0" { p with sack_blocks = 0 };
  rejected "sack_blocks beyond the wire limit"
    { p with sack_blocks = Wire.max_sack_blocks + 1 };
  (* the exact complaint names the field and both values *)
  Alcotest.check_raises "watermark message"
    (Invalid_argument
       "Clic.Params: kmem watermarks out of order (want 0 < soft 0.9 <= \
        hard 0.6 <= 1)") (fun () ->
      ignore
        (Params.validate { p with kmem_soft_frac = 0.9; kmem_hard_frac = 0.6 }))

let test_params_rejected_at_module_creation () =
  (* Clic_module.create runs the validation: a cluster with a broken
     parameter set must fail to construct, not misbehave later. *)
  let clic = { Params.default with max_retries = 0 } in
  match Net.create ~config:(config_with ~clic ()) ~n:2 () with
  | _ -> Alcotest.fail "invalid params accepted by Clic_module.create"
  | exception Invalid_argument msg ->
      check_bool "names the parameter" true
        (String.length msg >= 11 && String.sub msg 0 11 = "Clic.Params")

(* ------------------------------------------------------------------ *)
(* Kernel-pool backpressure *)

let kmem_of node =
  (Clic_module.env_of (Api.kernel node.Node.clic)).Proto.Hostenv.kmem

let test_clic_advertised_window_tracks_pool_level () =
  let _, na, _ = two_nodes () in
  let k = Api.kernel na.Node.clic in
  let pool = kmem_of na in
  let full = (Clic_module.params k).Params.tx_window in
  check_int "normal: full window" full (Clic_module.advertised_window k);
  (* push the pool to its soft mark *)
  check_bool "grab to soft" true (Os_model.Kmem.try_alloc pool (Os_model.Kmem.soft_mark pool));
  check_int "soft: half window"
    (max 1 (int_of_float (Params.default.Params.soft_window_frac *. float_of_int full)))
    (Clic_module.advertised_window k);
  (* and on to the hard mark *)
  check_bool "grab to hard" true
    (Os_model.Kmem.try_alloc pool
       (Os_model.Kmem.hard_mark pool - Os_model.Kmem.in_use pool));
  check_int "hard: single packet" 1 (Clic_module.advertised_window k);
  Os_model.Kmem.free pool (Os_model.Kmem.in_use pool);
  check_int "recovered: full window" full (Clic_module.advertised_window k)

let test_clic_hard_watermark_sheds_and_recovers () =
  (* With the receiver's pool pinned at its hard mark, its NIC refuses
     ingress (counted separately from ring overflow); when the pressure
     lifts, retransmission delivers everything exactly once. *)
  let c, na, nb = two_nodes () in
  let pool = kmem_of nb in
  let grab = Os_model.Kmem.hard_mark pool in
  check_bool "pin pool at hard mark" true (Os_model.Kmem.try_alloc pool grab);
  let got = ref 0 in
  Node.spawn nb (fun () ->
      got := (Api.recv nb.Node.clic ~port:5).Clic_module.msg_bytes);
  Node.spawn na (fun () -> Api.send na.Node.clic ~dst:1 ~port:5 5_000);
  Node.spawn nb (fun () ->
      Process.delay (Time.ms 2.);
      Os_model.Kmem.free pool grab);
  Net.run c;
  check_int "delivered once the pressure lifted" 5_000 !got;
  check_bool "nic shed ingress at the hard watermark" true
    (Hw.Nic.rx_dropped_mem (List.hd nb.Node.nics) > 0);
  check_int "distinct from ring overflow" 0
    (Hw.Nic.rx_dropped (List.hd nb.Node.nics));
  check_bool "recovery went through retransmission" true
    (Clic_module.retransmissions (Api.kernel na.Node.clic) > 0)

(* ------------------------------------------------------------------ *)
(* Frame corruption (bad FCS) against the reliability layer *)

let test_clic_recovers_from_corruption () =
  let fault () = Hw.Fault.corrupt ~rng:(Rng.create ~seed:23) ~prob:0.05 in
  let c, na, nb = two_nodes ~config:(config_with ~fault ()) () in
  let sizes = [ 8_000; 60_000; 120_000 ] in
  let got = ref [] in
  Node.spawn nb (fun () ->
      List.iter
        (fun _ ->
          got := (Api.recv nb.Node.clic ~port:5).Clic_module.msg_bytes :: !got)
        sizes);
  Node.spawn na (fun () ->
      List.iter (fun s -> Api.send na.Node.clic ~dst:1 ~port:5 s) sizes);
  Net.run c;
  Alcotest.(check (list int)) "exactly-once despite bit flips" sizes
    (List.rev !got);
  check_bool "MAC dropped corrupted frames" true
    (Hw.Nic.bad_fcs (List.hd nb.Node.nics) > 0);
  check_bool "losses recovered by retransmission" true
    (Clic_module.retransmissions (Api.kernel na.Node.clic) > 0)

(* ------------------------------------------------------------------ *)
(* Boot epochs on the wire *)

let inject nb pkt =
  (* hand-deliver a forged CLIC frame to the node's NIC, as if from the
     wire *)
  Hw.Nic.rx_from_wire (List.hd nb.Node.nics)
    (Hw.Eth_frame.make ~src:(Hw.Mac.of_node 0) ~dst:(Hw.Mac.of_node 1)
       ~ethertype:Wire.ethertype
       ~payload_bytes:
         (Wire.wire_bytes ~header_bytes:Params.default.Params.header_bytes pkt)
       (Wire.Clic pkt))

let forged_data ~epoch ~seq ~msg_id =
  { Wire.src = 0; epoch; chan_seq = Some seq; data_bytes = 64; ce = false;
    kind =
      Wire.Data
        { port = 5; sync = false;
          frag = { Wire.msg_id; frag_index = 0; frag_count = 1;
                   msg_bytes = 64 } } }

let test_clic_stale_epoch_rejected () =
  let c, _, nb = two_nodes () in
  let kb = Api.kernel nb.Node.clic in
  let epochs = ref [] in
  Node.spawn nb (fun () ->
      for _ = 1 to 2 do
        let m = Api.recv nb.Node.clic ~port:5 in
        epochs := (m.Clic_module.msg_epoch, m.Clic_module.msg_bytes) :: !epochs
      done);
  Node.spawn nb (fun () ->
      (* the peer's first frame pins its epoch at 1 *)
      inject nb (forged_data ~epoch:1 ~seq:0 ~msg_id:0);
      Process.delay (Time.us 100.);
      (* a pre-crash straggler from epoch 0: must be dropped, counted *)
      inject nb (forged_data ~epoch:0 ~seq:1 ~msg_id:7);
      Process.delay (Time.us 100.);
      (* the peer rebooted into epoch 2: old channel state discarded, a
         fresh channel starts over at seq 0 *)
      inject nb (forged_data ~epoch:2 ~seq:0 ~msg_id:1));
  Net.run c;
  Alcotest.(check (list (pair int int)))
    "delivered both live epochs, in order"
    [ (1, 64); (2, 64) ]
    (List.rev !epochs);
  check_int "stale frame counted" 1 (Clic_module.stale_epoch_drops kb);
  check_int "reboot noticed" 1 (Clic_module.peer_reboots kb);
  check_int "channel re-established" 1 (Clic_module.reestablishments kb)

let prop_channel_model_in_order =
  (* Feed the receive side an arbitrary interleaving of sequence numbers
     (duplicates, reordering, gaps later filled): deliveries must be the
     contiguous prefix 0..k-1 exactly once, in order. *)
  QCheck.Test.make ~count:150 ~name:"channel delivers contiguous prefix"
    QCheck.(list (int_range 0 15))
    (fun seqs ->
      let sim = Sim.create () in
      let delivered = ref [] in
      let chan =
        Channel.create sim ~self:0 ~peer:1 ~params:Params.default
          ~transmit:(fun _ ~retransmission:_ -> ())
          ~deliver:(fun pkt ->
            delivered := Option.get pkt.Wire.chan_seq :: !delivered)
          ~send_ack:(fun ~cum_seq:_ ~sacks:_ ~ce_echo:_ -> ())
          ()
      in
      Process.spawn sim (fun () ->
          List.iter (fun s -> Channel.rx chan (mk_data s)) seqs);
      Sim.run sim;
      let got = List.rev !delivered in
      (* expected: longest contiguous prefix 0..k-1 of the seen set *)
      let seen = List.sort_uniq compare seqs in
      let rec prefix k = if List.mem k seen then prefix (k + 1) else k in
      let k = prefix 0 in
      got = List.init k (fun i -> i))

let prop_clic_exactly_once_under_loss =
  QCheck.Test.make ~count:8 ~name:"clic exactly-once under random loss"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let fault () = Hw.Fault.drop ~rng:(Rng.create ~seed) ~prob:0.05 in
      let c, na, nb = two_nodes ~config:(config_with ~fault ()) () in
      let count = ref 0 and bytes = ref 0 in
      Node.spawn nb (fun () ->
          for _ = 1 to 5 do
            let m = Api.recv nb.Node.clic ~port:5 in
            incr count;
            bytes := !bytes + m.Clic_module.msg_bytes
          done);
      Node.spawn na (fun () ->
          for _ = 1 to 5 do
            Api.send na.Node.clic ~dst:1 ~port:5 10_000
          done);
      Net.run c;
      !count = 5 && !bytes = 50_000)

let prop_clic_sack_exactly_once_under_bursty_loss =
  (* SACK mode under composed Gilbert–Elliott burst loss and reordering
     jitter: the distinct, increasing sizes prove delivery stayed in-order
     exactly-once even though the holes were filled selectively. *)
  QCheck.Test.make ~count:8
    ~name:"sack mode exactly-once under bursty loss + reordering"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let fault () =
        let rng = Rng.create ~seed in
        Hw.Fault.compose
          [
            Hw.Fault.gilbert_elliott ~rng:(Rng.split rng)
              ~p_good_to_bad:0.01 ~p_bad_to_good:0.05 ~loss_bad:0.5 ();
            Hw.Fault.jitter ~rng:(Rng.split rng) ~max_delay:(Time.us 30.);
          ]
      in
      let clic = { Params.default with retx_scheme = `Sack } in
      let c, na, nb = two_nodes ~config:(config_with ~clic ~fault ()) () in
      let sizes = ref [] in
      Node.spawn nb (fun () ->
          for _ = 1 to 5 do
            sizes :=
              (Api.recv nb.Node.clic ~port:5).Clic_module.msg_bytes :: !sizes
          done);
      Node.spawn na (fun () ->
          for i = 1 to 5 do
            Api.send na.Node.clic ~dst:1 ~port:5 (i * 4_000)
          done);
      Net.run c;
      List.rev !sizes = [ 4_000; 8_000; 12_000; 16_000; 20_000 ])

let prop_clic_any_size_roundtrips =
  QCheck.Test.make ~count:12 ~name:"clic delivers any message size"
    QCheck.(int_range 0 300_000)
    (fun n ->
      let c, na, nb = two_nodes () in
      let got = ref (-1) in
      Node.spawn nb (fun () ->
          got := (Api.recv nb.Node.clic ~port:5).Clic_module.msg_bytes);
      Node.spawn na (fun () -> Api.send na.Node.clic ~dst:1 ~port:5 n);
      Net.run c;
      !got = n)

let qprops =
  List.map QCheck_alcotest.to_alcotest
    [ prop_clic_any_size_roundtrips; prop_clic_exactly_once_under_loss;
      prop_channel_model_in_order;
      prop_clic_sack_exactly_once_under_bursty_loss ]

let suite =
  [
    ("channel in-order", `Quick, test_channel_in_order_delivery);
    ("channel reorders", `Quick, test_channel_reorders_ooo);
    ("channel duplicates", `Quick, test_channel_drops_duplicates);
    ("channel retransmit", `Quick, test_channel_retransmits_on_timeout);
    ("channel window", `Quick, test_channel_ack_frees_window);
    ("channel kind check", `Quick, test_channel_rejects_unreliable_kind);
    ("channel rtt adaptation", `Quick, test_channel_rtt_adaptation);
    ("channel rto backoff", `Quick, test_channel_rto_backoff_growth);
    ("channel fast retransmit", `Quick, test_channel_fast_retransmit_on_dup_acks);
    ("channel dead teardown", `Quick, test_channel_dead_releases_blocked_senders);
    ("channel held duplicate", `Quick, test_channel_ooo_duplicate_counted);
    ("channel rto ascending order", `Quick, test_channel_rto_resends_ascending);
    ("channel sack skips held", `Quick, test_channel_sack_rto_skips_held_segments);
    ("channel ce echo", `Quick, test_channel_receiver_echoes_ce);
    ("channel dctcp window", `Quick, test_channel_dctcp_alpha_and_window_cut);
    ("clic roundtrip", `Quick, test_clic_roundtrip_message);
    ("clic multi-fragment", `Quick, test_clic_multi_fragment_message);
    ("clic try_recv", `Quick, test_clic_try_recv_nonblocking);
    ("clic ports", `Quick, test_clic_ports_are_independent);
    ("clic sync send", `Quick, test_clic_sync_send_waits_for_delivery);
    ("clic async send", `Quick, test_clic_async_send_returns_early);
    ("clic remote write", `Quick, test_clic_remote_write);
    ("clic local message", `Quick, test_clic_local_message);
    ("clic broadcast", `Quick, test_clic_broadcast);
    ("clic loss recovery", `Quick, test_clic_reliability_under_loss);
    ("clic drop-nth both paths", `Quick, test_clic_drop_nth_data_and_ack_paths);
    ("clic staging", `Quick, test_clic_staging_when_ring_full);
    ("clic channel bonding", `Quick, test_clic_channel_bonding_two_nics);
    ("clic nic fragmentation", `Quick, test_clic_nic_fragmentation_mode);
    ("clic queued order", `Quick, test_clic_queued_messages_drain_in_order);
    ("clic unregistered region", `Quick, test_clic_remote_write_unregistered_region);
    ("clic fragmented broadcast", `Quick, test_clic_multi_fragment_broadcast);
    ("clic local sync", `Quick, test_clic_local_sync_send);
    ("clic re-entrant node", `Quick, test_clic_two_processes_same_node);
    ("clic double waiter", `Quick, test_clic_second_waiter_rejected);
    ("params validation", `Quick, test_params_validate_rejections);
    ("params gate module creation", `Quick, test_params_rejected_at_module_creation);
    ("advertised window backpressure", `Quick, test_clic_advertised_window_tracks_pool_level);
    ("hard watermark shedding", `Quick, test_clic_hard_watermark_sheds_and_recovers);
    ("corruption recovery", `Quick, test_clic_recovers_from_corruption);
    ("stale epoch rejection", `Quick, test_clic_stale_epoch_rejected);
  ]
  @ qprops
