let () =
  Alcotest.run "clic-repro"
    [
      ("engine", Test_engine.suite);
      ("hw", Test_hw.suite);
      ("os", Test_os.suite);
      ("proto", Test_proto.suite);
      ("clic", Test_clic.suite);
      ("mpi", Test_mpi.suite);
      ("cluster", Test_cluster.suite);
      ("rivals", Test_rivals.suite);
      ("report", Test_report.suite);
      ("check", Test_check.suite);
      ("obs", Test_obs.suite);
      ("integration", Test_integration.suite);
    ]
