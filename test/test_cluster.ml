(* Tests for cluster assembly and the measurement harnesses: construction,
   determinism, conservation, and multi-node traffic. *)

open Engine
open Cluster

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_cluster_shape () =
  let c = Net.create ~n:4 () in
  check_int "size" 4 (Net.size c);
  check_int "one switch per NIC rank" 1 (List.length c.Net.switches);
  for i = 0 to 3 do
    check_int "node id" i (Net.node c i).Node.id
  done;
  Alcotest.check_raises "n<=0" (Invalid_argument "Cluster.create: n <= 0")
    (fun () -> ignore (Net.create ~n:0 ()))

let test_bonded_cluster_has_parallel_switches () =
  let config = { Node.default_config with nics = 2 } in
  let c = Net.create ~config ~n:2 () in
  check_int "two switches" 2 (List.length c.Net.switches);
  check_int "two NICs per node" 2 (List.length (Net.node c 0).Node.nics)

let test_determinism_same_run_same_numbers () =
  let measure () =
    let c = Net.create ~n:2 () in
    let pair = Measure.clic_pair c ~a:0 ~b:1 () in
    let r = Measure.pingpong c pair ~size:4096 ~reps:5 ~warmup:1 () in
    r.Measure.one_way
  in
  let a = measure () and b = measure () in
  check_int "bit-identical repeat" a b

let test_stream_conserves_messages () =
  let c = Net.create ~n:2 () in
  let pair = Measure.clic_pair c ~a:0 ~b:1 () in
  let r = Measure.stream c pair ~a:0 ~b:1 ~size:2000 ~messages:50 in
  check_bool "positive bandwidth" true (r.Measure.st_bandwidth_mbps > 0.);
  let kb = Clic.Api.kernel (Net.node c 1).Node.clic in
  check_int "every message delivered" 50
    (Clic.Clic_module.messages_delivered kb)

let test_pingpong_latency_increases_with_size () =
  let lat size =
    let c = Net.create ~n:2 () in
    let pair = Measure.clic_pair c ~a:0 ~b:1 () in
    (Measure.pingpong c pair ~size ~reps:3 ~warmup:1 ()).Measure.one_way
  in
  let l0 = lat 0 and l64k = lat 65536 in
  check_bool "64KB slower than 0B" true (l64k > l0);
  check_bool "0B latency sane (10..100us)" true
    (l0 > Time.us 10. && l0 < Time.us 100.)

let test_all_to_all_traffic () =
  let n = 4 in
  let c = Net.create ~n () in
  let expected = n * (n - 1) in
  let delivered = ref 0 in
  for me = 0 to n - 1 do
    let node = Net.node c me in
    Node.spawn node (fun () ->
        for peer = 0 to n - 1 do
          if peer <> me then
            Clic.Api.send node.Node.clic ~dst:peer ~port:1 1000
        done);
    Node.spawn node (fun () ->
        for _ = 1 to n - 1 do
          ignore (Clic.Api.recv node.Node.clic ~port:1);
          incr delivered
        done)
  done;
  Net.run c;
  check_int "n*(n-1) messages" expected !delivered

let test_both_stacks_share_one_node () =
  (* CLIC and TCP traffic on the same nodes, simultaneously. *)
  let c = Net.create ~n:2 () in
  let na = Net.node c 0 and nb = Net.node c 1 in
  Proto.Tcp.listen nb.Node.tcp ~port:80;
  let tcp_done = ref false and clic_done = ref false in
  Node.spawn nb (fun () ->
      let conn = Proto.Tcp.accept nb.Node.tcp ~port:80 in
      Proto.Tcp.recv conn 50_000;
      tcp_done := true);
  Node.spawn nb (fun () ->
      ignore (Clic.Api.recv nb.Node.clic ~port:5);
      clic_done := true);
  Node.spawn na (fun () ->
      let conn = Proto.Tcp.connect na.Node.tcp ~dst:1 ~port:80 in
      Proto.Tcp.send conn 50_000);
  Node.spawn na (fun () -> Clic.Api.send na.Node.clic ~dst:1 ~port:5 50_000);
  Net.run c;
  check_bool "tcp completed" true !tcp_done;
  check_bool "clic completed" true !clic_done

let test_run_for_bounds_time () =
  let c = Net.create ~n:2 () in
  let na = Net.node c 0 in
  Node.spawn na (fun () ->
      let rec forever () =
        Process.delay (Time.ms 1.);
        forever ()
      in
      forever ());
  Net.run_for c (Time.ms 10.);
  check_int "clock advanced exactly" (Time.ms 10.) (Sim.now c.Net.sim)

let test_workload_uniform_random_conserves () =
  let c = Net.create ~n:4 () in
  let s = Workload.uniform_random c ~seed:3 ~messages_per_node:20 () in
  check_int "sent" 80 s.Workload.sent;
  check_int "all delivered" 80 s.Workload.delivered;
  check_bool "bytes moved" true (s.Workload.bytes > 0)

let test_workload_uniform_random_under_loss () =
  let config =
    { Node.default_config with
      link_fault =
        Some (fun () -> Hw.Fault.drop ~rng:(Rng.create ~seed:17) ~prob:0.02)
    }
  in
  let c = Net.create ~config ~n:4 () in
  let s = Workload.uniform_random c ~seed:5 ~messages_per_node:15 () in
  check_int "exactly-once despite drops" s.Workload.sent s.Workload.delivered

let test_workload_hotspot_incast () =
  let c = Net.create ~n:5 () in
  let s = Workload.hotspot c ~seed:9 ~target:0 ~messages_per_node:30 () in
  check_int "sent" 120 s.Workload.sent;
  check_int "target absorbed everything" 120 s.Workload.delivered

let test_workload_ring_rounds () =
  let c = Net.create ~n:4 () in
  let s = Workload.ring c ~rounds:10 () in
  check_int "sent" 40 s.Workload.sent;
  check_int "delivered" 40 s.Workload.delivered

let test_workload_determinism () =
  let run () =
    let c = Net.create ~n:3 () in
    (Workload.uniform_random c ~seed:42 ~messages_per_node:10 ()).Workload.elapsed
  in
  check_int "same seed, same elapsed" (run ()) (run ())

let test_incast_with_finite_switch_buffers () =
  (* Five senders converge on one port whose egress buffer holds only a
     few frames: the switch tail-drops, and CLIC must recover every
     message anyway. *)
  let config = { Node.default_config with switch_egress_frames = Some 8 } in
  let c = Net.create ~config ~n:6 () in
  let s = Workload.hotspot c ~seed:4 ~target:0 ~messages_per_node:40 () in
  check_int "exactly once despite congestion drops" s.Workload.sent
    s.Workload.delivered;
  let drops = Hw.Switch.egress_drops (List.hd c.Net.switches) in
  check_bool
    (Printf.sprintf "switch actually dropped (%d)" drops)
    true (drops > 0)

(* ------------------------------------------------------------------ *)
(* Node crash and recovery *)

let snappy =
  (* fast failure detection so the test stays small: the peer is declared
     dead after ~2.5ms of silence instead of the default tens of ms *)
  { Clic.Params.default with
    retransmit_timeout = Time.us 500.; rto_min = Time.us 100.;
    rto_max = Time.ms 1.; max_retries = 3 }

let test_node_crash_recovery_reestablishes () =
  let config = { Node.default_config with clic_params = snappy } in
  let c = Net.create ~config ~n:2 () in
  let na = Net.node c 0 and nb = Net.node c 1 in
  let first = ref 0 and second = ref 0 and dead_seen = ref 0 in
  let pool_after_crash = ref (-1) in
  Node.spawn nb (fun () ->
      first := (Clic.Api.recv nb.Node.clic ~port:5).Clic.Clic_module.msg_bytes);
  Node.spawn na (fun () ->
      (* phase 1: normal delivery *)
      Clic.Api.send na.Node.clic ~dst:1 ~port:5 1_000;
      (* phase 2: the peer is down; the confirmed send must fail after
         max_retries instead of blocking forever *)
      Process.delay (Time.ms 2.);
      (try
         Clic.Api.send_sync na.Node.clic ~dst:1 ~port:5 2_000;
         Alcotest.fail "send to a crashed node succeeded"
       with Clic.Channel.Dead peer ->
         check_int "exception names the peer" 1 peer;
         incr dead_seen);
      (* phase 3: the peer is back with a higher epoch — retry until the
         fresh kernel answers *)
      Process.delay (Time.ms 8.);
      let rec resend () =
        try Clic.Api.send na.Node.clic ~dst:1 ~port:5 3_000
        with Clic.Channel.Dead _ ->
          Process.delay (Time.us 300.);
          resend ()
      in
      resend ());
  Node.spawn na (fun () ->
      Process.delay (Time.ms 1.);
      let pool = (Clic.Clic_module.env_of (Clic.Api.kernel nb.Node.clic)).Proto.Hostenv.kmem in
      Node.crash nb;
      (* crash cleanup returned every staged byte: the accounting identity
         holds across the crash *)
      pool_after_crash := Os_model.Kmem.in_use pool;
      Process.delay (Time.ms 5.);
      Node.reboot nb;
      Node.spawn nb (fun () ->
          second :=
            (Clic.Api.recv nb.Node.clic ~port:5).Clic.Clic_module.msg_bytes));
  Net.run c;
  check_int "phase 1 delivered" 1_000 !first;
  check_int "dead peer detected exactly once" 1 !dead_seen;
  check_int "phase 3 delivered on the new boot" 3_000 !second;
  check_bool "node back up" true (Node.is_up nb);
  check_int "boot epoch bumped" 1 (Node.epoch nb);
  check_int "one crash recorded" 1 (Node.crashes nb);
  check_int "dead kernel's pool fully returned" 0 !pool_after_crash;
  let ka = Clic.Api.kernel na.Node.clic in
  check_bool "survivor noticed the reboot" true
    (Clic.Clic_module.peer_reboots ka >= 1);
  check_bool "survivor re-established the channel" true
    (Clic.Clic_module.reestablishments ka >= 1);
  check_int "fresh kernel starts at the new epoch" 1
    (Clic.Clic_module.epoch (Clic.Api.kernel nb.Node.clic))

let test_node_crash_reboot_guards () =
  let c = Net.create ~n:2 () in
  let nb = Net.node c 1 in
  Node.spawn (Net.node c 0) (fun () ->
      check_bool "up initially" true (Node.is_up nb);
      Alcotest.check_raises "reboot while up"
        (Invalid_argument "Node.reboot: still up") (fun () -> Node.reboot nb);
      Node.crash nb;
      check_bool "down after crash" false (Node.is_up nb);
      Alcotest.check_raises "double crash"
        (Invalid_argument "Node.crash: already down") (fun () -> Node.crash nb);
      Process.delay (Time.ms 1.);
      Node.reboot nb;
      check_bool "up after reboot" true (Node.is_up nb);
      check_int "epoch counts boots" 1 (Node.epoch nb));
  Net.run c

let suite =
  [
    ("cluster shape", `Quick, test_cluster_shape);
    ("bonded switches", `Quick, test_bonded_cluster_has_parallel_switches);
    ("determinism", `Quick, test_determinism_same_run_same_numbers);
    ("stream conservation", `Quick, test_stream_conserves_messages);
    ("latency vs size", `Quick, test_pingpong_latency_increases_with_size);
    ("all-to-all", `Quick, test_all_to_all_traffic);
    ("stacks coexist", `Quick, test_both_stacks_share_one_node);
    ("run_for bound", `Quick, test_run_for_bounds_time);
    ("workload uniform", `Quick, test_workload_uniform_random_conserves);
    ("workload under loss", `Quick, test_workload_uniform_random_under_loss);
    ("workload hotspot", `Quick, test_workload_hotspot_incast);
    ("workload ring", `Quick, test_workload_ring_rounds);
    ("workload determinism", `Quick, test_workload_determinism);
    ("incast + finite buffers", `Quick, test_incast_with_finite_switch_buffers);
    ("node crash & recovery", `Quick, test_node_crash_recovery_reestablishes);
    ("crash/reboot guards", `Quick, test_node_crash_reboot_guards);
  ]
