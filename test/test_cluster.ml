(* Tests for cluster assembly and the measurement harnesses: construction,
   determinism, conservation, and multi-node traffic. *)

open Engine
open Cluster

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_cluster_shape () =
  let c = Net.create ~n:4 () in
  check_int "size" 4 (Net.size c);
  check_int "one switch per NIC rank" 1 (List.length c.Net.switches);
  for i = 0 to 3 do
    check_int "node id" i (Net.node c i).Node.id
  done;
  Alcotest.check_raises "n<=0" (Invalid_argument "Cluster.create: n <= 0")
    (fun () -> ignore (Net.create ~n:0 ()))

let test_bonded_cluster_has_parallel_switches () =
  let config = { Node.default_config with nics = 2 } in
  let c = Net.create ~config ~n:2 () in
  check_int "two switches" 2 (List.length c.Net.switches);
  check_int "two NICs per node" 2 (List.length (Net.node c 0).Node.nics)

let test_determinism_same_run_same_numbers () =
  let measure () =
    let c = Net.create ~n:2 () in
    let pair = Measure.clic_pair c ~a:0 ~b:1 () in
    let r = Measure.pingpong c pair ~size:4096 ~reps:5 ~warmup:1 () in
    r.Measure.one_way
  in
  let a = measure () and b = measure () in
  check_int "bit-identical repeat" a b

let test_stream_conserves_messages () =
  let c = Net.create ~n:2 () in
  let pair = Measure.clic_pair c ~a:0 ~b:1 () in
  let r = Measure.stream c pair ~a:0 ~b:1 ~size:2000 ~messages:50 in
  check_bool "positive bandwidth" true (r.Measure.st_bandwidth_mbps > 0.);
  let kb = Clic.Api.kernel (Net.node c 1).Node.clic in
  check_int "every message delivered" 50
    (Clic.Clic_module.messages_delivered kb)

let test_pingpong_latency_increases_with_size () =
  let lat size =
    let c = Net.create ~n:2 () in
    let pair = Measure.clic_pair c ~a:0 ~b:1 () in
    (Measure.pingpong c pair ~size ~reps:3 ~warmup:1 ()).Measure.one_way
  in
  let l0 = lat 0 and l64k = lat 65536 in
  check_bool "64KB slower than 0B" true (l64k > l0);
  check_bool "0B latency sane (10..100us)" true
    (l0 > Time.us 10. && l0 < Time.us 100.)

let test_all_to_all_traffic () =
  let n = 4 in
  let c = Net.create ~n () in
  let expected = n * (n - 1) in
  let delivered = ref 0 in
  for me = 0 to n - 1 do
    let node = Net.node c me in
    Node.spawn node (fun () ->
        for peer = 0 to n - 1 do
          if peer <> me then
            Clic.Api.send node.Node.clic ~dst:peer ~port:1 1000
        done);
    Node.spawn node (fun () ->
        for _ = 1 to n - 1 do
          ignore (Clic.Api.recv node.Node.clic ~port:1);
          incr delivered
        done)
  done;
  Net.run c;
  check_int "n*(n-1) messages" expected !delivered

let test_both_stacks_share_one_node () =
  (* CLIC and TCP traffic on the same nodes, simultaneously. *)
  let c = Net.create ~n:2 () in
  let na = Net.node c 0 and nb = Net.node c 1 in
  Proto.Tcp.listen nb.Node.tcp ~port:80;
  let tcp_done = ref false and clic_done = ref false in
  Node.spawn nb (fun () ->
      let conn = Proto.Tcp.accept nb.Node.tcp ~port:80 in
      Proto.Tcp.recv conn 50_000;
      tcp_done := true);
  Node.spawn nb (fun () ->
      ignore (Clic.Api.recv nb.Node.clic ~port:5);
      clic_done := true);
  Node.spawn na (fun () ->
      let conn = Proto.Tcp.connect na.Node.tcp ~dst:1 ~port:80 in
      Proto.Tcp.send conn 50_000);
  Node.spawn na (fun () -> Clic.Api.send na.Node.clic ~dst:1 ~port:5 50_000);
  Net.run c;
  check_bool "tcp completed" true !tcp_done;
  check_bool "clic completed" true !clic_done

let test_run_for_bounds_time () =
  let c = Net.create ~n:2 () in
  let na = Net.node c 0 in
  Node.spawn na (fun () ->
      let rec forever () =
        Process.delay (Time.ms 1.);
        forever ()
      in
      forever ());
  Net.run_for c (Time.ms 10.);
  check_int "clock advanced exactly" (Time.ms 10.) (Sim.now c.Net.sim)

let test_workload_uniform_random_conserves () =
  let c = Net.create ~n:4 () in
  let s = Workload.uniform_random c ~seed:3 ~messages_per_node:20 () in
  check_int "sent" 80 s.Workload.sent;
  check_int "all delivered" 80 s.Workload.delivered;
  check_int "no stranded messages" 0 s.Workload.stranded;
  check_bool "bytes moved" true (s.Workload.bytes > 0)

let test_workload_uniform_random_under_loss () =
  let config =
    { Node.default_config with
      link_fault =
        Some (fun () -> Hw.Fault.drop ~rng:(Rng.create ~seed:17) ~prob:0.02)
    }
  in
  let c = Net.create ~config ~n:4 () in
  let s = Workload.uniform_random c ~seed:5 ~messages_per_node:15 () in
  check_int "exactly-once despite drops" s.Workload.sent s.Workload.delivered

let test_workload_hotspot_incast () =
  let c = Net.create ~n:5 () in
  let s = Workload.hotspot c ~seed:9 ~target:0 ~messages_per_node:30 () in
  check_int "sent" 120 s.Workload.sent;
  check_int "target absorbed everything" 120 s.Workload.delivered

let test_workload_ring_rounds () =
  let c = Net.create ~n:4 () in
  let s = Workload.ring c ~rounds:10 () in
  check_int "sent" 40 s.Workload.sent;
  check_int "delivered" 40 s.Workload.delivered;
  check_int "no stranded messages" 0 s.Workload.stranded

let test_workload_determinism () =
  let run () =
    let c = Net.create ~n:3 () in
    (Workload.uniform_random c ~seed:42 ~messages_per_node:10 ()).Workload.elapsed
  in
  check_int "same seed, same elapsed" (run ()) (run ())

let test_incast_with_finite_switch_buffers () =
  (* Five senders converge on one port whose egress buffer holds only a
     few frames: the switch tail-drops, and CLIC must recover every
     message anyway. *)
  let config = { Node.default_config with switch_egress_frames = Some 8 } in
  let c = Net.create ~config ~n:6 () in
  let s = Workload.hotspot c ~seed:4 ~target:0 ~messages_per_node:40 () in
  check_int "exactly once despite congestion drops" s.Workload.sent
    s.Workload.delivered;
  let drops = Hw.Switch.egress_drops (List.hd c.Net.switches) in
  check_bool
    (Printf.sprintf "switch actually dropped (%d)" drops)
    true (drops > 0)

(* ------------------------------------------------------------------ *)
(* Node crash and recovery *)

let snappy =
  (* fast failure detection so the test stays small: the peer is declared
     dead after ~2.5ms of silence instead of the default tens of ms *)
  { Clic.Params.default with
    retransmit_timeout = Time.us 500.; rto_min = Time.us 100.;
    rto_max = Time.ms 1.; max_retries = 3 }

let test_node_crash_recovery_reestablishes () =
  let config = { Node.default_config with clic_params = snappy } in
  let c = Net.create ~config ~n:2 () in
  let na = Net.node c 0 and nb = Net.node c 1 in
  let first = ref 0 and second = ref 0 and dead_seen = ref 0 in
  let pool_after_crash = ref (-1) in
  Node.spawn nb (fun () ->
      first := (Clic.Api.recv nb.Node.clic ~port:5).Clic.Clic_module.msg_bytes);
  Node.spawn na (fun () ->
      (* phase 1: normal delivery *)
      Clic.Api.send na.Node.clic ~dst:1 ~port:5 1_000;
      (* phase 2: the peer is down; the confirmed send must fail after
         max_retries instead of blocking forever *)
      Process.delay (Time.ms 2.);
      (try
         Clic.Api.send_sync na.Node.clic ~dst:1 ~port:5 2_000;
         Alcotest.fail "send to a crashed node succeeded"
       with Clic.Channel.Dead peer ->
         check_int "exception names the peer" 1 peer;
         incr dead_seen);
      (* phase 3: the peer is back with a higher epoch — retry until the
         fresh kernel answers *)
      Process.delay (Time.ms 8.);
      let rec resend () =
        try Clic.Api.send na.Node.clic ~dst:1 ~port:5 3_000
        with Clic.Channel.Dead _ ->
          Process.delay (Time.us 300.);
          resend ()
      in
      resend ());
  Node.spawn na (fun () ->
      Process.delay (Time.ms 1.);
      let pool = (Clic.Clic_module.env_of (Clic.Api.kernel nb.Node.clic)).Proto.Hostenv.kmem in
      Node.crash nb;
      (* crash cleanup returned every staged byte: the accounting identity
         holds across the crash *)
      pool_after_crash := Os_model.Kmem.in_use pool;
      Process.delay (Time.ms 5.);
      Node.reboot nb;
      Node.spawn nb (fun () ->
          second :=
            (Clic.Api.recv nb.Node.clic ~port:5).Clic.Clic_module.msg_bytes));
  Net.run c;
  check_int "phase 1 delivered" 1_000 !first;
  check_int "dead peer detected exactly once" 1 !dead_seen;
  check_int "phase 3 delivered on the new boot" 3_000 !second;
  check_bool "node back up" true (Node.is_up nb);
  check_int "boot epoch bumped" 1 (Node.epoch nb);
  check_int "one crash recorded" 1 (Node.crashes nb);
  check_int "dead kernel's pool fully returned" 0 !pool_after_crash;
  let ka = Clic.Api.kernel na.Node.clic in
  check_bool "survivor noticed the reboot" true
    (Clic.Clic_module.peer_reboots ka >= 1);
  check_bool "survivor re-established the channel" true
    (Clic.Clic_module.reestablishments ka >= 1);
  check_int "fresh kernel starts at the new epoch" 1
    (Clic.Clic_module.epoch (Clic.Api.kernel nb.Node.clic))

let test_node_crash_reboot_guards () =
  let c = Net.create ~n:2 () in
  let nb = Net.node c 1 in
  Node.spawn (Net.node c 0) (fun () ->
      check_bool "up initially" true (Node.is_up nb);
      Alcotest.check_raises "reboot while up"
        (Invalid_argument "Node.reboot: still up") (fun () -> Node.reboot nb);
      Node.crash nb;
      check_bool "down after crash" false (Node.is_up nb);
      Alcotest.check_raises "double crash"
        (Invalid_argument "Node.crash: already down") (fun () -> Node.crash nb);
      Process.delay (Time.ms 1.);
      Node.reboot nb;
      check_bool "up after reboot" true (Node.is_up nb);
      check_int "epoch counts boots" 1 (Node.epoch nb));
  Net.run c

(* ------------------------------------------------------------------ *)
(* Fabric topologies: the DSL, compiled routes, and multi-hop clusters *)

let raw ~src ~dst n =
  Hw.Eth_frame.make ~src:(Hw.Mac.of_node src) ~dst:(Hw.Mac.of_node dst)
    ~ethertype:0x88 ~payload_bytes:n (Hw.Eth_frame.Raw n)

let test_topology_star_compat () =
  let t = Topology.star ~n:4 in
  check_int "hosts" 4 (Topology.n t);
  Alcotest.(check (list string))
    "the legacy single prefix" [ "switch" ] (Topology.switches t);
  check_int "no trunks" 0 (List.length (Topology.trunks t));
  for id = 0 to 3 do
    Alcotest.(check string) "everyone on the one switch" "switch"
      (Topology.attach t id)
  done;
  check_int "diameter" 0 (Topology.diameter t);
  check_int "no routes to compile" 0 (List.length (Topology.routes t))

let test_topology_validation () =
  let mk ?ttl ~switches ~trunks ~hosts () =
    ignore (Topology.make ?ttl ~switches ~trunks ~hosts ())
  in
  Alcotest.check_raises "duplicate switch"
    (Invalid_argument "Topology: duplicate switch s") (fun () ->
      mk ~switches:[ "s"; "s" ] ~trunks:[] ~hosts:[| "s" |] ());
  Alcotest.check_raises "self trunk"
    (Invalid_argument "Topology: self-trunk s") (fun () ->
      mk ~switches:[ "s" ] ~trunks:[ ("s", "s") ] ~hosts:[| "s" |] ());
  Alcotest.check_raises "unknown trunk end"
    (Invalid_argument "Topology: trunk to unknown switch t") (fun () ->
      mk ~switches:[ "s" ] ~trunks:[ ("s", "t") ] ~hosts:[| "s" |] ());
  Alcotest.check_raises "disconnected fabric"
    (Invalid_argument "Topology: switch t is disconnected") (fun () ->
      mk ~switches:[ "s"; "t" ] ~trunks:[] ~hosts:[| "s" |] ());
  Alcotest.check_raises "ttl below the diameter"
    (Invalid_argument "Topology: ttl below the fabric diameter") (fun () ->
      mk ~ttl:2
        ~switches:[ "s"; "t"; "u" ]
        ~trunks:[ ("s", "t"); ("t", "u") ]
        ~hosts:[| "s"; "u" |] ());
  Alcotest.check_raises "fat tree wants even k"
    (Invalid_argument "Topology.fat_tree: k must be even and >= 2") (fun () ->
      ignore (Topology.fat_tree ~k:3 ()))

let test_topology_linear_routes () =
  let t = Topology.linear ~racks:3 ~per_rack:2 () in
  check_int "hosts" 6 (Topology.n t);
  check_int "diameter of the chain" 2 (Topology.diameter t);
  Alcotest.(check string) "host 5 in the last rack" "s2." (Topology.attach t 5);
  let routes = Topology.routes t in
  let via at dst =
    match
      List.find_opt (fun (a, d, _) -> a = at && d = dst) routes
    with
    | Some (_, _, v) -> v
    | None -> []
  in
  Alcotest.(check (list string)) "s0 reaches rack 2 through s1" [ "s1." ]
    (via "s0." 5);
  Alcotest.(check (list string)) "middle rack goes left for rack 0" [ "s0." ]
    (via "s1." 0);
  Alcotest.(check (list string)) "no route entry for a local host" []
    (via "s0." 0)

let test_topology_leaf_spine_shape () =
  let t = Topology.leaf_spine ~racks:3 ~per_rack:2 ~spines:2 () in
  check_int "hosts" 6 (Topology.n t);
  check_int "tors + spines" 5 (List.length (Topology.switches t));
  check_int "full tor x spine mesh" 6 (List.length (Topology.trunks t));
  check_int "two-hop diameter via any spine" 2 (Topology.diameter t);
  (* every cross-rack destination gets the full equal-cost spine set *)
  List.iter
    (fun (at, dst, via) ->
      if String.length at >= 3 && String.sub at 0 3 = "tor" then
        check_int
          (Printf.sprintf "ECMP width at %s for %d" at dst)
          2 (List.length via))
    (List.filter (fun (_, _, via) -> via <> []) (Topology.routes t))

let test_topology_fat_tree_shape () =
  let t = Topology.fat_tree ~k:4 () in
  check_int "k^3/4 hosts" 16 (Topology.n t);
  check_int "edge + aggregation + core" 20 (List.length (Topology.switches t));
  (* k pods x (k/2 edge x k/2 agg) + (k/2)^2 cores x k pods *)
  check_int "trunks" 32 (List.length (Topology.trunks t));
  check_int "diameter edge-agg-core-agg-edge" 4 (Topology.diameter t);
  check_bool "default ttl clears the diameter" true
    (Topology.ttl t >= Topology.diameter t + 1);
  (* same-pod, different-edge traffic has k/2 equal-cost aggregations *)
  let routes = Topology.routes t in
  match
    List.find_opt (fun (at, dst, _) -> at = "e0_0." && dst = 2) routes
  with
  | Some (_, _, via) -> check_int "in-pod ECMP width" 2 (List.length via)
  | None -> Alcotest.fail "no route from e0_0. to host 2"

let test_topology_reroute_excluding () =
  let t = Topology.leaf_spine ~racks:2 ~per_rack:1 ~spines:2 () in
  let via excluding =
    match
      List.find_opt
        (fun (at, dst, _) -> at = "tor0." && dst = 1)
        (Topology.routes ~excluding t)
    with
    | Some (_, _, v) -> v
    | None -> []
  in
  Alcotest.(check (list string))
    "healthy: both spines equal cost" [ "spine0."; "spine1." ] (via []);
  Alcotest.(check (list string))
    "spine0 dead: the survivor carries all" [ "spine1." ] (via [ "spine0." ]);
  Alcotest.(check (list string))
    "both spines dead: the destination vanishes" []
    (via [ "spine0."; "spine1." ])

(* Instantiate a topology's rank-0 fabric with bare counting stations —
   the switch-level view the qcheck properties drive directly, mirroring
   what [Net.create_topo] wires per NIC rank. *)
let build_fabric sim topo =
  let phys p = p ^ "0" in
  let sws =
    List.map
      (fun p ->
        ( p,
          Hw.Switch.create sim ~name:(phys p) ~bits_per_s:1e9
            ~learning:(Topology.learning topo) ~ttl:(Topology.ttl topo) () ))
      (Topology.switches topo)
  in
  let sw p = List.assoc p sws in
  List.iter
    (fun (x, y) -> Hw.Switch.add_trunk (sw x) (sw y))
    (Topology.trunks topo);
  for id = 0 to Topology.n topo - 1 do
    Hw.Switch.add_port (sw (Topology.attach topo id)) ~node:id
  done;
  if not (Topology.learning topo) then
    List.iter
      (fun (at, dst, via) ->
        Hw.Switch.set_route (sw at) ~dst ~via:(List.map phys via))
      (Topology.routes topo);
  sws

let topo_arb =
  let print t =
    Printf.sprintf "{n=%d; switches=%s%s}" (Topology.n t)
      (String.concat "," (Topology.switches t))
      (if Topology.learning t then "; learning" else "")
  in
  QCheck.make ~print
    QCheck.Gen.(
      oneof
        [
          map2
            (fun racks per_rack -> Topology.linear ~racks ~per_rack ())
            (int_range 1 4) (int_range 1 3);
          map2
            (fun racks per_rack ->
              Topology.linear ~learning:true ~racks ~per_rack ())
            (int_range 1 3) (int_range 1 2);
          map3
            (fun racks per_rack spines ->
              Topology.leaf_spine ~racks ~per_rack ~spines ())
            (int_range 2 4) (int_range 1 3) (int_range 1 3);
          return (Topology.fat_tree ~k:2 ());
          return (Topology.fat_tree ~k:4 ());
          return (Topology.star ~n:5);
        ])

let prop_fabric_all_pairs_delivery =
  QCheck.Test.make ~count:20 ~name:"fabric: all-pairs delivery, loop-free"
    topo_arb
    (fun topo ->
      let sim = Sim.create () in
      let sws = build_fabric sim topo in
      let n = Topology.n topo in
      let got = Array.make n 0 in
      for id = 0 to n - 1 do
        let sw = List.assoc (Topology.attach topo id) sws in
        Hw.Switch.connect_node sw ~node:id (fun f ->
            (* learning fabrics flood unknown destinations to every
               station: count only frames addressed to this one *)
            if Hw.Mac.equal f.Hw.Eth_frame.dst (Hw.Mac.of_node id) then
              got.(id) <- got.(id) + 1)
      done;
      for s = 0 to n - 1 do
        for d = 0 to n - 1 do
          if s <> d then
            Hw.Link.send
              (Hw.Switch.uplink (List.assoc (Topology.attach topo s) sws)
                 ~node:s)
              (raw ~src:s ~dst:d 200)
        done
      done;
      Sim.run sim;
      Array.for_all (fun c -> c = n - 1) got
      && List.for_all
           (fun (_, sw) ->
             Hw.Switch.frames_ttl_dropped sw = 0
             && Hw.Switch.frames_unroutable sw = 0)
           sws)

let prop_fabric_flood_bounded_by_ttl =
  (* a broadcast on a cyclic static-routed fabric storms around the spine
     loops; the TTL must bound it and every station must still hear it *)
  QCheck.Test.make ~count:15 ~name:"fabric: broadcast storm dies at the TTL"
    (QCheck.make
       ~print:(fun (s, r) -> Printf.sprintf "spines=%d racks=%d" s r)
       QCheck.Gen.(pair (int_range 2 3) (int_range 2 3)))
    (fun (spines, racks) ->
      let topo = Topology.leaf_spine ~racks ~per_rack:2 ~spines () in
      let sim = Sim.create () in
      let sws = build_fabric sim topo in
      let n = Topology.n topo in
      let heard = Array.make n 0 in
      for id = 0 to n - 1 do
        let sw = List.assoc (Topology.attach topo id) sws in
        Hw.Switch.connect_node sw ~node:id (fun f ->
            if Hw.Mac.equal f.Hw.Eth_frame.dst Hw.Mac.broadcast then
              heard.(id) <- heard.(id) + 1)
      done;
      Hw.Link.send
        (Hw.Switch.uplink (List.assoc (Topology.attach topo 0) sws) ~node:0)
        (Hw.Eth_frame.make ~src:(Hw.Mac.of_node 0) ~dst:Hw.Mac.broadcast
           ~ethertype:0x88 ~payload_bytes:100 (Hw.Eth_frame.Raw 100));
      Sim.run sim (* termination itself is the property under test *);
      let ttl_drops =
        List.fold_left
          (fun acc (_, sw) -> acc + Hw.Switch.frames_ttl_dropped sw)
          0 sws
      in
      (* with >= 2 spines the flood loops, so the TTL must have fired;
         looped copies may even circle back to the sender's own switch *)
      ttl_drops > 0
      && Array.for_all (fun c -> c >= 1) (Array.sub heard 1 (n - 1)))

let prop_fabric_ecmp_spreads_load =
  QCheck.Test.make ~count:15 ~name:"fabric: ECMP loads every spine trunk"
    (QCheck.make
       ~print:(fun (s, p) -> Printf.sprintf "spines=%d per_rack=%d" s p)
       QCheck.Gen.(pair (int_range 2 4) (int_range 2 3)))
    (fun (spines, per_rack) ->
      let topo = Topology.leaf_spine ~racks:2 ~per_rack ~spines () in
      let sim = Sim.create () in
      let sws = build_fabric sim topo in
      let n = Topology.n topo in
      let got = ref 0 in
      for id = 0 to n - 1 do
        let sw = List.assoc (Topology.attach topo id) sws in
        Hw.Switch.connect_node sw ~node:id (fun f ->
            if Hw.Mac.equal f.Hw.Eth_frame.dst (Hw.Mac.of_node id) then
              incr got)
      done;
      (* every cross-rack ordered pair, both directions, two frames each *)
      let flows = ref 0 in
      for s = 0 to n - 1 do
        for d = 0 to n - 1 do
          if Topology.attach topo s <> Topology.attach topo d then begin
            incr flows;
            for _ = 1 to 2 do
              Hw.Link.send
                (Hw.Switch.uplink (List.assoc (Topology.attach topo s) sws)
                   ~node:s)
                (raw ~src:s ~dst:d 200)
            done
          end
        done
      done;
      Sim.run sim;
      (* pigeonhole honesty: a handful of flows cannot promise to land in
         every one of [spines] hash bins, so the per-flow hash is judged
         fabric-wide — across both ToRs every spine must carry load, and
         no single spine may swallow everything *)
      let load sp =
        Hw.Switch.trunk_tx_frames (List.assoc "tor0." sws) ~peer:(sp ^ "0")
        + Hw.Switch.trunk_tx_frames (List.assoc "tor1." sws) ~peer:(sp ^ "0")
      in
      let loads = List.init spines (fun i -> load (Printf.sprintf "spine%d." i)) in
      !got = 2 * !flows
      && List.fold_left ( + ) 0 loads = 2 * !flows
      && List.for_all (fun l -> l > 0 && l < 2 * !flows) loads)

let test_net_fail_switch_reroutes () =
  let topo = Topology.leaf_spine ~racks:2 ~per_rack:1 ~spines:2 () in
  let c = Net.create_topo ~topo () in
  Alcotest.(check (list string))
    "nothing failed initially" [] (Net.failed_switches c);
  Alcotest.check_raises "unknown prefix"
    (Invalid_argument "Net.switch: unknown xx") (fun () ->
      ignore (Net.switch c "xx"));
  Net.fail_switch c "spine0.";
  Net.fail_switch c "spine0." (* idempotent *);
  Alcotest.(check (list string))
    "failure recorded once" [ "spine0." ] (Net.failed_switches c);
  check_bool "switch powered down" true
    (Hw.Switch.is_down (Net.switch c "spine0."));
  let pair = Measure.clic_pair c ~a:0 ~b:1 () in
  let r = Measure.pingpong c pair ~size:1024 ~reps:2 ~warmup:1 () in
  check_bool "traffic survives on the remaining spine" true
    (r.Measure.one_way > 0);
  check_int "the dead spine carried nothing"
    0
    (Hw.Switch.trunk_tx_frames (Net.switch c "tor0.") ~peer:"spine0.0");
  Net.restore_switch c "spine0.";
  Alcotest.(check (list string))
    "restored" [] (Net.failed_switches c);
  check_bool "switch back up" false
    (Hw.Switch.is_down (Net.switch c "spine0."))

let test_fabric_crash_reboot_rewires () =
  (* the satellite regression: crash/reboot must rewire the node into its
     own ToR on a multi-switch fabric, not a hard-coded single star *)
  let config = { Node.default_config with clic_params = snappy } in
  let topo = Topology.leaf_spine ~racks:2 ~per_rack:1 ~spines:1 () in
  let c = Net.create_topo ~config ~topo () in
  let na = Net.node c 0 and nb = Net.node c 1 in
  let first = ref 0 and second = ref 0 in
  Node.spawn nb (fun () ->
      first := (Clic.Api.recv nb.Node.clic ~port:7).Clic.Clic_module.msg_bytes);
  Node.spawn na (fun () ->
      Clic.Api.send na.Node.clic ~dst:1 ~port:7 500;
      (* while the peer is down, a confirmed send must detect the death —
         this also tears the stale-epoch channel down for phase 3 *)
      Process.delay (Time.us 2_500.);
      (try
         Clic.Api.send_sync na.Node.clic ~dst:1 ~port:7 2_000;
         Alcotest.fail "send to a crashed node succeeded"
       with Clic.Channel.Dead _ -> ());
      Process.delay (Time.ms 8.);
      let rec resend () =
        try Clic.Api.send na.Node.clic ~dst:1 ~port:7 1_500
        with Clic.Channel.Dead _ ->
          Process.delay (Time.us 300.);
          resend ()
      in
      resend ());
  Node.spawn na (fun () ->
      Process.delay (Time.ms 2.);
      Node.crash nb;
      Process.delay (Time.ms 4.);
      Node.reboot nb;
      Node.spawn nb (fun () ->
          second :=
            (Clic.Api.recv nb.Node.clic ~port:7).Clic.Clic_module.msg_bytes));
  Net.run c;
  check_int "pre-crash message crossed the fabric" 500 !first;
  check_int "post-reboot message reaches the rewired NIC" 1_500 !second;
  check_int "one boot recorded" 1 (Node.epoch nb)

let test_workload_hotspot_explicit_senders () =
  let c = Net.create ~n:5 () in
  let s =
    Workload.hotspot c ~seed:3 ~target:0 ~senders:[ 2; 4 ]
      ~messages_per_node:10 ()
  in
  check_int "only the two senders sent" 20 s.Workload.sent;
  check_int "delivered exactly once" 20 s.Workload.delivered;
  let c2 = Net.create ~n:5 () in
  Alcotest.check_raises "the target cannot send to itself"
    (Invalid_argument "Workload.hotspot: bad sender id") (fun () ->
      ignore
        (Workload.hotspot c2 ~seed:3 ~target:0 ~senders:[ 0 ]
           ~messages_per_node:1 ()))

(* ------------------------------------------------------------------ *)
(* Open-loop SLO workloads *)

let test_workload_open_loop_completes () =
  let c = Net.create ~n:4 () in
  let s, slo =
    Workload.open_loop c ~seed:11
      ~arrival:(Workload.Poisson { mean_gap = Time.us 20. })
      ~requests_per_node:25 ()
  in
  check_int "all requests fired" 100 slo.Workload.slo_requests;
  check_int "all requests answered" 100 slo.Workload.slo_completed;
  check_int "no stranded requests" 0 slo.Workload.slo_stranded;
  check_int "no stranded messages" 0 s.Workload.stranded;
  check_int "one sample per completion" 100
    (Array.length slo.Workload.slo_samples);
  check_bool "quantiles ordered" true
    (slo.Workload.slo_p50_us <= slo.Workload.slo_p99_us
    && slo.Workload.slo_p99_us <= slo.Workload.slo_p999_us
    && slo.Workload.slo_p999_us <= slo.Workload.slo_max_us);
  check_bool "goodput positive" true (slo.Workload.slo_goodput_mbps > 0.)

let test_workload_open_loop_deterministic () =
  let run seed =
    let c = Net.create ~n:3 () in
    let _, slo =
      Workload.open_loop c ~seed
        ~arrival:(Workload.Poisson { mean_gap = Time.us 15. })
        ~requests_per_node:20 ()
    in
    (slo.Workload.slo_p999_us, slo.Workload.slo_elapsed)
  in
  check_bool "same seed, same tail" true (run 21 = run 21);
  check_bool "different seed, different run" true (run 21 <> run 22)

let test_workload_open_loop_pareto_and_deadline () =
  let c = Net.create ~n:3 () in
  let _, slo =
    Workload.open_loop c ~seed:5
      ~arrival:(Workload.Pareto { shape = 2.5; min_gap = Time.us 10. })
      ~requests_per_node:15 ~deadline:1 ()
  in
  check_int "completed under heavy-tailed arrivals" slo.Workload.slo_requests
    slo.Workload.slo_completed;
  (* a 1 ns deadline is unmeetable: every completion is a timeout *)
  check_int "deadline counts timeouts" slo.Workload.slo_completed
    slo.Workload.slo_timeouts

let test_workload_open_loop_oneway () =
  let run () =
    let c = Net.create ~n:4 () in
    Workload.open_loop_oneway c ~seed:17
      ~arrival:(Workload.Poisson { mean_gap = Time.us 20. })
      ~requests_per_node:25 ()
  in
  let s, slo = run () in
  check_int "all requests fired" 100 slo.Workload.slo_requests;
  check_int "all requests delivered" 100 slo.Workload.slo_completed;
  check_int "no stranded requests" 0 slo.Workload.slo_stranded;
  check_int "no stranded messages" 0 s.Workload.stranded;
  check_bool "quantiles ordered" true
    (slo.Workload.slo_p50_us <= slo.Workload.slo_p99_us
    && slo.Workload.slo_p99_us <= slo.Workload.slo_p999_us);
  (* one-way latency has no response leg: cheaper than the echo variant *)
  check_bool "latency measured" true (slo.Workload.slo_p50_us > 0.);
  let _, slo2 = run () in
  check_bool "same seed, same samples" true
    (slo.Workload.slo_samples = slo2.Workload.slo_samples)

let test_workload_arrival_validation () =
  Alcotest.check_raises "poisson gap"
    (Invalid_argument "Workload: Poisson mean_gap <= 0") (fun () ->
      Workload.validate_arrival (Workload.Poisson { mean_gap = 0 }));
  Alcotest.check_raises "pareto shape"
    (Invalid_argument
       "Workload: Pareto shape <= 1 (mean inter-arrival time would not \
        exist)") (fun () ->
      Workload.validate_arrival
        (Workload.Pareto { shape = 1.0; min_gap = Time.us 5. }));
  Alcotest.check_raises "pareto gap"
    (Invalid_argument "Workload: Pareto min_gap <= 0") (fun () ->
      Workload.validate_arrival (Workload.Pareto { shape = 2.; min_gap = 0 }))

let test_workload_quantile_hand_computed () =
  let samples = [| 9.; 1.; 8.; 2.; 7.; 3.; 6.; 4.; 5.; 10. |] in
  check_bool "p0 is the minimum" true (Workload.quantile samples 0. = 1.);
  (* nearest-rank on n=10: index floor(50/100*10) = 5 of the sorted array *)
  check_bool "p50 by hand" true (Workload.quantile samples 50. = 6.);
  check_bool "p99 is the maximum" true (Workload.quantile samples 99. = 10.);
  check_bool "p100 clamps to the maximum" true
    (Workload.quantile samples 100. = 10.);
  check_bool "empty array" true (Workload.quantile [||] 50. = 0.);
  Alcotest.check_raises "percentile range"
    (Invalid_argument "Workload.quantile: percentile outside [0,100]")
    (fun () -> ignore (Workload.quantile samples 101.))

let test_workload_partition_aggregate () =
  let c = Net.create ~n:5 () in
  let s, slo, fo =
    Workload.partition_aggregate c ~seed:8 ~queries:15 ()
  in
  check_int "queries fired" 15 fo.Workload.fo_queries;
  check_int "queries completed" 15 fo.Workload.fo_completed;
  check_int "slo mirrors queries" 15 slo.Workload.slo_completed;
  (* each query fans out to all 4 leaves: 15 requests + 60 leaf responses
     were matched, nothing stranded *)
  check_int "no stranded messages" 0 s.Workload.stranded;
  check_int "no stranded queries" 0 slo.Workload.slo_stranded;
  check_bool "leaf tail measured" true (fo.Workload.fo_leaf_p99_us > 0.)

let test_workload_elephants_mice () =
  let c = Net.create ~n:4 () in
  let m = Workload.elephants_mice c ~seed:6 ~requests_per_node:20 () in
  check_int "elephants conserved" m.Workload.mix_elephants.Workload.sent
    m.Workload.mix_elephants.Workload.delivered;
  check_int "no stranded elephants" 0
    m.Workload.mix_elephants.Workload.stranded;
  check_int "no stranded mice" 0 m.Workload.mix_mice.Workload.stranded;
  check_int "mice answered" 80 m.Workload.mix_slo.Workload.slo_completed;
  check_bool "mice tail measured" true (m.Workload.mix_slo.Workload.slo_p99_us > 0.)

let test_gray_failures_degrade_tail_with_evidence () =
  let arrival = Workload.Poisson { mean_gap = Time.us 25. } in
  let healthy =
    let c = Net.create ~n:4 () in
    let _, slo = Workload.open_loop c ~seed:31 ~arrival
        ~requests_per_node:40 () in
    slo
  in
  (* same offered load, but the fabric is quietly sick: every link sags
     to an eighth of its rate mid-run, NICs 1 and 2 serve 6x slower, and
     node 3's switch port stalls periodically *)
  let faults = ref [] in
  let config =
    { Node.default_config with
      link_fault =
        Some
          (fun () ->
            let f =
              Hw.Fault.brownout ~fraction:0.125 ~from_:(Time.us 100.)
                ~until_:(Time.ms 2.) ()
            in
            faults := f :: !faults;
            f)
    }
  in
  let c = Net.create ~config ~n:4 () in
  Workload.inject_gray c ~nic_nodes:[ 1; 2 ] ~nic_factor:6.0
    ~stall_nodes:[ 3 ] ~from_:(Time.us 100.) ~until_:(Time.ms 2.) ();
  let s, slo = Workload.open_loop c ~seed:31 ~arrival
      ~requests_per_node:40 () in
  check_int "every request still answered" slo.Workload.slo_requests
    slo.Workload.slo_completed;
  check_int "no stranded messages" 0 s.Workload.stranded;
  check_bool "gray failures fatten the tail" true
    (slo.Workload.slo_p99_us > healthy.Workload.slo_p99_us);
  (* evidence: each fail-slow mechanism actually engaged *)
  let brownout_frames =
    List.fold_left (fun acc f -> acc + Hw.Fault.slowed f) 0 !faults
  in
  check_bool "link brownout engaged" true (brownout_frames > 0);
  let nic_extra =
    List.fold_left
      (fun acc i ->
        List.fold_left
          (fun acc nic -> acc + Hw.Nic.slow_extra_ns nic)
          acc (Net.node c i).Node.nics)
      0 [ 1; 2 ]
  in
  check_bool "nic fail-slow engaged" true (nic_extra > 0);
  let stall_ns =
    List.fold_left
      (fun acc sw -> acc + Hw.Switch.egress_stall_ns sw)
      0 c.Net.switches
  in
  check_bool "switch stalls engaged" true (stall_ns > 0)

let test_gray_validation () =
  let c = Net.create ~n:3 () in
  Alcotest.check_raises "factor below one"
    (Invalid_argument "Workload.inject_gray: nic_factor < 1") (fun () ->
      Workload.inject_gray c ~nic_nodes:[ 0 ] ~nic_factor:0.5 ~from_:0
        ~until_:(Time.us 1.) ());
  Alcotest.check_raises "empty window"
    (Invalid_argument "Workload.inject_gray: empty or negative window")
    (fun () ->
      Workload.inject_gray c ~nic_nodes:[ 0 ] ~from_:(Time.us 2.)
        ~until_:(Time.us 2.) ());
  Alcotest.check_raises "unknown node"
    (Invalid_argument "Workload.inject_gray: unknown node 7") (fun () ->
      Workload.inject_gray c ~nic_nodes:[ 7 ] ~from_:0 ~until_:(Time.us 1.) ())

let fabric_qprops =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_fabric_all_pairs_delivery;
      prop_fabric_flood_bounded_by_ttl;
      prop_fabric_ecmp_spreads_load;
    ]

let suite =
  [
    ("cluster shape", `Quick, test_cluster_shape);
    ("bonded switches", `Quick, test_bonded_cluster_has_parallel_switches);
    ("determinism", `Quick, test_determinism_same_run_same_numbers);
    ("stream conservation", `Quick, test_stream_conserves_messages);
    ("latency vs size", `Quick, test_pingpong_latency_increases_with_size);
    ("all-to-all", `Quick, test_all_to_all_traffic);
    ("stacks coexist", `Quick, test_both_stacks_share_one_node);
    ("run_for bound", `Quick, test_run_for_bounds_time);
    ("workload uniform", `Quick, test_workload_uniform_random_conserves);
    ("workload under loss", `Quick, test_workload_uniform_random_under_loss);
    ("workload hotspot", `Quick, test_workload_hotspot_incast);
    ("workload ring", `Quick, test_workload_ring_rounds);
    ("workload determinism", `Quick, test_workload_determinism);
    ("incast + finite buffers", `Quick, test_incast_with_finite_switch_buffers);
    ("open-loop completes", `Quick, test_workload_open_loop_completes);
    ("open-loop deterministic", `Quick, test_workload_open_loop_deterministic);
    ("open-loop pareto/deadline", `Quick,
      test_workload_open_loop_pareto_and_deadline);
    ("open-loop one-way", `Quick, test_workload_open_loop_oneway);
    ("arrival validation", `Quick, test_workload_arrival_validation);
    ("quantile by hand", `Quick, test_workload_quantile_hand_computed);
    ("partition-aggregate", `Quick, test_workload_partition_aggregate);
    ("elephants and mice", `Quick, test_workload_elephants_mice);
    ("gray failures degrade tail", `Quick,
      test_gray_failures_degrade_tail_with_evidence);
    ("gray injection validation", `Quick, test_gray_validation);
    ("node crash & recovery", `Quick, test_node_crash_recovery_reestablishes);
    ("crash/reboot guards", `Quick, test_node_crash_reboot_guards);
    ("topology star compat", `Quick, test_topology_star_compat);
    ("topology validation", `Quick, test_topology_validation);
    ("topology linear routes", `Quick, test_topology_linear_routes);
    ("topology leaf/spine shape", `Quick, test_topology_leaf_spine_shape);
    ("topology fat tree shape", `Quick, test_topology_fat_tree_shape);
    ("topology reroute excluding", `Quick, test_topology_reroute_excluding);
    ("net fail/restore switch", `Quick, test_net_fail_switch_reroutes);
    ("fabric crash/reboot rewire", `Quick, test_fabric_crash_reboot_rewires);
    ("workload hotspot senders", `Quick, test_workload_hotspot_explicit_senders);
  ]
  @ fabric_qprops
