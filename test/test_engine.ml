(* Unit and property tests for the discrete-event engine. *)

open Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_constructors () =
  check_int "us" 1_500 (Time.us 1.5);
  check_int "ms" 2_000_000 (Time.ms 2.0);
  check_int "s" 1_000_000_000 (Time.s 1.0);
  check_int "ns" 42 (Time.ns 42)

let test_time_rates () =
  (* 1 Gbit/s = 1 ns per bit: 1500 bytes = 12000 ns *)
  check_int "wire 1500B at 1Gb/s" 12_000
    (Time.of_bits_at_rate ~bits_per_s:1e9 (1500 * 8));
  check_int "zero bytes" 0 (Time.of_bytes_at_rate ~bytes_per_s:1e6 0);
  (* rounding is up: 1 byte at 3 bytes/s -> ceil(1/3 s) *)
  check_int "round up" 333_333_334 (Time.of_bytes_at_rate ~bytes_per_s:3. 1)

let test_time_invalid () =
  Alcotest.check_raises "nan" (Invalid_argument "Time.us: not finite")
    (fun () -> ignore (Time.us Float.nan));
  Alcotest.check_raises "rate<=0"
    (Invalid_argument "Time.of_bytes_at_rate: rate <= 0") (fun () ->
      ignore (Time.of_bytes_at_rate ~bytes_per_s:0. 10))

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_order () =
  let h = Heap.create ~dummy:0 ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  check_int "len" 7 (Heap.length h);
  Alcotest.(check (list int))
    "sorted drain" [ 1; 1; 2; 3; 4; 5; 9 ]
    (Heap.to_sorted_list h);
  (* to_sorted_list must not consume *)
  check_int "len preserved" 7 (Heap.length h);
  check_int "pop min" 1 (Heap.pop_exn h)

let test_heap_empty () =
  let h = Heap.create ~dummy:0 ~cmp:compare in
  check_bool "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let prop_heap_sorts =
  QCheck.Test.make ~count:300 ~name:"heap drains any list sorted"
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~dummy:0 ~cmp:compare in
      List.iter (Heap.push h) xs;
      Heap.to_sorted_list h = List.sort compare xs)

let prop_heap_interleaved =
  QCheck.Test.make ~count:200 ~name:"heap pop is min under interleaving"
    QCheck.(list (pair int bool))
    (fun ops ->
      let h = Heap.create ~dummy:0 ~cmp:compare in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (x, pop) ->
          if pop then begin
            let expected =
              match List.sort compare !model with
              | [] -> None
              | m :: _ -> Some m
            in
            let got = Heap.pop h in
            if got <> expected then ok := false;
            (match expected with
            | Some m ->
                (* remove one occurrence *)
                let rec remove = function
                  | [] -> []
                  | y :: ys -> if y = m then ys else y :: remove ys
                in
                model := remove !model
            | None -> ())
          end
          else begin
            Heap.push h x;
            model := x :: !model
          end)
        ops;
      !ok)

(* Regression: popping the element that empties the heap must clear the
   parked pool record, or the heap retains the last item forever. *)
let test_heap_pop_last_releases () =
  let h = Heap.create ~dummy:(ref 0) ~cmp:compare in
  let w = Weak.create 1 in
  (* Scope the only strong reference inside a call that has returned by
     the time the GC runs. *)
  let push_and_pop () =
    let item = ref 0xBEEF in
    Weak.set w 0 (Some item);
    Heap.push h item;
    match Heap.pop h with
    | Some r -> check_int "popped value" 0xBEEF !r
    | None -> Alcotest.fail "pop returned None"
  in
  push_and_pop ();
  Gc.full_major ();
  check_bool "popped last element not retained by the heap" true
    (Weak.get w 0 = None)

let prop_heap_fifo_stable =
  QCheck.Test.make ~count:300
    ~name:"heap FIFO-stable among cmp-equal keys"
    QCheck.(list (int_range 0 7))
    (fun ks ->
      (* cmp sees only the key; the payload records insertion order. *)
      let h = Heap.create ~dummy:(0, 0) ~cmp:(fun (a, _) (b, _) -> compare a b) in
      List.iteri (fun i k -> Heap.push h (k, i)) ks;
      let drained = ref [] in
      let rec drain () =
        match Heap.pop h with
        | Some x ->
            drained := x :: !drained;
            drain ()
        | None -> ()
      in
      drain ();
      List.rev !drained
      = List.stable_sort
          (fun (a, _) (b, _) -> compare a b)
          (List.mapi (fun i k -> (k, i)) ks))

(* ------------------------------------------------------------------ *)
(* Sim *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  let record tag () = log := tag :: !log in
  ignore (Sim.schedule sim ~after:30 (record "c"));
  ignore (Sim.schedule sim ~after:10 (record "a"));
  ignore (Sim.schedule sim ~after:20 (record "b"));
  Sim.run sim;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    (List.rev !log);
  check_int "clock at last event" 30 (Sim.now sim)

let test_sim_fifo_same_instant () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.schedule sim ~after:100 (fun () -> log := i :: !log))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule sim ~after:5 (fun () -> fired := true) in
  Sim.cancel h;
  Sim.cancel h;
  Sim.run sim;
  check_bool "not fired" false !fired;
  check_bool "cancelled" true (Sim.is_cancelled h)

let test_sim_nested_schedule () =
  let sim = Sim.create () in
  let finished = ref 0 in
  ignore
    (Sim.schedule sim ~after:1 (fun () ->
         ignore
           (Sim.schedule sim ~after:1 (fun () ->
                finished := Sim.now sim))));
  Sim.run sim;
  check_int "nested time" 2 !finished

let test_sim_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.schedule sim ~after:(i * 10) (fun () -> incr count))
  done;
  Sim.run_until sim ~limit:45;
  check_int "only first four" 4 !count;
  check_int "clock advanced to limit" 45 (Sim.now sim);
  Sim.run sim;
  check_int "rest run" 10 !count

(* Satellite regression: [pending] must reflect a cancel immediately (the
   cancelled slot still rides the heap as a lazy deletion) and must not
   double-count a double cancel. *)
let test_sim_pending_counts_cancel () =
  let sim = Sim.create () in
  let h1 = Sim.schedule sim ~after:10 (fun () -> ()) in
  let _h2 = Sim.schedule sim ~after:20 (fun () -> ()) in
  check_int "two pending" 2 (Sim.pending sim);
  Sim.cancel h1;
  check_int "cancel reflected immediately" 1 (Sim.pending sim);
  Sim.cancel h1;
  check_int "double cancel counted once" 1 (Sim.pending sim);
  Sim.run sim;
  check_int "drained" 0 (Sim.pending sim)

let test_sim_post () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.post sim ~after:20 (fun () -> log := "b" :: !log);
  Sim.post sim ~after:10 (fun () -> log := "a" :: !log);
  check_int "posts pending" 2 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check (list string)) "time order" [ "a"; "b" ] (List.rev !log);
  check_int "clock" 20 (Sim.now sim);
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.post: negative delay") (fun () ->
      Sim.post sim ~after:(-1) (fun () -> ()))

let test_sim_run_n () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Sim.post sim ~after:(i * 10) (fun () -> incr count)
  done;
  check_int "first batch" 3 (Sim.run_n sim 3);
  check_int "three fired" 3 !count;
  check_int "clock at third event" 30 (Sim.now sim);
  check_int "rest" 7 (Sim.run_n sim 100);
  check_int "all fired" 10 !count;
  check_int "empty drain" 0 (Sim.run_n sim 5);
  Alcotest.check_raises "negative count"
    (Invalid_argument "Sim.run_n: negative count") (fun () ->
      ignore (Sim.run_n sim (-1)))

(* Drives schedule/cancel/partial-drain churn through the slot arena and
   checks the observable firing order against a sorted-list model.  The
   cancel arm deliberately re-cancels and holds stale handles across
   slot reuse: a handle outliving its slot must never affect the arena's
   new occupant. *)
let prop_sim_arena_model =
  QCheck.Test.make ~count:200
    ~name:"sim slot arena matches sorted-list model"
    QCheck.(list (pair (int_range 0 50) (int_range 0 5)))
    (fun ops ->
      let sim = Sim.create () in
      let fired = ref [] in
      let expect = ref [] in
      let handles = ref [] in
      let model = ref [] in
      (* live (at, seq, id) *)
      let now = ref 0 in
      let next_seq = ref 0 and next_id = ref 0 in
      let ok = ref true in
      let pop_min () =
        match List.sort compare !model with
        | [] -> None
        | (at, _, id) :: rest ->
            model := rest;
            now := at;
            Some id
      in
      List.iter
        (fun (d, action) ->
          if action <= 3 then begin
            let id = !next_id and s = !next_seq in
            incr next_id;
            incr next_seq;
            let h = Sim.schedule sim ~after:d (fun () -> fired := id :: !fired) in
            handles := (id, h) :: !handles;
            model := (!now + d, s, id) :: !model
          end
          else if action = 4 then begin
            match !handles with
            | [] -> ()
            | hs ->
                let id, h = List.nth hs (d mod List.length hs) in
                Sim.cancel h;
                model := List.filter (fun (_, _, i) -> i <> id) !model
          end
          else begin
            let k = d mod 4 in
            let fired_n = Sim.run_n sim k in
            let model_n = ref 0 in
            for _ = 1 to k do
              match pop_min () with
              | Some id ->
                  expect := id :: !expect;
                  incr model_n
              | None -> ()
            done;
            if fired_n <> !model_n then ok := false
          end;
          if Sim.pending sim <> List.length !model then ok := false)
        ops;
      Sim.run sim;
      let rec drain () =
        match pop_min () with
        | Some id ->
            expect := id :: !expect;
            drain ()
        | None -> ()
      in
      drain ();
      !ok && Sim.pending sim = 0 && List.rev !fired = List.rev !expect)

let test_sim_past_raises () =
  let sim = Sim.create () in
  ignore
    (Sim.schedule sim ~after:10 (fun () ->
         match Sim.schedule_at sim ~at:5 (fun () -> ()) with
         | _ -> Alcotest.fail "expected Invalid_argument"
         | exception Invalid_argument _ -> ()));
  Sim.run sim

(* ------------------------------------------------------------------ *)
(* Process *)

let test_process_delay () =
  let sim = Sim.create () in
  let times = ref [] in
  Process.spawn sim (fun () ->
      Process.delay 10;
      times := Sim.now sim :: !times;
      Process.delay 15;
      times := Sim.now sim :: !times);
  Sim.run sim;
  Alcotest.(check (list int)) "delays accumulate" [ 10; 25 ] (List.rev !times)

let test_process_fork () =
  let sim = Sim.create () in
  let log = ref [] in
  Process.spawn sim (fun () ->
      Process.fork (fun () ->
          Process.delay 5;
          log := ("child", Sim.now sim) :: !log);
      log := ("parent-continues", Sim.now sim) :: !log;
      Process.delay 10;
      log := ("parent-done", Sim.now sim) :: !log);
  Sim.run sim;
  Alcotest.(check (list (pair string int)))
    "interleaving"
    [ ("parent-continues", 0); ("child", 5); ("parent-done", 10) ]
    (List.rev !log)

let test_process_await_wake () =
  let sim = Sim.create () in
  let slot = ref None in
  let woke_at = ref (-1) in
  Process.spawn sim (fun () ->
      let v = Process.await (fun resume -> slot := Some resume) in
      woke_at := Sim.now sim + v);
  ignore
    (Sim.schedule sim ~after:42 (fun () ->
         match !slot with Some r -> r 8 | None -> assert false));
  Sim.run sim;
  check_int "woken with value at time" 50 !woke_at

let test_process_double_resume_raises () =
  let sim = Sim.create () in
  let slot = ref None in
  Process.spawn sim (fun () ->
      let () = Process.await (fun resume -> slot := Some resume) in
      ());
  ignore
    (Sim.schedule sim ~after:1 (fun () ->
         let r = Option.get !slot in
         r ();
         match r () with
         | () -> Alcotest.fail "second resume should raise"
         | exception Invalid_argument _ -> ()));
  Sim.run sim

(* ------------------------------------------------------------------ *)
(* Ivar / Mailbox / Semaphore *)

let test_ivar_blocks_until_filled () =
  let sim = Sim.create () in
  let iv = Ivar.create () in
  let got = ref 0 in
  Process.spawn sim (fun () -> got := Ivar.read iv);
  Process.spawn sim ~delay:7 (fun () -> Ivar.fill iv 99);
  Sim.run sim;
  check_int "value" 99 !got;
  check_bool "filled" true (Ivar.is_filled iv);
  Alcotest.check_raises "double fill"
    (Invalid_argument "Ivar.fill: already filled") (fun () -> Ivar.fill iv 1)

let test_ivar_read_after_fill () =
  let sim = Sim.create () in
  let iv = Ivar.create () in
  Ivar.fill iv "x";
  let got = ref "" in
  Process.spawn sim (fun () -> got := Ivar.read iv);
  Sim.run sim;
  Alcotest.(check string) "instant read" "x" !got

let test_mailbox_fifo () =
  let sim = Sim.create () in
  let mb = Mailbox.create () in
  let got = ref [] in
  Process.spawn sim (fun () ->
      for _ = 1 to 3 do
        got := Mailbox.recv mb :: !got
      done);
  Process.spawn sim ~delay:5 (fun () ->
      Mailbox.send mb 1;
      Mailbox.send mb 2;
      Mailbox.send mb 3);
  Sim.run sim;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_queues_when_no_receiver () =
  let sim = Sim.create () in
  let mb = Mailbox.create () in
  Mailbox.send mb "a";
  check_int "queued" 1 (Mailbox.length mb);
  Alcotest.(check (option string)) "try_recv" (Some "a") (Mailbox.try_recv mb);
  Alcotest.(check (option string)) "empty" None (Mailbox.try_recv mb);
  ignore sim

let test_semaphore_limits_concurrency () =
  let sim = Sim.create () in
  let sem = Semaphore.create 2 in
  let active = ref 0 and peak = ref 0 in
  for _ = 1 to 6 do
    Process.spawn sim (fun () ->
        Semaphore.acquire sem;
        incr active;
        if !active > !peak then peak := !active;
        Process.delay 10;
        decr active;
        Semaphore.release sem)
  done;
  Sim.run sim;
  check_int "peak concurrency" 2 !peak;
  check_int "all released" 2 (Semaphore.available sem)

let test_semaphore_fifo_no_starvation () =
  let sim = Sim.create () in
  let sem = Semaphore.create 0 in
  let log = ref [] in
  Process.spawn sim (fun () ->
      Semaphore.acquire ~n:3 sem;
      log := "big" :: !log);
  Process.spawn sim (fun () ->
      Semaphore.acquire ~n:1 sem;
      log := "small" :: !log);
  Process.spawn sim ~delay:5 (fun () -> Semaphore.release ~n:4 sem);
  Sim.run sim;
  Alcotest.(check (list string))
    "big request at head served first" [ "big"; "small" ] (List.rev !log)

(* ------------------------------------------------------------------ *)
(* Resource / Bus *)

let test_resource_serializes () =
  let sim = Sim.create () in
  let r = Resource.create sim ~name:"cpu" in
  let ends = ref [] in
  for i = 1 to 3 do
    Process.spawn sim (fun () ->
        Resource.use r 10;
        ends := (i, Sim.now sim) :: !ends)
  done;
  Sim.run sim;
  Alcotest.(check (list (pair int int)))
    "fcfs service" [ (1, 10); (2, 20); (3, 30) ] (List.rev !ends);
  check_int "busy time" 30 (Resource.busy_time r);
  check_int "grants" 3 (Resource.grants r)

let test_resource_priority () =
  let sim = Sim.create () in
  let r = Resource.create sim ~name:"cpu" in
  let log = ref [] in
  Process.spawn sim (fun () ->
      Resource.use r 10;
      log := "holder" :: !log);
  (* Both queue while the holder runs; high must win despite arriving last. *)
  Process.spawn sim ~delay:1 (fun () ->
      Resource.use ~priority:`Low r 5;
      log := "low" :: !log);
  Process.spawn sim ~delay:2 (fun () ->
      Resource.use ~priority:`High r 5;
      log := "high" :: !log);
  Sim.run sim;
  Alcotest.(check (list string))
    "high priority wins" [ "holder"; "high"; "low" ] (List.rev !log)

let test_resource_utilization () =
  let sim = Sim.create () in
  let r = Resource.create sim ~name:"cpu" in
  Process.spawn sim (fun () -> Resource.use r 25);
  ignore (Sim.schedule sim ~after:100 (fun () -> ()));
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "25% busy" 0.25 (Resource.utilization r ~since:0)

let test_bus_transfer_time () =
  let sim = Sim.create () in
  let bus =
    Bus.create sim ~name:"pci" ~bytes_per_s:132e6 ~efficiency:0.5
      ~setup:(Time.ns 1000) ()
  in
  (* 66 MB/s effective: 6600 bytes -> 100us + 1us setup *)
  check_int "time" (Time.us 101.) (Bus.transfer_time bus 6600);
  let done_at = ref 0 in
  Process.spawn sim (fun () ->
      Bus.transfer bus 6600;
      done_at := Sim.now sim);
  Sim.run sim;
  check_int "blocking transfer" (Time.us 101.) !done_at;
  check_int "accounting" 6600 (Bus.bytes_moved bus)

let test_bus_contention () =
  let sim = Sim.create () in
  let bus = Bus.create sim ~name:"mem" ~bytes_per_s:1e9 () in
  let ends = ref [] in
  for _ = 1 to 2 do
    Process.spawn sim (fun () ->
        Bus.transfer bus 1_000_000;
        ends := Sim.now sim :: !ends)
  done;
  Sim.run sim;
  Alcotest.(check (list int))
    "serialized transfers" [ Time.ms 1.; Time.ms 2. ]
    (List.sort compare !ends)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let child = Rng.split a in
  (* The child stream must differ from the parent's continued stream. *)
  let xs = List.init 10 (fun _ -> Rng.bits64 a) in
  let ys = List.init 10 (fun _ -> Rng.bits64 child) in
  check_bool "distinct" true (xs <> ys)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~count:500 ~name:"Rng.int within bounds"
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_rng_exponential_positive =
  QCheck.Test.make ~count:200 ~name:"Rng.exponential positive"
    QCheck.(pair small_int (float_range 0.001 1000.))
    (fun (seed, mean) ->
      let r = Rng.create ~seed in
      Rng.exponential r ~mean >= 0.)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_summary () =
  let s = Stats.Summary.create "lat" in
  List.iter (Stats.Summary.add s) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 4. (Stats.Summary.max s);
  Alcotest.(check (float 1e-6)) "sd" 1.2909944487 (Stats.Summary.stddev s)

let test_histogram_percentile () =
  let h = Stats.Histogram.create "h" in
  for v = 1 to 100 do
    Stats.Histogram.add h v
  done;
  check_int "count" 100 (Stats.Histogram.count h);
  (* p50 of 1..100 lies in the bucket with upper bound 64 *)
  check_int "p50 bucket" 64 (Stats.Histogram.percentile h 50.);
  check_int "p100 bucket" 128 (Stats.Histogram.percentile h 100.)

let test_series () =
  let s = Stats.Series.create ~name:"bw" in
  Stats.Series.add s ~x:1. ~y:10.;
  Stats.Series.add s ~x:3. ~y:30.;
  Alcotest.(check (option (float 1e-9))) "exact" (Some 10.)
    (Stats.Series.y_at s ~x:1.);
  Alcotest.(check (option (float 1e-9))) "interp" (Some 20.)
    (Stats.Series.interpolate s ~x:2.);
  Alcotest.(check (float 1e-9)) "max" 30. (Stats.Series.max_y s);
  (* y_at tolerates float-arithmetic noise in x but not a different point *)
  Stats.Series.add s ~x:0.3 ~y:99.;
  Alcotest.(check (option (float 1e-9))) "fp-noise x still matches" (Some 99.)
    (Stats.Series.y_at s ~x:(0.1 +. 0.2));
  Alcotest.(check (option (float 1e-9))) "nearby x misses" None
    (Stats.Series.y_at s ~x:0.300001)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_spans () =
  let sim = Sim.create () in
  let tr = Trace.create sim in
  Process.spawn sim (fun () ->
      Trace.run tr "stage-a" (fun () -> Process.delay 10);
      Trace.run tr "stage-b" (fun () -> Process.delay 5);
      Trace.run tr "stage-a" (fun () -> Process.delay 3));
  Sim.run sim;
  Alcotest.(check (option int)) "a total" (Some 13)
    (Trace.duration tr "stage-a");
  Alcotest.(check (option int)) "b total" (Some 5) (Trace.duration tr "stage-b");
  Alcotest.(check (option int)) "missing" None (Trace.duration tr "nope");
  check_int "span count" 3 (List.length (Trace.spans tr))

let test_trace_disabled () =
  let sim = Sim.create () in
  let tr = Trace.create sim in
  Trace.set_enabled tr false;
  Trace.mark tr "x";
  check_int "nothing recorded" 0 (List.length (Trace.spans tr))

(* ------------------------------------------------------------------ *)
(* Units *)

let test_units () =
  Alcotest.(check (float 1e-6)) "1 Gbit/s in B/s" 125e6 (Units.gbit_per_s 1.);
  Alcotest.(check (float 1e-6)) "round trip" 600.
    (Units.to_mbit_per_s ~bytes_per_s:(Units.mbit_per_s 600.));
  Alcotest.(check (float 1e-6)) "measured bw" 800.
    (Units.bandwidth_mbps ~bytes:100_000 ~span:(Time.ms 1.));
  check_int "kib" 4096 (Units.kib 4)

let test_process_nested_forks () =
  let sim = Sim.create () in
  let count = ref 0 in
  Process.spawn sim (fun () ->
      Process.fork (fun () ->
          Process.fork (fun () ->
              Process.delay 5;
              incr count);
          incr count);
      incr count);
  Sim.run sim;
  check_int "all three ran" 3 !count

let test_resource_use_f_releases_on_exception () =
  let sim = Sim.create () in
  let r = Resource.create sim ~name:"x" in
  let second_ran = ref false in
  Process.spawn sim (fun () ->
      match Resource.use_f r (fun () -> failwith "boom") with
      | () -> ()
      | exception Failure _ -> ());
  Process.spawn sim ~delay:1 (fun () ->
      Resource.use r 5;
      second_ran := true);
  Sim.run sim;
  check_bool "resource released after raise" true !second_ran;
  check_bool "not busy" false (Resource.is_busy r)

let test_semaphore_try_acquire_respects_queue () =
  let sim = Sim.create () in
  let sem = Semaphore.create 1 in
  let blocked_got_it = ref false in
  Process.spawn sim (fun () ->
      Semaphore.acquire ~n:1 sem;
      Process.delay 10;
      Semaphore.release sem);
  Process.spawn sim ~delay:1 (fun () ->
      Semaphore.acquire sem;
      blocked_got_it := true;
      Semaphore.release sem);
  Process.spawn sim ~delay:2 (fun () ->
      (* must NOT jump the queue in front of the blocked waiter *)
      check_bool "try_acquire refuses while waiters exist" false
        (Semaphore.try_acquire sem));
  Sim.run sim;
  check_bool "fifo waiter served" true !blocked_got_it

let test_trace_records_on_exception () =
  let sim = Sim.create () in
  let tr = Trace.create sim in
  Process.spawn sim (fun () ->
      match Trace.run tr "failing" (fun () -> failwith "x") with
      | () -> ()
      | exception Failure _ -> ());
  Sim.run sim;
  check_int "span recorded despite raise" 1 (List.length (Trace.spans tr))

let test_histogram_empty () =
  let h = Stats.Histogram.create "empty" in
  check_int "p99 of empty" 0 (Stats.Histogram.percentile h 99.)

let test_mailbox_competing_receivers_fifo () =
  let sim = Sim.create () in
  let mb = Mailbox.create () in
  let order = ref [] in
  for i = 1 to 2 do
    Process.spawn sim (fun () ->
        let v = Mailbox.recv mb in
        order := (i, v) :: !order)
  done;
  Process.spawn sim ~delay:5 (fun () ->
      check_int "two waiters" 2 (Mailbox.waiters mb);
      Mailbox.send mb "a";
      Mailbox.send mb "b");
  Sim.run sim;
  Alcotest.(check (list (pair int string)))
    "receivers served in arrival order"
    [ (1, "a"); (2, "b") ]
    (List.rev !order)

let prop_rng_pareto_support =
  QCheck.Test.make ~count:200 ~name:"Rng.pareto never below scale"
    QCheck.(triple small_int (float_range 1.1 5.) (float_range 1. 1000.))
    (fun (seed, shape, scale) ->
      let r = Rng.create ~seed in
      Rng.pareto r ~shape ~scale >= scale)

let prop_arrival_streams_seed_deterministic =
  (* a mixed Poisson/Pareto draw stream is a pure function of the seed:
     equal seeds replay byte-identically, different seeds diverge *)
  QCheck.Test.make ~count:100 ~name:"arrival streams keyed by seed"
    QCheck.(small_int)
    (fun seed ->
      let draw r =
        List.init 64 (fun i ->
            if i mod 2 = 0 then Rng.exponential r ~mean:25_000.
            else Rng.pareto r ~shape:2.5 ~scale:4_000.)
      in
      let a = draw (Rng.create ~seed) in
      let b = draw (Rng.create ~seed) in
      let c = draw (Rng.create ~seed:(seed + 1)) in
      a = b && a <> c)

let test_rng_means_hit_analytic () =
  (* 20k draws each; generous tolerances keep this deterministic-seed
     test far from flakiness while still catching a broken transform *)
  let r = Rng.create ~seed:42 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:100.
  done;
  let mean = !sum /. float_of_int n in
  check_bool "exponential mean near 100" true (mean > 95. && mean < 105.);
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.pareto r ~shape:2.5 ~scale:10.
  done;
  (* analytic mean: shape*scale/(shape-1) = 16.667 *)
  let mean = !sum /. float_of_int n in
  check_bool "pareto mean near 16.7" true (mean > 15.5 && mean < 18.)

let test_rng_pareto_validation () =
  let r = Rng.create ~seed:1 in
  Alcotest.check_raises "shape zero" (Invalid_argument "Rng.pareto: shape <= 0")
    (fun () -> ignore (Rng.pareto r ~shape:0. ~scale:1.));
  Alcotest.check_raises "scale zero" (Invalid_argument "Rng.pareto: scale <= 0")
    (fun () -> ignore (Rng.pareto r ~shape:2. ~scale:0.))

let prop_semaphore_never_negative =
  QCheck.Test.make ~count:100 ~name:"semaphore conserves permits"
    QCheck.(pair (int_range 1 5) (list (int_range 1 3)))
    (fun (permits, needs) ->
      let sim = Sim.create () in
      let sem = Semaphore.create permits in
      List.iter
        (fun n ->
          let n = min n permits in
          Process.spawn sim (fun () ->
              Semaphore.acquire ~n sem;
              Process.delay 1;
              Semaphore.release ~n sem))
        needs;
      Sim.run sim;
      Semaphore.available sem = permits)

let qprops = List.map QCheck_alcotest.to_alcotest
    [ prop_heap_sorts; prop_heap_interleaved; prop_heap_fifo_stable;
      prop_sim_arena_model; prop_rng_int_in_bounds;
      prop_rng_exponential_positive; prop_rng_pareto_support;
      prop_arrival_streams_seed_deterministic;
      prop_semaphore_never_negative ]

let suite =
  [
    ("time constructors", `Quick, test_time_constructors);
    ("time rates", `Quick, test_time_rates);
    ("time invalid args", `Quick, test_time_invalid);
    ("heap ordering", `Quick, test_heap_order);
    ("heap empty", `Quick, test_heap_empty);
    ("heap pop releases last element", `Quick, test_heap_pop_last_releases);
    ("sim event ordering", `Quick, test_sim_ordering);
    ("sim same-instant fifo", `Quick, test_sim_fifo_same_instant);
    ("sim cancel", `Quick, test_sim_cancel);
    ("sim nested schedule", `Quick, test_sim_nested_schedule);
    ("sim run_until", `Quick, test_sim_run_until);
    ("sim pending tracks cancel", `Quick, test_sim_pending_counts_cancel);
    ("sim post", `Quick, test_sim_post);
    ("sim run_n", `Quick, test_sim_run_n);
    ("sim schedule in past", `Quick, test_sim_past_raises);
    ("process delay", `Quick, test_process_delay);
    ("process fork", `Quick, test_process_fork);
    ("process await/wake", `Quick, test_process_await_wake);
    ("process double resume", `Quick, test_process_double_resume_raises);
    ("ivar blocking", `Quick, test_ivar_blocks_until_filled);
    ("ivar instant read", `Quick, test_ivar_read_after_fill);
    ("mailbox fifo", `Quick, test_mailbox_fifo);
    ("mailbox queue", `Quick, test_mailbox_queues_when_no_receiver);
    ("semaphore concurrency", `Quick, test_semaphore_limits_concurrency);
    ("semaphore fifo", `Quick, test_semaphore_fifo_no_starvation);
    ("resource serializes", `Quick, test_resource_serializes);
    ("resource priority", `Quick, test_resource_priority);
    ("resource utilization", `Quick, test_resource_utilization);
    ("bus transfer time", `Quick, test_bus_transfer_time);
    ("bus contention", `Quick, test_bus_contention);
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng split", `Quick, test_rng_split_independent);
    ("rng analytic means", `Quick, test_rng_means_hit_analytic);
    ("rng pareto validation", `Quick, test_rng_pareto_validation);
    ("stats summary", `Quick, test_summary);
    ("stats histogram", `Quick, test_histogram_percentile);
    ("stats series", `Quick, test_series);
    ("trace spans", `Quick, test_trace_spans);
    ("trace disabled", `Quick, test_trace_disabled);
    ("units", `Quick, test_units);
    ("process nested forks", `Quick, test_process_nested_forks);
    ("resource exception safety", `Quick, test_resource_use_f_releases_on_exception);
    ("semaphore no queue-jump", `Quick, test_semaphore_try_acquire_respects_queue);
    ("trace on exception", `Quick, test_trace_records_on_exception);
    ("histogram empty", `Quick, test_histogram_empty);
    ("mailbox receiver order", `Quick, test_mailbox_competing_receivers_fifo);
  ]
  @ List.map (fun (n, s, f) -> (n, s, f)) qprops
