(* Tests for the OS substrate: CPU, syscalls, interrupts, bottom halves,
   scheduler wakeups, sk_buffs, kernel memory, timers, driver. *)

open Engine
open Hw
open Os_model

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let rig () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~name:"cpu0" () in
  (sim, cpu)

(* ------------------------------------------------------------------ *)
(* Cpu *)

let test_cpu_work_and_utilization () =
  let sim, cpu = rig () in
  Process.spawn sim (fun () -> Cpu.work cpu (Time.us 30.));
  ignore (Sim.schedule sim ~after:(Time.us 100.) (fun () -> ()));
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "30%" 0.3 (Cpu.utilization cpu ~since:0)

let test_cpu_copy_charges_membus () =
  let sim, cpu = rig () in
  let membus = Membus.create sim () in
  let finished = ref 0 in
  Process.spawn sim (fun () ->
      Cpu.copy cpu ~membus 3_000_000;
      finished := Sim.now sim);
  Sim.run sim;
  (* 3 MB at 300 MB/s = 10 ms of CPU *)
  check_int "cpu-bound copy" (Time.ms 10.) !finished;
  check_int "membus crossed twice" 6_000_000 (Bus.bytes_moved membus)

let test_cpu_interrupt_priority_beats_task () =
  let sim, cpu = rig () in
  let order = ref [] in
  Process.spawn sim (fun () ->
      Cpu.work cpu (Time.us 10.);
      order := "holder" :: !order);
  Process.spawn sim ~delay:1 (fun () ->
      Cpu.work cpu (Time.us 5.);
      order := "task" :: !order);
  Process.spawn sim ~delay:2 (fun () ->
      Cpu.work ~priority:`High cpu (Time.us 5.);
      order := "isr" :: !order);
  Sim.run sim;
  Alcotest.(check (list string))
    "isr preempts queued task" [ "holder"; "isr"; "task" ] (List.rev !order)

(* ------------------------------------------------------------------ *)
(* Syscall *)

let test_syscall_costs () =
  let sim, cpu = rig () in
  let sc = Syscall.create cpu in
  let finished = ref 0 in
  Process.spawn sim (fun () ->
      Syscall.wrap sc (fun () -> Process.delay (Time.us 1.));
      finished := Sim.now sim);
  Sim.run sim;
  check_int "0.35 + 1 + 0.30 us" (Time.ns 1650) !finished;
  check_int "round trip" (Time.ns 650) (Syscall.round_trip sc);
  check_int "counted" 1 (Syscall.calls sc)

let test_syscall_exit_paid_on_raise () =
  let sim, cpu = rig () in
  let sc = Syscall.create cpu in
  let leave_seen = ref 0 in
  Process.spawn sim (fun () ->
      (match Syscall.wrap sc (fun () -> failwith "boom") with
      | () -> Alcotest.fail "expected exception"
      | exception Failure _ -> ());
      leave_seen := Sim.now sim);
  Sim.run sim;
  check_int "enter+leave charged" (Time.ns 650) !leave_seen

(* ------------------------------------------------------------------ *)
(* Interrupt / Bottom half *)

let test_interrupt_dispatch_latency () =
  let sim, cpu = rig () in
  let intr = Interrupt.create sim ~cpu ~dispatch_latency:(Time.us 6.) () in
  let ran_at = ref 0 in
  Interrupt.raise_irq intr ~isr:(fun () ->
      Cpu.work ~priority:`High cpu (Time.us 2.);
      ran_at := Sim.now sim);
  Sim.run sim;
  check_int "6us dispatch + 2us isr" (Time.us 8.) !ran_at;
  check_int "delivered" 1 (Interrupt.irqs_delivered intr);
  check_int "isr accounted" (Time.us 2.) (Interrupt.time_in_isr intr)

let test_bottom_half_runs_after_isr () =
  let sim, cpu = rig () in
  let bh = Bottom_half.create sim ~cpu ~dispatch_latency:(Time.us 1.5) () in
  let log = ref [] in
  Process.spawn sim (fun () ->
      Bottom_half.schedule bh (fun () ->
          Cpu.work ~priority:`High cpu (Time.us 5.);
          log := ("bh", Sim.now sim) :: !log);
      log := ("isr-done", Sim.now sim) :: !log);
  Sim.run sim;
  Alcotest.(check (list (pair string int)))
    "deferred"
    [ ("isr-done", 0); ("bh", Time.us 6.5) ]
    (List.rev !log);
  check_int "executed" 1 (Bottom_half.executed bh)

let test_bottom_half_batches_fifo () =
  let sim, cpu = rig () in
  let bh = Bottom_half.create sim ~cpu () in
  let log = ref [] in
  Process.spawn sim (fun () ->
      for i = 1 to 3 do
        Bottom_half.schedule bh (fun () ->
            Cpu.work ~priority:`High cpu (Time.us 1.);
            log := i :: !log)
      done);
  Sim.run sim;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !log)

(* ------------------------------------------------------------------ *)
(* Sched *)

let test_sched_wait_then_wake () =
  let sim, cpu = rig () in
  let sched = Sched.create sim ~cpu ~switch_cost:(Time.us 1.) () in
  let slot = Sched.slot sched in
  let resumed_at = ref 0 in
  Process.spawn sim (fun () ->
      Sched.wait slot;
      resumed_at := Sim.now sim);
  Process.spawn sim ~delay:(Time.us 10.) (fun () -> Sched.wake slot);
  Sim.run sim;
  check_int "wake at 10us + 1us switch" (Time.us 11.) !resumed_at;
  check_int "one switch" 1 (Sched.switches sched)

let test_sched_wake_before_wait () =
  let sim, cpu = rig () in
  let sched = Sched.create sim ~cpu () in
  let slot = Sched.slot sched in
  let resumed = ref false in
  Process.spawn sim (fun () -> Sched.wake slot);
  Process.spawn sim ~delay:(Time.us 5.) (fun () ->
      Sched.wait slot;
      resumed := true);
  Sim.run sim;
  check_bool "no deadlock" true !resumed

let test_sched_double_wake_noop () =
  let sim, cpu = rig () in
  let sched = Sched.create sim ~cpu () in
  let slot = Sched.slot sched in
  Process.spawn sim (fun () ->
      Sched.wake slot;
      Sched.wake slot);
  Sim.run sim;
  check_int "single switch" 1 (Sched.switches sched)

(* ------------------------------------------------------------------ *)
(* Skbuff / Kmem *)

let test_skbuff_shapes () =
  let zc = Skbuff.of_user ~header_bytes:26 1000 in
  check_int "data" 1000 (Skbuff.data_bytes zc);
  check_int "total" 1026 (Skbuff.total_bytes zc);
  check_int "user bytes" 1000 (Skbuff.user_bytes zc);
  check_bool "zero copy" true (Skbuff.is_zero_copy zc);
  let staged = Skbuff.of_kernel ~header_bytes:26 1000 in
  check_bool "staged not zero copy" false (Skbuff.is_zero_copy staged);
  check_int "no user bytes" 0 (Skbuff.user_bytes staged);
  let sg =
    Skbuff.create ~header_bytes:14
      [
        { Skbuff.region = Kernel_memory; bytes = 12 };
        { Skbuff.region = User_memory; bytes = 500 };
      ]
  in
  check_int "scatter-gather total" 526 (Skbuff.total_bytes sg)

let test_kmem_accounting () =
  let pool = Kmem.create ~name:"testpool" ~capacity:1000 () in
  check_bool "alloc ok" true (Kmem.try_alloc pool 600);
  check_bool "overcommit refused" false (Kmem.try_alloc pool 600);
  check_int "failed count" 1 (Kmem.failed_allocs pool);
  Kmem.free pool 600;
  check_bool "after free" true (Kmem.try_alloc pool 1000);
  check_int "high water" 1000 (Kmem.high_water pool);
  Alcotest.check_raises "over-free"
    (Invalid_argument
       "Kmem.free(testpool): freeing 2000B but only 1000B outstanding \
        (capacity 1000B)")
    (fun () -> Kmem.free pool 2000);
  Alcotest.check_raises "non-positive free"
    (Invalid_argument
       "Kmem.free(testpool): non-positive size 0B (1000B outstanding of \
        1000B)")
    (fun () -> Kmem.free pool 0);
  Alcotest.check_raises "non-positive alloc"
    (Invalid_argument
       "Kmem.try_alloc(testpool): non-positive size -5B (1000B outstanding \
        of 1000B)")
    (fun () -> ignore (Kmem.try_alloc pool (-5)))

(* ------------------------------------------------------------------ *)
(* Ktimer *)

let test_kmem_watermark_levels () =
  let pool =
    Kmem.create ~name:"wm" ~capacity:1000 ~soft_mark:500 ~hard_mark:800 ()
  in
  let level_name p =
    match Kmem.level p with `Normal -> "normal" | `Soft -> "soft" | `Hard -> "hard"
  in
  Alcotest.(check string) "empty pool" "normal" (level_name pool);
  check_bool "alloc to just under soft" true (Kmem.try_alloc pool 499);
  Alcotest.(check string) "below soft" "normal" (level_name pool);
  check_bool "cross soft" true (Kmem.try_alloc pool 1);
  Alcotest.(check string) "at soft mark" "soft" (level_name pool);
  check_bool "up to just under hard" true (Kmem.try_alloc pool 299);
  Alcotest.(check string) "below hard" "soft" (level_name pool);
  check_bool "cross hard" true (Kmem.try_alloc pool 1);
  Alcotest.(check string) "at hard mark" "hard" (level_name pool);
  (* the watermark signals, it does not gate: allocation at and past the
     hard mark still succeeds while capacity remains *)
  check_bool "alloc at hard watermark succeeds" true (Kmem.try_alloc pool 200);
  check_int "no failures yet" 0 (Kmem.failed_allocs pool);
  check_bool "capacity still refuses" false (Kmem.try_alloc pool 1);
  check_int "exhaustion counted" 1 (Kmem.failed_allocs pool);
  (* recovery: frees walk the levels back down *)
  Kmem.free pool 300;
  Alcotest.(check string) "back to soft" "soft" (level_name pool);
  Kmem.free pool 600;
  Alcotest.(check string) "back to normal" "normal" (level_name pool);
  check_bool "pool usable again" true (Kmem.try_alloc pool 900);
  Kmem.free pool 1000;
  check_int "balanced" 0 (Kmem.in_use pool);
  (* construction validates the ordering 0 < soft <= hard <= capacity *)
  let rejected ~soft_mark ~hard_mark =
    match Kmem.create ~capacity:1000 ~soft_mark ~hard_mark () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "soft > hard rejected" true (rejected ~soft_mark:900 ~hard_mark:800);
  check_bool "hard > capacity rejected" true
    (rejected ~soft_mark:500 ~hard_mark:1001);
  check_bool "non-positive soft rejected" true
    (rejected ~soft_mark:0 ~hard_mark:800)

let test_ktimer_fire_cancel_restart () =
  let sim = Sim.create () in
  let fired = ref [] in
  let t1 = Ktimer.after sim (Time.us 10.) (fun () -> fired := 1 :: !fired) in
  let t2 = Ktimer.after sim (Time.us 10.) (fun () -> fired := 2 :: !fired) in
  Ktimer.cancel t2;
  check_bool "t1 pending" true (Ktimer.is_pending t1);
  check_bool "t2 cancelled" false (Ktimer.is_pending t2);
  Sim.run sim;
  Alcotest.(check (list int)) "only t1" [ 1 ] !fired;
  Ktimer.restart t2 (Time.us 5.);
  Sim.run sim;
  Alcotest.(check (list int)) "restarted fires" [ 2; 1 ] !fired

(* ------------------------------------------------------------------ *)
(* Driver (full host receive path) *)

let driver_rig ?params () =
  let sim = Sim.create () in
  let cpu_a = Cpu.create sim ~name:"cpuA" () in
  let cpu_b = Cpu.create sim ~name:"cpuB" () in
  let pci_a = Pci.create sim () and pci_b = Pci.create sim () in
  let mem_a = Membus.create sim () and mem_b = Membus.create sim () in
  let nic_a =
    Nic.create sim ~name:"nicA" ~mtu:1500 ~pci:pci_a ~membus:mem_a
      ~coalesce:Nic.no_coalesce ()
  in
  let nic_b =
    Nic.create sim ~name:"nicB" ~mtu:1500 ~pci:pci_b ~membus:mem_b
      ~coalesce:Nic.no_coalesce ()
  in
  let ab = Link.create sim ~name:"ab" ~bits_per_s:1e9 () in
  Nic.attach_uplink nic_a ab;
  Link.connect ab (Nic.rx_from_wire nic_b);
  let intr_b = Interrupt.create sim ~cpu:cpu_b () in
  let bh_b = Bottom_half.create sim ~cpu:cpu_b () in
  let intr_a = Interrupt.create sim ~cpu:cpu_a () in
  let bh_a = Bottom_half.create sim ~cpu:cpu_a () in
  let drv_a = Driver.create sim ~cpu:cpu_a ~intr:intr_a ~bh:bh_a ~nic:nic_a
      ?params () in
  let drv_b = Driver.create sim ~cpu:cpu_b ~intr:intr_b ~bh:bh_b ~nic:nic_b
      ?params () in
  (sim, cpu_a, drv_a, drv_b)

let test_driver_end_to_end_upcall () =
  let sim, _, drv_a, drv_b = driver_rig () in
  let received = ref [] in
  Driver.set_rx_upcall drv_b (fun desc ->
      received := desc.Nic.rx_frame.Eth_frame.payload_bytes :: !received);
  Process.spawn sim (fun () ->
      let ok =
        Driver.transmit drv_a
          ~skb:(Skbuff.of_user ~header_bytes:26 1000)
          ~dst:(Mac.of_node 1) ~src:(Mac.of_node 0) ~ethertype:0x88
          ~payload:(Eth_frame.Raw 1000)
          ~on_complete:(fun () -> ()) ()
      in
      check_bool "posted" true ok);
  Sim.run sim;
  Alcotest.(check (list int)) "payload delivered" [ 1026 ] !received;
  check_int "one upcall" 1 (Driver.rx_upcalls drv_b)

let test_driver_direct_mode_skips_bh () =
  let params = { Driver.default_params with rx_mode = Driver.Direct_from_isr } in
  let sim, _, drv_a, drv_b = driver_rig ~params () in
  let bh_time = ref (-1) and direct_time = ref (-1) in
  Driver.set_rx_upcall drv_b (fun _ -> direct_time := Sim.now sim);
  Process.spawn sim (fun () ->
      ignore
        (Driver.transmit drv_a
           ~skb:(Skbuff.of_user ~header_bytes:26 100)
           ~dst:(Mac.of_node 1) ~src:(Mac.of_node 0) ~ethertype:0x88
           ~payload:(Eth_frame.Raw 100)
           ~on_complete:(fun () -> ()) ()));
  Sim.run sim;
  let direct = !direct_time in
  (* Same send via the bottom-half path must deliver strictly later. *)
  let sim2, _, drv_a2, drv_b2 = driver_rig () in
  Driver.set_rx_upcall drv_b2 (fun _ -> bh_time := Sim.now sim2);
  Process.spawn sim2 (fun () ->
      ignore
        (Driver.transmit drv_a2
           ~skb:(Skbuff.of_user ~header_bytes:26 100)
           ~dst:(Mac.of_node 1) ~src:(Mac.of_node 0) ~ethertype:0x88
           ~payload:(Eth_frame.Raw 100)
           ~on_complete:(fun () -> ()) ()));
  Sim.run sim2;
  check_bool "delivered in both modes" true (direct > 0 && !bh_time > 0);
  check_bool "direct-from-isr is faster" true (direct < !bh_time)

let test_driver_batches_under_load () =
  let sim, _, drv_a, drv_b = driver_rig () in
  let upcalls = ref 0 in
  Driver.set_rx_upcall drv_b (fun _ -> incr upcalls);
  (* Small frames arrive faster than the receiver's per-frame interrupt
     service time, so interrupt masking during the ISR must batch them. *)
  Process.spawn sim (fun () ->
      for _ = 1 to 20 do
        ignore
          (Driver.transmit drv_a
             ~skb:(Skbuff.of_user ~header_bytes:26 100)
             ~dst:(Mac.of_node 1) ~src:(Mac.of_node 0) ~ethertype:0x88
             ~payload:(Eth_frame.Raw 100)
             ~on_complete:(fun () -> ()) ())
      done);
  Sim.run sim;
  check_int "all delivered" 20 !upcalls;
  (* Interrupt masking during ISR processing must batch several frames per
     interrupt: far fewer than 20 interrupts. *)
  let irqs = Nic.interrupts_raised (Driver.nic drv_b) in
  check_bool "fewer interrupts than frames" true (irqs < 20);
  check_bool "at least one interrupt" true (irqs >= 1)

(* ------------------------------------------------------------------ *)
(* NAPI-style receiver-livelock mitigation *)

let napi_params =
  {
    Driver.default_params with
    napi = true;
    napi_enter_gap = Time.us 20.;
    napi_enter_after = 2;
    napi_budget = 4;
    napi_interval = Time.us 5.;
  }

let blast drv n size =
  for _ = 1 to n do
    ignore
      (Driver.transmit drv
         ~skb:(Skbuff.of_user ~header_bytes:26 size)
         ~dst:(Mac.of_node 1) ~src:(Mac.of_node 0) ~ethertype:0x88
         ~payload:(Eth_frame.Raw size)
         ~on_complete:(fun () -> ()) ())
  done

let test_driver_napi_engages_and_exits () =
  let sim, _, drv_a, drv_b = driver_rig ~params:napi_params () in
  let upcalls = ref 0 in
  Driver.set_rx_upcall drv_b (fun _ -> incr upcalls);
  (* a storm of small frames arrives far inside the 20us hot-IRQ gap *)
  Process.spawn sim (fun () -> blast drv_a 40 100);
  Sim.run sim;
  check_int "storm fully delivered" 40 !upcalls;
  check_bool "polling engaged" true (Driver.poll_passes drv_b > 0);
  check_bool "packets moved by the poll loop" true
    (Driver.polled_packets drv_b > 0);
  (* the ring drained, so the driver handed rx back to interrupts: an even
     number of switches and not polling at quiesce *)
  check_bool "returned to interrupt mode" false (Driver.is_polling drv_b);
  check_bool "switched in and back out" true
    (Driver.poll_mode_switches drv_b >= 2
    && Driver.poll_mode_switches drv_b mod 2 = 0);
  (* mitigation bound: far fewer interrupts than frames *)
  check_bool "interrupt rate collapsed" true
    (Nic.interrupts_raised (Driver.nic drv_b) < 20)

let test_driver_napi_budget_bounds_passes () =
  let sim, _, drv_a, drv_b = driver_rig ~params:napi_params () in
  Driver.set_rx_upcall drv_b (fun _ -> ());
  (* Watch every individual poll pass: none may process more than its
     budget, whatever the ring held when the pass ran. *)
  let passes = ref [] in
  Probe.install (function
    | Probe.Poll_pass { processed; budget; _ } ->
        passes := (processed, budget) :: !passes
    | _ -> ());
  Fun.protect ~finally:Probe.uninstall (fun () ->
      Process.spawn sim (fun () -> blast drv_a 40 100);
      Sim.run sim);
  check_bool "polling ran at least one pass" true (!passes <> []);
  List.iter
    (fun (processed, budget) ->
      check_int "pass reports the configured budget"
        napi_params.Driver.napi_budget budget;
      check_bool
        (Printf.sprintf "pass within budget (%d <= %d)" processed budget)
        true
        (processed >= 0 && processed <= budget))
    !passes;
  let polled = Driver.polled_packets drv_b in
  check_int "per-pass counts add up to the polled total" polled
    (List.fold_left (fun acc (p, _) -> acc + p) 0 !passes)

let test_driver_napi_hysteresis_ignores_slow_traffic () =
  let sim, _, drv_a, drv_b = driver_rig ~params:napi_params () in
  let upcalls = ref 0 in
  Driver.set_rx_upcall drv_b (fun _ -> incr upcalls);
  (* frames spaced wider than the hot gap: interrupts are fine, polling
     must never engage *)
  Process.spawn sim (fun () ->
      for _ = 1 to 10 do
        blast drv_a 1 100;
        Process.delay (Time.us 50.)
      done);
  Sim.run sim;
  check_int "all delivered" 10 !upcalls;
  check_int "no mode switch" 0 (Driver.poll_mode_switches drv_b);
  check_int "no poll pass" 0 (Driver.poll_passes drv_b)

let suite =
  [
    ("cpu work & utilization", `Quick, test_cpu_work_and_utilization);
    ("cpu copy charges membus", `Quick, test_cpu_copy_charges_membus);
    ("cpu interrupt priority", `Quick, test_cpu_interrupt_priority_beats_task);
    ("syscall costs", `Quick, test_syscall_costs);
    ("syscall exit on raise", `Quick, test_syscall_exit_paid_on_raise);
    ("interrupt dispatch", `Quick, test_interrupt_dispatch_latency);
    ("bottom half defers", `Quick, test_bottom_half_runs_after_isr);
    ("bottom half fifo", `Quick, test_bottom_half_batches_fifo);
    ("sched wait/wake", `Quick, test_sched_wait_then_wake);
    ("sched wake before wait", `Quick, test_sched_wake_before_wait);
    ("sched double wake", `Quick, test_sched_double_wake_noop);
    ("skbuff shapes", `Quick, test_skbuff_shapes);
    ("kmem accounting", `Quick, test_kmem_accounting);
    ("kmem watermarks", `Quick, test_kmem_watermark_levels);
    ("ktimer lifecycle", `Quick, test_ktimer_fire_cancel_restart);
    ("driver end-to-end", `Quick, test_driver_end_to_end_upcall);
    ("driver direct-from-isr", `Quick, test_driver_direct_mode_skips_bh);
    ("driver batching", `Quick, test_driver_batches_under_load);
    ("driver napi engage/exit", `Quick, test_driver_napi_engages_and_exits);
    ("driver napi budget", `Quick, test_driver_napi_budget_bounds_passes);
    ("driver napi hysteresis", `Quick, test_driver_napi_hysteresis_ignores_slow_traffic);
  ]
