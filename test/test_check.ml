(* Tests for the analysis layer: heap/sim tie-break determinism hooks, the
   lifecycle sanitizer's true positives, the invariant monitors, and the
   determinism detector — including that the whole checker runs a real
   scenario clean end to end. *)

open Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Satellite: FIFO stability of the event heap under many equal keys *)

let test_heap_fifo_stability () =
  let h = Heap.create ~dummy:(0, 0) ~cmp:(fun (a, _) (b, _) -> compare a b) in
  (* 500 entries with the same key: pop order must be insertion order *)
  for i = 0 to 499 do
    Heap.push h (7, i)
  done;
  (* sprinkle earlier and later keys around them *)
  Heap.push h (9, -1);
  Heap.push h (1, -2);
  check_int "first is smallest key" (-2) (snd (Heap.pop_exn h));
  for i = 0 to 499 do
    let k, v = Heap.pop_exn h in
    check_int "equal keys stay FIFO" i v;
    check_int "key" 7 k
  done;
  check_int "largest key last" (-1) (snd (Heap.pop_exn h))

(* ------------------------------------------------------------------ *)
(* Seeded tie-break: same set of same-instant events, permuted order *)

let fire_order ?tie_break () =
  let sim = Sim.create ?tie_break () in
  let order = ref [] in
  for i = 0 to 15 do
    ignore (Sim.schedule sim ~after:100 (fun () -> order := i :: !order))
  done;
  Sim.run sim;
  List.rev !order

let test_sim_tie_break () =
  let fifo = fire_order () in
  Alcotest.(check (list int))
    "no seed: scheduling order"
    (List.init 16 Fun.id)
    fifo;
  let seeded = fire_order ~tie_break:42 () in
  Alcotest.(check (list int))
    "seeded run is a permutation"
    (List.init 16 Fun.id)
    (List.sort compare seeded);
  check_bool "seed 42 actually permutes" true (seeded <> fifo);
  Alcotest.(check (list int))
    "same seed, same order" seeded
    (fire_order ~tie_break:42 ())

(* ------------------------------------------------------------------ *)
(* Lifecycle sanitizer true positives (synthetic event streams) *)

let lifecycle_rules ?(leak_check = true) evs =
  let l = Check.Lifecycle.create ~leak_check () in
  List.iter (Check.Lifecycle.on_event l) evs;
  List.map (fun v -> v.Check.Violation.rule) (Check.Lifecycle.finish l)

let alloc id =
  Probe.Obj_alloc
    { kind = Probe.Skb; id; bytes = 1500; owner = Probe.App; where = "test" }

let free id = Probe.Obj_free { kind = Probe.Skb; id; where = "test" }

let transfer id =
  Probe.Obj_transfer
    { kind = Probe.Skb; id; owner = Probe.Driver; where = "test" }

let test_lifecycle_double_free () =
  Alcotest.(check (list string))
    "double free caught" [ "double-free" ]
    (lifecycle_rules [ alloc 1; free 1; free 1 ])

let test_lifecycle_use_after_free () =
  Alcotest.(check (list string))
    "use after free caught" [ "use-after-free" ]
    (lifecycle_rules [ alloc 2; transfer 2; free 2; transfer 2 ])

let test_lifecycle_leak () =
  Alcotest.(check (list string))
    "leak at sim end caught" [ "leak" ]
    (lifecycle_rules [ alloc 3 ]);
  Alcotest.(check (list string))
    "leak check can be waived" []
    (lifecycle_rules ~leak_check:false [ alloc 3 ])

let test_lifecycle_pool_leak () =
  Alcotest.(check (list string))
    "outstanding pool bytes caught" [ "pool-leak" ]
    (lifecycle_rules
       [ Probe.Pool_alloc { pool = "p"; bytes = 64; used = 64; capacity = 1024 } ])

let test_lifecycle_clean () =
  Alcotest.(check (list string))
    "balanced lifecycle is clean" []
    (lifecycle_rules [ alloc 4; transfer 4; free 4 ])

(* The same double-free caught through the real instrumentation: a probe
   sink sees Os.Skbuff.release called twice on a real buffer. *)
let test_skbuff_double_free_probed () =
  let l = Check.Lifecycle.create ~leak_check:false () in
  Probe.install (Check.Lifecycle.on_event l);
  Fun.protect ~finally:Probe.uninstall (fun () ->
      let skb = Os_model.Skbuff.of_kernel ~header_bytes:42 1400 in
      Os_model.Skbuff.release skb ~where:"test:first";
      Os_model.Skbuff.release skb ~where:"test:second");
  match Check.Lifecycle.finish l with
  | [ v ] ->
      Alcotest.(check string) "rule" "double-free" v.Check.Violation.rule;
      check_bool "backtrace names both code points" true
        (contains v.Check.Violation.detail "test:first"
        && contains v.Check.Violation.detail "test:second")
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

(* ------------------------------------------------------------------ *)
(* Invariant monitors *)

let monitor_hits evs =
  let monitors = Check.Invariants.create_all () in
  List.concat_map
    (fun (m : Check.Invariants.monitor) ->
      List.filter_map (fun ev -> Option.map (fun _ -> m.name) (m.on_event ~now:0 ev)) evs
      |> List.sort_uniq compare)
    monitors

let deliver seq = Probe.Chan_deliver { chan = 1; node = 0; peer = 1; seq }

let test_invariant_duplicate_delivery () =
  Alcotest.(check (list string))
    "duplicate channel delivery caught" [ "chan-deliver-in-order" ]
    (monitor_hits [ deliver 0; deliver 1; deliver 1 ]);
  Alcotest.(check (list string))
    "sequence gap caught" [ "chan-deliver-in-order" ]
    (monitor_hits [ deliver 0; deliver 2 ]);
  Alcotest.(check (list string))
    "in-order delivery clean" []
    (monitor_hits [ deliver 0; deliver 1; deliver 2 ])

let test_invariant_msg_once () =
  let msg id = Probe.Msg_deliver { node = 0; src = 1; port = 7; msg_id = id; epoch = 0 } in
  Alcotest.(check (list string))
    "duplicate app delivery caught" [ "msg-deliver-once" ]
    (monitor_hits [ msg 5; msg 5 ]);
  Alcotest.(check (list string)) "distinct ids clean" []
    (monitor_hits [ msg 5; msg 6 ])

let test_invariant_ack_monotone () =
  let ack c = Probe.Ack_tx { chan = 1; node = 0; peer = 1; cum_seq = c } in
  Alcotest.(check (list string))
    "cumulative ack regression caught" [ "ack-monotone" ]
    (monitor_hits [ ack 4; ack 2 ])

let test_invariant_window_bound () =
  let w outstanding =
    Probe.Window { chan = 1; node = 0; peer = 1; outstanding; limit = 8 }
  in
  Alcotest.(check (list string))
    "window overrun caught" [ "window-bound" ]
    (monitor_hits [ w 9 ]);
  Alcotest.(check (list string)) "full window is legal" [] (monitor_hits [ w 8 ])

let test_invariant_poll_budget () =
  let pass processed =
    Probe.Poll_pass { host = "host1"; processed; budget = 4 }
  in
  Alcotest.(check (list string))
    "budget overrun caught" [ "poll-budget" ]
    (monitor_hits [ pass 5 ]);
  Alcotest.(check (list string))
    "negative count caught" [ "poll-budget" ]
    (monitor_hits [ pass (-1) ]);
  Alcotest.(check (list string))
    "full-budget pass is legal" []
    (monitor_hits [ pass 4; pass 0 ])

let test_invariant_epoch_monotone () =
  let msg ~epoch id =
    Probe.Msg_deliver { node = 0; src = 1; port = 7; msg_id = id; epoch }
  in
  Alcotest.(check (list string))
    "stale-epoch delivery caught" [ "epoch-monotone-delivery" ]
    (monitor_hits [ msg ~epoch:2 0; msg ~epoch:1 1 ]);
  Alcotest.(check (list string))
    "epoch may only grow" []
    (monitor_hits [ msg ~epoch:0 0; msg ~epoch:1 1; msg ~epoch:1 2 ])

let test_invariant_pool_balance () =
  let palloc used bytes =
    Probe.Pool_alloc { pool = "kmem9"; bytes; used; capacity = 1024 }
  in
  let pfree used bytes = Probe.Pool_free { pool = "kmem9"; bytes; used } in
  Alcotest.(check (list string))
    "balanced alloc/free clean" []
    (monitor_hits [ palloc 64 64; palloc 96 32; pfree 32 64; pfree 0 32 ]);
  Alcotest.(check (list string))
    "reported usage drifting from the event stream caught"
    [ "pool-balance" ]
    (monitor_hits [ palloc 64 64; pfree 40 64 ]);
  Alcotest.(check (list string))
    "usage beyond capacity caught" [ "pool-balance" ]
    (monitor_hits [ palloc 1024 1024; palloc 1088 64 ])

let test_invariant_register () =
  let saved = !Check.Invariants.registry in
  Fun.protect
    ~finally:(fun () -> Check.Invariants.registry := saved)
    (fun () ->
      Check.Invariants.register (fun () ->
          {
            Check.Invariants.name = "no-ivar-at-all";
            on_event =
              (fun ~now:_ ev ->
                match ev with
                | Probe.Ivar_fill _ -> Some "ivar use forbidden"
                | _ -> None);
          });
      Alcotest.(check (list string))
        "registered monitor runs" [ "no-ivar-at-all" ]
        (monitor_hits [ Probe.Ivar_fill { id = 1 } ]))

(* ------------------------------------------------------------------ *)
(* Determinism trace hash *)

let hash_of evs =
  let d = Check.Determinism.create () in
  List.iter (Check.Determinism.on_event d) evs;
  Check.Determinism.result d

let test_determinism_hash () =
  let msg src id = Probe.Msg_deliver { node = 0; src; port = 7; msg_id = id; epoch = 0 } in
  (* cross-stream interleaving is not part of the logical trace *)
  Alcotest.(check string)
    "interleaving-invariant"
    (hash_of [ msg 1 0; msg 2 0; msg 1 1; msg 2 1 ])
    (hash_of [ msg 2 0; msg 1 0; msg 2 1; msg 1 1 ]);
  (* but per-stream content and order are *)
  check_bool "content-sensitive" true
    (hash_of [ msg 1 0; msg 1 1 ] <> hash_of [ msg 1 1; msg 1 0 ]);
  check_bool "delivery-sequence-sensitive" true
    (hash_of [ deliver 0; deliver 1 ] <> hash_of [ deliver 0; deliver 1; deliver 2 ])

let test_determinism_prefix () =
  let trace evs =
    let d = Check.Determinism.create () in
    List.iter (Check.Determinism.on_event d) evs;
    d
  in
  let short = trace [ deliver 0; deliver 1 ] in
  let long = trace [ deliver 0; deliver 1; deliver 2 ] in
  let conflicting = trace [ deliver 0; deliver 2 ] in
  Alcotest.(check (option string))
    "prefix of longer run is consistent" None
    (Check.Determinism.prefix_divergence short long);
  Alcotest.(check (option string))
    "and symmetrically" None
    (Check.Determinism.prefix_divergence long short);
  check_bool "conflicting common prefix flagged" true
    (Check.Determinism.prefix_divergence short conflicting <> None)

(* ------------------------------------------------------------------ *)
(* The full checker, end to end *)

let quiet_scenario ?(truncated = false) name run =
  { Check.Scenario.name; descr = name; truncated; run = (fun _fmt -> run ()) }

(* A deliberate hidden ordering race: eight same-instant events draw
   message ids from a shared counter, so the (source -> id) binding
   depends on same-instant firing order.  The seeded permutation runs
   must expose it. *)
let test_check_catches_race () =
  let sc =
    quiet_scenario "race" (fun () ->
        let sim = Sim.create () in
        let next = ref 0 in
        for src = 1 to 8 do
          ignore
            (Sim.schedule sim ~after:50 (fun () ->
                 let id = !next in
                 incr next;
                 Probe.emit
                   (Probe.Msg_deliver { node = 0; src; port = 1; msg_id = id; epoch = 0 })))
        done;
        Sim.run sim)
  in
  let r = Check.run_scenario ~seeds:3 sc in
  check_bool "race detected" false (Check.ok r);
  check_bool "as a trace divergence" true
    (List.exists
       (fun v -> v.Check.Violation.rule = "trace-divergence")
       r.Check.violations)

(* The same shape without the shared counter is order-independent and
   must pass clean under every permutation. *)
let test_check_clean_synthetic () =
  let sc =
    quiet_scenario "no-race" (fun () ->
        let sim = Sim.create () in
        for src = 1 to 8 do
          ignore
            (Sim.schedule sim ~after:50 (fun () ->
                 Probe.emit
                   (Probe.Msg_deliver { node = 0; src; port = 1; msg_id = src; epoch = 0 })))
        done;
        Sim.run sim)
  in
  let r = Check.run_scenario ~seeds:3 sc in
  check_bool "clean" true (Check.ok r);
  check_int "baseline + 3 seeded runs" 4 r.Check.runs

(* A real two-node CLIC ping-pong through the whole stack: zero
   violations, zero leaks, stable logical trace across seeds. *)
let test_check_real_scenario_clean () =
  let sc =
    quiet_scenario "mini-pingpong" (fun () ->
        let c = Cluster.Net.create ~n:2 () in
        let pair = Cluster.Measure.clic_pair c ~a:0 ~b:1 () in
        ignore (Cluster.Measure.pingpong c pair ~size:1024 ~reps:4 ~warmup:1 ()))
  in
  let r = Check.run_scenario ~seeds:2 sc in
  List.iter
    (fun v -> Printf.printf "unexpected: %s\n" (Check.Violation.to_string v))
    r.Check.violations;
  check_bool "full stack runs clean" true (Check.ok r);
  check_bool "objects were actually tracked" true
    (List.exists
       (fun n -> n <> "peak live objects 0")
       r.Check.notes)

(* ------------------------------------------------------------------ *)
(* The chaos-soak harness *)

let test_soak_argument_checks () =
  check_bool "templates registered" true
    (List.length Check.Soak.template_names >= 5);
  check_bool "incast storm registered" true
    (List.mem "incast-storm" Check.Soak.template_names);
  Alcotest.(check (list int)) "CI seeds pinned" [ 101; 202; 303 ]
    Check.Soak.default_seeds;
  let raises f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check_bool "trials <= 0 rejected" true
    (raises (fun () -> Check.Soak.run ~trials:0 ()));
  check_bool "unknown template rejected" true
    (raises (fun () -> Check.Soak.run ~only:[ "no-such-template" ] ()))

let test_soak_smoke () =
  (* One seed over every template in quick mode: the full harness — node
     crash/reboot, pool crunch, interrupt storm, composed link weather,
     incast stampede — must come back with zero violations and every
     stress axis evidenced. *)
  let r = Check.Soak.run ~seeds:[ 101 ] ~quick:true () in
  List.iter
    (fun v -> Printf.printf "unexpected: %s\n" (Check.Violation.to_string v))
    (Check.Soak.violations r);
  List.iter (Printf.printf "missing evidence: %s\n") (Check.Soak.missing_evidence r);
  check_bool "soak clean with full evidence" true (Check.Soak.ok r);
  check_int "one trial per template ran"
    (List.length Check.Soak.template_names)
    (List.length r.Check.Soak.s_trials);
  let ev = r.Check.Soak.s_evidence in
  check_bool "a crash happened" true (ev.Check.Soak.ev_crashes > 0);
  check_bool "hard watermark dropped frames" true
    (ev.Check.Soak.ev_pool_drops > 0);
  check_bool "polling engaged" true (ev.Check.Soak.ev_poll_switches > 0);
  check_bool "the switch dropped frames somewhere" true
    (ev.Check.Soak.ev_switch_drops > 0);
  check_bool "802.3x PAUSE frames flowed" true
    (ev.Check.Soak.ev_pause_frames > 0);
  check_bool "transmitters spent time XOFFed" true
    (ev.Check.Soak.ev_tx_paused_ns > 0)

let test_soak_incast_storm_focused () =
  (* The incast template alone, two seeds: the stampede must run under
     the full monitor set with zero violations in both fabrics, and both
     arms must leave their fingerprints (PAUSE signalling from the
     flow-controlled run, switch drops from the tail-drop run). *)
  let r =
    Check.Soak.run ~seeds:[ 11; 12 ] ~quick:true ~only:[ "incast-storm" ] ()
  in
  List.iter
    (fun v -> Printf.printf "unexpected: %s\n" (Check.Violation.to_string v))
    (Check.Soak.violations r);
  check_bool "incast storm runs clean" true (Check.Soak.ok r);
  List.iter
    (fun tr ->
      Alcotest.(check string)
        "template" "incast-storm" tr.Check.Soak.tr_template)
    r.Check.Soak.s_trials;
  let ev = r.Check.Soak.s_evidence in
  check_bool "tail-drop arm lost frames at the switch" true
    (ev.Check.Soak.ev_switch_drops > 0);
  check_bool "flow-controlled arm got XOFFed" true
    (ev.Check.Soak.ev_pause_frames > 0 && ev.Check.Soak.ev_tx_paused_ns > 0);
  check_bool "traffic actually flowed" true (ev.Check.Soak.ev_delivered > 0)

(* Satellite: the probe-enabled flag is consulted on the engine's hottest
   path, so a probe-off run and a probe-on run of a full scenario must
   render byte-identical output — observation cannot perturb behaviour. *)
let test_soak_fabric_cut_focused () =
  (* The fabric template alone: a spine failure plus a node crash on a
     2-spine leaf/spine, clean under the full monitor set, with frames
     actually crossing trunks and the spine really failing mid-trial. *)
  let r = Check.Soak.run ~seeds:[ 21 ] ~quick:true ~only:[ "fabric-cut" ] () in
  List.iter
    (fun v -> Printf.printf "unexpected: %s\n" (Check.Violation.to_string v))
    (Check.Soak.violations r);
  check_bool "fabric-cut runs clean" true (Check.Soak.ok r);
  let ev = r.Check.Soak.s_evidence in
  check_bool "frames crossed trunks" true (ev.Check.Soak.ev_trunk_frames > 0);
  check_bool "a switch failed mid-trial" true
    (ev.Check.Soak.ev_switch_failures > 0);
  check_bool "a node crashed mid-trial" true (ev.Check.Soak.ev_crashes > 0);
  check_bool "traffic actually flowed" true (ev.Check.Soak.ev_delivered > 0)

(* The PR-8 compatibility contract: the topology-DSL rebuild of the wiring
   must leave every pre-existing scenario's logical trace untouched.  The
   full 15-scenario sweep runs in CI (`clic-sim check --hashes` against
   test/golden/scenario_hashes.txt); in-suite, a fast subset pins the
   hashes on every `dune runtest`. *)
let fast_hash_scenarios =
  [ "fig1"; "fig7"; "sec2"; "sec3"; "ext2"; "ext3"; "chaos"; "incast"; "fabric" ]

let test_scenario_hashes_pinned () =
  let golden =
    let ic = open_in "golden/scenario_hashes.txt" in
    let rec loop acc =
      match input_line ic with
      | line -> (
          match String.split_on_char ' ' line with
          | [ name; hash ] -> loop ((name, hash) :: acc)
          | _ -> loop acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    loop []
  in
  check_bool "golden file pins every scenario" true (List.length golden >= 16);
  List.iter
    (fun name ->
      if not (List.mem_assoc name golden) then
        Alcotest.failf "scenario %s missing from the golden file" name)
    fast_hash_scenarios;
  let reports = Check.run_all ~seeds:0 ~names:fast_hash_scenarios () in
  List.iter
    (fun r ->
      Alcotest.(check string)
        (r.Check.scenario
       ^ ": logical trace hash pinned by test/golden/scenario_hashes.txt")
        (List.assoc r.Check.scenario golden)
        r.Check.baseline_hash)
    reports

let test_probe_on_off_equivalence () =
  let sc =
    match Check.Scenario.find "ext3" with
    | Some sc -> sc
    | None -> Alcotest.fail "scenario ext3 not registered"
  in
  let render () =
    let buf = Buffer.create 4096 in
    let fmt = Format.formatter_of_buffer buf in
    sc.Check.Scenario.run fmt;
    Format.pp_print_flush fmt ();
    Buffer.contents buf
  in
  check_bool "probes start off" false (Probe.enabled ());
  let off = render () in
  let seen = ref 0 in
  Probe.install (fun _ -> incr seen);
  let on_ = Fun.protect ~finally:Probe.uninstall render in
  check_bool "probe saw the run" true (!seen > 0);
  check_bool "probes off again" false (Probe.enabled ());
  Alcotest.(check string) "identical rendered trace with probes on" off on_

(* ------------------------------------------------------------------ *)
(* SLO degradation contracts: validation and phase classification
   against a hand-built latency record *)

let mk_slo samples =
  let lats = Array.map snd samples in
  {
    Cluster.Workload.slo_requests = Array.length samples;
    slo_completed = Array.length samples;
    slo_timeouts = 0;
    slo_stranded = 0;
    slo_p50_us = Cluster.Workload.quantile lats 50.;
    slo_p99_us = Cluster.Workload.quantile lats 99.;
    slo_p999_us = Cluster.Workload.quantile lats 99.9;
    slo_mean_us = 0.;
    slo_max_us = 0.;
    slo_goodput_mbps = 0.;
    slo_elapsed = Time.ms 1.;
    slo_samples = samples;
  }

let test_slo_validate () =
  let expect msg c =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        Check.Slo.validate c)
  in
  let d = Check.Slo.default in
  Check.Slo.validate d;
  expect "Slo.validate: healthy_p999_us <= 0"
    { d with Check.Slo.healthy_p999_us = 0. };
  expect "Slo.validate: bleed_ratio < 1" { d with Check.Slo.bleed_ratio = 0.9 };
  expect "Slo.validate: recovery_deadline <= 0"
    { d with Check.Slo.recovery_deadline = 0 }

(* A hand-built record: fault window [100us, 200us), recovery deadline
   50us.  Arrivals at 10/50us are healthy, 120/180us degraded, 210/240us
   inside the (unjudged) recovery window, 260/300us recovered. *)
let test_slo_evaluate_phases () =
  let c =
    {
      Check.Slo.healthy_p999_us = 100.;
      bleed_ratio = 3.;
      recovery_deadline = Time.us 50.;
    }
  in
  let us = Time.us in
  let eval lat_recovering lat_recovered =
    Check.Slo.evaluate c
      ~slo:
        (mk_slo
           [|
             (us 10., 40.);
             (us 50., 80.);
             (us 120., 250.);
             (us 180., 290.);
             (us 210., lat_recovering);
             (us 240., lat_recovering);
             (us 260., lat_recovered);
             (us 300., 60.);
           |])
      ~fault_from:(us 100.) ~fault_until:(us 200.)
  in
  let v = eval 9_000. 90. in
  check_int "healthy samples" 2 v.Check.Slo.v_healthy;
  check_int "degraded samples" 2 v.Check.Slo.v_degraded;
  check_int "recovered samples" 2 v.Check.Slo.v_recovered;
  Alcotest.(check (float 0.001)) "healthy p999" 80. v.Check.Slo.v_healthy_p999_us;
  Alcotest.(check (float 0.001)) "degraded p999" 290.
    v.Check.Slo.v_degraded_p999_us;
  check_bool "contract holds: recovery-window samples are never judged" true
    (Check.Slo.ok v);
  (* push the recovered tail over the healthy bound *)
  let v = eval 10. 900. in
  (match v.Check.Slo.v_violations with
  | [ viol ] ->
      Alcotest.(check string) "rule" "recovery-deadline"
        viol.Check.Violation.rule
  | l -> Alcotest.failf "expected one violation, got %d" (List.length l));
  (* a degraded tail above bleed_ratio * healthy bound trips
     bounded-bleed; healthy stays under its absolute bound *)
  let v =
    Check.Slo.evaluate c
      ~slo:
        (mk_slo
           [| (us 10., 40.); (us 120., 500.); (us 260., 60.) |])
      ~fault_from:(us 100.) ~fault_until:(us 200.)
  in
  (match v.Check.Slo.v_violations with
  | [ viol ] ->
      Alcotest.(check string) "rule" "bounded-bleed" viol.Check.Violation.rule
  | l -> Alcotest.failf "expected one violation, got %d" (List.length l));
  (* an empty phase voids the certification *)
  let v =
    Check.Slo.evaluate c
      ~slo:(mk_slo [| (us 120., 50.); (us 260., 50.) |])
      ~fault_from:(us 100.) ~fault_until:(us 200.)
  in
  (match v.Check.Slo.v_violations with
  | [ viol ] ->
      Alcotest.(check string) "rule" "phase-empty" viol.Check.Violation.rule
  | l -> Alcotest.failf "expected one violation, got %d" (List.length l));
  Alcotest.check_raises "window validation"
    (Invalid_argument "Slo.evaluate: empty or negative fault window")
    (fun () ->
      ignore
        (Check.Slo.evaluate c
           ~slo:(mk_slo [||])
           ~fault_from:(us 200.) ~fault_until:(us 100.)))

let test_slo_contract_run () =
  let v, slo = Check.Slo.run_contract ~quick:true () in
  check_int "no stranded requests" 0 slo.Cluster.Workload.slo_stranded;
  check_bool "healthy phase populated" true (v.Check.Slo.v_healthy > 0);
  check_bool "degraded phase populated" true (v.Check.Slo.v_degraded > 0);
  check_bool "recovered phase populated" true (v.Check.Slo.v_recovered > 0);
  List.iter
    (fun viol ->
      Printf.printf "unexpected violation: %s\n"
        (Check.Violation.to_string viol))
    v.Check.Slo.v_violations;
  check_bool "default contract holds on the canonical run" true
    (Check.Slo.ok v)

(* ------------------------------------------------------------------ *)
(* Satellite: the clic-lint static analyzer *)

module Lint = Lint_core.Lint_project
module Ldiag = Lint_core.Lint_diag

let fixture name = Filename.concat "lint_fixtures" name

(* Every bad fixture must trigger — and trigger ONLY — its own rule. *)
let test_lint_bad_fixtures () =
  let expect file rule =
    let r = Lint.run_files [ fixture file ] in
    match r.Lint.r_findings with
    | [] -> Alcotest.failf "%s: expected %s findings, got none" file rule
    | findings ->
        List.iter
          (fun (d : Ldiag.t) ->
            Alcotest.(check string)
              (file ^ " triggers exactly its rule")
              rule
              (Ldiag.rule_id d.Ldiag.d_rule))
          findings
  in
  expect "bad_sleep_in_isr.ml" "R1";
  expect "bad_unguarded_magic.ml" "R2";
  expect "bad_hot_alloc.ml" "R3";
  expect "bad_unguarded_probe.ml" "R4";
  expect "bad_waiver_no_reason.ml" "R2"

let test_lint_good_fixture () =
  let r = Lint.run_files [ fixture "good_clean.ml" ] in
  check_int "no findings" 0 (List.length r.Lint.r_findings);
  check_int "one waiver collected" 1 (List.length r.Lint.r_waivers);
  List.iter
    (fun (w : Ldiag.waiver) ->
      check_bool "waiver carries a reason" true (w.Ldiag.w_reason <> None))
    r.Lint.r_waivers

let test_lint_rule_filter () =
  let r = Lint.run_files [ fixture "bad_hot_alloc.ml" ] in
  let only rules =
    (Lint.filter_rules (Some rules) r).Lint.r_findings |> List.length
  in
  check_int "R3 filter keeps the findings" (List.length r.Lint.r_findings)
    (only [ Ldiag.R3 ]);
  check_int "R1 filter drops them" 0 (only [ Ldiag.R1 ])

(* Whole-repo clean run: the test binary runs from the build context,
   which mirrors the source tree, so ../lib is exactly the library code
   this binary was compiled from. *)
let test_lint_repo_clean () =
  let r = Lint.run_all ~root:".." in
  List.iter
    (fun (d : Ldiag.t) ->
      Printf.printf "unexpected finding: %s\n" (Ldiag.to_string d))
    r.Lint.r_findings;
  check_int "repository lints clean" 0 (List.length r.Lint.r_findings);
  check_bool "scanned a realistic file count" true (r.Lint.r_files > 60);
  check_bool "the repo carries reasoned waivers" true
    (r.Lint.r_waivers <> []);
  List.iter
    (fun (w : Ldiag.waiver) ->
      check_bool
        ("waiver has a reason: " ^ Ldiag.waiver_to_string w)
        true
        (w.Ldiag.w_reason <> None))
    r.Lint.r_waivers

let test_lint_mli_coverage () =
  let root = Filename.temp_file "clic_lint" ".d" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  Sys.mkdir (Filename.concat root "lib") 0o755;
  let ml = Filename.concat (Filename.concat root "lib") "naked.ml" in
  let write path text =
    let oc = open_out path in
    output_string oc text;
    close_out oc
  in
  write ml "let x = 1\n";
  (match Lint.mli_coverage ~root with
  | [ d ] -> Alcotest.(check string) "rule" "R5" (Ldiag.rule_id d.Ldiag.d_rule)
  | l -> Alcotest.failf "expected exactly one R5 finding, got %d"
           (List.length l));
  write (ml ^ "i") "val x : int\n";
  check_int "clean once the interface exists" 0
    (List.length (Lint.mli_coverage ~root))

let suite =
  [
    Alcotest.test_case "heap: equal keys drain FIFO" `Quick
      test_heap_fifo_stability;
    Alcotest.test_case "sim: seeded tie-break permutes same-instant events"
      `Quick test_sim_tie_break;
    Alcotest.test_case "lifecycle: double free" `Quick
      test_lifecycle_double_free;
    Alcotest.test_case "lifecycle: use after free" `Quick
      test_lifecycle_use_after_free;
    Alcotest.test_case "lifecycle: leak at sim end" `Quick test_lifecycle_leak;
    Alcotest.test_case "lifecycle: pool bytes outstanding" `Quick
      test_lifecycle_pool_leak;
    Alcotest.test_case "lifecycle: balanced run is clean" `Quick
      test_lifecycle_clean;
    Alcotest.test_case "lifecycle: real skbuff double free" `Quick
      test_skbuff_double_free_probed;
    Alcotest.test_case "invariants: duplicate/gap delivery" `Quick
      test_invariant_duplicate_delivery;
    Alcotest.test_case "invariants: duplicate app message" `Quick
      test_invariant_msg_once;
    Alcotest.test_case "invariants: ack monotonicity" `Quick
      test_invariant_ack_monotone;
    Alcotest.test_case "invariants: window bound" `Quick
      test_invariant_window_bound;
    Alcotest.test_case "invariants: poll budget" `Quick
      test_invariant_poll_budget;
    Alcotest.test_case "invariants: epoch-monotone delivery" `Quick
      test_invariant_epoch_monotone;
    Alcotest.test_case "invariants: pool balance" `Quick
      test_invariant_pool_balance;
    Alcotest.test_case "invariants: custom registration" `Quick
      test_invariant_register;
    Alcotest.test_case "determinism: logical trace hash" `Quick
      test_determinism_hash;
    Alcotest.test_case "determinism: truncated-run prefix compare" `Quick
      test_determinism_prefix;
    Alcotest.test_case "check: catches a seeded ordering race" `Quick
      test_check_catches_race;
    Alcotest.test_case "check: clean synthetic scenario" `Quick
      test_check_clean_synthetic;
    Alcotest.test_case "check: real CLIC ping-pong end to end" `Quick
      test_check_real_scenario_clean;
    Alcotest.test_case "soak: argument checks" `Quick test_soak_argument_checks;
    Alcotest.test_case "soak: one-seed smoke run" `Quick test_soak_smoke;
    Alcotest.test_case "soak: incast-storm focused" `Quick
      test_soak_incast_storm_focused;
    Alcotest.test_case "soak: fabric-cut focused" `Quick
      test_soak_fabric_cut_focused;
    Alcotest.test_case "slo: contract validation" `Quick test_slo_validate;
    Alcotest.test_case "slo: phase classification by arrival" `Quick
      test_slo_evaluate_phases;
    Alcotest.test_case "slo: canonical contract run holds" `Quick
      test_slo_contract_run;
    Alcotest.test_case "check: scenario trace hashes pinned" `Slow
      test_scenario_hashes_pinned;
    Alcotest.test_case "probe on/off trace equivalence" `Quick
      test_probe_on_off_equivalence;
    Alcotest.test_case "lint: bad fixtures trigger exactly their rule" `Quick
      test_lint_bad_fixtures;
    Alcotest.test_case "lint: clean fixture has zero findings" `Quick
      test_lint_good_fixture;
    Alcotest.test_case "lint: --rule narrows findings" `Quick
      test_lint_rule_filter;
    Alcotest.test_case "lint: whole repository is clean" `Quick
      test_lint_repo_clean;
    Alcotest.test_case "lint: mli coverage (R5)" `Quick
      test_lint_mli_coverage;
  ]
