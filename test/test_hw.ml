(* Tests for the hardware models: frames, links, switch, buses, DMA, NIC. *)

open Engine
open Hw

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let raw ?frag ~src ~dst n =
  Eth_frame.make ~src:(Mac.of_node src) ~dst:(Mac.of_node dst) ~ethertype:0x88
    ~payload_bytes:n ?frag (Eth_frame.Raw n)

(* ------------------------------------------------------------------ *)
(* Frames *)

let test_frame_sizes () =
  let f = raw ~src:0 ~dst:1 1500 in
  check_int "wire bytes" (8 + 14 + 1500 + 4 + 12) (Eth_frame.on_wire_bytes f);
  check_int "buffer bytes" (14 + 1500 + 4) (Eth_frame.buffer_bytes f);
  (* sub-minimum payloads are padded on the wire *)
  let tiny = raw ~src:0 ~dst:1 1 in
  check_int "padded" (8 + 14 + 46 + 4 + 12) (Eth_frame.on_wire_bytes tiny);
  Alcotest.check_raises "negative payload"
    (Invalid_argument "Eth_frame.make: negative payload") (fun () ->
      ignore (raw ~src:0 ~dst:1 (-1)))

let test_mac () =
  check_bool "broadcast is group" true (Mac.is_group Mac.broadcast);
  check_bool "multicast is group" true (Mac.is_group (Mac.multicast 3));
  check_bool "unicast not group" false (Mac.is_group (Mac.of_node 4));
  Alcotest.check_raises "negative node"
    (Invalid_argument "Mac.of_node: negative node id") (fun () ->
      ignore (Mac.of_node (-1)))

(* ------------------------------------------------------------------ *)
(* Link *)

let test_link_serialization_time () =
  let sim = Sim.create () in
  let link = Link.create sim ~name:"l" ~bits_per_s:1e9 () in
  (* 1500B payload -> 1538 wire bytes -> 12304 ns at 1 Gbit/s *)
  check_int "1500B frame" 12_304
    (Link.serialization_time link (raw ~src:0 ~dst:1 1500))

let test_link_delivery_and_fifo () =
  let sim = Sim.create () in
  let link =
    Link.create sim ~name:"l" ~bits_per_s:1e9 ~propagation:(Time.ns 100) ()
  in
  let got = ref [] in
  Link.connect link (fun f ->
      got := (f.Eth_frame.payload_bytes, Sim.now sim) :: !got);
  Link.send link (raw ~src:0 ~dst:1 1500);
  Link.send link (raw ~src:0 ~dst:1 46);
  Sim.run sim;
  match List.rev !got with
  | [ (1500, t1); (46, t2) ] ->
      check_int "first arrival" (12_304 + 100) t1;
      (* second frame serializes after the first *)
      check_int "second arrival" (12_304 + 672 + 100) t2
  | other -> Alcotest.failf "unexpected deliveries: %d" (List.length other)

let test_link_back_to_back_pipelining () =
  let sim = Sim.create () in
  let link = Link.create sim ~name:"l" ~bits_per_s:1e9 () in
  let count = ref 0 in
  Link.connect link (fun _ -> incr count);
  for _ = 1 to 100 do
    Link.send link (raw ~src:0 ~dst:1 1500)
  done;
  Sim.run sim;
  check_int "all delivered" 100 !count;
  check_int "sent counter" 100 (Link.frames_sent link);
  (* 100 frames of 1538 wire bytes at 1 Gbit/s: clock ends at last arrival *)
  check_int "stream duration" (100 * 12_304 + 500) (Sim.now sim)

let test_link_fault_injection () =
  let sim = Sim.create () in
  let link =
    Link.create sim ~name:"l" ~bits_per_s:1e9 ~fault:(Fault.drop_nth ~every:3)
      ()
  in
  let count = ref 0 in
  Link.connect link (fun _ -> incr count);
  for _ = 1 to 9 do
    Link.send link (raw ~src:0 ~dst:1 100)
  done;
  Sim.run sim;
  check_int "two thirds delivered" 6 !count;
  check_int "drops counted" 3 (Link.frames_dropped link)

let test_fault_duplicate_copies () =
  let sim = Sim.create () in
  let fault = Fault.duplicate ~rng:(Rng.create ~seed:7) ~prob:1. in
  let link = Link.create sim ~name:"l" ~bits_per_s:1e9 ~fault () in
  let count = ref 0 in
  Link.connect link (fun _ -> incr count);
  for _ = 1 to 5 do
    Link.send link (raw ~src:0 ~dst:1 100)
  done;
  Sim.run sim;
  check_int "every frame arrives twice" 10 !count;
  check_int "duplications counted" 5 (Fault.duplicates fault);
  check_int "no drops" 0 (Link.frames_dropped link)

let test_fault_gilbert_elliott_bursts () =
  let fault =
    Fault.gilbert_elliott ~rng:(Rng.create ~seed:42) ~p_good_to_bad:0.05
      ~p_bad_to_good:0.2 ~loss_bad:1. ()
  in
  let n = 2000 in
  let pattern = List.init n (fun _ -> Fault.frame fault ~now:0 () = []) in
  let drops = List.length (List.filter Fun.id pattern) in
  check_int "drops counted" drops (Fault.drops fault);
  (* stationary bad-state fraction is 0.05 / (0.05 + 0.2) = 20%, and the
     bad state loses everything: average loss must sit near 20% *)
  check_bool "loss near the stationary rate" true
    (drops > n / 10 && drops < (2 * n) / 5);
  (* losses must clump: mean dwell in the bad state is 1/0.2 = 5 frames,
     while uniform loss at the same rate would give runs of ~1.25 *)
  let runs, _ =
    List.fold_left
      (fun (runs, prev) d -> ((if d && not prev then runs + 1 else runs), d))
      (0, false) pattern
  in
  check_bool "drops arrive in bursts" true
    (runs > 0 && float_of_int drops /. float_of_int runs > 2.5)

let test_fault_flap_windows () =
  let fault = Fault.flap ~up:(Time.us 10.) ~down:(Time.us 5.) () in
  check_bool "up at t=0" true (Fault.frame fault ~now:0 () <> []);
  check_bool "still up late in the window" true
    (Fault.frame fault ~now:(Time.us 9.) () <> []);
  check_bool "down between windows" true
    (Fault.frame fault ~now:(Time.us 12.) () = []);
  check_bool "up again next period" true
    (Fault.frame fault ~now:(Time.us 16.) () <> []);
  check_int "the outage counted one drop" 1 (Fault.drops fault)

let test_fault_jitter_reorders () =
  let sim = Sim.create () in
  let fault = Fault.jitter ~rng:(Rng.create ~seed:3) ~max_delay:(Time.us 100.) in
  let link = Link.create sim ~name:"l" ~bits_per_s:1e9 ~fault () in
  let order = ref [] in
  Link.connect link (fun f -> order := f.Eth_frame.payload_bytes :: !order);
  let sent = List.init 10 (fun i -> 100 + i) in
  List.iter (fun n -> Link.send link (raw ~src:0 ~dst:1 n)) sent;
  Sim.run sim;
  let got = List.rev !order in
  check_int "nothing lost" 10 (List.length got);
  Alcotest.(check (list int)) "same frames" sent (List.sort compare got);
  (* back-to-back frames are ~0.7us apart on the wire; up to 100us of
     per-frame jitter must have reordered at least one pair *)
  check_bool "delivery order scrambled" true (got <> sent)

let test_fault_compose_stages () =
  let sim = Sim.create () in
  let fault =
    Fault.compose
      [
        Fault.drop_nth ~every:2;
        Fault.duplicate ~rng:(Rng.create ~seed:5) ~prob:1.;
      ]
  in
  let link = Link.create sim ~name:"l" ~bits_per_s:1e9 ~fault () in
  let count = ref 0 in
  Link.connect link (fun _ -> incr count);
  for _ = 1 to 6 do
    Link.send link (raw ~src:0 ~dst:1 100)
  done;
  Sim.run sim;
  (* every 2nd frame dropped before the duplicator sees it; the three
     survivors each arrive twice *)
  check_int "survivors duplicated" 6 !count;
  check_int "drops counted through compose" 3 (Fault.drops fault);
  check_int "duplications counted through compose" 3 (Fault.duplicates fault)

let test_fault_corruption_flags_copies () =
  let fault = Fault.corrupt ~rng:(Rng.create ~seed:13) ~prob:1. in
  for _ = 1 to 5 do
    match Fault.frame fault ~now:0 () with
    | [ { Fault.delay = 0; corrupt = true } ] -> ()
    | _ -> Alcotest.fail "expected one corrupted zero-delay copy"
  done;
  check_int "corruptions counted" 5 (Fault.corruptions fault);
  check_int "no drops" 0 (Fault.drops fault);
  (* a corrupted frame still occupies the wire: composition with jitter
     keeps the flag *)
  let composed =
    Fault.compose
      [
        Fault.corrupt ~rng:(Rng.create ~seed:13) ~prob:1.;
        Fault.jitter ~rng:(Rng.create ~seed:3) ~max_delay:(Time.us 10.);
      ]
  in
  match Fault.frame composed ~now:0 () with
  | [ { Fault.corrupt = true; _ } ] -> ()
  | _ -> Alcotest.fail "corruption flag lost through compose"

let test_link_no_receiver_drops () =
  let sim = Sim.create () in
  let link = Link.create sim ~name:"l" ~bits_per_s:1e9 () in
  Link.send link (raw ~src:0 ~dst:1 100);
  Sim.run sim;
  check_int "dropped" 1 (Link.frames_dropped link)

(* ------------------------------------------------------------------ *)
(* Switch *)

let make_switch sim nodes =
  let sw = Switch.create sim ~name:"sw" ~bits_per_s:1e9 () in
  List.iter (fun n -> Switch.add_port sw ~node:n) nodes;
  sw

let test_switch_unicast () =
  let sim = Sim.create () in
  let sw = make_switch sim [ 0; 1; 2 ] in
  let got = Array.make 3 0 in
  List.iter
    (fun n -> Switch.connect_node sw ~node:n (fun _ -> got.(n) <- got.(n) + 1))
    [ 0; 1; 2 ];
  Link.send (Switch.uplink sw ~node:0) (raw ~src:0 ~dst:2 500);
  Sim.run sim;
  Alcotest.(check (array int)) "only node 2" [| 0; 0; 1 |] got;
  check_int "forwarded" 1 (Switch.frames_forwarded sw)

let test_switch_broadcast_floods () =
  let sim = Sim.create () in
  let sw = make_switch sim [ 0; 1; 2; 3 ] in
  let got = Array.make 4 0 in
  List.iter
    (fun n -> Switch.connect_node sw ~node:n (fun _ -> got.(n) <- got.(n) + 1))
    [ 0; 1; 2; 3 ];
  let bcast =
    Eth_frame.make ~src:(Mac.of_node 0) ~dst:Mac.broadcast ~ethertype:0x88
      ~payload_bytes:100 (Eth_frame.Raw 100)
  in
  Link.send (Switch.uplink sw ~node:0) bcast;
  Sim.run sim;
  Alcotest.(check (array int)) "all but sender" [| 0; 1; 1; 1 |] got;
  check_int "flood copies" 3 (Switch.frames_flooded sw)

let test_switch_unknown_destination () =
  let sim = Sim.create () in
  let sw = make_switch sim [ 0; 1 ] in
  Switch.connect_node sw ~node:1 (fun _ -> ());
  Link.send (Switch.uplink sw ~node:0) (raw ~src:0 ~dst:9 100);
  Sim.run sim;
  check_int "unroutable" 1 (Switch.frames_unroutable sw)

let test_switch_duplicate_port () =
  let sim = Sim.create () in
  let sw = make_switch sim [ 0 ] in
  Alcotest.check_raises "dup"
    (Invalid_argument "Switch.add_port: duplicate node 0") (fun () ->
      Switch.add_port sw ~node:0)

(* ------------------------------------------------------------------ *)
(* PCI / DMA *)

let test_pci_peak () =
  Alcotest.(check (float 1.)) "33MHz x 4B" 132e6
    (Pci.peak_bytes_per_s ~clock_mhz:33. ~width_bytes:4)

let test_dma_occupies_both_buses () =
  let sim = Sim.create () in
  let pci =
    Bus.create sim ~name:"pci" ~bytes_per_s:100e6 ~setup:(Time.us 1.) ()
  in
  let membus = Bus.create sim ~name:"mem" ~bytes_per_s:800e6 () in
  let finished = ref 0 in
  Process.spawn sim (fun () ->
      Dma.transfer ~pci ~membus 100_000;
      finished := Sim.now sim);
  Sim.run sim;
  (* PCI is slower: 100kB at 100 MB/s = 1ms + 1us setup *)
  check_int "bounded by pci" (Time.us 1001.) !finished;
  check_int "membus also crossed" 100_000 (Bus.bytes_moved membus)

let test_dma_zero_bytes () =
  let sim = Sim.create () in
  let pci = Bus.create sim ~name:"pci" ~bytes_per_s:1e6 () in
  let membus = Bus.create sim ~name:"mem" ~bytes_per_s:1e6 () in
  Process.spawn sim (fun () -> Dma.transfer ~pci ~membus 0);
  Sim.run sim;
  check_int "instant" 0 (Sim.now sim)

(* ------------------------------------------------------------------ *)
(* NIC *)

let nic_rig ?coalesce ?fragmentation ?(mtu = 1500) () =
  let sim = Sim.create () in
  let pci = Pci.create sim () in
  let membus = Membus.create sim () in
  let mk name =
    Nic.create sim ~name ~mtu ~pci ~membus ?coalesce ?fragmentation ()
  in
  let a = mk "nicA" and b = mk "nicB" in
  let ab = Link.create sim ~name:"a->b" ~bits_per_s:1e9 () in
  let ba = Link.create sim ~name:"b->a" ~bits_per_s:1e9 () in
  Nic.attach_uplink a ab;
  Nic.attach_uplink b ba;
  Link.connect ab (Nic.rx_from_wire b);
  Link.connect ba (Nic.rx_from_wire a);
  (sim, a, b)

let post sim nic frame =
  Process.spawn sim (fun () ->
      Nic.post_tx_blocking nic
        { Nic.frame; needs_dma = true; internal_copy = true;
          on_complete = (fun () -> ()) })

let test_nic_tx_rx_roundtrip () =
  let sim, a, b = nic_rig ~coalesce:Nic.no_coalesce () in
  let irqs = ref 0 in
  Nic.set_interrupt b (fun () -> incr irqs);
  post sim a (raw ~src:0 ~dst:1 1000);
  Sim.run sim;
  check_int "interrupt raised" 1 !irqs;
  check_int "rx pending" 1 (Nic.rx_pending b);
  (match Nic.take_rx b with
  | [ d ] ->
      check_int "payload" 1000 d.Nic.rx_frame.Eth_frame.payload_bytes;
      check_int "host bytes" (14 + 1000 + 4) d.Nic.host_bytes
  | l -> Alcotest.failf "expected 1 desc, got %d" (List.length l));
  check_int "pending drained" 0 (Nic.rx_pending b)

let test_nic_irq_masking () =
  let sim, a, b = nic_rig ~coalesce:Nic.no_coalesce () in
  let irqs = ref 0 in
  Nic.set_interrupt b (fun () -> incr irqs);
  for _ = 1 to 5 do
    post sim a (raw ~src:0 ~dst:1 1000)
  done;
  Sim.run sim;
  (* Only the first packet interrupts; the rest arrive masked. *)
  check_int "one interrupt" 1 !irqs;
  check_int "all pending" 5 (Nic.rx_pending b);
  ignore (Nic.take_rx b);
  Nic.unmask_irq b;
  check_int "no further interrupt" 1 !irqs

let test_nic_unmask_refires_when_pending () =
  let sim, a, b = nic_rig ~coalesce:Nic.no_coalesce () in
  let irqs = ref 0 in
  Nic.set_interrupt b (fun () -> incr irqs);
  for _ = 1 to 3 do
    post sim a (raw ~src:0 ~dst:1 500)
  done;
  Sim.run sim;
  check_int "first irq" 1 !irqs;
  (* ISR drains only partially here: take everything, then more arrives *)
  ignore (Nic.take_rx b);
  post sim a (raw ~src:0 ~dst:1 500);
  Nic.unmask_irq b;
  Sim.run sim;
  check_int "second irq for late packet" 2 !irqs

let test_nic_coalescing_count () =
  let coalesce =
    { Nic.max_frames = 4; quiet = Time.ms 10.; absolute = Time.ms 100. }
  in
  let sim, a, b = nic_rig ~coalesce () in
  let irqs = ref 0 in
  Nic.set_interrupt b (fun () -> incr irqs);
  for _ = 1 to 4 do
    post sim a (raw ~src:0 ~dst:1 1000)
  done;
  Sim.run sim;
  check_int "one irq for four frames" 1 !irqs;
  check_int "four pending" 4 (Nic.rx_pending b)

let test_nic_coalescing_quiet_timer () =
  let coalesce =
    { Nic.max_frames = 100; quiet = Time.us 5.; absolute = Time.ms 100. }
  in
  let sim, a, b = nic_rig ~coalesce () in
  let irq_at = ref 0 in
  Nic.set_interrupt b (fun () -> irq_at := Sim.now sim);
  post sim a (raw ~src:0 ~dst:1 1000);
  Sim.run sim;
  check_bool "fired by quiet timer" true (!irq_at > 0);
  check_int "one pending" 1 (Nic.rx_pending b)

let test_nic_rx_ring_overflow () =
  let sim = Sim.create () in
  let pci = Pci.create sim () in
  let membus = Membus.create sim () in
  let a =
    Nic.create sim ~name:"a" ~mtu:1500 ~pci ~membus
      ~coalesce:Nic.no_coalesce ()
  in
  let b =
    Nic.create sim ~name:"b" ~mtu:1500 ~pci ~membus ~rx_ring:2
      ~coalesce:Nic.no_coalesce ()
  in
  let ab = Link.create sim ~name:"a->b" ~bits_per_s:1e9 () in
  Nic.attach_uplink a ab;
  Link.connect ab (Nic.rx_from_wire b);
  Nic.set_interrupt b (fun () -> ());
  for _ = 1 to 5 do
    post sim a (raw ~src:0 ~dst:1 1000)
  done;
  Sim.run sim;
  check_int "ring holds two" 2 (Nic.rx_pending b);
  check_int "rest dropped" 3 (Nic.rx_dropped b)

let test_nic_bad_fcs_drops_at_mac () =
  (* A corrupting link: the receiving MAC recomputes the FCS and discards
     the frame before it reaches the ring — counted, never delivered. *)
  let sim = Sim.create () in
  let pci = Pci.create sim () in
  let membus = Membus.create sim () in
  let mk name =
    Nic.create sim ~name ~mtu:1500 ~pci ~membus ~coalesce:Nic.no_coalesce ()
  in
  let a = mk "nicA" and b = mk "nicB" in
  let ab =
    Link.create sim ~name:"a->b" ~bits_per_s:1e9
      ~fault:(Fault.corrupt ~rng:(Rng.create ~seed:21) ~prob:1.)
      ()
  in
  Nic.attach_uplink a ab;
  Link.connect ab (Nic.rx_from_wire b);
  let irqs = ref 0 in
  Nic.set_interrupt b (fun () -> incr irqs);
  for _ = 1 to 5 do
    post sim a (raw ~src:0 ~dst:1 1000)
  done;
  Sim.run sim;
  check_int "every frame dropped as bad FCS" 5 (Nic.bad_fcs b);
  check_int "nothing reached the ring" 0 (Nic.rx_pending b);
  check_int "no rx counted" 0 (Nic.rx_packets b);
  check_int "no interrupt for garbage" 0 !irqs

let test_nic_power_off_mid_dma () =
  (* Regression: a frame whose receive DMA is in flight when the power
     fails must not land in the (already drained) ring afterwards — the
     descriptor would be stranded there forever and its ring slot lost. *)
  let sim, a, b = nic_rig ~coalesce:Nic.no_coalesce () in
  Nic.set_interrupt b (fun () -> ());
  post sim a (raw ~src:0 ~dst:1 1000);
  (* arrival ~8.3us, firmware 0.8us, then ~7.6us of DMA: 12us is mid-DMA *)
  Process.spawn sim ~delay:(Time.us 12.) (fun () -> Nic.power_off b);
  Sim.run sim;
  check_bool "nic is down" true (Nic.is_down b);
  check_int "nothing stranded in the ring" 0 (Nic.rx_pending b);
  (* the slot the in-flight frame held must have been returned: after
     power-on the ring accepts a full burst again *)
  Nic.power_on b;
  for _ = 1 to 4 do
    post sim a (raw ~src:0 ~dst:1 500)
  done;
  Sim.run sim;
  check_int "ring serves a fresh burst" 4 (Nic.rx_pending b)

let test_nic_tx_ring_full () =
  let sim = Sim.create () in
  let pci = Pci.create sim () in
  let membus = Membus.create sim () in
  let nic =
    Nic.create sim ~name:"a" ~mtu:1500 ~pci ~membus ~tx_ring:1
      ~coalesce:Nic.no_coalesce ()
  in
  (* No uplink: the pump still consumes, but slowly enough that a second
     immediate post finds the ring full. *)
  let d frame =
    { Nic.frame; needs_dma = true; internal_copy = false;
      on_complete = (fun () -> ()) }
  in
  let first = ref false and second = ref true in
  Process.spawn sim (fun () ->
      first := Nic.try_post_tx nic (d (raw ~src:0 ~dst:1 1500));
      second := Nic.try_post_tx nic (d (raw ~src:0 ~dst:1 1500)));
  Sim.run sim;
  check_bool "first accepted" true !first;
  check_bool "second rejected" false !second

let test_nic_mtu_enforced () =
  let sim, a, _ = nic_rig () in
  Process.spawn sim (fun () ->
      match
        Nic.try_post_tx a
          { Nic.frame = raw ~src:0 ~dst:1 2000; needs_dma = true;
            internal_copy = false; on_complete = (fun () -> ()) }
      with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ());
  Sim.run sim

let test_nic_fragmentation_roundtrip () =
  let sim, a, b = nic_rig ~fragmentation:true ~mtu:1500 () in
  let irqs = ref 0 in
  Nic.set_interrupt b (fun () -> incr irqs);
  (* 4000B packet -> 3 wire frames -> one reassembled host packet *)
  post sim a (raw ~src:0 ~dst:1 4000);
  Sim.run sim;
  check_int "one host packet" 1 (Nic.rx_packets b);
  (match Nic.take_rx b with
  | [ d ] ->
      check_int "reassembled size" 4000 d.Nic.rx_frame.Eth_frame.payload_bytes;
      check_bool "frag cleared" true (d.Nic.rx_frame.Eth_frame.frag = None)
  | l -> Alcotest.failf "expected 1 desc, got %d" (List.length l));
  check_int "one interrupt for the whole packet" 1 !irqs

let prop_fragmentation_counts =
  QCheck.Test.make ~count:100 ~name:"NIC fragmentation frame count"
    QCheck.(pair (int_range 1 100_000) (int_range 100 9000))
    (fun (size, mtu) ->
      let sim = Sim.create () in
      let pci = Pci.create sim () in
      let membus = Membus.create sim () in
      let a =
        Nic.create sim ~name:"a" ~mtu ~pci ~membus ~fragmentation:true
          ~tx_ring:4096 ()
      in
      let b =
        Nic.create sim ~name:"b" ~mtu ~pci ~membus ~fragmentation:true
          ~rx_ring:4096 ()
      in
      let ab = Link.create sim ~name:"ab" ~bits_per_s:1e9 () in
      Nic.attach_uplink a ab;
      Link.connect ab (Nic.rx_from_wire b);
      Nic.set_interrupt b (fun () -> ());
      post sim a (raw ~src:0 ~dst:1 size);
      Sim.run sim;
      let expected_frames = (size + mtu - 1) / mtu in
      Link.frames_sent ab = expected_frames
      && Nic.rx_packets b = 1
      &&
      match Nic.take_rx b with
      | [ d ] -> d.Nic.rx_frame.Eth_frame.payload_bytes = size
      | _ -> false)

let test_nic_coalescing_absolute_cap () =
  (* A steady trickle keeps resetting the quiet timer; the absolute timer
     must still fire and bound the latency. *)
  let coalesce =
    { Nic.max_frames = 1000; quiet = Time.us 50.; absolute = Time.us 120. }
  in
  let sim, a, b = nic_rig ~coalesce () in
  let first_irq_at = ref 0 in
  Nic.set_interrupt b (fun () ->
      if !first_irq_at = 0 then first_irq_at := Sim.now sim);
  (* one small frame every 30us: quiet timer (50us) never expires *)
  for i = 0 to 9 do
    Process.spawn sim ~delay:(i * Time.us 30.) (fun () ->
        Nic.post_tx_blocking a
          { Nic.frame = raw ~src:0 ~dst:1 64; needs_dma = true;
            internal_copy = false; on_complete = (fun () -> ()) })
  done;
  Sim.run sim;
  check_bool "absolute holdoff bounded the first interrupt" true
    (!first_irq_at > 0 && !first_irq_at < Time.us 200.)

let test_nic_tx_ring_accounting () =
  let sim, a, _ = nic_rig () in
  let free0 = Nic.tx_ring_free a in
  Process.spawn sim (fun () ->
      Nic.post_tx_blocking a
        { Nic.frame = raw ~src:0 ~dst:1 500; needs_dma = true;
          internal_copy = false; on_complete = (fun () -> ()) });
  Sim.run sim;
  check_int "slot returned after transmit" free0 (Nic.tx_ring_free a)

let test_switch_multicast_group () =
  let sim = Sim.create () in
  let sw = make_switch sim [ 0; 1; 2 ] in
  let got = Array.make 3 0 in
  List.iter
    (fun n -> Switch.connect_node sw ~node:n (fun _ -> got.(n) <- got.(n) + 1))
    [ 0; 1; 2 ];
  let mc =
    Eth_frame.make ~src:(Mac.of_node 1) ~dst:(Mac.multicast 4) ~ethertype:0x88
      ~payload_bytes:64 (Eth_frame.Raw 64)
  in
  Link.send (Switch.uplink sw ~node:1) mc;
  Sim.run sim;
  Alcotest.(check (array int)) "flooded except sender" [| 1; 0; 1 |] got

let test_link_queue_depth_visible () =
  let sim = Sim.create () in
  let link = Link.create sim ~name:"l" ~bits_per_s:1e6 () in
  Link.connect link (fun _ -> ());
  for _ = 1 to 5 do
    Link.send link (raw ~src:0 ~dst:1 1000)
  done;
  (* first frame is serializing; four wait behind it *)
  check_int "queued behind transmitter" 4 (Link.queue_depth link);
  Sim.run sim;
  check_int "drained" 0 (Link.queue_depth link)

(* ------------------------------------------------------------------ *)
(* 802.3x MAC control *)

let test_mac_control_roundtrip () =
  List.iter
    (fun quanta ->
      let payload = Mac_control.encode ~quanta in
      match Mac_control.decode payload with
      | Ok q -> check_int "quanta round-trip" quanta q
      | Error e -> Alcotest.fail e)
    [ 0; 1; 255; 256; 0x1234; Mac_control.max_quanta ];
  (match Mac_control.decode (Bytes.create 2) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short payload must not decode");
  (match Mac_control.decode (Mac_control.encode ~quanta:0x77) with
  | Ok 0x77 -> ()
  | _ -> Alcotest.fail "opcode survives encode");
  Alcotest.check_raises "quanta out of range"
    (Invalid_argument "Mac_control.encode: quanta 65536") (fun () ->
      ignore (Mac_control.encode ~quanta:0x10000))

let test_mac_control_frame_shape () =
  let f = Mac_control.pause ~src:(Mac.of_node 3) ~quanta:50 in
  check_bool "is mac control" true (Mac_control.is_mac_control f);
  check_bool "dst is flow-control multicast" true
    (f.Eth_frame.dst = Mac.flow_control);
  (match Mac_control.quanta_of f with
  | Some 50 -> ()
  | _ -> Alcotest.fail "quanta_of must recover the encoded quanta");
  (match Mac_control.quanta_of (Mac_control.xon ~src:(Mac.of_node 3)) with
  | Some 0 -> ()
  | _ -> Alcotest.fail "xon means quanta 0");
  (* a data frame is not MAC control *)
  check_bool "data frame not control" true
    (Mac_control.quanta_of (raw ~src:0 ~dst:1 100) = None);
  (* one quantum is 512 bit times: 512 ns at 1 Gb/s *)
  check_int "quantum at 1Gb/s" (Time.ns 512)
    (Mac_control.span_of_quanta ~bits_per_s:1e9 1);
  check_int "100 quanta at 1Gb/s" (Time.ns 51200)
    (Mac_control.span_of_quanta ~bits_per_s:1e9 100)

(* ------------------------------------------------------------------ *)
(* Switch: counters, bounded ingress, shared buffer, PAUSE *)

(* One run mixing unicast, flood and unroutable traffic: each counter must
   tally its own class only (a flood must not count the ingress port, a
   unicast must not touch the flood counter, ...). *)
let test_switch_counter_regression () =
  let sim = Sim.create () in
  let sw = make_switch sim [ 0; 1; 2; 3 ] in
  List.iter
    (fun n -> Switch.connect_node sw ~node:n (fun _ -> ()))
    [ 0; 1; 2; 3 ];
  let bcast =
    Eth_frame.make ~src:(Mac.of_node 1) ~dst:Mac.broadcast ~ethertype:0x88
      ~payload_bytes:100 (Eth_frame.Raw 100)
  in
  Process.spawn sim (fun () ->
      Link.send (Switch.uplink sw ~node:0) (raw ~src:0 ~dst:2 500);
      Link.send (Switch.uplink sw ~node:1) bcast;
      Link.send (Switch.uplink sw ~node:2) (raw ~src:2 ~dst:9 100);
      Link.send (Switch.uplink sw ~node:3) (raw ~src:3 ~dst:0 200));
  Sim.run sim;
  check_int "unicasts forwarded" 2 (Switch.frames_forwarded sw);
  check_int "flood copies exclude ingress port" 3 (Switch.frames_flooded sw);
  check_int "unroutable" 1 (Switch.frames_unroutable sw);
  check_int "no drops on an unloaded switch" 0
    (Switch.egress_drops sw + Switch.ingress_drops sw)

let test_switch_ingress_bound () =
  let sim = Sim.create () in
  let sw =
    Switch.create sim ~name:"sw" ~bits_per_s:1e9 ~ingress_frames:2 ()
  in
  List.iter (fun n -> Switch.add_port sw ~node:n) [ 0; 1 ];
  let got = ref 0 in
  Switch.connect_node sw ~node:1 (fun _ -> incr got);
  Switch.connect_node sw ~node:0 (fun _ -> ());
  (* blast 6 frames into the bounded uplink in one instant: one serializes,
     two queue, three tail-drop at the switch ingress *)
  for _ = 1 to 6 do
    Link.send (Switch.uplink sw ~node:0) (raw ~src:0 ~dst:1 1000)
  done;
  Sim.run sim;
  check_int "ingress drops" 3 (Switch.ingress_drops sw);
  check_int "survivors delivered" 3 !got;
  check_int "forwarded only what ingress admitted" 3
    (Switch.frames_forwarded sw);
  check_int "no egress drops" 0 (Switch.egress_drops sw)

let test_switch_egress_cap_tail_drop () =
  let sim = Sim.create () in
  let sw = Switch.create sim ~name:"sw" ~bits_per_s:1e9 ~egress_frames:2 () in
  List.iter (fun n -> Switch.add_port sw ~node:n) [ 0; 1; 2 ];
  let got = ref 0 in
  Switch.connect_node sw ~node:2 (fun _ -> incr got);
  List.iter (fun n -> Switch.connect_node sw ~node:n (fun _ -> ())) [ 0; 1 ];
  (* two ports converge on node 2; each frame takes ~12 us on the egress
     wire, so the 2-frame FIFO overflows while the first still serializes *)
  Process.spawn sim (fun () ->
      for _ = 1 to 4 do
        Link.send (Switch.uplink sw ~node:0) (raw ~src:0 ~dst:2 1400);
        Link.send (Switch.uplink sw ~node:1) (raw ~src:1 ~dst:2 1400)
      done);
  Sim.run sim;
  check_bool "egress tail-drops" true (Switch.egress_drops sw > 0);
  check_int "delivered = forwarded - dropped" !got
    (Switch.frames_forwarded sw - Switch.egress_drops sw);
  check_int "ingress unbounded here" 0 (Switch.ingress_drops sw)

let shared_buffer ?(total = 256 * 1024) ?(reserve = 0) ?(high = 16 * 1024)
    ?(low = 8 * 1024) ?(pause = true) () =
  {
    Switch.total_bytes = total;
    port_reserve_bytes = reserve;
    ingress_high_bytes = high;
    ingress_low_bytes = low;
    pause;
    pause_quanta = Hw.Mac_control.max_quanta;
    max_frame_bytes = 1518;
    ecn_threshold = 0;
  }

let test_switch_buffer_ledger_balances () =
  let sim = Sim.create () in
  let sw =
    Switch.create sim ~name:"sw" ~bits_per_s:1e9
      ~buffer:(shared_buffer ~reserve:2048 ~pause:false ()) ()
  in
  List.iter (fun n -> Switch.add_port sw ~node:n) [ 0; 1; 2 ];
  let got = ref 0 in
  Switch.connect_node sw ~node:2 (fun _ -> incr got);
  List.iter (fun n -> Switch.connect_node sw ~node:n (fun _ -> ())) [ 0; 1 ];
  Process.spawn sim (fun () ->
      for _ = 1 to 5 do
        Link.send (Switch.uplink sw ~node:0) (raw ~src:0 ~dst:2 1400);
        Link.send (Switch.uplink sw ~node:1) (raw ~src:1 ~dst:2 1400)
      done);
  Sim.run sim;
  check_int "all delivered" 10 !got;
  check_int "ledger empty after drain" 0 (Switch.buffer_occupied sw);
  check_bool "peak recorded" true (Switch.peak_buffer_occupied sw > 0);
  check_int "nothing dropped" 0
    (Switch.egress_drops sw + Switch.ingress_drops sw)

let test_switch_buffer_exhaustion_drops () =
  let sim = Sim.create () in
  (* room for two full frames and change: the third concurrent arrival
     must be refused at admission *)
  let sw =
    Switch.create sim ~name:"sw" ~bits_per_s:1e9
      ~buffer:
        (shared_buffer ~total:4000 ~high:1_000_000 ~low:0 ~pause:false ())
      ()
  in
  List.iter (fun n -> Switch.add_port sw ~node:n) [ 0; 1; 2 ];
  let got = ref 0 in
  Switch.connect_node sw ~node:2 (fun _ -> incr got);
  List.iter (fun n -> Switch.connect_node sw ~node:n (fun _ -> ())) [ 0; 1 ];
  Process.spawn sim (fun () ->
      for _ = 1 to 4 do
        Link.send (Switch.uplink sw ~node:0) (raw ~src:0 ~dst:2 1400);
        Link.send (Switch.uplink sw ~node:1) (raw ~src:1 ~dst:2 1400)
      done);
  Sim.run sim;
  check_bool "buffer exhaustion drops" true (Switch.egress_drops sw > 0);
  check_int "delivered the rest" !got
    (Switch.frames_forwarded sw - Switch.egress_drops sw);
  check_int "ledger empty after drain" 0 (Switch.buffer_occupied sw)

(* Congest node 2's egress from two ports: each ingress port's buffered
   backlog must cross the high watermark (XOFF with real quanta), then the
   drain must bring it under the low watermark (XON, quanta 0). *)
let test_switch_xoff_xon_cycle () =
  let sim = Sim.create () in
  let sw =
    Switch.create sim ~name:"sw" ~bits_per_s:1e9
      ~buffer:(shared_buffer ~high:4000 ~low:1500 ())
      ()
  in
  List.iter (fun n -> Switch.add_port sw ~node:n) [ 0; 1; 2 ];
  let pauses = ref [] in
  Switch.connect_node sw ~node:0 (fun f ->
      match Mac_control.quanta_of f with
      | Some q -> pauses := q :: !pauses
      | None -> ());
  Switch.connect_node sw ~node:1 (fun _ -> ());
  Switch.connect_node sw ~node:2 (fun _ -> ());
  Process.spawn sim (fun () ->
      for _ = 1 to 8 do
        Link.send (Switch.uplink sw ~node:0) (raw ~src:0 ~dst:2 1400);
        Link.send (Switch.uplink sw ~node:1) (raw ~src:1 ~dst:2 1400)
      done);
  Sim.run sim;
  let pauses = List.rev !pauses in
  check_bool "XOFF reached the station" true
    (List.exists (fun q -> q > 0) pauses);
  check_bool "XON followed" true (List.exists (fun q -> q = 0) pauses);
  (match List.rev pauses with
  | 0 :: _ -> ()
  | _ -> Alcotest.fail "the last PAUSE frame must be an XON");
  check_bool "switch counted its PAUSE frames" true
    (Switch.pause_frames_tx sw >= 2);
  check_int "nothing dropped under PAUSE" 0
    (Switch.egress_drops sw + Switch.ingress_drops sw)

(* A station PAUSEs the switch: the gated egress must sit on its queue for
   the full quanta span, then resume; an XON reopens it early. *)
let test_switch_honors_station_pause () =
  let sim = Sim.create () in
  let sw = Switch.create sim ~name:"sw" ~bits_per_s:1e9 () in
  List.iter (fun n -> Switch.add_port sw ~node:n) [ 0; 1 ];
  let delivered_at = ref 0 in
  Switch.connect_node sw ~node:1 (fun _ -> delivered_at := Sim.now sim);
  Switch.connect_node sw ~node:0 (fun _ -> ());
  let quanta = 200 in
  let pause_sent_at = ref 0 in
  Process.spawn sim (fun () ->
      pause_sent_at := Sim.now sim;
      Link.send
        (Switch.uplink sw ~node:1)
        (Mac_control.pause ~src:(Mac.of_node 1) ~quanta);
      Link.send (Switch.uplink sw ~node:0) (raw ~src:0 ~dst:1 1000));
  Sim.run sim;
  let gate_span = Mac_control.span_of_quanta ~bits_per_s:1e9 quanta in
  check_int "station pause counted" 1 (Switch.pause_frames_rx sw);
  check_bool "delivery held for the pause span" true
    (!delivered_at > !pause_sent_at + gate_span);
  check_bool "egress pause time accounted" true
    (Switch.egress_paused_ns sw > 0)

let test_switch_xon_resumes_early () =
  let sim = Sim.create () in
  let sw = Switch.create sim ~name:"sw" ~bits_per_s:1e9 () in
  List.iter (fun n -> Switch.add_port sw ~node:n) [ 0; 1 ];
  let delivered_at = ref 0 in
  Switch.connect_node sw ~node:1 (fun _ -> delivered_at := Sim.now sim);
  Switch.connect_node sw ~node:0 (fun _ -> ());
  (* XOFF for a huge span, XON shortly after: delivery must not wait for
     the original quanta *)
  Process.spawn sim (fun () ->
      Link.send
        (Switch.uplink sw ~node:1)
        (Mac_control.pause ~src:(Mac.of_node 1)
           ~quanta:Mac_control.max_quanta);
      Link.send (Switch.uplink sw ~node:0) (raw ~src:0 ~dst:1 1000);
      Process.delay (Time.us 30.);
      Link.send (Switch.uplink sw ~node:1)
        (Mac_control.xon ~src:(Mac.of_node 1)));
  Sim.run sim;
  let full_span =
    Mac_control.span_of_quanta ~bits_per_s:1e9 Mac_control.max_quanta
  in
  check_bool "delivered" true (!delivered_at > 0);
  check_bool "resumed well before the XOFF expiry" true
    (!delivered_at < full_span);
  check_int "both control frames seen" 2 (Switch.pause_frames_rx sw)

let test_switch_protected_provisioning () =
  let sim = Sim.create () in
  let mk ?ingress_frames ?buffer () =
    let sw =
      Switch.create sim ~name:"sw" ~bits_per_s:1e9 ?ingress_frames ?buffer ()
    in
    List.iter (fun n -> Switch.add_port sw ~node:n) [ 0; 1; 2; 3; 4 ];
    sw
  in
  check_bool "default buffer + bounded ingress is protected" true
    (Switch.protected_provisioning
       (mk ~ingress_frames:6 ~buffer:Switch.default_buffer ()));
  check_bool "unbounded ingress is not protected" false
    (Switch.protected_provisioning (mk ~buffer:Switch.default_buffer ()));
  check_bool "tail-drop fabric is not protected" false
    (Switch.protected_provisioning
       (mk ~ingress_frames:6
          ~buffer:{ Switch.default_buffer with pause = false }
          ()));
  check_bool "undersized pool is not protected" false
    (Switch.protected_provisioning
       (mk ~ingress_frames:6
          ~buffer:{ Switch.default_buffer with total_bytes = 64 * 1024 }
          ()))

(* ------------------------------------------------------------------ *)
(* NIC 802.3x *)

let nic_pause_rig () =
  let sim = Sim.create () in
  let pci = Pci.create sim () in
  let membus = Membus.create sim () in
  let mk name =
    Nic.create sim ~name ~mtu:1500 ~pci ~membus ~pause:Nic.pause_802_3x ()
  in
  let a = mk "nicA" and b = mk "nicB" in
  let ab = Link.create sim ~name:"a->b" ~bits_per_s:1e9 () in
  let ba = Link.create sim ~name:"b->a" ~bits_per_s:1e9 () in
  Nic.attach_uplink a ab;
  Nic.attach_uplink b ba;
  Link.connect ab (Nic.rx_from_wire b);
  Link.connect ba (Nic.rx_from_wire a);
  (sim, a, b)

let test_nic_pause_gates_tx () =
  let sim, a, b = nic_pause_rig () in
  let quanta = 100 in
  let wire_at = ref (-1) in
  Process.spawn sim (fun () ->
      (* the PAUSE lands first (rx firmware takes 800 ns); the transmit
         posted right after must hold until the quanta elapse *)
      Nic.rx_from_wire a (Mac_control.pause ~src:(Mac.of_node 1) ~quanta);
      Process.delay (Time.us 2.);
      check_bool "tx paused after XOFF" true (Nic.is_tx_paused a);
      Nic.post_tx_blocking a
        { Nic.frame = raw ~src:0 ~dst:1 1000; needs_dma = true;
          internal_copy = false;
          on_complete = (fun () -> wire_at := Sim.now sim) });
  Sim.run sim;
  let span = Mac_control.span_of_quanta ~bits_per_s:1e9 quanta in
  check_bool "frame eventually sent" true (!wire_at >= 0);
  check_bool "held for the pause span" true (!wire_at >= span);
  check_bool "pause time accounted" true (Nic.tx_paused_ns a >= span);
  check_int "pause frame counted" 1 (Nic.pause_frames_rx a);
  check_bool "resumed" true (not (Nic.is_tx_paused a));
  check_int "receiver got exactly the data frame" 1 (Nic.rx_pending b)

let test_nic_xon_resumes_early () =
  let sim, a, _b = nic_pause_rig () in
  let wire_at = ref (-1) in
  Process.spawn sim (fun () ->
      Nic.rx_from_wire a
        (Mac_control.pause ~src:(Mac.of_node 1)
           ~quanta:Mac_control.max_quanta);
      Nic.post_tx_blocking a
        { Nic.frame = raw ~src:0 ~dst:1 1000; needs_dma = true;
          internal_copy = false;
          on_complete = (fun () -> wire_at := Sim.now sim) });
  Process.spawn sim (fun () ->
      Process.delay (Time.us 20.);
      Nic.rx_from_wire a (Mac_control.xon ~src:(Mac.of_node 1)));
  Sim.run sim;
  let full = Mac_control.span_of_quanta ~bits_per_s:1e9 Mac_control.max_quanta in
  check_bool "sent" true (!wire_at >= 0);
  check_bool "resumed on XON, not expiry" true (!wire_at < full);
  check_bool "paused span recorded" true
    (Nic.tx_paused_ns a >= Time.us 15. && Nic.tx_paused_ns a < full)

let test_nic_without_pause_ignores_xoff () =
  let sim, a, b = nic_rig () in
  let wire_at = ref (-1) in
  Process.spawn sim (fun () ->
      Nic.rx_from_wire a
        (Mac_control.pause ~src:(Mac.of_node 1)
           ~quanta:Mac_control.max_quanta);
      Nic.post_tx_blocking a
        { Nic.frame = raw ~src:0 ~dst:1 1000; needs_dma = true;
          internal_copy = false;
          on_complete = (fun () -> wire_at := Sim.now sim) });
  Sim.run sim;
  let full = Mac_control.span_of_quanta ~bits_per_s:1e9 Mac_control.max_quanta in
  check_bool "legacy MAC transmits immediately" true
    (!wire_at >= 0 && !wire_at < full / 100);
  check_int "no pause accounting" 0 (Nic.tx_paused_ns a);
  check_bool "never paused" true (not (Nic.is_tx_paused a));
  (* the control frame is consumed by the MAC, never surfaced to the host *)
  check_int "control frame counted" 1 (Nic.pause_frames_rx a);
  check_int "control frame not in the rx ring" 0 (Nic.rx_pending a);
  check_int "data frame still delivered" 1 (Nic.rx_pending b)

(* ------------------------------------------------------------------ *)
(* Multi-hop fabrics: trunks, static ECMP routes, MAC learning, TTL, and
   PAUSE propagating switch to switch *)

(* Stations on a buffered fabric also see PAUSE frames on their downlink;
   run [k] only for data. *)
let on_data f k = if Mac_control.quanta_of f = None then k ()

let two_switches ?buffer ?learning ?ttl ?trunk_bits_per_s sim =
  let mk name =
    Switch.create sim ~name ~bits_per_s:1e9 ?buffer ?learning ?ttl ()
  in
  let a = mk "a" and b = mk "b" in
  Switch.add_trunk ?bits_per_s:trunk_bits_per_s a b;
  (a, b)

let test_switch_trunk_forwarding () =
  let sim = Sim.create () in
  let a, b = two_switches sim in
  Switch.add_port a ~node:0;
  Switch.add_port b ~node:1;
  Switch.set_route a ~dst:1 ~via:[ "b" ];
  Switch.set_route b ~dst:0 ~via:[ "a" ];
  let got = ref 0 and hops = ref 0 in
  Switch.connect_node a ~node:0 (fun _ -> ());
  Switch.connect_node b ~node:1 (fun f ->
      on_data f (fun () ->
          incr got;
          hops := f.Eth_frame.hops));
  Link.send (Switch.uplink a ~node:0) (raw ~src:0 ~dst:1 500);
  Sim.run sim;
  check_int "delivered across the trunk" 1 !got;
  check_int "two switch traversals" 2 !hops;
  check_int "trunk load counter" 1 (Switch.trunk_tx_frames a ~peer:"b");
  check_int "second hop forwarded" 1 (Switch.frames_forwarded b);
  Alcotest.(check (list string)) "peer visible" [ "b" ] (Switch.trunks a);
  Alcotest.(check (list int)) "stations exclude trunks" [ 0 ] (Switch.ports a)

let test_switch_trunk_validation () =
  let sim = Sim.create () in
  let a, b = two_switches sim in
  Alcotest.check_raises "self-trunk"
    (Invalid_argument "Switch.add_trunk: self-trunk") (fun () ->
      Switch.add_trunk a a);
  Alcotest.check_raises "duplicate trunk"
    (Invalid_argument "Switch.add_trunk: duplicate trunk a=>b") (fun () ->
      Switch.add_trunk a b);
  Alcotest.check_raises "route via a stranger"
    (Invalid_argument "Switch.set_route: a has no trunk to zz") (fun () ->
      Switch.set_route a ~dst:9 ~via:[ "zz" ]);
  (* an otherwise fully provisioned switch loses its zero-loss guarantee
     the moment a trunk appears: the proof does not compose across hops *)
  let p =
    Switch.create sim ~name:"p" ~bits_per_s:1e9 ~ingress_frames:6
      ~buffer:Switch.default_buffer ()
  in
  let q = Switch.create sim ~name:"q" ~bits_per_s:1e9 () in
  List.iter (fun n -> Switch.add_port p ~node:n) [ 0; 1; 2 ];
  check_bool "protected before trunking" true (Switch.protected_provisioning p);
  Switch.add_trunk p q;
  check_bool "trunk voids the proof" false (Switch.protected_provisioning p)

let test_switch_ttl_loop_drop () =
  let sim = Sim.create () in
  let a, b = two_switches ~ttl:6 sim in
  Switch.add_port a ~node:0;
  Switch.connect_node a ~node:0 (fun _ -> ());
  (* a deliberately broken route set: each side claims the other owns
     node 9, so the frame ping-pongs until the hop bound kills it *)
  Switch.set_route a ~dst:9 ~via:[ "b" ];
  Switch.set_route b ~dst:9 ~via:[ "a" ];
  Link.send (Switch.uplink a ~node:0) (raw ~src:0 ~dst:9 500);
  Sim.run sim;
  check_int "exactly one frame dies at the hop bound" 1
    (Switch.frames_ttl_dropped a + Switch.frames_ttl_dropped b);
  check_int "the loop really crossed the trunk" 3
    (Switch.trunk_tx_frames a ~peer:"b")

let test_switch_learning_flood_then_unicast () =
  let sim = Sim.create () in
  let a, b = two_switches ~learning:true sim in
  Switch.add_port a ~node:0;
  Switch.add_port a ~node:2;
  Switch.add_port b ~node:1;
  let got = Array.make 3 0 in
  List.iter
    (fun (sw, n) ->
      Switch.connect_node sw ~node:n (fun f ->
          on_data f (fun () -> got.(n) <- got.(n) + 1)))
    [ (a, 0); (a, 2); (b, 1) ];
  Link.send (Switch.uplink a ~node:0) (raw ~src:0 ~dst:1 500);
  Sim.run sim;
  check_int "unknown unicast flooded" 1 (Switch.unknown_floods a);
  check_int "bystander saw the flood" 1 got.(2);
  check_int "destination reached" 1 got.(1);
  Alcotest.(check (option string))
    "b learned node 0 behind the trunk" (Some "a")
    (Switch.fdb_lookup b ~node:0);
  (* the reply teaches a where node 1 lives *)
  Link.send (Switch.uplink b ~node:1) (raw ~src:1 ~dst:0 500);
  Sim.run sim;
  check_int "reply went unicast off b's FDB" 0 (Switch.unknown_floods b);
  Alcotest.(check (option string))
    "a learned node 1" (Some "b")
    (Switch.fdb_lookup a ~node:1);
  got.(1) <- 0;
  got.(2) <- 0;
  Link.send (Switch.uplink a ~node:0) (raw ~src:0 ~dst:1 500);
  Sim.run sim;
  check_int "second frame needed no flood" 1 (Switch.unknown_floods a);
  check_int "no bystander copy this time" 0 got.(2);
  check_int "destination reached again" 1 got.(1)

let test_switch_fdb_relearn_after_rewire () =
  let sim = Sim.create () in
  let a, b = two_switches ~learning:true sim in
  Switch.add_port a ~node:0;
  Switch.add_port b ~node:1;
  Switch.connect_node a ~node:0 (fun _ -> ());
  let got = ref 0 in
  Switch.connect_node b ~node:1 (fun f -> on_data f (fun () -> incr got));
  Link.send (Switch.uplink a ~node:0) (raw ~src:0 ~dst:1 100);
  Sim.run sim;
  Alcotest.(check (option string))
    "a learned node 0 locally" (Some "n0")
    (Switch.fdb_lookup a ~node:0);
  (* reboot: a fresh NIC reattaches, the local switch forgets the entry *)
  Switch.rewire_node a ~node:0 (fun _ -> ());
  Alcotest.(check (option string))
    "own entry withdrawn" None
    (Switch.fdb_lookup a ~node:0);
  Alcotest.(check (option string))
    "remote switch keeps its stale entry" (Some "a")
    (Switch.fdb_lookup b ~node:0);
  Link.send (Switch.uplink a ~node:0) (raw ~src:0 ~dst:1 100);
  Sim.run sim;
  Alcotest.(check (option string))
    "traffic relearns" (Some "n0")
    (Switch.fdb_lookup a ~node:0);
  check_int "both frames delivered" 2 !got

let test_switch_flush_fdb_refloods () =
  let sim = Sim.create () in
  let a, b = two_switches ~learning:true sim in
  Switch.add_port a ~node:0;
  Switch.add_port b ~node:1;
  Switch.connect_node a ~node:0 (fun _ -> ());
  Switch.connect_node b ~node:1 (fun _ -> ());
  Link.send (Switch.uplink a ~node:0) (raw ~src:0 ~dst:1 100);
  Link.send (Switch.uplink b ~node:1) (raw ~src:1 ~dst:0 100);
  Sim.run sim;
  check_int "initial unknown flood" 1 (Switch.unknown_floods a);
  Alcotest.(check (option string))
    "learned from the reply" (Some "b")
    (Switch.fdb_lookup a ~node:1);
  Switch.flush_fdb a;
  Alcotest.(check (option string))
    "operator flush forgets" None
    (Switch.fdb_lookup a ~node:1);
  Link.send (Switch.uplink a ~node:0) (raw ~src:0 ~dst:1 100);
  Sim.run sim;
  check_int "floods again after the flush" 2 (Switch.unknown_floods a)

let test_switch_ecmp_spread () =
  let sim = Sim.create () in
  let mk name = Switch.create sim ~name ~bits_per_s:1e9 () in
  let a = mk "a" and b = mk "b" and c = mk "c" and d = mk "d" in
  Switch.add_trunk a b;
  Switch.add_trunk a c;
  Switch.add_trunk b d;
  Switch.add_trunk c d;
  for n = 0 to 7 do
    Switch.add_port a ~node:n;
    Switch.connect_node a ~node:n (fun _ -> ())
  done;
  Switch.add_port d ~node:9;
  let got = ref 0 in
  Switch.connect_node d ~node:9 (fun f -> on_data f (fun () -> incr got));
  Switch.set_route a ~dst:9 ~via:[ "b"; "c" ];
  Switch.set_route b ~dst:9 ~via:[ "d" ];
  Switch.set_route c ~dst:9 ~via:[ "d" ];
  for n = 0 to 7 do
    for _ = 1 to 4 do
      Link.send (Switch.uplink a ~node:n) (raw ~src:n ~dst:9 500)
    done
  done;
  Sim.run sim;
  check_int "all 32 delivered" 32 !got;
  let via_b = Switch.trunk_tx_frames a ~peer:"b"
  and via_c = Switch.trunk_tx_frames a ~peer:"c" in
  check_int "every frame took a trunk" 32 (via_b + via_c);
  check_bool
    (Printf.sprintf "both equal-cost paths carried load (%d/%d)" via_b via_c)
    true
    (via_b > 0 && via_c > 0);
  (* per-flow hashing: a flow never splits, so ECMP cannot reorder it *)
  check_bool "4-frame flows stay whole" true
    (via_b mod 4 = 0 && via_c mod 4 = 0)

let test_switch_trunk_pause_propagates () =
  let sim = Sim.create () in
  (* a 10 Gb/s trunk feeding 1 Gb/s stations: b's egress backlog charges
     the trunk ingress, so b must XOFF the upstream *switch*, not a
     station — the first hop of a congestion tree *)
  let buffer = shared_buffer ~high:8000 ~low:3000 () in
  let a, b = two_switches ~buffer ~trunk_bits_per_s:1e10 sim in
  Switch.add_port a ~node:0;
  Switch.add_port a ~node:1;
  Switch.add_port b ~node:2;
  Switch.set_route a ~dst:2 ~via:[ "b" ];
  let got = ref 0 in
  Switch.connect_node a ~node:0 (fun _ -> ());
  Switch.connect_node a ~node:1 (fun _ -> ());
  Switch.connect_node b ~node:2 (fun f -> on_data f (fun () -> incr got));
  Process.spawn sim (fun () ->
      for _ = 1 to 12 do
        Link.send (Switch.uplink a ~node:0) (raw ~src:0 ~dst:2 1400);
        Link.send (Switch.uplink a ~node:1) (raw ~src:1 ~dst:2 1400)
      done);
  Sim.run sim;
  check_int "everything delivered" 24 !got;
  check_bool "downstream switch XOFFed its upstream peer" true
    (Switch.pause_frames_tx b >= 2);
  check_bool "upstream switch heard it" true (Switch.pause_frames_rx a >= 2);
  check_bool "upstream trunk pump actually sat gated" true
    (Switch.egress_paused_ns a > 0);
  check_int "PAUSE kept the whole fabric lossless" 0
    (Switch.egress_drops a + Switch.ingress_drops a + Switch.egress_drops b
   + Switch.ingress_drops b);
  (* the XON re-armed the trunk: without it the quanta gate alone would
     have idled the trunk for milliseconds per XOFF *)
  check_bool "finished long before the quanta timeout" true
    (Sim.now sim < Time.ms 2.)

let test_switch_trunk_hol_blocking () =
  (* a congested flow XOFFs the trunk; an innocent flow to a different,
     idle station on the far switch shares the gated pump and stalls
     behind it — head-of-line blocking across hops *)
  let victim_arrival ~congested =
    let sim = Sim.create () in
    let buffer = shared_buffer ~high:8000 ~low:3000 () in
    let a, b = two_switches ~buffer ~trunk_bits_per_s:1e10 sim in
    List.iter
      (fun n ->
        Switch.add_port a ~node:n;
        Switch.connect_node a ~node:n (fun _ -> ()))
      [ 0; 1; 4 ];
    Switch.add_port b ~node:2;
    Switch.add_port b ~node:3;
    Switch.set_route a ~dst:2 ~via:[ "b" ];
    Switch.set_route a ~dst:3 ~via:[ "b" ];
    Switch.connect_node b ~node:2 (fun _ -> ());
    let at = ref 0 in
    Switch.connect_node b ~node:3 (fun f ->
        on_data f (fun () -> at := Sim.now sim));
    if congested then
      Process.spawn sim (fun () ->
          for _ = 1 to 40 do
            Link.send (Switch.uplink a ~node:0) (raw ~src:0 ~dst:2 1400);
            Link.send (Switch.uplink a ~node:4) (raw ~src:4 ~dst:2 1400)
          done);
    Sim.post sim ~after:(Time.us 200.) (fun () ->
        Link.send (Switch.uplink a ~node:1) (raw ~src:1 ~dst:3 200));
    Sim.run sim;
    !at
  in
  let clear = victim_arrival ~congested:false in
  let blocked = victim_arrival ~congested:true in
  check_bool "victim still delivered" true (blocked > 0);
  check_bool
    (Printf.sprintf "HOL victim stalled behind the congestion tree (%d vs %d)"
       blocked clear)
    true
    (blocked > clear + Time.us 30.)

let test_switch_set_down_drains () =
  let sim = Sim.create () in
  let sw =
    Switch.create sim ~name:"sw" ~bits_per_s:1e9 ~buffer:(shared_buffer ()) ()
  in
  List.iter (fun n -> Switch.add_port sw ~node:n) [ 0; 1; 2 ];
  let got = ref 0 in
  Switch.connect_node sw ~node:0 (fun _ -> ());
  Switch.connect_node sw ~node:1 (fun _ -> ());
  Switch.connect_node sw ~node:2 (fun f -> on_data f (fun () -> incr got));
  Process.spawn sim (fun () ->
      for _ = 1 to 10 do
        Link.send (Switch.uplink sw ~node:0) (raw ~src:0 ~dst:2 1400);
        Link.send (Switch.uplink sw ~node:1) (raw ~src:1 ~dst:2 1400)
      done);
  Sim.post sim ~after:(Time.us 40.) (fun () ->
      check_bool "mid-burst the buffer is charged" true
        (Switch.buffer_occupied sw > 0);
      Switch.set_down sw true;
      check_bool "down" true (Switch.is_down sw);
      (* the FIFO backlog's charges are released on the spot; only the one
         frame already mid-serialization may still hold its charge *)
      check_bool "queued frames released their ledger charges" true
        (Switch.buffer_occupied sw <= 1518 + 18);
      Switch.set_down sw true (* idempotent *));
  Sim.post sim ~after:(Time.us 100.) (fun () ->
      check_int "once the wire drains the ledger is empty" 0
        (Switch.buffer_occupied sw));
  let down_mark = ref (-1) in
  Sim.post sim ~after:(Time.us 400.) (fun () ->
      down_mark := !got;
      Switch.set_down sw false;
      for _ = 1 to 3 do
        Link.send (Switch.uplink sw ~node:1) (raw ~src:1 ~dst:2 500)
      done);
  Sim.run sim;
  check_bool "frames were refused while down" true (Switch.down_drops sw > 0);
  check_bool "power-up is visible" false (Switch.is_down sw);
  check_int "revived switch forwards again" (!down_mark + 3) !got

(* ------------------------------------------------------------------ *)
(* Gray failures: fail-slow without failing *)

let test_fault_brownout_slows_without_dropping () =
  let fault =
    Fault.brownout ~fraction:0.5 ~from_:(Time.us 10.) ~until_:(Time.us 20.) ()
  in
  (* outside the window: untouched *)
  (match Fault.frame fault ~now:0 ~ser:1000 () with
  | [ { Fault.delay = 0; corrupt = false } ] -> ()
  | _ -> Alcotest.fail "expected a clean copy before the window");
  (* inside the window at fraction 0.5 a 1000 ns frame pays 1000 ns extra,
     and a second back-to-back frame queues behind the first's virtual
     residency — FIFO is preserved, nothing is dropped *)
  (match Fault.frame fault ~now:(Time.us 10.) ~ser:1000 () with
  | [ { Fault.delay = 1000; corrupt = false } ] -> ()
  | _ -> Alcotest.fail "expected 1000 ns sag on first frame");
  (match Fault.frame fault ~now:(Time.us 10.) ~ser:1000 () with
  | [ { Fault.delay = 2000; corrupt = false } ] -> ()
  | _ -> Alcotest.fail "expected queued 2000 ns sag on second frame");
  check_int "slowed frames counted" 2 (Fault.slowed fault);
  check_int "sag nanoseconds counted" 3000 (Fault.slow_ns fault);
  check_int "a brownout never drops" 0 (Fault.drops fault);
  (* after the window: clean again *)
  match Fault.frame fault ~now:(Time.us 30.) ~ser:1000 () with
  | [ { Fault.delay = 0; corrupt = false } ] -> ()
  | _ -> Alcotest.fail "expected a clean copy after the window"

let test_fault_brownout_validation () =
  Alcotest.check_raises "fraction zero"
    (Invalid_argument "Fault.brownout: fraction outside (0,1]") (fun () ->
      ignore (Fault.brownout ~fraction:0. ~from_:0 ~until_:(Time.us 1.) ()));
  Alcotest.check_raises "fraction above one"
    (Invalid_argument "Fault.brownout: fraction outside (0,1]") (fun () ->
      ignore (Fault.brownout ~fraction:1.5 ~from_:0 ~until_:(Time.us 1.) ()));
  Alcotest.check_raises "empty window"
    (Invalid_argument "Fault.brownout: empty or negative window") (fun () ->
      ignore
        (Fault.brownout ~fraction:0.5 ~from_:(Time.us 2.) ~until_:(Time.us 2.)
           ()))

let test_nic_slow_factor_inflates_service () =
  let sim, a, b = nic_rig ~coalesce:Nic.no_coalesce () in
  check_bool "factor starts at 1" true (Nic.slow_factor a = 1.0);
  check_int "no inflation before the knob turns" 0 (Nic.slow_extra_ns a);
  Nic.set_slow_factor a 3.0;
  post sim a (raw ~src:0 ~dst:1 1000);
  Sim.run sim;
  check_int "frame still delivered" 1 (Nic.rx_pending b);
  check_bool "inflated service time accounted" true (Nic.slow_extra_ns a > 0);
  let inflated = Nic.slow_extra_ns a in
  (* back to healthy: the multiplier path is an exact no-op at 1.0 *)
  Nic.set_slow_factor a 1.0;
  post sim a (raw ~src:0 ~dst:1 1000);
  Sim.run sim;
  check_int "no further inflation at factor 1" inflated (Nic.slow_extra_ns a);
  Alcotest.check_raises "factor below one"
    (Invalid_argument "Nic.set_slow_factor: factor < 1") (fun () ->
      Nic.set_slow_factor a 0.5)

let test_switch_egress_stall_delays_pump () =
  let sim = Sim.create () in
  let sw = make_switch sim [ 0; 1 ] in
  let arrivals = ref [] in
  Switch.connect_node sw ~node:1 (fun _ ->
      arrivals := Sim.now sim :: !arrivals);
  (* stall node 1's egress for 50 us, then inject a frame; the pump must
     hold the frame until the stall clears *)
  Switch.inject_stall sw ~node:1 ~span:(Time.us 50.);
  Sim.post sim ~after:0 (fun () ->
      Link.send (Switch.uplink sw ~node:0) (raw ~src:0 ~dst:1 500));
  Sim.run sim;
  (match !arrivals with
  | [ t ] -> check_bool "held until the stall cleared" true (t >= Time.us 50.)
  | _ -> Alcotest.fail "expected exactly one delivery");
  check_int "stall counted" 1 (Switch.egress_stalls sw);
  check_bool "stall span accounted" true
    (Switch.egress_stall_ns sw >= Time.us 50.);
  check_int "nothing dropped" 0 (Switch.egress_drops sw);
  Alcotest.check_raises "non-positive span"
    (Invalid_argument "Switch.inject_stall: span <= 0") (fun () ->
      Switch.inject_stall sw ~node:1 ~span:0);
  Alcotest.check_raises "unknown node"
    (Invalid_argument "Switch: unknown node 9") (fun () ->
      Switch.inject_stall sw ~node:9 ~span:(Time.us 1.))

let qprops = List.map QCheck_alcotest.to_alcotest [ prop_fragmentation_counts ]

let suite =
  [
    ("frame sizes", `Quick, test_frame_sizes);
    ("mac addresses", `Quick, test_mac);
    ("link serialization time", `Quick, test_link_serialization_time);
    ("link delivery fifo", `Quick, test_link_delivery_and_fifo);
    ("link pipelining", `Quick, test_link_back_to_back_pipelining);
    ("link fault injection", `Quick, test_link_fault_injection);
    ("fault duplication", `Quick, test_fault_duplicate_copies);
    ("fault gilbert-elliott", `Quick, test_fault_gilbert_elliott_bursts);
    ("fault link flap", `Quick, test_fault_flap_windows);
    ("fault jitter reorders", `Quick, test_fault_jitter_reorders);
    ("fault compose", `Quick, test_fault_compose_stages);
    ("fault corruption", `Quick, test_fault_corruption_flags_copies);
    ("link without receiver", `Quick, test_link_no_receiver_drops);
    ("switch unicast", `Quick, test_switch_unicast);
    ("switch broadcast", `Quick, test_switch_broadcast_floods);
    ("switch unroutable", `Quick, test_switch_unknown_destination);
    ("switch duplicate port", `Quick, test_switch_duplicate_port);
    ("pci peak rate", `Quick, test_pci_peak);
    ("dma dual-bus occupancy", `Quick, test_dma_occupies_both_buses);
    ("dma zero bytes", `Quick, test_dma_zero_bytes);
    ("nic tx/rx roundtrip", `Quick, test_nic_tx_rx_roundtrip);
    ("nic irq masking", `Quick, test_nic_irq_masking);
    ("nic unmask refires", `Quick, test_nic_unmask_refires_when_pending);
    ("nic coalescing by count", `Quick, test_nic_coalescing_count);
    ("nic coalescing quiet timer", `Quick, test_nic_coalescing_quiet_timer);
    ("nic rx ring overflow", `Quick, test_nic_rx_ring_overflow);
    ("nic bad fcs drop", `Quick, test_nic_bad_fcs_drops_at_mac);
    ("nic power-off mid-dma", `Quick, test_nic_power_off_mid_dma);
    ("nic tx ring full", `Quick, test_nic_tx_ring_full);
    ("nic mtu enforced", `Quick, test_nic_mtu_enforced);
    ("nic fragmentation roundtrip", `Quick, test_nic_fragmentation_roundtrip);
    ("nic coalescing absolute cap", `Quick, test_nic_coalescing_absolute_cap);
    ("nic tx ring accounting", `Quick, test_nic_tx_ring_accounting);
    ("switch multicast group", `Quick, test_switch_multicast_group);
    ("link queue depth", `Quick, test_link_queue_depth_visible);
    ("mac control roundtrip", `Quick, test_mac_control_roundtrip);
    ("mac control frame shape", `Quick, test_mac_control_frame_shape);
    ("switch counter regression", `Quick, test_switch_counter_regression);
    ("switch ingress bound", `Quick, test_switch_ingress_bound);
    ("switch egress tail-drop", `Quick, test_switch_egress_cap_tail_drop);
    ("switch buffer ledger", `Quick, test_switch_buffer_ledger_balances);
    ("switch buffer exhaustion", `Quick, test_switch_buffer_exhaustion_drops);
    ("switch xoff/xon cycle", `Quick, test_switch_xoff_xon_cycle);
    ("switch honors station pause", `Quick, test_switch_honors_station_pause);
    ("switch xon resumes early", `Quick, test_switch_xon_resumes_early);
    ("switch protected provisioning", `Quick,
      test_switch_protected_provisioning);
    ("nic pause gates tx", `Quick, test_nic_pause_gates_tx);
    ("nic xon resumes early", `Quick, test_nic_xon_resumes_early);
    ("nic legacy ignores xoff", `Quick, test_nic_without_pause_ignores_xoff);
    ("switch trunk forwarding", `Quick, test_switch_trunk_forwarding);
    ("switch trunk validation", `Quick, test_switch_trunk_validation);
    ("switch ttl loop drop", `Quick, test_switch_ttl_loop_drop);
    ("switch learning flood/unicast", `Quick,
      test_switch_learning_flood_then_unicast);
    ("switch fdb relearn after rewire", `Quick,
      test_switch_fdb_relearn_after_rewire);
    ("switch fdb flush refloods", `Quick, test_switch_flush_fdb_refloods);
    ("switch ecmp spread", `Quick, test_switch_ecmp_spread);
    ("switch trunk pause propagates", `Quick,
      test_switch_trunk_pause_propagates);
    ("switch trunk hol blocking", `Quick, test_switch_trunk_hol_blocking);
    ("switch set_down drains", `Quick, test_switch_set_down_drains);
    ("fault brownout fail-slow", `Quick,
      test_fault_brownout_slows_without_dropping);
    ("fault brownout validation", `Quick, test_fault_brownout_validation);
    ("nic slow factor", `Quick, test_nic_slow_factor_inflates_service);
    ("switch egress stall", `Quick, test_switch_egress_stall_delays_pump);
  ]
  @ qprops
