(* Events/sec microbenchmarks for the simulation engine hot path.

   Three families, sized so a full run finishes in seconds:

   - empty-dispatch: one self-rescheduling chain of no-op events; measures
     the bare schedule+pop+dispatch cycle with a near-empty heap.
   - churn: schedule waves of far-future events, cancel half of them, then
     drain; measures push/cancel/lazy-deletion throughput with a deep heap.
   - mesh-N: N nodes ping-pong with their partner concurrently, so the
     heap holds ~N outstanding events at all times; measures the whole
     loop at the heap depths the thousand-node scenarios produce.

   Every benchmark returns the number of events the simulator executed;
   the driver divides by min-of-3 wall clock for events/sec. *)

open Engine

(* The no-handle scheduling entry point the engine's own hot paths use. *)
let post sim ~after f = Sim.post sim ~after f

let empty_dispatch ~events () =
  let sim = Sim.create () in
  let remaining = ref events in
  let rec tick () =
    if !remaining > 0 then begin
      decr remaining;
      post sim ~after:10 tick
    end
  in
  post sim ~after:10 tick;
  Sim.run sim;
  Sim.events_executed sim

(* Waves of handle-returning schedules with half the handles cancelled
   before the drain: the cancelled slots ride through the heap as lazy
   deletions.  Returns schedules + cancels as the op count. *)
let churn ~ops () =
  let sim = Sim.create () in
  let wave = 1024 in
  let handles = Array.make wave None in
  let ops_done = ref 0 in
  while !ops_done < ops do
    for i = 0 to wave - 1 do
      handles.(i) <- Some (Sim.schedule sim ~after:(1 + ((i * 37) mod 4096)) (fun () -> ()))
    done;
    for i = 0 to wave - 1 do
      if i land 1 = 0 then
        match handles.(i) with Some h -> Sim.cancel h | None -> ()
    done;
    ops_done := !ops_done + wave + (wave / 2);
    Sim.run sim
  done;
  !ops_done

let mesh ~nodes ~rounds () =
  if nodes land 1 <> 0 then invalid_arg "mesh: nodes must be even";
  let sim = Sim.create () in
  let remaining = Array.make nodes rounds in
  (* Per-node latencies are deliberately unequal so the heap sees a spread
     of deadlines rather than one synchronized instant. *)
  let rec send i j =
    post sim ~after:(1_000 + (17 * i mod 64)) (fun () -> recv j i)
  and recv j i =
    if remaining.(j) > 0 then begin
      remaining.(j) <- remaining.(j) - 1;
      send j i
    end
  in
  for i = 0 to nodes - 1 do
    send i (i lxor 1)
  done;
  Sim.run sim;
  Sim.events_executed sim

type result = {
  bench_id : string;
  events : int;
  wall_s : float;  (* min over runs *)
  nodes : int;
}

let events_per_sec r =
  if r.wall_s <= 0. then 0. else float_of_int r.events /. r.wall_s

let time_min ~runs f =
  let best = ref infinity and events = ref 0 in
  for _ = 1 to runs do
    let t0 = Unix.gettimeofday () in
    let n = f () in
    let w = Unix.gettimeofday () -. t0 in
    events := n;
    if w < !best then best := w
  done;
  (!events, !best)

let mesh_sizes = [ 8; 64; 256; 1024 ]

let suite ~quick =
  let scale n q = if quick then q else n in
  [
    ("engine/empty-dispatch", 0, empty_dispatch ~events:(scale 2_000_000 100_000));
    ("engine/churn", 0, churn ~ops:(scale 1_500_000 100_000));
  ]
  @ List.map
      (fun n ->
        ( Printf.sprintf "engine/mesh-%d" n,
          n,
          mesh ~nodes:n ~rounds:(scale (2_000_000 / n) (100_000 / n)) ))
      mesh_sizes

let run ?(runs = 3) ~quick () =
  List.map
    (fun (bench_id, nodes, f) ->
      let events, wall_s = time_min ~runs f in
      { bench_id; events; wall_s; nodes })
    (suite ~quick)
