(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation, times each regeneration, and measures the simulation
   engine's raw event throughput.

   Usage:
     dune exec bench/main.exe              # regenerate everything
     dune exec bench/main.exe -- fig5      # one experiment
     dune exec bench/main.exe -- --quick   # smaller sweeps
     dune exec bench/main.exe -- --csv DIR # also write fig4/5/6 as CSV
     dune exec bench/main.exe -- --time
         # wall-clock per experiment, min over 3 complete runs
     dune exec bench/main.exe -- --bench [--out FILE]
         # engine events/sec microbenchmarks plus wall clock and
         # events/sec for every registered figure/scenario; --out writes
         # the results as JSON (the committed BENCH_*.json files — see
         # README "Benchmarks")

   Simulated results are deterministic: re-running prints identical
   numbers.  Wall-clock timings of course are not; they are reported as
   the minimum over three in-process runs to damp scheduler noise. *)

let fmt = Format.std_formatter
let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

(* One timed closure per registered table/figure: each run executes the
   experiment's full simulation (output suppressed).  The long sweeps
   (fig4-6, tab1, fig1) run in quick mode under timing so the harness
   stays snappy. *)
let experiment_runs =
  List.map
    (fun id ->
      let fn =
        match id with
        | "fig4" ->
            fun () -> ignore (Report.Figures.fig4 ~quick:true null_fmt)
        | "fig5" ->
            fun () -> ignore (Report.Figures.fig5 ~quick:true null_fmt)
        | "fig6" ->
            fun () -> ignore (Report.Figures.fig6 ~quick:true null_fmt)
        | "tab1" ->
            fun () -> ignore (Report.Figures.tab1 ~quick:true null_fmt)
        | "fig1" ->
            fun () -> ignore (Report.Figures.fig1 ~quick:true null_fmt)
        | other -> fun () -> Report.Figures.run other null_fmt
      in
      (id, fn))
    Report.Figures.all_ids

(* Wall-clock per experiment.  A single deterministic simulation per
   iteration makes direct min-of-N sampling the honest measurement; the
   previous harness labelled one unrepeated sample a "bechamel" result,
   which overstated what was measured. *)
let run_time ?(runs = 3) () =
  List.iter
    (fun (name, fn) ->
      let best = ref infinity in
      for _ = 1 to runs do
        let t0 = Unix.gettimeofday () in
        fn ();
        let w = Unix.gettimeofday () -. t0 in
        if w < !best then best := w
      done;
      Format.printf "time %-10s %8.3f s/run  (min of %d)@." name !best runs)
    experiment_runs

(* Every figure/scenario as an events/sec benchmark: the engine keeps a
   process-wide fired-event counter precisely so a scenario that builds
   its simulators internally can still report throughput. *)
let scenario_results ~runs =
  List.map
    (fun (id, fn) ->
      let f () =
        let e0 = Engine.Sim.global_events_executed () in
        fn ();
        Engine.Sim.global_events_executed () - e0
      in
      let events, wall_s = Bench_engine.time_min ~runs f in
      { Bench_engine.bench_id = "scenario/" ^ id; events; wall_s; nodes = 0 })
    experiment_runs

let json_of_results results =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "  {\"bench_id\": %S, \"events_per_sec\": %.1f, \"wall_s\": \
            %.6f, \"nodes\": %d}"
           r.Bench_engine.bench_id
           (Bench_engine.events_per_sec r)
           r.Bench_engine.wall_s r.Bench_engine.nodes))
    results;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let print_result r =
  Printf.printf "%-24s %12.0f ev/s  %8.4f s  (%d events)\n"
    r.Bench_engine.bench_id
    (Bench_engine.events_per_sec r)
    r.Bench_engine.wall_s r.Bench_engine.events

let flag_value name args =
  let rec go = function
    | f :: v :: _ when f = name -> Some v
    | _ :: rest -> go rest
    | [] -> None
  in
  go args

let write_csv dir name series =
  let path = Filename.concat dir (name ^ ".csv") in
  let oc = open_out path in
  output_string oc (Report.Render.series_csv ~x_label:"size_bytes" series);
  close_out oc;
  Format.printf "wrote %s@." path

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  if List.mem "--bench" args then begin
    (* min-of-3 even in quick mode: CI compares these numbers against the
       committed baseline, so damping scheduler noise matters more than
       the two extra sub-second runs. *)
    let runs = 3 in
    let results = Bench_engine.run ~runs ~quick () @ scenario_results ~runs in
    List.iter print_result results;
    (match flag_value "--out" args with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (json_of_results results);
        close_out oc;
        Printf.printf "wrote %s\n" path);
    exit 0
  end;
  if List.mem "--time" args || List.mem "--bechamel" args then begin
    run_time ();
    exit 0
  end;
  let csv = flag_value "--csv" args in
  let ids =
    let rec strip = function
      | "--csv" :: _ :: rest -> strip rest
      | "--out" :: _ :: rest -> strip rest
      | a :: rest when String.length a > 2 && String.sub a 0 2 = "--" ->
          strip rest
      | a :: rest -> a :: strip rest
      | [] -> []
    in
    strip args
  in
  (match
     List.filter (fun id -> not (List.mem id Report.Figures.all_ids)) ids
   with
  | [] -> ()
  | unknown ->
      List.iter
        (fun id -> Printf.eprintf "unknown experiment id %S\n" id)
        unknown;
      Printf.eprintf "known ids: %s\n"
        (String.concat " " Report.Figures.all_ids);
      exit 1);
  let to_run = if ids = [] then Report.Figures.all_ids else ids in
  let maybe_csv name series =
    match csv with Some dir -> write_csv dir name series | None -> ()
  in
  List.iter
    (fun id ->
      match id with
      | "fig4" -> maybe_csv "fig4" (Report.Figures.fig4 ~quick fmt)
      | "fig5" -> maybe_csv "fig5" (Report.Figures.fig5 ~quick fmt)
      | "fig6" -> maybe_csv "fig6" (Report.Figures.fig6 ~quick fmt)
      | "tab1" -> ignore (Report.Figures.tab1 ~quick fmt)
      | "fig1" -> ignore (Report.Figures.fig1 ~quick fmt)
      | other -> Report.Figures.run other fmt)
    to_run;
  Format.fprintf fmt "@."
