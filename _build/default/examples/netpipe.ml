(* A NetPIPE-style sweep: bandwidth vs message size for any stack, with a
   quick ASCII rendering of the curve — the measurement procedure behind
   the paper's Figures 4-6, usable interactively.

   Run with:  dune exec examples/netpipe.exe -- [stack] [mtu]
   e.g.       dune exec examples/netpipe.exe -- tcp 9000 *)

open Cluster

let sizes = [ 64; 256; 1024; 4096; 16384; 65536; 262144; 1048576 ]

let () =
  let stack = if Array.length Sys.argv > 1 then Sys.argv.(1) else "clic" in
  let mtu =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1500
  in
  let config = { Node.default_config with mtu } in
  Printf.printf "NetPIPE sweep: %s at MTU %d\n\n" stack mtu;
  Printf.printf "%10s  %10s  %10s  %s\n" "size(B)" "Mbit/s" "one-way" "";
  let results =
    List.map
      (fun size ->
        let c = Net.create ~config ~n:2 () in
        let pair = Report.Pairs.of_name stack c ~a:0 ~b:1 in
        let reps = if size >= 262144 then 3 else 6 in
        let r = Measure.pingpong c pair ~size ~reps ~warmup:1 () in
        (size, r))
      sizes
  in
  let top =
    List.fold_left
      (fun acc (_, r) -> Float.max acc r.Measure.pp_bandwidth_mbps)
      0. results
  in
  List.iter
    (fun (size, r) ->
      Printf.printf "%10d  %10.1f  %8.1fus  %s\n" size
        r.Measure.pp_bandwidth_mbps
        (Engine.Time.to_us r.Measure.one_way)
        (Report.Render.bar r.Measure.pp_bandwidth_mbps ~max:top ~width:40))
    results;
  Printf.printf "\n(paper shapes: CLIC tops ~600 Mbit/s at MTU 9000, ~450 at \
                 1500; TCP stays below half of that)\n"
