(* A master/worker task farm over raw CLIC: the master hands out work
   units with ordinary asynchronous sends, workers return results with
   send-with-confirmation, and the master overlaps dispatch with
   non-blocking receives (Api.try_recv) — exercising the multiprogramming-
   friendly primitives the paper lists in its conclusions.

   Run with:  dune exec examples/task_farm.exe *)

open Cluster
open Engine

let workers = 3
let tasks = 24
let task_bytes = 200_000 (* input data per task *)
let result_bytes = 4_096
let work_time = Time.ms 1.5 (* simulated crunch per task *)

let work_port = 10
let result_port = 11

let () =
  let cluster = Net.create ~n:(workers + 1) () in
  let master = Net.node cluster 0 in

  (* Workers: receive a task, crunch, return the result (confirmed). *)
  for w = 1 to workers do
    let node = Net.node cluster w in
    Node.spawn node (fun () ->
        let rec serve () =
          let task = Clic.Api.recv node.Node.clic ~port:work_port in
          if task.Clic.Clic_module.msg_bytes = 0 then () (* poison pill *)
          else begin
            Os_model.Cpu.work (Node.cpu node) work_time;
            Clic.Api.send_sync node.Node.clic ~dst:0 ~port:result_port
              result_bytes;
            serve ()
          end
        in
        serve ())
  done;

  (* Master: keep every worker busy; poll results while dispatching. *)
  let results = ref 0 in
  Node.spawn master (fun () ->
      let next_worker = ref 1 in
      for _task = 1 to tasks do
        Clic.Api.send master.Node.clic ~dst:!next_worker ~port:work_port
          task_bytes;
        next_worker := 1 + (!next_worker mod workers);
        (* harvest any finished results without blocking *)
        let rec poll () =
          match Clic.Api.try_recv master.Node.clic ~port:result_port with
          | Some _ ->
              incr results;
              poll ()
          | None -> ()
        in
        poll ()
      done;
      (* collect the remainder, then shut the workers down *)
      while !results < tasks do
        ignore (Clic.Api.recv master.Node.clic ~port:result_port);
        incr results
      done;
      for w = 1 to workers do
        Clic.Api.send master.Node.clic ~dst:w ~port:work_port 0
      done;
      Printf.printf "all %d tasks done at t=%.2f ms\n" tasks
        (Time.to_ms (Sim.now cluster.Net.sim)));

  Net.run cluster;

  let wire_mb =
    float_of_int (tasks * (task_bytes + result_bytes)) /. 1e6
  in
  Printf.printf "moved %.1f MB of task data over CLIC (%d results)\n" wire_mb
    !results;
  assert (!results = tasks)
