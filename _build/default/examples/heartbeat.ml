(* Cluster heartbeat monitoring over CLIC's Ethernet broadcast and remote
   writes: a monitor node broadcasts a probe to every node in one frame
   (the data-link multicast CLIC builds on), and each node answers with an
   asynchronous remote write straight into the monitor's status region —
   no receive call needed on the monitor's side.

   Run with:  dune exec examples/heartbeat.exe *)

open Cluster
open Engine

let nodes = 6
let probe_port = 20
let status_region = 1
let rounds = 5

let () =
  let cluster = Net.create ~n:nodes () in
  let monitor = Net.node cluster 0 in

  (* Every answered heartbeat lands here, with no monitor-side receive. *)
  let alive = Hashtbl.create 8 in
  Clic.Api.register_region monitor.Node.clic ~region:status_region
    (fun ~bytes:_ ~src -> Hashtbl.replace alive src (Sim.now cluster.Net.sim));

  (* Worker nodes: wait for probes, answer with a remote write. *)
  for i = 1 to nodes - 1 do
    let node = Net.node cluster i in
    Node.spawn node (fun () ->
        for _round = 1 to rounds do
          ignore (Clic.Api.recv node.Node.clic ~port:probe_port);
          Clic.Api.remote_write node.Node.clic ~dst:0 ~region:status_region
            64
        done)
  done;

  (* Monitor: one broadcast frame probes the whole segment. *)
  Node.spawn monitor (fun () ->
      for round = 1 to rounds do
        Hashtbl.reset alive;
        Clic.Api.broadcast monitor.Node.clic ~port:probe_port 32;
        Process.delay (Time.ms 1.);
        Printf.printf "round %d at t=%.2f ms: %d/%d nodes alive\n" round
          (Time.to_ms (Sim.now cluster.Net.sim))
          (Hashtbl.length alive) (nodes - 1);
        Process.delay (Time.ms 4.)
      done);

  Net.run cluster;

  Printf.printf
    "\nmonitor NIC transmissions: %d (= %d broadcast probes + channel acks \
     for %d remote writes)\n"
    (Hw.Nic.tx_packets (List.hd monitor.Node.nics))
    rounds
    (rounds * (nodes - 1));
  Printf.printf
    "each probe reaches all %d peers in ONE wire frame — point-to-point \
     probing would need %d sends\n"
    (nodes - 1)
    (rounds * (nodes - 1))
