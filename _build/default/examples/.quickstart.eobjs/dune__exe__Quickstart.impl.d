examples/quickstart.ml: Clic Cluster Engine Measure Net Node Printf Sim Time
