examples/quickstart.mli:
