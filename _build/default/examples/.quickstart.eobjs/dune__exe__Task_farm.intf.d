examples/task_farm.mli:
