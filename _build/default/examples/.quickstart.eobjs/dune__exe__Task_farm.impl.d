examples/task_farm.ml: Clic Cluster Engine Net Node Os_model Printf Sim Time
