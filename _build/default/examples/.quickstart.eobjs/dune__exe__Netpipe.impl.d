examples/netpipe.ml: Array Cluster Engine Float List Measure Net Node Printf Report Sys
