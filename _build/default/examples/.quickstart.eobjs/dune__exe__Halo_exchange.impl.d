examples/halo_exchange.ml: Array Cluster Engine List Mpi_layer Net Node Os_model Printf Sim Time
