examples/heartbeat.mli:
