examples/netpipe.mli:
