examples/heartbeat.ml: Clic Cluster Engine Hashtbl Hw List Net Node Printf Process Sim Time
