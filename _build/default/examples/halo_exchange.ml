(* A 1-D halo-exchange stencil — the fine-grained parallel workload the
   paper's introduction worries about ("may limit their use to coarse
   grain applications").  Each of N ranks owns a slab of a 1-D domain and
   exchanges boundary rows with its neighbours every iteration, over MPI
   on CLIC and over MPI on TCP/IP, then reports how much wall-clock the
   communication layer cost.

   Run with:  dune exec examples/halo_exchange.exe *)

open Cluster
open Engine

let ranks = 4
let iterations = 50
let halo_bytes = 8192 (* one boundary row of doubles *)
let compute_per_iter = Time.us 150. (* simulated local stencil work *)

let run_with transport_name =
  let config = Node.gigabit_jumbo Node.default_config in
  let cluster = Net.create ~config ~n:ranks () in
  let world =
    match transport_name with
    | "mpi-clic" ->
        let reg = Mpi_layer.Mpi_clic.registry () in
        List.init ranks (fun rank ->
            let node = Net.node cluster rank in
            Mpi_layer.Mpi.create node.Node.env ~rank
              (Mpi_layer.Mpi_clic.transport reg node.Node.clic ~rank)
              ())
    | _ ->
        let reg = Mpi_layer.Mpi_tcp.registry () in
        List.init ranks (fun rank ->
            let node = Net.node cluster rank in
            Mpi_layer.Mpi.create node.Node.env ~rank
              (Mpi_layer.Mpi_tcp.transport reg node.Node.tcp ~rank)
              ())
  in
  let finish_times = Array.make ranks 0 in
  List.iteri
    (fun rank mpi ->
      let node = Net.node cluster rank in
      let left = rank - 1 and right = rank + 1 in
      Node.spawn node (fun () ->
          for _iter = 1 to iterations do
            (* local stencil computation *)
            Os_model.Cpu.work (Node.cpu node) compute_per_iter;
            (* exchange halos with existing neighbours; send both, then
               receive both (deadlock-free since sends are eager) *)
            if left >= 0 then
              Mpi_layer.Mpi.send mpi ~dst:left ~tag:1 halo_bytes;
            if right < ranks then
              Mpi_layer.Mpi.send mpi ~dst:right ~tag:1 halo_bytes;
            if left >= 0 then ignore (Mpi_layer.Mpi.recv mpi ~src:left ());
            if right < ranks then
              ignore (Mpi_layer.Mpi.recv mpi ~src:right ())
          done;
          (* a solver would close with a residual-norm reduction *)
          Mpi_layer.Collectives.allreduce mpi ~rank ~size:ranks 4096;
          finish_times.(rank) <- Sim.now cluster.Net.sim))
    world;
  Net.run cluster;
  let finished = Array.fold_left max 0 finish_times in
  let pure_compute = Time.mul compute_per_iter iterations in
  let comm = Time.diff finished pure_compute in
  (finished, comm)

let () =
  Printf.printf "1-D halo exchange: %d ranks, %d iterations, %d-byte halos\n\n"
    ranks iterations halo_bytes;
  List.iter
    (fun name ->
      let total, comm = run_with name in
      Printf.printf
        "%-9s total %8.2f ms   communication overhead %8.2f ms  (%.0f us/iter)\n"
        name (Time.to_ms total) (Time.to_ms comm)
        (Time.to_us comm /. float_of_int iterations))
    [ "mpi-clic"; "mpi-tcp" ];
  Printf.printf
    "\nThe lightweight protocol keeps the fine-grained exchange cheap;\n\
     the TCP/IP stack's per-message costs dominate at this granularity.\n"
