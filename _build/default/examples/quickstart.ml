(* Quickstart: build a two-node Gigabit Ethernet cluster, exchange a few
   CLIC messages, and print the numbers the paper leads with.

   Run with:  dune exec examples/quickstart.exe *)

open Cluster
open Engine

let () =
  (* A cluster is n identical PCs on a switched Gigabit Ethernet segment.
     Every knob (MTU, PCI efficiency, CLIC parameters...) lives in the
     config record; defaults model the paper's testbed. *)
  let cluster = Net.create ~n:2 () in
  let alice = Net.node cluster 0 and bob = Net.node cluster 1 in

  (* Application code runs as simulation processes on a node. *)
  Node.spawn bob (fun () ->
      (* Blocking receive on CLIC port 7. *)
      let msg = Clic.Api.recv bob.Node.clic ~port:7 in
      Printf.printf "bob:   got %d bytes from node %d at t=%s\n"
        msg.Clic.Clic_module.msg_bytes msg.Clic.Clic_module.msg_src
        (Time.to_string (Sim.now cluster.Net.sim));
      (* reply *)
      Clic.Api.send bob.Node.clic ~dst:0 ~port:7 64);

  Node.spawn alice (fun () ->
      Printf.printf "alice: sending 4 KB over CLIC...\n";
      Clic.Api.send alice.Node.clic ~dst:1 ~port:7 4096;
      ignore (Clic.Api.recv alice.Node.clic ~port:7);
      Printf.printf "alice: reply received at t=%s\n"
        (Time.to_string (Sim.now cluster.Net.sim)));

  Net.run cluster;

  (* The measurement harness automates ping-pong and streaming runs. *)
  let latency =
    let c = Net.create ~n:2 () in
    let pair = Measure.clic_pair c ~a:0 ~b:1 () in
    (Measure.pingpong c pair ~size:0 ()).Measure.one_way
  in
  let bandwidth =
    let c = Net.create ~config:(Node.gigabit_jumbo Node.default_config) ~n:2 () in
    let pair = Measure.clic_pair c ~a:0 ~b:1 () in
    (Measure.pingpong c pair ~size:1_048_576 ~reps:3 ~warmup:1 ())
      .Measure.pp_bandwidth_mbps
  in
  Printf.printf "\nCLIC 0-byte latency : %.1f us   (paper: 36 us)\n"
    (Time.to_us latency);
  Printf.printf "CLIC 1MB bandwidth  : %.0f Mbit/s (paper: ~600 at MTU 9000)\n"
    bandwidth
